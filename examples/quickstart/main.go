// Quickstart: trace a single task's dataset I/O with the Data Semantic
// Mapper, print the Table I/II records it produced, and render the
// task's Semantic Dataflow Graph (the paper's Figure 3 shape) to HTML.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dayu"
)

func main() {
	tr := dayu.NewTracer(dayu.TracerConfig{})

	// One task writing two datasets into one file.
	tr.BeginTask("task")
	f, err := dayu.CreateFile(tr, "file.h5", dayu.FileConfig{Task: "task"})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"dataset_1", "dataset_2"} {
		ds, err := f.Root().CreateDataset(name, dayu.Float64, []int64{512}, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteAll(make([]byte, 4096)); err != nil {
			log.Fatal(err)
		}
		if err := ds.SetAttrString("units", "kelvin"); err != nil {
			log.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	tt := tr.EndTask()

	// Table I: object-level semantics.
	fmt.Println("object records (Table I):")
	for _, o := range tt.Objects {
		fmt.Printf("  %-22s type=%-9s datatype=%-8s layout=%-10s reads=%d writes=%d\n",
			o.Object, o.Type, o.Datatype, o.Layout, o.Reads, o.Writes)
	}

	// Table II: file-level I/O statistics.
	fmt.Println("file records (Table II):")
	for _, fr := range tt.Files {
		fmt.Printf("  %-10s ops=%d meta=%d data=%d regions=%d\n",
			fr.File, fr.Ops, fr.MetaOps, fr.DataOps, len(fr.Regions))
	}

	// Characteristic Mapper: object -> I/O attribution.
	fmt.Println("mapped statistics (object -> low-level I/O):")
	for _, ms := range tt.Mapped {
		obj := ms.Object
		if obj == "" {
			obj = "(file metadata)"
		}
		fmt.Printf("  %-22s metaOps=%d dataOps=%d bytes=%d regions=%v\n",
			obj, ms.MetaOps, ms.DataOps, ms.Bytes(), ms.Regions)
	}

	// Render the SDG.
	sdg := dayu.BuildSDG([]*dayu.TaskTrace{tt}, nil, dayu.AnalyzerOptions{
		PageSize: 4096, IncludeRegions: true, IncludeFileMetadata: true,
	})
	if err := os.WriteFile("quickstart_sdg.html", []byte(sdg.HTML()), 0o644); err != nil {
		log.Fatal(err)
	}
	s := dayu.SummarizeGraph(sdg)
	fmt.Printf("SDG: %d datasets, %d address regions, %d edges -> quickstart_sdg.html\n",
		s.Datasets, s.Regions, s.Edges)
}
