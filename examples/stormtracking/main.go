// Storm tracking: a PyFLEXTRKR-style feature-tracking pipeline built
// with the public workflow API, executed on the simulated CPU cluster,
// then diagnosed and re-run with a DaYu-derived data-locality plan -
// the Figure 11 methodology end to end.
//
// Run with: go run ./examples/stormtracking
package main

import (
	"fmt"
	"log"
	"os"

	"dayu"
)

const features = 64 << 10 // bytes of feature data per file

// identify reads a sensor input and writes per-file features.
func identify(i int) dayu.WorkflowTask {
	return dayu.WorkflowTask{
		Name: fmt.Sprintf("identify_%d", i),
		Fn: func(tc *dayu.TaskContext) error {
			in, err := tc.Open(fmt.Sprintf("sensor_%d.h5", i))
			if err != nil {
				return err
			}
			ds, err := in.OpenDatasetPath("/cloud")
			if err != nil {
				return err
			}
			if _, err := ds.ReadAll(); err != nil {
				return err
			}
			if err := in.Close(); err != nil {
				return err
			}
			out, err := tc.Create(fmt.Sprintf("features_%d.h5", i))
			if err != nil {
				return err
			}
			fds, err := out.Root().CreateDataset("features", dayu.Float32, []int64{features / 4}, nil)
			if err != nil {
				return err
			}
			return fds.WriteAll(make([]byte, features))
		},
	}
}

// track fans in every feature file and writes track statistics.
var track = dayu.WorkflowTask{
	Name: "track",
	Fn: func(tc *dayu.TaskContext) error {
		for i := 0; i < 4; i++ {
			in, err := tc.Open(fmt.Sprintf("features_%d.h5", i))
			if err != nil {
				return err
			}
			ds, err := in.OpenDatasetPath("/features")
			if err != nil {
				return err
			}
			if _, err := ds.ReadAll(); err != nil {
				return err
			}
			if err := in.Close(); err != nil {
				return err
			}
		}
		out, err := tc.Create("tracks.h5")
		if err != nil {
			return err
		}
		ds, err := out.Root().CreateDataset("tracks", dayu.Float32, []int64{features / 8}, nil)
		if err != nil {
			return err
		}
		return ds.WriteAll(make([]byte, features/2))
	},
}

// report reads the tracks and produces statistics.
var report = dayu.WorkflowTask{
	Name: "report",
	Fn: func(tc *dayu.TaskContext) error {
		in, err := tc.Open("tracks.h5")
		if err != nil {
			return err
		}
		ds, err := in.OpenDatasetPath("/tracks")
		if err != nil {
			return err
		}
		_, err = ds.ReadAll()
		return err
	},
}

func buildSpec() dayu.WorkflowSpec {
	var idTasks []dayu.WorkflowTask
	for i := 0; i < 4; i++ {
		idTasks = append(idTasks, identify(i))
	}
	return dayu.WorkflowSpec{
		Name: "storm-tracking",
		Stages: []dayu.WorkflowStage{
			{Name: "identify", Tasks: idTasks},
			{Name: "track", Tasks: []dayu.WorkflowTask{track}},
			{Name: "report", Tasks: []dayu.WorkflowTask{report}},
		},
	}
}

func run(plan *dayu.Plan) (*dayu.WorkflowResult, error) {
	eng, err := dayu.NewEngine(dayu.Cluster{Machine: dayu.MachineCPU, Nodes: 2}, plan, dayu.TracerConfig{})
	if err != nil {
		return nil, err
	}
	// Sensor inputs exist on shared storage before the workflow starts.
	for i := 0; i < 4; i++ {
		if err := eng.Preload(fmt.Sprintf("sensor_%d.h5", i), dayu.FileConfig{}, func(f *dayu.File) error {
			ds, err := f.Root().CreateDataset("cloud", dayu.Float32, []int64{features / 4}, nil)
			if err != nil {
				return err
			}
			return ds.WriteAll(make([]byte, features))
		}); err != nil {
			return nil, err
		}
	}
	return eng.Run(buildSpec())
}

func main() {
	// Baseline: everything on the default shared NFS.
	base, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (shared NFS): %v\n", base.Total())

	// Diagnose the baseline traces.
	findings := dayu.Diagnose(base.Traces, base.Manifest, dayu.Thresholds{})
	fmt.Printf("findings (%d):\n", len(findings))
	for _, f := range findings {
		fmt.Println(" ", f.String())
	}

	// Derive the locality plan and re-run.
	plan := dayu.PlanDataLocality(base.Traces, base.Manifest, dayu.LocalityOptions{
		FastTier: "nvme", Nodes: 2, StageOutDisposable: true,
	})
	opt, err := run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized (NVMe + co-scheduling + staging): %v\n", opt.Total())
	fmt.Printf("speedup: %.2fx\n", float64(base.Total())/float64(opt.Total()))

	// Render the FTG.
	ftg := dayu.BuildFTG(base.Traces, base.Manifest)
	if err := os.WriteFile("stormtracking_ftg.html", []byte(ftg.HTML()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote stormtracking_ftg.html")
}
