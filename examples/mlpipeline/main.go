// ML pipeline: a DeepDriveMD-style simulation/aggregation/training flow
// showing how DaYu's Characteristic Mapper exposes a dataset whose
// content is aggregated but never consumed (the paper's Figure 7
// contact_map observation), and what partial file access would save.
//
// Run with: go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"dayu"

	"dayu/internal/diagnose"
)

const (
	simTasks  = 4
	frameSize = 64 << 10 // contact_map bytes per simulation
	smallSize = 8 << 10  // point_cloud / fnc / rmsd bytes
)

var datasets = []string{"contact_map", "point_cloud", "fnc", "rmsd"}

func simulate(i int) dayu.WorkflowTask {
	return dayu.WorkflowTask{
		Name: fmt.Sprintf("simulate_%d", i),
		Fn: func(tc *dayu.TaskContext) error {
			f, err := tc.Create(fmt.Sprintf("sim_%d.h5", i))
			if err != nil {
				return err
			}
			for _, name := range datasets {
				size := int64(smallSize)
				if name == "contact_map" {
					size = frameSize
				}
				ds, err := f.Root().CreateDataset(name, dayu.Float32, []int64{size / 4},
					&dayu.DatasetOpts{Layout: dayu.Chunked, ChunkDims: []int64{2 << 10}})
				if err != nil {
					return err
				}
				if err := ds.WriteAll(make([]byte, size)); err != nil {
					return err
				}
				if err := ds.Close(); err != nil {
					return err
				}
			}
			return f.Close()
		},
	}
}

var aggregate = dayu.WorkflowTask{
	Name: "aggregate",
	Fn: func(tc *dayu.TaskContext) error {
		out, err := tc.Create("aggregated.h5")
		if err != nil {
			return err
		}
		for _, name := range datasets {
			size := int64(smallSize)
			if name == "contact_map" {
				size = frameSize
			}
			elems := size / 4 * simTasks
			ds, err := out.Root().CreateDataset(name, dayu.Float32, []int64{elems}, nil)
			if err != nil {
				return err
			}
			for i := 0; i < simTasks; i++ {
				in, err := tc.Open(fmt.Sprintf("sim_%d.h5", i))
				if err != nil {
					return err
				}
				src, err := in.OpenDatasetPath("/" + name)
				if err != nil {
					return err
				}
				data, err := src.ReadAll()
				if err != nil {
					return err
				}
				if err := in.Close(); err != nil {
					return err
				}
				if err := ds.Write(dayu.Slab1D(int64(i)*size/4, size/4), data); err != nil {
					return err
				}
			}
			if err := ds.Close(); err != nil {
				return err
			}
		}
		return out.Close()
	},
}

var train = dayu.WorkflowTask{
	Name: "train",
	Fn: func(tc *dayu.TaskContext) error {
		f, err := tc.Open("aggregated.h5")
		if err != nil {
			return err
		}
		// Training consumes the three small datasets...
		for _, name := range []string{"point_cloud", "fnc", "rmsd"} {
			ds, err := f.OpenDatasetPath("/" + name)
			if err != nil {
				return err
			}
			if _, err := ds.ReadAll(); err != nil {
				return err
			}
			if err := ds.Close(); err != nil {
				return err
			}
		}
		// ...but only inspects contact_map's metadata, never its content.
		cm, err := f.OpenDatasetPath("/contact_map")
		if err != nil {
			return err
		}
		if err := cm.Close(); err != nil {
			return err
		}
		return f.Close()
	},
}

func main() {
	eng, err := dayu.NewEngine(dayu.Cluster{Machine: dayu.MachineGPU, Nodes: 2}, nil, dayu.TracerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var sims []dayu.WorkflowTask
	for i := 0; i < simTasks; i++ {
		sims = append(sims, simulate(i))
	}
	spec := dayu.WorkflowSpec{
		Name: "ml-pipeline",
		Stages: []dayu.WorkflowStage{
			{Name: "simulate", Tasks: sims},
			{Name: "aggregate", Tasks: []dayu.WorkflowTask{aggregate}},
			{Name: "train", Tasks: []dayu.WorkflowTask{train}},
		},
	}
	res, err := eng.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated time: %v\n", res.Total())

	findings := dayu.Diagnose(res.Traces, res.Manifest, dayu.Thresholds{})
	metaOnly := dayu.FindingsOfKind(findings, diagnose.MetadataOnlyAccess)
	if len(metaOnly) == 0 {
		fmt.Println("no metadata-only accesses found")
		return
	}
	fmt.Println("metadata-only dataset accesses (partial-file-access candidates):")
	var saved int64
	for _, f := range metaOnly {
		fmt.Printf("  task %s reads only metadata of %s%s (%.0f bytes of content unused)\n",
			f.Task, f.File, f.Object, f.Metrics["content_bytes"])
		saved += int64(f.Metrics["content_bytes"])
	}
	fmt.Printf("partial file access would avoid moving %d bytes into training\n", saved)

	// The chunked layout on small datasets is also flagged (Figure 13b).
	layout := dayu.FindingsOfKind(findings, diagnose.ChunkedSmallData)
	fmt.Printf("chunked-small-data findings: %d (guideline: %s)\n",
		len(layout), diagnose.GuidelineLayout)
}
