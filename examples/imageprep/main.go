// Image preparation: an ARLDM-style variable-length data workload
// comparing contiguous and chunked layouts for VL image storage - the
// paper's §VI-C data-format optimization. Chunked VL datasets carry the
// index metadata that lets the library coalesce heap writes, roughly
// halving POSIX write operations.
//
// Run with: go run ./examples/imageprep
package main

import (
	"fmt"
	"log"

	"dayu"
)

const (
	stories    = 48
	imageBytes = 16 << 10
)

// saveImages writes five VL image datasets plus one text dataset, the
// ARLDM stage-1 file structure.
func saveImages(layout dayu.Layout) (*dayu.TaskTrace, error) {
	tr := dayu.NewTracer(dayu.TracerConfig{})
	tr.BeginTask("arldm_saveh5")
	f, err := dayu.CreateFile(tr, "flintstones_out.h5", dayu.FileConfig{
		Task: "arldm_saveh5", HeapCollectionSize: imageBytes * 6,
	})
	if err != nil {
		return nil, err
	}
	names := []string{"image0", "image1", "image2", "image3", "image4", "text"}
	for _, name := range names {
		opts := &dayu.DatasetOpts{Layout: layout}
		if layout == dayu.Chunked {
			opts.ChunkDims = []int64{8}
		}
		ds, err := f.Root().CreateDataset(name, dayu.VLen, []int64{stories}, opts)
		if err != nil {
			return nil, err
		}
		mean := imageBytes
		if name == "text" {
			mean = 256
		}
		for start := 0; start < stories; start += 5 {
			n := 5
			if start+n > stories {
				n = stories - start
			}
			values := make([][]byte, n)
			for i := range values {
				// Variable-length payloads: 50%-150% of the mean size.
				values[i] = make([]byte, mean/2+(start+i)*mean/stories)
			}
			if err := ds.WriteVL(int64(start), values); err != nil {
				return nil, err
			}
		}
		if err := ds.Close(); err != nil {
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return tr.EndTask(), nil
}

func main() {
	contig, err := saveImages(dayu.Contiguous)
	if err != nil {
		log.Fatal(err)
	}
	chunked, err := saveImages(dayu.Chunked)
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, tt *dayu.TaskTrace) (writes int64) {
		for _, fr := range tt.Files {
			fmt.Printf("%-22s writes=%-4d metaOps=%-4d dataOps=%-4d bytes=%d regions=%d\n",
				label, fr.Writes, fr.MetaOps, fr.DataOps, fr.BytesWritten, len(fr.Regions))
			writes += fr.Writes
		}
		return writes
	}
	cw := report("contiguous (baseline)", contig)
	kw := report("chunked (optimized)", chunked)
	fmt.Printf("\nchunked VL layout issues %.2fx fewer write operations (paper: ~2x)\n",
		float64(cw)/float64(kw))

	// Each dataset's file-region footprint, from the Characteristic
	// Mapper (the fragmentation Figure 8 visualizes).
	fmt.Println("\nper-dataset address regions (contiguous layout):")
	for _, ms := range contig.Mapped {
		if ms.Object == "" {
			continue
		}
		fmt.Printf("  %-10s -> %d regions\n", ms.Object, len(ms.Regions))
	}
}
