// Climate: DaYu tracing over the netCDF-like format. A writer task
// appends records of temp(time, lat, lon); the Data Semantic Mapper
// exposes classic netCDF's signature behaviors - one compact header
// metadata region, and strided per-record I/O for record variables.
//
// Run with: go run ./examples/climate
package main

import (
	"fmt"
	"log"

	"dayu"
)

const (
	latN = 16
	lonN = 32
	days = 30
)

func main() {
	tr := dayu.NewTracer(dayu.TracerConfig{})
	tr.BeginTask("climate_writer")

	f, err := dayu.CreateNetCDF(tr, "climate.nc", dayu.NCConfig{Task: "climate_writer"})
	if err != nil {
		log.Fatal(err)
	}
	timeD, err := f.DefineDim("time", dayu.NCUnlimited)
	if err != nil {
		log.Fatal(err)
	}
	latD, err := f.DefineDim("lat", latN)
	if err != nil {
		log.Fatal(err)
	}
	lonD, err := f.DefineDim("lon", lonN)
	if err != nil {
		log.Fatal(err)
	}
	temp, err := f.DefineVar("temp", dayu.NCFloat, []dayu.NCDimID{timeD, latD, lonD})
	if err != nil {
		log.Fatal(err)
	}
	if err := temp.PutAttr("units", dayu.NCByte, []byte("kelvin")); err != nil {
		log.Fatal(err)
	}
	humidity, err := f.DefineVar("humidity", dayu.NCFloat, []dayu.NCDimID{timeD, latD, lonD})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.EndDef(); err != nil {
		log.Fatal(err)
	}

	// One record per simulated day, interleaving two record variables.
	rec := make([]byte, latN*lonN*4)
	for day := int64(0); day < days; day++ {
		for i := range rec {
			rec[i] = byte(day + int64(i))
		}
		if err := temp.Write([]int64{day, 0, 0}, []int64{1, latN, lonN}, rec); err != nil {
			log.Fatal(err)
		}
		if err := humidity.Write([]int64{day, 0, 0}, []int64{1, latN, lonN}, rec); err != nil {
			log.Fatal(err)
		}
	}
	// A time-series read of one variable: strided across all records.
	if _, err := temp.Read([]int64{0, 0, 0}, []int64{days, latN, lonN}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	tt := tr.EndTask()

	fmt.Println("object records (Table I) from the netCDF layer:")
	for _, o := range tt.Objects {
		fmt.Printf("  %-10s type=%-8s datatype=%-7s layout=%-7s reads=%d writes=%d\n",
			o.Object, o.Type, o.Datatype, o.Layout, o.Reads, o.Writes)
	}
	fmt.Println("\nmapped statistics:")
	for _, ms := range tt.Mapped {
		obj := ms.Object
		if obj == "" {
			obj = "(header metadata)"
		}
		fmt.Printf("  %-18s metaOps=%-3d dataOps=%-4d bytes=%-8d regions=%d\n",
			obj, ms.MetaOps, ms.DataOps, ms.Bytes(), len(ms.Regions))
	}
	fmt.Println("\nnote the strided record access: each record variable's data ops")
	fmt.Println("scale with the record count, while all metadata concentrates in")
	fmt.Println("the header region at the start of the file - the opposite of the")
	fmt.Println("HDF5-like layer's scattered per-object headers.")
}
