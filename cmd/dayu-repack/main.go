// Command dayu-repack rewrites an HDF5-like file with optimized storage
// layouts, like h5repack guided by DaYu's data-format-optimization
// findings.
//
// Usage:
//
//	dayu-repack -in src.h5 -out dst.h5 \
//	    [-convert /path=contiguous ...] [-consolidate bytes]
//
// -convert may repeat; layouts are contiguous, chunked or compact.
// -consolidate merges every 1-D fixed dataset smaller than the given
// byte count into one indexed dataset per group.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dayu/internal/hdf5"
	"dayu/internal/repack"
	"dayu/internal/units"
	"dayu/internal/vfd"
)

type convertList map[string]hdf5.Layout

func (c convertList) String() string { return fmt.Sprint(map[string]hdf5.Layout(c)) }

func (c convertList) Set(v string) error {
	path, layoutName, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want /object/path=layout, got %q", v)
	}
	switch layoutName {
	case "contiguous":
		c[path] = hdf5.Contiguous
	case "chunked":
		c[path] = hdf5.Chunked
	case "compact":
		c[path] = hdf5.Compact
	default:
		return fmt.Errorf("unknown layout %q (contiguous, chunked, compact)", layoutName)
	}
	return nil
}

func main() {
	in := flag.String("in", "", "input file path")
	out := flag.String("out", "", "output file path")
	consolidate := flag.Int64("consolidate", 0, "merge 1-D datasets smaller than this many bytes")
	converts := convertList{}
	flag.Var(converts, "convert", "object layout conversion, e.g. -convert /g/data=contiguous (repeatable)")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, converts, *consolidate); err != nil {
		fmt.Fprintln(os.Stderr, "dayu-repack:", err)
		os.Exit(1)
	}
}

func run(in, out string, converts convertList, consolidate int64) error {
	srcDrv, err := vfd.OpenFileDriver(in)
	if err != nil {
		return err
	}
	src, err := hdf5.Open(srcDrv, in, hdf5.Config{})
	if err != nil {
		return err
	}
	dstDrv, err := vfd.OpenFileDriver(out)
	if err != nil {
		return err
	}
	dst, err := hdf5.Create(dstDrv, out, hdf5.Config{})
	if err != nil {
		return err
	}
	if err := repack.File(src, dst, repack.Advice{
		Convert:          converts,
		ConsolidateBelow: consolidate,
	}); err != nil {
		return err
	}
	inSize, outSize := src.EOF(), dst.EOF()
	if err := dst.Close(); err != nil {
		return err
	}
	if err := src.Close(); err != nil {
		return err
	}
	fmt.Printf("repacked %s (%s) -> %s (%s), %d conversions, consolidation threshold %s\n",
		in, units.Bytes(inSize), out, units.Bytes(outSize),
		len(converts), units.Bytes(consolidate))
	return nil
}
