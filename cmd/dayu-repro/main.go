// Command dayu-repro regenerates the paper's tables and figures.
//
// Usage:
//
//	dayu-repro [-quick] [-out dir] [-list] [all | <id> ...]
//
// IDs match the paper artifacts: table1 table2 table3 fig3 fig4 fig5
// fig6 fig7 fig8 fig9a fig9b fig9c fig9d fig10a fig10b fig11 fig12
// fig13a fig13b fig13c. Graph figures also write DOT/SVG/HTML/JSON
// artifacts under the output directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dayu/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale configurations")
	out := flag.String("out", "out", "artifact output directory")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	reps := flag.Int("reps", 3, "repetitions for wall-clock overhead measurements")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}

	opts := experiments.Options{Quick: *quick, Reps: *reps}
	exit := 0
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dayu-repro: unknown experiment %q (use -list)\n", id)
			exit = 2
			continue
		}
		table, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dayu-repro: %s failed: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(table.Format())
		if len(table.Artifacts) > 0 {
			dir := filepath.Join(*out, id)
			paths, err := table.WriteArtifacts(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dayu-repro: %s artifacts: %v\n", id, err)
				exit = 1
				continue
			}
			for _, p := range paths {
				fmt.Printf("wrote %s\n", p)
			}
			fmt.Println()
		}
	}
	os.Exit(exit)
}
