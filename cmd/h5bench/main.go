// Command h5bench runs the h5bench-like parallel I/O kernel, optionally
// under the DaYu Data Semantic Mapper, and reports wall time, tracer
// overhead, and the component breakdown.
//
// Usage:
//
//	h5bench [-procs n] [-size bytes] [-iosize bytes] [-mode both|vfd|vol|off]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dayu/internal/tracer"
	"dayu/internal/units"
	"dayu/internal/workloads"
)

func main() {
	procs := flag.Int("procs", 4, "simulated process count")
	size := flag.Int64("size", 16<<20, "bytes per process")
	ioSize := flag.Int64("iosize", 256<<10, "per-operation transfer size")
	mode := flag.String("mode", "both", "tracer mode: both, vfd, vol, off")
	corner := flag.Bool("corner", false, "run the corner-case benchmark instead")
	readOps := flag.Int("readops", 4000, "corner-case dataset read operations")
	flag.Parse()

	var cfg tracer.Config
	switch *mode {
	case "both":
	case "vfd":
		cfg.DisableVOL = true
	case "vol":
		cfg.DisableVFD = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "h5bench: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *corner {
		ccfg := workloads.CornerCaseConfig{ReadOps: *readOps}
		base, _, err := workloads.RunCornerCase(ccfg, nil)
		if err != nil {
			fatal(err)
		}
		if *mode == "off" {
			fmt.Printf("corner-case untraced: %s\n", units.Duration(base))
			return
		}
		tr := tracer.New(cfg)
		traced, tt, err := workloads.RunCornerCase(ccfg, tr)
		if err != nil {
			fatal(err)
		}
		sz, _ := tt.EncodedSize()
		report(base, traced, tr, sz)
		return
	}

	hcfg := workloads.H5benchConfig{Procs: *procs, BytesPerProc: *size, IOSize: *ioSize}
	base, _, err := workloads.RunH5bench(hcfg, nil)
	if err != nil {
		fatal(err)
	}
	if *mode == "off" {
		fmt.Printf("h5bench untraced: %s (%d procs x %s)\n",
			units.Duration(base), *procs, units.Bytes(*size))
		return
	}
	tr := tracer.New(cfg)
	traced, traces, err := workloads.RunH5bench(hcfg, tr)
	if err != nil {
		fatal(err)
	}
	var traceBytes int64
	for _, tt := range traces {
		if n, err := tt.EncodedSize(); err == nil {
			traceBytes += n
		}
	}
	report(base, traced, tr, traceBytes)
}

func report(base, traced time.Duration, tr *tracer.Tracer, traceBytes int64) {
	overhead := 0.0
	if traced > base && base > 0 {
		overhead = 100 * float64(traced-base) / float64(base)
	}
	fmt.Printf("untraced: %s  traced: %s  overhead: %.3f%%\n",
		units.Duration(base), units.Duration(traced), overhead)
	ct := tr.Timing()
	p, a, m := ct.Fractions()
	fmt.Printf("tracer components: parser %s (%s)  tracker %s (%s)  mapper %s (%s)\n",
		units.Duration(ct.InputParser), units.Percent(p, 1),
		units.Duration(ct.AccessTracker), units.Percent(a, 1),
		units.Duration(ct.CharacteristicMapper), units.Percent(m, 1))
	fmt.Printf("trace storage: %s\n", units.Bytes(traceBytes))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "h5bench:", err)
	os.Exit(1)
}
