package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWatchRejectsNegativeHorizon pins the fix for the silently-ignored
// negative -horizon: `dayu watch -horizon -5s` used to behave like
// "whole run" because only `> 0` values were forwarded; now it fails
// loudly, mirroring the server's 400 for ?horizon=-5s.
func TestWatchRejectsNegativeHorizon(t *testing.T) {
	for _, args := range [][]string{
		{"-horizon", "-5s"},
		{"-horizon=-1ns"},
		{"-horizon", "-10m", "-once"},
	} {
		err := cmdWatch(args)
		if err == nil || !strings.Contains(err.Error(), "non-negative") {
			t.Errorf("cmdWatch(%v) = %v, want non-negative horizon error", args, err)
		}
	}
}

// stubServe fakes just enough of a dayu serve instance for watch:
// health, live diagnostics, and (optionally) the SSE event stream.
func stubServe(t *testing.T, events bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/live/diagnostics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Dayu-Snapshot", "stub-1")
		w.Header().Set("X-Dayu-Partial-Tasks", "0")
		w.Header().Set("X-Dayu-Complete-Tasks", "2")
		fmt.Fprint(w, "[]")
	})
	if events {
		mux.HandleFunc("/v1/live/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, "id: 1\nevent: snapshot\n")
			fmt.Fprint(w, "data: {\"snapshot\":\"stub-1\",\"partial_tasks\":0,\ndata: \"complete_tasks\":2,\"findings\":[]}\n\n")
			w.(http.Flusher).Flush()
			<-r.Context().Done()
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestWatchOncePolling drives one polled observation end to end.
func TestWatchOncePolling(t *testing.T) {
	srv := stubServe(t, false)
	if err := cmdWatch([]string{"-server", srv.URL, "-once", "-sse=false"}); err != nil {
		t.Fatalf("cmdWatch polling: %v", err)
	}
}

// TestWatchOnceSSE consumes one pushed event (with multi-line data
// framing) and exits.
func TestWatchOnceSSE(t *testing.T) {
	srv := stubServe(t, true)
	if err := cmdWatch([]string{"-server", srv.URL, "-once"}); err != nil {
		t.Fatalf("cmdWatch sse: %v", err)
	}
}

// TestWatchSSEFallback pins the downgrade path: a server without
// /v1/live/events (404) must not fail watch, just demote it to polling.
func TestWatchSSEFallback(t *testing.T) {
	srv := stubServe(t, false)
	if err := cmdWatch([]string{"-server", srv.URL, "-once"}); err != nil {
		t.Fatalf("cmdWatch fallback: %v", err)
	}
}

// TestReadSSEEvent pins the client-side framing rules: comments
// (heartbeats) are skipped, and multi-line data fields rejoin with \n
// byte-identically.
func TestReadSSEEvent(t *testing.T) {
	stream := ": heartbeat\n\n" +
		"id: 7\nevent: snapshot\ndata: {\"a\":\ndata:  1}\n\n" +
		"event: lagged\ndata: {}\n\n"
	rd := bufio.NewReader(strings.NewReader(stream))

	ev, err := readSSEEvent(rd)
	if err != nil {
		t.Fatal(err)
	}
	if ev.id != "7" || ev.event != "snapshot" || ev.data != "{\"a\":\n 1}" {
		t.Fatalf("first event = %+v", ev)
	}
	ev, err = readSSEEvent(rd)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "lagged" || ev.data != "{}" {
		t.Fatalf("second event = %+v", ev)
	}
}
