// Command dayu is the workflow tracing and analysis CLI.
//
// Subcommands:
//
//	dayu run -workflow <pyflextrkr|ddmd|arldm> [-machine m] [-nodes n] -traces dir
//	        [-stream url] [-checkpoint-ops n] [-delta]
//	    Execute a workload replica on the simulated cluster, saving
//	    per-task traces and the workflow manifest. With -stream, each
//	    task additionally streams cumulative checkpoint records (every
//	    -checkpoint-ops file operations) and its completed trace to a
//	    running dayu serve instance's durable ingest, feeding the
//	    /v1/live/* endpoints while the workflow is still executing.
//	    -delta frames each checkpoint as a delta against the last
//	    acknowledged one, cutting pushed bytes for long tasks; the
//	    server reassembles cumulative state and NACK-resyncs after
//	    restarts, so the live view is byte-identical either way.
//
//	dayu analyze -traces dir [-out dir] [-sdg] [-regions] [-page n]
//	             [-by-stage] [-collapse n]
//	    Build the FTG (default) or SDG from saved traces and write
//	    DOT/SVG/HTML/JSON renderings.
//
//	dayu diagnose -traces dir
//	    Run the observation rules and print findings with their
//	    optimization guidelines.
//
//	dayu plan -traces dir [-tier nvme] [-nodes n]
//	    Derive a data-locality plan (placement, co-scheduling, staging)
//	    from saved traces and print it.
//
//	dayu report -traces dir [-o report.md] [-tier nvme] [-nodes n]
//	    Render a Markdown optimization report: summary, per-task I/O,
//	    dependence chains, findings by guideline, derived plan.
//
//	dayu faults -workflow <name> [-seed n] [-read-rate p] [-write-rate p]
//	            [-meta-rate p] [-torn p] [-corrupt p] [-fail-after n]
//	            [-fault-latency d] [-retries n] [-backoff d] [-reschedule]
//	    Execute a workload under deterministic fault injection and report
//	    per-task attempts, failures and the virtual-time cost of
//	    self-healing.
//
//	dayu bench [-quick] [-reps n] [-json] [-o BENCH_1.json]
//	           [-validate file]
//	    Run the overhead bench suite (h5bench + corner-case kernels,
//	    tracer on/off; PyFLEXTRKR/DDMD/ARLDM end to end) and print a
//	    summary or write the machine-readable BENCH_*.json record.
//	    -validate checks an existing record against the schema instead.
//
//	dayu metrics -workflow <name> [-machine m] [-nodes n] [-json]
//	    Execute a workload replica with the observability layer attached
//	    and emit the metrics registry in Prometheus text format (default)
//	    or JSON (-json): engine stage/task spans on the virtual-time
//	    axis, retry/rollback counters, per-driver VFD op histograms.
//
//	dayu serve -dir traces [-addr :8080] [-poll 2s] [-tier nvme] [-nodes n]
//	           [-wal dir] [-wal-fsync always|interval|never] [-ingest-queue n]
//	           [-max-body bytes] [-request-timeout d] [-shards n]
//	           [-history dir] [-history-retain n]
//	    Run the incremental analysis service: watch a trace directory
//	    and serve FTG/SDG renderings, diagnostics and locality plans
//	    over HTTP from a content-addressed result cache. See
//	    /healthz, /metrics and the /v1/{ftg,sdg,diagnose,plan,tasks}
//	    endpoints. With -wal, POST /v1/ingest accepts pushed traces
//	    into a crash-safe write-ahead log; SIGINT/SIGTERM drain
//	    in-flight requests and flush the WAL before exit. -shards
//	    partitions the parse/contribution caches and the WAL across N
//	    workers (responses stay byte-identical at any count); -history
//	    records every converged snapshot for /v1/history replay.
//
//	dayu push -traces dir -server http://host:8080 [-attempts n] [-timeout d]
//	    Push every trace file in a directory (plus manifest.json) to a
//	    running dayu serve instance's durable ingest endpoint, retrying
//	    transient failures and 429 backpressure with capped exponential
//	    backoff. Idempotent: re-pushing already-ingested traces is
//	    acknowledged as duplicates.
//
//	dayu watch -server http://host:8080 [-interval d] [-once] [-horizon d]
//	           [-sse=false]
//	    Follow a serve instance from the terminal: subscribe to the
//	    /v1/live/events stream (one pushed event per snapshot change,
//	    resumed with Last-Event-ID across reconnects) and print stream
//	    progress (complete vs in-flight tasks, WAL state) plus any
//	    anti-pattern findings as they appear. Servers without the
//	    stream — or -sse=false — fall back to polling /healthz and
//	    /v1/live/diagnostics every -interval. -horizon restricts
//	    diagnostics to the trailing window (must be non-negative);
//	    -once prints a single observation for scripts.
//
//	dayu convert -traces dir -o dir [-format dtb|json]
//	    Rewrite a trace directory in the requested serialization
//	    (dtb/v2 binary by default), carrying the manifest along.
//	    Analyses over the converted directory are byte-identical to
//	    the original.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/graph"
	"dayu/internal/obs"
	"dayu/internal/optimizer"
	"dayu/internal/report"
	"dayu/internal/serve"
	"dayu/internal/serve/client"
	"dayu/internal/serve/shard"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/units"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "faults":
		err = cmdFaults(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "push":
		err = cmdPush(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dayu: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dayu: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dayu <run|analyze|diagnose|plan|report|faults|bench|metrics|serve|push|watch|convert> [flags]
  run       execute a workload replica with tracing on the simulated cluster
  analyze   build FTG/SDG graphs from saved traces
  diagnose  detect I/O observations and print optimization guidelines
  plan      derive a data-locality optimization plan from traces
  report    render a Markdown optimization report from traces
  faults    execute a workload under deterministic fault injection with retry
  bench     run the overhead bench suite; -json writes BENCH_*.json
  metrics   run a workload with the obs layer on and dump its metrics
  serve     watch a trace directory and serve cached analyses over HTTP
  push      push a trace directory to a serve instance's durable ingest
  watch     follow a serve instance's live diagnostics from the terminal
  convert   rewrite a trace directory between JSON and dtb/v2 binary`)
}

func loadWorkload(name string) (workflow.Spec, func(*workflow.Engine) error, error) {
	switch name {
	case "pyflextrkr":
		spec, setup := workloads.PyFlextrkr(workloads.PyFlextrkrConfig{})
		return spec, setup, nil
	case "pyflextrkr-s3to5":
		spec, setup := workloads.PyFlextrkrStages3to5(workloads.PyFlextrkrConfig{})
		return spec, setup, nil
	case "ddmd":
		spec, setup := workloads.DDMD(workloads.DDMDConfig{})
		return spec, setup, nil
	case "arldm":
		spec, setup := workloads.ARLDM(workloads.ARLDMConfig{})
		return spec, setup, nil
	}
	return workflow.Spec{}, nil, fmt.Errorf("unknown workflow %q (pyflextrkr, pyflextrkr-s3to5, ddmd, arldm)", name)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("workflow", "pyflextrkr", "workload replica to run")
	machine := fs.String("machine", "cpu-cluster", "simulated machine (cpu-cluster, gpu-cluster)")
	nodes := fs.Int("nodes", 2, "cluster node count")
	tracesDir := fs.String("traces", "traces", "trace output directory")
	format := fs.String("format", "json", "trace serialization (json, dtb)")
	ioTrace := fs.Bool("io-trace", false, "record time-sensitive raw I/O traces")
	parallel := fs.Bool("parallel", false, "execute stage tasks on goroutines (per-task profilers)")
	stream := fs.String("stream", "", "dayu serve base URL to stream live checkpoints and traces to")
	checkpointOps := fs.Int64("checkpoint-ops", 64, "file operations between streamed checkpoints (with -stream)")
	streamAttempts := fs.Int("stream-attempts", 8, "delivery attempts per streamed record (with -stream)")
	delta := fs.Bool("delta", false, "frame streamed checkpoints as deltas against the last acknowledged one (with -stream)")
	fs.Parse(args)

	tf, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}
	m, err := sim.MachineByName(*machine)
	if err != nil {
		return err
	}
	spec, setup, err := loadWorkload(*name)
	if err != nil {
		return err
	}
	tcfg := tracer.Config{IOTrace: *ioTrace}
	var sink *client.StreamSink
	var streamClient *client.Client
	if *stream != "" {
		streamClient, err = client.New(*stream, client.Options{MaxAttempts: *streamAttempts})
		if err != nil {
			return err
		}
		sink = client.NewStreamSinkOpts(context.Background(), streamClient, client.StreamOptions{Delta: *delta})
		tcfg.Sink = sink
		tcfg.CheckpointOps = *checkpointOps
	}
	eng, err := workflow.NewEngine(workflow.Cluster{Machine: m, Nodes: *nodes, Parallel: *parallel}, nil, tcfg)
	if err != nil {
		return err
	}
	if err := setup(eng); err != nil {
		return err
	}
	res, err := eng.Run(spec)
	if err != nil {
		return err
	}
	if err := res.SaveTraces(*tracesDir, tf); err != nil {
		return err
	}
	fmt.Printf("workflow %s: %d tasks, simulated time %s\n",
		spec.Name, len(res.Traces), units.Duration(res.Total()))
	for _, s := range res.Stages {
		fmt.Printf("  %-24s %s\n", s.Name, units.Duration(s.Time))
	}
	fmt.Printf("traces written to %s\n", *tracesDir)
	if sink != nil {
		// The manifest completes the server's live view (stage ordering
		// for the analyzer); it only exists after the run.
		if data, err := os.ReadFile(filepath.Join(*tracesDir, "manifest.json")); err == nil {
			if _, err := streamClient.PushManifestBytes(context.Background(), data); err != nil {
				return fmt.Errorf("stream manifest: %w", err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		checkpoints, finals, dropped := sink.Stats()
		fmt.Printf("streamed to %s: %d checkpoints, %d finals", *stream, checkpoints, finals)
		if dropped > 0 {
			fmt.Printf(", %d dropped", dropped)
		}
		if *delta {
			deltas, resyncs, pushed := sink.DeltaStats()
			fmt.Printf(" (%d deltas, %d resyncs, %s pushed)", deltas, resyncs, units.Bytes(pushed))
		}
		fmt.Println()
		if err := sink.Err(); err != nil {
			return fmt.Errorf("streaming was degraded (the live view may lag the saved traces): %w", err)
		}
	}
	return nil
}

func loadTraceDir(dir string) ([]*trace.TaskTrace, *trace.Manifest, error) {
	traces, err := trace.LoadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(traces) == 0 {
		return nil, nil, fmt.Errorf("no traces in %s", dir)
	}
	m, err := trace.LoadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	return traces, m, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace input directory")
	out := fs.String("out", "out", "graph output directory")
	sdg := fs.Bool("sdg", false, "build the Semantic Dataflow Graph instead of the FTG")
	regions := fs.Bool("regions", false, "add file address-region nodes (SDG only)")
	page := fs.Int64("page", 4096, "address-region page size")
	byStage := fs.Bool("by-stage", false, "aggregate task nodes by manifest stage")
	collapse := fs.Int("collapse", 0, "collapse datasets of files holding more than N")
	timeline := fs.Bool("timeline", false, "also emit the time-ordered task/file timeline")
	fs.Parse(args)

	traces, m, err := loadTraceDir(*tracesDir)
	if err != nil {
		return err
	}
	start := time.Now()
	var g *graph.Graph
	base := "ftg"
	if *sdg {
		g = analyzer.BuildSDG(traces, m, analyzer.Options{
			PageSize: *page, IncludeRegions: *regions, IncludeFileMetadata: *regions,
		})
		base = "sdg"
	} else {
		g = analyzer.BuildFTG(traces, m)
	}
	if *byStage {
		if g, err = analyzer.AggregateByStage(g, m); err != nil {
			return err
		}
	}
	if *collapse > 0 {
		if g, err = analyzer.CollapseDatasets(g, *collapse); err != nil {
			return err
		}
	}
	buildTime := time.Since(start)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	outputs := map[string]string{
		base + ".dot":  g.DOT(),
		base + ".svg":  g.SVG(),
		base + ".html": g.HTML(),
	}
	if data, err := json.MarshalIndent(g, "", " "); err == nil {
		outputs[base+".json"] = string(data)
	}
	for name, content := range outputs {
		if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	if *timeline {
		tl := analyzer.BuildTimeline(traces, m)
		if err := os.WriteFile(filepath.Join(*out, "timeline.html"), []byte(tl.HTML()), 0o644); err != nil {
			return err
		}
		fmt.Print(tl.Text(100))
		fmt.Printf("wrote %s/timeline.html\n", *out)
	}
	s := analyzer.Summarize(g)
	fmt.Printf("%s: %d tasks, %d files, %d datasets, %d regions, %d edges, %s volume (built in %s)\n",
		base, s.Tasks, s.Files, s.Datasets, s.Regions, s.Edges,
		units.Bytes(s.Volume), units.Duration(buildTime))
	fmt.Printf("wrote %s/{%s.dot,%s.svg,%s.html,%s.json}\n", *out, base, base, base, base)
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace input directory")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	fs.Parse(args)

	traces, m, err := loadTraceDir(*tracesDir)
	if err != nil {
		return err
	}
	findings := diagnose.Analyze(traces, m, diagnose.Thresholds{})
	if *asJSON {
		data, err := diagnose.EncodeJSON(findings)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	if len(findings) == 0 {
		fmt.Println("no findings")
		return nil
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	fmt.Printf("%d findings\n", len(findings))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace input directory")
	out := fs.String("o", "", "output file (default stdout)")
	tier := fs.String("tier", "nvme", "fast tier for the derived plan")
	nodes := fs.Int("nodes", 2, "cluster node count for the derived plan")
	fs.Parse(args)

	traces, m, err := loadTraceDir(*tracesDir)
	if err != nil {
		return err
	}
	md := report.Generate(traces, m, report.Options{
		Plan: &optimizer.LocalityOptions{
			FastTier: *tier, Nodes: *nodes,
			StageOutDisposable: true, CacheReused: true,
		},
	})
	if *out == "" {
		fmt.Print(md)
		return nil
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	name := fs.String("workflow", "pyflextrkr-s3to5", "workload replica to run")
	machine := fs.String("machine", "cpu-cluster", "simulated machine (cpu-cluster, gpu-cluster)")
	nodes := fs.Int("nodes", 2, "cluster node count")
	parallel := fs.Bool("parallel", false, "execute stage tasks on goroutines")
	seed := fs.Int64("seed", 1, "base fault seed (same seed => same faults, same virtual time)")
	readRate := fs.Float64("read-rate", 0.02, "transient read-error probability per data operation")
	writeRate := fs.Float64("write-rate", 0.02, "transient write-error probability per data operation")
	metaRate := fs.Float64("meta-rate", -1, "metadata-op fault probability (default: same as data rates)")
	torn := fs.Float64("torn", 0.005, "torn-write probability (partial write lands, op fails)")
	corrupt := fs.Float64("corrupt", 0, "silent read-corruption probability (bit flips)")
	failAfter := fs.Int64("fail-after", 0, "fail-stop each file session after N operations (0 = off)")
	faultLatency := fs.Duration("fault-latency", time.Millisecond, "virtual latency billed per injected fault")
	retries := fs.Int("retries", 5, "max attempts per task (1 = fail-fast)")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "virtual backoff before the first retry (doubles per attempt)")
	reschedule := fs.Bool("reschedule", true, "move retried tasks to a different node")
	fs.Parse(args)

	m, err := sim.MachineByName(*machine)
	if err != nil {
		return err
	}
	spec, setup, err := loadWorkload(*name)
	if err != nil {
		return err
	}
	eng, err := workflow.NewEngine(workflow.Cluster{Machine: m, Nodes: *nodes, Parallel: *parallel}, nil, tracer.Config{})
	if err != nil {
		return err
	}
	if err := setup(eng); err != nil {
		return err
	}
	rr, wr := vfd.Uniform(*readRate), vfd.Uniform(*writeRate)
	if *metaRate >= 0 {
		rr.Meta, wr.Meta = *metaRate, *metaRate
	}
	eng.SetFaults(&vfd.FaultPlan{
		Seed: *seed, ReadError: rr, WriteError: wr,
		TornWrite: *torn, CorruptRead: *corrupt,
		FailStopAfter: *failAfter, Latency: *faultLatency,
	})
	if *retries > 1 {
		eng.SetRetry(&workflow.RetryPolicy{
			MaxAttempts: *retries, Backoff: *backoff, Reschedule: *reschedule,
		})
	}

	res, runErr := eng.Run(spec)
	if res == nil {
		return runErr
	}
	fmt.Printf("workflow %s under faults (seed %d): simulated time %s\n",
		spec.Name, *seed, units.Duration(res.Total()))
	var retried, failed int
	for _, s := range res.Stages {
		if len(s.Tasks) == 0 {
			continue
		}
		fmt.Printf("  stage %s (%s)\n", s.Name, units.Duration(s.Time))
		for _, tr := range s.Tasks {
			status := "ok"
			if tr.Failed {
				status = "FAILED"
				failed++
			}
			if tr.Attempts > 1 {
				retried++
			}
			fmt.Printf("    %-20s node %d  attempts %d  io %-12s backoff %-12s %s\n",
				tr.Name, tr.Node, tr.Attempts, units.Duration(tr.IO),
				units.Duration(tr.Backoff), status)
		}
	}
	fmt.Printf("tasks: %d traced, %d retried, %d failed\n", len(res.Traces), retried, failed)
	if runErr != nil {
		return fmt.Errorf("workflow completed partially: %w", runErr)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink volumes for a CI smoke run")
	reps := fs.Int("reps", 3, "repetitions per timed kernel (fastest wins)")
	asJSON := fs.Bool("json", false, "write the machine-readable BENCH record")
	out := fs.String("o", "BENCH_1.json", "output path for -json")
	validate := fs.String("validate", "", "validate an existing BENCH_*.json and exit")
	fs.Parse(args)

	if *validate != "" {
		if _, err := workloads.LoadBenchJSON(*validate); err != nil {
			return err
		}
		fmt.Printf("%s: valid %s record\n", *validate, workloads.BenchSchema)
		return nil
	}

	res, err := workloads.RunBenchSuite(workloads.BenchSuiteConfig{Quick: *quick, Reps: *reps})
	if err != nil {
		return err
	}
	for _, k := range res.Kernels {
		fmt.Printf("kernel %-12s untraced %-12s traced %-12s tracer %.2f%%  obs-disabled %.2f%%  obs-on %.2f%%\n",
			k.Name,
			units.Duration(time.Duration(k.UntracedNS)),
			units.Duration(time.Duration(k.TracedNS)),
			k.TracerOverheadPct, k.DisabledObsOverheadPct, k.InstrumentationOverheadPct)
	}
	if a := res.Analyzer; a != nil {
		match := "outputs identical"
		if !a.OutputsIdentical {
			match = "OUTPUTS DIFFER"
		}
		fmt.Printf("kernel %-12s %d tasks on %d cores (parallelism %d)  serial %-12s parallel %-12s speedup %.2fx [%s]  %s\n",
			a.Name, a.Tasks, a.Cores, a.Parallelism,
			units.Duration(time.Duration(a.SerialNS)),
			units.Duration(time.Duration(a.ParallelNS)), a.Speedup, a.SpeedupGate, match)
	}
	if c := res.Codec; c != nil {
		match := "graphs identical"
		if !c.BinaryEquivalent {
			match = "GRAPHS DIFFER"
		}
		fmt.Printf("kernel %-12s %d traces  encode json %-12s dtb %-12s (%.2fx [%s])  decode json %-12s dtb %-12s (%.2fx)  size json %-10s dtb %-10s (%.1f%%)  %s\n",
			c.Name, c.Tasks,
			units.Duration(time.Duration(c.JSONEncodeNS)),
			units.Duration(time.Duration(c.BinaryEncodeNS)), c.EncodeSpeedup, c.EncodeSpeedupGate,
			units.Duration(time.Duration(c.JSONDecodeNS)),
			units.Duration(time.Duration(c.BinaryDecodeNS)), c.DecodeSpeedup,
			units.Bytes(c.JSONBytes), units.Bytes(c.BinaryBytes), 100*c.SizeRatio, match)
		fmt.Printf("kernel %-12s alloc bytes/op  encode json %-10s dtb %-10s  decode dtb %-10s\n",
			c.Name,
			units.Bytes(c.JSONEncodeAllocBytesPerOp),
			units.Bytes(c.BinaryEncodeAllocBytesPerOp),
			units.Bytes(c.BinaryDecodeAllocBytesPerOp))
	}
	for _, w := range res.Workflows {
		fmt.Printf("workflow %-12s %d stages, %d tasks  virtual %-12s wall %-12s tracer %.2f%%\n",
			w.Name, w.Stages, w.Tasks,
			units.Duration(time.Duration(w.VirtualNS)),
			units.Duration(time.Duration(w.WallTracedNS)), w.TracerOverheadPct)
	}
	if *asJSON {
		if err := res.Validate(); err != nil {
			return err
		}
		if err := res.WriteJSON(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	name := fs.String("workflow", "pyflextrkr", "workload replica to run")
	machine := fs.String("machine", "cpu-cluster", "simulated machine (cpu-cluster, gpu-cluster)")
	nodes := fs.Int("nodes", 2, "cluster node count")
	parallel := fs.Bool("parallel", false, "execute stage tasks on goroutines")
	asJSON := fs.Bool("json", false, "emit the registry as JSON instead of Prometheus text")
	fs.Parse(args)

	m, err := sim.MachineByName(*machine)
	if err != nil {
		return err
	}
	spec, setup, err := loadWorkload(*name)
	if err != nil {
		return err
	}
	eng, err := workflow.NewEngine(workflow.Cluster{Machine: m, Nodes: *nodes, Parallel: *parallel}, nil, tracer.Config{})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	if err := setup(eng); err != nil {
		return err
	}
	if _, err := eng.Run(spec); err != nil {
		return err
	}
	if *asJSON {
		data, err := reg.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(reg.PrometheusText())
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "traces", "trace directory to watch and serve")
	addr := fs.String("addr", ":8080", "HTTP listen address")
	poll := fs.Duration("poll", 2*time.Second, "directory poll interval (0 = rescan only on request)")
	tier := fs.String("tier", "nvme", "fast tier for /v1/plan defaults")
	nodes := fs.Int("nodes", 2, "cluster node count for /v1/plan defaults")
	page := fs.Int64("page", 4096, "SDG address-region page size")
	walDir := fs.String("wal", "", "write-ahead log directory for POST /v1/ingest (empty = push ingest disabled)")
	walFsync := fs.String("wal-fsync", "interval", "WAL fsync policy (always, interval, never)")
	walFsyncEvery := fs.Duration("wal-fsync-interval", 100*time.Millisecond, "fsync period for -wal-fsync=interval")
	walSegBytes := fs.Int64("wal-segment-bytes", 4<<20, "rotate WAL segments at this size")
	ingestQueue := fs.Int("ingest-queue", 64, "pushes admitted ahead of folding before 429 backpressure")
	maxBody := fs.Int64("max-body", 32<<20, "largest accepted request body in bytes")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request handler timeout (0 = none)")
	shards := fs.Int("shards", 1, fmt.Sprintf("ingest shard workers partitioning caches and WAL (1-%d); responses stay byte-identical at any count", shard.MaxShards))
	historyDir := fs.String("history", "", "snapshot-history store directory for /v1/history (empty = history disabled)")
	historyRetain := fs.Int("history-retain", 64, "snapshots retained in the history store before compaction")
	fs.Parse(args)

	if *shards < 1 || *shards > shard.MaxShards {
		return fmt.Errorf("serve: -shards %d out of range [1, %d]", *shards, shard.MaxShards)
	}
	cfg := serve.Config{
		Dir:        *dir,
		Registry:   obs.NewRegistry(),
		SDGOptions: analyzer.Options{PageSize: *page},
		PlanOptions: optimizer.LocalityOptions{
			FastTier: *tier, Nodes: *nodes, StageOutDisposable: true,
		},
		Poll:          *poll,
		IngestQueue:   *ingestQueue,
		MaxBodyBytes:  *maxBody,
		Shards:        *shards,
		HistoryDir:    *historyDir,
		HistoryRetain: *historyRetain,
	}
	if *walDir != "" {
		policy, err := serve.ParseFsyncPolicy(*walFsync)
		if err != nil {
			return err
		}
		cfg.WALDir = *walDir
		cfg.WAL = serve.WALOptions{
			Fsync:         policy,
			FsyncInterval: *walFsyncEvery,
			SegmentBytes:  *walSegBytes,
		}
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	s.Start()

	var handler http.Handler = s
	if *reqTimeout > 0 {
		// TimeoutHandler buffers the whole response, which would turn the
		// SSE stream into a 30s-delayed timeout error; route the events
		// endpoint straight to the server (it manages its own lifetime
		// via heartbeats and connection deadlines).
		timed := http.TimeoutHandler(s, *reqTimeout, "request timed out\n")
		mux := http.NewServeMux()
		mux.Handle("/v1/live/events", s)
		mux.Handle("/", timed)
		handler = mux
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	mode := "pull-only"
	if *walDir != "" {
		mode = fmt.Sprintf("push ingest on (wal %s, fsync %s)", *walDir, *walFsync)
	}
	if *shards > 1 {
		mode += fmt.Sprintf(", %d shards", *shards)
	}
	if *historyDir != "" {
		mode += fmt.Sprintf(", history %s", *historyDir)
	}
	fmt.Printf("dayu serve: watching %s, listening on %s (poll %s, %s)\n", *dir, ln.Addr(), *poll, mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "dayu serve: shutting down (draining in-flight requests, flushing WAL)")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(sctx)
	s.Close() // drains acknowledged records and flushes + closes the WAL
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	return nil
}

// watchFinding mirrors the diagnose JSON wire form (the CLI decodes
// the serve response rather than importing the analysis internals'
// in-memory type).
type watchFinding struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	Task     string `json:"task,omitempty"`
	File     string `json:"file,omitempty"`
	Object   string `json:"object,omitempty"`
	Detail   string `json:"detail"`
}

// watchPrinter renders observations for dayu watch, deduplicating the
// findings list by snapshot id so both transports (SSE, polling) print
// identically.
type watchPrinter struct {
	lastSnapshot string
}

func (p *watchPrinter) print(status, snapshot string, partial, complete string, findings []watchFinding, wal *serve.WALHealth) {
	line := fmt.Sprintf("%s %s: %s complete, %s in flight, %d findings",
		time.Now().Format("15:04:05"), status, complete, partial, len(findings))
	if wal != nil {
		line += fmt.Sprintf(" | wal: %d pending, %d quarantined",
			wal.PendingRecords, wal.Quarantined)
	}
	fmt.Println(line)
	if snapshot != p.lastSnapshot {
		// Only re-print the findings when the served state changed.
		for _, f := range findings {
			loc := f.Task
			if f.File != "" {
				loc += " " + f.File
			}
			if f.Object != "" {
				loc += " " + f.Object
			}
			fmt.Printf("  [%s] %s %s: %s\n", f.Severity, f.Kind, loc, f.Detail)
		}
		p.lastSnapshot = snapshot
	}
}

// watchEvent mirrors the /v1/live/events data payload.
type watchEvent struct {
	Snapshot      string         `json:"snapshot"`
	PartialTasks  int            `json:"partial_tasks"`
	CompleteTasks int            `json:"complete_tasks"`
	Findings      []watchFinding `json:"findings"`
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id, event string
	data      string
}

// readSSEEvent parses the next event off an SSE stream, skipping
// comment lines (heartbeats). Multi-line data fields are rejoined with
// \n, which reassembles the server's payload byte-identically.
func readSSEEvent(rd *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	var data []string
	haveData := false
	for {
		raw, err := rd.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line := strings.TrimRight(raw, "\r\n")
		switch {
		case line == "":
			if ev.id != "" || ev.event != "" || haveData {
				ev.data = strings.Join(data, "\n")
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // comment (heartbeat)
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: "))
			haveData = true
		}
	}
}

// errSSEUnsupported marks a server without /v1/live/events (or a proxy
// that breaks streaming); watch falls back to polling.
var errSSEUnsupported = errors.New("server does not support /v1/live/events")

// watchSSE follows the event stream until ctx ends or the connection
// drops; it returns the Last-Event-ID to resume from. A nil error with
// done=true means -once was satisfied.
func watchSSE(ctx context.Context, server, query, lastID string, once bool, p *watchPrinter) (string, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, server+"/v1/live/events"+query, nil)
	if err != nil {
		return lastID, false, err
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	// No client timeout: the stream is long-lived and heartbeats keep
	// it distinguishable from a dead peer.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return lastID, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusNotImplemented {
		return lastID, false, errSSEUnsupported
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return lastID, false, fmt.Errorf("%s/v1/live/events: status %d: %s", server, resp.StatusCode, string(body))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return lastID, false, errSSEUnsupported
	}
	rd := bufio.NewReader(resp.Body)
	for {
		ev, err := readSSEEvent(rd)
		if err != nil {
			return lastID, false, err
		}
		switch ev.event {
		case "lagged":
			fmt.Fprintln(os.Stderr, "dayu watch: lagging behind the event stream (intermediate states skipped)")
		case "snapshot":
			if ev.id != "" {
				lastID = ev.id
			}
			var we watchEvent
			if err := json.Unmarshal([]byte(ev.data), &we); err != nil {
				return lastID, false, fmt.Errorf("decode event: %w", err)
			}
			var health serve.Health
			status := "?"
			if err := getJSON(&http.Client{Timeout: 10 * time.Second}, server+"/healthz", &health); err == nil {
				status = health.Status
			}
			p.print(status, we.Snapshot, strconv.Itoa(we.PartialTasks), strconv.Itoa(we.CompleteTasks), we.Findings, health.WAL)
			if once {
				return lastID, true, nil
			}
		}
	}
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "dayu serve base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval (and SSE reconnect delay)")
	once := fs.Bool("once", false, "print one observation and exit")
	horizon := fs.Duration("horizon", 0, "restrict diagnostics to the trailing horizon (0 = whole run)")
	sse := fs.Bool("sse", true, "follow /v1/live/events (server push); -sse=false forces polling")
	fs.Parse(args)

	if *horizon < 0 {
		// Mirror the server's 400: a negative horizon is a mistake, not
		// "whole run" — silently ignoring it hid typos like -horizon -5s.
		return fmt.Errorf("watch: -horizon must be non-negative (got %s)", *horizon)
	}
	query := ""
	if *horizon > 0 {
		query = "?horizon=" + horizon.String()
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	diagURL := *server + "/v1/live/diagnostics" + query

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	printer := &watchPrinter{}
	observe := func() error {
		var health serve.Health
		if err := getJSON(hc, *server+"/healthz", &health); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, diagURL, nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("%s: status %d: %s", diagURL, resp.StatusCode, string(body))
		}
		var findings []watchFinding
		if err := json.NewDecoder(resp.Body).Decode(&findings); err != nil {
			return fmt.Errorf("decode diagnostics: %w", err)
		}
		printer.print(health.Status, resp.Header.Get("X-Dayu-Snapshot"),
			resp.Header.Get("X-Dayu-Partial-Tasks"), resp.Header.Get("X-Dayu-Complete-Tasks"),
			findings, health.WAL)
		return nil
	}

	if *sse {
		lastID := ""
		for {
			id, done, err := watchSSE(ctx, *server, query, lastID, *once, printer)
			lastID = id
			if done {
				return nil
			}
			if errors.Is(err, errSSEUnsupported) {
				fmt.Fprintln(os.Stderr, "dayu watch: no event stream, falling back to polling")
				break
			}
			if ctx.Err() != nil {
				return nil
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dayu watch: event stream: %v (reconnecting in %s)\n", err, *interval)
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(*interval):
			}
		}
	}

	if err := observe(); err != nil {
		return err
	}
	if *once {
		return nil
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			if err := observe(); err != nil {
				fmt.Fprintf(os.Stderr, "dayu watch: %v\n", err)
			}
		}
	}
}

// getJSON fetches a URL and decodes its JSON body into out. Non-2xx
// statuses are not errors here: /healthz answers 503 with a valid body
// while degraded, which is exactly what watch wants to display.
func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace directory to push")
	server := fs.String("server", "http://127.0.0.1:8080", "dayu serve base URL")
	attempts := fs.Int("attempts", 8, "delivery attempts per record before giving up")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline for the whole push")
	manifest := fs.Bool("manifest", true, "also push manifest.json when present")
	fs.Parse(args)

	c, err := client.New(*server, client.Options{MaxAttempts: *attempts})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var sum client.DirSummary
	if *manifest {
		sum, err = c.PushDir(ctx, *tracesDir)
	} else {
		sum, err = c.PushTraces(ctx, *tracesDir)
	}
	if err != nil {
		return err
	}
	fmt.Printf("pushed %d traces to %s: %d accepted, %d duplicates", sum.Pushed, *server, sum.Accepted, sum.Duplicates)
	if sum.Manifest {
		fmt.Printf(", manifest updated")
	}
	fmt.Println()
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace input directory")
	out := fs.String("o", "", "output directory (required, distinct from -traces)")
	format := fs.String("format", "dtb", "target serialization (json, dtb)")
	fs.Parse(args)

	tf, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("convert: -o output directory required")
	}
	traces, m, err := loadTraceDir(*tracesDir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var inBytes, outBytes int64
	for _, tt := range traces {
		path, err := tt.SaveFormat(*out, tf)
		if err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		outBytes += info.Size()
		n, err := tt.EncodedSizeIn(trace.FormatJSON)
		if err != nil {
			return err
		}
		inBytes += n
	}
	if m != nil {
		if err := trace.SaveManifest(*out, m); err != nil {
			return err
		}
	}
	fmt.Printf("converted %d traces to %s (%s) — %s as JSON, %s on disk (%.1f%%)\n",
		len(traces), *out, tf, units.Bytes(inBytes), units.Bytes(outBytes),
		100*float64(outBytes)/float64(inBytes))
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	tracesDir := fs.String("traces", "traces", "trace input directory")
	tier := fs.String("tier", "nvme", "node-local fast tier for placement")
	nodes := fs.Int("nodes", 2, "cluster node count")
	fs.Parse(args)

	traces, m, err := loadTraceDir(*tracesDir)
	if err != nil {
		return err
	}
	plan := optimizer.PlanDataLocality(traces, m, optimizer.LocalityOptions{
		FastTier: *tier, Nodes: *nodes, StageOutDisposable: true,
	})
	out, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
