package dayu

// One benchmark per paper table/figure (see DESIGN.md's per-experiment
// index), each exercising the kernel behind that artifact, plus
// ablation benches for the design choices DESIGN.md calls out. The
// printable paper rows come from `go run ./cmd/dayu-repro`.

import (
	"fmt"
	"testing"

	"dayu/internal/analyzer"
	"dayu/internal/hdf5"
	"dayu/internal/optimizer"
	"dayu/internal/semantics"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

// tracedTask runs one dataset write/read cycle under a tracer config.
func tracedTask(b *testing.B, cfg tracer.Config) *trace.TaskTrace {
	b.Helper()
	tr := tracer.New(cfg)
	tr.BeginTask("bench")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "bench.h5")
	f, err := hdf5.Create(drv, "bench.h5", hdf5.Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("d", hdf5.Float64, []int64{4096}, nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 32768)
	if err := ds.WriteAll(buf); err != nil {
		b.Fatal(err)
	}
	if _, err := ds.ReadAll(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return tr.EndTask()
}

// BenchmarkTable1 measures producing the Table I object-level records.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tt := tracedTask(b, tracer.Config{DisableVFD: true})
		if len(tt.Objects) == 0 {
			b.Fatal("no object records")
		}
	}
}

// BenchmarkTable2 measures producing the Table II file-level records.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tt := tracedTask(b, tracer.Config{DisableVOL: true})
		if len(tt.Files) == 0 {
			b.Fatal("no file records")
		}
	}
}

// BenchmarkTable3 measures the Table III device cost model.
func BenchmarkTable3(b *testing.B) {
	devs := []sim.DeviceSpec{sim.NFS, sim.BeeGFS, sim.NVMeSSD, sim.SATASSD, sim.HDD, sim.Memory}
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, d := range devs {
			sink += int64(d.ContendedCost(sim.RawData, 1<<20, i%2 == 0, 1+i%8))
		}
	}
	_ = sink
}

// BenchmarkFig3 measures single-task SDG construction with regions.
func BenchmarkFig3(b *testing.B) {
	tt := tracedTask(b, tracer.Config{})
	traces := []*trace.TaskTrace{tt}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analyzer.BuildSDG(traces, nil, analyzer.Options{
			PageSize: 4096, IncludeRegions: true, IncludeFileMetadata: true,
		})
		if g.NumNodes() == 0 {
			b.Fatal("empty SDG")
		}
	}
}

func benchCluster() workflow.Cluster {
	return workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}
}

func runReplicaBench(b *testing.B, spec workflow.Spec, setup func(*workflow.Engine) error,
	plan *workflow.Plan) *workflow.Result {
	b.Helper()
	eng, err := workflow.NewEngine(benchCluster(), plan, tracer.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := setup(eng); err != nil {
		b.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

var quickPft = workloads.PyFlextrkrConfig{
	ParallelTasks: 2, InputFiles: 2, FeatureBytes: 8 << 10,
	Stage9Datasets: 16, Stage9Accesses: 3,
}

// BenchmarkFig4 measures the PyFLEXTRKR replica run + FTG build.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, setup := workloads.PyFlextrkr(quickPft)
		res := runReplicaBench(b, spec, setup, nil)
		if analyzer.BuildFTG(res.Traces, res.Manifest).NumNodes() == 0 {
			b.Fatal("empty FTG")
		}
	}
}

// BenchmarkFig5 measures the stage-9 SDG build over replica traces.
func BenchmarkFig5(b *testing.B) {
	spec, setup := workloads.PyFlextrkr(quickPft)
	res := runReplicaBench(b, spec, setup, nil)
	var stage9 []*trace.TaskTrace
	for _, tt := range res.Traces {
		if tt.Task == "run_speed" {
			stage9 = append(stage9, tt)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analyzer.BuildSDG(stage9, res.Manifest, analyzer.Options{})
		if len(g.NodesOfKind("dataset")) == 0 {
			b.Fatal("no dataset nodes")
		}
	}
}

var quickDDMD = workloads.DDMDConfig{
	SimTasks: 4, ContactMapBytes: 32 << 10, SmallBytes: 4 << 10, Epochs: 4,
}

// BenchmarkFig6 measures the DDMD replica run + FTG build.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, setup := workloads.DDMD(quickDDMD)
		res := runReplicaBench(b, spec, setup, nil)
		if analyzer.BuildFTG(res.Traces, res.Manifest).NumNodes() == 0 {
			b.Fatal("empty FTG")
		}
	}
}

// BenchmarkFig7 measures the aggregate/training SDG with metadata nodes.
func BenchmarkFig7(b *testing.B) {
	spec, setup := workloads.DDMD(quickDDMD)
	res := runReplicaBench(b, spec, setup, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analyzer.BuildSDG(res.Traces, res.Manifest, analyzer.Options{IncludeFileMetadata: true})
		if g.NumEdges() == 0 {
			b.Fatal("empty SDG")
		}
	}
}

// BenchmarkFig8 measures the ARLDM stage-1 VL write under each layout.
func BenchmarkFig8(b *testing.B) {
	for _, layout := range []hdf5.Layout{hdf5.Contiguous, hdf5.Chunked} {
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, setup := workloads.ARLDM(workloads.ARLDMConfig{
					Stories: 24, ImageBytes: 8 << 10, Layout: layout,
				})
				runReplicaBench(b, spec, setup, nil)
			}
		})
	}
}

// BenchmarkFig9a measures h5bench with and without the tracer (the
// overhead Figure 9a reports).
func BenchmarkFig9a(b *testing.B) {
	cfg := workloads.H5benchConfig{Procs: 1, BytesPerProc: 4 << 20, IOSize: 256 << 10}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunH5bench(cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunH5bench(cfg, tracer.New(tracer.Config{})); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9b measures multi-process h5bench under tracing.
func BenchmarkFig9b(b *testing.B) {
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			cfg := workloads.H5benchConfig{Procs: procs, BytesPerProc: 1 << 20, IOSize: 256 << 10}
			for i := 0; i < b.N; i++ {
				if _, _, err := workloads.RunH5bench(cfg, tracer.New(tracer.Config{})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9c measures the corner-case workload with and without the
// tracer (worst-case overhead).
func BenchmarkFig9c(b *testing.B) {
	cfg := workloads.CornerCaseConfig{ReadOps: 2000}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunCornerCase(cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{IOTrace: true})); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9d measures trace serialization (the storage overhead).
func BenchmarkFig9d(b *testing.B) {
	_, tt, err := workloads.RunCornerCase(workloads.CornerCaseConfig{ReadOps: 2000},
		tracer.New(tracer.Config{IOTrace: true}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := tt.EncodedSize()
		if err != nil || n == 0 {
			b.Fatal("encode failed")
		}
		b.SetBytes(n)
	}
}

// BenchmarkFig10 measures the per-op tracer hot path whose component
// split Figure 10 reports.
func BenchmarkFig10(b *testing.B) {
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("bench")
	obs := tr.VFDObserver()
	op := vfd.Op{Offset: 4096, Length: 512, Write: true, Class: sim.RawData,
		File: "f.h5", Object: "/d"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Seq = int64(i)
		obs.Observe(op)
	}
}

// BenchmarkFig11 measures baseline vs locality-planned execution of the
// PyFLEXTRKR stage 3-5 sub-workflow.
func BenchmarkFig11(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec, setup := workloads.PyFlextrkrStages3to5(quickPft)
			runReplicaBench(b, spec, setup, nil)
		}
	})
	b.Run("optimized", func(b *testing.B) {
		spec, setup := workloads.PyFlextrkrStages3to5(quickPft)
		base := runReplicaBench(b, spec, setup, nil)
		plan := optimizer.PlanDataLocality(base.Traces, base.Manifest, optimizer.LocalityOptions{
			FastTier: "nvme", Nodes: 2, StageOutDisposable: true,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec, setup := workloads.PyFlextrkrStages3to5(quickPft)
			runReplicaBench(b, spec, setup, plan)
		}
	})
}

// BenchmarkFig12 measures baseline vs optimized DDMD iterations.
func BenchmarkFig12(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec, setup := workloads.DDMD(quickDDMD)
			runReplicaBench(b, spec, setup, nil)
		}
	})
	b.Run("optimized", func(b *testing.B) {
		cfg := quickDDMD
		cfg.SkipUnusedDataset = true
		cfg.ParallelTrainInfer = true
		for i := 0; i < b.N; i++ {
			spec, setup := workloads.DDMD(cfg)
			runReplicaBench(b, spec, setup, nil)
		}
	})
}

// captureAccessOps builds a file and captures the access-phase op log.
func captureAccessOps(b *testing.B, build, access func(f *hdf5.File) error) []sim.Op {
	b.Helper()
	log := &vfd.OpLog{}
	drv := vfd.NewProfiledDriver(vfd.NewMemDriver(), "bench.h5", nil, log)
	f, err := hdf5.Create(drv, "bench.h5", hdf5.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := build(f); err != nil {
		b.Fatal(err)
	}
	log.Reset()
	if err := access(f); err != nil {
		b.Fatal(err)
	}
	return log.SimOps()
}

// BenchmarkFig13a measures the scattered vs consolidated access kernel.
func BenchmarkFig13a(b *testing.B) {
	const datasets, accesses = 32, 23
	const size = int64(2 << 10)
	scattered := captureAccessOps(b,
		func(f *hdf5.File) error {
			for i := 0; i < datasets; i++ {
				ds, err := f.Root().CreateDataset(fmt.Sprintf("s%02d", i), hdf5.Uint8, []int64{size}, nil)
				if err != nil {
					return err
				}
				if err := ds.WriteAll(make([]byte, size)); err != nil {
					return err
				}
			}
			return nil
		},
		func(f *hdf5.File) error {
			for a := 0; a < accesses; a++ {
				for i := 0; i < datasets; i++ {
					ds, err := f.Root().OpenDataset(fmt.Sprintf("s%02d", i))
					if err != nil {
						return err
					}
					if _, err := ds.ReadAll(); err != nil {
						return err
					}
				}
			}
			return nil
		})
	consolidated := captureAccessOps(b,
		func(f *hdf5.File) error {
			ds, err := f.Root().CreateDataset("all", hdf5.Uint8, []int64{size * datasets}, nil)
			if err != nil {
				return err
			}
			return ds.WriteAll(make([]byte, size*datasets))
		},
		func(f *hdf5.File) error {
			ds, err := f.Root().OpenDataset("all")
			if err != nil {
				return err
			}
			for a := 0; a < accesses; a++ {
				for i := int64(0); i < datasets; i++ {
					if _, err := ds.Read(hdf5.Slab1D(i*size, size)); err != nil {
						return err
					}
				}
			}
			return nil
		})
	b.Run("scattered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sim.Replay(scattered, sim.NVMeSSD, 4)
		}
	})
	b.Run("consolidated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sim.Replay(consolidated, sim.NVMeSSD, 4)
		}
	})
	b.Logf("ops: scattered=%d consolidated=%d", len(scattered), len(consolidated))
}

// BenchmarkFig13b measures the chunked vs contiguous write+read kernel.
func BenchmarkFig13b(b *testing.B) {
	const size = int64(200 << 10)
	for _, layout := range []hdf5.Layout{hdf5.Chunked, hdf5.Contiguous} {
		b.Run(layout.String(), func(b *testing.B) {
			var opts *hdf5.DatasetOpts
			if layout == hdf5.Chunked {
				opts = &hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{size / 8}}
			}
			for i := 0; i < b.N; i++ {
				f, err := hdf5.Create(vfd.NewMemDriver(), "b.h5", hdf5.Config{})
				if err != nil {
					b.Fatal(err)
				}
				for _, name := range workloads.DDMDDatasets {
					ds, err := f.Root().CreateDataset(name, hdf5.Uint8, []int64{size}, opts)
					if err != nil {
						b.Fatal(err)
					}
					if err := ds.WriteAll(make([]byte, size)); err != nil {
						b.Fatal(err)
					}
					if _, err := ds.ReadAll(); err != nil {
						b.Fatal(err)
					}
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13c measures the VL write kernel per layout.
func BenchmarkFig13c(b *testing.B) {
	write := func(b *testing.B, layout hdf5.Layout) {
		const stories = 32
		opts := &hdf5.DatasetOpts{Layout: layout}
		if layout == hdf5.Chunked {
			opts.ChunkDims = []int64{8}
		}
		for i := 0; i < b.N; i++ {
			f, err := hdf5.Create(vfd.NewMemDriver(), "vl.h5", hdf5.Config{HeapCollectionSize: 96 << 10})
			if err != nil {
				b.Fatal(err)
			}
			ds, err := f.Root().CreateDataset("image0", hdf5.VLen, []int64{stories}, opts)
			if err != nil {
				b.Fatal(err)
			}
			for s := 0; s < stories; s += 4 {
				vals := make([][]byte, 4)
				for j := range vals {
					vals[j] = make([]byte, 12<<10+j*1024)
				}
				if err := ds.WriteVL(int64(s), vals); err != nil {
					b.Fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("contiguous", func(b *testing.B) { write(b, hdf5.Contiguous) })
	b.Run("chunked", func(b *testing.B) { write(b, hdf5.Chunked) })
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationMailbox isolates the cost of the VOL->VFD mailbox
// join: without it the VFD profiler runs but attribution is lost.
func BenchmarkAblationMailbox(b *testing.B) {
	run := func(b *testing.B, mb *semantics.Mailbox) {
		log := &vfd.OpLog{}
		drv := vfd.NewProfiledDriver(vfd.NewMemDriver(), "m.h5", mb, log)
		f, err := hdf5.Create(drv, "m.h5", hdf5.Config{Mailbox: mb})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{4096}, nil)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ds.WriteAll(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("with-mailbox", func(b *testing.B) { run(b, semantics.NewMailbox()) })
	b.Run("without-mailbox", func(b *testing.B) { run(b, nil) })
}

// BenchmarkAblationIOTrace compares deferred hash-table statistics
// (the paper's design) against retaining every raw operation.
func BenchmarkAblationIOTrace(b *testing.B) {
	cfg := workloads.CornerCaseConfig{ReadOps: 1000}
	b.Run("stats-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{})); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-io-trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{IOTrace: true})); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCache measures what the customized-caching guideline
// buys: a reused file read through the memory buffer vs from NFS.
func BenchmarkAblationCache(b *testing.B) {
	payload := make([]byte, 128<<10)
	spec := workflow.Spec{Name: "reuse", Stages: []workflow.Stage{
		{Name: "produce", Tasks: []workflow.Task{{Name: "p", Fn: func(tc *workflow.TaskContext) error {
			f, err := tc.Create("shared.h5")
			if err != nil {
				return err
			}
			ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{int64(len(payload))}, nil)
			if err != nil {
				return err
			}
			return ds.WriteAll(payload)
		}}}},
		{Name: "consume", Tasks: []workflow.Task{{Name: "c", Fn: func(tc *workflow.TaskContext) error {
			f, err := tc.Open("shared.h5")
			if err != nil {
				return err
			}
			ds, err := f.OpenDatasetPath("/d")
			if err != nil {
				return err
			}
			_, err = ds.ReadAll()
			return err
		}}}},
	}}
	run := func(b *testing.B, plan *workflow.Plan) {
		for i := 0; i < b.N; i++ {
			eng, err := workflow.NewEngine(benchCluster(), plan, tracer.Config{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Total() <= 0 {
				b.Fatal("no simulated time")
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) {
		run(b, &workflow.Plan{CacheFiles: []string{"shared.h5"}})
	})
}

// BenchmarkAblationPageSize measures SDG construction cost across
// address-region page sizes (fidelity vs graph size).
func BenchmarkAblationPageSize(b *testing.B) {
	spec, setup := workloads.DDMD(quickDDMD)
	res := runReplicaBench(b, spec, setup, nil)
	for _, page := range []int64{512, 4096, 65536} {
		b.Run(fmt.Sprintf("page%d", page), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := analyzer.BuildSDG(res.Traces, res.Manifest, analyzer.Options{
					PageSize: page, IncludeRegions: true,
				})
				if g.NumNodes() == 0 {
					b.Fatal("empty SDG")
				}
			}
		})
	}
}
