package dayu_test

import (
	"fmt"
	"log"

	"dayu"
)

// ExampleNewTracer traces one task's dataset I/O and prints the
// object-level record the Data Semantic Mapper produced (Table I).
func ExampleNewTracer() {
	tr := dayu.NewTracer(dayu.TracerConfig{})
	tr.BeginTask("demo")
	f, err := dayu.CreateFile(tr, "demo.h5", dayu.FileConfig{Task: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("temperature", dayu.Float64, []int64{64}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteAll(make([]byte, 512)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	tt := tr.EndTask()
	for _, o := range tt.Objects {
		if o.Object == "/temperature" {
			fmt.Printf("%s %s layout=%s writes=%d bytes=%d\n",
				o.Object, o.Datatype, o.Layout, o.Writes, o.BytesWritten)
		}
	}
	// Output:
	// /temperature float64 layout=contiguous writes=1 bytes=512
}

// ExampleBuildFTG builds a File-Task Graph from two synthetic task
// traces and reports its shape.
func ExampleBuildFTG() {
	producer := &dayu.TaskTrace{
		Task: "producer", StartNS: 0, EndNS: 100,
		Files: []dayu.FileRecord{{
			Task: "producer", File: "data.h5", OpenNS: 0, CloseNS: 90,
			Ops: 3, Writes: 3, BytesWritten: 4096,
			DataWrites: 2, MetaOps: 1, DataOps: 2,
		}},
	}
	consumer := &dayu.TaskTrace{
		Task: "consumer", StartNS: 100, EndNS: 200,
		Files: []dayu.FileRecord{{
			Task: "consumer", File: "data.h5", OpenNS: 100, CloseNS: 190,
			Ops: 2, Reads: 2, BytesRead: 4096,
			DataReads: 2, DataOps: 2,
		}},
	}
	g := dayu.BuildFTG([]*dayu.TaskTrace{producer, consumer}, nil)
	s := dayu.SummarizeGraph(g)
	fmt.Printf("tasks=%d files=%d edges=%d\n", s.Tasks, s.Files, s.Edges)
	chains := dayu.DependencyChains([]*dayu.TaskTrace{producer, consumer}, nil)
	fmt.Println(chains[0].String())
	// Output:
	// tasks=2 files=1 edges=2
	// producer -[data.h5]-> consumer
}
