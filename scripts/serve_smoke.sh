#!/usr/bin/env bash
# Boot/probe/teardown smoke harness for `dayu serve` — the one shell
# block the CI smoke jobs share, so boot loops and probe lists cannot
# drift apart between jobs.
#
# Boots a server over a trace directory, waits for /healthz, probes
# every read endpoint, asserts the repeat /v1/ftg was served from the
# response cache, optionally exercises the snapshot-history store, and
# leaves ftg.json/sdg.json in the output directory so callers can
# byte-compare across configurations (trace format, shard count).
#
# Usage:
#   scripts/serve_smoke.sh -b ./dayu -t traces -o out \
#       [-a 127.0.0.1:8080] [-s shards] [-H history-dir]
set -euo pipefail

dayu="./dayu"
traces=""
out=""
addr="127.0.0.1:8080"
shards=1
history=""

while getopts "b:t:o:a:s:H:" opt; do
  case "$opt" in
    b) dayu="$OPTARG" ;;
    t) traces="$OPTARG" ;;
    o) out="$OPTARG" ;;
    a) addr="$OPTARG" ;;
    s) shards="$OPTARG" ;;
    H) history="$OPTARG" ;;
    *) echo "usage: $0 -b dayu -t traces -o out [-a addr] [-s shards] [-H history-dir]" >&2; exit 2 ;;
  esac
done
if [ -z "$traces" ] || [ -z "$out" ]; then
  echo "serve_smoke: -t traces and -o out are required" >&2
  exit 2
fi
mkdir -p "$out"

serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

# --- boot ------------------------------------------------------------
args=(-dir "$traces" -addr "$addr" -poll 500ms -shards "$shards")
[ -n "$history" ] && args+=(-history "$history")
"$dayu" serve "${args[@]}" &
serve_pid=$!
for _ in $(seq 1 50); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done
if ! curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
  echo "serve_smoke: server at $addr (shards=$shards) never became healthy" >&2
  exit 1
fi
echo "serve_smoke: up at $addr (traces=$traces shards=$shards)"

# --- probe -----------------------------------------------------------
curl -fsS "http://$addr/healthz" >"$out/healthz.json"
curl -fsS "http://$addr/v1/ftg" -o "$out/ftg.json"
curl -fsS "http://$addr/v1/ftg" -o "$out/ftg-repeat.json"
cmp "$out/ftg.json" "$out/ftg-repeat.json"
curl -fsS "http://$addr/v1/sdg" -o "$out/sdg.json"
curl -fsS "http://$addr/v1/diagnose" -o /dev/null
curl -fsS "http://$addr/v1/plan" -o /dev/null
curl -fsS "http://$addr/v1/tasks" -o /dev/null
curl -fsS "http://$addr/metrics" -o "$out/metrics.txt"

# The repeat /v1/ftg must have been a pure response-cache read.
grep 'dayu_serve_cache_hits_total{cache="response"}' "$out/metrics.txt"
hits="$(awk '/dayu_serve_cache_hits_total\{cache="response"\}/ { print $2 }' "$out/metrics.txt")"
test "$hits" -ge 1

# --- events stream ---------------------------------------------------
# A fresh SSE subscriber receives the current state immediately: at
# least one `event: snapshot` carrying a numeric id. curl exits 28 when
# --max-time cuts the (intentionally unbounded) stream — that's fine,
# the captured prefix is what we assert on.
curl -sS -N --max-time 5 "http://$addr/v1/live/events" >"$out/events.log" || true
grep -q '^event: snapshot$' "$out/events.log"
grep -Eq '^id: [0-9]+$' "$out/events.log"
grep -q '^data: ' "$out/events.log"
echo "serve_smoke: /v1/live/events delivered a snapshot event"

# --- history (optional) ---------------------------------------------
if [ -n "$history" ]; then
  curl -fsS "http://$addr/v1/history" -o "$out/history.json"
  grep -q '"id"' "$out/history.json"
  snap_id="$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$out/history.json" | head -1)"
  if [ -z "$snap_id" ]; then
    echo "serve_smoke: history listing carries no snapshot id" >&2
    exit 1
  fi
  curl -fsS "http://$addr/v1/history/$snap_id/ftg" -o "$out/history-ftg.json"
  cmp "$out/ftg.json" "$out/history-ftg.json"
  curl -fsS "http://$addr/v1/history/$snap_id/sdg" -o "$out/history-sdg.json"
  cmp "$out/sdg.json" "$out/history-sdg.json"
  echo "serve_smoke: history replay byte-identical to live responses"
fi

# --- teardown --------------------------------------------------------
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "serve_smoke: PASS (traces=$traces shards=$shards)"
