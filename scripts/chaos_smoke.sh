#!/usr/bin/env bash
# Kill-restart chaos smoke for the durable push-ingest path.
#
# Phase 1 — batch push: starts `dayu serve` with a write-ahead log,
# pushes a workload's traces at it, `kill -9`s the server mid-stream
# (arbitrary byte boundary, possibly mid-WAL-append), restarts it, and
# asserts:
#
#   1. Replay loses nothing: every trace folded before the kill is
#      still served after restart.
#   2. The retrying push client eventually delivers every record.
#   3. /v1/ftg and /v1/sdg responses are byte-identical to the batch
#      CLI (`dayu analyze`) over both the recovered directory and the
#      original source traces.
#
# Phase 2 — live stream: runs a workload with `dayu run -stream`, so
# the tracer ships incremental checkpoints and finals through the same
# WAL path while the workflow executes, kill -9s the server mid-run,
# restarts it, and asserts the stream rides out the crash: the run
# completes undegraded, every partial retracts, and the recovered
# /v1/live/{ftg,sdg} snapshot is byte-identical to /v1/{ftg,sdg} and
# to `dayu analyze` over the traces the run saved locally.
#
# Phase 3 — sharded ingest: starts the server with -shards 4, so the
# kill -9 lands while acknowledged records sit spread across several
# per-shard WAL namespaces, restarts it with the SAME -shards, and
# asserts zero acknowledged loss plus /v1/{ftg,sdg} byte-identity to
# the batch CLI — sharding must not open any new crash window.
#
# Phase 4 — delta stream + SSE: like phase 2 but with `dayu run -delta`
# (checkpoints framed as deltas against the last acknowledged one) and
# an SSE watcher attached to /v1/live/events. The kill -9 lands while
# the server holds per-task delta bases; on restart the WAL replay
# reassembles the persisted partials and reseeds the acked sequence
# map, so in-flight deltas keep folding — and any delta whose base the
# replay could NOT recover is 409 NACKed, pushing the client through
# the cumulative-resync fallback (the run's summary line reports how
# many of each happened). Asserts the run completes undegraded, the
# watcher saw pushed snapshot events, the restarted server still
# serves the event stream, and the recovered live view is
# byte-identical to the batch CLI — delta framing must not open any
# recovery gap cumulative framing doesn't have.
#
# Usage: scripts/chaos_smoke.sh [path-to-dayu-binary]
set -euo pipefail

dayu="${1:-./dayu}"
addr="127.0.0.1:18080"
workdir="$(mktemp -d)"
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

src="$workdir/src"
dir="$workdir/traces"
wal="$workdir/wal"
mkdir -p "$dir"

"$dayu" run -workflow pyflextrkr -traces "$src" >/dev/null
total="$(find "$src" -name '*.trace.*' | wc -l)"
echo "chaos: $total source traces"

# fsync-always and a small admission queue slow ingest enough that the
# kill below lands mid-stream instead of after the push completes.
# serve_shards, when set, adds -shards N (phase 3).
serve_shards=""
start_serve() {
  "$dayu" serve -dir "$dir" -wal "$wal" -addr "$addr" -poll 200ms \
    -wal-fsync always -ingest-queue 2 \
    ${serve_shards:+-shards "$serve_shards"} &
  serve_pid=$!
  for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "chaos: server never became healthy" >&2
  return 1
}

task_count() {
  curl -fsS "http://$addr/v1/tasks" | grep -c '"file":' || true
}

start_serve

# Push in the background with a generous retry budget (it must ride
# out the kill and the restart), then kill -9 the server mid-stream.
"$dayu" push -traces "$src" -server "http://$addr" -attempts 200 >"$workdir/push.log" 2>&1 &
push_pid=$!
sleep 0.05
kill -9 "$serve_pid"
serve_pid=""
echo "chaos: killed serve mid-stream"

folded_before="$(find "$dir" -name '*.trace.*' | wc -l)"
echo "chaos: $folded_before traces folded before the kill"

start_serve
echo "chaos: restarted"

# Gate 1: startup replay recovers at least everything already folded
# (WAL replay can only add acknowledged records, never lose them).
recovered="$(task_count)"
if [ "$recovered" -lt "$folded_before" ]; then
  echo "chaos: FAIL: recovered $recovered tasks < $folded_before folded before kill" >&2
  exit 1
fi
echo "chaos: recovered $recovered tasks after restart"

# Gate 2: the retrying client delivers everything. The original push
# should finish against the restarted server; a rerun is idempotent
# (duplicates are acknowledged, not re-applied) and covers the case
# where it gave up while the server was down.
wait "$push_pid" || true
"$dayu" push -traces "$src" -server "http://$addr" -attempts 50

for _ in $(seq 1 100); do
  if [ "$(task_count)" -eq "$total" ]; then
    break
  fi
  sleep 0.2
done
final="$(task_count)"
if [ "$final" -ne "$total" ]; then
  echo "chaos: FAIL: $final tasks served, want $total" >&2
  exit 1
fi
echo "chaos: all $total tasks delivered"

# Gate 3: byte-identical to the batch CLI — over the recovered
# directory and over the original source traces.
curl -fsS "http://$addr/v1/ftg" -o "$workdir/ftg.json"
curl -fsS "http://$addr/v1/sdg" -o "$workdir/sdg.json"
"$dayu" analyze -traces "$dir" -out "$workdir/out-dir" >/dev/null
cmp "$workdir/out-dir/ftg.json" "$workdir/ftg.json"
"$dayu" analyze -sdg -traces "$dir" -out "$workdir/out-dir-sdg" >/dev/null
cmp "$workdir/out-dir-sdg/sdg.json" "$workdir/sdg.json"
"$dayu" analyze -traces "$src" -out "$workdir/out-src" >/dev/null
cmp "$workdir/out-src/ftg.json" "$workdir/ftg.json"
"$dayu" analyze -sdg -traces "$src" -out "$workdir/out-src-sdg" >/dev/null
cmp "$workdir/out-src-sdg/sdg.json" "$workdir/sdg.json"
echo "chaos: /v1/ftg and /v1/sdg byte-identical to batch dayu analyze"

# ---------------------------------------------------------------------
# Phase 2: live streaming. A fresh server on fresh directories; the
# workload itself is the pusher this time, checkpointing every 32 ops.
kill -9 "$serve_pid" 2>/dev/null || true
serve_pid=""

addr="127.0.0.1:18081"
dir="$workdir/stream-traces"
wal="$workdir/stream-wal"
slocal="$workdir/stream-local"
mkdir -p "$dir"

start_serve
echo "chaos: live-phase server up"

# Stream a run in the background with a retry budget generous enough
# to ride out the kill and restart below. The run must exit zero: a
# non-zero exit means a checkpoint or final was dropped (degraded
# streaming), which this gate treats as a failure.
"$dayu" run -workflow pyflextrkr -traces "$slocal" \
  -stream "http://$addr" -checkpoint-ops 32 -stream-attempts 300 \
  >"$workdir/run.log" 2>&1 &
run_pid=$!
sleep 0.5
kill -9 "$serve_pid"
serve_pid=""
echo "chaos: killed serve mid-run (live phase)"

start_serve
echo "chaos: restarted (live phase)"

if ! wait "$run_pid"; then
  echo "chaos: FAIL: streamed run degraded or failed:" >&2
  tail -5 "$workdir/run.log" >&2
  exit 1
fi
stotal="$(find "$slocal" -name '*.trace.*' | wc -l)"
echo "chaos: streamed run completed ($stotal tasks)"

# Convergence: every final folded, every partial retracted.
for _ in $(seq 1 150); do
  curl -fsS -D "$workdir/live.hdr" "http://$addr/v1/live/ftg" \
    -o "$workdir/live-ftg.json" >/dev/null 2>&1 || true
  partial="$(awk 'tolower($1) == "x-dayu-partial-tasks:" { gsub(/[^0-9]/, "", $2); print $2 }' "$workdir/live.hdr")"
  complete="$(awk 'tolower($1) == "x-dayu-complete-tasks:" { gsub(/[^0-9]/, "", $2); print $2 }' "$workdir/live.hdr")"
  if [ "${partial:-1}" -eq 0 ] && [ "${complete:-0}" -eq "$stotal" ]; then
    break
  fi
  sleep 0.2
done
if [ "${partial:-1}" -ne 0 ] || [ "${complete:-0}" -ne "$stotal" ]; then
  echo "chaos: FAIL: live view never converged (partial=$partial complete=$complete want=$stotal)" >&2
  exit 1
fi
echo "chaos: live view converged ($complete complete, 0 partial)"

# The converged live snapshot is byte-identical to the batch endpoints
# and to the batch CLI over the traces the run saved locally.
curl -fsS "http://$addr/v1/ftg" -o "$workdir/stream-batch-ftg.json"
cmp "$workdir/live-ftg.json" "$workdir/stream-batch-ftg.json"
curl -fsS "http://$addr/v1/live/sdg" -o "$workdir/live-sdg.json"
curl -fsS "http://$addr/v1/sdg" -o "$workdir/stream-batch-sdg.json"
cmp "$workdir/live-sdg.json" "$workdir/stream-batch-sdg.json"
"$dayu" analyze -traces "$slocal" -out "$workdir/out-stream" >/dev/null
cmp "$workdir/out-stream/ftg.json" "$workdir/live-ftg.json"
"$dayu" analyze -sdg -traces "$slocal" -out "$workdir/out-stream-sdg" >/dev/null
cmp "$workdir/out-stream-sdg/sdg.json" "$workdir/live-sdg.json"
echo "chaos: recovered /v1/live/ftg and /v1/live/sdg byte-identical to batch dayu analyze"

# ---------------------------------------------------------------------
# Phase 3: sharded ingest. Fresh directories, -shards 4: pushed records
# spread across per-shard WAL namespaces (wal/shard-<k>/), the kill -9
# lands mid-push, and the restart — with the same shard count — must
# replay every namespace without losing an acknowledged record.
kill -9 "$serve_pid" 2>/dev/null || true
serve_pid=""

addr="127.0.0.1:18082"
dir="$workdir/shard-traces"
wal="$workdir/shard-wal"
mkdir -p "$dir"
serve_shards=4

start_serve
echo "chaos: sharded-phase server up (-shards $serve_shards)"

"$dayu" push -traces "$src" -server "http://$addr" -attempts 200 >"$workdir/shard-push.log" 2>&1 &
push_pid=$!
sleep 0.05
kill -9 "$serve_pid"
serve_pid=""
echo "chaos: killed sharded serve mid-push"

folded_before="$(find "$dir" -name '*.trace.*' | wc -l)"
echo "chaos: $folded_before traces folded before the sharded kill"
if ! ls "$wal"/shard-*/ >/dev/null 2>&1; then
  echo "chaos: FAIL: no per-shard WAL namespaces under $wal" >&2
  exit 1
fi

start_serve
echo "chaos: restarted (sharded phase)"

# Zero acknowledged loss: every trace folded before the kill — plus
# whatever the shard WALs replayed on startup — is still served.
recovered="$(task_count)"
if [ "$recovered" -lt "$folded_before" ]; then
  echo "chaos: FAIL: sharded restart recovered $recovered tasks < $folded_before folded before kill" >&2
  exit 1
fi
echo "chaos: recovered $recovered tasks after sharded restart"

wait "$push_pid" || true
"$dayu" push -traces "$src" -server "http://$addr" -attempts 50

for _ in $(seq 1 100); do
  if [ "$(task_count)" -eq "$total" ]; then
    break
  fi
  sleep 0.2
done
final="$(task_count)"
if [ "$final" -ne "$total" ]; then
  echo "chaos: FAIL: sharded server serves $final tasks, want $total" >&2
  exit 1
fi
echo "chaos: all $total tasks delivered through 4 shards"

# Byte-identity: the shard count must not leak into response bytes.
curl -fsS "http://$addr/v1/ftg" -o "$workdir/shard-ftg.json"
cmp "$workdir/out-src/ftg.json" "$workdir/shard-ftg.json"
curl -fsS "http://$addr/v1/sdg" -o "$workdir/shard-sdg.json"
cmp "$workdir/out-src-sdg/sdg.json" "$workdir/shard-sdg.json"
echo "chaos: sharded /v1/ftg and /v1/sdg byte-identical to batch dayu analyze"

# ---------------------------------------------------------------------
# Phase 4: delta stream + SSE. Fresh directories; the run streams
# delta-framed checkpoints while an SSE watcher follows the live view.
# The kill drops the server's delta bases, so recovery exercises the
# 409 NACK-resync handshake (client falls back to cumulative) on top of
# the WAL replay phase 2 already covers.
kill -9 "$serve_pid" 2>/dev/null || true
serve_pid=""

addr="127.0.0.1:18083"
dir="$workdir/delta-traces"
wal="$workdir/delta-wal"
dlocal="$workdir/delta-local"
mkdir -p "$dir"
serve_shards=""

start_serve
echo "chaos: delta-phase server up"

# The watcher rides the first server incarnation; it dies with the kill
# but must have captured at least one pushed snapshot event by then.
curl -sS -N --max-time 120 "http://$addr/v1/live/events" >"$workdir/sse.log" 2>/dev/null &
sse_pid=$!

"$dayu" run -workflow pyflextrkr -traces "$dlocal" \
  -stream "http://$addr" -delta -checkpoint-ops 32 -stream-attempts 300 \
  >"$workdir/delta-run.log" 2>&1 &
run_pid=$!
sleep 0.5
kill -9 "$serve_pid"
serve_pid=""
echo "chaos: killed serve mid-run (delta phase)"

start_serve
echo "chaos: restarted (delta phase)"

if ! wait "$run_pid"; then
  echo "chaos: FAIL: delta-streamed run degraded or failed:" >&2
  tail -5 "$workdir/delta-run.log" >&2
  exit 1
fi
dtotal="$(find "$dlocal" -name '*.trace.*' | wc -l)"
echo "chaos: delta-streamed run completed ($dtotal tasks)"
grep -E 'deltas' "$workdir/delta-run.log" || true

wait "$sse_pid" 2>/dev/null || true
if ! grep -q '^event: snapshot' "$workdir/sse.log"; then
  echo "chaos: FAIL: SSE watcher never received a snapshot event" >&2
  exit 1
fi
echo "chaos: SSE watcher received $(grep -c '^event: snapshot' "$workdir/sse.log") snapshot events before the kill"

# Convergence on the restarted server: every final folded, every
# partial retracted.
for _ in $(seq 1 150); do
  curl -fsS -D "$workdir/delta-live.hdr" "http://$addr/v1/live/ftg" \
    -o "$workdir/delta-live-ftg.json" >/dev/null 2>&1 || true
  partial="$(awk 'tolower($1) == "x-dayu-partial-tasks:" { gsub(/[^0-9]/, "", $2); print $2 }' "$workdir/delta-live.hdr")"
  complete="$(awk 'tolower($1) == "x-dayu-complete-tasks:" { gsub(/[^0-9]/, "", $2); print $2 }' "$workdir/delta-live.hdr")"
  if [ "${partial:-1}" -eq 0 ] && [ "${complete:-0}" -eq "$dtotal" ]; then
    break
  fi
  sleep 0.2
done
if [ "${partial:-1}" -ne 0 ] || [ "${complete:-0}" -ne "$dtotal" ]; then
  echo "chaos: FAIL: delta live view never converged (partial=$partial complete=$complete want=$dtotal)" >&2
  exit 1
fi
echo "chaos: delta live view converged ($complete complete, 0 partial)"

# The restarted server still pushes events: a fresh subscriber gets the
# current state immediately.
curl -sS -N --max-time 5 "http://$addr/v1/live/events" >"$workdir/sse-restart.log" 2>/dev/null || true
grep -q '^event: snapshot' "$workdir/sse-restart.log"
grep -Eq '^id: [0-9]+' "$workdir/sse-restart.log"
echo "chaos: restarted server streams events"

# Byte-identity: the recovered delta-fed live view matches the batch
# endpoints and the batch CLI over the locally saved traces.
curl -fsS "http://$addr/v1/ftg" -o "$workdir/delta-batch-ftg.json"
cmp "$workdir/delta-live-ftg.json" "$workdir/delta-batch-ftg.json"
curl -fsS "http://$addr/v1/live/sdg" -o "$workdir/delta-live-sdg.json"
curl -fsS "http://$addr/v1/sdg" -o "$workdir/delta-batch-sdg.json"
cmp "$workdir/delta-live-sdg.json" "$workdir/delta-batch-sdg.json"
"$dayu" analyze -traces "$dlocal" -out "$workdir/out-delta" >/dev/null
cmp "$workdir/out-delta/ftg.json" "$workdir/delta-live-ftg.json"
"$dayu" analyze -sdg -traces "$dlocal" -out "$workdir/out-delta-sdg" >/dev/null
cmp "$workdir/out-delta-sdg/sdg.json" "$workdir/delta-live-sdg.json"
echo "chaos: recovered delta-fed live view byte-identical to batch dayu analyze"

echo "chaos: PASS"
