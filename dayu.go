// Package dayu is a Go reproduction of DaYu (IEEE CLUSTER 2024): a
// dataflow-semantics analysis and optimization framework for
// distributed scientific workflows built on descriptive data formats.
//
// The package exposes the full toolchain:
//
//   - a self-describing HDF5-like format library with contiguous,
//     chunked and compact layouts, attributes and variable-length data
//     (see CreateFile / OpenFile);
//   - the Data Semantic Mapper: a two-layer profiler capturing
//     object-level semantics (Table I) and file-level I/O (Table II)
//     joined per data object (NewTracer);
//   - the Workflow Analyzer building File-Task Graphs and Semantic
//     Dataflow Graphs decorated with access statistics (BuildFTG,
//     BuildSDG) and rendering them as DOT/SVG/HTML;
//   - Data Flow Diagnostics with the paper's observation rules and
//     optimization guidelines (Diagnose);
//   - a simulated cluster substrate and workflow engine to evaluate
//     placement/layout optimizations deterministically (NewEngine,
//     PlanDataLocality).
//
// See examples/ for runnable entry points and DESIGN.md for the mapping
// from the paper's systems and experiments onto this module.
package dayu

import (
	"dayu/internal/adios"
	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/graph"
	"dayu/internal/hdf5"
	"dayu/internal/netcdf"
	"dayu/internal/optimizer"
	"dayu/internal/repack"
	"dayu/internal/report"
	"dayu/internal/semantics"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
)

// Format layer (HDF5-like library).
type (
	// File is an open self-describing data file.
	File = hdf5.File
	// Group is a handle to a group object.
	Group = hdf5.Group
	// Dataset is a handle to a dataset object.
	Dataset = hdf5.Dataset
	// Datatype describes dataset element types.
	Datatype = hdf5.Datatype
	// Layout selects a dataset storage layout.
	Layout = hdf5.Layout
	// DatasetOpts configures dataset creation.
	DatasetOpts = hdf5.DatasetOpts
	// Selection is an n-dimensional hyperslab.
	Selection = hdf5.Selection
	// FileConfig controls format parameters and tracing hooks.
	FileConfig = hdf5.Config
)

// Storage layouts.
const (
	Contiguous = hdf5.Contiguous
	Chunked    = hdf5.Chunked
	Compact    = hdf5.Compact
)

// Predefined datatypes.
var (
	Float64 = hdf5.Float64
	Float32 = hdf5.Float32
	Int64   = hdf5.Int64
	Int32   = hdf5.Int32
	Int16   = hdf5.Int16
	Uint8   = hdf5.Uint8
	VLen    = hdf5.VLen
)

// FixedString returns a fixed-size string datatype.
func FixedString(n int64) Datatype { return hdf5.FixedString(n) }

// All selects every element of a dataset with the given dimensions.
func All(dims []int64) Selection { return hdf5.All(dims) }

// Slab1D selects [off, off+count) of a one-dimensional dataset.
func Slab1D(off, count int64) Selection { return hdf5.Slab1D(off, count) }

// Tracing layer (Data Semantic Mapper).
type (
	// Tracer is the Data Semantic Mapper: Input Parser, Access Tracker
	// (VOL + VFD profilers) and Characteristic Mapper.
	Tracer = tracer.Tracer
	// TracerConfig is the user configuration the Input Parser reads.
	TracerConfig = tracer.Config
	// ComponentTimes is the per-component time breakdown (Figure 10).
	ComponentTimes = tracer.ComponentTimes
	// TaskTrace is everything recorded for one task execution.
	TaskTrace = trace.TaskTrace
	// ObjectRecord is a Table I object-level record.
	ObjectRecord = trace.ObjectRecord
	// FileRecord is a Table II file-level record.
	FileRecord = trace.FileRecord
	// MappedStat is the joined object-to-I/O statistic.
	MappedStat = trace.MappedStat
	// Manifest carries workflow-level task ordering for the analyzer.
	Manifest = trace.Manifest
	// TraceFormat selects a trace serialization (JSON or dtb/v2).
	TraceFormat = trace.Format
	// Mailbox is the VOL-to-VFD current-object channel.
	Mailbox = semantics.Mailbox
)

// NewTracer builds a Data Semantic Mapper from a configuration.
func NewTracer(cfg TracerConfig) *Tracer { return tracer.New(cfg) }

// NewTracerFromFile builds a tracer from a JSON configuration file.
func NewTracerFromFile(path string) (*Tracer, error) { return tracer.NewFromFile(path) }

// CreateFile creates a traced in-memory file: all object accesses flow
// through tr's VOL profiler and all byte I/O through its VFD profiler.
// Pass a nil tracer for untraced files.
func CreateFile(tr *Tracer, name string, cfg FileConfig) (*File, error) {
	return hdf5.Create(wiredDriver(tr, name, &cfg), name, cfg)
}

// CreateFileAt creates a traced file backed by an OS file at path.
func CreateFileAt(tr *Tracer, path, name string, cfg FileConfig) (*File, error) {
	inner, err := vfd.OpenFileDriver(path)
	if err != nil {
		return nil, err
	}
	drv := vfd.Driver(inner)
	if tr != nil {
		drv = tr.WrapDriver(drv, name)
		cfg.Mailbox = tr.Mailbox()
		cfg.Observer = tr.VOLObserver()
	}
	return hdf5.Create(drv, name, cfg)
}

// OpenFileAt opens an existing traced file backed by an OS file.
func OpenFileAt(tr *Tracer, path, name string, cfg FileConfig) (*File, error) {
	inner, err := vfd.OpenFileDriver(path)
	if err != nil {
		return nil, err
	}
	drv := vfd.Driver(inner)
	if tr != nil {
		drv = tr.WrapDriver(drv, name)
		cfg.Mailbox = tr.Mailbox()
		cfg.Observer = tr.VOLObserver()
	}
	return hdf5.Open(drv, name, cfg)
}

func wiredDriver(tr *Tracer, name string, cfg *FileConfig) vfd.Driver {
	var drv vfd.Driver = vfd.NewMemDriver()
	if tr != nil {
		drv = tr.WrapDriver(drv, name)
		cfg.Mailbox = tr.Mailbox()
		cfg.Observer = tr.VOLObserver()
	}
	return drv
}

// Analysis layer (Workflow Analyzer + Diagnostics).
type (
	// Graph is the typed multigraph FTGs and SDGs are built on.
	Graph = graph.Graph
	// AnalyzerOptions controls SDG construction (page size, regions).
	AnalyzerOptions = analyzer.Options
	// GraphStats summarizes a graph.
	GraphStats = analyzer.Stats
	// Finding is one diagnostic observation with its guideline.
	Finding = diagnose.Finding
	// Thresholds tunes the diagnostic rules.
	Thresholds = diagnose.Thresholds
)

// BuildFTG constructs the File-Task Graph from task traces.
func BuildFTG(traces []*TaskTrace, m *Manifest) *Graph {
	return analyzer.BuildFTG(traces, m)
}

// BuildSDG constructs the Semantic Dataflow Graph from task traces.
func BuildSDG(traces []*TaskTrace, m *Manifest, opts AnalyzerOptions) *Graph {
	return analyzer.BuildSDG(traces, m, opts)
}

// SummarizeGraph computes graph statistics.
func SummarizeGraph(g *Graph) GraphStats { return analyzer.Summarize(g) }

// Timeline is the time-ordered task/file view of a workflow.
type Timeline = analyzer.Timeline

// BuildTimeline derives the time-ordered view from task traces.
func BuildTimeline(traces []*TaskTrace, m *Manifest) *Timeline {
	return analyzer.BuildTimeline(traces, m)
}

// Chain is one producer->file->consumer dependence path.
type Chain = analyzer.Chain

// DependencyChains extracts every maximal data dependence chain.
func DependencyChains(traces []*TaskTrace, m *Manifest) []Chain {
	return analyzer.DependencyChains(traces, m)
}

// MergeTraces folds the per-process traces of one logical task into a
// single task view (per-rank profiling, merged for analysis).
func MergeTraces(task string, parts []*TaskTrace) *TaskTrace {
	return trace.Merge(task, parts)
}

// AggregateByStage merges task nodes into stage nodes (resolution
// adjustment).
func AggregateByStage(g *Graph, m *Manifest) (*Graph, error) {
	return analyzer.AggregateByStage(g, m)
}

// CollapseDatasets merges the datasets of files holding more than
// maxPerFile into one aggregated node per file.
func CollapseDatasets(g *Graph, maxPerFile int) (*Graph, error) {
	return analyzer.CollapseDatasets(g, maxPerFile)
}

// AggregateByTime merges task nodes whose activity starts within the
// same window (resolution adjustment along the time dimension).
// windowNS must be positive; non-positive windows return
// analyzer.ErrNonPositiveWindow rather than passing the graph through.
func AggregateByTime(g *Graph, windowNS int64) (*Graph, error) {
	return analyzer.AggregateByTime(g, windowNS)
}

// Diagnose runs every observation rule over the traces.
func Diagnose(traces []*TaskTrace, m *Manifest, th Thresholds) []Finding {
	return diagnose.Analyze(traces, m, th)
}

// FindingsOfKind filters findings by rule kind.
func FindingsOfKind(fs []Finding, kind diagnose.Kind) []Finding {
	return diagnose.ByKind(fs, kind)
}

// Simulation + workflow layer.
type (
	// Machine is a simulated evaluation platform (Table III).
	Machine = sim.Machine
	// DeviceSpec is a parametric storage device model.
	DeviceSpec = sim.DeviceSpec
	// Cluster binds a machine to a node count.
	Cluster = workflow.Cluster
	// Engine executes workflow specs on a simulated cluster.
	Engine = workflow.Engine
	// WorkflowSpec describes a workflow: stages of parallel tasks.
	WorkflowSpec = workflow.Spec
	// WorkflowStage is one group of parallel tasks.
	WorkflowStage = workflow.Stage
	// WorkflowTask is one schedulable unit.
	WorkflowTask = workflow.Task
	// TaskContext is the I/O environment handed to task bodies.
	TaskContext = workflow.TaskContext
	// WorkflowResult is a completed simulated execution.
	WorkflowResult = workflow.Result
	// Plan is a set of placement/scheduling/staging decisions.
	Plan = workflow.Plan
	// Placement locates a file on a device tier and node.
	Placement = workflow.Placement
	// LocalityOptions tunes locality plan derivation.
	LocalityOptions = optimizer.LocalityOptions
)

// Simulated machines and devices (Table III).
var (
	MachineCPU = sim.MachineCPU
	MachineGPU = sim.MachineGPU
)

// NewEngine builds a workflow engine over a simulated cluster.
func NewEngine(cluster Cluster, plan *Plan, tcfg TracerConfig) (*Engine, error) {
	return workflow.NewEngine(cluster, plan, tcfg)
}

// PlanDataLocality derives a placement/co-scheduling/staging plan from
// traces, per the paper's optimization guidelines.
func PlanDataLocality(traces []*TaskTrace, m *Manifest, opts LocalityOptions) *Plan {
	return optimizer.PlanDataLocality(traces, m, opts)
}

// NetCDF layer (classic-netCDF-like format; traced identically).
type (
	// NCFile is an open netCDF-like file.
	NCFile = netcdf.File
	// NCVar is a netCDF variable handle.
	NCVar = netcdf.Var
	// NCType is a netCDF external type.
	NCType = netcdf.Type
	// NCDimID identifies a defined dimension.
	NCDimID = netcdf.DimID
	// NCConfig carries netCDF tracing hooks.
	NCConfig = netcdf.Config
)

// netCDF external types and the unlimited-dimension marker.
const (
	NCByte      = netcdf.Byte
	NCShort     = netcdf.Short
	NCInt       = netcdf.Int
	NCFloat     = netcdf.Float
	NCDouble    = netcdf.Double
	NCUnlimited = netcdf.UnlimitedDim
)

// CreateNetCDF creates a traced netCDF-like file in define mode.
func CreateNetCDF(tr *Tracer, name string, cfg NCConfig) (*NCFile, error) {
	var drv vfd.Driver = vfd.NewMemDriver()
	if tr != nil {
		drv = tr.WrapDriver(drv, name)
		cfg.Mailbox = tr.Mailbox()
		cfg.Observer = tr.VOLObserver()
	}
	return netcdf.Create(drv, name, cfg)
}

// ADIOS-BP-like log-structured layer (third paper-named format).
type (
	// BPFile is an open log-structured file (writer or reader).
	BPFile = adios.File
	// BPConfig carries BP tracing hooks.
	BPConfig = adios.Config
)

// CreateBP creates a traced BP-like writer.
func CreateBP(tr *Tracer, name string, cfg BPConfig) (*BPFile, error) {
	var drv vfd.Driver = vfd.NewMemDriver()
	if tr != nil {
		drv = tr.WrapDriver(drv, name)
		cfg.Mailbox = tr.Mailbox()
		cfg.Observer = tr.VOLObserver()
	}
	return adios.Create(drv, name, cfg)
}

// RepackAdvice configures layout rewriting (h5repack-style).
type RepackAdvice = repack.Advice

// Repack rewrites src into dst applying layout conversions and
// small-dataset consolidation (the data-format-optimization guideline).
func Repack(src, dst *File, adv RepackAdvice) error {
	return repack.File(src, dst, adv)
}

// OpenConsolidated opens a repacked group's consolidated blob with its
// offset index loaded.
func OpenConsolidated(g *Group) (*repack.Consolidated, error) {
	return repack.OpenConsolidated(g)
}

// ReportOptions configures Markdown report generation.
type ReportOptions = report.Options

// GenerateReport renders a Markdown optimization report from traces:
// summary, per-task I/O, findings grouped by guideline, derived plan.
func GenerateReport(traces []*TaskTrace, m *Manifest, opts ReportOptions) string {
	return report.Generate(traces, m, opts)
}

// Trace serializations: JSON (v1) and the dtb/v2 binary wire format.
// LoadTraces sniffs the format per file; SaveTraceFormat picks one.
const (
	TraceFormatJSON   = trace.FormatJSON
	TraceFormatBinary = trace.FormatBinary
)

// LoadTraces reads every task trace in a directory — JSON and dtb/v2
// binary files alike.
func LoadTraces(dir string) ([]*TaskTrace, error) { return trace.LoadDir(dir) }

// SaveTraceFormat writes one task trace into dir in the given format,
// returning the file path.
func SaveTraceFormat(t *TaskTrace, dir string, f TraceFormat) (string, error) {
	return t.SaveFormat(dir, f)
}

// LoadManifest reads a workflow manifest (nil when absent).
func LoadManifest(dir string) (*Manifest, error) { return trace.LoadManifest(dir) }

// SaveManifest writes a workflow manifest into a trace directory.
func SaveManifest(dir string, m *Manifest) error { return trace.SaveManifest(dir, m) }
