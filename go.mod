module dayu

go 1.22
