package dayu

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dayu/internal/diagnose"
)

// TestPublicAPIEndToEnd drives the complete public surface: trace a
// two-task producer/consumer flow, persist and reload traces, build
// both graph types, diagnose, and derive an optimization plan.
func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(TracerConfig{})

	// Task 1: produce.
	tr.BeginTask("produce")
	f, err := CreateFileAt(tr, filepath.Join(dir, "data.bin"), "data.h5", FileConfig{Task: "produce"})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("field", Float64, []int64{128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAll(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetAttrString("units", "K"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t1 := tr.EndTask()

	// Task 2: consume from the persisted OS file.
	tr.BeginTask("consume")
	f2, err := OpenFileAt(tr, filepath.Join(dir, "data.bin"), "data.h5", FileConfig{Task: "consume"})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.OpenDatasetPath("/field")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds2.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if s, err := ds2.AttrString("units"); err != nil || s != "K" {
		t.Fatalf("attr = %q, %v", s, err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	t2 := tr.EndTask()

	// Persist and reload traces.
	tdir := filepath.Join(dir, "traces")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []*TaskTrace{t1, t2} {
		if _, err := tt.Save(tdir); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{Workflow: "demo", TaskOrder: []string{"produce", "consume"}}
	if err := SaveManifest(tdir, m); err != nil {
		t.Fatal(err)
	}
	traces, err := LoadTraces(tdir)
	if err != nil || len(traces) != 2 {
		t.Fatalf("LoadTraces: %d, %v", len(traces), err)
	}
	m2, err := LoadManifest(tdir)
	if err != nil || m2.Workflow != "demo" {
		t.Fatalf("LoadManifest: %+v, %v", m2, err)
	}

	// Graphs.
	ftg := BuildFTG(traces, m2)
	if SummarizeGraph(ftg).Tasks != 2 {
		t.Error("FTG tasks wrong")
	}
	sdg := BuildSDG(traces, m2, AnalyzerOptions{IncludeRegions: true, PageSize: 4096})
	stats := SummarizeGraph(sdg)
	if stats.Datasets == 0 || stats.Regions == 0 {
		t.Errorf("SDG stats = %+v", stats)
	}
	if !strings.Contains(sdg.HTML(), "field") {
		t.Error("SDG HTML missing dataset")
	}
	if agg, err := AggregateByStage(ftg, m2); err != nil || agg == nil {
		t.Errorf("AggregateByStage failed: %v", err)
	}
	if col, err := CollapseDatasets(sdg, 100); err != nil || col == nil {
		t.Errorf("CollapseDatasets failed: %v", err)
	}

	// Diagnostics + plan.
	findings := Diagnose(traces, m2, Thresholds{})
	if len(findings) == 0 {
		t.Error("no findings")
	}
	_ = FindingsOfKind(findings, diagnose.DisposableData)
	plan := PlanDataLocality(traces, m2, LocalityOptions{FastTier: "nvme", Nodes: 1})
	if len(plan.Placements) == 0 {
		t.Error("plan derived no placements")
	}
}

func TestPublicEngineRun(t *testing.T) {
	eng, err := NewEngine(Cluster{Machine: MachineCPU, Nodes: 1}, nil, TracerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkflowSpec{Name: "w", Stages: []WorkflowStage{{Name: "s", Tasks: []WorkflowTask{{
		Name: "t",
		Fn: func(tc *TaskContext) error {
			f, err := tc.Create("x.h5")
			if err != nil {
				return err
			}
			ds, err := f.Root().CreateDataset("d", Uint8, []int64{16}, &DatasetOpts{
				Layout: Chunked, ChunkDims: []int64{4},
			})
			if err != nil {
				return err
			}
			return ds.WriteAll(make([]byte, 16))
		},
	}}}}}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 || len(res.Traces) != 1 {
		t.Errorf("result: %v, %d traces", res.Total(), len(res.Traces))
	}
}

func TestPublicHelpers(t *testing.T) {
	if FixedString(4).Size != 4 {
		t.Error("FixedString wrong")
	}
	if All([]int64{2, 3}).NumElems() != 6 {
		t.Error("All wrong")
	}
	if Slab1D(2, 5).NumElems() != 5 {
		t.Error("Slab1D wrong")
	}
	tr, err := NewTracerFromFile("/nonexistent")
	if err == nil || tr != nil {
		t.Error("NewTracerFromFile accepted missing file")
	}
	// Untraced file creation works with a nil tracer.
	f, err := CreateFile(nil, "plain.h5", FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
