package dayu

import (
	"strings"
	"testing"

	"dayu/internal/diagnose"
)

// TestFullPipelineIntegration drives the complete DaYu loop through the
// public API: run a workflow on the simulated cluster, diagnose it,
// generate the report, repack a flagged file, and confirm the repacked
// layout removes the finding.
func TestFullPipelineIntegration(t *testing.T) {
	// A workflow with a deliberately scattered stats file.
	spec := WorkflowSpec{Name: "integration", Stages: []WorkflowStage{
		{Name: "produce", Tasks: []WorkflowTask{{Name: "writer", Fn: func(tc *TaskContext) error {
			f, err := tc.Create("stats.h5")
			if err != nil {
				return err
			}
			for i := 0; i < 24; i++ {
				name := "stat_" + string(rune('a'+i))
				ds, err := f.Root().CreateDataset(name, Float32, []int64{50}, nil)
				if err != nil {
					return err
				}
				if err := ds.WriteAll(make([]byte, 200)); err != nil {
					return err
				}
			}
			return nil
		}}}},
		{Name: "analyze", Tasks: []WorkflowTask{{Name: "reader", Fn: func(tc *TaskContext) error {
			f, err := tc.Open("stats.h5")
			if err != nil {
				return err
			}
			kids, err := f.Root().Children()
			if err != nil {
				return err
			}
			for _, k := range kids {
				ds, err := f.Root().OpenDataset(k)
				if err != nil {
					return err
				}
				if _, err := ds.ReadAll(); err != nil {
					return err
				}
			}
			return nil
		}}}},
	}}
	eng, err := NewEngine(Cluster{Machine: MachineCPU, Nodes: 1}, nil, TracerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Diagnose: the scattering finding must fire.
	findings := Diagnose(res.Traces, res.Manifest, Thresholds{ScatterMinDatasets: 16})
	scatter := FindingsOfKind(findings, diagnose.DataScattering)
	if len(scatter) != 1 || scatter[0].File != "stats.h5" {
		t.Fatalf("scattering = %+v", scatter)
	}

	// Report mentions the layout guideline and the dependence chain.
	md := GenerateReport(res.Traces, res.Manifest, ReportOptions{
		Thresholds: Thresholds{ScatterMinDatasets: 16},
	})
	if !strings.Contains(md, "data-format-optimization") {
		t.Error("report missing layout guideline")
	}
	if !strings.Contains(md, "writer -[stats.h5]-> reader") {
		t.Error("report missing dependence chain")
	}

	// Timeline covers both tasks.
	tl := BuildTimeline(res.Traces, res.Manifest)
	if len(tl.Tasks) != 2 || tl.Duration() <= 0 {
		t.Fatalf("timeline = %+v", tl)
	}

	// Repack the scattered file per the finding: consolidate.
	src, err := CreateFile(nil, "src.h5", FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		name := "stat_" + string(rune('a'+i))
		ds, err := src.Root().CreateDataset(name, Float32, []int64{50}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteAll(make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := CreateFile(nil, "dst.h5", FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Repack(src, dst, RepackAdvice{ConsolidateBelow: 512}); err != nil {
		t.Fatal(err)
	}
	c, err := OpenConsolidated(dst.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names()) != 24 {
		t.Fatalf("consolidated %d datasets", len(c.Names()))
	}
	data, err := c.Read("stat_a")
	if err != nil || len(data) != 200 {
		t.Fatalf("consolidated read: %d bytes, %v", len(data), err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Chains are extractable directly too.
	chains := DependencyChains(res.Traces, res.Manifest)
	if len(chains) != 1 || chains[0].Len() != 1 {
		t.Fatalf("chains = %v", chains)
	}

	// Per-process merge: folding the two task traces under one name
	// yields one coherent trace.
	merged := MergeTraces("whole", res.Traces)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(merged.Files) != 1 {
		t.Fatalf("merged files = %d", len(merged.Files))
	}
}
