package adios

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

func writeSample(t *testing.T, drv vfd.Driver, cfg Config, steps int) {
	t.Helper()
	f, err := Create(drv, "sim.bp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if _, err := f.BeginStep(); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteVar("pressure", []int64{4, 8},
			bytes.Repeat([]byte{byte(s + 1)}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteVar("velocity", []int64{16},
			bytes.Repeat([]byte{byte(0x10 + s)}, 16)); err != nil {
			t.Fatal(err)
		}
		if err := f.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	drv := vfd.NewMemDriver()
	writeSample(t, drv, Config{}, 3)

	r, err := Open(vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...)), "sim.bp", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 3 {
		t.Fatalf("steps = %d", r.Steps())
	}
	names := r.VarNames()
	if len(names) != 2 || names[0] != "pressure" || names[1] != "velocity" {
		t.Fatalf("vars = %v", names)
	}
	for s := int64(0); s < 3; s++ {
		p, err := r.ReadVar("pressure", s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, bytes.Repeat([]byte{byte(s + 1)}, 32)) {
			t.Fatalf("pressure step %d corrupted", s)
		}
	}
	dims, err := r.VarDims("pressure", 1)
	if err != nil || dims[0] != 4 || dims[1] != 8 {
		t.Fatalf("dims = %v, %v", dims, err)
	}
	if _, err := r.ReadVar("pressure", 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("phantom step: %v", err)
	}
	if _, err := r.ReadVar("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("phantom var: %v", err)
	}
}

func TestStepProtocol(t *testing.T) {
	f, err := Create(vfd.NewMemDriver(), "p.bp", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Writing outside a step fails.
	if err := f.WriteVar("v", []int64{1}, []byte{1}); !errors.Is(err, ErrNoStep) {
		t.Errorf("write without step: %v", err)
	}
	if err := f.EndStep(); !errors.Is(err, ErrNoStep) {
		t.Errorf("end without begin: %v", err)
	}
	if _, err := f.BeginStep(); err != nil {
		t.Fatal(err)
	}
	// Nested BeginStep fails.
	if _, err := f.BeginStep(); err == nil {
		t.Error("nested step accepted")
	}
	// Duplicate variable per step fails.
	if err := f.WriteVar("v", []int64{1}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteVar("v", []int64{1}, []byte{2}); err == nil {
		t.Error("duplicate variable in step accepted")
	}
	// Bad geometry rejected.
	if err := f.WriteVar("bad", []int64{0}, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := f.WriteVar("", []int64{1}, []byte{1}); err == nil {
		t.Error("empty name accepted")
	}
	// Close mid-step fails; after EndStep it succeeds.
	if err := f.Close(); err == nil {
		t.Error("close mid-step accepted")
	}
	f.open = true // restore after failed close for the happy path
	if err := f.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Readers refuse writes.
	drv := vfd.NewMemDriver()
	writeSample(t, drv, Config{}, 1)
	r, err := Open(vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...)), "p.bp", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.BeginStep(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("reader BeginStep: %v", err)
	}
	if err := r.WriteVar("v", []int64{1}, []byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("reader WriteVar: %v", err)
	}
}

// TestLogStructuredIOSignature verifies the format's defining shape
// under DaYu: sequential data appends, zero read traffic during writes,
// and metadata concentrated at the file tail.
func TestLogStructuredIOSignature(t *testing.T) {
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("bp_writer")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "sim.bp")
	writeSample(t, drv, Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "bp_writer",
	}, 5)
	tt := tr.EndTask()
	if len(tt.Files) != 1 {
		t.Fatal("file record missing")
	}
	fr := tt.Files[0]
	if fr.Reads != 0 {
		t.Errorf("log-structured writer issued %d reads", fr.Reads)
	}
	// All data writes are sequential appends.
	if fr.SequentialOps < fr.DataOps-1 {
		t.Errorf("appends not sequential: %d of %d", fr.SequentialOps, fr.DataOps)
	}
	// Variable attribution works through the mailbox.
	var pressure bool
	for _, ms := range tt.Mapped {
		if ms.Object == "/pressure" && ms.DataOps == 5 {
			pressure = true
		}
	}
	if !pressure {
		t.Error("pressure blocks not attributed")
	}
	// The index footer is the file's last metadata region.
	var lastMetaEnd, fileEnd int64
	for _, ms := range tt.Mapped {
		for _, ext := range ms.Regions {
			if ext.End > fileEnd {
				fileEnd = ext.End
			}
		}
		if ms.Object == "" {
			for _, ext := range ms.Regions {
				if ext.End > lastMetaEnd {
					lastMetaEnd = ext.End
				}
			}
		}
	}
	if lastMetaEnd != fileEnd {
		t.Errorf("index footer not at file end: meta %d vs eof %d", lastMetaEnd, fileEnd)
	}
}

func TestCorruptionRobustness(t *testing.T) {
	drv := vfd.NewMemDriver()
	writeSample(t, drv, Config{}, 2)
	pristine := drv.Bytes()
	rng := rand.New(rand.NewSource(17))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on corrupted file: %v", r)
		}
	}()
	exercise := func(data []byte) {
		f, err := Open(vfd.NewMemDriverFrom(data), "x.bp", Config{})
		if err != nil {
			return
		}
		steps := f.Steps()
		if steps > 8 { // corrupted step numbers must not drive huge scans
			steps = 8
		}
		for _, name := range f.VarNames() {
			for s := int64(0); s < steps; s++ {
				_, _ = f.ReadVar(name, s)
				_, _ = f.VarDims(name, s)
			}
		}
	}
	for i := 0; i < len(pristine); i += 3 {
		data := append([]byte(nil), pristine...)
		data[i] ^= 0xff
		exercise(data)
	}
	for round := 0; round < 150; round++ {
		data := append([]byte(nil), pristine...)
		for j := 0; j < 1+rng.Intn(10); j++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		exercise(data)
	}
	for cut := 0; cut < len(pristine); cut += 7 {
		exercise(append([]byte(nil), pristine[:cut]...))
	}
}
