// Package adios implements an ADIOS-BP-like log-structured format, the
// third descriptive format the paper names (§II). Its I/O signature is
// the inverse of the other two layers: writes are pure sequential
// appends of self-describing variable blocks grouped into steps (ideal
// write bandwidth, near-zero metadata traffic during the run), and all
// metadata lands in one index footer written at close. Readers load the
// footer first, then seek directly to blocks. DaYu's profilers observe
// it through the same VOL/VFD hooks as the HDF5- and netCDF-like
// layers.
package adios

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dayu/internal/semantics"
	"dayu/internal/sim"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("adios: file is closed")
	// ErrReadOnly is returned for writes to a reader.
	ErrReadOnly = errors.New("adios: file opened for reading")
	// ErrNoStep is returned when writing outside BeginStep/EndStep.
	ErrNoStep = errors.New("adios: no step in progress")
	// ErrNotFound is returned for unknown variables or steps.
	ErrNotFound = errors.New("adios: not found")
)

const (
	blockMagic   = "BPBK"
	footerMagic  = "BPFT"
	trailerSize  = 12 // indexOffset(8) + magic(4)
	maxIndexSize = 16 << 20
	maxSteps     = int64(1) << 24
	maxBlockSize = int64(1) << 31
)

// Config carries tracing hooks, matching the other format layers.
type Config struct {
	Mailbox  *semantics.Mailbox
	Observer vol.Observer
	Task     string
	Now      func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// indexEntry locates one variable block.
type indexEntry struct {
	name   string
	step   int64
	dims   []int64
	offset int64
	length int64
}

// File is an open BP-like file: either a writer (Create) or a reader
// (Open).
type File struct {
	drv     vfd.Driver
	name    string
	cfg     Config
	writer  bool
	open    bool
	inStep  bool
	step    int64
	eof     int64
	index   []indexEntry
	byName  map[string][]int // index positions per variable
	current map[string]bool  // variables written this step
}

// Create starts a new writer.
func Create(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	if err := drv.Truncate(0); err != nil {
		return nil, fmt.Errorf("adios: create %s: %w", name, err)
	}
	f := &File{drv: drv, name: name, cfg: cfg, writer: true, open: true,
		step: -1, byName: map[string][]int{}}
	f.event(vol.FileCreate, vol.ObjectInfo{Name: "/", Type: "file"}, 0)
	return f, nil
}

func (f *File) event(kind vol.EventKind, info vol.ObjectInfo, bytes int64) {
	if f.cfg.Observer == nil {
		return
	}
	info.File = f.name
	f.cfg.Observer.OnEvent(vol.Event{
		Kind: kind, Wall: f.cfg.Now(), Task: f.cfg.Task, Info: info, Bytes: bytes,
	})
}

func (f *File) stamp(object string) func() {
	if f.cfg.Mailbox == nil {
		return func() {}
	}
	return f.cfg.Mailbox.Enter(semantics.Context{Object: object, File: f.name, Task: f.cfg.Task})
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// BeginStep opens the next output step.
func (f *File) BeginStep() (int64, error) {
	if !f.open {
		return 0, ErrClosed
	}
	if !f.writer {
		return 0, ErrReadOnly
	}
	if f.inStep {
		return 0, fmt.Errorf("adios: step %d still in progress", f.step)
	}
	f.step++
	f.inStep = true
	f.current = map[string]bool{}
	return f.step, nil
}

// EndStep closes the current step.
func (f *File) EndStep() error {
	if !f.open {
		return ErrClosed
	}
	if !f.inStep {
		return ErrNoStep
	}
	f.inStep = false
	return nil
}

// WriteVar appends one variable block to the log: a self-describing
// header plus the payload, both strictly sequential.
func (f *File) WriteVar(name string, dims []int64, data []byte) error {
	if !f.open {
		return ErrClosed
	}
	if !f.writer {
		return ErrReadOnly
	}
	if !f.inStep {
		return ErrNoStep
	}
	if name == "" {
		return fmt.Errorf("adios: empty variable name")
	}
	if f.current[name] {
		return fmt.Errorf("adios: variable %q already written in step %d", name, f.step)
	}
	elems := int64(1)
	for i, d := range dims {
		if d <= 0 {
			return fmt.Errorf("adios: variable %q dimension %d is %d", name, i, d)
		}
		elems *= d
	}
	exit := f.stamp("/" + name)
	defer exit()

	// Block header: magic, name, step, dims, payload length.
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, blockMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(f.step))
	hdr = append(hdr, byte(len(dims)))
	for _, d := range dims {
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d))
	}
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(data)))
	if err := f.drv.WriteAt(hdr, f.eof, sim.Metadata); err != nil {
		return fmt.Errorf("adios: write block header: %w", err)
	}
	f.eof += int64(len(hdr))
	payloadOff := f.eof
	if err := f.drv.WriteAt(data, f.eof, sim.RawData); err != nil {
		return fmt.Errorf("adios: write block payload: %w", err)
	}
	f.eof += int64(len(data))

	pos := len(f.index)
	f.index = append(f.index, indexEntry{
		name: name, step: f.step, dims: append([]int64(nil), dims...),
		offset: payloadOff, length: int64(len(data)),
	})
	f.byName[name] = append(f.byName[name], pos)
	f.current[name] = true
	f.event(vol.DatasetWrite, vol.ObjectInfo{
		Name: "/" + name, Type: "dataset", Datatype: "bytes",
		Shape: dims, Layout: "log",
	}, int64(len(data)))
	return nil
}

// Close writes the index footer (writers) and closes the driver.
func (f *File) Close() error {
	if !f.open {
		return nil
	}
	f.open = false
	if f.writer {
		if f.inStep {
			return fmt.Errorf("adios: close with step %d in progress", f.step)
		}
		footer := f.serializeIndex()
		footerOff := f.eof
		if err := f.drv.WriteAt(footer, footerOff, sim.Metadata); err != nil {
			return fmt.Errorf("adios: write footer: %w", err)
		}
		trailer := make([]byte, trailerSize)
		binary.LittleEndian.PutUint64(trailer, uint64(footerOff))
		copy(trailer[8:], footerMagic)
		if err := f.drv.WriteAt(trailer, footerOff+int64(len(footer)), sim.Metadata); err != nil {
			return fmt.Errorf("adios: write trailer: %w", err)
		}
	}
	f.event(vol.FileClose, vol.ObjectInfo{Name: "/", Type: "file"}, 0)
	return f.drv.Close()
}

func (f *File) serializeIndex() []byte {
	var b []byte
	b = append(b, footerMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.index)))
	for _, e := range f.index {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.name)))
		b = append(b, e.name...)
		b = binary.LittleEndian.AppendUint64(b, uint64(e.step))
		b = append(b, byte(len(e.dims)))
		for _, d := range e.dims {
			b = binary.LittleEndian.AppendUint64(b, uint64(d))
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(e.offset))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.length))
	}
	return b
}
