package adios

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dayu/internal/sim"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

// Open loads an existing BP-like file for reading: one metadata read
// for the trailer, one for the index footer, then direct payload seeks.
func Open(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	f := &File{drv: drv, name: name, cfg: cfg, open: true, byName: map[string][]int{}}
	f.event(vol.FileOpen, vol.ObjectInfo{Name: "/", Type: "file"}, 0)

	eof := drv.EOF()
	if eof < trailerSize {
		return nil, fmt.Errorf("adios: %s too small for a trailer", name)
	}
	trailer := make([]byte, trailerSize)
	if err := drv.ReadAt(trailer, eof-trailerSize, sim.Metadata); err != nil {
		return nil, fmt.Errorf("adios: read trailer: %w", err)
	}
	if string(trailer[8:]) != footerMagic {
		return nil, fmt.Errorf("adios: bad trailer magic in %s", name)
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer))
	footerLen := eof - trailerSize - footerOff
	if footerOff < 0 || footerLen <= 0 || footerLen > maxIndexSize {
		return nil, fmt.Errorf("adios: implausible footer geometry in %s", name)
	}
	footer := make([]byte, footerLen)
	if err := drv.ReadAt(footer, footerOff, sim.Metadata); err != nil {
		return nil, fmt.Errorf("adios: read footer: %w", err)
	}
	if err := f.parseIndex(footer); err != nil {
		return nil, err
	}
	f.eof = footerOff
	return f, nil
}

func (f *File) parseIndex(b []byte) error {
	off := 0
	fail := func(what string) error {
		return fmt.Errorf("adios: truncated index at %s (offset %d)", what, off)
	}
	if len(b) < 8 || string(b[:4]) != footerMagic {
		return fmt.Errorf("adios: bad footer magic")
	}
	off = 4
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if n < 0 || n > len(b) {
		return fail("entry count")
	}
	for i := 0; i < n; i++ {
		if off+2 > len(b) {
			return fail("name length")
		}
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+nameLen > len(b) {
			return fail("name")
		}
		name := string(b[off : off+nameLen])
		off += nameLen
		if off+8 > len(b) {
			return fail("step")
		}
		step := int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		if off >= len(b) {
			return fail("rank")
		}
		ndims := int(b[off])
		off++
		dims := make([]int64, 0, ndims)
		for j := 0; j < ndims; j++ {
			if off+8 > len(b) {
				return fail("dimension")
			}
			d := int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			if d <= 0 || d > 1<<32 {
				return fmt.Errorf("adios: implausible dimension %d for %q", d, name)
			}
			dims = append(dims, d)
		}
		if off+16 > len(b) {
			return fail("block location")
		}
		offset := int64(binary.LittleEndian.Uint64(b[off:]))
		length := int64(binary.LittleEndian.Uint64(b[off+8:]))
		off += 16
		if offset < 0 || length < 0 || length > maxBlockSize || step < 0 || step > maxSteps {
			return fmt.Errorf("adios: implausible block for %q", name)
		}
		pos := len(f.index)
		f.index = append(f.index, indexEntry{name: name, step: step, dims: dims,
			offset: offset, length: length})
		f.byName[name] = append(f.byName[name], pos)
		if step > f.step {
			f.step = step
		}
	}
	return nil
}

// Steps returns the number of steps recorded (writers report the count
// so far).
func (f *File) Steps() int64 { return f.step + 1 }

// VarNames lists variables in first-appearance order per name, sorted.
func (f *File) VarNames() []string {
	names := make([]string, 0, len(f.byName))
	for n := range f.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VarDims returns the dimensions a variable had in a given step.
func (f *File) VarDims(name string, step int64) ([]int64, error) {
	e, err := f.lookup(name, step)
	if err != nil {
		return nil, err
	}
	return append([]int64(nil), e.dims...), nil
}

func (f *File) lookup(name string, step int64) (indexEntry, error) {
	for _, pos := range f.byName[name] {
		if f.index[pos].step == step {
			return f.index[pos], nil
		}
	}
	return indexEntry{}, fmt.Errorf("%w: variable %q step %d", ErrNotFound, name, step)
}

// ReadVar fetches one variable block: a single direct payload read.
func (f *File) ReadVar(name string, step int64) ([]byte, error) {
	if !f.open {
		return nil, ErrClosed
	}
	e, err := f.lookup(name, step)
	if err != nil {
		return nil, err
	}
	exit := f.stamp("/" + name)
	defer exit()
	out := make([]byte, e.length)
	if err := f.drv.ReadAt(out, e.offset, sim.RawData); err != nil {
		return nil, fmt.Errorf("adios: read %q step %d: %w", name, step, err)
	}
	f.event(vol.DatasetRead, vol.ObjectInfo{
		Name: "/" + name, Type: "dataset", Datatype: "bytes",
		Shape: e.dims, Layout: "log",
	}, e.length)
	return out, nil
}
