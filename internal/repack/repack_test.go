package repack

import (
	"bytes"
	"fmt"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/vfd"
)

func newFile(t *testing.T, name string) (*hdf5.File, *vfd.OpLog) {
	t.Helper()
	log := &vfd.OpLog{}
	drv := vfd.NewProfiledDriver(vfd.NewMemDriver(), name, nil, log)
	f, err := hdf5.Create(drv, name, hdf5.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f, log
}

func TestRepackLayoutConversion(t *testing.T) {
	src, _ := newFile(t, "src.h5")
	g, err := src.Root().CreateGroup("g")
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := g.CreateDataset("c", hdf5.Uint8, []int64{256},
		&hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{32}})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xa7}, 256)
	if err := chunked.WriteAll(payload); err != nil {
		t.Fatal(err)
	}
	if err := chunked.SetAttrString("units", "K"); err != nil {
		t.Fatal(err)
	}
	contig, err := g.CreateDataset("k", hdf5.Uint8, []int64{128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := contig.WriteAll(payload[:128]); err != nil {
		t.Fatal(err)
	}

	dst, _ := newFile(t, "dst.h5")
	err = File(src, dst, Advice{Convert: map[string]hdf5.Layout{
		"/g/c": hdf5.Contiguous,
		"/g/k": hdf5.Chunked,
	}})
	if err != nil {
		t.Fatal(err)
	}

	out, err := dst.OpenDatasetPath("/g/c")
	if err != nil {
		t.Fatal(err)
	}
	if out.Layout() != hdf5.Contiguous {
		t.Errorf("layout = %v", out.Layout())
	}
	got, err := out.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("data lost in conversion")
	}
	if u, err := out.AttrString("units"); err != nil || u != "K" {
		t.Errorf("attr = %q, %v", u, err)
	}
	out2, err := dst.OpenDatasetPath("/g/k")
	if err != nil {
		t.Fatal(err)
	}
	if out2.Layout() != hdf5.Chunked {
		t.Errorf("k layout = %v", out2.Layout())
	}
	got2, _ := out2.ReadAll()
	if !bytes.Equal(got2, payload[:128]) {
		t.Error("k data lost")
	}
}

func TestRepackConsolidation(t *testing.T) {
	src, _ := newFile(t, "src.h5")
	const n = 16
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("stat_%02d", i)
		ds, err := src.Root().CreateDataset(name, hdf5.Uint8, []int64{100}, nil)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 100)
		if err := ds.WriteAll(data); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	// One big dataset stays separate.
	big, err := src.Root().CreateDataset("big", hdf5.Uint8, []int64{4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.WriteAll(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}

	dst, _ := newFile(t, "dst.h5")
	if err := File(src, dst, Advice{ConsolidateBelow: 500}); err != nil {
		t.Fatal(err)
	}
	// The small datasets are gone; the blob holds them all.
	kids, err := dst.Root().Children()
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 { // big + consolidated
		t.Fatalf("children = %v", kids)
	}
	for name, data := range want {
		got, err := ReadConsolidated(dst.Root(), name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s corrupted", name)
		}
	}
	if _, err := ReadConsolidated(dst.Root(), "missing"); err == nil {
		t.Error("missing consolidated entry resolved")
	}
	// The big dataset is untouched.
	if _, err := dst.OpenDatasetPath("/big"); err != nil {
		t.Error(err)
	}
}

func TestRepackVLenPreservesHoles(t *testing.T) {
	src, _ := newFile(t, "src.h5")
	vl, err := src.Root().CreateDataset("vl", hdf5.VLen, []int64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vl.WriteVL(0, [][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := vl.WriteVL(2, [][]byte{[]byte("c"), []byte("d")}); err != nil {
		t.Fatal(err)
	}
	dst, _ := newFile(t, "dst.h5")
	if err := File(src, dst, Advice{Convert: map[string]hdf5.Layout{
		"/vl": hdf5.Chunked,
	}}); err != nil {
		t.Fatal(err)
	}
	out, err := dst.OpenDatasetPath("/vl")
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadVL(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "a" || got[1] != nil || string(got[2]) != "c" ||
		string(got[3]) != "d" || got[4] != nil {
		t.Errorf("VL repack: %q", got)
	}
}

// TestRepackReducesReplayedIOTime: the end-to-end point of the tool -
// the stage-9 access pattern against the repacked (consolidated) file
// replays faster on NVMe than against the original scattered file.
func TestRepackReducesReplayedIOTime(t *testing.T) {
	build := func(consolidate bool) []sim.Op {
		src, _ := newFile(t, "s.h5")
		for i := 0; i < 32; i++ {
			ds, err := src.Root().CreateDataset(fmt.Sprintf("stat_%02d", i), hdf5.Uint8, []int64{400}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.WriteAll(make([]byte, 400)); err != nil {
				t.Fatal(err)
			}
		}
		target := src
		var log *vfd.OpLog
		if consolidate {
			dst, dlog := newFile(t, "d.h5")
			if err := File(src, dst, Advice{ConsolidateBelow: 1024}); err != nil {
				t.Fatal(err)
			}
			target, log = dst, dlog
			log.Reset()
			// Access pattern: open the blob once, then every original
			// dataset read 23 times through the loaded index.
			c, err := OpenConsolidated(target.Root())
			if err != nil {
				t.Fatal(err)
			}
			for a := 0; a < 23; a++ {
				for i := 0; i < 32; i++ {
					if _, err := c.Read(fmt.Sprintf("stat_%02d", i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			return log.SimOps()
		}
		// Baseline: per-dataset open + read.
		slog := &vfd.OpLog{}
		drv := vfd.NewProfiledDriver(vfd.NewMemDriverFrom(nil), "replay.h5", nil, slog)
		_ = drv
		// Re-trace the scattered access against the original file by
		// re-running opens/reads with a fresh op log wrapper.
		src2, log2 := newFile(t, "s2.h5")
		for i := 0; i < 32; i++ {
			ds, _ := src2.Root().CreateDataset(fmt.Sprintf("stat_%02d", i), hdf5.Uint8, []int64{400}, nil)
			_ = ds.WriteAll(make([]byte, 400))
		}
		log2.Reset()
		for a := 0; a < 23; a++ {
			for i := 0; i < 32; i++ {
				ds, err := src2.Root().OpenDataset(fmt.Sprintf("stat_%02d", i))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ds.ReadAll(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return log2.SimOps()
	}
	scattered := sim.Replay(build(false), sim.NVMeSSD, 1)
	consolidated := sim.Replay(build(true), sim.NVMeSSD, 1)
	if consolidated >= scattered {
		t.Errorf("repacked replay (%v) not faster than scattered (%v)", consolidated, scattered)
	}
}
