// Package repack rewrites HDF5-like files with optimized storage
// layouts, applying DaYu's data-format-optimization guideline the way
// h5repack applies layout changes to real HDF5 files: converting
// datasets between contiguous and chunked layouts, and consolidating
// many small datasets into one large dataset indexed by offset (the
// PyFLEXTRKR stage-9 optimization of §VII-C2).
package repack

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dayu/internal/hdf5"
)

// Advice configures the rewrite.
type Advice struct {
	// Convert maps object paths (e.g. "/g/rmsd") to their target layout.
	Convert map[string]hdf5.Layout
	// ChunkDims supplies chunk shapes for conversions to chunked layout;
	// nil uses ceil(dim/8) per dimension.
	ChunkDims func(dims []int64) []int64
	// ConsolidateBelow, when positive, merges every fixed-size dataset
	// smaller than this many bytes (per group) into one large dataset
	// named ConsolidatedName, with a per-dataset offset index stored as
	// attributes. Variable-length datasets are never consolidated.
	ConsolidateBelow int64
}

// ConsolidatedName is the merged dataset's name within each group.
const ConsolidatedName = "__consolidated__"

func defaultChunkDims(dims []int64) []int64 {
	out := make([]int64, len(dims))
	for i, d := range dims {
		c := (d + 7) / 8
		if c < 1 {
			c = 1
		}
		out[i] = c
	}
	return out
}

// File rewrites src into dst (an empty, freshly created file) applying
// the advice. Both files stay open; the caller owns their lifecycles.
func File(src, dst *hdf5.File, adv Advice) error {
	if adv.ChunkDims == nil {
		adv.ChunkDims = defaultChunkDims
	}
	return copyGroup(src.Root(), dst.Root(), adv)
}

func copyGroup(src, dst *hdf5.Group, adv Advice) error {
	kids, err := src.Children()
	if err != nil {
		return err
	}
	type small struct {
		name string
		dt   hdf5.Datatype
		dims []int64
		data []byte
	}
	var smalls []small

	for _, name := range kids {
		kind, err := src.ChildType(name)
		if err != nil {
			return err
		}
		if kind == "group" {
			sg, err := src.OpenGroup(name)
			if err != nil {
				return err
			}
			dg, err := dst.CreateGroup(name)
			if err != nil {
				return err
			}
			if err := copyGroup(sg, dg, adv); err != nil {
				return err
			}
			continue
		}
		ds, err := src.OpenDataset(name)
		if err != nil {
			return err
		}
		dims := ds.Dims()
		totalBytes := ds.NumElems() * ds.Datatype().Size

		// Small fixed datasets may be swept into the consolidated blob.
		if adv.ConsolidateBelow > 0 && !ds.Datatype().IsVLen() &&
			totalBytes < adv.ConsolidateBelow && len(dims) == 1 {
			data, err := ds.ReadAll()
			if err != nil {
				return err
			}
			smalls = append(smalls, small{name: name, dt: ds.Datatype(), dims: dims, data: data})
			if err := ds.Close(); err != nil {
				return err
			}
			continue
		}
		if err := copyDataset(ds, dst, name, adv); err != nil {
			return err
		}
		if err := ds.Close(); err != nil {
			return err
		}
	}

	if len(smalls) > 0 {
		sort.Slice(smalls, func(i, j int) bool { return smalls[i].name < smalls[j].name })
		var blob []byte
		type span struct{ off, n int64 }
		index := map[string]span{}
		for _, s := range smalls {
			index[s.name] = span{off: int64(len(blob)), n: int64(len(s.data))}
			blob = append(blob, s.data...)
		}
		cds, err := dst.CreateDataset(ConsolidatedName, hdf5.Uint8, []int64{int64(len(blob))}, nil)
		if err != nil {
			return err
		}
		if err := cds.WriteAll(blob); err != nil {
			return err
		}
		// The offset index keeps the original datasets addressable.
		for _, s := range smalls {
			sp := index[s.name]
			var enc [16]byte
			binary.LittleEndian.PutUint64(enc[:8], uint64(sp.off))
			binary.LittleEndian.PutUint64(enc[8:], uint64(sp.n))
			if err := cds.SetAttr(s.name, hdf5.Int64, enc[:]); err != nil {
				return err
			}
		}
		if err := cds.Close(); err != nil {
			return err
		}
	}
	return nil
}

func copyDataset(ds *hdf5.Dataset, dst *hdf5.Group, name string, adv Advice) error {
	dims := ds.Dims()
	target := ds.Layout()
	if l, ok := adv.Convert[ds.Name()]; ok {
		target = l
	}
	opts := &hdf5.DatasetOpts{Layout: target}
	if target == hdf5.Chunked {
		opts.ChunkDims = adv.ChunkDims(dims)
	}
	out, err := dst.CreateDataset(name, ds.Datatype(), dims, opts)
	if err != nil {
		return err
	}
	if ds.Datatype().IsVLen() {
		values, err := ds.ReadVL(0, dims[0])
		if err != nil {
			return err
		}
		// nil entries were never written; preserve holes.
		start := int64(-1)
		var batch [][]byte
		flush := func() error {
			if start < 0 || len(batch) == 0 {
				return nil
			}
			if err := out.WriteVL(start, batch); err != nil {
				return err
			}
			start, batch = -1, nil
			return nil
		}
		for i, v := range values {
			if v == nil {
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			if start < 0 {
				start = int64(i)
			}
			batch = append(batch, v)
		}
		if err := flush(); err != nil {
			return err
		}
	} else {
		data, err := ds.ReadAll()
		if err != nil {
			return err
		}
		if err := out.WriteAll(data); err != nil {
			return err
		}
	}
	// Attributes carry over verbatim.
	attrs, err := ds.Attrs()
	if err != nil {
		return err
	}
	for _, a := range attrs {
		v, dt, err := ds.Attr(a)
		if err != nil {
			return err
		}
		if err := out.SetAttr(a, dt, v); err != nil {
			return err
		}
	}
	return out.Close()
}

// Consolidated is an open handle on a group's consolidated blob with
// the offset index loaded once - the access mode that realizes the
// optimization (one object open, direct offset reads, no per-dataset
// metadata traffic).
type Consolidated struct {
	ds    *hdf5.Dataset
	index map[string][2]int64 // name -> {offset, length}
}

// OpenConsolidated opens the blob and loads its index.
func OpenConsolidated(g *hdf5.Group) (*Consolidated, error) {
	cds, err := g.OpenDataset(ConsolidatedName)
	if err != nil {
		return nil, err
	}
	names, err := cds.Attrs()
	if err != nil {
		return nil, err
	}
	c := &Consolidated{ds: cds, index: make(map[string][2]int64, len(names))}
	for _, name := range names {
		enc, _, err := cds.Attr(name)
		if err != nil {
			return nil, err
		}
		if len(enc) != 16 {
			return nil, fmt.Errorf("repack: malformed index entry for %q", name)
		}
		c.index[name] = [2]int64{
			int64(binary.LittleEndian.Uint64(enc[:8])),
			int64(binary.LittleEndian.Uint64(enc[8:])),
		}
	}
	return c, nil
}

// Names lists the original datasets held in the blob.
func (c *Consolidated) Names() []string {
	names := make([]string, 0, len(c.index))
	for n := range c.index {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Read fetches one original dataset's bytes by offset.
func (c *Consolidated) Read(name string) ([]byte, error) {
	sp, ok := c.index[name]
	if !ok {
		return nil, fmt.Errorf("repack: no consolidated entry %q", name)
	}
	return c.ds.Read(hdf5.Slab1D(sp[0], sp[1]))
}

// Close releases the underlying dataset handle.
func (c *Consolidated) Close() error { return c.ds.Close() }

// ReadConsolidated is a one-shot convenience for single lookups; hot
// paths should keep an OpenConsolidated handle instead.
func ReadConsolidated(g *hdf5.Group, name string) ([]byte, error) {
	c, err := OpenConsolidated(g)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Read(name)
}
