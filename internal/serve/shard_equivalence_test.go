package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dayu/internal/obs"
	"dayu/internal/trace"
)

// shardCounts returns the shard counts under test: {1, 2, 4, 8} by
// default, overridable via DAYU_SHARDS (comma-separated) so the CI
// matrix can pin one count per job.
func shardCounts(t *testing.T) []int {
	env := os.Getenv("DAYU_SHARDS")
	if env == "" {
		return []int{1, 2, 4, 8}
	}
	var counts []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			t.Fatalf("bad DAYU_SHARDS %q", env)
		}
		counts = append(counts, n)
	}
	return counts
}

// TestShardServeEquivalence is the shard-matrix acceptance gate: at
// every shard count, every endpoint's bytes equal the batch CLI's
// across add, modify and delete — and equal every other shard count's
// bytes, because both sides equal the same batch rendering. CI greps
// the SHARD-EQUIVALENCE marker from the -v output.
func TestShardServeEquivalence(t *testing.T) {
	for _, n := range shardCounts(t) {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := writeFixtureDir(t)
			s := mustServer(t, Config{Dir: dir, Registry: obs.NewRegistry(), PlanOptions: testPlanOpts, Shards: n})
			defer s.Close()
			srv := httptest.NewServer(s)
			defer srv.Close()

			checkAllEndpoints(t, srv, dir, "initial")

			// Modify one task: the change must propagate identically
			// regardless of which shard owns the victim.
			paths, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
			if err != nil || len(paths) == 0 {
				t.Fatalf("glob: %v (%d files)", err, len(paths))
			}
			victim := paths[1]
			tt, err := trace.Load(victim)
			if err != nil {
				t.Fatal(err)
			}
			tt.Files[0].BytesWritten += 8192
			if _, err := tt.Save(dir); err != nil {
				t.Fatal(err)
			}
			bumpMtimes(t, dir, 1)
			checkAllEndpoints(t, srv, dir, "modify")

			// Add a trace, then delete one.
			extra := &trace.TaskTrace{
				Task: "zz/task_sharded", StartNS: 1 << 40, EndNS: 1<<40 + 1000,
				Files: []trace.FileRecord{{
					Task: "zz/task_sharded", File: "sharded_out.h5",
					OpenNS: 1<<40 + 10, CloseNS: 1<<40 + 900,
					Ops: 4, Writes: 4, BytesWritten: 1 << 14,
					MetaOps: 1, DataOps: 3, MetaBytes: 64, DataBytes: 1<<14 - 64,
				}},
			}
			if _, err := extra.Save(dir); err != nil {
				t.Fatal(err)
			}
			bumpMtimes(t, dir, 2)
			checkAllEndpoints(t, srv, dir, "add")

			if err := os.Remove(victim); err != nil {
				t.Fatal(err)
			}
			bumpMtimes(t, dir, 3)
			checkAllEndpoints(t, srv, dir, "delete")

			if !t.Failed() {
				t.Logf("SHARD-EQUIVALENCE: shards=%d byte-identical to batch", n)
			}
		})
	}
}

// TestShardCountInvariantSnapshotID pins that the snapshot content
// address — and therefore every response header and cache key — is a
// function of the directory state only, never of the shard count.
func TestShardCountInvariantSnapshotID(t *testing.T) {
	dir := writeFixtureDir(t)
	ids := map[string]bool{}
	bodies := map[string]bool{}
	for _, n := range []int{1, 2, 4, 8} {
		s := mustServer(t, Config{Dir: dir, PlanOptions: testPlanOpts, Shards: n})
		snap, err := s.Ingest()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ids[snap.id] = true
		body, err := renderGraph(snap.sdg, "json")
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bodies[string(body)] = true
		s.Close()
	}
	if len(ids) != 1 {
		t.Errorf("snapshot ID varies with shard count: %d distinct values", len(ids))
	}
	if len(bodies) != 1 {
		t.Errorf("SDG bytes vary with shard count: %d distinct renderings", len(bodies))
	}
}

// TestShardedPushEquivalence drives the durable push path at 4 shards
// (mixed formats, streaming checkpoints superseded by finals) and pins
// byte-identity plus the shard-<k> WAL layout.
func TestShardedPushEquivalence(t *testing.T) {
	env := newPushEnv(t, func(cfg *Config) { cfg.Shards = 4 })
	const tasks = 12
	for i := 0; i < tasks; i++ {
		f := trace.FormatJSON
		if i%2 == 1 {
			f = trace.FormatBinary
		}
		status, pr, _ := postIngest(t, env.srv, makeTraceBytes(t, fmt.Sprintf("stage%d/task_%02d", i%3, i), f))
		if status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("push %d = %d %+v", i, status, pr)
		}
	}
	waitTasks(t, env.s, tasks)
	waitWALDrained(t, env.s)
	checkAllEndpoints(t, env.srv, env.dir, "sharded-push")

	// The WAL landed under per-shard namespaces, not the flat root.
	if segs, _ := filepath.Glob(filepath.Join(env.walDir, "wal-*.seg")); len(segs) != 0 {
		t.Errorf("sharded server wrote %d segments into the flat root", len(segs))
	}
	shardDirs, _ := filepath.Glob(filepath.Join(env.walDir, "shard-*"))
	if len(shardDirs) != 4 {
		t.Errorf("WAL shard namespaces = %v, want 4", shardDirs)
	}

	// Identical re-push is a duplicate on every shard.
	status, pr, _ := postIngest(t, env.srv, makeTraceBytes(t, "stage0/task_00", trace.FormatJSON))
	if status != http.StatusOK || pr.Status != "duplicate" {
		t.Fatalf("re-push = %d %+v, want duplicate", status, pr)
	}
}

// TestShardCountChangeAcrossRestart pins that acknowledged data
// survives any -shards change: records folded under one count are all
// present after restarting at another, orphaned WAL namespaces are
// drained and retired, and responses stay byte-identical to batch.
func TestShardCountChangeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	walDir := t.TempDir()
	base := Config{Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever}, PlanOptions: testPlanOpts}

	for step, n := range []int{4, 2, 1} {
		cfg := base
		cfg.Shards = n
		s := mustServer(t, cfg)
		srv := httptest.NewServer(s)
		for i := 0; i < 4; i++ {
			task := fmt.Sprintf("gen%d/task_%02d", step, i)
			status, pr, _ := postIngest(t, srv, makeTraceBytes(t, task, trace.FormatJSON))
			if status != http.StatusOK || pr.Status != "accepted" {
				t.Fatalf("step %d push %s = %d %+v", step, task, status, pr)
			}
		}
		waitTasks(t, s, (step+1)*4)
		waitWALDrained(t, s)
		checkAllEndpoints(t, srv, dir, fmt.Sprintf("shards=%d", n))
		srv.Close()
		s.Close()
	}

	// After the final single-shard run every shard-<k> namespace was
	// replayed empty and retired.
	leftovers, _ := filepath.Glob(filepath.Join(walDir, "shard-*"))
	if len(leftovers) != 0 {
		t.Errorf("retired shard namespaces remain: %v", leftovers)
	}
}

// TestShardedHealthzBreakdown pins the healthz aggregation contract:
// the top-level WAL numbers are sums, and the per-shard breakdown
// appears exactly when sharded.
func TestShardedHealthzBreakdown(t *testing.T) {
	env := newPushEnv(t, func(cfg *Config) { cfg.Shards = 2; cfg.IngestQueue = 3 })
	for i := 0; i < 4; i++ {
		status, _, _ := postIngest(t, env.srv, makeTraceBytes(t, fmt.Sprintf("hz/task_%d", i), trace.FormatJSON))
		if status != http.StatusOK {
			t.Fatalf("push %d = %d", i, status)
		}
	}
	waitWALDrained(t, env.s)
	var h Health
	getJSON(t, env.srv, "/healthz", &h)
	if h.WAL == nil {
		t.Fatal("no WAL health")
	}
	if len(h.WAL.Shards) != 2 {
		t.Fatalf("per-shard breakdown has %d entries, want 2", len(h.WAL.Shards))
	}
	var next, folded uint64
	var qcap int
	for _, sh := range h.WAL.Shards {
		next += sh.NextSeq
		folded += sh.FoldedSeq
		qcap += sh.QueueCapacity
	}
	if next != h.WAL.NextSeq || folded != h.WAL.FoldedSeq || qcap != h.WAL.QueueCapacity {
		t.Errorf("top-level WAL health is not the shard sum: %+v", h.WAL)
	}
	if h.WAL.NextSeq != 4 || h.WAL.FoldedSeq != 4 {
		t.Errorf("aggregate seq = %d/%d, want 4/4", h.WAL.NextSeq, h.WAL.FoldedSeq)
	}
	if h.WAL.QueueCapacity != 6 {
		t.Errorf("aggregate queue capacity = %d, want 2*3", h.WAL.QueueCapacity)
	}
}

// getJSON fetches a 200 response and decodes it.
func getJSON(t *testing.T, srv *httptest.Server, path string, into any) {
	t.Helper()
	body := get(t, srv, path)
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("decode %s: %v: %s", path, err, body)
	}
}
