package history

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dayu/internal/trace"
)

var t0 = time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendListGetBlobRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	ftg, sdg := []byte(`{"g":"ftg-1"}`), []byte(`{"g":"sdg-1"}`)
	m, err := s.Append("snap-1", t0, 7, ftg, sdg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 0 || m.ID != "snap-1" || m.Tasks != 7 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.FTG != trace.HashBytes(ftg) || m.SDG != trace.HashBytes(sdg) {
		t.Fatal("manifest blob hashes are not the content hashes")
	}
	got, ok := s.Get("snap-1")
	if !ok || got != m {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	body, err := s.Blob(m.FTG)
	if err != nil || string(body) != string(ftg) {
		t.Fatalf("Blob(ftg) = %q, %v", body, err)
	}
	body, err = s.Blob(m.SDG)
	if err != nil || string(body) != string(sdg) {
		t.Fatalf("Blob(sdg) = %q, %v", body, err)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
}

func TestAppendDedupsByID(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	m1, err := s.Append("snap-1", t0, 1, []byte("a"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Append("snap-1", t0.Add(time.Hour), 99, []byte("x"), []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatalf("re-append changed the manifest: %+v vs %+v", m2, m1)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate append, want 1", s.Len())
	}
}

func TestListNewestFirst(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 3; i++ {
		if _, err := s.Append(fmt.Sprintf("snap-%d", i), t0.Add(time.Duration(i)*time.Minute), i, []byte{byte(i)}, []byte{byte(i + 100)}); err != nil {
			t.Fatal(err)
		}
	}
	list := s.List()
	if len(list) != 3 || list[0].ID != "snap-2" || list[2].ID != "snap-0" {
		t.Fatalf("List = %+v", list)
	}
}

func TestRetentionCompactionAndBlobGC(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Retain: 2})
	shared := []byte("shared-ftg") // same FTG across all snapshots
	for i := 0; i < 4; i++ {
		if _, err := s.Append(fmt.Sprintf("snap-%d", i), t0, i, shared, []byte(fmt.Sprintf("sdg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d with Retain=2, want 2", s.Len())
	}
	list := s.List()
	if list[0].ID != "snap-3" || list[1].ID != "snap-2" {
		t.Fatalf("survivors = %+v, want the newest two", list)
	}
	// The shared blob survives (still referenced); dropped snapshots'
	// unique SDG blobs are gone.
	if _, err := s.Blob(trace.HashBytes(shared)); err != nil {
		t.Fatalf("shared blob GCed while referenced: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Blob(trace.HashBytes([]byte(fmt.Sprintf("sdg-%d", i)))); !os.IsNotExist(err) {
			t.Errorf("dropped snapshot %d's blob still present (err=%v)", i, err)
		}
	}
	for i := 2; i < 4; i++ {
		if _, err := s.Blob(trace.HashBytes([]byte(fmt.Sprintf("sdg-%d", i)))); err != nil {
			t.Errorf("surviving snapshot %d's blob missing: %v", i, err)
		}
	}
}

func TestReopenRestoresStateAndSequence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Append("snap-0", t0, 1, []byte("f0"), []byte("s0")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("snap-1", t0, 2, []byte("f1"), []byte("s1")); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	m, ok := s2.Get("snap-1")
	if !ok || m.Seq != 1 || m.Tasks != 2 {
		t.Fatalf("reopened Get(snap-1) = %+v, %v", m, ok)
	}
	if body, err := s2.Blob(m.FTG); err != nil || string(body) != "f1" {
		t.Fatalf("reopened Blob = %q, %v", body, err)
	}
	// Sequence numbering continues past the recovered tail.
	m3, err := s2.Append("snap-2", t0, 3, []byte("f2"), []byte("s2"))
	if err != nil {
		t.Fatal(err)
	}
	if m3.Seq != 2 {
		t.Fatalf("post-reopen Seq = %d, want 2", m3.Seq)
	}
}

func TestOpenFailsOnBrokenManifest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Append("snap-0", t0, 1, []byte("f"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "manifests", fmt.Sprintf("%016x.json", 0))
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open over a broken manifest succeeded; a listing that skips snapshots is a lie")
	}
}

func TestBlobRejectsNonHexHashes(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "../../etc/passwd", "ABCDEF", "zz", "a/b"} {
		if _, err := s.Blob(bad); err == nil {
			t.Errorf("Blob(%q) accepted a non-hash", bad)
		}
	}
}
