// Package history is the persistent snapshot-history store behind
// `dayu serve -history`: every converged snapshot the server publishes
// is recorded as an append-only manifest plus content-addressed blobs
// of its rendered /v1/ftg and /v1/sdg bodies, so past analysis states
// survive restarts and can be replayed byte-for-byte without
// refolding a single trace.
//
// Layout under the store directory:
//
//	manifests/<seq, 16 hex digits>.json   one manifest per snapshot,
//	                                      ordered by append sequence
//	blobs/<content-hash>                  rendered response bodies,
//	                                      deduplicated across snapshots
//
// Manifests are keyed by the snapshot's content address (the serve
// snapshot ID): appending an ID the store already holds is a no-op, so
// a flapping directory cannot grow the log. Retention is by manifest
// count: compaction drops the oldest manifests past the limit and then
// garbage-collects blobs no surviving manifest references. Because a
// blob can be shared by many manifests (an FTG unchanged across
// snapshots hashes identically), compaction never touches a blob that
// any survivor still needs.
//
// All writes are atomic (same-directory temp file + rename), so a
// crash mid-append leaves either a fully present snapshot or none; a
// manifest is written only after both of its blobs are durable, so a
// listed snapshot can always be replayed.
package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dayu/internal/trace"
)

// Options tunes the store.
type Options struct {
	// Retain caps how many snapshot manifests survive compaction
	// (default 64; the most recent are kept).
	Retain int
}

func (o Options) withDefaults() Options {
	if o.Retain <= 0 {
		o.Retain = 64
	}
	return o
}

// Manifest describes one recorded snapshot.
type Manifest struct {
	// Seq is the append sequence number (monotone within the store).
	Seq uint64 `json:"seq"`
	// ID is the snapshot's content address (the X-Dayu-Snapshot value
	// the live server stamped on its responses).
	ID        string    `json:"id"`
	CreatedAt time.Time `json:"created_at"`
	Tasks     int       `json:"tasks"`
	// FTG and SDG are the content hashes of the stored response
	// bodies, resolvable via Blob.
	FTG string `json:"ftg"`
	SDG string `json:"sdg"`
}

// Store is the on-disk snapshot history. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	manifests []Manifest // ordered by Seq ascending
	ids       map[string]int
	nextSeq   uint64
}

// Open loads (creating if needed) the store under dir and indexes the
// surviving manifests. Unreadable or syntactically broken manifest
// files fail Open: the store's whole contract is replayability, so a
// listing that silently skipped a snapshot would be a lie.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts.withDefaults(), ids: map[string]int{}}
	for _, sub := range []string{s.manifestDir(), s.blobDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("history: %w", err)
		}
	}
	names, err := filepath.Glob(filepath.Join(s.manifestDir(), "*.json"))
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	sort.Strings(names) // 16-hex-digit names sort in sequence order
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("history: read %s: %w", filepath.Base(path), err)
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("history: decode %s: %w", filepath.Base(path), err)
		}
		s.ids[m.ID] = len(s.manifests)
		s.manifests = append(s.manifests, m)
		if m.Seq >= s.nextSeq {
			s.nextSeq = m.Seq + 1
		}
	}
	return s, nil
}

func (s *Store) manifestDir() string { return filepath.Join(s.dir, "manifests") }
func (s *Store) blobDir() string     { return filepath.Join(s.dir, "blobs") }

func (s *Store) manifestPath(seq uint64) string {
	return filepath.Join(s.manifestDir(), fmt.Sprintf("%016x.json", seq))
}

// Append records one snapshot: both blobs first, then the manifest,
// then compaction. Appending an ID the store already holds returns the
// existing manifest unchanged. The returned manifest carries the
// assigned sequence number and blob hashes.
func (s *Store) Append(id string, createdAt time.Time, tasks int, ftgBody, sdgBody []byte) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.ids[id]; ok {
		return s.manifests[i], nil
	}
	m := Manifest{
		Seq:       s.nextSeq,
		ID:        id,
		CreatedAt: createdAt,
		Tasks:     tasks,
		FTG:       trace.HashBytes(ftgBody),
		SDG:       trace.HashBytes(sdgBody),
	}
	if err := s.writeBlobLocked(m.FTG, ftgBody); err != nil {
		return Manifest{}, err
	}
	if err := s.writeBlobLocked(m.SDG, sdgBody); err != nil {
		return Manifest{}, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("history: encode manifest: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(m.Seq), data); err != nil {
		return Manifest{}, fmt.Errorf("history: write manifest: %w", err)
	}
	s.nextSeq++
	s.ids[m.ID] = len(s.manifests)
	s.manifests = append(s.manifests, m)
	if _, _, err := s.compactLocked(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// writeBlobLocked lands a content-addressed blob; an existing blob
// with that hash is already the right bytes.
func (s *Store) writeBlobLocked(hash string, body []byte) error {
	path := filepath.Join(s.blobDir(), hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := writeFileAtomic(path, body); err != nil {
		return fmt.Errorf("history: write blob: %w", err)
	}
	return nil
}

// List returns the recorded snapshots, newest first.
func (s *Store) List() []Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Manifest, len(s.manifests))
	for i, m := range s.manifests {
		out[len(out)-1-i] = m
	}
	return out
}

// Len reports how many snapshots the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.manifests)
}

// Get returns the manifest for a snapshot ID.
func (s *Store) Get(id string) (Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.ids[id]
	if !ok {
		return Manifest{}, false
	}
	return s.manifests[i], true
}

// Blob returns the stored body for a content hash. Hashes are
// validated as lowercase hex before touching the filesystem, so a
// request path can never escape the blob directory.
func (s *Store) Blob(hash string) ([]byte, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("history: invalid blob hash %q", hash)
	}
	return os.ReadFile(filepath.Join(s.blobDir(), hash))
}

// validHash accepts non-empty lowercase-hex strings only.
func validHash(hash string) bool {
	if hash == "" {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Compact applies the retention policy now and garbage-collects
// unreferenced blobs, returning how many manifests and blobs were
// removed. Append runs it automatically; exposing it lets an operator
// (or a test) force the sweep.
func (s *Store) Compact() (manifests, blobs int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() (removedManifests, removedBlobs int, err error) {
	for len(s.manifests) > s.opts.Retain {
		victim := s.manifests[0]
		if err := os.Remove(s.manifestPath(victim.Seq)); err != nil && !os.IsNotExist(err) {
			return removedManifests, removedBlobs, fmt.Errorf("history: compact: %w", err)
		}
		s.manifests = s.manifests[1:]
		delete(s.ids, victim.ID)
		removedManifests++
	}
	if removedManifests == 0 {
		return 0, 0, nil
	}
	// Reindex after the slice shifted.
	for i, m := range s.manifests {
		s.ids[m.ID] = i
	}
	referenced := make(map[string]bool, 2*len(s.manifests))
	for _, m := range s.manifests {
		referenced[m.FTG] = true
		referenced[m.SDG] = true
	}
	entries, err := os.ReadDir(s.blobDir())
	if err != nil {
		return removedManifests, removedBlobs, fmt.Errorf("history: compact: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || referenced[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(s.blobDir(), e.Name())); err != nil && !os.IsNotExist(err) {
			return removedManifests, removedBlobs, fmt.Errorf("history: compact: %w", err)
		}
		removedBlobs++
	}
	return removedManifests, removedBlobs, nil
}

// writeFileAtomic lands data at path via a same-directory temp file
// and rename, so concurrent readers and crashed writers never observe
// a partial file.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	tmp = nil
	return nil
}
