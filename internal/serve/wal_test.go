package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dayu/internal/trace"
)

// TestWALCloseImmediatelyAfterOpenInterval pins the open-then-close
// deadlock: with FsyncInterval, Close used to nil the stop channel the
// sync loop read from the struct — if the loop goroutine had not been
// scheduled yet (exactly what orphan-WAL replay does at startup), it
// selected on a nil channel forever and Close hung on syncDone.
func TestWALCloseImmediatelyAfterOpenInterval(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 50; i++ {
		w, _, err := OpenWAL(dir, WALOptions{Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- w.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Close deadlocked waiting for the sync loop")
		}
	}
}

func openTestWAL(t *testing.T, dir string, opts WALOptions) (*WAL, []PendingRecord) {
	t.Helper()
	w, pending, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, pending
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, pending := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	if len(pending) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(pending))
	}
	var payloads [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7)))
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
		payloads = append(payloads, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, pending := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	if len(pending) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(pending), len(payloads))
	}
	for i, rec := range pending {
		if rec.Seq != uint64(i) || !bytes.Equal(rec.Data, payloads[i]) {
			t.Fatalf("record %d: seq %d, payload match %v", i, rec.Seq, bytes.Equal(rec.Data, payloads[i]))
		}
	}
	// Sequence numbering continues where the previous incarnation left
	// off.
	seq, err := w2.Append([]byte("after-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(payloads)) {
		t.Fatalf("post-restart append seq = %d, want %d", seq, len(payloads))
	}
}

func TestWALCheckpointAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates into its own closed segment.
	w, _ := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever, SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Stats().Segments; got < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", got)
	}

	// Folding the first 4 records must compact their fully-folded
	// closed segments away and persist the checkpoint.
	for seq := uint64(0); seq < 4; seq++ {
		w.MarkFolded(seq)
	}
	stats := w.Stats()
	if stats.Folded != 4 || stats.Pending != 2 {
		t.Fatalf("after folding 4: folded=%d pending=%d", stats.Folded, stats.Pending)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) >= 6 {
		t.Fatalf("compaction left %d segments for 2 pending records", len(segs))
	}

	// Replay resumes from the checkpoint: only the unfolded tail comes
	// back.
	w2, pending := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever, SegmentBytes: 1})
	defer w2.Close()
	if len(pending) != 2 {
		t.Fatalf("replayed %d pending, want 2", len(pending))
	}
	if pending[0].Seq != 4 || pending[1].Seq != 5 {
		t.Fatalf("pending seqs = %d,%d, want 4,5", pending[0].Seq, pending[1].Seq)
	}
	if string(pending[0].Data) != "rec-4" || string(pending[1].Data) != "rec-5" {
		t.Fatalf("pending payloads = %q,%q", pending[0].Data, pending[1].Data)
	}
}

// TestWALMarkFoldedOutOfOrder pins the checkpoint's contiguous-prefix
// contract: fold jobs may complete out of sequence order (concurrent
// pushes race between append and enqueue, and a failed fold leaves its
// record pending), and the checkpoint must never advance past an
// earlier acknowledged record that is still unfolded.
func TestWALMarkFoldedOutOfOrder(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Records 2 and 1 fold before record 0: the checkpoint stays put.
	w.MarkFolded(2)
	w.MarkFolded(1)
	if stats := w.Stats(); stats.Folded != 0 || stats.Pending != 1 {
		t.Fatalf("after out-of-order folds: folded=%d pending=%d, want 0,1", stats.Folded, stats.Pending)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash now must replay record 0 — acknowledged, never folded.
	w2, pending := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	if len(pending) == 0 || pending[0].Seq != 0 || string(pending[0].Data) != "rec-0" {
		t.Fatalf("replay lost the unfolded record 0 (%d pending)", len(pending))
	}
	// Folding the gap record advances the checkpoint over the whole
	// now-contiguous prefix at once.
	w2.MarkFolded(1)
	w2.MarkFolded(2)
	w2.MarkFolded(0)
	if stats := w2.Stats(); stats.Folded != 3 || stats.Pending != 0 {
		t.Fatalf("after folding the gap: folded=%d pending=%d, want 3,0", stats.Folded, stats.Pending)
	}
	w2.Close()
}

// TestOpenWALFailsOnSegmentIOError pins the recovery deletion rule: a
// segment that fails replay with a genuine I/O fault (here, a path
// that cannot be opened as a file) must fail OpenWAL and survive on
// disk — deleting it could destroy acknowledged records over a
// transient error. Only crash-torn headers and record-free segments
// are removable.
func TestOpenWALFailsOnSegmentIOError(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	if _, err := w.Append([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	bogus := filepath.Join(dir, "wal-00000000000000ff.seg")
	if err := os.Mkdir(bogus, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALOptions{Fsync: FsyncNever}); err == nil {
		t.Fatal("OpenWAL succeeded over an unreadable segment")
	}
	if _, err := os.Stat(bogus); err != nil {
		t.Fatalf("unreadable segment was removed during failed recovery: %v", err)
	}
}

func TestWALIgnoresMangledCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	if _, err := w.Append([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint"), []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, pending := openTestWAL(t, dir, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	// A mangled checkpoint falls back to 0: everything replays (folding
	// is idempotent, so over-replay is safe; under-replay never is).
	if len(pending) != 1 || string(pending[0].Data) != "survivor" {
		t.Fatalf("pending = %d records", len(pending))
	}
}

// TestWALTornTailEveryOffset is the torn-tail property test: append a
// handful of records, then for every byte offset of the segment file,
// truncate a copy there, reopen, and assert exactly the records whose
// frames fit are recovered — the acknowledged prefix, nothing else,
// and never an error.
func TestWALTornTailEveryOffset(t *testing.T) {
	build := t.TempDir()
	w, _ := openTestWAL(t, build, WALOptions{Fsync: FsyncNever})
	payloads := [][]byte{
		[]byte("alpha"),
		[]byte(`{"task":"beta","files":[]}`),
		bytes.Repeat([]byte{0x42}, 61),
		[]byte("delta-final"),
	}
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(build, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want a single segment, got %d (%v)", len(segs), err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// Recompute the frame boundaries: bytes at which records 1..N end.
	var bounds []int
	var hdr bytes.Buffer
	hn, err := trace.WriteWALHeader(&hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := hn
	for _, p := range payloads {
		var fb bytes.Buffer
		n, err := trace.WriteWALRecord(&fb, p)
		if err != nil {
			t.Fatal(err)
		}
		off += n
		bounds = append(bounds, off)
	}
	if off != len(full) {
		t.Fatalf("recomputed segment length %d != on-disk %d", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		wantRecovered := 0
		for _, b := range bounds {
			if b <= cut {
				wantRecovered++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, pending, err := OpenWAL(dir, WALOptions{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut %d: OpenWAL: %v", cut, err)
		}
		if len(pending) != wantRecovered {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(pending), wantRecovered)
		}
		for i, rec := range pending {
			if !bytes.Equal(rec.Data, payloads[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// The log must remain appendable after any torn-tail recovery.
		if _, err := w.Append([]byte("probe")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		w.Close()
	}
}

// FuzzWALReplay feeds arbitrary bytes to the segment replayer:
// whatever is on disk, OpenWAL must not crash or error, must recover
// only CRC-clean whole records, and must leave the log appendable.
func FuzzWALReplay(f *testing.F) {
	var valid bytes.Buffer
	_, _ = trace.WriteWALHeader(&valid, 0)
	_, _ = trace.WriteWALRecord(&valid, []byte("seed-one"))
	_, _ = trace.WriteWALRecord(&valid, []byte("seed-two"))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // torn tail
	f.Add([]byte("\x89DWL\r\n"))                // bare magic
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, pending, err := OpenWAL(dir, WALOptions{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("OpenWAL on fuzzed segment: %v", err)
		}
		seq, err := w.Append([]byte("post-fuzz-probe"))
		if err != nil {
			t.Fatalf("append after fuzzed replay: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// The probe — and every recovered record — survives a second
		// replay losslessly.
		w2, pending2, err := OpenWAL(dir, WALOptions{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		if len(pending2) != len(pending)+1 {
			t.Fatalf("second replay: %d records, want %d", len(pending2), len(pending)+1)
		}
		for i, rec := range pending {
			if !bytes.Equal(pending2[i].Data, rec.Data) {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		last := pending2[len(pending2)-1]
		if last.Seq != seq || string(last.Data) != "post-fuzz-probe" {
			t.Fatalf("probe record: seq %d (want %d), data %q", last.Seq, seq, last.Data)
		}
	})
}
