package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"dayu/internal/obs"
	"time"

	"dayu/internal/serve/client"
	"dayu/internal/trace"
)

// livePairs maps each live endpoint to the batch endpoint it must
// converge to byte-for-byte once every task has folded its final.
var livePairs = map[string]string{
	"/v1/live/ftg":         "/v1/ftg",
	"/v1/live/sdg":         "/v1/sdg",
	"/v1/live/diagnostics": "/v1/diagnose",
}

// getHdr is get plus the response headers (the live endpoints carry
// snapshot identity and partial/complete counts there).
func getHdr(t *testing.T, srv *httptest.Server, path string) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
	}
	return body, resp.Header
}

// keepFrac truncates a record-slice length to a fraction, clamped.
func keepFrac(n int, frac float64) int {
	k := int(float64(n) * frac)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// checkpointTrace synthesizes the trace-so-far a mid-run checkpoint
// would carry: a prefix of the final's file table, plus only the
// object and mapped records that reference those files — the tracer
// grows all three tables from the same operations, so a checkpoint
// never holds mapped stats for a file it has not opened (Validate
// enforces exactly that join). Attempts/Failed are engine stamps that
// only exist on finals.
func checkpointTrace(tt *trace.TaskTrace, frac float64) *trace.TaskTrace {
	cp := *tt
	cp.Attempts = 0
	cp.Failed = false
	cp.Files = tt.Files[:keepFrac(len(tt.Files), frac)]
	kept := make(map[string]bool, len(cp.Files))
	for _, f := range cp.Files {
		kept[f.File] = true
	}
	cp.Objects = nil
	for _, o := range tt.Objects {
		if kept[o.File] {
			cp.Objects = append(cp.Objects, o)
		}
	}
	cp.Mapped = nil
	for _, ms := range tt.Mapped {
		if kept[ms.File] {
			cp.Mapped = append(cp.Mapped, ms)
		}
	}
	return &cp
}

// encodeCheckpoint renders one incremental dtb record.
func encodeCheckpoint(t *testing.T, tt *trace.TaskTrace, seq uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tt.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeDelta renders one delta checkpoint record.
func encodeDelta(t *testing.T, d *trace.TaskTrace, seq, baseSeq uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.EncodeBinaryOpts(&buf, trace.BinaryOptions{
		Incremental: true, CheckpointSeq: seq, Delta: true, DeltaBaseSeq: baseSeq,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sortedCheckpoint deep-copies a checkpoint's tables into the
// tracer's canonical sort orders — what real checkpoints look like,
// and what delta reassembly reproduces (trace.Diff requires it for an
// exact delta). The copy matters: checkpointTrace's slices alias the
// final's tables.
func sortedCheckpoint(cp *trace.TaskTrace) *trace.TaskTrace {
	out := *cp
	out.Objects = append([]trace.ObjectRecord(nil), cp.Objects...)
	out.Files = append([]trace.FileRecord(nil), cp.Files...)
	out.Mapped = append([]trace.MappedStat(nil), cp.Mapped...)
	sort.SliceStable(out.Objects, func(i, j int) bool {
		if out.Objects[i].File != out.Objects[j].File {
			return out.Objects[i].File < out.Objects[j].File
		}
		return out.Objects[i].Object < out.Objects[j].Object
	})
	sort.SliceStable(out.Files, func(i, j int) bool { return out.Files[i].File < out.Files[j].File })
	sort.SliceStable(out.Mapped, func(i, j int) bool {
		if out.Mapped[i].File != out.Mapped[j].File {
			return out.Mapped[i].File < out.Mapped[j].File
		}
		return out.Mapped[i].Object < out.Mapped[j].Object
	})
	return &out
}

// pushStreamMode streams the fixture with per-task checkpoint chains
// in the given framing mode — "delta" (cumulative first checkpoint,
// delta second), "mixed" (alternate tasks delta/cumulative), or
// "delta-gap" (a delta with a wrong base sequence that must be NACKed
// with 409/resync, then the cumulative resync push) — followed by the
// final's exact file bytes. Returns the task count.
func pushStreamMode(t *testing.T, env *pushEnv, fixture, mode string) int {
	t.Helper()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if trace.IsTraceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var seq uint64
	for i, name := range names {
		path := filepath.Join(fixture, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := trace.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		cp1 := sortedCheckpoint(checkpointTrace(tt, 0.34))
		cp2 := sortedCheckpoint(checkpointTrace(tt, 0.75))
		useDelta := mode != "mixed" || i%2 == 0

		seq++
		seq1 := seq
		if status, pr, _ := postIngest(t, env.srv, encodeCheckpoint(t, cp1, seq1)); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("%s: checkpoint 1 for %s = %d %q", mode, tt.Task, status, pr.Status)
		}
		seq++
		seq2 := seq
		if useDelta {
			d, ok := trace.Diff(cp1, cp2)
			if !ok {
				t.Fatalf("%s: no exact delta for %s (fixture checkpoints must admit deltas)", mode, tt.Task)
			}
			if mode == "delta-gap" {
				// Wrong base: the server never saw seq1+777, so it must
				// NACK before logging anything, reporting the sequence it
				// does have.
				status, pr, _ := postIngest(t, env.srv, encodeDelta(t, d, seq2, seq1+777))
				if status != http.StatusConflict || pr.Status != "resync" || pr.Seq != seq1 {
					t.Fatalf("%s: gapped delta for %s = %d %q seq=%d, want 409 resync seq=%d",
						mode, tt.Task, status, pr.Status, pr.Seq, seq1)
				}
				// Resync: the same checkpoint, cumulative, same sequence.
				if status, pr, _ := postIngest(t, env.srv, encodeCheckpoint(t, cp2, seq2)); status != http.StatusOK || pr.Status != "accepted" {
					t.Fatalf("%s: resync checkpoint for %s = %d %q", mode, tt.Task, status, pr.Status)
				}
			} else {
				if status, pr, _ := postIngest(t, env.srv, encodeDelta(t, d, seq2, seq1)); status != http.StatusOK || pr.Status != "accepted" {
					t.Fatalf("%s: delta checkpoint for %s = %d %q", mode, tt.Task, status, pr.Status)
				}
			}
		} else {
			if status, pr, _ := postIngest(t, env.srv, encodeCheckpoint(t, cp2, seq2)); status != http.StatusOK || pr.Status != "accepted" {
				t.Fatalf("%s: checkpoint 2 for %s = %d %q", mode, tt.Task, status, pr.Status)
			}
		}
		if status, _, _ := postIngest(t, env.srv, raw); status != http.StatusOK {
			t.Fatalf("%s: final %s = %d", mode, tt.Task, status)
		}
	}
	return len(names)
}

// streamDelivery is one record on the wire.
type streamDelivery struct {
	name string
	data []byte
}

// streamDeliveries turns a saved fixture into the record stream a
// live run would produce: per task, two cumulative checkpoints (with
// globally increasing sequence numbers, like the tracer's
// process-wide counter) followed by the final's exact file bytes.
func streamDeliveries(t *testing.T, fixture string) ([]streamDelivery, int) {
	t.Helper()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if trace.IsTraceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []streamDelivery
	var seq uint64
	for _, name := range names {
		path := filepath.Join(fixture, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := trace.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.34, 0.75} {
			seq++
			out = append(out, streamDelivery{
				name: fmt.Sprintf("%s@cp%d", tt.Task, seq),
				data: encodeCheckpoint(t, checkpointTrace(tt, frac), seq),
			})
		}
		out = append(out, streamDelivery{name: tt.Task + "@final", data: raw})
	}
	return out, len(names)
}

// pushManifest posts the fixture's manifest bytes.
func pushManifest(t *testing.T, srv *httptest.Server, fixture string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(fixture, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/manifest", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest push = %d", resp.StatusCode)
	}
}

// checkLiveConverged asserts every live endpoint answers with the
// exact bytes of its batch counterpart (computed by a fresh one-shot
// batch build over the folded directory) and reports zero partials.
func checkLiveConverged(t *testing.T, srv *httptest.Server, dir, phase string) map[string][]byte {
	t.Helper()
	want := batchExpect(t, dir)
	bodies := map[string][]byte{}
	for live, batch := range livePairs {
		body, hdr := getHdr(t, srv, live)
		if !bytes.Equal(body, want[batch]) {
			t.Errorf("%s: GET %s differs from batch %s (%d vs %d bytes)",
				phase, live, batch, len(body), len(want[batch]))
		}
		if got := hdr.Get("X-Dayu-Partial-Tasks"); got != "0" {
			t.Errorf("%s: GET %s partial tasks = %s, want 0", phase, live, got)
		}
		bodies[live] = body
	}
	// The batch endpoints agree with the one-shot build too, so live
	// and batch are pinned to the same bytes, not merely to each other.
	for _, batch := range []string{"/v1/ftg", "/v1/sdg", "/v1/diagnose"} {
		if got := get(t, srv, batch); !bytes.Equal(got, want[batch]) {
			t.Errorf("%s: GET %s differs from batch build", phase, batch)
		}
	}
	return bodies
}

// TestLiveStreamEquivalence pins the streaming acceptance gate: after
// a full streamed run (checkpoints then finals then manifest, all
// through /v1/ingest), the live endpoints answer byte-identically to
// the batch pipeline over the same traces — across three shuffled
// delivery orders, including finals overtaking their own checkpoints
// and checkpoints arriving after the final already folded.
func TestLiveStreamEquivalence(t *testing.T) {
	fixture := writeFixtureDir(t)
	var ref map[string][]byte
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("order-%d", seed), func(t *testing.T) {
			env := newPushEnv(t, func(cfg *Config) { cfg.IngestQueue = 256 })
			deliveries, tasks := streamDeliveries(t, fixture)
			rand.New(rand.NewSource(seed)).Shuffle(len(deliveries), func(i, j int) {
				deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
			})
			for _, d := range deliveries {
				if status, pr, _ := postIngest(t, env.srv, d.data); status != http.StatusOK || pr.Status != "accepted" {
					t.Fatalf("push %s = %d %q", d.name, status, pr.Status)
				}
			}
			pushManifest(t, env.srv, fixture)
			waitTasks(t, env.s, tasks)
			waitWALDrained(t, env.s)

			bodies := checkLiveConverged(t, env.srv, env.dir, fmt.Sprintf("order-%d", seed))
			if ref == nil {
				ref = bodies
			} else {
				for live, body := range bodies {
					if !bytes.Equal(body, ref[live]) {
						t.Errorf("order-%d: GET %s differs across delivery orders", seed, live)
					}
				}
			}
			// No partial survives convergence, in memory or on disk.
			leftovers, err := os.ReadDir(env.s.partialsDir())
			if err != nil {
				t.Fatal(err)
			}
			if len(leftovers) != 0 {
				t.Errorf("order-%d: %d partial files survive convergence", seed, len(leftovers))
			}
		})
	}
	// The framing matrix: the same workflow streamed with delta
	// checkpoints, mixed framing, and a forced gap-resync must converge
	// to the same bytes as the cumulative orders above.
	for _, mode := range []string{"delta", "mixed", "delta-gap"} {
		mode := mode
		t.Run("mode-"+mode, func(t *testing.T) {
			env := newPushEnv(t, func(cfg *Config) {
				cfg.IngestQueue = 256
				cfg.Registry = obs.NewRegistry()
			})
			tasks := pushStreamMode(t, env, fixture, mode)
			pushManifest(t, env.srv, fixture)
			waitTasks(t, env.s, tasks)
			waitWALDrained(t, env.s)
			bodies := checkLiveConverged(t, env.srv, env.dir, "mode-"+mode)
			for live, body := range bodies {
				if ref != nil && !bytes.Equal(body, ref[live]) {
					t.Errorf("mode-%s: GET %s differs from cumulative delivery", mode, live)
				}
			}
			if mode != "delta-gap" && env.s.deltaFolds.Value() == 0 {
				t.Errorf("mode-%s never folded a delta record", mode)
			}
			if mode == "delta-gap" && env.s.deltaResyncs.Value() == 0 {
				t.Error("delta-gap mode never exercised the resync NACK")
			}
		})
	}
	if !t.Failed() {
		t.Log("STREAM-EQUIVALENCE: live snapshot byte-identical to batch across 3 delivery orders and 3 delta framing modes")
	}
}

// TestDeltaStreamMidFlightView pins the delta path before any final
// folds: a cumulative base plus a delta must produce the exact live
// view — body bytes and snapshot id — that pushing the second
// checkpoint cumulatively produces, because the server persists the
// reassembled cumulative form re-encoded deterministically.
func TestDeltaStreamMidFlightView(t *testing.T) {
	tt := liveTask("live_delta")
	cp1 := sortedCheckpoint(checkpointTrace(tt, 0.5))
	cp2 := sortedCheckpoint(checkpointTrace(tt, 1.0))
	d, ok := trace.Diff(cp1, cp2)
	if !ok {
		t.Fatal("no exact delta between the two checkpoints")
	}

	envDelta := newPushEnv(t, nil)
	if status, pr, _ := postIngest(t, envDelta.srv, encodeCheckpoint(t, cp1, 1)); status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("base checkpoint = %d %q", status, pr.Status)
	}
	if status, pr, _ := postIngest(t, envDelta.srv, encodeDelta(t, d, 2, 1)); status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("delta checkpoint = %d %q", status, pr.Status)
	}
	waitWALDrained(t, envDelta.s)
	waitLiveCounts(t, envDelta.srv, 1, 0)

	envCum := newPushEnv(t, nil)
	if status, _, _ := postIngest(t, envCum.srv, encodeCheckpoint(t, cp2, 2)); status != http.StatusOK {
		t.Fatalf("cumulative checkpoint = %d", status)
	}
	waitWALDrained(t, envCum.s)
	waitLiveCounts(t, envCum.srv, 1, 0)

	for _, path := range []string{"/v1/live/ftg", "/v1/live/sdg", "/v1/live/diagnostics"} {
		deltaBody, deltaHdr := getHdr(t, envDelta.srv, path)
		cumBody, cumHdr := getHdr(t, envCum.srv, path)
		if !bytes.Equal(deltaBody, cumBody) {
			t.Errorf("GET %s: delta-fed view differs from cumulative-fed view", path)
		}
		if dh, ch := deltaHdr.Get("X-Dayu-Snapshot"), cumHdr.Get("X-Dayu-Snapshot"); dh != ch {
			t.Errorf("GET %s: snapshot id %s != %s (reassembled partial must hash identically)", path, dh, ch)
		}
	}

	// And a restart rebuilds the same view from the persisted partial.
	envDelta.srv.Close()
	envDelta.s.Close()
	s2 := mustServer(t, Config{
		Dir: envDelta.dir, WALDir: envDelta.walDir, WAL: WALOptions{Fsync: FsyncNever},
		PlanOptions: testPlanOpts,
	})
	defer s2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	restartBody, _ := getHdr(t, srv2, "/v1/live/ftg")
	cumBody, _ := getHdr(t, envCum.srv, "/v1/live/ftg")
	if !bytes.Equal(restartBody, cumBody) {
		t.Error("restarted delta-fed server diverged from the cumulative-fed view")
	}
}

// TestLiveStreamRestartEquivalence pins the crash half of the gate: a
// server killed mid-stream with acknowledged records logged but none
// folded must, after restart, replay the WAL and converge to the same
// bytes as the batch pipeline once the remaining records arrive.
func TestLiveStreamRestartEquivalence(t *testing.T) {
	fixture := writeFixtureDir(t)
	deliveries, tasks := streamDeliveries(t, fixture)
	rand.New(rand.NewSource(7)).Shuffle(len(deliveries), func(i, j int) {
		deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
	})
	dir, walDir := t.TempDir(), t.TempDir()

	// First incarnation: folds stall forever (as if the process froze
	// and was killed), so every phase-1 record is acknowledged and
	// durably logged but nothing reaches the trace directory.
	blocked := make(chan struct{}) // never closed
	s1 := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever},
		IngestQueue: 256, PlanOptions: testPlanOpts,
		foldHook: func(foldJob) { <-blocked },
	})
	srv1 := httptest.NewServer(s1)
	cut := 2 * len(deliveries) / 3
	for _, d := range deliveries[:cut] {
		if status, pr, _ := postIngest(t, srv1, d.data); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("phase-1 push %s = %d %q", d.name, status, pr.Status)
		}
	}
	// kill -9: stop answering and abandon the server without Close, so
	// nothing is drained or checkpointed.
	srv1.Close()

	// Second incarnation replays the WAL during construction, then the
	// stream resumes where it left off.
	s2 := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever},
		IngestQueue: 256, PlanOptions: testPlanOpts,
	})
	defer s2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	for _, d := range deliveries[cut:] {
		if status, _, _ := postIngest(t, srv2, d.data); status != http.StatusOK {
			t.Fatalf("phase-2 push %s = %d", d.name, status)
		}
	}
	pushManifest(t, srv2, fixture)
	waitTasks(t, s2, tasks)
	waitWALDrained(t, s2)
	checkLiveConverged(t, srv2, dir, "restart")
}

// liveTask builds a small two-file trace for the partial-view tests.
func liveTask(task string) *trace.TaskTrace {
	return &trace.TaskTrace{
		Task: task, StartNS: 100, EndNS: 2000,
		Files: []trace.FileRecord{
			{
				Task: task, File: task + "_a.h5",
				OpenNS: 150, CloseNS: 900,
				Ops: 3, Writes: 3, BytesWritten: 4096,
				MetaOps: 1, DataOps: 2, MetaBytes: 64, DataBytes: 4032,
			},
			{
				Task: task, File: task + "_b.h5",
				OpenNS: 950, CloseNS: 1900,
				Ops: 2, Reads: 2, BytesRead: 2048,
				MetaOps: 1, DataOps: 1, MetaBytes: 32, DataBytes: 2016,
			},
		},
	}
}

// waitLiveCounts polls the live FTG endpoint until its headers report
// the expected partial/complete task counts.
func waitLiveCounts(t *testing.T, srv *httptest.Server, partial, complete int) http.Header {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, hdr := getHdr(t, srv, "/v1/live/ftg")
		if hdr.Get("X-Dayu-Partial-Tasks") == strconv.Itoa(partial) &&
			hdr.Get("X-Dayu-Complete-Tasks") == strconv.Itoa(complete) {
			return hdr
		}
		if time.Now().After(deadline) {
			t.Fatalf("live counts never reached partial=%d complete=%d (at %s/%s)",
				partial, complete, hdr.Get("X-Dayu-Partial-Tasks"), hdr.Get("X-Dayu-Complete-Tasks"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLivePartialLifecycle walks one stream through the in-flight
// states the equivalence test races past: checkpoints surface as
// partial tasks, stale and post-final checkpoints are dropped, window
// parameters validate, and finals retract their partials.
func TestLivePartialLifecycle(t *testing.T) {
	env := newPushEnv(t, nil)
	tasks := []*trace.TaskTrace{liveTask("live_a"), liveTask("live_b"), liveTask("live_c")}

	// Checkpoints only: every task is partial, none complete.
	for i, tt := range tasks {
		cp := encodeCheckpoint(t, checkpointTrace(tt, 0.5), uint64(10+i))
		if status, pr, _ := postIngest(t, env.srv, cp); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("checkpoint %s = %d %q", tt.Task, status, pr.Status)
		}
	}
	waitLiveCounts(t, env.srv, 3, 0)
	body, hdr := getHdr(t, env.srv, "/v1/live/ftg")
	if !bytes.Contains(body, []byte("live_a_a.h5")) {
		t.Errorf("live FTG misses the checkpointed file: %s", body)
	}
	snapBefore := hdr.Get("X-Dayu-Snapshot")

	// Health reports the in-flight tasks.
	resp, err := http.Get(env.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.WAL == nil || health.WAL.PartialTasks != 3 {
		t.Errorf("healthz misses partial tasks: %+v", health.WAL)
	}

	// A stale checkpoint (lower seq, different content) folds to a
	// drop: same snapshot, same bytes.
	stale := encodeCheckpoint(t, checkpointTrace(tasks[0], 1.0), 3)
	if status, _, _ := postIngest(t, env.srv, stale); status != http.StatusOK {
		t.Fatalf("stale checkpoint = %d", status)
	}
	waitWALDrained(t, env.s)
	body2, hdr2 := getHdr(t, env.srv, "/v1/live/ftg")
	if hdr2.Get("X-Dayu-Snapshot") != snapBefore {
		t.Errorf("stale checkpoint moved the snapshot: %s -> %s", snapBefore, hdr2.Get("X-Dayu-Snapshot"))
	}
	if !bytes.Equal(body2, body) {
		t.Errorf("stale checkpoint changed the live FTG")
	}

	// Window parameter: a positive window aggregates (and answers 200);
	// non-positive or malformed windows are rejected before any work.
	if wb, _ := getHdr(t, env.srv, "/v1/live/ftg?window=1h"); len(wb) == 0 {
		t.Error("windowed live FTG answered empty")
	}
	for _, bad := range []string{"0s", "-5s", "garbage"} {
		resp, err := http.Get(env.srv.URL + "/v1/live/ftg?window=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("window=%q = %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(env.srv.URL + "/v1/live/diagnostics?horizon=-1s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("horizon=-1s = %d, want 400", resp.StatusCode)
	}

	// Finals retract the partials and the live view snaps to batch.
	for _, tt := range tasks {
		var buf bytes.Buffer
		if err := tt.EncodeFormat(&buf, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if status, _, _ := postIngest(t, env.srv, buf.Bytes()); status != http.StatusOK {
			t.Fatalf("final %s = %d", tt.Task, status)
		}
	}
	waitLiveCounts(t, env.srv, 0, 3)
	liveBody, _ := getHdr(t, env.srv, "/v1/live/ftg")
	batchBody := get(t, env.srv, "/v1/ftg")
	if !bytes.Equal(liveBody, batchBody) {
		t.Errorf("converged live FTG differs from batch FTG")
	}

	// A late checkpoint for an already-final task is acknowledged
	// (durability first) but folds to a drop, not a resurrection.
	late := encodeCheckpoint(t, checkpointTrace(tasks[0], 0.5), 999)
	if status, _, _ := postIngest(t, env.srv, late); status != http.StatusOK {
		t.Fatalf("late checkpoint = %d", status)
	}
	waitWALDrained(t, env.s)
	waitLiveCounts(t, env.srv, 0, 3)
}

// TestLiveStreamHammer races concurrent checkpoint/final pushes (via
// the real retrying client) against live readers; run under -race in
// CI. Afterwards the stream must still converge to batch bytes.
func TestLiveStreamHammer(t *testing.T) {
	fixture := writeFixtureDir(t)
	finals, err := trace.LoadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	env := newPushEnv(t, func(cfg *Config) { cfg.IngestQueue = 256 })
	c, err := client.New(env.srv.URL, client.Options{
		MaxAttempts: 12, InitialBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/v1/live/ftg", "/v1/live/sdg", "/v1/live/diagnostics", "/healthz"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range paths {
					resp, err := http.Get(env.srv.URL + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && p != "/healthz" {
						t.Errorf("GET %s = %d", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	var seq atomic.Uint64
	var writers sync.WaitGroup
	const shards = 4
	per := (len(finals) + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(finals) {
			hi = len(finals)
		}
		writers.Add(1)
		go func(chunk []*trace.TaskTrace) {
			defer writers.Done()
			for _, tt := range chunk {
				for _, frac := range []float64{0.3, 0.6, 0.9} {
					if _, err := c.PushCheckpoint(ctx, checkpointTrace(tt, frac), seq.Add(1)); err != nil {
						t.Errorf("checkpoint %s: %v", tt.Task, err)
						return
					}
				}
				if _, err := c.PushTrace(ctx, tt, trace.FormatBinary); err != nil {
					t.Errorf("final %s: %v", tt.Task, err)
					return
				}
			}
		}(finals[lo:hi])
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	pushManifest(t, env.srv, fixture)
	waitTasks(t, env.s, len(finals))
	waitWALDrained(t, env.s)
	checkLiveConverged(t, env.srv, env.dir, "hammer")
}

// TestLiveWindowedRenderCache pins the serve-level behaviour of the
// cross-snapshot aggregation cache: windowed live responses stay
// byte-identical to what a fresh server (empty cache) computes from the
// same stream, and successive snapshots actually exercise the cache.
func TestLiveWindowedRenderCache(t *testing.T) {
	env := newPushEnv(t, nil)
	a, b := liveTask("win_a"), liveTask("win_b")

	cpA := encodeCheckpoint(t, checkpointTrace(a, 0.5), 1)
	if status, _, _ := postIngest(t, env.srv, cpA); status != http.StatusOK {
		t.Fatalf("checkpoint a = %d", status)
	}
	waitLiveCounts(t, env.srv, 1, 0)
	if wb, _ := getHdr(t, env.srv, "/v1/live/ftg?window=1h"); len(wb) == 0 {
		t.Fatal("windowed live FTG answered empty")
	}

	cpB := encodeCheckpoint(t, checkpointTrace(b, 0.5), 2)
	if status, _, _ := postIngest(t, env.srv, cpB); status != http.StatusOK {
		t.Fatalf("checkpoint b = %d", status)
	}
	waitLiveCounts(t, env.srv, 2, 0)
	warm, _ := getHdr(t, env.srv, "/v1/live/ftg?window=1h")

	if s := env.s.timeAgg.Stats(); s.Hits+s.Misses < 2 {
		t.Errorf("windowed renders bypassed the aggregation cache: %+v", s)
	}

	// A fresh server fed the same two checkpoints computes the windowed
	// view with no cache history; the warmed server must match it
	// byte for byte.
	cold := newPushEnv(t, nil)
	for i, cp := range [][]byte{cpA, cpB} {
		if status, _, _ := postIngest(t, cold.srv, cp); status != http.StatusOK {
			t.Fatalf("cold checkpoint %d = %d", i, status)
		}
	}
	waitLiveCounts(t, cold.srv, 2, 0)
	coldBody, _ := getHdr(t, cold.srv, "/v1/live/ftg?window=1h")
	if !bytes.Equal(warm, coldBody) {
		t.Errorf("warmed windowed render diverged from cold render:\n%s\nvs\n%s", warm, coldBody)
	}
}
