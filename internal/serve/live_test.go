package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dayu/internal/serve/client"
	"dayu/internal/trace"
)

// livePairs maps each live endpoint to the batch endpoint it must
// converge to byte-for-byte once every task has folded its final.
var livePairs = map[string]string{
	"/v1/live/ftg":         "/v1/ftg",
	"/v1/live/sdg":         "/v1/sdg",
	"/v1/live/diagnostics": "/v1/diagnose",
}

// getHdr is get plus the response headers (the live endpoints carry
// snapshot identity and partial/complete counts there).
func getHdr(t *testing.T, srv *httptest.Server, path string) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
	}
	return body, resp.Header
}

// keepFrac truncates a record-slice length to a fraction, clamped.
func keepFrac(n int, frac float64) int {
	k := int(float64(n) * frac)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// checkpointTrace synthesizes the trace-so-far a mid-run checkpoint
// would carry: a prefix of the final's file table, plus only the
// object and mapped records that reference those files — the tracer
// grows all three tables from the same operations, so a checkpoint
// never holds mapped stats for a file it has not opened (Validate
// enforces exactly that join). Attempts/Failed are engine stamps that
// only exist on finals.
func checkpointTrace(tt *trace.TaskTrace, frac float64) *trace.TaskTrace {
	cp := *tt
	cp.Attempts = 0
	cp.Failed = false
	cp.Files = tt.Files[:keepFrac(len(tt.Files), frac)]
	kept := make(map[string]bool, len(cp.Files))
	for _, f := range cp.Files {
		kept[f.File] = true
	}
	cp.Objects = nil
	for _, o := range tt.Objects {
		if kept[o.File] {
			cp.Objects = append(cp.Objects, o)
		}
	}
	cp.Mapped = nil
	for _, ms := range tt.Mapped {
		if kept[ms.File] {
			cp.Mapped = append(cp.Mapped, ms)
		}
	}
	return &cp
}

// encodeCheckpoint renders one incremental dtb record.
func encodeCheckpoint(t *testing.T, tt *trace.TaskTrace, seq uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tt.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamDelivery is one record on the wire.
type streamDelivery struct {
	name string
	data []byte
}

// streamDeliveries turns a saved fixture into the record stream a
// live run would produce: per task, two cumulative checkpoints (with
// globally increasing sequence numbers, like the tracer's
// process-wide counter) followed by the final's exact file bytes.
func streamDeliveries(t *testing.T, fixture string) ([]streamDelivery, int) {
	t.Helper()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if trace.IsTraceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []streamDelivery
	var seq uint64
	for _, name := range names {
		path := filepath.Join(fixture, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := trace.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.34, 0.75} {
			seq++
			out = append(out, streamDelivery{
				name: fmt.Sprintf("%s@cp%d", tt.Task, seq),
				data: encodeCheckpoint(t, checkpointTrace(tt, frac), seq),
			})
		}
		out = append(out, streamDelivery{name: tt.Task + "@final", data: raw})
	}
	return out, len(names)
}

// pushManifest posts the fixture's manifest bytes.
func pushManifest(t *testing.T, srv *httptest.Server, fixture string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(fixture, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest/manifest", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest push = %d", resp.StatusCode)
	}
}

// checkLiveConverged asserts every live endpoint answers with the
// exact bytes of its batch counterpart (computed by a fresh one-shot
// batch build over the folded directory) and reports zero partials.
func checkLiveConverged(t *testing.T, srv *httptest.Server, dir, phase string) map[string][]byte {
	t.Helper()
	want := batchExpect(t, dir)
	bodies := map[string][]byte{}
	for live, batch := range livePairs {
		body, hdr := getHdr(t, srv, live)
		if !bytes.Equal(body, want[batch]) {
			t.Errorf("%s: GET %s differs from batch %s (%d vs %d bytes)",
				phase, live, batch, len(body), len(want[batch]))
		}
		if got := hdr.Get("X-Dayu-Partial-Tasks"); got != "0" {
			t.Errorf("%s: GET %s partial tasks = %s, want 0", phase, live, got)
		}
		bodies[live] = body
	}
	// The batch endpoints agree with the one-shot build too, so live
	// and batch are pinned to the same bytes, not merely to each other.
	for _, batch := range []string{"/v1/ftg", "/v1/sdg", "/v1/diagnose"} {
		if got := get(t, srv, batch); !bytes.Equal(got, want[batch]) {
			t.Errorf("%s: GET %s differs from batch build", phase, batch)
		}
	}
	return bodies
}

// TestLiveStreamEquivalence pins the streaming acceptance gate: after
// a full streamed run (checkpoints then finals then manifest, all
// through /v1/ingest), the live endpoints answer byte-identically to
// the batch pipeline over the same traces — across three shuffled
// delivery orders, including finals overtaking their own checkpoints
// and checkpoints arriving after the final already folded.
func TestLiveStreamEquivalence(t *testing.T) {
	fixture := writeFixtureDir(t)
	var ref map[string][]byte
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("order-%d", seed), func(t *testing.T) {
			env := newPushEnv(t, func(cfg *Config) { cfg.IngestQueue = 256 })
			deliveries, tasks := streamDeliveries(t, fixture)
			rand.New(rand.NewSource(seed)).Shuffle(len(deliveries), func(i, j int) {
				deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
			})
			for _, d := range deliveries {
				if status, pr, _ := postIngest(t, env.srv, d.data); status != http.StatusOK || pr.Status != "accepted" {
					t.Fatalf("push %s = %d %q", d.name, status, pr.Status)
				}
			}
			pushManifest(t, env.srv, fixture)
			waitTasks(t, env.s, tasks)
			waitWALDrained(t, env.s)

			bodies := checkLiveConverged(t, env.srv, env.dir, fmt.Sprintf("order-%d", seed))
			if ref == nil {
				ref = bodies
			} else {
				for live, body := range bodies {
					if !bytes.Equal(body, ref[live]) {
						t.Errorf("order-%d: GET %s differs across delivery orders", seed, live)
					}
				}
			}
			// No partial survives convergence, in memory or on disk.
			leftovers, err := os.ReadDir(env.s.partialsDir())
			if err != nil {
				t.Fatal(err)
			}
			if len(leftovers) != 0 {
				t.Errorf("order-%d: %d partial files survive convergence", seed, len(leftovers))
			}
		})
	}
	if !t.Failed() {
		t.Log("STREAM-EQUIVALENCE: live snapshot byte-identical to batch across 3 delivery orders")
	}
}

// TestLiveStreamRestartEquivalence pins the crash half of the gate: a
// server killed mid-stream with acknowledged records logged but none
// folded must, after restart, replay the WAL and converge to the same
// bytes as the batch pipeline once the remaining records arrive.
func TestLiveStreamRestartEquivalence(t *testing.T) {
	fixture := writeFixtureDir(t)
	deliveries, tasks := streamDeliveries(t, fixture)
	rand.New(rand.NewSource(7)).Shuffle(len(deliveries), func(i, j int) {
		deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
	})
	dir, walDir := t.TempDir(), t.TempDir()

	// First incarnation: folds stall forever (as if the process froze
	// and was killed), so every phase-1 record is acknowledged and
	// durably logged but nothing reaches the trace directory.
	blocked := make(chan struct{}) // never closed
	s1 := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever},
		IngestQueue: 256, PlanOptions: testPlanOpts,
		foldHook: func(foldJob) { <-blocked },
	})
	srv1 := httptest.NewServer(s1)
	cut := 2 * len(deliveries) / 3
	for _, d := range deliveries[:cut] {
		if status, pr, _ := postIngest(t, srv1, d.data); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("phase-1 push %s = %d %q", d.name, status, pr.Status)
		}
	}
	// kill -9: stop answering and abandon the server without Close, so
	// nothing is drained or checkpointed.
	srv1.Close()

	// Second incarnation replays the WAL during construction, then the
	// stream resumes where it left off.
	s2 := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever},
		IngestQueue: 256, PlanOptions: testPlanOpts,
	})
	defer s2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	for _, d := range deliveries[cut:] {
		if status, _, _ := postIngest(t, srv2, d.data); status != http.StatusOK {
			t.Fatalf("phase-2 push %s = %d", d.name, status)
		}
	}
	pushManifest(t, srv2, fixture)
	waitTasks(t, s2, tasks)
	waitWALDrained(t, s2)
	checkLiveConverged(t, srv2, dir, "restart")
}

// liveTask builds a small two-file trace for the partial-view tests.
func liveTask(task string) *trace.TaskTrace {
	return &trace.TaskTrace{
		Task: task, StartNS: 100, EndNS: 2000,
		Files: []trace.FileRecord{
			{
				Task: task, File: task + "_a.h5",
				OpenNS: 150, CloseNS: 900,
				Ops: 3, Writes: 3, BytesWritten: 4096,
				MetaOps: 1, DataOps: 2, MetaBytes: 64, DataBytes: 4032,
			},
			{
				Task: task, File: task + "_b.h5",
				OpenNS: 950, CloseNS: 1900,
				Ops: 2, Reads: 2, BytesRead: 2048,
				MetaOps: 1, DataOps: 1, MetaBytes: 32, DataBytes: 2016,
			},
		},
	}
}

// waitLiveCounts polls the live FTG endpoint until its headers report
// the expected partial/complete task counts.
func waitLiveCounts(t *testing.T, srv *httptest.Server, partial, complete int) http.Header {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, hdr := getHdr(t, srv, "/v1/live/ftg")
		if hdr.Get("X-Dayu-Partial-Tasks") == strconv.Itoa(partial) &&
			hdr.Get("X-Dayu-Complete-Tasks") == strconv.Itoa(complete) {
			return hdr
		}
		if time.Now().After(deadline) {
			t.Fatalf("live counts never reached partial=%d complete=%d (at %s/%s)",
				partial, complete, hdr.Get("X-Dayu-Partial-Tasks"), hdr.Get("X-Dayu-Complete-Tasks"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLivePartialLifecycle walks one stream through the in-flight
// states the equivalence test races past: checkpoints surface as
// partial tasks, stale and post-final checkpoints are dropped, window
// parameters validate, and finals retract their partials.
func TestLivePartialLifecycle(t *testing.T) {
	env := newPushEnv(t, nil)
	tasks := []*trace.TaskTrace{liveTask("live_a"), liveTask("live_b"), liveTask("live_c")}

	// Checkpoints only: every task is partial, none complete.
	for i, tt := range tasks {
		cp := encodeCheckpoint(t, checkpointTrace(tt, 0.5), uint64(10+i))
		if status, pr, _ := postIngest(t, env.srv, cp); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("checkpoint %s = %d %q", tt.Task, status, pr.Status)
		}
	}
	waitLiveCounts(t, env.srv, 3, 0)
	body, hdr := getHdr(t, env.srv, "/v1/live/ftg")
	if !bytes.Contains(body, []byte("live_a_a.h5")) {
		t.Errorf("live FTG misses the checkpointed file: %s", body)
	}
	snapBefore := hdr.Get("X-Dayu-Snapshot")

	// Health reports the in-flight tasks.
	resp, err := http.Get(env.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.WAL == nil || health.WAL.PartialTasks != 3 {
		t.Errorf("healthz misses partial tasks: %+v", health.WAL)
	}

	// A stale checkpoint (lower seq, different content) folds to a
	// drop: same snapshot, same bytes.
	stale := encodeCheckpoint(t, checkpointTrace(tasks[0], 1.0), 3)
	if status, _, _ := postIngest(t, env.srv, stale); status != http.StatusOK {
		t.Fatalf("stale checkpoint = %d", status)
	}
	waitWALDrained(t, env.s)
	body2, hdr2 := getHdr(t, env.srv, "/v1/live/ftg")
	if hdr2.Get("X-Dayu-Snapshot") != snapBefore {
		t.Errorf("stale checkpoint moved the snapshot: %s -> %s", snapBefore, hdr2.Get("X-Dayu-Snapshot"))
	}
	if !bytes.Equal(body2, body) {
		t.Errorf("stale checkpoint changed the live FTG")
	}

	// Window parameter: a positive window aggregates (and answers 200);
	// non-positive or malformed windows are rejected before any work.
	if wb, _ := getHdr(t, env.srv, "/v1/live/ftg?window=1h"); len(wb) == 0 {
		t.Error("windowed live FTG answered empty")
	}
	for _, bad := range []string{"0s", "-5s", "garbage"} {
		resp, err := http.Get(env.srv.URL + "/v1/live/ftg?window=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("window=%q = %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(env.srv.URL + "/v1/live/diagnostics?horizon=-1s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("horizon=-1s = %d, want 400", resp.StatusCode)
	}

	// Finals retract the partials and the live view snaps to batch.
	for _, tt := range tasks {
		var buf bytes.Buffer
		if err := tt.EncodeFormat(&buf, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if status, _, _ := postIngest(t, env.srv, buf.Bytes()); status != http.StatusOK {
			t.Fatalf("final %s = %d", tt.Task, status)
		}
	}
	waitLiveCounts(t, env.srv, 0, 3)
	liveBody, _ := getHdr(t, env.srv, "/v1/live/ftg")
	batchBody := get(t, env.srv, "/v1/ftg")
	if !bytes.Equal(liveBody, batchBody) {
		t.Errorf("converged live FTG differs from batch FTG")
	}

	// A late checkpoint for an already-final task is acknowledged
	// (durability first) but folds to a drop, not a resurrection.
	late := encodeCheckpoint(t, checkpointTrace(tasks[0], 0.5), 999)
	if status, _, _ := postIngest(t, env.srv, late); status != http.StatusOK {
		t.Fatalf("late checkpoint = %d", status)
	}
	waitWALDrained(t, env.s)
	waitLiveCounts(t, env.srv, 0, 3)
}

// TestLiveStreamHammer races concurrent checkpoint/final pushes (via
// the real retrying client) against live readers; run under -race in
// CI. Afterwards the stream must still converge to batch bytes.
func TestLiveStreamHammer(t *testing.T) {
	fixture := writeFixtureDir(t)
	finals, err := trace.LoadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	env := newPushEnv(t, func(cfg *Config) { cfg.IngestQueue = 256 })
	c, err := client.New(env.srv.URL, client.Options{
		MaxAttempts: 12, InitialBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/v1/live/ftg", "/v1/live/sdg", "/v1/live/diagnostics", "/healthz"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range paths {
					resp, err := http.Get(env.srv.URL + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && p != "/healthz" {
						t.Errorf("GET %s = %d", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	var seq atomic.Uint64
	var writers sync.WaitGroup
	const shards = 4
	per := (len(finals) + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(finals) {
			hi = len(finals)
		}
		writers.Add(1)
		go func(chunk []*trace.TaskTrace) {
			defer writers.Done()
			for _, tt := range chunk {
				for _, frac := range []float64{0.3, 0.6, 0.9} {
					if _, err := c.PushCheckpoint(ctx, checkpointTrace(tt, frac), seq.Add(1)); err != nil {
						t.Errorf("checkpoint %s: %v", tt.Task, err)
						return
					}
				}
				if _, err := c.PushTrace(ctx, tt, trace.FormatBinary); err != nil {
					t.Errorf("final %s: %v", tt.Task, err)
					return
				}
			}
		}(finals[lo:hi])
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	pushManifest(t, env.srv, fixture)
	waitTasks(t, env.s, len(finals))
	waitWALDrained(t, env.s)
	checkLiveConverged(t, env.srv, env.dir, "hammer")
}
