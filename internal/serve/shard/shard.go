// Package shard partitions the serve package's ingest state across N
// workers so trace parsing and per-task contribution computation scale
// past one goroutine, Chimbuko-style (PAPERS.md), without giving up
// the repo's byte-identical-to-batch contract.
//
// The partition function is FNV-1a(key) % N — the same routing idiom
// the analyzer's shard-then-stitch merge uses — over two key spaces:
// directory trace files route by file name, pushed traces and
// checkpoints route by task name. Each worker owns its slice of the
// parsed-trace cache and the per-task FTG/SDG contribution caches;
// nothing is shared between workers, so a scan or contribution pass
// fans out with no locking.
//
// Determinism is the coordinator's job: every contribution a worker
// returns is tagged with its task's position in the global task order
// (analyzer.OrderTasks), and Stitch reassembles the global slice from
// per-shard sets regardless of the order they arrive in, tolerating
// duplicate delivery from a shard. The stitched slice feeds
// analyzer.Build{FTG,SDG}FromContributions — the exact merge the batch
// CLI uses — so the output bytes cannot depend on the shard count or
// on scheduling.
package shard

import (
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/trace"
)

// MaxShards bounds the worker count: past a few dozen workers the
// stitch dominates, and the CLI flag should not be able to spawn an
// absurd number of goroutines per scan.
const MaxShards = 64

// Router assigns cache keys to shards by FNV-1a hash. The assignment
// depends only on the key bytes and the shard count, never on
// scheduling, so a restart with the same count routes identically.
type Router struct {
	n int
}

// NewRouter builds a router over n shards, clamped to [1, MaxShards].
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	return Router{n: n}
}

// Shards reports the clamped shard count.
func (r Router) Shards() int { return r.n }

// Route maps a key to its owning shard: FNV-1a(key) % N.
func (r Router) Route(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(r.n))
}

// Entry is one parsed trace file in a worker's cache: the stat
// short-circuit fields (size, mtime), the authoritative content hash,
// and the decoded trace.
type Entry struct {
	Size    int64
	ModTime time.Time
	Hash    string
	Trace   *trace.TaskTrace
}

// Worker owns one shard's slice of the parsed-trace and contribution
// caches. Worker methods are NOT safe for concurrent use on the same
// worker; the coordinator (and the serve scan loop) run at most one
// goroutine per worker at a time, which is the whole point of the
// partition.
type Worker struct {
	idx   int
	files map[string]Entry
	ftg   map[string]analyzer.Contribution
	sdg   map[string]analyzer.Contribution

	// Keys touched since the last Prune: the working set the caches are
	// trimmed to, so superseded revisions never accumulate.
	usedFTG map[string]bool
	usedSDG map[string]bool
}

func newWorker(idx int) *Worker {
	return &Worker{
		idx:     idx,
		files:   map[string]Entry{},
		ftg:     map[string]analyzer.Contribution{},
		sdg:     map[string]analyzer.Contribution{},
		usedFTG: map[string]bool{},
		usedSDG: map[string]bool{},
	}
}

// Index reports the worker's shard index.
func (w *Worker) Index() int { return w.idx }

// File returns the cached entry for path, if present.
func (w *Worker) File(path string) (Entry, bool) {
	e, ok := w.files[path]
	return e, ok
}

// PutFile installs (or replaces) the cached entry for path.
func (w *Worker) PutFile(path string, e Entry) {
	w.files[path] = e
}

// TouchFile refreshes the stat short-circuit fields of an existing
// entry whose content did not change (a touched-but-equal file).
func (w *Worker) TouchFile(path string, size int64, mod time.Time) {
	if e, ok := w.files[path]; ok {
		e.Size, e.ModTime = size, mod
		w.files[path] = e
	}
}

// SweepFiles drops every cached path not present in seen and reports
// whether anything was dropped (a deletion observed by the scan).
func (w *Worker) SweepFiles(seen map[string]bool) bool {
	changed := false
	for path := range w.files {
		if !seen[path] {
			delete(w.files, path)
			changed = true
		}
	}
	return changed
}

// FileCount reports how many parsed traces the worker holds.
func (w *Worker) FileCount() int { return len(w.files) }

// EachFile visits every cached (path, entry) pair in map order.
func (w *Worker) EachFile(fn func(path string, e Entry)) {
	for path, e := range w.files {
		fn(path, e)
	}
}

// Metrics carries the contribution cache hit/miss hooks; either func
// may be nil.
type Metrics struct {
	Hit  func()
	Miss func()
}

func (m Metrics) hit() {
	if m.Hit != nil {
		m.Hit()
	}
}

func (m Metrics) miss() {
	if m.Miss != nil {
		m.Miss()
	}
}

// Contribute computes (or serves from cache) this worker's share of a
// contribution pass and returns it as a Set tagged with global task
// positions. FTG contributions are keyed by the trace content hash;
// SDG contributions additionally by the fingerprint of the object
// descriptions the task references, exactly as the serve cache always
// keyed them. Every key touched is recorded for the next Prune.
func (w *Worker) Contribute(req Request, m Metrics) Set {
	set := Set{
		Shard: w.idx,
		FTG:   make([]Tagged, 0, len(req.Tasks)),
		SDG:   make([]Tagged, 0, len(req.Tasks)),
	}
	for _, task := range req.Tasks {
		w.usedFTG[task.Hash] = true
		c, ok := w.ftg[task.Hash]
		if ok {
			m.hit()
		} else {
			m.miss()
			c = analyzer.FTGContribution(task.Trace)
			w.ftg[task.Hash] = c
		}
		set.FTG = append(set.FTG, Tagged{Pos: task.Pos, C: c})

		sdgKey := task.Hash + ":" + req.Descs.Fingerprint(task.Trace)
		w.usedSDG[sdgKey] = true
		c, ok = w.sdg[sdgKey]
		if ok {
			m.hit()
		} else {
			m.miss()
			c = analyzer.SDGContribution(task.Trace, req.Descs, req.Opts)
			w.sdg[sdgKey] = c
		}
		set.SDG = append(set.SDG, Tagged{Pos: task.Pos, C: c})
	}
	return set
}

// Prune trims both contribution caches to the keys used since the last
// Prune and resets the used sets. The serve snapshot builder calls it
// once per published snapshot, so earlier revisions of changed traces
// and superseded checkpoint contributions are unreachable immediately.
func (w *Worker) Prune() {
	for hash := range w.ftg {
		if !w.usedFTG[hash] {
			delete(w.ftg, hash)
		}
	}
	for key := range w.sdg {
		if !w.usedSDG[key] {
			delete(w.sdg, key)
		}
	}
	w.usedFTG = map[string]bool{}
	w.usedSDG = map[string]bool{}
}
