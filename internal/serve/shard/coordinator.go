package shard

import (
	"fmt"
	"path/filepath"
	"sort"

	"dayu/internal/analyzer"
	"dayu/internal/trace"
)

// Task is one unit of a contribution pass: a trace, its content hash
// (the contribution cache key) and its position in the global task
// order produced by analyzer.OrderTasks.
type Task struct {
	Pos   int
	Trace *trace.TaskTrace
	Hash  string
}

// Request is one contribution pass over an ordered trace set. Descs
// must come from analyzer.BuildObjectDescs over the FULL ordered set —
// SDG contributions are functions of the global description index, not
// of one shard's slice — which is why the coordinator computes it once
// and fans it out.
type Request struct {
	Tasks []Task
	Descs analyzer.ObjectDescs
	Opts  analyzer.Options
}

// Tagged is one contribution carrying its global task position.
type Tagged struct {
	Pos int
	C   analyzer.Contribution
}

// Set is one worker's batch of contributions for one pass. Sets arrive
// at the coordinator in completion order, which is scheduling-dependent;
// Stitch makes the assembled output independent of it.
type Set struct {
	Shard int
	FTG   []Tagged
	SDG   []Tagged
}

// Coordinator owns the workers and the routing function. Gather runs
// one goroutine per worker; the caller (the serve single-writer ingest
// path) must not run two passes concurrently.
type Coordinator struct {
	router  Router
	workers []*Worker
}

// NewCoordinator builds a coordinator over n workers (clamped like
// NewRouter).
func NewCoordinator(n int) *Coordinator {
	r := NewRouter(n)
	workers := make([]*Worker, r.Shards())
	for i := range workers {
		workers[i] = newWorker(i)
	}
	return &Coordinator{router: r, workers: workers}
}

// Shards reports the worker count.
func (c *Coordinator) Shards() int { return len(c.workers) }

// Route maps a key to its owning shard index.
func (c *Coordinator) Route(key string) int { return c.router.Route(key) }

// Worker returns the worker for shard idx.
func (c *Coordinator) Worker(idx int) *Worker { return c.workers[idx] }

// Paths returns every cached trace file path across all workers,
// sorted (the global scan order the snapshot builder needs).
func (c *Coordinator) Paths() []string {
	n := 0
	for _, w := range c.workers {
		n += w.FileCount()
	}
	paths := make([]string, 0, n)
	for _, w := range c.workers {
		w.EachFile(func(path string, _ Entry) { paths = append(paths, path) })
	}
	sort.Strings(paths)
	return paths
}

// RouteFile maps a trace file path to its owning shard: directory
// entries route by base name (stable across directories, independent
// of the watched path), pushed records route by task name via Route.
func (c *Coordinator) RouteFile(path string) int {
	return c.router.Route(filepath.Base(path))
}

// File looks up a cached entry by path, routing by base name exactly
// as the scan partition does.
func (c *Coordinator) File(path string) (Entry, bool) {
	return c.workers[c.RouteFile(path)].File(path)
}

// Gather fans the request out to every worker that owns at least one
// of its tasks and returns the resulting sets in completion order —
// deliberately nondeterministic, so tests and CI exercise Stitch's
// order independence on every run.
func (c *Coordinator) Gather(req Request, m Metrics) []Set {
	byShard := make([][]Task, len(c.workers))
	for _, task := range req.Tasks {
		k := c.router.Route(task.Trace.Task)
		byShard[k] = append(byShard[k], task)
	}
	ch := make(chan Set, len(c.workers))
	launched := 0
	for k, tasks := range byShard {
		if len(tasks) == 0 {
			continue
		}
		launched++
		go func(w *Worker, tasks []Task) {
			ch <- w.Contribute(Request{Tasks: tasks, Descs: req.Descs, Opts: req.Opts}, m)
		}(c.workers[k], tasks)
	}
	sets := make([]Set, 0, launched)
	for i := 0; i < launched; i++ {
		sets = append(sets, <-ch)
	}
	return sets
}

// Prune trims every worker's contribution caches to the keys used
// since the last Prune.
func (c *Coordinator) Prune() {
	for _, w := range c.workers {
		w.Prune()
	}
}

// Stitch reassembles per-shard contribution sets into the two global
// contribution slices, in task order, independent of the order the
// sets arrived in. Duplicate delivery from the same shard is tolerated
// (a redelivered set restates the same positions and is skipped); two
// different shards claiming the same position, an out-of-range
// position, or a position no set covers are errors — they mean the
// partition itself is broken, and building a graph from a hole would
// silently diverge from batch output.
func Stitch(n int, sets []Set) (ftg, sdg []analyzer.Contribution, err error) {
	ftg = make([]analyzer.Contribution, n)
	sdg = make([]analyzer.Contribution, n)
	ftgOwner := make([]int, n)
	sdgOwner := make([]int, n)
	for i := range ftgOwner {
		ftgOwner[i] = -1
		sdgOwner[i] = -1
	}
	place := func(kind string, owner []int, out []analyzer.Contribution, shard int, tagged []Tagged) error {
		for _, tg := range tagged {
			if tg.Pos < 0 || tg.Pos >= n {
				return fmt.Errorf("shard: stitch: %s position %d out of range [0,%d) from shard %d", kind, tg.Pos, n, shard)
			}
			if owner[tg.Pos] == shard {
				continue // duplicate delivery of the same set
			}
			if owner[tg.Pos] != -1 {
				return fmt.Errorf("shard: stitch: %s position %d claimed by shards %d and %d", kind, tg.Pos, owner[tg.Pos], shard)
			}
			owner[tg.Pos] = shard
			out[tg.Pos] = tg.C
		}
		return nil
	}
	for _, set := range sets {
		if err := place("ftg", ftgOwner, ftg, set.Shard, set.FTG); err != nil {
			return nil, nil, err
		}
		if err := place("sdg", sdgOwner, sdg, set.Shard, set.SDG); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < n; i++ {
		if ftgOwner[i] == -1 || sdgOwner[i] == -1 {
			missing := 0
			for j := 0; j < n; j++ {
				if ftgOwner[j] == -1 || sdgOwner[j] == -1 {
					missing++
				}
			}
			return nil, nil, fmt.Errorf("shard: stitch: %d of %d positions uncovered (first gap at %d)", missing, n, i)
		}
	}
	return ftg, sdg, nil
}
