package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/trace"
	"dayu/internal/workloads"
)

func TestRouterClampAndDeterminism(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {4, 4}, {MaxShards, MaxShards}, {MaxShards + 1, MaxShards},
	} {
		if got := NewRouter(tc.in).Shards(); got != tc.want {
			t.Errorf("NewRouter(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	r := NewRouter(8)
	for _, key := range []string{"", "task_a", "stage2/task_07", "z.trace.json"} {
		k := r.Route(key)
		if k < 0 || k >= 8 {
			t.Fatalf("Route(%q) = %d, out of range", key, k)
		}
		for i := 0; i < 3; i++ {
			if r.Route(key) != k {
				t.Fatalf("Route(%q) not deterministic", key)
			}
		}
	}
	// FNV-1a reference value: the routing function is part of the WAL
	// namespace contract (a restart must route identically), so pin it.
	if got := NewRouter(MaxShards).Route("task_a"); got != int(fnv1a("task_a")%MaxShards) {
		t.Fatalf("Route diverged from FNV-1a reference: %d", got)
	}
}

// fnv1a is an independent reference implementation.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func TestRouterSpreadsKeys(t *testing.T) {
	r := NewRouter(8)
	counts := make([]int, 8)
	for i := 0; i < 512; i++ {
		counts[r.Route(fmt.Sprintf("stage%d/task_%04d", i%7, i))]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys out of 512", k)
		}
	}
}

// fixtureTasks builds an ordered, hashed task slice plus the global
// descs the SDG contributions need, from a synthetic workflow.
func fixtureTasks(t *testing.T) ([]Task, analyzer.ObjectDescs, []*trace.TaskTrace) {
	t.Helper()
	traces, m := workloads.GenerateSyntheticTraces(workloads.SyntheticTraceConfig{
		Tasks: 16, Stages: 4, FilesPerStage: 3, DatasetsPerTask: 2,
	})
	ordered := analyzer.OrderTasks(traces, m)
	descs := analyzer.BuildObjectDescs(ordered)
	tasks := make([]Task, len(ordered))
	for i, tt := range ordered {
		tasks[i] = Task{Pos: i, Trace: tt, Hash: fmt.Sprintf("hash-%s", tt.Task)}
	}
	return tasks, descs, ordered
}

// expectContribs computes the reference contribution slices directly.
func expectContribs(ordered []*trace.TaskTrace, descs analyzer.ObjectDescs) (ftg, sdg []analyzer.Contribution) {
	ftg = make([]analyzer.Contribution, len(ordered))
	sdg = make([]analyzer.Contribution, len(ordered))
	for i, tt := range ordered {
		ftg[i] = analyzer.FTGContribution(tt)
		sdg[i] = analyzer.SDGContribution(tt, descs, analyzer.Options{})
	}
	return ftg, sdg
}

func TestGatherStitchMatchesDirectComputation(t *testing.T) {
	tasks, descs, ordered := fixtureTasks(t)
	wantFTG, wantSDG := expectContribs(ordered, descs)
	for _, n := range []int{1, 2, 4, 8} {
		c := NewCoordinator(n)
		sets := c.Gather(Request{Tasks: tasks, Descs: descs}, Metrics{})
		ftg, sdg, err := Stitch(len(tasks), sets)
		if err != nil {
			t.Fatalf("n=%d: stitch: %v", n, err)
		}
		if !reflect.DeepEqual(ftg, wantFTG) {
			t.Errorf("n=%d: stitched FTG contributions diverge from direct computation", n)
		}
		if !reflect.DeepEqual(sdg, wantSDG) {
			t.Errorf("n=%d: stitched SDG contributions diverge from direct computation", n)
		}
	}
}

func TestWorkerContributeCachesAndPrunes(t *testing.T) {
	tasks, descs, _ := fixtureTasks(t)
	c := NewCoordinator(1)
	hits, misses := 0, 0
	m := Metrics{Hit: func() { hits++ }, Miss: func() { misses++ }}

	c.Gather(Request{Tasks: tasks, Descs: descs}, m)
	if hits != 0 || misses != 2*len(tasks) {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/%d", hits, misses, 2*len(tasks))
	}
	hits, misses = 0, 0
	c.Gather(Request{Tasks: tasks, Descs: descs}, m)
	if hits != 2*len(tasks) || misses != 0 {
		t.Fatalf("warm pass: hits=%d misses=%d, want %d/0", hits, misses, 2*len(tasks))
	}

	// Prune keeps only keys used since the last Prune: after pruning
	// against a subset, the dropped tasks miss again.
	c.Prune() // resets used sets
	sub := tasks[:4]
	for i := range sub {
		sub[i].Pos = i
	}
	c.Gather(Request{Tasks: sub, Descs: descs}, Metrics{})
	c.Prune() // trims to the 4-task working set
	hits, misses = 0, 0
	c.Gather(Request{Tasks: sub, Descs: descs}, m)
	if misses != 0 {
		t.Errorf("pruned working set missed %d times, want 0", misses)
	}
	hits, misses = 0, 0
	full := make([]Task, len(tasks))
	copy(full, tasks)
	for i := range full {
		full[i].Pos = i
	}
	c.Gather(Request{Tasks: full, Descs: descs}, m)
	if wantMiss := 2 * (len(tasks) - 4); misses != wantMiss {
		t.Errorf("post-prune full pass missed %d, want %d (pruned tasks recompute)", misses, wantMiss)
	}
}

// TestStitchShuffledDelivery pins order independence: any permutation
// of the per-shard sets stitches to the same global slices.
func TestStitchShuffledDelivery(t *testing.T) {
	tasks, descs, ordered := fixtureTasks(t)
	wantFTG, wantSDG := expectContribs(ordered, descs)
	c := NewCoordinator(8)
	sets := c.Gather(Request{Tasks: tasks, Descs: descs}, Metrics{})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < 10; round++ {
		rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
		ftg, sdg, err := Stitch(len(tasks), sets)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(ftg, wantFTG) || !reflect.DeepEqual(sdg, wantSDG) {
			t.Fatalf("round %d: shuffled delivery changed the stitched output", round)
		}
	}
}

// TestStitchDuplicateDelivery pins idempotence: a shard redelivering
// its whole set (an at-least-once channel) does not corrupt the
// stitch, while two different shards claiming one position fails it.
func TestStitchDuplicateDelivery(t *testing.T) {
	tasks, descs, ordered := fixtureTasks(t)
	wantFTG, _ := expectContribs(ordered, descs)
	c := NewCoordinator(4)
	sets := c.Gather(Request{Tasks: tasks, Descs: descs}, Metrics{})

	dup := append(append([]Set{}, sets...), sets[0], sets[len(sets)-1])
	ftg, _, err := Stitch(len(tasks), dup)
	if err != nil {
		t.Fatalf("duplicate same-shard delivery rejected: %v", err)
	}
	if !reflect.DeepEqual(ftg, wantFTG) {
		t.Fatal("duplicate delivery changed the stitched output")
	}

	// Cross-shard conflict: shard A's set re-labeled as shard B.
	stolen := sets[0]
	stolen.Shard = (stolen.Shard + 1) % 4
	if _, _, err := Stitch(len(tasks), append(sets, stolen)); err == nil {
		t.Fatal("cross-shard position conflict not detected")
	} else if !strings.Contains(err.Error(), "claimed by shards") {
		t.Fatalf("conflict error %q does not name the shards", err)
	}
}

// TestStitchLaggingShard pins the gap check: stitching before a
// lagging shard's set arrives is an error naming the hole, and
// retrying once the set lands (the restart-mid-stitch path: the
// coordinator re-gathers and stitches from scratch) succeeds.
func TestStitchLaggingShard(t *testing.T) {
	tasks, descs, ordered := fixtureTasks(t)
	wantFTG, _ := expectContribs(ordered, descs)
	c := NewCoordinator(4)
	sets := c.Gather(Request{Tasks: tasks, Descs: descs}, Metrics{})
	if len(sets) < 2 {
		t.Fatalf("fixture landed on %d shards, need >= 2", len(sets))
	}

	if _, _, err := Stitch(len(tasks), sets[:len(sets)-1]); err == nil {
		t.Fatal("stitch with a lagging shard's set missing did not fail")
	} else if !strings.Contains(err.Error(), "uncovered") {
		t.Fatalf("gap error %q does not report uncovered positions", err)
	}

	// The laggard arrives; the retried stitch is whole.
	ftg, _, err := Stitch(len(tasks), sets)
	if err != nil {
		t.Fatalf("stitch after laggard arrived: %v", err)
	}
	if !reflect.DeepEqual(ftg, wantFTG) {
		t.Fatal("post-laggard stitch diverges")
	}

	// A coordinator restart mid-stitch re-gathers from its (rebuilt)
	// workers; the fresh sets stitch to the same output.
	c2 := NewCoordinator(4)
	sets2 := c2.Gather(Request{Tasks: tasks, Descs: descs}, Metrics{})
	ftg2, _, err := Stitch(len(tasks), sets2)
	if err != nil {
		t.Fatalf("re-gather after restart: %v", err)
	}
	if !reflect.DeepEqual(ftg2, wantFTG) {
		t.Fatal("restart-mid-stitch re-gather diverges")
	}
}

func TestStitchRejectsOutOfRange(t *testing.T) {
	good := Set{Shard: 0, FTG: []Tagged{{Pos: 0}}, SDG: []Tagged{{Pos: 0}}}
	bad := Set{Shard: 1, FTG: []Tagged{{Pos: 5}}, SDG: []Tagged{{Pos: 5}}}
	if _, _, err := Stitch(1, []Set{good, bad}); err == nil {
		t.Fatal("out-of-range position not detected")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("unexpected error %q", err)
	}
}

func TestCoordinatorFileCache(t *testing.T) {
	c := NewCoordinator(4)
	paths := []string{"/a/t1.trace.json", "/a/t2.trace.json", "/b/t3.trace.dtb"}
	for i, p := range paths {
		w := c.Worker(c.RouteFile(p))
		w.PutFile(p, Entry{Size: int64(i + 1), Hash: fmt.Sprintf("h%d", i)})
	}
	got := c.Paths()
	if len(got) != len(paths) {
		t.Fatalf("Paths() = %v, want %d entries", got, len(paths))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Paths() not sorted: %v", got)
		}
	}
	// Routing is by base name: the same file name in another directory
	// routes to the same shard.
	if c.RouteFile("/x/y/t1.trace.json") != c.RouteFile("/a/t1.trace.json") {
		t.Error("RouteFile depends on the directory, want base-name routing")
	}
	e, ok := c.File("/a/t2.trace.json")
	if !ok || e.Hash != "h1" {
		t.Fatalf("File lookup = %+v, %v", e, ok)
	}
	w := c.Worker(c.RouteFile("/a/t2.trace.json"))
	w.TouchFile("/a/t2.trace.json", 99, time.Unix(1, 0))
	if e, _ := c.File("/a/t2.trace.json"); e.Size != 99 || e.Hash != "h1" {
		t.Fatalf("TouchFile: %+v", e)
	}
	if !w.SweepFiles(map[string]bool{}) {
		t.Fatal("SweepFiles dropped nothing")
	}
	if _, ok := c.File("/a/t2.trace.json"); ok {
		t.Fatal("swept file still cached")
	}
}
