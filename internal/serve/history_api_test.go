package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"dayu/internal/trace"
)

// historyEnv is a server with the snapshot-history store enabled.
func historyEnv(t *testing.T, retain, shards int) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{
		Dir: dir, PlanOptions: testPlanOpts,
		HistoryDir: t.TempDir(), HistoryRetain: retain, Shards: shards,
	})
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv, dir
}

func TestHistoryDisabledWithout(t *testing.T) {
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{Dir: dir, PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	for _, path := range []string{"/v1/history", "/v1/history/abc/ftg"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s = %d without -history, want 501", path, resp.StatusCode)
		}
	}
}

// TestHistoryRecordsAndReplaysSnapshots pins the replay contract: the
// listed snapshot's recorded bodies are byte-identical to what
// /v1/{ftg,sdg} served while it was current — even after the
// directory moves on.
func TestHistoryRecordsAndReplaysSnapshots(t *testing.T) {
	_, srv, dir := historyEnv(t, 0, 1)

	ftgThen := get(t, srv, "/v1/ftg")
	sdgThen := get(t, srv, "/v1/sdg")
	var list HistoryList
	getJSON(t, srv, "/v1/history", &list)
	if len(list.Snapshots) != 1 {
		t.Fatalf("history holds %d snapshots, want 1", len(list.Snapshots))
	}
	first := list.Snapshots[0]
	if first.Tasks != 24 {
		t.Errorf("recorded snapshot has %d tasks, want 24", first.Tasks)
	}

	// Advance the directory: a second snapshot lands; the first still
	// replays its original bytes.
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(paths) == 0 {
		t.Fatal("no trace files")
	}
	tt, err := trace.Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	tt.Files[0].BytesRead += 1024
	if _, err := tt.Save(dir); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 1)
	ftgNow := get(t, srv, "/v1/ftg")
	if bytes.Equal(ftgNow, ftgThen) {
		t.Fatal("fixture mutation did not change the FTG; test is vacuous")
	}

	getJSON(t, srv, "/v1/history", &list)
	if len(list.Snapshots) != 2 {
		t.Fatalf("history holds %d snapshots after mutation, want 2", len(list.Snapshots))
	}
	if list.Snapshots[0].ID == first.ID {
		t.Fatal("newest-first listing does not lead with the new snapshot")
	}

	replayFTG := get(t, srv, "/v1/history/"+first.ID+"/ftg")
	if !bytes.Equal(replayFTG, ftgThen) {
		t.Error("replayed FTG diverges from the bytes served while current")
	}
	replaySDG := get(t, srv, "/v1/history/"+first.ID+"/sdg")
	if !bytes.Equal(replaySDG, sdgThen) {
		t.Error("replayed SDG diverges from the bytes served while current")
	}
	// The bare-id path returns the manifest.
	manifest := get(t, srv, "/v1/history/"+first.ID)
	if !bytes.Contains(manifest, []byte(first.ID)) {
		t.Errorf("manifest body does not carry the snapshot ID: %s", manifest)
	}

	// Unknown ID and unknown graph name.
	resp, err := http.Get(srv.URL + "/v1/history/deadbeef/ftg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown snapshot = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/history/" + first.ID + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown graph = %d, want 400", resp.StatusCode)
	}
}

// TestHistoryShardedMatchesLive pins that a sharded server records the
// same history bytes it serves live (the shard count must not leak
// into recorded snapshots either).
func TestHistoryShardedMatchesLive(t *testing.T) {
	_, srv, _ := historyEnv(t, 0, 4)
	ftg := get(t, srv, "/v1/ftg")
	var list HistoryList
	getJSON(t, srv, "/v1/history", &list)
	if len(list.Snapshots) != 1 {
		t.Fatalf("history holds %d snapshots, want 1", len(list.Snapshots))
	}
	replay := get(t, srv, "/v1/history/"+list.Snapshots[0].ID+"/ftg")
	if !bytes.Equal(replay, ftg) {
		t.Error("sharded history replay diverges from live bytes")
	}
}

// TestHistoryRetentionOverRestarts pins compaction and persistence:
// the store keeps the newest Retain snapshots across mutations, and a
// restarted server lists what the previous process recorded.
func TestHistoryRetentionOverRestarts(t *testing.T) {
	dir := writeFixtureDir(t)
	histDir := t.TempDir()
	cfg := Config{Dir: dir, PlanOptions: testPlanOpts, HistoryDir: histDir, HistoryRetain: 3}
	s := mustServer(t, cfg)
	srv := httptest.NewServer(s)

	paths, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(paths) == 0 {
		t.Fatal("no trace files")
	}
	for gen := 1; gen <= 5; gen++ {
		tt, err := trace.Load(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		tt.Files[0].BytesRead += int64(gen * 100)
		if _, err := tt.Save(dir); err != nil {
			t.Fatal(err)
		}
		bumpMtimes(t, dir, gen)
		get(t, srv, "/v1/ftg")
	}
	var list HistoryList
	getJSON(t, srv, "/v1/history", &list)
	if len(list.Snapshots) != 3 {
		t.Fatalf("history holds %d snapshots with retain=3, want 3", len(list.Snapshots))
	}
	newestID := list.Snapshots[0].ID
	srv.Close()
	s.Close()

	s2 := mustServer(t, cfg)
	srv2 := httptest.NewServer(s2)
	defer func() { srv2.Close(); s2.Close() }()
	getJSON(t, srv2, "/v1/history", &list)
	if len(list.Snapshots) != 3 {
		t.Fatalf("restarted history holds %d snapshots, want 3", len(list.Snapshots))
	}
	found := false
	for _, m := range list.Snapshots {
		if m.ID == newestID {
			found = true
		}
	}
	if !found {
		t.Fatal("restart lost the newest recorded snapshot")
	}
	if body := get(t, srv2, "/v1/history/"+newestID+"/sdg"); len(body) == 0 {
		t.Fatal("restarted replay returned an empty body")
	}
}

// TestHistorySkipsPartialSnapshots pins that only converged states are
// recorded: a snapshot carrying live streaming partials never enters
// the store.
func TestHistorySkipsPartialSnapshots(t *testing.T) {
	histDir := t.TempDir()
	env := newPushEnv(t, func(cfg *Config) {
		cfg.HistoryDir = histDir
		cfg.HistoryRetain = 8
	})
	// Stream a checkpoint (incremental record) without its final: the
	// live view gains a partial task, and no new history entry may
	// appear for that state.
	cp := &trace.TaskTrace{
		Task: "hist/streaming_task", StartNS: 100, EndNS: 900,
		Files: []trace.FileRecord{{
			Task: "hist/streaming_task", File: "streaming_out.h5",
			OpenNS: 150, CloseNS: 800,
			Ops: 1, Writes: 1, BytesWritten: 1024,
			MetaOps: 1, MetaBytes: 64, DataBytes: 960,
		}},
	}
	status, pr, _ := postIngest(t, env.srv, encodeCheckpoint(t, cp, 1))
	if status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("checkpoint push = %d %+v", status, pr)
	}
	waitWALDrained(t, env.s)
	snap, err := env.s.Ingest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.partialTasks != 1 {
		t.Fatalf("partialTasks = %d, want 1", snap.partialTasks)
	}
	var list HistoryList
	getJSON(t, env.srv, "/v1/history", &list)
	for _, m := range list.Snapshots {
		if m.ID == snap.id {
			t.Fatal("a partial-bearing snapshot was recorded to history")
		}
	}
	// The final lands; the converged snapshot is recorded.
	status, pr, _ = postIngest(t, env.srv, makeTraceBytes(t, "hist/streaming_task", trace.FormatJSON))
	if status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("final push = %d %+v", status, pr)
	}
	waitTasks(t, env.s, 1)
	waitWALDrained(t, env.s)
	snap, err = env.s.Ingest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.partialTasks != 0 {
		t.Fatalf("partialTasks = %d after final, want 0", snap.partialTasks)
	}
	getJSON(t, env.srv, "/v1/history", &list)
	found := false
	for _, m := range list.Snapshots {
		if m.ID == snap.id {
			found = true
		}
	}
	if !found {
		t.Fatal("converged snapshot missing from history")
	}
}
