package serve

// Live streaming analysis: /v1/ingest also accepts incremental
// checkpoint records (dtb/v2 with the incremental flag bit), each a
// cumulative snapshot of one task's trace-so-far. The server keeps at
// most one checkpoint per task — the highest sequence number wins, so
// delivery order does not matter — persisted under WALDir/partials/
// and overlaid on the batch snapshot for the /v1/live/* endpoints.
//
// Fold/retract semantics keep the live view convergent with batch
// analysis by construction:
//
//   - A checkpoint for a task whose final trace already sits in the
//     watched directory is dropped: finals always supersede partials.
//   - A checkpoint older than the retained one (seq <=) is dropped.
//   - A final record folding into the directory retracts the task's
//     partial (entry and file).
//
// Once every task's final has folded, zero partials remain and the
// live graphs alias the batch graphs — /v1/live/ftg is then served
// from the same rendered bytes as /v1/ftg, which is how the
// stream-equals-batch equivalence gate holds at end of stream.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/trace"
)

// partialEntry is the retained checkpoint for one task.
type partialEntry struct {
	seq   uint64
	hash  string // content hash of the checkpoint record bytes
	trace *trace.TaskTrace
}

// partialsDir is where retained checkpoint records persist across
// restarts (one file per task, checkpoint-record bytes verbatim).
func (s *Server) partialsDir() string {
	return filepath.Join(s.cfg.WALDir, "partials")
}

// finalExists reports whether a complete trace for task is already in
// the watched directory (either serialization).
func (s *Server) finalExists(task string) bool {
	for _, f := range []trace.Format{trace.FormatBinary, trace.FormatJSON} {
		if _, err := os.Stat(filepath.Join(s.cfg.Dir, trace.TraceFileName(task, f))); err == nil {
			return true
		}
	}
	return false
}

// foldCheckpoint applies one incremental record: persist it under the
// partials directory and retain it in memory iff it is the newest
// checkpoint for a task that has no final yet. A delta record is first
// reassembled onto the retained partial at its base sequence
// (trace.ApplyDelta) and persisted in the reassembled cumulative form,
// re-encoded deterministically — so the partials directory, restarts,
// and the snapshot hash are indistinguishable from a cumulative
// stream's. Runs in the single folder goroutine (or startup replay),
// so checkpoints for one task are applied sequentially and a delta
// always folds after its base.
func (s *Server) foldCheckpoint(data []byte, task string, meta trace.RecordMeta) error {
	seq := meta.CheckpointSeq
	if s.finalExists(task) {
		return nil // finals supersede partials
	}
	s.partialMu.Lock()
	prev, ok := s.partials[task]
	s.partialMu.Unlock()
	if ok && prev.seq >= seq {
		return nil // stale delivery (retries, reordering)
	}
	// Retain an owned decode: the raw bytes are the WAL/queue payload.
	tt, meta2, err := trace.DecodeBytesMeta(data, trace.DecodeOptions{})
	if err != nil || !meta2.Incremental {
		return fmt.Errorf("%w: checkpoint re-decode: %v", errUnfoldable, err)
	}
	if meta.Delta {
		if !ok || prev.seq != meta.DeltaBaseSeq {
			// No partial at the delta's base: the ingest gate bounced
			// such deltas, so this is a replayed record whose base was
			// superseded before the crash. The client has already (or
			// will) resync cumulatively; dropping is safe and keeps
			// refolding idempotent.
			s.deltaDrops.Inc()
			return nil
		}
		cum := trace.ApplyDelta(prev.trace, tt)
		var buf bytes.Buffer
		if err := cum.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
			return fmt.Errorf("%w: reassemble delta: %v", errUnfoldable, err)
		}
		data, tt = buf.Bytes(), cum
		s.deltaFolds.Inc()
	}
	path := filepath.Join(s.partialsDir(), trace.TraceFileName(task, trace.FormatBinary))
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	s.partialMu.Lock()
	if prev, ok := s.partials[task]; !ok || prev.seq < seq {
		s.partials[task] = &partialEntry{seq: seq, hash: trace.HashBytes(data), trace: tt}
		s.partialsGen++
		if seq > s.streamSeqs[task] {
			s.streamSeqs[task] = seq
		}
	}
	s.partialMu.Unlock()
	s.partialFolds.Inc()
	return nil
}

// retractPartial drops a task's retained checkpoint after its final
// trace landed. A crash between the final's rename and the partial
// file's removal leaves a shadowed file; loadPartials cleans those up
// on the next start.
func (s *Server) retractPartial(task string) {
	s.partialMu.Lock()
	_, ok := s.partials[task]
	if ok {
		delete(s.partials, task)
		s.partialsGen++
	}
	delete(s.streamSeqs, task)
	s.partialMu.Unlock()
	if ok {
		_ = os.Remove(filepath.Join(s.partialsDir(), trace.TraceFileName(task, trace.FormatBinary)))
		s.partialRetracts.Inc()
	}
}

// loadPartials restores retained checkpoints from the partials
// directory at startup, before WAL replay (replayed checkpoint
// records then apply the usual newest-wins rule against them).
// Files that are corrupt, not checkpoint records, or shadowed by a
// final in the trace directory are removed.
func (s *Server) loadPartials() error {
	dir := s.partialsDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: scan partials: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !trace.IsTraceFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("serve: read partial %s: %w", path, err)
		}
		tt, meta, err := trace.DecodeBytesMeta(data, trace.DecodeOptions{})
		if err != nil || !meta.Incremental || s.finalExists(tt.Task) {
			// Corrupt, a stray complete trace, or superseded by a final:
			// stale either way. Removal is safe — the record is either
			// invalid or reconstructible from the directory.
			_ = os.Remove(path)
			continue
		}
		if prev, ok := s.partials[tt.Task]; ok && prev.seq >= meta.CheckpointSeq {
			continue
		}
		s.partials[tt.Task] = &partialEntry{seq: meta.CheckpointSeq, hash: trace.HashBytes(data), trace: tt}
		if meta.CheckpointSeq > s.streamSeqs[tt.Task] {
			s.streamSeqs[tt.Task] = meta.CheckpointSeq
		}
		s.partialsGen++
	}
	return nil
}

// liveGraphHandler serves /v1/live/ftg and /v1/live/sdg: the batch
// graph overlaid with checkpoint traces for tasks still in flight.
// ?window=<duration> additionally aggregates task nodes along the
// time dimension (AggregateByTime) before rendering.
func (s *Server) liveGraphHandler(which string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.current()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		g := snap.liveFTG
		if which == "sdg" {
			g = snap.liveSDG
		}
		windowNS, ok := durationParam(w, r, "window")
		if !ok {
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		var contentType string
		switch format {
		case "json":
			contentType = "application/json"
		case "dot":
			contentType = "text/vnd.graphviz; charset=utf-8"
		case "html":
			contentType = "text/html; charset=utf-8"
		case "svg":
			contentType = "image/svg+xml"
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (json, dot, html, svg)", format), http.StatusBadRequest)
			return
		}
		key := "live-" + which + "." + format
		switch {
		case windowNS > 0:
			key = fmt.Sprintf("live-%s.w%d.%s", which, windowNS, format)
		case snap.partialTasks == 0:
			// No partials: the live graph aliases the batch graph, and
			// sharing the render key makes the responses byte-identical
			// (the equivalence gate at end of stream).
			key = which + "." + format
		}
		body, err := s.render(snap, key, func() ([]byte, error) {
			out := g
			if windowNS > 0 {
				// The cross-snapshot cache: when only a few tasks folded
				// since the last render of this window, the fingerprint
				// pass proves the windowed projection unchanged and the
				// previous aggregation is reused (byte-identical output
				// is the cache's contract).
				agg, err := s.timeAgg.Aggregate(g, "live-"+which, snap.id, windowNS)
				if err != nil {
					return nil, err
				}
				out = agg
			}
			return renderGraph(out, format)
		})
		if err != nil {
			if errors.Is(err, analyzer.ErrNonPositiveWindow) {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		s.setLiveHeaders(w, snap)
		_, _ = w.Write(body)
	}
}

// handleLiveDiagnostics is /v1/live/diagnostics: anti-pattern
// detection over the live trace set (complete traces plus retained
// checkpoints). ?horizon=<duration> restricts the analysis to traces
// whose activity ends within the trailing horizon, for "what is going
// wrong right now" queries on long-running workflows. The response
// encoding matches /v1/diagnose exactly, so once the stream completes
// (zero partials, no horizon) the bytes are identical.
func (s *Server) handleLiveDiagnostics(w http.ResponseWriter, r *http.Request) {
	snap, err := s.current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	horizonNS, ok := durationParam(w, r, "horizon")
	if !ok {
		return
	}
	key := "live-diagnose"
	switch {
	case horizonNS > 0:
		key = fmt.Sprintf("live-diagnose.h%d", horizonNS)
	case snap.partialTasks == 0:
		key = "diagnose" // byte-identical to /v1/diagnose
	}
	body, err := s.render(snap, key, func() ([]byte, error) {
		traces := snap.liveTraces
		if horizonNS > 0 {
			traces = horizonTraces(traces, horizonNS)
		}
		return diagnose.EncodeJSON(diagnose.Analyze(traces, snap.manifest, diagnose.Thresholds{}))
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.setLiveHeaders(w, snap)
	_, _ = w.Write(body)
}

// setLiveHeaders stamps the snapshot identity and stream progress on
// a live response.
func (s *Server) setLiveHeaders(w http.ResponseWriter, snap *snapshot) {
	w.Header().Set("X-Dayu-Snapshot", snap.id)
	w.Header().Set("X-Dayu-Partial-Tasks", strconv.Itoa(snap.partialTasks))
	w.Header().Set("X-Dayu-Complete-Tasks", strconv.Itoa(len(snap.traces)))
}

// durationParam parses an optional positive duration query parameter,
// answering 400 itself (and returning ok=false) on bad input.
func durationParam(w http.ResponseWriter, r *http.Request, name string) (int64, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, true
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		http.Error(w, fmt.Sprintf("bad %s %q: want a positive duration like 500ms or 2s", name, raw), http.StatusBadRequest)
		return 0, false
	}
	return d.Nanoseconds(), true
}

// horizonTraces keeps the traces whose activity ends within the
// trailing horizon window, anchored at the newest end timestamp in
// the set (wall clocks of pushing tasks need not agree with ours).
func horizonTraces(traces []*trace.TaskTrace, horizonNS int64) []*trace.TaskTrace {
	var maxEnd int64
	for _, t := range traces {
		if t.EndNS > maxEnd {
			maxEnd = t.EndNS
		}
	}
	cut := maxEnd - horizonNS
	out := make([]*trace.TaskTrace, 0, len(traces))
	for _, t := range traces {
		if t.EndNS >= cut {
			out = append(out, t)
		}
	}
	return out
}
