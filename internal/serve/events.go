package serve

// Server-sent events for the live view: /v1/live/events pushes one
// event per converged snapshot change instead of making dashboards
// poll /v1/live/* for the X-Dayu-Snapshot header to move.
//
// Design constraints, in order:
//
//   - Ingest must never block on a slow consumer. Subscribers get a
//     bounded buffer and a non-blocking fan-out; an overflowing
//     subscriber is marked lagging and simply misses intermediate
//     events. That is safe because every event carries the full
//     current state (snapshot id + live diagnostics), never a diff —
//     the next event a lagging client receives supersedes everything
//     it missed. A skip is surfaced as an `event: lagged` line so the
//     client knows intermediate states existed.
//   - Zero cost when unused. The broadcaster only tracks (id,
//     snapshot) pairs; payload rendering happens in the subscriber's
//     handler goroutine through the snapshot render cache, so a
//     deployment with no SSE clients never renders an event and the
//     refresh path never waits on one.
//   - Resume must be cheap and correct. Events get monotone ids and a
//     small replay ring; a Last-Event-ID inside the ring resumes with
//     exactly the missed events, and an unknown or stale id (a server
//     restart, an outgrown ring) falls back to one full current-state
//     event — again correct because events are full-state.
//
// Event schema (`event: snapshot`):
//
//	{"snapshot":"<id>","partial_tasks":N,"complete_tasks":M,"findings":<...>}
//
// where findings is the exact /v1/live/diagnostics JSON body for the
// same snapshot — shared bytes via the render cache, so an SSE-fed
// dashboard and a polling one can never disagree.

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dayu/internal/diagnose"
)

// eventRingSize bounds Last-Event-ID replay. Full-state events make
// the ring a latency optimization, not a correctness requirement.
const eventRingSize = 32

// liveEvent pairs a monotone event id with the snapshot it announced.
type liveEvent struct {
	id   uint64
	snap *snapshot
}

// eventSub is one /v1/live/events connection.
type eventSub struct {
	ch     chan liveEvent
	lagged bool // guarded by the broadcaster's mutex
}

// eventsBroadcaster fans snapshot changes out to SSE subscribers. The
// zero value is ready; it shares the Server's partialMu-free locking
// discipline (its own mutex, never held across I/O).
type eventsBroadcaster struct {
	nextID uint64
	lastID string // snapshot id of the newest published event
	ring   []liveEvent
	subs   map[*eventSub]struct{}
}

// publish announces a snapshot if it differs from the last announced
// one. Called from refresh (single writer under ingestMu); never
// blocks.
func (s *Server) publishEvent(snap *snapshot) {
	b := &s.events
	s.eventMu.Lock()
	defer s.eventMu.Unlock()
	if b.lastID == snap.id {
		return
	}
	b.appendLocked(snap)
}

// appendLocked assigns the next id, records the event in the replay
// ring, and fans it out non-blocking. Callers hold eventMu.
func (b *eventsBroadcaster) appendLocked(snap *snapshot) liveEvent {
	b.nextID++
	b.lastID = snap.id
	ev := liveEvent{id: b.nextID, snap: snap}
	b.ring = append(b.ring, ev)
	if len(b.ring) > eventRingSize {
		b.ring = b.ring[len(b.ring)-eventRingSize:]
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.lagged = true
		}
	}
	return ev
}

// subscribe registers a connection and returns the events it must send
// first: the replay suffix after lastID when the ring still covers it,
// else one full current-state event (seeded from snap if nothing was
// ever published). snap may be nil only when the server has never
// built a snapshot; then there is nothing to send until publish.
func (s *Server) subscribeEvents(lastID uint64, snap *snapshot) (*eventSub, []liveEvent) {
	s.eventMu.Lock()
	defer s.eventMu.Unlock()
	b := &s.events
	if b.subs == nil {
		b.subs = map[*eventSub]struct{}{}
	}
	sub := &eventSub{ch: make(chan liveEvent, 16)}
	b.subs[sub] = struct{}{}

	if len(b.ring) == 0 {
		if snap == nil {
			return sub, nil
		}
		// First subscriber before any publish: seed the stream so every
		// connection starts with the current state.
		return sub, []liveEvent{b.appendLocked(snap)}
	}
	newest := b.ring[len(b.ring)-1]
	if lastID == 0 {
		// A fresh connection (no Last-Event-ID): current state only.
		return sub, []liveEvent{newest}
	}
	if lastID == newest.id {
		return sub, nil // already current
	}
	oldest := b.ring[0]
	if lastID >= oldest.id-1 && lastID < newest.id {
		// The ring covers the gap: replay exactly the missed suffix.
		start := int(lastID - (oldest.id - 1))
		return sub, append([]liveEvent(nil), b.ring[start:]...)
	}
	// lastID > newest means an id from a previous server incarnation
	// (ids restart at 1): unknown, so catch up with full state below.
	// Stale or unknown id: one full-state event catches the client up.
	return sub, []liveEvent{newest}
}

func (s *Server) unsubscribeEvents(sub *eventSub) {
	s.eventMu.Lock()
	delete(s.events.subs, sub)
	s.eventMu.Unlock()
}

// takeLagged consumes the subscriber's lagged mark.
func (s *Server) takeLagged(sub *eventSub) bool {
	s.eventMu.Lock()
	defer s.eventMu.Unlock()
	l := sub.lagged
	sub.lagged = false
	return l
}

// liveEventPayload renders one event's data line: the snapshot header
// plus the exact /v1/live/diagnostics body for the snapshot, shared
// through the snapshot's render cache.
func (s *Server) liveEventPayload(snap *snapshot) ([]byte, error) {
	key := "live-diagnose"
	if snap.partialTasks == 0 {
		key = "diagnose"
	}
	findings, err := s.render(snap, key, func() ([]byte, error) {
		return diagnose.EncodeJSON(diagnose.Analyze(snap.liveTraces, snap.manifest, diagnose.Thresholds{}))
	})
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf(`{"snapshot":%q,"partial_tasks":%d,"complete_tasks":%d,"findings":`,
		snap.id, snap.partialTasks, len(snap.traces))
	payload := make([]byte, 0, len(head)+len(findings)+1)
	payload = append(payload, head...)
	payload = append(payload, findings...)
	payload = append(payload, '}')
	return payload, nil
}

// handleLiveEvents is GET /v1/live/events: the SSE stream. It must be
// routed around any buffering middleware (http.TimeoutHandler would
// buffer the whole response); cmd/dayu serve exempts this path.
func (s *Server) handleLiveEvents(w http.ResponseWriter, r *http.Request) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		http.Error(w, "streaming unsupported by this connection", http.StatusNotImplemented)
		return
	}
	// The stream is long-lived: clear the connection deadlines so the
	// http.Server's Read/WriteTimeout does not sever it between
	// heartbeats. Errors are ignored — a ResponseWriter that does not
	// support deadlines (tests, exotic middleware) simply keeps them.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	_ = rc.SetReadDeadline(time.Time{})
	// Validate live-endpoint parameters exactly like /v1/live/*: the
	// stream takes none, but a mistyped ?window=/-5s must fail loudly
	// with 400, not be silently ignored.
	if _, ok := durationParam(w, r, "window"); !ok {
		return
	}
	if _, ok := durationParam(w, r, "horizon"); !ok {
		return
	}
	snap, err := s.current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID = n
		}
	}
	sub, backlog := s.subscribeEvents(lastID, snap)
	defer s.unsubscribeEvents(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	writeEvent := func(ev liveEvent) bool {
		payload, err := s.liveEventPayload(ev.snap)
		if err != nil {
			// The stream is already committed; drop the event rather
			// than corrupting the framing. The next event retries.
			return true
		}
		if s.takeLagged(sub) {
			if _, err := fmt.Fprint(w, "event: lagged\ndata: {}\n\n"); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: snapshot\n", ev.id); err != nil {
			return false
		}
		// The payload is multi-line JSON; SSE framing requires one
		// "data:" field per line (clients rejoin them with \n, so the
		// reassembled payload is byte-identical).
		for _, line := range bytes.Split(payload, []byte("\n")) {
			if _, err := fmt.Fprintf(w, "data: %s\n", line); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range backlog {
		if !writeEvent(ev) {
			return
		}
	}

	heartbeat := s.cfg.SSEHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case ev := <-sub.ch:
			if !writeEvent(ev) {
				return
			}
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
