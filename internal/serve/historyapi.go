package serve

// The snapshot-history endpoints: /v1/history lists the recorded
// snapshot manifests (newest first), /v1/history/{id} returns one
// manifest, and /v1/history/{id}/{ftg,sdg} replays the exact response
// bodies the server published for that snapshot — the same bytes
// /v1/{ftg,sdg} answered while it was current, straight from the
// content-addressed blob store, without refolding a single trace.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"dayu/internal/serve/history"
)

// HistoryList is the /v1/history response body.
type HistoryList struct {
	Snapshots []history.Manifest `json:"snapshots"`
}

func (s *Server) handleHistoryList(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		http.Error(w, "history disabled (start serve with -history)", http.StatusNotImplemented)
		return
	}
	body, err := json.MarshalIndent(HistoryList{Snapshots: s.hist.List()}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleHistoryEntry serves /v1/history/{id} (the manifest) and
// /v1/history/{id}/{ftg,sdg} (the recorded response bodies).
func (s *Server) handleHistoryEntry(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		http.Error(w, "history disabled (start serve with -history)", http.StatusNotImplemented)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/history/")
	id, which, hasWhich := strings.Cut(rest, "/")
	if id == "" {
		http.Error(w, "missing snapshot id", http.StatusBadRequest)
		return
	}
	m, ok := s.hist.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown snapshot %q", id), http.StatusNotFound)
		return
	}
	if !hasWhich || which == "" {
		body, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Dayu-Snapshot", m.ID)
		_, _ = w.Write(body)
		return
	}
	var hash string
	switch which {
	case "ftg":
		hash = m.FTG
	case "sdg":
		hash = m.SDG
	default:
		http.Error(w, fmt.Sprintf("unknown history graph %q (ftg, sdg)", which), http.StatusBadRequest)
		return
	}
	body, err := s.hist.Blob(hash)
	if err != nil {
		// A listed manifest whose blob is gone means the store was
		// mutilated out of band; 500, not 404 — the snapshot exists.
		if os.IsNotExist(err) {
			http.Error(w, fmt.Sprintf("snapshot %s blob missing", id), http.StatusInternalServerError)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dayu-Snapshot", m.ID)
	_, _ = w.Write(body)
}
