package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"dayu/internal/obs"
	"dayu/internal/serve/client"
	"dayu/internal/trace"
)

// pushEnv is one WAL-enabled server under test.
type pushEnv struct {
	s      *Server
	srv    *httptest.Server
	dir    string // watched trace directory
	walDir string
}

// newPushEnv builds a WAL-enabled server over an empty trace
// directory. mutate may adjust the config before construction.
func newPushEnv(t *testing.T, mutate func(*Config)) *pushEnv {
	t.Helper()
	cfg := Config{
		Dir:         t.TempDir(),
		WALDir:      t.TempDir(),
		WAL:         WALOptions{Fsync: FsyncNever},
		PlanOptions: testPlanOpts,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := mustServer(t, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })
	return &pushEnv{s: s, srv: srv, dir: cfg.Dir, walDir: cfg.WALDir}
}

// makeTraceBytes encodes a small synthetic trace in the given format.
func makeTraceBytes(t *testing.T, task string, f trace.Format) []byte {
	t.Helper()
	tt := &trace.TaskTrace{
		Task: task, StartNS: 100, EndNS: 2000,
		Files: []trace.FileRecord{{
			Task: task, File: task + "_out.h5",
			OpenNS: 150, CloseNS: 1900,
			Ops: 3, Writes: 3, BytesWritten: 4096,
			MetaOps: 1, DataOps: 2, MetaBytes: 64, DataBytes: 4032,
		}},
	}
	var buf bytes.Buffer
	if err := tt.EncodeFormat(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postIngest POSTs raw bytes to /v1/ingest and returns the status and
// decoded body (when 200).
func postIngest(t *testing.T, srv *httptest.Server, data []byte) (int, PushResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pr PushResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("bad %d body %q: %v", resp.StatusCode, body, err)
		}
	}
	return resp.StatusCode, pr, resp.Header
}

// waitTasks rescans until the snapshot holds n tasks (folding is
// asynchronous behind the acknowledgement).
func waitTasks(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := s.Ingest()
		if snap != nil && len(snap.tasks) == n {
			return
		}
		if time.Now().After(deadline) {
			got := -1
			if snap != nil {
				got = len(snap.tasks)
			}
			t.Fatalf("snapshot never reached %d tasks (at %d)", n, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitWALDrained waits until every acknowledged record has been
// folded and checkpointed.
func waitWALDrained(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.walStats().Pending != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("WAL never drained: %+v", s.walStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPushIngestDisabledWithoutWAL(t *testing.T) {
	s := mustServer(t, Config{Dir: t.TempDir(), PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	status, _, _ := postIngest(t, srv, makeTraceBytes(t, "nope", trace.FormatJSON))
	if status != http.StatusNotImplemented {
		t.Fatalf("push without WAL = %d, want 501", status)
	}
}

func TestPushIngestAcceptFoldDedup(t *testing.T) {
	reg := obs.NewRegistry()
	env := newPushEnv(t, func(cfg *Config) { cfg.Registry = reg })

	jsonBytes := makeTraceBytes(t, "pushed_json", trace.FormatJSON)
	binBytes := makeTraceBytes(t, "pushed_bin", trace.FormatBinary)

	status, pr, _ := postIngest(t, env.srv, jsonBytes)
	if status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("push = %d %q", status, pr.Status)
	}
	if pr.Task != "pushed_json" || pr.Hash != trace.HashBytes(jsonBytes) {
		t.Fatalf("ack names task %q hash %q", pr.Task, pr.Hash)
	}
	status, pr2, _ := postIngest(t, env.srv, binBytes)
	if status != http.StatusOK || pr2.Status != "accepted" {
		t.Fatalf("binary push = %d %q", status, pr2.Status)
	}
	if pr2.Seq != pr.Seq+1 {
		t.Fatalf("seqs %d then %d, want consecutive", pr.Seq, pr2.Seq)
	}

	waitTasks(t, env.s, 2)
	// Folded files carry the exact pushed bytes under the batch-loader
	// names, so the content hash (and dedup) survives restarts.
	for _, tc := range []struct {
		task string
		f    trace.Format
		data []byte
	}{{"pushed_json", trace.FormatJSON, jsonBytes}, {"pushed_bin", trace.FormatBinary, binBytes}} {
		path := filepath.Join(env.dir, trace.TraceFileName(tc.task, tc.f))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tc.data) {
			t.Errorf("%s: folded bytes differ from pushed bytes", path)
		}
	}

	// Identical re-push: acknowledged as a duplicate, no new sequence.
	status, dup, _ := postIngest(t, env.srv, jsonBytes)
	if status != http.StatusOK || dup.Status != "duplicate" {
		t.Fatalf("re-push = %d %q, want 200 duplicate", status, dup.Status)
	}
	if dup.Seq != 0 {
		t.Errorf("duplicate carries seq %d", dup.Seq)
	}

	body := string(get(t, env.srv, "/metrics"))
	for _, want := range []string{
		`dayu_serve_push_total{result="accepted"} 2`,
		`dayu_serve_push_total{result="duplicate"} 1`,
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz surfaces the WAL state.
	waitWALDrained(t, env.s)
	var h Health
	if err := json.Unmarshal(get(t, env.srv, "/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.WAL == nil {
		t.Fatal("healthz missing wal section")
	}
	if h.WAL.NextSeq != 2 || h.WAL.FoldedSeq != 2 || h.WAL.PendingRecords != 0 {
		t.Errorf("wal health = %+v, want next=2 folded=2 pending=0", h.WAL)
	}
}

func TestPushDedupSurvivesRestart(t *testing.T) {
	dir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever}, PlanOptions: testPlanOpts}
	s := mustServer(t, cfg)
	srv := httptest.NewServer(s)
	data := makeTraceBytes(t, "restart_probe", trace.FormatBinary)
	if status, pr, _ := postIngest(t, srv, data); status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("push = %d %q", status, pr.Status)
	}
	waitTasks(t, s, 1)
	srv.Close()
	s.Close()

	s2 := mustServer(t, cfg)
	defer s2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	status, pr, _ := postIngest(t, srv2, data)
	if status != http.StatusOK || pr.Status != "duplicate" {
		t.Fatalf("re-push after restart = %d %q, want 200 duplicate", status, pr.Status)
	}
}

func TestPushIngestBadRequests(t *testing.T) {
	env := newPushEnv(t, func(cfg *Config) { cfg.MaxBodyBytes = 256 })

	if status, _, _ := postIngest(t, env.srv, []byte("not a trace")); status != http.StatusBadRequest {
		t.Errorf("garbage body = %d, want 400", status)
	}
	if status, _, _ := postIngest(t, env.srv, nil); status != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", status)
	}
	if status, _, _ := postIngest(t, env.srv, bytes.Repeat([]byte{'x'}, 512)); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body = %d, want 413", status)
	}

	// Non-POST methods are refused with an Allow header.
	resp, err := http.Get(env.srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}

	// Nothing above may have landed anything.
	if stats := env.s.walStats(); stats.NextSeq != 0 {
		t.Errorf("bad requests appended %d records", stats.NextSeq)
	}
}

func TestPushIngestManifest(t *testing.T) {
	env := newPushEnv(t, nil)
	m := trace.Manifest{Workflow: "pushed", TaskOrder: []string{"a", "b"}}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(env.srv.URL+"/v1/ingest/manifest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest push = %d", resp.StatusCode)
	}
	got, err := trace.LoadManifest(env.dir)
	if err != nil || got == nil || got.Workflow != "pushed" || len(got.TaskOrder) != 2 {
		t.Fatalf("manifest did not land: %+v (%v)", got, err)
	}

	for _, bad := range []string{`{"workflow":`, `{"no_such_field":1}`} {
		resp, err := http.Post(env.srv.URL+"/v1/ingest/manifest", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad manifest %q = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestPushBackpressure pins the 429 contract: with the fold pipeline
// stalled and the admission queue full, pushes are rejected with 429 +
// Retry-After before anything is written, and succeed once the queue
// drains.
func TestPushBackpressure(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	env := newPushEnv(t, func(cfg *Config) {
		cfg.IngestQueue = 2
		cfg.RetryAfter = 3 * time.Second
		cfg.foldHook = func(foldJob) { <-release }
	})
	defer once.Do(func() { close(release) })

	// Fill the queue: both accepted (the folder is stalled in the hook).
	for i := 0; i < 2; i++ {
		data := makeTraceBytes(t, fmt.Sprintf("bp_%d", i), trace.FormatJSON)
		if status, pr, _ := postIngest(t, env.srv, data); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("push %d = %d %q", i, status, pr.Status)
		}
	}

	overflow := makeTraceBytes(t, "bp_overflow", trace.FormatJSON)
	status, _, hdr := postIngest(t, env.srv, overflow)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow push = %d, want 429", status)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs != 3 {
		t.Fatalf("Retry-After = %q, want 3", hdr.Get("Retry-After"))
	}
	if stats := env.s.walStats(); stats.NextSeq != 2 {
		t.Fatalf("rejected push appended: next seq %d, want 2", stats.NextSeq)
	}

	// Queue state is visible in /healthz while stalled.
	var h Health
	if err := json.Unmarshal(get(t, env.srv, "/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.WAL == nil || h.WAL.QueueDepth != 2 || h.WAL.QueueCapacity != 2 {
		t.Fatalf("healthz queue = %+v, want 2/2", h.WAL)
	}

	once.Do(func() { close(release) })
	// After the stall clears, the overflow record is deliverable.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, pr, _ := postIngest(t, env.srv, overflow)
		if status == http.StatusOK && pr.Status == "accepted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overflow push never accepted after drain (last %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitTasks(t, env.s, 3)
}

// TestPushClientDeliversThroughBackpressure drives the retrying client
// against a deliberately tiny, slowed-down queue: every record must
// land despite a stream of 429s.
func TestPushClientDeliversThroughBackpressure(t *testing.T) {
	env := newPushEnv(t, func(cfg *Config) {
		cfg.IngestQueue = 1
		cfg.RetryAfter = time.Millisecond // rounds to Retry-After: 0 — client retries at its own backoff
		cfg.foldHook = func(foldJob) { time.Sleep(2 * time.Millisecond) }
	})
	c, err := client.New(env.srv.URL, client.Options{
		MaxAttempts:    50,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Rand:           rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := makeTraceBytes(t, fmt.Sprintf("client_bp_%02d", i), trace.FormatBinary)
			res, err := c.PushBytes(context.Background(), data)
			if err != nil {
				errs <- err
				return
			}
			if res.Status != "accepted" {
				errs <- fmt.Errorf("record %d: status %q", i, res.Status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitTasks(t, env.s, n)
}

// TestPushConcurrentIdenticalPayloads pins in-flight dedup: identical
// payloads racing through /v1/ingest must produce exactly one WAL
// record and one "accepted" acknowledgement — a twin either waits for
// the first append to settle and is answered "duplicate", or appends
// itself if that append failed. Never both, and never a "duplicate"
// for bytes that are not yet durable.
func TestPushConcurrentIdenticalPayloads(t *testing.T) {
	env := newPushEnv(t, nil)
	data := makeTraceBytes(t, "twin_probe", trace.FormatBinary)

	const n = 8
	var wg sync.WaitGroup
	results := make(chan string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, pr, _ := postIngest(t, env.srv, data)
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d", status)
				return
			}
			results <- pr.Status
		}()
	}
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	accepted, duplicates := 0, 0
	for st := range results {
		switch st {
		case "accepted":
			accepted++
		case "duplicate":
			duplicates++
		default:
			t.Errorf("unexpected status %q", st)
		}
	}
	if accepted != 1 || duplicates != n-1 {
		t.Fatalf("accepted=%d duplicates=%d, want 1 and %d", accepted, duplicates, n-1)
	}
	if stats := env.s.walStats(); stats.NextSeq != 1 {
		t.Fatalf("identical payloads appended %d WAL records, want 1", stats.NextSeq)
	}
	waitTasks(t, env.s, 1)
}

// TestPushCrashRecoveryEquivalence is the in-process crash gate: a WAL
// left behind by a dead server — including a torn tail from a crash
// mid-append — replays on startup into a server whose endpoints are
// byte-identical to the batch CLI over the recovered trace set.
func TestPushCrashRecoveryEquivalence(t *testing.T) {
	fixture := writeFixtureDir(t)
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the durable half of a crashed server: acknowledged
	// records in the WAL, nothing folded, checkpoint never written.
	walDir := t.TempDir()
	w, _, err := OpenWAL(walDir, WALOptions{Fsync: FsyncNever, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var records int
	for _, e := range entries {
		if !trace.IsTraceFile(e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(data); err != nil {
			t.Fatal(err)
		}
		records++
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a torn half-record at the tail of the last
	// segment. It was never acknowledged, so recovery must drop it.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	var frame bytes.Buffer
	if _, err := trace.WriteWALRecord(&frame, []byte("unacknowledged torn record")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame.Bytes()[:frame.Len()/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The restarted server folds everything during construction.
	dir := t.TempDir()
	m, err := trace.LoadManifest(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	s := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever},
		Registry: obs.NewRegistry(), PlanOptions: testPlanOpts,
	})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	waitTasks(t, s, records)
	// Every acknowledged record is recovered...
	var listing struct {
		Tasks []TaskInfo `json:"tasks"`
	}
	if err := json.Unmarshal(get(t, srv, "/v1/tasks"), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tasks) != records {
		t.Fatalf("recovered %d tasks, want %d", len(listing.Tasks), records)
	}
	// ...and every endpoint is byte-identical to the batch CLI over the
	// recovered directory (which holds the exact fixture bytes).
	checkAllEndpoints(t, srv, dir, "crash-recovery")

	// A second restart over the now-compacted WAL is a no-op.
	s2 := mustServer(t, Config{
		Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever}, PlanOptions: testPlanOpts,
	})
	s2.Close()
}

// TestPushGracefulCloseDrains pins the shutdown contract: Close
// returns only after every acknowledged record is folded, and pushes
// arriving after shutdown began are refused, not lost silently.
func TestPushGracefulCloseDrains(t *testing.T) {
	env := newPushEnv(t, func(cfg *Config) {
		cfg.foldHook = func(foldJob) { time.Sleep(2 * time.Millisecond) }
	})
	const n = 6
	for i := 0; i < n; i++ {
		data := makeTraceBytes(t, fmt.Sprintf("drain_%d", i), trace.FormatJSON)
		if status, pr, _ := postIngest(t, env.srv, data); status != http.StatusOK || pr.Status != "accepted" {
			t.Fatalf("push %d = %d %q", i, status, pr.Status)
		}
	}
	env.s.Close()

	// Every acknowledged record reached the trace directory...
	files, err := filepath.Glob(filepath.Join(env.dir, "*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != n {
		t.Fatalf("after Close: %d trace files, want %d", len(files), n)
	}
	// ...and the WAL was fully folded and compacted.
	w, pending, err := OpenWAL(env.walDir, WALOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(pending) != 0 {
		t.Fatalf("WAL left %d pending records after graceful close", len(pending))
	}

	// Pushes after close are refused with 503.
	status, _, _ := postIngest(t, env.srv, makeTraceBytes(t, "late", trace.FormatJSON))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("push after close = %d, want 503", status)
	}
}

// TestServePushPollQueryHammer is the race-enabled concurrent
// push/poll/query hammer: pushers, readers and the background watcher
// all run against one server.
func TestServePushPollQueryHammer(t *testing.T) {
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{
		Dir: dir, WALDir: t.TempDir(), WAL: WALOptions{Fsync: FsyncNever},
		Registry: obs.NewRegistry(), Poll: 5 * time.Millisecond, PlanOptions: testPlanOpts,
	})
	s.Start()
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Pushers: distinct tasks, alternating serializations.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			hc := srv.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := trace.FormatJSON
				if i%2 == 0 {
					f = trace.FormatBinary
				}
				data := makeTraceBytes(t, fmt.Sprintf("hammer/p%d_i%d", p, i%5), f)
				resp, err := hc.Post(srv.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(data))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests:
				default:
					errs <- fmt.Errorf("pusher %d: status %d", p, resp.StatusCode)
					return
				}
			}
		}(p)
	}
	// Readers across every endpoint.
	paths := []string{"/v1/ftg", "/v1/sdg?format=dot", "/v1/tasks", "/v1/plan", "/healthz", "/metrics"}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hc := srv.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := hc.Get(srv.URL + paths[(r+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r)
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced — every acknowledged record folded — the server still
	// matches the batch path over the union of directory and pushed
	// traces.
	waitWALDrained(t, s)
	if _, err := s.Ingest(); err != nil {
		t.Fatal(err)
	}
	checkAllEndpoints(t, srv, dir, "post-hammer")
}
