package client

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dayu/internal/trace"
)

func fastOptions() Options {
	return Options{
		MaxAttempts:    5,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Rand:           rand.New(rand.NewSource(1)),
	}
}

func ackHandler(status, task string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(PushResult{Status: status, Task: task, Hash: "h", Seq: 7})
	}
}

func TestClientRetriesTransientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		ackHandler("accepted", "t1")(w, r)
	}))
	defer srv.Close()

	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PushBytes(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "accepted" || res.Attempts != 3 {
		t.Fatalf("res = %+v, want accepted after 3 attempts", res)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "ingest queue full", http.StatusTooManyRequests)
			return
		}
		ackHandler("accepted", "t1")(w, r)
	}))
	defer srv.Close()

	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PushBytes(context.Background(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
}

func TestClientPermanentErrorDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad trace payload", http.StatusBadRequest)
	}))
	defer srv.Close()

	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.PushBytes(context.Background(), []byte("garbage"))
	if err == nil || !strings.Contains(err.Error(), "bad trace payload") {
		t.Fatalf("err = %v, want permanent 400 detail", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retry on 4xx)", calls.Load())
	}
}

func TestClientGivesUpClearly(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "persistent failure", http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastOptions()
	opts.MaxAttempts = 3
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.PushBytes(context.Background(), []byte("payload"))
	if err == nil {
		t.Fatal("expected give-up error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "giving up after 3 attempts") || !strings.Contains(msg, "persistent failure") {
		t.Fatalf("give-up error %q lacks attempt count or cause", msg)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	opts := fastOptions()
	opts.MaxAttempts = 1000
	opts.InitialBackoff = 50 * time.Millisecond
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.PushBytes(ctx, []byte("payload"))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative/only"} {
		if _, err := New(bad, Options{}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":    0,
		"0":   0,
		"3":   3 * time.Second,
		" 2 ": 2 * time.Second,
		"-1":  0,
		"x":   0,
		// RFC 9110 also allows the HTTP-date form; a past date means
		// "retry now", never a negative sleep.
		time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat): 0,
		"Mon, 32 Jan 2024 00:00:00 GMT":                            0, // malformed date
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", in, got, want)
		}
	}
	// A future HTTP-date yields roughly the remaining wait.
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 25*time.Second || got > 31*time.Second {
		t.Errorf("parseRetryAfter(%q) = %s, want ~30s", future, got)
	}
}

func TestClientPushDir(t *testing.T) {
	dir := t.TempDir()
	for _, task := range []string{"a_task", "b_task"} {
		tt := &trace.TaskTrace{Task: task, StartNS: 1, EndNS: 10}
		if _, err := tt.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := trace.SaveManifest(dir, &trace.Manifest{Workflow: "w", TaskOrder: []string{"a_task", "b_task"}}); err != nil {
		t.Fatal(err)
	}
	// A stray non-trace file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("skip me"), 0o644); err != nil {
		t.Fatal(err)
	}

	var ingests, manifests atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		status := "accepted"
		if ingests.Add(1) > 1 {
			status = "duplicate"
		}
		ackHandler(status, "t")(w, r)
	})
	mux.HandleFunc("/v1/ingest/manifest", func(w http.ResponseWriter, r *http.Request) {
		manifests.Add(1)
		ackHandler("accepted", "")(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.PushDir(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pushed != 2 || sum.Accepted != 1 || sum.Duplicates != 1 || !sum.Manifest {
		t.Fatalf("summary = %+v", sum)
	}
	if ingests.Load() != 2 || manifests.Load() != 1 {
		t.Fatalf("server saw %d ingests, %d manifests", ingests.Load(), manifests.Load())
	}

	// PushTraces skips the manifest.
	manifests.Store(0)
	sum, err = c.PushTraces(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Manifest || manifests.Load() != 0 {
		t.Fatalf("PushTraces touched the manifest: %+v", sum)
	}
}
