package client

import (
	"math/rand"
	"testing"
	"time"
)

// sleepClient builds a client with pinned backoff options and a
// deterministic jitter source.
func sleepClient(t *testing.T, initial, max time.Duration, seed int64) *Client {
	t.Helper()
	c, err := New("http://localhost:0", Options{
		InitialBackoff: initial,
		MaxBackoff:     max,
		Rand:           rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Regression for the retry-sleep edge cases: a Retry-After hint larger
// than MaxBackoff must win outright (not be clamped back to the cap),
// jitter must never pull the sleep below the server's hint, and no
// combination of cap, hint and jitter may yield a zero or negative
// sleep.
func TestSleepForEdgeDurations(t *testing.T) {
	cases := []struct {
		name       string
		initial    time.Duration
		max        time.Duration
		attempt    int
		retryAfter time.Duration
		min        time.Duration // inclusive bounds on the result
		maxWant    time.Duration
	}{
		{
			name:    "first retry, no hint: jittered initial",
			initial: 100 * time.Millisecond, max: 5 * time.Second,
			attempt: 1, retryAfter: 0,
			min: 80 * time.Millisecond, maxWant: 120 * time.Millisecond,
		},
		{
			name:    "deep attempt capped at MaxBackoff plus jitter",
			initial: 100 * time.Millisecond, max: 5 * time.Second,
			attempt: 60, retryAfter: 0, // 2^59 would overflow without the cap
			min: 4 * time.Second, maxWant: 6 * time.Second,
		},
		{
			name:    "hint beyond the cap wins outright",
			initial: 100 * time.Millisecond, max: 5 * time.Second,
			attempt: 8, retryAfter: time.Hour,
			min: time.Hour, maxWant: time.Hour,
		},
		{
			name:    "jitter can never dip below the hint",
			initial: 100 * time.Millisecond, max: 5 * time.Second,
			attempt: 60, retryAfter: 6 * time.Second, // hint just above jitter ceiling
			min: 6 * time.Second, maxWant: 6 * time.Second,
		},
		{
			name:    "hint below the backoff leaves the backoff alone",
			initial: 4 * time.Second, max: 5 * time.Second,
			attempt: 1, retryAfter: time.Second,
			min: 3200 * time.Millisecond, maxWant: 4800 * time.Millisecond,
		},
		{
			name:    "tiny backoff with zero hint still sleeps",
			initial: time.Nanosecond, max: time.Nanosecond,
			attempt: 1, retryAfter: 0,
			min: time.Millisecond, maxWant: time.Millisecond,
		},
		{
			name:    "sub-millisecond hint rounds up to the floor",
			initial: time.Nanosecond, max: time.Nanosecond,
			attempt: 3, retryAfter: 100 * time.Microsecond,
			min: time.Millisecond, maxWant: time.Millisecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Many seeds: the invariants must hold at every jitter draw,
			// including the extremes.
			for seed := int64(0); seed < 200; seed++ {
				c := sleepClient(t, tc.initial, tc.max, seed)
				got := c.sleepFor(tc.attempt, tc.retryAfter)
				if got <= 0 {
					t.Fatalf("seed %d: sleep %v is not positive", seed, got)
				}
				if got < tc.min || got > tc.maxWant {
					t.Fatalf("seed %d: sleep %v outside [%v, %v]", seed, got, tc.min, tc.maxWant)
				}
				if got < tc.retryAfter {
					t.Fatalf("seed %d: sleep %v below server hint %v", seed, got, tc.retryAfter)
				}
			}
		})
	}
}
