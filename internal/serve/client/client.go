// Package client pushes trace records to a dayu serve instance's
// durable ingest API (POST /v1/ingest). It is the client half of the
// push path: the tracer (or the dayu push CLI) hands it raw trace
// bytes, and it delivers them with retry — capped exponential backoff
// with jitter, honoring 429 Retry-After hints — until the server
// acknowledges durability or the attempt budget runs out with a clear
// give-up error.
//
// Delivery is idempotent by construction: the server deduplicates on
// the content hash of the pushed bytes, so a retry of a request whose
// response was lost is acknowledged as a duplicate, never applied
// twice.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dayu/internal/trace"
)

// Options tunes a Client.
type Options struct {
	// HTTPClient issues the requests (default: http.Client with a 30s
	// timeout).
	HTTPClient *http.Client
	// MaxAttempts bounds delivery attempts per record before giving up
	// (default 8).
	MaxAttempts int
	// InitialBackoff is the delay before the first retry; it doubles
	// per attempt (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the retry delay (default 5s). A larger 429
	// Retry-After hint overrides the cap: the server knows better.
	MaxBackoff time.Duration
	// Rand drives the backoff jitter; nil uses a time-seeded source.
	// Tests pin it for determinism.
	Rand *rand.Rand
}

// Client pushes traces to one dayu serve base URL. It is safe for
// concurrent use.
type Client struct {
	base *url.URL
	http *http.Client
	opts Options

	mu  sync.Mutex // guards rnd
	rnd *rand.Rand
}

// New builds a client for a serve base URL like "http://host:8080".
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("push client: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("push client: server URL %q needs a scheme and host", baseURL)
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.InitialBackoff <= 0 {
		opts.InitialBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Client{base: u, http: opts.HTTPClient, opts: opts, rnd: rnd}, nil
}

// PushResult is the server's acknowledgement for one record.
type PushResult struct {
	// Status is "accepted", "duplicate", or (for delta checkpoints the
	// server cannot fold) "resync".
	Status string `json:"status"`
	Task   string `json:"task"`
	Hash   string `json:"hash"`
	Seq    uint64 `json:"seq,omitempty"`
	// Attempts is how many deliveries this record took.
	Attempts int `json:"-"`
}

// Duplicate reports whether the server had already acknowledged an
// identical payload.
func (r *PushResult) Duplicate() bool { return r.Status == "duplicate" }

// NeedsResync reports that the server refused a delta checkpoint
// because its retained partial is not at the delta's base sequence
// (Seq carries the sequence it does have, or 0 for none). The record
// was NOT logged; the caller must re-push cumulative framing.
func (r *PushResult) NeedsResync() bool { return r.Status == "resync" }

// PushBytes delivers one complete trace byte stream (either
// serialization) to /v1/ingest, retrying transient failures. The
// returned result is the server's acknowledgement: once PushBytes
// returns nil error, the record is durably logged server-side.
func (c *Client) PushBytes(ctx context.Context, data []byte) (*PushResult, error) {
	return c.push(ctx, "/v1/ingest", data)
}

// PushTrace encodes and delivers one trace in the given format.
func (c *Client) PushTrace(ctx context.Context, t *trace.TaskTrace, f trace.Format) (*PushResult, error) {
	var buf bytes.Buffer
	if err := t.EncodeFormat(&buf, f); err != nil {
		return nil, err
	}
	return c.PushBytes(ctx, buf.Bytes())
}

// PushCheckpoint encodes and delivers one cumulative checkpoint
// record: the task's trace-so-far, flagged incremental with the given
// stream sequence number. The server retains at most one checkpoint
// per task (highest seq wins) until the task's final trace folds.
func (c *Client) PushCheckpoint(ctx context.Context, t *trace.TaskTrace, seq uint64) (*PushResult, error) {
	var buf bytes.Buffer
	if err := t.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
		return nil, err
	}
	return c.PushBytes(ctx, buf.Bytes())
}

// PushDelta encodes and delivers one delta checkpoint record: only
// the rows changed since the checkpoint at baseSeq (see trace.Diff),
// flagged delta with both sequence numbers. A server whose retained
// partial is not at baseSeq answers with a resync result (see
// PushResult.NeedsResync) instead of logging the record; the caller
// then re-pushes the same checkpoint in cumulative framing.
func (c *Client) PushDelta(ctx context.Context, delta *trace.TaskTrace, seq, baseSeq uint64) (*PushResult, error) {
	var buf bytes.Buffer
	if err := delta.EncodeBinaryOpts(&buf, trace.BinaryOptions{
		Incremental:   true,
		CheckpointSeq: seq,
		Delta:         true,
		DeltaBaseSeq:  baseSeq,
	}); err != nil {
		return nil, err
	}
	return c.PushBytes(ctx, buf.Bytes())
}

// PushManifestBytes delivers a manifest.json byte stream to
// /v1/ingest/manifest.
func (c *Client) PushManifestBytes(ctx context.Context, data []byte) (*PushResult, error) {
	return c.push(ctx, "/v1/ingest/manifest", data)
}

// DirSummary reports a PushDir run.
type DirSummary struct {
	Pushed     int // records delivered (accepted + duplicate)
	Accepted   int
	Duplicates int
	Manifest   bool // manifest.json was present and pushed
}

// PushDir pushes every trace file in dir and, when present, the
// manifest. Equivalent to PushTraces followed by pushing
// dir/manifest.json.
func (c *Client) PushDir(ctx context.Context, dir string) (DirSummary, error) {
	sum, err := c.PushTraces(ctx, dir)
	if err != nil {
		return sum, err
	}
	manifest := filepath.Join(dir, "manifest.json")
	if data, err := os.ReadFile(manifest); err == nil {
		if _, err := c.PushManifestBytes(ctx, data); err != nil {
			return sum, fmt.Errorf("push manifest.json: %w", err)
		}
		sum.Manifest = true
	} else if !os.IsNotExist(err) {
		return sum, fmt.Errorf("push: %w", err)
	}
	return sum, nil
}

// PushTraces pushes every trace file in dir (both serializations, raw
// bytes — the server's dedup keys stay aligned with the file hashes)
// but not the manifest. Files are pushed in sorted name order; the
// first undeliverable file aborts with its error.
func (c *Client) PushTraces(ctx context.Context, dir string) (DirSummary, error) {
	var sum DirSummary
	entries, err := os.ReadDir(dir)
	if err != nil {
		return sum, fmt.Errorf("push: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !trace.IsTraceFile(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return sum, fmt.Errorf("push: %w", err)
		}
		res, err := c.PushBytes(ctx, data)
		if err != nil {
			return sum, fmt.Errorf("push %s: %w", name, err)
		}
		sum.Pushed++
		if res.Duplicate() {
			sum.Duplicates++
		} else {
			sum.Accepted++
		}
	}
	return sum, nil
}

// push is the retry loop shared by every endpoint.
func (c *Client) push(ctx context.Context, path string, data []byte) (*PushResult, error) {
	endpoint := c.base.JoinPath(path).String()
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		res, retryAfter, err := c.attempt(ctx, endpoint, data)
		if err == nil {
			res.Attempts = attempt
			return res, nil
		}
		if pe := (*permanentError)(nil); errorAs(err, &pe) {
			// Wrap pe itself, not pe.err: IsPermanent must keep working
			// on the returned error (same message either way).
			return nil, fmt.Errorf("push: %s: %w", endpoint, pe)
		}
		lastErr = err
		if attempt == c.opts.MaxAttempts {
			break
		}
		delay := c.sleepFor(attempt, retryAfter)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("push: %s: %w (last error: %v)", endpoint, ctx.Err(), lastErr)
		case <-time.After(delay):
		}
	}
	return nil, fmt.Errorf("push: %s: giving up after %d attempts: %w", endpoint, c.opts.MaxAttempts, lastErr)
}

// attempt issues one POST. It classifies the outcome: nil error on
// 200; *permanentError on 4xx responses that retrying cannot cure;
// a plain error (retryable) on 429, 5xx and transport failures, with
// any Retry-After hint.
func (c *Client) attempt(ctx context.Context, endpoint string, data []byte) (*PushResult, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(data))
	if err != nil {
		return nil, 0, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("request: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, 0, fmt.Errorf("read response: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var res PushResult
		if err := json.Unmarshal(body, &res); err != nil {
			return nil, 0, fmt.Errorf("bad acknowledgement: %w", err)
		}
		return &res, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, parseRetryAfter(resp.Header.Get("Retry-After")), fmt.Errorf("server backpressure: %s", strings.TrimSpace(string(body)))
	case resp.StatusCode == http.StatusConflict:
		// A delta NACK is a protocol outcome, not a failure: the server
		// is telling us which base it has so we can resync. Anything
		// else on 409 is permanent.
		var res PushResult
		if err := json.Unmarshal(body, &res); err == nil && res.Status == "resync" {
			return &res, 0, nil
		}
		return nil, 0, &permanentError{fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusRequestTimeout:
		return nil, 0, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	default:
		return nil, 0, &permanentError{fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	}
}

// sleepFor returns the delay before the retry following the given
// attempt number: capped exponential backoff with ±20% jitter, then a
// server Retry-After hint applied as a floor AFTER the jitter. The
// ordering matters: a hint larger than MaxBackoff must win outright
// (the server knows its own backlog), and jitter must never pull the
// sleep below what the server asked for. The result is always at
// least one millisecond — never zero or negative, whatever the
// combination of cap, hint and jitter.
func (c *Client) sleepFor(attempt int, retryAfter time.Duration) time.Duration {
	delay := c.opts.InitialBackoff
	for i := 1; i < attempt && delay < c.opts.MaxBackoff; i++ {
		delay *= 2
	}
	if delay > c.opts.MaxBackoff {
		delay = c.opts.MaxBackoff
	}
	c.mu.Lock()
	jitter := time.Duration((c.rnd.Float64()*0.4 - 0.2) * float64(delay))
	c.mu.Unlock()
	delay += jitter
	if delay < retryAfter {
		delay = retryAfter
	}
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	return delay
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds or an HTTP-date. Negative delays and past dates clamp
// to 0 (retry immediately) rather than poisoning the backoff floor.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// IsPermanent reports whether a push error was a permanent server
// rejection (validation failure, oversize body, disabled endpoint)
// rather than a transient delivery failure that exhausted its retries.
func IsPermanent(err error) bool {
	pe := (*permanentError)(nil)
	return errorAs(err, &pe)
}

// permanentError marks outcomes no retry can change (validation
// rejections, oversize bodies, disabled endpoints).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// errorAs is errors.As narrowed to *permanentError (kept local to
// avoid shadowing confusion in the retry loop).
func errorAs(err error, target **permanentError) bool {
	for err != nil {
		if pe, ok := err.(*permanentError); ok {
			*target = pe
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
