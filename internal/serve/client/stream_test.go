package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dayu/internal/trace"
)

func streamTrace(task string) *trace.TaskTrace {
	return &trace.TaskTrace{
		Task: task, StartNS: 100, EndNS: 900,
		Files: []trace.FileRecord{{
			Task: task, File: "out.h5",
			OpenNS: 150, CloseNS: 800,
			Ops: 2, Writes: 2, BytesWritten: 2048,
			MetaOps: 1, DataOps: 1, MetaBytes: 64, DataBytes: 1984,
		}},
	}
}

// received is what the capture server decoded from one /v1/ingest body.
type received struct {
	task string
	meta trace.RecordMeta
}

// captureServer acknowledges every push and decodes each body so tests
// can assert the wire framing (incremental flag, checkpoint seq).
func captureServer(t *testing.T) (*httptest.Server, func() []received) {
	t.Helper()
	var mu sync.Mutex
	var got []received
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		if _, err := r.Body.Read(body); err != nil && err.Error() != "EOF" {
			t.Errorf("read push body: %v", err)
		}
		tt, meta, err := trace.DecodeBytesMeta(body, trace.DecodeOptions{})
		if err != nil {
			t.Errorf("pushed bytes do not decode: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, received{task: tt.Task, meta: meta})
		mu.Unlock()
		ackHandler("accepted", tt.Task)(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, func() []received {
		mu.Lock()
		defer mu.Unlock()
		return append([]received(nil), got...)
	}
}

// TestPushTraceAndCheckpointFraming pins the wire contract of the
// typed push helpers: PushTrace ships a complete record, while
// PushCheckpoint ships an incremental record carrying the stream seq.
func TestPushTraceAndCheckpointFraming(t *testing.T) {
	srv, recvd := captureServer(t)
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushCheckpoint(context.Background(), streamTrace("w/ckpt"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushTrace(context.Background(), streamTrace("w/final"), trace.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushTrace(context.Background(), streamTrace("w/json"), trace.FormatJSON); err != nil {
		t.Fatal(err)
	}
	got := recvd()
	if len(got) != 3 {
		t.Fatalf("server decoded %d records, want 3", len(got))
	}
	if got[0].task != "w/ckpt" || !got[0].meta.Incremental || got[0].meta.CheckpointSeq != 3 {
		t.Errorf("checkpoint framing = %+v, want incremental seq 3", got[0])
	}
	if got[1].task != "w/final" || got[1].meta.Incremental {
		t.Errorf("final framing = %+v, want complete record", got[1])
	}
	if got[2].task != "w/json" || got[2].meta.Incremental {
		t.Errorf("json framing = %+v, want complete record", got[2])
	}
}

// TestStreamSinkDelivers pins the happy path: emits count, no error,
// and both record kinds reach the server with the right framing.
func TestStreamSinkDelivers(t *testing.T) {
	srv, recvd := captureServer(t)
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)
	sink.EmitCheckpoint(streamTrace("w/task"), 1)
	sink.EmitCheckpoint(streamTrace("w/task"), 2)
	sink.EmitFinal(streamTrace("w/task"))
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	cks, finals, dropped := sink.Stats()
	if cks != 2 || finals != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/0", cks, finals, dropped)
	}
	if got := recvd(); len(got) != 3 || !got[0].meta.Incremental || got[2].meta.Incremental {
		t.Fatalf("server decoded %+v", got)
	}
}

// TestStreamSinkRecordsDropsAndFirstError pins degraded streaming:
// exhausted retries drop the record, count it, and retain the FIRST
// error for Err while later emits keep flowing.
func TestStreamSinkRecordsDropsAndFirstError(t *testing.T) {
	var fail bool
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		f := fail
		mu.Unlock()
		if f {
			http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
			return
		}
		ackHandler("accepted", "w/task")(w, r)
	}))
	defer srv.Close()
	setFail := func(v bool) { mu.Lock(); fail = v; mu.Unlock() }

	opts := fastOptions()
	opts.MaxAttempts = 2
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)

	setFail(true)
	sink.EmitCheckpoint(streamTrace("w/task"), 1)
	sink.EmitFinal(streamTrace("w/task"))
	setFail(false)
	sink.EmitCheckpoint(streamTrace("w/task"), 2)

	first := sink.Err()
	if first == nil || !strings.Contains(first.Error(), "stream checkpoint w/task@1") {
		t.Fatalf("Err = %v, want the first (checkpoint) failure", first)
	}
	cks, finals, dropped := sink.Stats()
	if cks != 1 || finals != 0 || dropped != 2 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/2", cks, finals, dropped)
	}
}

// TestPermanentErrorWrapsCause pins that a permanent rejection's
// detail survives the retry loop's wrapping and unwraps to the cause.
func TestPermanentErrorWrapsCause(t *testing.T) {
	cause := fmt.Errorf("status 400: bad trace payload")
	pe := &permanentError{cause}
	if pe.Error() != cause.Error() {
		t.Errorf("Error() = %q, want %q", pe.Error(), cause.Error())
	}
	if !errors.Is(pe, cause) {
		t.Error("permanentError does not unwrap to its cause")
	}
}
