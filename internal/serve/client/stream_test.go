package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dayu/internal/trace"
)

func streamTrace(task string) *trace.TaskTrace {
	return &trace.TaskTrace{
		Task: task, StartNS: 100, EndNS: 900,
		Files: []trace.FileRecord{{
			Task: task, File: "out.h5",
			OpenNS: 150, CloseNS: 800,
			Ops: 2, Writes: 2, BytesWritten: 2048,
			MetaOps: 1, DataOps: 1, MetaBytes: 64, DataBytes: 1984,
		}},
	}
}

// received is what the capture server decoded from one /v1/ingest body.
type received struct {
	task string
	meta trace.RecordMeta
}

// captureServer acknowledges every push and decodes each body so tests
// can assert the wire framing (incremental flag, checkpoint seq).
func captureServer(t *testing.T) (*httptest.Server, func() []received) {
	t.Helper()
	var mu sync.Mutex
	var got []received
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		if _, err := r.Body.Read(body); err != nil && err.Error() != "EOF" {
			t.Errorf("read push body: %v", err)
		}
		tt, meta, err := trace.DecodeBytesMeta(body, trace.DecodeOptions{})
		if err != nil {
			t.Errorf("pushed bytes do not decode: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, received{task: tt.Task, meta: meta})
		mu.Unlock()
		ackHandler("accepted", tt.Task)(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, func() []received {
		mu.Lock()
		defer mu.Unlock()
		return append([]received(nil), got...)
	}
}

// TestPushTraceAndCheckpointFraming pins the wire contract of the
// typed push helpers: PushTrace ships a complete record, while
// PushCheckpoint ships an incremental record carrying the stream seq.
func TestPushTraceAndCheckpointFraming(t *testing.T) {
	srv, recvd := captureServer(t)
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushCheckpoint(context.Background(), streamTrace("w/ckpt"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushTrace(context.Background(), streamTrace("w/final"), trace.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushTrace(context.Background(), streamTrace("w/json"), trace.FormatJSON); err != nil {
		t.Fatal(err)
	}
	got := recvd()
	if len(got) != 3 {
		t.Fatalf("server decoded %d records, want 3", len(got))
	}
	if got[0].task != "w/ckpt" || !got[0].meta.Incremental || got[0].meta.CheckpointSeq != 3 {
		t.Errorf("checkpoint framing = %+v, want incremental seq 3", got[0])
	}
	if got[1].task != "w/final" || got[1].meta.Incremental {
		t.Errorf("final framing = %+v, want complete record", got[1])
	}
	if got[2].task != "w/json" || got[2].meta.Incremental {
		t.Errorf("json framing = %+v, want complete record", got[2])
	}
}

// TestStreamSinkDelivers pins the happy path: emits count, no error,
// and both record kinds reach the server with the right framing.
func TestStreamSinkDelivers(t *testing.T) {
	srv, recvd := captureServer(t)
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)
	sink.EmitCheckpoint(streamTrace("w/task"), 1)
	sink.EmitCheckpoint(streamTrace("w/task"), 2)
	sink.EmitFinal(streamTrace("w/task"))
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	cks, finals, dropped := sink.Stats()
	if cks != 2 || finals != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/0", cks, finals, dropped)
	}
	if got := recvd(); len(got) != 3 || !got[0].meta.Incremental || got[2].meta.Incremental {
		t.Fatalf("server decoded %+v", got)
	}
}

// TestStreamSinkRecordsDropsAndFirstError pins degraded streaming:
// exhausted retries drop the record, count it, and retain the FIRST
// error for Err while later emits keep flowing.
func TestStreamSinkRecordsDropsAndFirstError(t *testing.T) {
	var fail bool
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		f := fail
		mu.Unlock()
		if f {
			http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
			return
		}
		ackHandler("accepted", "w/task")(w, r)
	}))
	defer srv.Close()
	setFail := func(v bool) { mu.Lock(); fail = v; mu.Unlock() }

	opts := fastOptions()
	opts.MaxAttempts = 2
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)

	setFail(true)
	sink.EmitCheckpoint(streamTrace("w/task"), 1)
	sink.EmitFinal(streamTrace("w/task"))
	setFail(false)
	sink.EmitCheckpoint(streamTrace("w/task"), 2)

	first := sink.Err()
	if first == nil || !strings.Contains(first.Error(), "stream checkpoint w/task@1") {
		t.Fatalf("Err = %v, want the first (checkpoint) failure", first)
	}
	cks, finals, dropped := sink.Stats()
	if cks != 1 || finals != 0 || dropped != 2 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/2", cks, finals, dropped)
	}
}

// streamTraceN returns streamTrace(task) grown by extra file rows —
// monotone growth an exact delta exists for.
func streamTraceN(task string, extra int) *trace.TaskTrace {
	tt := streamTrace(task)
	for i := 0; i < extra; i++ {
		tt.EndNS += 300
		tt.Files = append(tt.Files, trace.FileRecord{
			Task: task, File: fmt.Sprintf("out_extra_%d.h5", i),
			OpenNS: tt.EndNS - 250, CloseNS: tt.EndNS - 100,
			Ops: 2, Writes: 2, BytesWritten: 1024,
			MetaOps: 1, DataOps: 1, MetaBytes: 32, DataBytes: 992,
		})
	}
	return tt
}

// TestStreamSinkDeltaFraming pins delta mode's wire contract: first
// checkpoint cumulative (no base), subsequent ones delta-framed
// against the acknowledged base, and the base dropped by the final so
// a reused task name starts cumulative again.
func TestStreamSinkDeltaFraming(t *testing.T) {
	srv, recvd := captureServer(t)
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSinkOpts(context.Background(), c, StreamOptions{Delta: true})
	sink.EmitCheckpoint(streamTraceN("w/task", 0), 1)
	sink.EmitCheckpoint(streamTraceN("w/task", 1), 2)
	sink.EmitFinal(streamTraceN("w/task", 2))
	sink.EmitCheckpoint(streamTraceN("w/task", 2), 3)
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	got := recvd()
	if len(got) != 4 {
		t.Fatalf("server decoded %d records, want 4", len(got))
	}
	if !got[0].meta.Incremental || got[0].meta.Delta || got[0].meta.CheckpointSeq != 1 {
		t.Errorf("first checkpoint framing = %+v, want cumulative seq 1", got[0].meta)
	}
	if !got[1].meta.Delta || got[1].meta.CheckpointSeq != 2 || got[1].meta.DeltaBaseSeq != 1 {
		t.Errorf("second checkpoint framing = %+v, want delta 1->2", got[1].meta)
	}
	if got[2].meta.Incremental {
		t.Errorf("final framing = %+v, want complete record", got[2].meta)
	}
	if got[3].meta.Delta {
		t.Errorf("post-final checkpoint framing = %+v, want cumulative (final dropped the base)", got[3].meta)
	}

	cks, finals, dropped := sink.Stats()
	if cks != 3 || finals != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 3/1/0", cks, finals, dropped)
	}
	deltas, resyncs, pushed := sink.DeltaStats()
	if deltas != 1 || resyncs != 0 || pushed <= 0 {
		t.Fatalf("delta stats = %d/%d/%d, want 1 delta, 0 resyncs, >0 bytes", deltas, resyncs, pushed)
	}
}

// TestStreamSinkDeltaResync pins the NACK protocol: a 409 resync is
// not an error — the sink re-pushes the same checkpoint cumulatively
// at the same sequence, then resumes delta framing from the new base.
func TestStreamSinkDeltaResync(t *testing.T) {
	var mu sync.Mutex
	var got []received
	deltasSeen := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		if _, err := r.Body.Read(body); err != nil && err.Error() != "EOF" {
			t.Errorf("read push body: %v", err)
		}
		tt, meta, err := trace.DecodeBytesMeta(body, trace.DecodeOptions{})
		if err != nil {
			t.Errorf("pushed bytes do not decode: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, received{task: tt.Task, meta: meta})
		first := meta.Delta && func() bool { deltasSeen++; return deltasSeen == 1 }()
		mu.Unlock()
		if first {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(PushResult{Status: "resync", Task: tt.Task, Seq: 1})
			return
		}
		ackHandler("accepted", tt.Task)(w, r)
	}))
	defer srv.Close()

	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSinkOpts(context.Background(), c, StreamOptions{Delta: true})
	sink.EmitCheckpoint(streamTraceN("w/task", 0), 1)
	sink.EmitCheckpoint(streamTraceN("w/task", 1), 2) // delta NACKed -> cumulative
	sink.EmitCheckpoint(streamTraceN("w/task", 2), 3) // delta again, accepted
	if err := sink.Err(); err != nil {
		t.Fatalf("resync surfaced as an error: %v", err)
	}

	mu.Lock()
	wire := append([]received(nil), got...)
	mu.Unlock()
	if len(wire) != 4 {
		t.Fatalf("server saw %d records, want 4 (cum, NACKed delta, cum, delta)", len(wire))
	}
	if wire[1].meta.Delta != true || wire[1].meta.CheckpointSeq != 2 {
		t.Errorf("second record = %+v, want the NACKed delta@2", wire[1].meta)
	}
	if wire[2].meta.Delta || wire[2].meta.CheckpointSeq != 2 {
		t.Errorf("third record = %+v, want the cumulative resync@2", wire[2].meta)
	}
	if !wire[3].meta.Delta || wire[3].meta.CheckpointSeq != 3 || wire[3].meta.DeltaBaseSeq != 2 {
		t.Errorf("fourth record = %+v, want delta 2->3", wire[3].meta)
	}

	cks, _, dropped := sink.Stats()
	if cks != 3 || dropped != 0 {
		t.Fatalf("stats = %d checkpoints / %d dropped, want 3/0", cks, dropped)
	}
	deltas, resyncs, _ := sink.DeltaStats()
	if deltas != 1 || resyncs != 1 {
		t.Fatalf("delta stats = %d deltas / %d resyncs, want 1/1", deltas, resyncs)
	}
}

// TestStreamSinkDuplicateIsSuccess pins that a content-hash duplicate
// acknowledgement counts as a delivered checkpoint, never a drop: the
// server already holds identical bytes.
func TestStreamSinkDuplicateIsSuccess(t *testing.T) {
	srv := httptest.NewServer(ackHandler("duplicate", "w/task"))
	defer srv.Close()
	c, err := New(srv.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)
	sink.EmitCheckpoint(streamTrace("w/task"), 1)
	sink.EmitCheckpoint(streamTrace("w/task"), 1) // identical retry
	if err := sink.Err(); err != nil {
		t.Fatalf("duplicate ack surfaced as an error: %v", err)
	}
	cks, _, dropped := sink.Stats()
	if cks != 2 || dropped != 0 {
		t.Fatalf("stats = %d checkpoints / %d dropped, want 2/0 (duplicates are successes)", cks, dropped)
	}
}

// TestStreamSinkPermanentErrorPrecedence pins Err's contract: a
// permanent rejection (a protocol problem retries cannot fix)
// supersedes an earlier transient give-up, and is not displaced by a
// later one.
func TestStreamSinkPermanentErrorPrecedence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		if _, err := r.Body.Read(body); err != nil && err.Error() != "EOF" {
			t.Errorf("read push body: %v", err)
		}
		tt, _, err := trace.DecodeBytesMeta(body, trace.DecodeOptions{})
		if err == nil && tt.Task == "w/bad" {
			http.Error(w, "bad trace payload", http.StatusBadRequest)
			return
		}
		http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	opts := fastOptions()
	opts.MaxAttempts = 2
	c, err := New(srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewStreamSink(context.Background(), c)

	sink.EmitCheckpoint(streamTrace("w/task"), 1) // transient give-up
	if err := sink.Err(); err == nil || IsPermanent(err) {
		t.Fatalf("after transient give-up Err = %v, want non-permanent error", err)
	}
	sink.EmitCheckpoint(streamTrace("w/bad"), 2) // permanent rejection
	err = sink.Err()
	if err == nil || !IsPermanent(err) || !strings.Contains(err.Error(), "w/bad") {
		t.Fatalf("Err = %v, want the permanent w/bad rejection", err)
	}
	sink.EmitCheckpoint(streamTrace("w/task"), 3) // later transient must not displace it
	if got := sink.Err(); got == nil || !strings.Contains(got.Error(), "w/bad") {
		t.Fatalf("Err = %v, want the permanent rejection retained", got)
	}
	_, _, dropped := sink.Stats()
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
}

// TestPermanentErrorWrapsCause pins that a permanent rejection's
// detail survives the retry loop's wrapping and unwraps to the cause.
func TestPermanentErrorWrapsCause(t *testing.T) {
	cause := fmt.Errorf("status 400: bad trace payload")
	pe := &permanentError{cause}
	if pe.Error() != cause.Error() {
		t.Errorf("Error() = %q, want %q", pe.Error(), cause.Error())
	}
	if !errors.Is(pe, cause) {
		t.Error("permanentError does not unwrap to its cause")
	}
}
