package client

import (
	"context"
	"fmt"
	"sync"

	"dayu/internal/trace"
)

// StreamSink adapts a Client to the tracer's streaming Sink interface
// (satisfied structurally — this package does not import the tracer):
// checkpoints go out as incremental records, finals as complete trace
// records, both through the durable /v1/ingest path with the client's
// usual retry policy.
//
// Pushes are synchronous, as the Sink contract requires: the tracer
// keeps profiling into the same buffers after EmitCheckpoint returns,
// so the record must be encoded (and here, delivered) before
// returning. A checkpoint that exhausts its retries is dropped — the
// next checkpoint or the final supersedes it anyway — but the first
// error is retained for Err so the caller can report degraded
// streaming. Safe for concurrent use by parallel stages.
type StreamSink struct {
	client *Client
	ctx    context.Context

	mu          sync.Mutex
	err         error
	checkpoints int
	finals      int
	dropped     int
}

// NewStreamSink builds a sink pushing through c under ctx.
func NewStreamSink(ctx context.Context, c *Client) *StreamSink {
	return &StreamSink{client: c, ctx: ctx}
}

// EmitCheckpoint pushes one cumulative checkpoint record.
func (s *StreamSink) EmitCheckpoint(t *trace.TaskTrace, seq uint64) {
	if _, err := s.client.PushCheckpoint(s.ctx, t, seq); err != nil {
		s.record(fmt.Errorf("stream checkpoint %s@%d: %w", t.Task, seq, err))
		return
	}
	s.mu.Lock()
	s.checkpoints++
	s.mu.Unlock()
}

// EmitFinal pushes the completed trace record.
func (s *StreamSink) EmitFinal(t *trace.TaskTrace) {
	if _, err := s.client.PushTrace(s.ctx, t, trace.FormatBinary); err != nil {
		s.record(fmt.Errorf("stream final %s: %w", t.Task, err))
		return
	}
	s.mu.Lock()
	s.finals++
	s.mu.Unlock()
}

func (s *StreamSink) record(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped++
	if s.err == nil {
		s.err = err
	}
}

// Err returns the first delivery error, if any: streaming is
// best-effort per record, but the caller should know the live view
// may be missing data.
func (s *StreamSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats reports delivered checkpoint/final counts and records dropped
// after exhausting retries.
func (s *StreamSink) Stats() (checkpoints, finals, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoints, s.finals, s.dropped
}
