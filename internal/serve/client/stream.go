package client

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"dayu/internal/trace"
)

// StreamSink adapts a Client to the tracer's streaming Sink interface
// (satisfied structurally — this package does not import the tracer):
// checkpoints go out as incremental records, finals as complete trace
// records, both through the durable /v1/ingest path with the client's
// usual retry policy.
//
// In delta mode the sink retains each task's last acknowledged
// checkpoint and ships only the rows changed since it (trace.Diff).
// The first checkpoint of a task is always cumulative — the server
// has no base to fold onto — and so is any checkpoint for which no
// exact delta exists. When the server NACKs a delta because its
// retained partial is at a different sequence (a crash, a restart, or
// an eviction), the sink re-pushes the same checkpoint cumulatively at
// the same sequence: the resync is one extra round trip, after which
// delta framing resumes.
//
// Pushes are synchronous, as the Sink contract requires: the tracer
// keeps profiling into the same buffers after EmitCheckpoint returns,
// so the record must be encoded (and here, delivered) before
// returning. A checkpoint that exhausts its retries is dropped — the
// next checkpoint or the final supersedes it anyway — but an error is
// retained for Err so the caller can report degraded streaming; a
// permanent rejection takes precedence over an earlier transient
// give-up because it indicates a protocol problem retries cannot fix.
// A checkpoint acknowledged as a content-hash duplicate is a success
// (the server already holds identical bytes), never a drop. Safe for
// concurrent use by parallel stages.
type StreamSink struct {
	client *Client
	ctx    context.Context

	mu           sync.Mutex
	err          error
	errPermanent bool
	delta        bool
	bases        map[string]streamBase
	checkpoints  int
	deltas       int
	resyncs      int
	finals       int
	dropped      int
	pushedBytes  int64
}

// streamBase is a task's last acknowledged checkpoint, the diff base
// for the next delta. Retaining the trace is safe: the tracer's
// Checkpoint allocates fresh row slices per call.
type streamBase struct {
	seq uint64
	t   *trace.TaskTrace
}

// StreamOptions tunes a StreamSink.
type StreamOptions struct {
	// Delta enables delta checkpoint framing (cumulative fallback on
	// first checkpoint, inexact diffs, and server resync NACKs).
	Delta bool
}

// NewStreamSink builds a sink pushing cumulative checkpoints through c
// under ctx.
func NewStreamSink(ctx context.Context, c *Client) *StreamSink {
	return NewStreamSinkOpts(ctx, c, StreamOptions{})
}

// NewStreamSinkOpts builds a sink with explicit options.
func NewStreamSinkOpts(ctx context.Context, c *Client, opts StreamOptions) *StreamSink {
	return &StreamSink{client: c, ctx: ctx, delta: opts.Delta, bases: make(map[string]streamBase)}
}

// EmitCheckpoint pushes one checkpoint record: cumulative, or — in
// delta mode, when the task has an acknowledged base and an exact diff
// exists — delta-framed with resync fallback.
func (s *StreamSink) EmitCheckpoint(t *trace.TaskTrace, seq uint64) {
	s.mu.Lock()
	base, haveBase := s.bases[t.Task]
	useDelta := s.delta && haveBase
	s.mu.Unlock()

	if useDelta {
		if d, ok := trace.Diff(base.t, t); ok {
			var buf bytes.Buffer
			if err := d.EncodeBinaryOpts(&buf, trace.BinaryOptions{
				Incremental:   true,
				CheckpointSeq: seq,
				Delta:         true,
				DeltaBaseSeq:  base.seq,
			}); err != nil {
				s.record(fmt.Errorf("stream delta checkpoint %s@%d: %w", t.Task, seq, err))
				return
			}
			res, err := s.client.PushBytes(s.ctx, buf.Bytes())
			if err != nil {
				s.record(fmt.Errorf("stream delta checkpoint %s@%d: %w", t.Task, seq, err))
				return
			}
			if !res.NeedsResync() {
				s.acked(t, seq, true, int64(buf.Len()))
				return
			}
			// The server's partial is not at our base: fall through to a
			// cumulative re-push of this same checkpoint.
			s.mu.Lock()
			s.resyncs++
			s.mu.Unlock()
		}
	}

	var buf bytes.Buffer
	if err := t.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
		s.record(fmt.Errorf("stream checkpoint %s@%d: %w", t.Task, seq, err))
		return
	}
	if _, err := s.client.PushBytes(s.ctx, buf.Bytes()); err != nil {
		s.record(fmt.Errorf("stream checkpoint %s@%d: %w", t.Task, seq, err))
		return
	}
	s.acked(t, seq, false, int64(buf.Len()))
}

// EmitFinal pushes the completed trace record.
func (s *StreamSink) EmitFinal(t *trace.TaskTrace) {
	var buf bytes.Buffer
	if err := t.EncodeFormat(&buf, trace.FormatBinary); err != nil {
		s.record(fmt.Errorf("stream final %s: %w", t.Task, err))
		return
	}
	if _, err := s.client.PushBytes(s.ctx, buf.Bytes()); err != nil {
		s.record(fmt.Errorf("stream final %s: %w", t.Task, err))
		return
	}
	s.mu.Lock()
	s.finals++
	s.pushedBytes += int64(buf.Len())
	delete(s.bases, t.Task)
	s.mu.Unlock()
}

// acked books one delivered checkpoint and advances the task's diff
// base to it.
func (s *StreamSink) acked(t *trace.TaskTrace, seq uint64, wasDelta bool, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkpoints++
	if wasDelta {
		s.deltas++
	}
	s.pushedBytes += size
	if s.delta {
		s.bases[t.Task] = streamBase{seq: seq, t: t}
	}
}

func (s *StreamSink) record(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped++
	permanent := IsPermanent(err)
	if s.err == nil || (permanent && !s.errPermanent) {
		s.err, s.errPermanent = err, permanent
	}
}

// Err returns the retained delivery error, if any: the first permanent
// rejection when one occurred, else the first transient give-up.
// Streaming is best-effort per record, but the caller should know the
// live view may be missing data.
func (s *StreamSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats reports delivered checkpoint/final counts and records dropped
// after exhausting retries.
func (s *StreamSink) Stats() (checkpoints, finals, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoints, s.finals, s.dropped
}

// DeltaStats reports delta-mode bookkeeping: checkpoints that went out
// delta-framed, resync round trips forced by server NACKs, and the
// total encoded bytes of every delivered record.
func (s *StreamSink) DeltaStats() (deltas, resyncs int, pushedBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltas, s.resyncs, s.pushedBytes
}
