package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dayu/internal/obs"
	"dayu/internal/trace"
)

func TestServeCorruptTraceReportsPath(t *testing.T) {
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{Dir: dir, Registry: obs.NewRegistry(), PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	get(t, srv, "/v1/ftg")

	// Corrupt one trace file in place.
	paths, _ := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	corrupt := paths[0]
	if err := os.WriteFile(corrupt, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 1)

	// Requests still answer from the last good snapshot...
	resp, err := http.Get(srv.URL + "/v1/ftg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request during corruption = %d, want 200 (stale snapshot)", resp.StatusCode)
	}

	// ...and /healthz names the corrupt file.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("health status = %q, want degraded", h.Status)
	}
	if !strings.Contains(h.LastIngestError, corrupt) {
		t.Errorf("health error %q does not name the corrupt file %s", h.LastIngestError, corrupt)
	}

	// Repairing the file clears the degradation.
	fixed := &trace.TaskTrace{Task: "repaired", StartNS: 1, EndNS: 2}
	if _, err := fixed.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(corrupt); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 2)
	get(t, srv, "/v1/ftg")
	hresp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp2.Body.Close()
	var h2 Health
	if err := json.NewDecoder(hresp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Status != "ok" {
		t.Errorf("health after repair = %q, want ok", h2.Status)
	}
}

func TestServeBadRequests(t *testing.T) {
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{Dir: dir, PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	for path, want := range map[string]int{
		"/v1/ftg?format=pdf":  http.StatusBadRequest,
		"/v1/plan?nodes=zero": http.StatusBadRequest,
		"/v1/plan?nodes=-1":   http.StatusBadRequest,
		"/nope":               http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	resp, err := http.Post(srv.URL+"/v1/ftg", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/ftg = %d, want 405", resp.StatusCode)
	}
}

func TestServeTasksAndMetrics(t *testing.T) {
	dir := writeFixtureDir(t)
	reg := obs.NewRegistry()
	s := mustServer(t, Config{Dir: dir, Registry: reg, PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	var listing struct {
		Snapshot string     `json:"snapshot"`
		Tasks    []TaskInfo `json:"tasks"`
	}
	if err := json.Unmarshal(get(t, srv, "/v1/tasks"), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tasks) != 24 {
		t.Fatalf("tasks = %d, want 24", len(listing.Tasks))
	}
	if listing.Snapshot == "" {
		t.Error("missing snapshot id")
	}
	for _, ti := range listing.Tasks {
		if ti.Task == "" || ti.Hash == "" || ti.File == "" || ti.Size <= 0 {
			t.Fatalf("incomplete task info: %+v", ti)
		}
	}

	get(t, srv, "/v1/ftg")
	get(t, srv, "/v1/ftg") // response-cache hit
	body := string(get(t, srv, "/metrics"))
	for _, want := range []string{
		"dayu_serve_trace_parses_total 24",
		`dayu_serve_cache_hits_total{cache="response"}`,
		`dayu_serve_cache_hits_total{cache="snapshot"}`,
		`dayu_serve_requests_total{path="/v1/ftg"} 2`,
		"dayu_serve_snapshot_tasks 24",
		"dayu_serve_ingests_total 1",
		"dayu_serve_inflight_requests 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServeBackgroundWatcher(t *testing.T) {
	dir := writeFixtureDir(t)
	reg := obs.NewRegistry()
	s := mustServer(t, Config{Dir: dir, Registry: reg, Poll: 5 * time.Millisecond, PlanOptions: testPlanOpts})
	s.Start()
	defer s.Close()

	// Add a task; the watcher must pick it up without any request.
	extra := &trace.TaskTrace{Task: "watched_task", StartNS: 5, EndNS: 10}
	if _, err := extra.Save(dir); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := s.snap.Load(); snap != nil && len(snap.tasks) == 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never ingested the new trace")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServeMissingDirectory(t *testing.T) {
	s := mustServer(t, Config{Dir: filepath.Join(t.TempDir(), "nope")})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/ftg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("missing dir GET /v1/ftg = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("missing dir /healthz = %d, want 503", hresp.StatusCode)
	}
}

func TestServeEmptyDirectory(t *testing.T) {
	s := mustServer(t, Config{Dir: t.TempDir()})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	// An empty directory is a valid (empty) snapshot, matching
	// BuildFTG(nil, nil).
	body := get(t, srv, "/v1/ftg")
	if !strings.Contains(string(body), "File-Task Graph") {
		t.Errorf("empty-dir FTG body: %s", body)
	}
}

// TestServeBinaryTraceDirEquivalent converts the fixture directory to
// dtb/v2 binary traces and asserts the server ingests it and answers
// every analysis endpoint with bytes identical to the JSON-backed
// server: the wire format must be invisible to downstream consumers.
func TestServeBinaryTraceDirEquivalent(t *testing.T) {
	jsonDir := writeFixtureDir(t)
	traces, err := trace.LoadDir(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.LoadManifest(jsonDir)
	if err != nil {
		t.Fatal(err)
	}
	binDir := t.TempDir()
	for _, tt := range traces {
		if _, err := tt.SaveFormat(binDir, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
	}
	if err := trace.SaveManifest(binDir, m); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, binDir, 0)

	js := mustServer(t, Config{Dir: jsonDir, Registry: obs.NewRegistry(), PlanOptions: testPlanOpts})
	defer js.Close()
	bs := mustServer(t, Config{Dir: binDir, Registry: obs.NewRegistry(), PlanOptions: testPlanOpts})
	defer bs.Close()
	jsrv := httptest.NewServer(js)
	defer jsrv.Close()
	bsrv := httptest.NewServer(bs)
	defer bsrv.Close()

	for _, path := range []string{"/v1/ftg", "/v1/sdg", "/v1/diagnose", "/v1/plan"} {
		want := get(t, jsrv, path)
		got := get(t, bsrv, path)
		if string(got) != string(want) {
			t.Errorf("%s over binary traces differs from JSON traces", path)
		}
	}
}
