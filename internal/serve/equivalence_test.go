package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/obs"
	"dayu/internal/optimizer"
	"dayu/internal/trace"
	"dayu/internal/workloads"
)

// testPlanOpts mirrors the batch CLI's `dayu plan` defaults.
var testPlanOpts = optimizer.LocalityOptions{FastTier: "nvme", Nodes: 2, StageOutDisposable: true}

// mustServer builds a server, failing the test on construction errors
// (only WAL open/recovery failures are construction errors).
func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// writeFixtureDir saves a small deterministic synthetic workflow.
func writeFixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	traces, m := workloads.GenerateSyntheticTraces(workloads.SyntheticTraceConfig{
		Tasks: 24, Stages: 4, FilesPerStage: 3, DatasetsPerTask: 2,
	})
	for _, tt := range traces {
		if _, err := tt.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := trace.SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 0)
	return dir
}

// bumpMtimes pins every file's mtime to a distinct, generation-tagged
// instant so mutations are always visible to the stat-based scan
// regardless of filesystem timestamp granularity.
func bumpMtimes(t *testing.T, dir string, gen int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(gen) * time.Hour)
	for i, e := range entries {
		path := filepath.Join(dir, e.Name())
		when := base.Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
	}
}

// batchExpect renders every endpoint's body via the one-shot batch
// path: fresh LoadDir + batch builders, encoded exactly as the CLI
// writes them.
func batchExpect(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	traces, err := trace.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}

	ftg := analyzer.BuildFTG(traces, m)
	sdg := analyzer.BuildSDG(traces, m, analyzer.Options{})
	for name, g := range map[string]interface {
		DOT() string
		HTML() string
		SVG() string
	}{"ftg": ftg, "sdg": sdg} {
		js, err := json.MarshalIndent(g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		out["/v1/"+name] = js
		out["/v1/"+name+"?format=dot"] = []byte(g.DOT())
		out["/v1/"+name+"?format=html"] = []byte(g.HTML())
		out["/v1/"+name+"?format=svg"] = []byte(g.SVG())
	}

	findings := diagnose.Analyze(traces, m, diagnose.Thresholds{})
	diagJSON, err := diagnose.EncodeJSON(findings)
	if err != nil {
		t.Fatal(err)
	}
	out["/v1/diagnose"] = diagJSON

	plan := optimizer.PlanDataLocality(traces, m, testPlanOpts)
	planJSON, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out["/v1/plan"] = planJSON
	return out
}

func get(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
	}
	return body
}

func checkAllEndpoints(t *testing.T, srv *httptest.Server, dir, phase string) {
	t.Helper()
	want := batchExpect(t, dir)
	for path, expected := range want {
		got := get(t, srv, path)
		if !bytes.Equal(got, expected) {
			t.Errorf("%s: GET %s differs from batch build (%d vs %d bytes)",
				phase, path, len(got), len(expected))
		}
	}
}

// TestServeEquivalence pins the acceptance criterion: serve responses
// are byte-identical to the batch path across add, modify and delete
// of task traces, and an unchanged directory answers with zero trace
// re-parses (asserted via the obs parse/cache counters).
func TestServeEquivalence(t *testing.T) {
	dir := writeFixtureDir(t)
	reg := obs.NewRegistry()
	s := mustServer(t, Config{Dir: dir, Registry: reg, PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	parses := reg.Counter("dayu_serve_trace_parses_total")
	snapHits := reg.Counter(obs.Name("dayu_serve_cache_hits_total", "cache", "snapshot"))
	contribMisses := reg.Counter(obs.Name("dayu_serve_cache_misses_total", "cache", "contribution"))
	contribHits := reg.Counter(obs.Name("dayu_serve_cache_hits_total", "cache", "contribution"))

	checkAllEndpoints(t, srv, dir, "initial")
	if parses.Value() != 24 {
		t.Fatalf("initial ingest parsed %d traces, want 24", parses.Value())
	}

	// Unchanged directory: repeat requests re-parse nothing and hit the
	// snapshot cache on every refresh.
	parsesBefore, hitsBefore := parses.Value(), snapHits.Value()
	for i := 0; i < 3; i++ {
		get(t, srv, "/v1/ftg")
		get(t, srv, "/v1/sdg")
	}
	if parses.Value() != parsesBefore {
		t.Fatalf("unchanged directory re-parsed traces: %d -> %d", parsesBefore, parses.Value())
	}
	if snapHits.Value() < hitsBefore+6 {
		t.Fatalf("snapshot cache hits %d -> %d, want +6", hitsBefore, snapHits.Value())
	}

	// Modify one task without touching its object descriptions: exactly
	// one re-parse and exactly two contribution recomputes (its FTG and
	// SDG shares); every other contribution merges from cache.
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(paths))
	}
	victim := paths[3]
	tt, err := trace.Load(victim)
	if err != nil {
		t.Fatal(err)
	}
	tt.Files[0].BytesRead += 4096
	if _, err := tt.Save(dir); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 1)

	parsesBefore = parses.Value()
	missesBefore, chitsBefore := contribMisses.Value(), contribHits.Value()
	checkAllEndpoints(t, srv, dir, "modify")
	if got := parses.Value() - parsesBefore; got != 1 {
		t.Errorf("modify: re-parsed %d traces, want exactly 1", got)
	}
	if got := contribMisses.Value() - missesBefore; got != 2 {
		t.Errorf("modify: recomputed %d contributions, want exactly 2 (FTG+SDG of the changed task)", got)
	}
	if got := contribHits.Value() - chitsBefore; got != 2*23 {
		t.Errorf("modify: %d contribution cache hits, want %d", got, 2*23)
	}

	// Add a new task trace (not in the manifest: ordered last, as in
	// the batch path).
	extra := &trace.TaskTrace{
		Task: "zz/task_extra", StartNS: 1 << 40, EndNS: 1<<40 + 1000,
		Files: []trace.FileRecord{{
			Task: "zz/task_extra", File: "extra_out.h5",
			OpenNS: 1<<40 + 10, CloseNS: 1<<40 + 900,
			Ops: 4, Writes: 4, BytesWritten: 1 << 14,
			MetaOps: 1, DataOps: 3, MetaBytes: 64, DataBytes: 1<<14 - 64,
		}},
	}
	if _, err := extra.Save(dir); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 2)
	checkAllEndpoints(t, srv, dir, "add")

	// Delete a task trace.
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 3)
	checkAllEndpoints(t, srv, dir, "delete")

	// Touch without content change: re-hash, never re-parse, snapshot
	// unchanged.
	parsesBefore, hitsBefore = parses.Value(), snapHits.Value()
	bumpMtimes(t, dir, 4)
	get(t, srv, "/v1/ftg")
	if parses.Value() != parsesBefore {
		t.Errorf("touch: re-parsed traces")
	}
	if snapHits.Value() != hitsBefore+1 {
		t.Errorf("touch: snapshot hits %d -> %d, want +1", hitsBefore, snapHits.Value())
	}
}

// TestServeManifestChange pins equivalence when only the manifest
// (task ordering) changes: no trace re-parses, but a new snapshot with
// the new merge order.
func TestServeManifestChange(t *testing.T) {
	dir := writeFixtureDir(t)
	reg := obs.NewRegistry()
	s := mustServer(t, Config{Dir: dir, Registry: reg, PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()
	checkAllEndpoints(t, srv, dir, "initial")

	m, err := trace.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the task order.
	for i, j := 0, len(m.TaskOrder)-1; i < j; i, j = i+1, j-1 {
		m.TaskOrder[i], m.TaskOrder[j] = m.TaskOrder[j], m.TaskOrder[i]
	}
	if err := trace.SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	bumpMtimes(t, dir, 1)

	parses := reg.Counter("dayu_serve_trace_parses_total")
	before := parses.Value()
	checkAllEndpoints(t, srv, dir, "manifest-reorder")
	if parses.Value() != before {
		t.Errorf("manifest change re-parsed %d traces, want 0", parses.Value()-before)
	}
}

// TestServeConcurrentRequestsDuringIngest drives every endpoint from
// many goroutines while trace files mutate and ingests run — the
// -race gate for the single-writer snapshot-swap model.
func TestServeConcurrentRequestsDuringIngest(t *testing.T) {
	dir := writeFixtureDir(t)
	s := mustServer(t, Config{Dir: dir, Registry: obs.NewRegistry(), PlanOptions: testPlanOpts})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	stop := make(chan struct{})
	errs := make(chan error, 16)
	paths := []string{"/v1/ftg", "/v1/sdg?format=dot", "/v1/diagnose", "/v1/plan", "/v1/tasks", "/healthz", "/metrics"}
	for w := 0; w < 8; w++ {
		go func(w int) {
			client := srv.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				resp, err := client.Get(srv.URL + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	victims, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(victims) == 0 {
		t.Fatal("no trace files")
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for gen := 1; time.Now().Before(deadline); gen++ {
		victim := victims[gen%len(victims)]
		tt, err := trace.Load(victim)
		if err != nil {
			t.Fatal(err)
		}
		tt.EndNS += int64(gen)
		if _, err := tt.Save(dir); err != nil {
			t.Fatal(err)
		}
		when := time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC).Add(time.Duration(gen) * time.Second)
		if err := os.Chtimes(victim, when, when); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}

	// After the dust settles the service still matches the batch path.
	checkAllEndpoints(t, srv, dir, "post-race")
}
