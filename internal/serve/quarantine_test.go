package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dayu/internal/trace"
)

// Regression for the fold-error path: an acknowledged record that can
// never fold (errUnfoldable — bytes mangled in a way the WAL CRC
// missed) used to have its fold checkpoint advanced with no copy kept,
// silently destroying acknowledged data. The bytes must now land in
// WALDir/quarantine before MarkFolded, and survive any number of
// restarts.
func TestUnfoldableRecordQuarantinedAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	walDir := t.TempDir()

	// Seed a WAL containing one good record and one poisoned record,
	// as if a record was acknowledged and then mangled on disk in a
	// way that kept its CRC intact.
	w, _, err := OpenWAL(walDir, WALOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	good := makeTraceBytes(t, "ok-task", trace.FormatBinary)
	if _, err := w.Append(good); err != nil {
		t.Fatal(err)
	}
	poison := []byte("this is not a trace record in any serialization")
	poisonSeq, err := w.Append(poison)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// First restart: replay folds the good record, quarantines the
	// poisoned one, and still comes up serving.
	s := mustServer(t, Config{Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever}, PlanOptions: testPlanOpts})
	qpath := filepath.Join(walDir, "quarantine", fmt.Sprintf("rec-%d.bin", poisonSeq))
	got, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("poisoned record not quarantined: %v", err)
	}
	if !bytes.Equal(got, poison) {
		t.Fatalf("quarantined bytes diverged: %q", got)
	}
	if p := s.walStats().Pending; p != 0 {
		t.Fatalf("pending = %d after quarantine, want 0", p)
	}
	snap, err := s.Ingest()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.tasks) != 1 || snap.tasks[0].Task != "ok-task" {
		t.Fatalf("tasks after recovery = %+v", snap.tasks)
	}
	s.Close()

	// Second restart: the quarantined record is not replayed (its
	// checkpoint advanced) but its bytes are still preserved.
	s2 := mustServer(t, Config{Dir: dir, WALDir: walDir, WAL: WALOptions{Fsync: FsyncNever}, PlanOptions: testPlanOpts})
	defer s2.Close()
	got, err = os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantined record vanished after restart: %v", err)
	}
	if !bytes.Equal(got, poison) {
		t.Fatalf("quarantined bytes diverged after restart: %q", got)
	}
	if q := s2.countQuarantined(); q != 1 {
		t.Fatalf("countQuarantined = %d, want 1", q)
	}
}
