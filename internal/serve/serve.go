// Package serve is DaYu's incremental analysis service: a long-running
// HTTP server that watches a trace directory, ingests new, changed and
// deleted per-task trace files incrementally, and answers FTG/SDG,
// diagnostics and optimizer-plan requests from a content-addressed
// cache. Chimbuko-style online analysis (PAPERS.md) applied to the
// paper's per-task trace files, which are naturally incremental units.
//
// Caching has three layers, all content-addressed from the trace
// bytes:
//
//  1. Parsed traces, keyed by file content hash: a touched-but-equal
//     file is re-hashed, never re-parsed; an untouched file (same
//     size and mtime) is not even re-read.
//  2. Per-task graph contributions (the analyzer's parallel-build
//     unit), keyed by trace hash — plus, for SDGs, a fingerprint of
//     the object descriptions the task references. One changed task
//     recomputes one contribution; the rest merge from cache.
//  3. Rendered responses, keyed per snapshot and format: repeat
//     requests against an unchanged directory are pure cache reads.
//
// Concurrency follows a single-writer snapshot-swap model: one
// goroutine at a time may ingest (guarded by ingestMu; request-path
// refreshes use TryLock and fall back to the current snapshot), and
// the published *snapshot is immutable except for its lazily filled
// render cache, which its own mutex guards. Readers load the snapshot
// pointer atomically and never observe a half-built graph.
//
// Responses are byte-identical to the batch CLI path — BuildFTG /
// BuildSDG / diagnose.Analyze / PlanDataLocality over a fresh
// trace.LoadDir — which the equivalence tests pin across add, modify
// and delete of task traces.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/graph"
	"dayu/internal/obs"
	"dayu/internal/optimizer"
	"dayu/internal/serve/history"
	"dayu/internal/serve/shard"
	"dayu/internal/trace"
)

// Config configures the service.
type Config struct {
	// Dir is the watched trace directory.
	Dir string
	// Registry receives the serve metrics; nil disables them (every
	// metric handle is nil-safe).
	Registry *obs.Registry
	// SDGOptions controls /v1/sdg construction (Parallelism is unused:
	// contributions are computed one task at a time on ingest).
	SDGOptions analyzer.Options
	// PlanOptions are the defaults for /v1/plan; tier and nodes can be
	// overridden per request with ?tier= and ?nodes=.
	PlanOptions optimizer.LocalityOptions
	// Poll is the background rescan interval; 0 means requests trigger
	// the rescan themselves (still incremental, still cached).
	Poll time.Duration
	// MaxPollBackoff caps the exponential backoff applied to the poll
	// loop after repeated scan errors (default 1 minute; never below
	// Poll).
	MaxPollBackoff time.Duration

	// WALDir enables the durable push-ingest path (POST /v1/ingest):
	// acknowledged records are appended to a write-ahead log under this
	// directory and replayed on startup. Empty disables push ingest.
	WALDir string
	// WAL tunes the write-ahead log (fsync policy, segment size).
	WAL WALOptions
	// IngestQueue bounds acknowledged-but-unfolded push records; a
	// full queue answers 429 + Retry-After (default 64).
	IngestQueue int
	// MaxBodyBytes caps /v1/ingest request bodies (default 32 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backpressure hint sent with 429 responses
	// (default 1s).
	RetryAfter time.Duration

	// Shards partitions the parsed-trace and contribution caches (and,
	// with WALDir set, the push-ingest WAL and fold pipeline) across N
	// workers routed by FNV-1a hash; <= 1 means a single worker, which
	// behaves exactly as the unsharded server always did. The shard
	// count can never leak into response bytes: per-shard contribution
	// sets are stitched back into the global task order before the
	// graphs build.
	Shards int

	// HistoryDir enables the persistent snapshot-history store: every
	// converged snapshot's manifest and rendered /v1/{ftg,sdg} bodies
	// are recorded there (content-addressed, compacted by retention)
	// and served back via /v1/history. Empty disables history.
	HistoryDir string
	// HistoryRetain caps retained history snapshots (default 64).
	HistoryRetain int

	// SSEHeartbeat is the /v1/live/events keep-alive comment interval
	// (default 15s). Tests and smoke scripts shorten it.
	SSEHeartbeat time.Duration

	// foldHook, when set (tests only), runs in the folder goroutines
	// before each record folds — used to hold the queue full.
	foldHook func(foldJob)
}

// snapshot is an immutable view of one ingested directory state. The
// graphs are fully built at publish time; rendered holds lazily
// cached response bodies keyed by endpoint and format.
type snapshot struct {
	id       string
	traces   []*trace.TaskTrace
	manifest *trace.Manifest
	tasks    []TaskInfo
	hashes   map[string]bool // content hashes of every trace file
	ftg      *graph.Graph
	sdg      *graph.Graph

	// Live overlay: the trace set extended with retained checkpoint
	// records for tasks still in flight. With zero partials these
	// alias traces/ftg/sdg, making live and batch responses share
	// rendered bytes.
	liveTraces   []*trace.TaskTrace
	liveFTG      *graph.Graph
	liveSDG      *graph.Graph
	partialTasks int

	mu       sync.Mutex
	rendered map[string][]byte
	findings []diagnose.Finding
	diagDone bool
}

// shardIngest is one shard's slice of the push-ingest pipeline: its
// own WAL namespace, admission pool, fold queue and folder goroutine,
// plus the per-shard observability handles the scale work needs to
// spot a hot or lagging shard.
type shardIngest struct {
	idx      int
	wal      *WAL
	sem      chan struct{}
	foldQ    chan foldJob
	foldDone chan struct{}

	queueDepth  *obs.Gauge
	walPending  *obs.Gauge
	walSegments *obs.Gauge
	foldNS      *obs.Histogram
	appendNS    *obs.Histogram
}

// Server is the incremental analysis service. It implements
// http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// ingestMu serializes directory scans and snapshot builds: the
	// single-writer half of the snapshot-swap model. The sharded scan
	// and contribution fan-out run inside it (one goroutine per shard
	// worker), so worker state needs no further locking.
	ingestMu      sync.Mutex
	coord         *shard.Coordinator
	manifest      *trace.Manifest
	manifestState fileState

	// hist is the persistent snapshot-history store (nil unless
	// cfg.HistoryDir is set).
	hist *history.Store

	snap    atomic.Pointer[snapshot]
	lastErr atomic.Pointer[ingestError]
	histErr atomic.Pointer[ingestError]

	// Push-ingest state (nil/unused unless cfg.WALDir is set). Each
	// shard owns an admission pool (one slot per
	// acknowledged-but-unfolded push), a WAL namespace and a folder
	// goroutine; records route to shards by task name, so one task's
	// records always fold sequentially in one shard.
	shards     []*shardIngest
	pushMu     sync.Mutex
	pushClosed bool
	pushWG     sync.WaitGroup
	acked      map[string]bool // content hashes acknowledged this process
	// pending holds content hashes whose WAL append is in flight; the
	// channel closes when the append settles (either way). Identical
	// concurrent pushes wait on it instead of double-appending — and
	// instead of being answered "duplicate" before the twin's bytes
	// are actually durable.
	pending   map[string]chan struct{}
	closePush sync.Once

	// Retained streaming checkpoints, one per in-flight task (newest
	// sequence number wins). partialsGen bumps on every mutation so
	// refresh can detect live-state changes the directory scan cannot
	// see; lastPartialsGen is the writer-owned (ingestMu) generation
	// the published snapshot was built from.
	partialMu       sync.Mutex
	partials        map[string]*partialEntry
	partialsGen     uint64
	lastPartialsGen uint64
	// SSE broadcaster state for /v1/live/events (its own mutex: event
	// fan-out must not contend with checkpoint folding).
	eventMu sync.Mutex
	events  eventsBroadcaster

	// streamSeqs tracks the highest acknowledged checkpoint sequence
	// per in-flight task (guarded by partialMu). It is the delta-ingest
	// gate: a delta whose base sequence is not the task's acknowledged
	// head is NACKed with 409/resync before touching the WAL, because
	// ordered per-shard folding could never apply it. Advanced at ack
	// and fold time, seeded from persisted partials at startup, cleared
	// when the task's final retracts the partial.
	streamSeqs map[string]uint64

	// Poll-loop backoff state, surfaced by /healthz.
	pollFailures  atomic.Int64
	pollBackoffNS atomic.Int64

	// Metric handles (nil-safe when cfg.Registry is nil).
	requests        func(path string) *obs.Counter
	requestNS       func(path string) *obs.Histogram
	inflight        *obs.Gauge
	ingests         *obs.Counter
	ingestNS        *obs.Histogram
	ingestErrors    *obs.Counter
	traceParses     *obs.Counter
	snapshotHits    *obs.Counter
	snapshotMisses  *obs.Counter
	contribHits     *obs.Counter
	contribMisses   *obs.Counter
	responseHits    *obs.Counter
	responseMisses  *obs.Counter
	snapshotTasks   *obs.Gauge
	pushAccepted    *obs.Counter
	pushDuplicates  *obs.Counter
	pushRejected    *obs.Counter
	pushErrors      *obs.Counter
	foldErrors      *obs.Counter
	partialFolds    *obs.Counter
	partialRetracts *obs.Counter
	partialGauge    *obs.Gauge
	deltaFolds      *obs.Counter
	deltaResyncs    *obs.Counter
	deltaDrops      *obs.Counter
	walAppendNS     *obs.Histogram
	walPending      *obs.Gauge
	walSegments     *obs.Gauge
	queueDepth      *obs.Gauge

	// timeAgg caches windowed aggregations (?window=) across snapshots
	// so a live watcher polling a fixed window does not pay a full
	// AggregateByTime rebuild on every folded checkpoint.
	timeAgg *analyzer.TimeAggCache

	stop     chan struct{}
	done     chan struct{}
	watching bool // set by Start before the watcher goroutine exists
}

type ingestError struct {
	err  error
	when time.Time
}

// NewServer builds the service, recovers any write-ahead-logged push
// records (when cfg.WALDir is set) and performs the initial ingest; a
// missing or unreadable trace directory is reported by the first
// request (and /healthz) rather than failing construction. Only WAL
// open/recovery failures are construction errors: a server that
// cannot guarantee its durability contract must not start.
func NewServer(cfg Config) (*Server, error) {
	reg := cfg.Registry
	s := &Server{
		cfg:        cfg,
		coord:      shard.NewCoordinator(cfg.Shards),
		partials:   map[string]*partialEntry{},
		streamSeqs: map[string]uint64{},

		requests: func(path string) *obs.Counter {
			return reg.Counter(obs.Name("dayu_serve_requests_total", "path", path))
		},
		requestNS: func(path string) *obs.Histogram {
			return reg.Histogram(obs.Name("dayu_serve_request_ns", "path", path), obs.LatencyBuckets())
		},
		inflight:        reg.Gauge("dayu_serve_inflight_requests"),
		ingests:         reg.Counter("dayu_serve_ingests_total"),
		ingestNS:        reg.Histogram("dayu_serve_ingest_ns", obs.LatencyBuckets()),
		ingestErrors:    reg.Counter("dayu_serve_ingest_errors_total"),
		traceParses:     reg.Counter("dayu_serve_trace_parses_total"),
		snapshotHits:    reg.Counter(obs.Name("dayu_serve_cache_hits_total", "cache", "snapshot")),
		snapshotMisses:  reg.Counter(obs.Name("dayu_serve_cache_misses_total", "cache", "snapshot")),
		contribHits:     reg.Counter(obs.Name("dayu_serve_cache_hits_total", "cache", "contribution")),
		contribMisses:   reg.Counter(obs.Name("dayu_serve_cache_misses_total", "cache", "contribution")),
		responseHits:    reg.Counter(obs.Name("dayu_serve_cache_hits_total", "cache", "response")),
		responseMisses:  reg.Counter(obs.Name("dayu_serve_cache_misses_total", "cache", "response")),
		snapshotTasks:   reg.Gauge("dayu_serve_snapshot_tasks"),
		pushAccepted:    reg.Counter(obs.Name("dayu_serve_push_total", "result", "accepted")),
		pushDuplicates:  reg.Counter(obs.Name("dayu_serve_push_total", "result", "duplicate")),
		pushRejected:    reg.Counter(obs.Name("dayu_serve_push_total", "result", "rejected")),
		pushErrors:      reg.Counter(obs.Name("dayu_serve_push_total", "result", "error")),
		foldErrors:      reg.Counter("dayu_serve_fold_errors_total"),
		partialFolds:    reg.Counter(obs.Name("dayu_serve_partial_total", "op", "fold")),
		partialRetracts: reg.Counter(obs.Name("dayu_serve_partial_total", "op", "retract")),
		partialGauge:    reg.Gauge("dayu_serve_partial_tasks"),
		deltaFolds:      reg.Counter(obs.Name("dayu_serve_delta_total", "op", "fold")),
		deltaResyncs:    reg.Counter(obs.Name("dayu_serve_delta_total", "op", "resync")),
		deltaDrops:      reg.Counter(obs.Name("dayu_serve_delta_total", "op", "drop")),
		walAppendNS:     reg.Histogram("dayu_serve_wal_append_ns", obs.LatencyBuckets()),
		walPending:      reg.Gauge("dayu_serve_wal_pending_records"),
		walSegments:     reg.Gauge("dayu_serve_wal_segments"),
		queueDepth:      reg.Gauge("dayu_serve_ingest_queue_depth"),

		timeAgg: analyzer.NewTimeAggCache(0),

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/v1/tasks", s.instrument("/v1/tasks", s.handleTasks))
	mux.HandleFunc("/v1/ftg", s.instrument("/v1/ftg", s.graphHandler("ftg")))
	mux.HandleFunc("/v1/sdg", s.instrument("/v1/sdg", s.graphHandler("sdg")))
	mux.HandleFunc("/v1/diagnose", s.instrument("/v1/diagnose", s.handleDiagnose))
	mux.HandleFunc("/v1/live/ftg", s.instrument("/v1/live/ftg", s.liveGraphHandler("ftg")))
	mux.HandleFunc("/v1/live/sdg", s.instrument("/v1/live/sdg", s.liveGraphHandler("sdg")))
	mux.HandleFunc("/v1/live/diagnostics", s.instrument("/v1/live/diagnostics", s.handleLiveDiagnostics))
	mux.HandleFunc("/v1/live/events", s.instrument("/v1/live/events", s.handleLiveEvents))
	mux.HandleFunc("/v1/plan", s.instrument("/v1/plan", s.handlePlan))
	mux.HandleFunc("/v1/ingest", s.instrumentMethods("/v1/ingest", []string{http.MethodPost}, s.maxBodyBytes(), s.handleIngest))
	mux.HandleFunc("/v1/ingest/manifest", s.instrumentMethods("/v1/ingest/manifest", []string{http.MethodPost}, s.maxBodyBytes(), s.handleIngestManifest))
	mux.HandleFunc("/v1/history", s.instrument("/v1/history", s.handleHistoryList))
	mux.HandleFunc("/v1/history/", s.instrument("/v1/history/", s.handleHistoryEntry))
	mux.Handle("/metrics", limitBody(obs.Handler(reg), readOnlyBodyLimit))
	s.mux = mux

	if cfg.HistoryDir != "" {
		h, err := history.Open(cfg.HistoryDir, history.Options{Retain: cfg.HistoryRetain})
		if err != nil {
			return nil, fmt.Errorf("serve: open history: %w", err)
		}
		s.hist = h
	}
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.Ingest() // initial scan; errors surface via healthz/requests
	for _, sh := range s.shards {
		go s.folder(sh)
	}
	return s, nil
}

// openWAL opens one write-ahead log per shard — under WALDir itself
// for a single shard (the layout every pre-sharding deployment used),
// under WALDir/shard-<k>/ otherwise — and synchronously folds every
// record recovered from them into the trace directory, so the first
// snapshot already reflects everything ever acknowledged. Namespaces
// orphaned by a previous run at a different shard count are replayed
// and retired the same way: acknowledged data survives any -shards
// change. Records that fail to fold transiently stay pending in their
// WAL and fail construction (a durability guarantee the server cannot
// meet must not be silently weakened).
func (s *Server) openWAL() error {
	if err := os.MkdirAll(s.partialsDir(), 0o755); err != nil {
		return fmt.Errorf("serve: create partials dir: %w", err)
	}
	// Restore retained checkpoints before WAL replay so replayed
	// checkpoint records apply newest-wins against them.
	if err := s.loadPartials(); err != nil {
		return err
	}
	queue := s.cfg.IngestQueue
	if queue <= 0 {
		queue = 64
	}
	s.acked = make(map[string]bool)
	s.pending = make(map[string]chan struct{})
	n := s.coord.Shards()
	for k := 0; k < n; k++ {
		wal, pending, err := OpenWAL(s.shardWALDir(k), s.cfg.WAL)
		if err != nil {
			s.closeWALs()
			return fmt.Errorf("serve: open wal shard %d: %w", k, err)
		}
		reg := s.cfg.Registry
		label := fmt.Sprintf("%d", k)
		sh := &shardIngest{
			idx:      k,
			wal:      wal,
			sem:      make(chan struct{}, queue),
			foldQ:    make(chan foldJob, queue),
			foldDone: make(chan struct{}),

			queueDepth:  reg.Gauge(obs.Name("dayu_serve_shard_queue_depth", "shard", label)),
			walPending:  reg.Gauge(obs.Name("dayu_serve_shard_wal_pending_records", "shard", label)),
			walSegments: reg.Gauge(obs.Name("dayu_serve_shard_wal_segments", "shard", label)),
			foldNS:      reg.Histogram(obs.Name("dayu_serve_shard_fold_ns", "shard", label), obs.LatencyBuckets()),
			appendNS:    reg.Histogram(obs.Name("dayu_serve_shard_wal_append_ns", "shard", label), obs.LatencyBuckets()),
		}
		s.shards = append(s.shards, sh)
		if err := s.replayPending(wal, pending, s.quarantinePrefix(k)); err != nil {
			s.closeWALs()
			return err
		}
	}
	if err := s.replayOrphanWALs(); err != nil {
		s.closeWALs()
		return err
	}
	s.updateWALGauges()
	return nil
}

// shardWALDir is shard k's WAL namespace. A single-shard server keeps
// the pre-sharding flat layout so existing WAL directories replay
// unchanged.
func (s *Server) shardWALDir(k int) string {
	if s.coord.Shards() == 1 {
		return s.cfg.WALDir
	}
	return filepath.Join(s.cfg.WALDir, fmt.Sprintf("shard-%d", k))
}

// closeWALs closes every WAL opened so far (construction error path).
func (s *Server) closeWALs() {
	for _, sh := range s.shards {
		sh.wal.Close()
	}
	s.shards = nil
}

// replayPending folds the acknowledged-but-unfolded records one WAL
// handed back at open, marking each folded (or quarantined under the
// given namespace prefix) as the original replay always did.
func (s *Server) replayPending(wal *WAL, pending []PendingRecord, qprefix string) error {
	for _, rec := range pending {
		hash := trace.HashBytes(rec.Data)
		s.acked[hash] = true
		if err := s.foldBytes(rec.Data); err != nil {
			if errors.Is(err, errUnfoldable) {
				// Validated at push time, mangled since in a way the
				// CRC missed: preserve the bytes in quarantine before
				// advancing past them, then keep recovering. A failed
				// quarantine write fails construction — acknowledged
				// data must not be dropped silently.
				s.foldErrors.Inc()
				s.lastErr.Store(&ingestError{err: fmt.Errorf("serve: replay record %d: %w", rec.Seq, err), when: time.Now()})
				if qerr := s.quarantineRecord(qprefix, rec.Seq, rec.Data); qerr != nil {
					return fmt.Errorf("serve: wal replay: quarantine record %d: %w", rec.Seq, qerr)
				}
				wal.MarkFolded(rec.Seq)
				continue
			}
			return fmt.Errorf("serve: wal replay: fold record %d: %w", rec.Seq, err)
		}
		wal.MarkFolded(rec.Seq)
	}
	return nil
}

// replayOrphanWALs drains WAL namespaces a previous run at a different
// shard count left behind: the flat root log when running sharded, and
// shard-<k> subdirectories outside the current shard set. Every
// pending record folds (it is acknowledged data), the namespace
// compacts to empty, and retired shard directories are removed.
func (s *Server) replayOrphanWALs() error {
	n := s.coord.Shards()
	var orphans []string
	if n > 1 {
		// The flat layout is shard 0's namespace only when n == 1.
		orphans = append(orphans, s.cfg.WALDir)
	}
	entries, err := os.ReadDir(s.cfg.WALDir)
	if err != nil {
		return fmt.Errorf("serve: scan wal dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var k int
		if _, err := fmt.Sscanf(e.Name(), "shard-%d", &k); err != nil || fmt.Sprintf("shard-%d", k) != e.Name() {
			continue
		}
		if n > 1 && k < n {
			continue // live namespace
		}
		orphans = append(orphans, filepath.Join(s.cfg.WALDir, e.Name()))
	}
	for _, dir := range orphans {
		wal, pending, err := OpenWAL(dir, s.cfg.WAL)
		if err != nil {
			return fmt.Errorf("serve: open orphan wal %s: %w", dir, err)
		}
		// Quarantine names keep the prefix the namespace would have used
		// while live, so re-quarantining after a shard-count change is
		// still idempotent.
		qprefix := ""
		if dir != s.cfg.WALDir {
			qprefix = filepath.Base(dir) + "-"
		}
		if err := s.replayPending(wal, pending, qprefix); err != nil {
			wal.Close()
			return err
		}
		wal.Close()
		if dir != s.cfg.WALDir {
			// Fully drained: retire the namespace. Removal is
			// best-effort — a leftover empty directory replays as empty
			// next time.
			os.Remove(filepath.Join(dir, walCheckpointFile))
			os.Remove(dir)
		}
	}
	return nil
}

// walFor routes a task's records to its owning shard. Routing is by
// task name, so one task's checkpoints and final always fold
// sequentially in one shard's folder goroutine.
func (s *Server) walFor(task string) *shardIngest {
	return s.shards[s.coord.Route(task)]
}

// pushEnabled reports whether the durable push-ingest path is up.
func (s *Server) pushEnabled() bool { return len(s.shards) > 0 }

// walStats sums every shard's WAL stats; at one shard these are
// exactly that WAL's stats, which keeps the pre-sharding observable
// values (and the tests pinning them) intact.
func (s *Server) walStats() WALStats {
	var total WALStats
	for _, sh := range s.shards {
		st := sh.wal.Stats()
		total.Segments += st.Segments
		total.Pending += st.Pending
		total.NextSeq += st.NextSeq
		total.Folded += st.Folded
		total.ActiveBytes += st.ActiveBytes
	}
	return total
}

// maxBodyBytes is the /v1/ingest request body cap.
func (s *Server) maxBodyBytes() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return 32 << 20
}

// Start launches the background watcher when cfg.Poll > 0. Close stops
// it. Start must be called at most once.
//
// Repeated scan errors back off exponentially (doubling from Poll up
// to MaxPollBackoff, with ±20% jitter) instead of hammering a broken
// directory at full poll frequency; one successful scan resets the
// cadence. The current backoff state is surfaced by /healthz.
func (s *Server) Start() {
	if s.cfg.Poll <= 0 {
		return
	}
	s.watching = true
	go func() {
		defer close(s.done)
		delay := s.cfg.Poll
		timer := time.NewTimer(delay)
		defer timer.Stop()
		var failures int64
		for {
			select {
			case <-s.stop:
				return
			case <-timer.C:
				if _, err := s.Ingest(); err != nil {
					failures++
					delay = s.pollBackoff(failures)
				} else {
					failures = 0
					delay = s.cfg.Poll
				}
				s.pollFailures.Store(failures)
				if failures > 0 {
					s.pollBackoffNS.Store(int64(delay))
				} else {
					s.pollBackoffNS.Store(0)
				}
				timer.Reset(delay)
			}
		}
	}()
}

// pollBackoff returns the rescan delay after the given number of
// consecutive failures: Poll doubled per failure, capped at
// MaxPollBackoff, jittered ±20% so recovering pollers do not stampede.
func (s *Server) pollBackoff(failures int64) time.Duration {
	maxDelay := s.cfg.MaxPollBackoff
	if maxDelay <= 0 {
		maxDelay = time.Minute
	}
	if maxDelay < s.cfg.Poll {
		maxDelay = s.cfg.Poll
	}
	delay := s.cfg.Poll
	for i := int64(1); i < failures && delay < maxDelay; i++ {
		delay *= 2
	}
	if delay > maxDelay {
		delay = maxDelay
	}
	jitter := time.Duration((rand.Float64()*0.4 - 0.2) * float64(delay))
	if delay += jitter; delay < time.Millisecond {
		delay = time.Millisecond
	}
	return delay
}

// Close stops the background watcher (a no-op when none is running),
// then drains the push-ingest path: in-flight /v1/ingest requests
// finish, every acknowledged record folds into the trace directory,
// and the write-ahead log is flushed and closed. Close is idempotent.
func (s *Server) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.watching {
		<-s.done
	}
	if s.pushEnabled() {
		s.closePush.Do(func() {
			s.pushMu.Lock()
			s.pushClosed = true
			s.pushMu.Unlock()
			s.pushWG.Wait()
			for _, sh := range s.shards {
				close(sh.foldQ)
			}
			for _, sh := range s.shards {
				<-sh.foldDone
				sh.wal.Close()
			}
		})
	}
}

// Ingest synchronously rescans the directory (blocking on the writer
// lock) and returns the resulting snapshot or the scan error.
func (s *Server) Ingest() (*snapshot, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	snap, err := s.refresh()
	if err != nil {
		s.lastErr.Store(&ingestError{err: err, when: time.Now()})
		return s.snap.Load(), err
	}
	s.lastErr.Store(nil)
	return snap, nil
}

// current returns the freshest snapshot a request should serve: it
// opportunistically refreshes (TryLock — if an ingest is already
// running the request serves the published snapshot instead of
// queueing behind the writer).
func (s *Server) current() (*snapshot, error) {
	if s.ingestMu.TryLock() {
		snap, err := s.refresh()
		if err != nil {
			s.lastErr.Store(&ingestError{err: err, when: time.Now()})
		} else {
			s.lastErr.Store(nil)
		}
		s.ingestMu.Unlock()
		if err == nil {
			return snap, nil
		}
		if fallback := s.snap.Load(); fallback != nil {
			return fallback, nil // stale but consistent
		}
		return nil, err
	}
	if snap := s.snap.Load(); snap != nil {
		return snap, nil
	}
	// No snapshot published yet and the writer is busy: report rather
	// than block the request path.
	return nil, fmt.Errorf("serve: first ingest still in progress")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// readOnlyBodyLimit caps request bodies on endpoints that never read
// one: hygiene against a client streaming an unbounded body at a GET.
const readOnlyBodyLimit = 1 << 20

// instrument wraps a read-only handler with the request metrics, a
// GET/HEAD method gate and a body cap.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumentMethods(path, []string{http.MethodGet, http.MethodHead}, readOnlyBodyLimit, h)
}

// instrumentMethods wraps a handler with the request metrics,
// rejecting methods outside allowed with 405 (carrying an Allow
// header) and capping the request body at bodyLimit bytes.
func (s *Server) instrumentMethods(path string, allowed []string, bodyLimit int64, h http.HandlerFunc) http.HandlerFunc {
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		ok := false
		for _, m := range allowed {
			if r.Method == m {
				ok = true
				break
			}
		}
		if !ok {
			w.Header().Set("Allow", allow)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, bodyLimit)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		s.requests(path).Inc()
		h(w, r)
		s.requestNS(path).Observe(time.Since(start).Nanoseconds())
	}
}

// limitBody caps the request body of a wrapped handler.
func limitBody(h http.Handler, limit int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
		h.ServeHTTP(w, r)
	})
}

// render returns the cached response body for key, computing and
// caching it on first use. The compute function runs under the
// snapshot's render lock: at most once per (snapshot, key).
func (s *Server) render(snap *snapshot, key string, compute func() ([]byte, error)) ([]byte, error) {
	snap.mu.Lock()
	defer snap.mu.Unlock()
	if body, ok := snap.rendered[key]; ok {
		s.responseHits.Inc()
		return body, nil
	}
	s.responseMisses.Inc()
	body, err := compute()
	if err != nil {
		return nil, err
	}
	snap.rendered[key] = body
	return body, nil
}

// graphHandler serves /v1/ftg and /v1/sdg in json (default), dot,
// html or svg form.
func (s *Server) graphHandler(which string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.current()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		g := snap.ftg
		if which == "sdg" {
			g = snap.sdg
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		var contentType string
		switch format {
		case "json":
			contentType = "application/json"
		case "dot":
			contentType = "text/vnd.graphviz; charset=utf-8"
		case "html":
			contentType = "text/html; charset=utf-8"
		case "svg":
			contentType = "image/svg+xml"
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (json, dot, html, svg)", format), http.StatusBadRequest)
			return
		}
		body, err := s.render(snap, which+"."+format, func() ([]byte, error) {
			return renderGraph(g, format)
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Dayu-Snapshot", snap.id)
		_, _ = w.Write(body)
	}
}

// renderGraph serializes a graph in one of the supported response
// formats; json matches the batch CLI's analyze output encoding.
func renderGraph(g *graph.Graph, format string) ([]byte, error) {
	switch format {
	case "json":
		return json.MarshalIndent(g, "", " ")
	case "dot":
		return []byte(g.DOT()), nil
	case "html":
		return []byte(g.HTML()), nil
	default:
		return []byte(g.SVG()), nil
	}
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	snap, err := s.current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	body, err := s.render(snap, "diagnose", func() ([]byte, error) {
		return diagnose.EncodeJSON(snap.diagnoseLocked())
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dayu-Snapshot", snap.id)
	_, _ = w.Write(body)
}

// diagnoseLocked computes the findings once per snapshot; callers must
// hold snap.mu (render does).
func (snap *snapshot) diagnoseLocked() []diagnose.Finding {
	if !snap.diagDone {
		snap.findings = diagnose.Analyze(snap.traces, snap.manifest, diagnose.Thresholds{})
		snap.diagDone = true
	}
	return snap.findings
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	snap, err := s.current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	opts := s.cfg.PlanOptions
	q := r.URL.Query()
	if tier := q.Get("tier"); tier != "" {
		opts.FastTier = tier
	}
	if nodes := q.Get("nodes"); nodes != "" {
		n := 0
		if _, err := fmt.Sscanf(nodes, "%d", &n); err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad nodes %q", nodes), http.StatusBadRequest)
			return
		}
		opts.Nodes = n
	}
	key := fmt.Sprintf("plan:%s:%d", opts.FastTier, opts.Nodes)
	body, err := s.render(snap, key, func() ([]byte, error) {
		plan := optimizer.PlanDataLocality(snap.traces, snap.manifest, opts)
		return json.MarshalIndent(plan, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dayu-Snapshot", snap.id)
	_, _ = w.Write(body)
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	snap, err := s.current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	body, err := s.render(snap, "tasks", func() ([]byte, error) {
		return json.MarshalIndent(struct {
			Snapshot string     `json:"snapshot"`
			Tasks    []TaskInfo `json:"tasks"`
		}{Snapshot: snap.id, Tasks: snap.tasks}, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dayu-Snapshot", snap.id)
	_, _ = w.Write(body)
}

// Health is the /healthz response body.
type Health struct {
	Status          string         `json:"status"`
	Snapshot        string         `json:"snapshot,omitempty"`
	Tasks           int            `json:"tasks"`
	LastIngestError string         `json:"last_ingest_error,omitempty"`
	LastErrorAt     time.Time      `json:"last_error_at,omitempty"`
	WAL             *WALHealth     `json:"wal,omitempty"`
	Poll            *PollHealth    `json:"poll,omitempty"`
	History         *HistoryHealth `json:"history,omitempty"`
}

// WALHealth reports the push-ingest durability state. With more than
// one shard the top-level numbers are aggregates (sums across shards —
// NextSeq and FoldedSeq then count records appended and folded in
// total) and Shards carries the per-shard breakdown.
type WALHealth struct {
	// PendingRecords counts acknowledged records not yet folded into
	// trace files (they survive in the WAL).
	PendingRecords uint64 `json:"pending_records"`
	// QueueDepth / QueueCapacity is the admission pool: at capacity,
	// pushes are answered 429 + Retry-After.
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Segments      int    `json:"segments"`
	NextSeq       uint64 `json:"next_seq"`
	FoldedSeq     uint64 `json:"folded_seq"`
	// PartialTasks counts tasks currently represented by a streaming
	// checkpoint rather than a final trace.
	PartialTasks int `json:"partial_tasks"`
	// Quarantined counts acknowledged records that could not be folded
	// and were preserved under WALDir/quarantine for inspection.
	Quarantined int `json:"quarantined"`
	// Shards is the per-shard breakdown (only when sharded).
	Shards []WALShardHealth `json:"shards,omitempty"`
}

// WALShardHealth is one shard's slice of the push-ingest state.
type WALShardHealth struct {
	Shard          int    `json:"shard"`
	PendingRecords uint64 `json:"pending_records"`
	QueueDepth     int    `json:"queue_depth"`
	QueueCapacity  int    `json:"queue_capacity"`
	Segments       int    `json:"segments"`
	NextSeq        uint64 `json:"next_seq"`
	FoldedSeq      uint64 `json:"folded_seq"`
}

// HistoryHealth reports the snapshot-history store state.
type HistoryHealth struct {
	Snapshots   int    `json:"snapshots"`
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// PollHealth reports the background rescan loop's error-backoff state.
type PollHealth struct {
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	BackoffMS           int64 `json:"backoff_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Health reflects but never triggers ingestion: load whatever is
	// published and report the last ingest error, if any.
	snap := s.snap.Load()
	h := Health{Status: "ok"}
	if snap != nil {
		h.Snapshot = snap.id
		h.Tasks = len(snap.tasks)
	}
	if s.pushEnabled() {
		s.partialMu.Lock()
		partials := len(s.partials)
		s.partialMu.Unlock()
		wh := &WALHealth{
			PartialTasks: partials,
			Quarantined:  s.countQuarantined(),
		}
		for _, sh := range s.shards {
			stats := sh.wal.Stats()
			wh.PendingRecords += stats.Pending
			wh.QueueDepth += len(sh.sem)
			wh.QueueCapacity += cap(sh.sem)
			wh.Segments += stats.Segments
			wh.NextSeq += stats.NextSeq
			wh.FoldedSeq += stats.Folded
			if len(s.shards) > 1 {
				wh.Shards = append(wh.Shards, WALShardHealth{
					Shard:          sh.idx,
					PendingRecords: stats.Pending,
					QueueDepth:     len(sh.sem),
					QueueCapacity:  cap(sh.sem),
					Segments:       stats.Segments,
					NextSeq:        stats.NextSeq,
					FoldedSeq:      stats.Folded,
				})
			}
		}
		h.WAL = wh
	}
	if s.hist != nil {
		hh := &HistoryHealth{Snapshots: s.hist.Len()}
		if he := s.histErr.Load(); he != nil {
			hh.LastError = he.err.Error()
			hh.LastErrorAt = he.when.UTC().Format(time.RFC3339Nano)
		}
		h.History = hh
	}
	if s.cfg.Poll > 0 {
		h.Poll = &PollHealth{
			ConsecutiveFailures: s.pollFailures.Load(),
			BackoffMS:           s.pollBackoffNS.Load() / int64(time.Millisecond),
		}
	}
	status := http.StatusOK
	if ie := s.lastErr.Load(); ie != nil {
		h.Status = "degraded"
		h.LastIngestError = ie.err.Error()
		h.LastErrorAt = ie.when
		if snap == nil {
			status = http.StatusServiceUnavailable
		}
	}
	body, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
