package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/trace"
)

// fileState identifies one on-disk trace file revision. Size and
// modification time short-circuit the scan (an untouched file is not
// even re-read); the content hash is the authoritative identity — a
// rewritten file with identical bytes maps to the same cached work.
type fileState struct {
	size    int64
	modTime time.Time
	hash    string
}

// taskEntry is the parsed-trace cache, keyed by file path in the
// server's scan state. The decoded trace is reused as long as the
// content hash matches, so touching a file (mtime change, same bytes)
// re-hashes but never re-parses.
type taskEntry struct {
	fileState
	trace *trace.TaskTrace
}

// TaskInfo is one row of the /v1/tasks listing.
type TaskInfo struct {
	Task    string    `json:"task"`
	File    string    `json:"file"`
	Size    int64     `json:"size"`
	Hash    string    `json:"hash"`
	ModTime time.Time `json:"mod_time"`
	StartNS int64     `json:"start_ns"`
	EndNS   int64     `json:"end_ns"`
	Failed  bool      `json:"failed,omitempty"`
}

// refresh rescans the trace directory and, when its content changed,
// builds and atomically publishes a new snapshot. It is the single
// writer: callers must hold s.ingestMu. Returns the current snapshot
// (possibly the unchanged one) or the scan/build error.
func (s *Server) refresh() (*snapshot, error) {
	start := time.Now()
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		s.ingestErrors.Inc()
		return nil, fmt.Errorf("serve: scan %s: %w", s.cfg.Dir, err)
	}

	seen := make(map[string]bool, len(entries))
	changed := false
	for _, e := range entries {
		if e.IsDir() || !trace.IsTraceFile(e.Name()) {
			continue
		}
		path := filepath.Join(s.cfg.Dir, e.Name())
		seen[path] = true
		info, err := e.Info()
		if err != nil {
			s.ingestErrors.Inc()
			return nil, fmt.Errorf("serve: stat %s: %w", path, err)
		}
		prev, ok := s.files[path]
		if ok && prev.size == info.Size() && prev.modTime.Equal(info.ModTime()) {
			continue // untouched: not even re-read
		}
		// Stat changed (or new file): re-read and re-hash; only a
		// content change forces a re-parse.
		if ok {
			hash, err := trace.HashFile(path)
			if err != nil {
				s.ingestErrors.Inc()
				return nil, err
			}
			if hash == prev.hash {
				prev.size, prev.modTime = info.Size(), info.ModTime()
				continue
			}
		}
		tt, hash, err := trace.LoadHashed(path)
		if err != nil {
			s.ingestErrors.Inc()
			return nil, err
		}
		s.traceParses.Inc()
		s.files[path] = &taskEntry{
			fileState: fileState{size: info.Size(), modTime: info.ModTime(), hash: hash},
			trace:     tt,
		}
		changed = true
	}
	for path := range s.files {
		if !seen[path] {
			delete(s.files, path)
			changed = true
		}
	}
	if err := s.refreshManifest(&changed); err != nil {
		s.ingestErrors.Inc()
		return nil, err
	}
	// Streaming checkpoints change the live view without touching the
	// directory; their generation counter is the change signal.
	s.partialMu.Lock()
	gen := s.partialsGen
	s.partialMu.Unlock()
	if gen != s.lastPartialsGen {
		changed = true
	}

	cur := s.snap.Load()
	if cur != nil && !changed {
		s.snapshotHits.Inc()
		return cur, nil
	}
	s.snapshotMisses.Inc()

	next := s.buildSnapshot()
	s.snap.Store(next)
	s.ingests.Inc()
	s.ingestNS.Observe(time.Since(start).Nanoseconds())
	s.snapshotTasks.Set(int64(len(next.traces)))
	return next, nil
}

// refreshManifest reloads dir/manifest.json when its bytes changed.
func (s *Server) refreshManifest(changed *bool) error {
	path := filepath.Join(s.cfg.Dir, "manifest.json")
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		if s.manifest != nil || s.manifestState.hash != "" {
			s.manifest, s.manifestState = nil, fileState{}
			*changed = true
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: stat %s: %w", path, err)
	}
	if s.manifestState.hash != "" && s.manifestState.size == info.Size() &&
		s.manifestState.modTime.Equal(info.ModTime()) {
		return nil
	}
	hash, err := trace.HashFile(path)
	if err != nil {
		return err
	}
	if hash == s.manifestState.hash {
		s.manifestState.size, s.manifestState.modTime = info.Size(), info.ModTime()
		return nil
	}
	m, err := trace.LoadManifest(s.cfg.Dir)
	if err != nil {
		return err
	}
	s.manifest = m
	s.manifestState = fileState{size: info.Size(), modTime: info.ModTime(), hash: hash}
	*changed = true
	return nil
}

// buildSnapshot assembles a read-only snapshot from the current scan
// state: traces sorted exactly as trace.LoadDir sorts them, per-task
// contributions pulled from the content-addressed caches (computing
// and caching only the missing ones), and both graphs merged in the
// deterministic task order the batch builders use.
func (s *Server) buildSnapshot() *snapshot {
	paths := make([]string, 0, len(s.files))
	for path := range s.files {
		paths = append(paths, path)
	}
	sort.Strings(paths) // directory order, as os.ReadDir yields it

	traces := make([]*trace.TaskTrace, 0, len(paths))
	hashByTrace := make(map[*trace.TaskTrace]string, len(paths))
	infoByTrace := make(map[*trace.TaskTrace]TaskInfo, len(paths))
	hashes := make(map[string]bool, len(paths))
	for _, path := range paths {
		ent := s.files[path]
		traces = append(traces, ent.trace)
		hashByTrace[ent.trace] = ent.hash
		hashes[ent.hash] = true
		infoByTrace[ent.trace] = TaskInfo{
			Task: ent.trace.Task, File: path, Size: ent.size, Hash: ent.hash,
			ModTime: ent.modTime, StartNS: ent.trace.StartNS, EndNS: ent.trace.EndNS,
			Failed: ent.trace.Failed,
		}
	}
	// LoadDir's final ordering: stable sort by task name over the
	// directory-ordered slice.
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })

	// Capture the live overlay: retained streaming checkpoints for
	// tasks that have no final trace on disk yet (a final always
	// shadows a partial). lastPartialsGen records what the snapshot
	// saw, so refresh can detect later checkpoint activity.
	batchTasks := make(map[string]bool, len(traces))
	for _, tt := range traces {
		batchTasks[tt.Task] = true
	}
	var partialTraces []*trace.TaskTrace
	var partialLines []string
	s.partialMu.Lock()
	s.lastPartialsGen = s.partialsGen
	for task, pe := range s.partials {
		if batchTasks[task] {
			continue
		}
		partialTraces = append(partialTraces, pe.trace)
		hashByTrace[pe.trace] = pe.hash
		hashes[pe.hash] = true
		partialLines = append(partialLines, fmt.Sprintf("partial:%s=%s@%d", task, pe.hash, pe.seq))
	}
	s.partialMu.Unlock()
	sort.Strings(partialLines)

	usedFTG := map[string]bool{}
	usedSDG := map[string]bool{}
	ordered := analyzer.OrderTasks(traces, s.manifest)
	descs := analyzer.BuildObjectDescs(ordered)
	ftgContribs, sdgContribs := s.contributions(ordered, descs, hashByTrace, usedFTG, usedSDG)

	infos := make([]TaskInfo, 0, len(traces))
	for _, tt := range traces {
		infos = append(infos, infoByTrace[tt])
	}

	snap := &snapshot{
		id:       s.snapshotID(paths, partialLines),
		traces:   traces,
		manifest: s.manifest,
		tasks:    infos,
		hashes:   hashes,
		ftg:      analyzer.BuildFTGFromContributions(ftgContribs),
		sdg:      analyzer.BuildSDGFromContributions(sdgContribs),
		rendered: map[string][]byte{},
	}
	// With zero partials the live view IS the batch view: aliasing the
	// graphs (and, in the handlers, the render keys) makes live and
	// batch responses byte-identical once a stream completes.
	snap.liveTraces, snap.liveFTG, snap.liveSDG = snap.traces, snap.ftg, snap.sdg
	if len(partialTraces) > 0 {
		live := make([]*trace.TaskTrace, 0, len(traces)+len(partialTraces))
		live = append(append(live, traces...), partialTraces...)
		sort.SliceStable(live, func(i, j int) bool { return live[i].Task < live[j].Task })
		liveOrdered := analyzer.OrderTasks(live, s.manifest)
		liveDescs := analyzer.BuildObjectDescs(liveOrdered)
		lf, ls := s.contributions(liveOrdered, liveDescs, hashByTrace, usedFTG, usedSDG)
		snap.liveTraces = live
		snap.liveFTG = analyzer.BuildFTGFromContributions(lf)
		snap.liveSDG = analyzer.BuildSDGFromContributions(ls)
		snap.partialTasks = len(partialTraces)
	}
	// Keep exactly the contributions this snapshot (batch and live)
	// used: earlier revisions of changed traces, superseded checkpoint
	// records and stale description-fingerprint variants are
	// unreachable once the snapshot swaps.
	for hash := range s.ftgCache {
		if !usedFTG[hash] {
			delete(s.ftgCache, hash)
		}
	}
	for key := range s.sdgCache {
		if !usedSDG[key] {
			delete(s.sdgCache, key)
		}
	}
	return snap
}

// contributions assembles per-task FTG and SDG contributions for one
// ordered trace set, pulling from (and filling) the content-addressed
// caches; every key touched is recorded in usedFTG/usedSDG so the
// caller can prune the caches to the snapshot's working set.
func (s *Server) contributions(ordered []*trace.TaskTrace, descs analyzer.ObjectDescs, hashByTrace map[*trace.TaskTrace]string, usedFTG, usedSDG map[string]bool) ([]analyzer.Contribution, []analyzer.Contribution) {
	ftgContribs := make([]analyzer.Contribution, len(ordered))
	sdgContribs := make([]analyzer.Contribution, len(ordered))
	for i, tt := range ordered {
		hash := hashByTrace[tt]
		usedFTG[hash] = true
		if c, ok := s.ftgCache[hash]; ok {
			s.contribHits.Inc()
			ftgContribs[i] = c
		} else {
			s.contribMisses.Inc()
			c = analyzer.FTGContribution(tt)
			s.ftgCache[hash] = c
			ftgContribs[i] = c
		}
		sdgKey := hash + ":" + descs.Fingerprint(tt)
		usedSDG[sdgKey] = true
		if c, ok := s.sdgCache[sdgKey]; ok {
			s.contribHits.Inc()
			sdgContribs[i] = c
		} else {
			s.contribMisses.Inc()
			c = analyzer.SDGContribution(tt, descs, s.cfg.SDGOptions)
			s.sdgCache[sdgKey] = c
			sdgContribs[i] = c
		}
	}
	return ftgContribs, sdgContribs
}

// snapshotID is the content address of the whole served state: the
// manifest hash, every trace file's name and content hash, and every
// retained streaming checkpoint's task, hash and sequence number.
func (s *Server) snapshotID(paths []string, partialLines []string) string {
	var b strings.Builder
	b.WriteString("manifest:")
	b.WriteString(s.manifestState.hash)
	for _, path := range paths {
		b.WriteString("\n")
		b.WriteString(filepath.Base(path))
		b.WriteString("=")
		b.WriteString(s.files[path].hash)
	}
	for _, line := range partialLines {
		b.WriteString("\n")
		b.WriteString(line)
	}
	return trace.HashBytes([]byte(b.String()))
}
