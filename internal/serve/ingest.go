package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/serve/shard"
	"dayu/internal/trace"
)

// fileState identifies one on-disk file revision. Size and
// modification time short-circuit the scan (an untouched file is not
// even re-read); the content hash is the authoritative identity — a
// rewritten file with identical bytes maps to the same cached work.
type fileState struct {
	size    int64
	modTime time.Time
	hash    string
}

// TaskInfo is one row of the /v1/tasks listing.
type TaskInfo struct {
	Task    string    `json:"task"`
	File    string    `json:"file"`
	Size    int64     `json:"size"`
	Hash    string    `json:"hash"`
	ModTime time.Time `json:"mod_time"`
	StartNS int64     `json:"start_ns"`
	EndNS   int64     `json:"end_ns"`
	Failed  bool      `json:"failed,omitempty"`
}

// scanItem is one directory entry routed to a shard worker for the
// stat/hash/parse pipeline.
type scanItem struct {
	path string
	size int64
	mod  time.Time
}

// refresh rescans the trace directory and, when its content changed,
// builds and atomically publishes a new snapshot. It is the single
// writer: callers must hold s.ingestMu. Returns the current snapshot
// (possibly the unchanged one) or the scan/build error.
func (s *Server) refresh() (*snapshot, error) {
	start := time.Now()
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		s.ingestErrors.Inc()
		return nil, fmt.Errorf("serve: scan %s: %w", s.cfg.Dir, err)
	}

	// Partition the directory listing by owning shard worker, then fan
	// the stat/hash/parse work out with one goroutine per worker: each
	// worker touches only its own cache slice, so no locking is needed
	// beyond the ingestMu the caller already holds.
	n := s.coord.Shards()
	byShard := make([][]scanItem, n)
	seenByShard := make([]map[string]bool, n)
	for k := range seenByShard {
		seenByShard[k] = map[string]bool{}
	}
	for _, e := range entries {
		if e.IsDir() || !trace.IsTraceFile(e.Name()) {
			continue
		}
		path := filepath.Join(s.cfg.Dir, e.Name())
		info, err := e.Info()
		if err != nil {
			s.ingestErrors.Inc()
			return nil, fmt.Errorf("serve: stat %s: %w", path, err)
		}
		k := s.coord.RouteFile(path)
		seenByShard[k][path] = true
		byShard[k] = append(byShard[k], scanItem{path: path, size: info.Size(), mod: info.ModTime()})
	}
	changedBy := make([]bool, n)
	errBy := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			changedBy[k], errBy[k] = s.scanShard(s.coord.Worker(k), byShard[k], seenByShard[k])
		}(k)
	}
	wg.Wait()
	changed := false
	for k := 0; k < n; k++ {
		if errBy[k] != nil {
			s.ingestErrors.Inc()
			return nil, errBy[k]
		}
		changed = changed || changedBy[k]
	}
	if err := s.refreshManifest(&changed); err != nil {
		s.ingestErrors.Inc()
		return nil, err
	}
	// Streaming checkpoints change the live view without touching the
	// directory; their generation counter is the change signal.
	s.partialMu.Lock()
	gen := s.partialsGen
	s.partialMu.Unlock()
	if gen != s.lastPartialsGen {
		changed = true
	}

	cur := s.snap.Load()
	if cur != nil && !changed {
		s.snapshotHits.Inc()
		return cur, nil
	}
	s.snapshotMisses.Inc()

	next, err := s.buildSnapshot()
	if err != nil {
		s.ingestErrors.Inc()
		return nil, err
	}
	s.snap.Store(next)
	s.publishEvent(next)
	s.ingests.Inc()
	s.ingestNS.Observe(time.Since(start).Nanoseconds())
	s.snapshotTasks.Set(int64(len(next.traces)))
	s.recordHistory(next)
	return next, nil
}

// scanShard runs one worker's slice of the directory scan: the stat
// short-circuit, the hash check for touched-but-equal files, parsing
// what actually changed, and sweeping deletions. It reports whether
// the worker's cache changed.
func (s *Server) scanShard(w *shard.Worker, items []scanItem, seen map[string]bool) (bool, error) {
	changed := false
	for _, it := range items {
		prev, ok := w.File(it.path)
		if ok && prev.Size == it.size && prev.ModTime.Equal(it.mod) {
			continue // untouched: not even re-read
		}
		// Stat changed (or new file): re-read and re-hash; only a
		// content change forces a re-parse.
		if ok {
			hash, err := trace.HashFile(it.path)
			if err != nil {
				return changed, err
			}
			if hash == prev.Hash {
				w.TouchFile(it.path, it.size, it.mod)
				continue
			}
		}
		tt, hash, err := trace.LoadHashed(it.path)
		if err != nil {
			return changed, err
		}
		s.traceParses.Inc()
		w.PutFile(it.path, shard.Entry{Size: it.size, ModTime: it.mod, Hash: hash, Trace: tt})
		changed = true
	}
	if w.SweepFiles(seen) {
		changed = true
	}
	return changed, nil
}

// refreshManifest reloads dir/manifest.json when its bytes changed.
func (s *Server) refreshManifest(changed *bool) error {
	path := filepath.Join(s.cfg.Dir, "manifest.json")
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		if s.manifest != nil || s.manifestState.hash != "" {
			s.manifest, s.manifestState = nil, fileState{}
			*changed = true
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: stat %s: %w", path, err)
	}
	if s.manifestState.hash != "" && s.manifestState.size == info.Size() &&
		s.manifestState.modTime.Equal(info.ModTime()) {
		return nil
	}
	hash, err := trace.HashFile(path)
	if err != nil {
		return err
	}
	if hash == s.manifestState.hash {
		s.manifestState.size, s.manifestState.modTime = info.Size(), info.ModTime()
		return nil
	}
	m, err := trace.LoadManifest(s.cfg.Dir)
	if err != nil {
		return err
	}
	s.manifest = m
	s.manifestState = fileState{size: info.Size(), modTime: info.ModTime(), hash: hash}
	*changed = true
	return nil
}

// buildSnapshot assembles a read-only snapshot from the current scan
// state: traces sorted exactly as trace.LoadDir sorts them, per-task
// contributions gathered from the shard workers (each computing and
// caching only its missing ones) and stitched back into the global
// task order, and both graphs merged exactly as the batch builders
// merge them — which is why the shard count can never leak into the
// output bytes.
func (s *Server) buildSnapshot() (*snapshot, error) {
	paths := s.coord.Paths() // sorted: directory order, as os.ReadDir yields it

	traces := make([]*trace.TaskTrace, 0, len(paths))
	hashByTrace := make(map[*trace.TaskTrace]string, len(paths))
	infoByTrace := make(map[*trace.TaskTrace]TaskInfo, len(paths))
	hashes := make(map[string]bool, len(paths))
	for _, path := range paths {
		ent, ok := s.coord.File(path)
		if !ok {
			return nil, fmt.Errorf("serve: shard cache lost %s mid-build", path)
		}
		traces = append(traces, ent.Trace)
		hashByTrace[ent.Trace] = ent.Hash
		hashes[ent.Hash] = true
		infoByTrace[ent.Trace] = TaskInfo{
			Task: ent.Trace.Task, File: path, Size: ent.Size, Hash: ent.Hash,
			ModTime: ent.ModTime, StartNS: ent.Trace.StartNS, EndNS: ent.Trace.EndNS,
			Failed: ent.Trace.Failed,
		}
	}
	// LoadDir's final ordering: stable sort by task name over the
	// directory-ordered slice.
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })

	// Capture the live overlay: retained streaming checkpoints for
	// tasks that have no final trace on disk yet (a final always
	// shadows a partial). lastPartialsGen records what the snapshot
	// saw, so refresh can detect later checkpoint activity.
	batchTasks := make(map[string]bool, len(traces))
	for _, tt := range traces {
		batchTasks[tt.Task] = true
	}
	var partialTraces []*trace.TaskTrace
	var partialLines []string
	s.partialMu.Lock()
	s.lastPartialsGen = s.partialsGen
	for task, pe := range s.partials {
		if batchTasks[task] {
			continue
		}
		partialTraces = append(partialTraces, pe.trace)
		hashByTrace[pe.trace] = pe.hash
		hashes[pe.hash] = true
		partialLines = append(partialLines, fmt.Sprintf("partial:%s=%s@%d", task, pe.hash, pe.seq))
	}
	s.partialMu.Unlock()
	sort.Strings(partialLines)

	ordered := analyzer.OrderTasks(traces, s.manifest)
	descs := analyzer.BuildObjectDescs(ordered)
	ftgContribs, sdgContribs, err := s.contributions(ordered, descs, hashByTrace)
	if err != nil {
		return nil, err
	}

	infos := make([]TaskInfo, 0, len(traces))
	for _, tt := range traces {
		infos = append(infos, infoByTrace[tt])
	}

	snap := &snapshot{
		id:       s.snapshotID(paths, partialLines),
		traces:   traces,
		manifest: s.manifest,
		tasks:    infos,
		hashes:   hashes,
		ftg:      analyzer.BuildFTGFromContributions(ftgContribs),
		sdg:      analyzer.BuildSDGFromContributions(sdgContribs),
		rendered: map[string][]byte{},
	}
	// With zero partials the live view IS the batch view: aliasing the
	// graphs (and, in the handlers, the render keys) makes live and
	// batch responses byte-identical once a stream completes.
	snap.liveTraces, snap.liveFTG, snap.liveSDG = snap.traces, snap.ftg, snap.sdg
	if len(partialTraces) > 0 {
		live := make([]*trace.TaskTrace, 0, len(traces)+len(partialTraces))
		live = append(append(live, traces...), partialTraces...)
		sort.SliceStable(live, func(i, j int) bool { return live[i].Task < live[j].Task })
		liveOrdered := analyzer.OrderTasks(live, s.manifest)
		liveDescs := analyzer.BuildObjectDescs(liveOrdered)
		lf, ls, err := s.contributions(liveOrdered, liveDescs, hashByTrace)
		if err != nil {
			return nil, err
		}
		snap.liveTraces = live
		snap.liveFTG = analyzer.BuildFTGFromContributions(lf)
		snap.liveSDG = analyzer.BuildSDGFromContributions(ls)
		snap.partialTasks = len(partialTraces)
	}
	// Keep exactly the contributions this snapshot (batch and live)
	// used: earlier revisions of changed traces, superseded checkpoint
	// records and stale description-fingerprint variants are
	// unreachable once the snapshot swaps.
	s.coord.Prune()
	return snap, nil
}

// contributions fans one ordered trace set out to the shard workers
// (each serving its slice from cache or computing the misses) and
// stitches the per-shard sets back into the global task order. A
// stitch error means the partition invariant broke — it surfaces as an
// ingest error rather than publishing a graph with a hole.
func (s *Server) contributions(ordered []*trace.TaskTrace, descs analyzer.ObjectDescs, hashByTrace map[*trace.TaskTrace]string) ([]analyzer.Contribution, []analyzer.Contribution, error) {
	tasks := make([]shard.Task, len(ordered))
	for i, tt := range ordered {
		tasks[i] = shard.Task{Pos: i, Trace: tt, Hash: hashByTrace[tt]}
	}
	sets := s.coord.Gather(
		shard.Request{Tasks: tasks, Descs: descs, Opts: s.cfg.SDGOptions},
		shard.Metrics{Hit: s.contribHits.Inc, Miss: s.contribMisses.Inc},
	)
	return shard.Stitch(len(ordered), sets)
}

// recordHistory appends a converged snapshot (no live partials — a
// half-streamed state is not a state worth replaying) to the history
// store, seeding the snapshot's render cache with the recorded bodies
// so history replay and live responses share bytes by construction.
// History failures degrade /healthz; they never block serving.
func (s *Server) recordHistory(snap *snapshot) {
	if s.hist == nil || snap.partialTasks > 0 {
		return
	}
	ftgBody, err := renderGraph(snap.ftg, "json")
	if err != nil {
		s.histErr.Store(&ingestError{err: fmt.Errorf("serve: history render ftg: %w", err), when: time.Now()})
		return
	}
	sdgBody, err := renderGraph(snap.sdg, "json")
	if err != nil {
		s.histErr.Store(&ingestError{err: fmt.Errorf("serve: history render sdg: %w", err), when: time.Now()})
		return
	}
	snap.mu.Lock()
	if _, ok := snap.rendered["ftg.json"]; !ok {
		snap.rendered["ftg.json"] = ftgBody
	}
	if _, ok := snap.rendered["sdg.json"]; !ok {
		snap.rendered["sdg.json"] = sdgBody
	}
	snap.mu.Unlock()
	if _, err := s.hist.Append(snap.id, time.Now().UTC(), len(snap.tasks), ftgBody, sdgBody); err != nil {
		s.histErr.Store(&ingestError{err: err, when: time.Now()})
		return
	}
	s.histErr.Store(nil)
}

// snapshotID is the content address of the whole served state: the
// manifest hash, every trace file's name and content hash, and every
// retained streaming checkpoint's task, hash and sequence number.
func (s *Server) snapshotID(paths []string, partialLines []string) string {
	var b strings.Builder
	b.WriteString("manifest:")
	b.WriteString(s.manifestState.hash)
	for _, path := range paths {
		ent, _ := s.coord.File(path)
		b.WriteString("\n")
		b.WriteString(filepath.Base(path))
		b.WriteString("=")
		b.WriteString(ent.Hash)
	}
	for _, line := range partialLines {
		b.WriteString("\n")
		b.WriteString(line)
	}
	return trace.HashBytes([]byte(b.String()))
}
