package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/trace"
)

// fileState identifies one on-disk trace file revision. Size and
// modification time short-circuit the scan (an untouched file is not
// even re-read); the content hash is the authoritative identity — a
// rewritten file with identical bytes maps to the same cached work.
type fileState struct {
	size    int64
	modTime time.Time
	hash    string
}

// taskEntry is the parsed-trace cache, keyed by file path in the
// server's scan state. The decoded trace is reused as long as the
// content hash matches, so touching a file (mtime change, same bytes)
// re-hashes but never re-parses.
type taskEntry struct {
	fileState
	trace *trace.TaskTrace
}

// TaskInfo is one row of the /v1/tasks listing.
type TaskInfo struct {
	Task    string    `json:"task"`
	File    string    `json:"file"`
	Size    int64     `json:"size"`
	Hash    string    `json:"hash"`
	ModTime time.Time `json:"mod_time"`
	StartNS int64     `json:"start_ns"`
	EndNS   int64     `json:"end_ns"`
	Failed  bool      `json:"failed,omitempty"`
}

// refresh rescans the trace directory and, when its content changed,
// builds and atomically publishes a new snapshot. It is the single
// writer: callers must hold s.ingestMu. Returns the current snapshot
// (possibly the unchanged one) or the scan/build error.
func (s *Server) refresh() (*snapshot, error) {
	start := time.Now()
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		s.ingestErrors.Inc()
		return nil, fmt.Errorf("serve: scan %s: %w", s.cfg.Dir, err)
	}

	seen := make(map[string]bool, len(entries))
	changed := false
	for _, e := range entries {
		if e.IsDir() || !trace.IsTraceFile(e.Name()) {
			continue
		}
		path := filepath.Join(s.cfg.Dir, e.Name())
		seen[path] = true
		info, err := e.Info()
		if err != nil {
			s.ingestErrors.Inc()
			return nil, fmt.Errorf("serve: stat %s: %w", path, err)
		}
		prev, ok := s.files[path]
		if ok && prev.size == info.Size() && prev.modTime.Equal(info.ModTime()) {
			continue // untouched: not even re-read
		}
		// Stat changed (or new file): re-read and re-hash; only a
		// content change forces a re-parse.
		if ok {
			hash, err := trace.HashFile(path)
			if err != nil {
				s.ingestErrors.Inc()
				return nil, err
			}
			if hash == prev.hash {
				prev.size, prev.modTime = info.Size(), info.ModTime()
				continue
			}
		}
		tt, hash, err := trace.LoadHashed(path)
		if err != nil {
			s.ingestErrors.Inc()
			return nil, err
		}
		s.traceParses.Inc()
		s.files[path] = &taskEntry{
			fileState: fileState{size: info.Size(), modTime: info.ModTime(), hash: hash},
			trace:     tt,
		}
		changed = true
	}
	for path := range s.files {
		if !seen[path] {
			delete(s.files, path)
			changed = true
		}
	}
	if err := s.refreshManifest(&changed); err != nil {
		s.ingestErrors.Inc()
		return nil, err
	}

	cur := s.snap.Load()
	if cur != nil && !changed {
		s.snapshotHits.Inc()
		return cur, nil
	}
	s.snapshotMisses.Inc()

	next := s.buildSnapshot()
	s.snap.Store(next)
	s.ingests.Inc()
	s.ingestNS.Observe(time.Since(start).Nanoseconds())
	s.snapshotTasks.Set(int64(len(next.traces)))
	return next, nil
}

// refreshManifest reloads dir/manifest.json when its bytes changed.
func (s *Server) refreshManifest(changed *bool) error {
	path := filepath.Join(s.cfg.Dir, "manifest.json")
	info, err := os.Stat(path)
	if os.IsNotExist(err) {
		if s.manifest != nil || s.manifestState.hash != "" {
			s.manifest, s.manifestState = nil, fileState{}
			*changed = true
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: stat %s: %w", path, err)
	}
	if s.manifestState.hash != "" && s.manifestState.size == info.Size() &&
		s.manifestState.modTime.Equal(info.ModTime()) {
		return nil
	}
	hash, err := trace.HashFile(path)
	if err != nil {
		return err
	}
	if hash == s.manifestState.hash {
		s.manifestState.size, s.manifestState.modTime = info.Size(), info.ModTime()
		return nil
	}
	m, err := trace.LoadManifest(s.cfg.Dir)
	if err != nil {
		return err
	}
	s.manifest = m
	s.manifestState = fileState{size: info.Size(), modTime: info.ModTime(), hash: hash}
	*changed = true
	return nil
}

// buildSnapshot assembles a read-only snapshot from the current scan
// state: traces sorted exactly as trace.LoadDir sorts them, per-task
// contributions pulled from the content-addressed caches (computing
// and caching only the missing ones), and both graphs merged in the
// deterministic task order the batch builders use.
func (s *Server) buildSnapshot() *snapshot {
	paths := make([]string, 0, len(s.files))
	for path := range s.files {
		paths = append(paths, path)
	}
	sort.Strings(paths) // directory order, as os.ReadDir yields it

	traces := make([]*trace.TaskTrace, 0, len(paths))
	hashByTrace := make(map[*trace.TaskTrace]string, len(paths))
	infoByTrace := make(map[*trace.TaskTrace]TaskInfo, len(paths))
	hashes := make(map[string]bool, len(paths))
	for _, path := range paths {
		ent := s.files[path]
		traces = append(traces, ent.trace)
		hashByTrace[ent.trace] = ent.hash
		hashes[ent.hash] = true
		infoByTrace[ent.trace] = TaskInfo{
			Task: ent.trace.Task, File: path, Size: ent.size, Hash: ent.hash,
			ModTime: ent.modTime, StartNS: ent.trace.StartNS, EndNS: ent.trace.EndNS,
			Failed: ent.trace.Failed,
		}
	}
	// LoadDir's final ordering: stable sort by task name over the
	// directory-ordered slice.
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })

	ordered := analyzer.OrderTasks(traces, s.manifest)
	descs := analyzer.BuildObjectDescs(ordered)

	ftgContribs := make([]analyzer.Contribution, len(ordered))
	sdgContribs := make([]analyzer.Contribution, len(ordered))
	usedFTG := make(map[string]bool, len(ordered))
	usedSDG := make(map[string]bool, len(ordered))
	for i, tt := range ordered {
		hash := hashByTrace[tt]
		usedFTG[hash] = true
		if c, ok := s.ftgCache[hash]; ok {
			s.contribHits.Inc()
			ftgContribs[i] = c
		} else {
			s.contribMisses.Inc()
			c = analyzer.FTGContribution(tt)
			s.ftgCache[hash] = c
			ftgContribs[i] = c
		}
		sdgKey := hash + ":" + descs.Fingerprint(tt)
		usedSDG[sdgKey] = true
		if c, ok := s.sdgCache[sdgKey]; ok {
			s.contribHits.Inc()
			sdgContribs[i] = c
		} else {
			s.contribMisses.Inc()
			c = analyzer.SDGContribution(tt, descs, s.cfg.SDGOptions)
			s.sdgCache[sdgKey] = c
			sdgContribs[i] = c
		}
	}
	// Keep exactly the contributions this snapshot used: earlier
	// revisions of changed traces and stale description-fingerprint
	// variants are unreachable once the snapshot swaps.
	for hash := range s.ftgCache {
		if !usedFTG[hash] {
			delete(s.ftgCache, hash)
		}
	}
	for key := range s.sdgCache {
		if !usedSDG[key] {
			delete(s.sdgCache, key)
		}
	}

	infos := make([]TaskInfo, 0, len(traces))
	for _, tt := range traces {
		infos = append(infos, infoByTrace[tt])
	}

	snap := &snapshot{
		id:       s.snapshotID(paths),
		traces:   traces,
		manifest: s.manifest,
		tasks:    infos,
		hashes:   hashes,
		ftg:      analyzer.BuildFTGFromContributions(ftgContribs),
		sdg:      analyzer.BuildSDGFromContributions(sdgContribs),
		rendered: map[string][]byte{},
	}
	return snap
}

// snapshotID is the content address of the whole directory state: the
// manifest hash plus every trace file's name and content hash.
func (s *Server) snapshotID(paths []string) string {
	var b strings.Builder
	b.WriteString("manifest:")
	b.WriteString(s.manifestState.hash)
	for _, path := range paths {
		b.WriteString("\n")
		b.WriteString(filepath.Base(path))
		b.WriteString("=")
		b.WriteString(s.files[path].hash)
	}
	return trace.HashBytes([]byte(b.String()))
}
