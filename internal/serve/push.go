package serve

// The durable push-ingest path: POST /v1/ingest accepts one complete
// trace byte stream per request (dtb/v2 or JSON, sniffed from the
// magic), validates it, appends the raw bytes to the write-ahead log,
// and only then acknowledges with 200 — so an acknowledged record
// survives a crash at any byte boundary. A single folder goroutine
// drains acknowledged records into the watched trace directory
// (atomic rename under the exact file name the batch loaders use),
// advances the WAL fold checkpoint, and triggers an incremental
// rescan, keeping /v1/* responses byte-identical to the batch CLI
// over the union of pushed and directory traces.
//
// Admission control is a fixed pool of queue slots: a push that finds
// no free slot is rejected with 429 + Retry-After before anything is
// written, so the WAL cannot grow unboundedly ahead of folding.
// Dedup is content-addressed: a payload whose hash matches an already
// acknowledged or already folded trace is acknowledged as a duplicate
// without re-appending, which makes client retries idempotent. A
// payload identical to one whose append is still in flight waits for
// that append to settle first — answering "duplicate" earlier would
// acknowledge bytes not yet durable, and appending would double-log.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"dayu/internal/trace"
)

// foldJob is one acknowledged record awaiting folding. admitted marks
// jobs holding an admission slot (live pushes; startup replay jobs do
// not).
type foldJob struct {
	seq      uint64
	hash     string
	data     []byte
	admitted bool
}

// PushResponse is the /v1/ingest response body.
type PushResponse struct {
	// Status is "accepted" (durably logged), "duplicate" (an
	// identical payload was already acknowledged), or "resync" (a
	// delta checkpoint whose base is not the task's acknowledged
	// head; sent with HTTP 409, and the client must re-push the
	// checkpoint in cumulative framing).
	Status string `json:"status"`
	Task   string `json:"task"`
	Hash   string `json:"hash"`
	// Seq is the WAL sequence number of accepted records. On a
	// "resync" it instead carries the checkpoint sequence the server
	// does have for the task, so clients can diagnose the gap.
	Seq uint64 `json:"seq,omitempty"`
}

// handleIngest is POST /v1/ingest.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.pushEnabled() {
		http.Error(w, "push ingest disabled (start serve with a WAL directory)", http.StatusNotImplemented)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.pushRejected.Inc()
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return
	}
	// Zero-copy decode: the trace is only used to validate the payload
	// and name it; data outlives it (it is the WAL/queue payload).
	// DecodeBytesMeta also admits incremental checkpoint records, whose
	// header sequence number makes every checkpoint's bytes (and hash)
	// distinct, so the content-addressed dedup below applies unchanged.
	tt, meta, err := trace.DecodeBytesMeta(data, trace.DecodeOptions{ZeroCopy: true})
	if err != nil {
		s.pushErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hash := trace.HashBytes(data)
	// Route by task name: one task's checkpoints and final always land
	// in the same shard's WAL and fold sequentially in its folder.
	sh := s.walFor(tt.Task)

	for {
		s.pushMu.Lock()
		if s.pushClosed {
			s.pushMu.Unlock()
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		if s.isDuplicateLocked(hash) {
			s.pushMu.Unlock()
			s.pushDuplicates.Inc()
			s.writePushResponse(w, PushResponse{Status: "duplicate", Task: tt.Task, Hash: hash})
			return
		}
		twin, inflight := s.pending[hash]
		if !inflight {
			break // proceed, still holding pushMu
		}
		// An identical payload is mid-append. Answering "duplicate"
		// now would acknowledge bytes that are not durable yet, and
		// appending too would double-log; wait for the twin's append
		// to settle and re-evaluate.
		s.pushMu.Unlock()
		select {
		case <-twin:
		case <-r.Context().Done():
			http.Error(w, "canceled while an identical push was in flight", http.StatusServiceUnavailable)
			return
		}
	}
	if meta.Delta {
		// Delta gate, before the WAL sees the bytes: folding is ordered
		// per shard, so a delta is only usable if its base is the task's
		// acknowledged checkpoint head. Anything else — a restart that
		// lost the in-memory ack state, an evicted partial, a client
		// bug — gets a 409 resync NACK carrying the sequence we do have,
		// and the client re-pushes cumulative framing.
		s.partialMu.Lock()
		have := s.streamSeqs[tt.Task]
		s.partialMu.Unlock()
		if have != meta.DeltaBaseSeq {
			s.pushMu.Unlock()
			s.deltaResyncs.Inc()
			s.writePushResponseCode(w, http.StatusConflict, PushResponse{Status: "resync", Task: tt.Task, Seq: have})
			return
		}
	}
	select {
	case sh.sem <- struct{}{}:
	default:
		s.pushMu.Unlock()
		s.pushRejected.Inc()
		retry := s.cfg.RetryAfter
		if retry <= 0 {
			retry = time.Second
		}
		// Retry-After is whole seconds; sub-half-second hints round to
		// 0 ("retry at your own backoff") rather than inflating to 1s.
		secs := int64(retry.Round(time.Second) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		return
	}
	inflight := make(chan struct{})
	s.pending[hash] = inflight
	s.pushWG.Add(1)
	s.pushMu.Unlock()
	defer s.pushWG.Done()

	appendStart := time.Now()
	seq, err := sh.wal.Append(data)
	elapsed := time.Since(appendStart).Nanoseconds()
	s.walAppendNS.Observe(elapsed)
	sh.appendNS.Observe(elapsed)
	s.pushMu.Lock()
	if err == nil {
		s.acked[hash] = true
	}
	delete(s.pending, hash)
	close(inflight)
	s.pushMu.Unlock()
	if err != nil {
		<-sh.sem
		s.pushErrors.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.pushAccepted.Inc()
	if meta.Incremental {
		// The acknowledged checkpoint head advances at ack time, not
		// fold time: the client's next delta may arrive before the
		// folder has applied this record, and ordered folding will have
		// its base in place by the time the delta folds.
		s.partialMu.Lock()
		if meta.CheckpointSeq > s.streamSeqs[tt.Task] {
			s.streamSeqs[tt.Task] = meta.CheckpointSeq
		}
		s.partialMu.Unlock()
	}
	s.updateWALGauges()
	// Guaranteed not to block: the shard's foldQ has at least one slot
	// per admission slot, and its folder frees the queue slot first.
	sh.foldQ <- foldJob{seq: seq, hash: hash, data: data, admitted: true}
	s.writePushResponse(w, PushResponse{Status: "accepted", Task: tt.Task, Hash: hash, Seq: seq})
}

// isDuplicateLocked reports whether a payload hash was already
// acknowledged (this process) or folded (any process — the snapshot
// hashes cover the on-disk directory). Callers hold pushMu.
func (s *Server) isDuplicateLocked(hash string) bool {
	if s.acked[hash] {
		return true
	}
	if snap := s.snap.Load(); snap != nil && snap.hashes[hash] {
		return true
	}
	return false
}

func (s *Server) writePushResponse(w http.ResponseWriter, resp PushResponse) {
	s.writePushResponseCode(w, http.StatusOK, resp)
}

func (s *Server) writePushResponseCode(w http.ResponseWriter, code int, resp PushResponse) {
	body, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// handleIngestManifest is POST /v1/ingest/manifest: replaces the
// watched directory's manifest.json (atomic rename, so a crash after
// the 200 cannot tear it).
func (s *Server) handleIngestManifest(w http.ResponseWriter, r *http.Request) {
	if !s.pushEnabled() {
		http.Error(w, "push ingest disabled (start serve with a WAL directory)", http.StatusNotImplemented)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m trace.Manifest
	if err := dec.Decode(&m); err != nil {
		http.Error(w, fmt.Sprintf("bad manifest: %v", err), http.StatusBadRequest)
		return
	}
	if err := trace.SaveManifest(s.cfg.Dir, &m); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := s.Ingest(); err != nil {
		// The manifest landed durably; the scan error surfaces via
		// /healthz like any other ingest failure.
		s.ingestErrors.Inc()
	}
	s.writePushResponse(w, PushResponse{Status: "accepted", Hash: trace.HashBytes(data)})
}

// folder is one shard's goroutine draining its acknowledged records
// into the trace directory. It exits when the shard's foldQ closes
// (graceful shutdown drains everything already acknowledged). Folding
// is safe to run concurrently across shards: each write is an atomic
// rename, tasks route to exactly one shard, and the rescan is
// serialized by ingestMu.
func (s *Server) folder(sh *shardIngest) {
	defer close(sh.foldDone)
	for job := range sh.foldQ {
		if h := s.cfg.foldHook; h != nil {
			h(job)
		}
		s.foldOne(sh, job)
		if job.admitted {
			<-sh.sem
		}
		s.updateWALGauges()
		if len(sh.foldQ) == 0 {
			// Coalesced rescan after a burst: the new files enter the
			// snapshot without waiting for the poll tick.
			_, _ = s.Ingest()
		}
	}
}

// foldOne folds one record with bounded retries. A record that cannot
// be folded transiently (disk full, ...) stays unfolded in the WAL —
// it is acknowledged data, so it must survive to the next replay
// rather than being dropped.
func (s *Server) foldOne(sh *shardIngest, job foldJob) {
	const attempts = 5
	delay := 10 * time.Millisecond
	start := time.Now()
	for attempt := 1; ; attempt++ {
		err := s.foldBytes(job.data)
		if err == nil {
			sh.wal.MarkFolded(job.seq)
			sh.foldNS.Observe(time.Since(start).Nanoseconds())
			return
		}
		if errors.Is(err, errUnfoldable) {
			// The payload can never fold (it validated at push time, so
			// this means corruption that beat the CRC). Quarantine the
			// bytes first — they are acknowledged data, and advancing
			// the fold checkpoint without a copy would destroy the only
			// evidence — then mark it folded so replay does not spin on
			// it forever.
			s.foldErrors.Inc()
			s.lastErr.Store(&ingestError{err: fmt.Errorf("serve: fold record %d: %w", job.seq, err), when: time.Now()})
			if qerr := s.quarantineRecord(s.quarantinePrefix(sh.idx), job.seq, job.data); qerr != nil {
				// Could not preserve the bytes: leave the record pending
				// in the WAL (the next replay retries the quarantine)
				// rather than dropping acknowledged data.
				s.lastErr.Store(&ingestError{err: fmt.Errorf("serve: quarantine record %d: %w", job.seq, qerr), when: time.Now()})
				return
			}
			sh.wal.MarkFolded(job.seq)
			return
		}
		s.foldErrors.Inc()
		s.lastErr.Store(&ingestError{err: fmt.Errorf("serve: fold record %d: %w", job.seq, err), when: time.Now()})
		if attempt >= attempts {
			return // left pending in the WAL for the next replay
		}
		select {
		case <-s.stop:
			return
		case <-time.After(delay):
		}
		delay *= 2
	}
}

// errUnfoldable marks fold failures that no retry can cure.
var errUnfoldable = errors.New("unfoldable record")

// quarantineDir holds acknowledged records that could not be folded
// (errUnfoldable): the WAL checkpoint only advances past such a record
// once its bytes are preserved here, so a poisoned record survives any
// number of restarts for offline inspection instead of vanishing.
func (s *Server) quarantineDir() string {
	return filepath.Join(s.cfg.WALDir, "quarantine")
}

// quarantinePrefix namespaces quarantine file names by WAL shard:
// every shard numbers its own records from zero, so without the prefix
// two shards' records with equal sequence numbers would overwrite each
// other. A single-shard server keeps the historical bare names.
func (s *Server) quarantinePrefix(shardIdx int) string {
	if s.coord.Shards() == 1 {
		return ""
	}
	return fmt.Sprintf("shard-%d-", shardIdx)
}

// quarantineRecord persists an unfoldable record's raw bytes under the
// quarantine directory, named by WAL sequence number (prefixed by its
// shard namespace when sharded). Idempotent: re-quarantining the same
// seq rewrites the same file.
func (s *Server) quarantineRecord(prefix string, seq uint64, data []byte) error {
	dir := s.quarantineDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, fmt.Sprintf("%srec-%d.bin", prefix, seq)), data)
}

// countQuarantined reports how many records sit in quarantine.
func (s *Server) countQuarantined() int {
	entries, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

// foldBytes lands one acknowledged payload in the trace directory
// under the exact name the batch loaders expect, preserving the
// pushed bytes (so the file's content hash equals the push hash and
// dedup survives restarts). Folding is idempotent: re-folding the
// same payload rewrites the same file with the same bytes.
func (s *Server) foldBytes(data []byte) error {
	// Zero-copy decode: only the task name is read before the raw
	// bytes land on disk.
	tt, meta, err := trace.DecodeBytesMeta(data, trace.DecodeOptions{ZeroCopy: true})
	if err != nil {
		return fmt.Errorf("%w: %v", errUnfoldable, err)
	}
	if meta.Incremental {
		return s.foldCheckpoint(data, tt.Task, meta)
	}
	format := trace.SniffFormat(data)
	path := filepath.Join(s.cfg.Dir, trace.TraceFileName(tt.Task, format))
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	// Remove a stale twin in the other serialization so the task is
	// never analyzed twice. (A crash between rename and remove leaves
	// both; the record is still unfolded then, and replay converges.)
	other := trace.FormatJSON
	if format == trace.FormatJSON {
		other = trace.FormatBinary
	}
	twin := filepath.Join(s.cfg.Dir, trace.TraceFileName(tt.Task, other))
	if err := os.Remove(twin); err != nil && !os.IsNotExist(err) {
		return err
	}
	// The final supersedes any streamed checkpoint for this task.
	s.retractPartial(tt.Task)
	return nil
}

// writeFileAtomic lands data at path via a same-directory temp file
// and rename, so concurrent readers and crashed writers never observe
// a partial file.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	tmp = nil
	return nil
}

// updateWALGauges refreshes the WAL/queue gauges from live state: the
// global gauges as sums across shards (at one shard, exactly the
// pre-sharding values) plus each shard's own breakdown.
func (s *Server) updateWALGauges() {
	if !s.pushEnabled() {
		return
	}
	var pending, segments, depth int64
	for _, sh := range s.shards {
		stats := sh.wal.Stats()
		shardDepth := int64(len(sh.sem))
		sh.walPending.Set(int64(stats.Pending))
		sh.walSegments.Set(int64(stats.Segments))
		sh.queueDepth.Set(shardDepth)
		pending += int64(stats.Pending)
		segments += int64(stats.Segments)
		depth += shardDepth
	}
	s.walPending.Set(pending)
	s.walSegments.Set(segments)
	s.queueDepth.Set(depth)
	s.partialMu.Lock()
	partials := len(s.partials)
	s.partialMu.Unlock()
	s.partialGauge.Set(int64(partials))
}
