package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// sseConn is one open /v1/live/events connection under test.
type sseConn struct {
	rd     *bufio.Reader
	resp   *http.Response
	cancel context.CancelFunc
}

// dialSSE opens the event stream, optionally resuming from lastID.
func dialSSE(t *testing.T, srv *httptest.Server, lastID string) *sseConn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/live/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("GET /v1/live/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	c := &sseConn{rd: bufio.NewReader(resp.Body), resp: resp, cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseConn) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads the next event, skipping heartbeat comments. The
// connection's context deadline bounds the wait.
func (c *sseConn) next(t *testing.T) sseEvent {
	t.Helper()
	var ev sseEvent
	var data []string
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || len(data) != 0 || ev.id != "" {
				// Per the SSE spec, consecutive data fields rejoin
				// with \n.
				ev.data = strings.Join(data, "\n")
				return ev
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):])
		}
	}
}

// expectHeartbeat reads raw lines until a heartbeat comment arrives.
func (c *sseConn) expectHeartbeat(t *testing.T) {
	t.Helper()
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("waiting for heartbeat: %v", err)
		}
		if strings.HasPrefix(line, ": heartbeat") {
			return
		}
	}
}

// expectPayload reconstructs the exact event data an endpoint's
// current state should produce: the snapshot header fields plus the
// endpoint's verbatim body. Comparing against it asserts byte-identity
// between SSE-delivered findings and the polling endpoint.
func expectPayload(t *testing.T, srv *httptest.Server, path string, partial, complete int) string {
	t.Helper()
	body, hdr := getHdr(t, srv, path)
	return fmt.Sprintf(`{"snapshot":%q,"partial_tasks":%d,"complete_tasks":%d,"findings":%s}`,
		hdr.Get("X-Dayu-Snapshot"), partial, complete, body)
}

// eventPayload is the decoded `event: snapshot` data line.
type eventPayload struct {
	Snapshot      string          `json:"snapshot"`
	PartialTasks  int             `json:"partial_tasks"`
	CompleteTasks int             `json:"complete_tasks"`
	Findings      json.RawMessage `json:"findings"`
}

func decodeEvent(t *testing.T, ev sseEvent) eventPayload {
	t.Helper()
	if ev.event != "snapshot" {
		t.Fatalf("event type %q, want snapshot", ev.event)
	}
	if _, err := strconv.ParseUint(ev.id, 10, 64); err != nil {
		t.Fatalf("event id %q is not a number: %v", ev.id, err)
	}
	var p eventPayload
	if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
		t.Fatalf("bad event payload %q: %v", ev.data, err)
	}
	return p
}

// sseEnv builds a WAL-enabled server over a complete fixture with a
// fast heartbeat, so SSE tests observe both framing kinds quickly.
func sseEnv(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	fixture := writeFixtureDir(t)
	s := mustServer(t, Config{
		Dir: fixture, WALDir: t.TempDir(), WAL: WALOptions{Fsync: FsyncNever},
		PlanOptions:  testPlanOpts,
		SSEHeartbeat: 50 * time.Millisecond,
	})
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv
}

// TestLiveEventsStream covers the happy path: the first event carries
// the current converged state (findings byte-identical to
// /v1/diagnose), a push produces a follow-up event whose findings
// match the polling endpoint for the same snapshot, and heartbeats
// flow between events.
func TestLiveEventsStream(t *testing.T) {
	s, srv := sseEnv(t)

	conn := dialSSE(t, srv, "")
	firstEv := conn.next(t)
	first := decodeEvent(t, firstEv)
	if first.PartialTasks != 0 || first.CompleteTasks != 24 {
		t.Fatalf("first event counts = %d partial / %d complete, want 0/24",
			first.PartialTasks, first.CompleteTasks)
	}
	_, hdr := getHdr(t, srv, "/v1/live/ftg")
	if first.Snapshot != hdr.Get("X-Dayu-Snapshot") {
		t.Errorf("first event snapshot %q != live header %q", first.Snapshot, hdr.Get("X-Dayu-Snapshot"))
	}
	// Converged: the event body embeds the /v1/live/diagnostics bytes,
	// which are themselves byte-identical to /v1/diagnose.
	if want := expectPayload(t, srv, "/v1/live/diagnostics", 0, 24); firstEv.data != want {
		t.Error("converged event payload differs from /v1/live/diagnostics state")
	}
	liveBody, _ := getHdr(t, srv, "/v1/live/diagnostics")
	if diag := get(t, srv, "/v1/diagnose"); !bytes.Equal(liveBody, diag) {
		t.Error("converged /v1/live/diagnostics differs from /v1/diagnose")
	}

	conn.expectHeartbeat(t)

	// A pushed checkpoint changes the snapshot and must produce exactly
	// one more event, matching what polling would see.
	tt := liveTask("sse_task")
	if status, pr, _ := postIngest(t, srv, encodeCheckpoint(t, tt, 1)); status != http.StatusOK || pr.Status != "accepted" {
		t.Fatalf("checkpoint push = %d %q", status, pr.Status)
	}
	secondEv := conn.next(t)
	second := decodeEvent(t, secondEv)
	if second.PartialTasks != 1 || second.CompleteTasks != 24 {
		t.Fatalf("second event counts = %d partial / %d complete, want 1/24",
			second.PartialTasks, second.CompleteTasks)
	}
	if second.Snapshot == first.Snapshot {
		t.Error("snapshot id did not change after a checkpoint push")
	}
	if want := expectPayload(t, srv, "/v1/live/diagnostics", 1, 24); secondEv.data != want {
		t.Error("partial event payload differs from /v1/live/diagnostics state")
	}

	s.Close() // the stream must end rather than hang on shutdown
	if _, err := conn.rd.ReadString(0); err == nil {
		t.Error("stream still open after server close")
	}
}

// TestLiveEventsResume pins Last-Event-ID semantics: an id inside the
// replay ring resumes with exactly the missed events, a fresh or stale
// id gets one full current-state event.
func TestLiveEventsResume(t *testing.T) {
	_, srv := sseEnv(t)

	conn := dialSSE(t, srv, "")
	first := conn.next(t)
	firstPayload := decodeEvent(t, first)

	// Two pushes, each waited to its own snapshot so they publish two
	// distinct events rather than coalescing.
	if status, _, _ := postIngest(t, srv, encodeCheckpoint(t, liveTask("resume_a"), 1)); status != http.StatusOK {
		t.Fatalf("push a = %d", status)
	}
	waitLiveCounts(t, srv, 1, 24)
	if status, _, _ := postIngest(t, srv, encodeCheckpoint(t, liveTask("resume_b"), 2)); status != http.StatusOK {
		t.Fatalf("push b = %d", status)
	}
	waitLiveCounts(t, srv, 2, 24)

	evA := conn.next(t)
	evB := conn.next(t)

	// Resuming from the first event's id replays the two missed events
	// verbatim.
	resumed := dialSSE(t, srv, first.id)
	gotA := resumed.next(t)
	gotB := resumed.next(t)
	if gotA.id != evA.id || gotA.data != evA.data {
		t.Errorf("resume replayed id %s, want %s", gotA.id, evA.id)
	}
	if gotB.id != evB.id || gotB.data != evB.data {
		t.Errorf("resume replayed id %s, want %s", gotB.id, evB.id)
	}

	// A fresh connection gets only the newest state.
	fresh := dialSSE(t, srv, "")
	if ev := fresh.next(t); ev.id != evB.id {
		t.Errorf("fresh connection got id %s, want newest %s", ev.id, evB.id)
	}

	// A stale/unknown id (server restarted, ring outgrown) falls back
	// to one full current-state event.
	stale := dialSSE(t, srv, "99999")
	if ev := stale.next(t); ev.id != evB.id {
		t.Errorf("stale resume got id %s, want newest %s", ev.id, evB.id)
	}

	// Garbage ids are ignored rather than erroring: full-state events
	// make "treat as fresh" always correct.
	garbage := dialSSE(t, srv, "not-a-number")
	if ev := decodeEvent(t, garbage.next(t)); ev.Snapshot == firstPayload.Snapshot {
		t.Error("garbage Last-Event-ID did not observe the newest snapshot")
	}
}

// TestLiveParamValidation is the regression table for live-endpoint
// parameter handling: a negative, zero, or malformed ?window=/?horizon=
// must be rejected with 400 on every live endpoint — never silently
// treated as unset.
func TestLiveParamValidation(t *testing.T) {
	_, srv := sseEnv(t)
	endpoints := []struct{ path, param string }{
		{"/v1/live/ftg", "window"},
		{"/v1/live/sdg", "window"},
		{"/v1/live/diagnostics", "horizon"},
		{"/v1/live/events", "window"},
		{"/v1/live/events", "horizon"},
	}
	for _, ep := range endpoints {
		for _, bad := range []string{"-5s", "0s", "garbage"} {
			url := fmt.Sprintf("%s%s?%s=%s", srv.URL, ep.path, ep.param, bad)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("GET %s?%s=%s = %d, want 400", ep.path, ep.param, bad, resp.StatusCode)
			}
		}
	}
}

// TestEventsBroadcaster unit-tests the ring and fan-out semantics that
// the integration tests cannot reach deterministically: ring trimming,
// exact replay windows, and the lagged mark on overflow.
func TestEventsBroadcaster(t *testing.T) {
	s := &Server{}
	snapN := func(i int) *snapshot { return &snapshot{id: fmt.Sprintf("snap-%d", i)} }
	for i := 1; i <= 40; i++ {
		s.publishEvent(snapN(i))
	}
	if n := len(s.events.ring); n != eventRingSize {
		t.Fatalf("ring holds %d events, want %d", n, eventRingSize)
	}
	if newest := s.events.ring[len(s.events.ring)-1]; newest.id != 40 {
		t.Fatalf("newest id %d, want 40", newest.id)
	}

	// Publishing the same snapshot id again is a no-op.
	s.publishEvent(snapN(40))
	if s.events.nextID != 40 {
		t.Errorf("duplicate publish advanced nextID to %d", s.events.nextID)
	}

	cases := []struct {
		lastID uint64
		want   []uint64 // expected backlog ids; nil = empty
	}{
		{0, []uint64{40}},      // fresh: newest only
		{40, nil},              // current: nothing
		{38, []uint64{39, 40}}, // in-ring: exact suffix
		{8, idRange(9, 40)},    // exactly the ring's reach
		{5, []uint64{40}},      // outgrown: full state
		{1000, []uint64{40}},   // pre-restart id: unknown, full state
	}
	for _, tc := range cases {
		sub, backlog := s.subscribeEvents(tc.lastID, nil)
		var got []uint64
		for _, ev := range backlog {
			got = append(got, ev.id)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("subscribe(lastID=%d) backlog = %v, want %v", tc.lastID, got, tc.want)
		}
		s.unsubscribeEvents(sub)
	}

	// Overflowing a subscriber's buffer marks it lagged instead of
	// blocking the publisher; the mark is consumed once.
	sub, _ := s.subscribeEvents(40, nil)
	for i := 41; i <= 41+cap(sub.ch); i++ {
		s.publishEvent(snapN(i))
	}
	if !s.takeLagged(sub) {
		t.Error("overflowed subscriber not marked lagged")
	}
	if s.takeLagged(sub) {
		t.Error("lagged mark not consumed by takeLagged")
	}
	if len(sub.ch) != cap(sub.ch) {
		t.Errorf("subscriber buffer holds %d, want full %d", len(sub.ch), cap(sub.ch))
	}
	s.unsubscribeEvents(sub)

	// A first subscriber before any publish seeds the stream from the
	// current snapshot.
	s2 := &Server{}
	sub2, backlog := s2.subscribeEvents(0, snapN(1))
	if len(backlog) != 1 || backlog[0].id != 1 || backlog[0].snap.id != "snap-1" {
		t.Fatalf("seed backlog = %+v, want one event for snap-1", backlog)
	}
	s2.unsubscribeEvents(sub2)
}

func idRange(lo, hi uint64) []uint64 {
	var out []uint64
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
