package serve

// The push-ingest write-ahead log. Every record acknowledged by
// POST /v1/ingest is appended to a segment file (CRC-framed via the
// internal/trace WAL framing) before the 200 goes out, so a crash at
// any byte boundary loses nothing that was acknowledged: on reopen the
// segments replay in order, a torn tail is truncated back to the last
// whole record, and every record at or past the fold checkpoint is
// handed back as pending work.
//
// Layout under the WAL directory:
//
//	wal-<first-seq, 16 hex digits>.seg   segment files, rotated by size
//	checkpoint                           decimal next-unfolded sequence
//
// Sequence numbers are global and monotone; a segment's records are
// implicitly numbered from its header's first-seq. MarkFolded records
// one sequence number as folded into a saved trace file; the
// checkpoint advances only over a contiguous prefix of folded records,
// so folds that complete out of sequence order (or a fold that gave up
// and left its record pending) can never move the checkpoint past an
// unfolded acknowledged record. Compaction deletes closed segments
// whose records are all below the checkpoint. The checkpoint is an
// optimization, not a correctness dependency: folding is idempotent (a
// content-addressed overwrite of the same trace file), so a lost
// checkpoint merely re-folds.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dayu/internal/trace"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the segment file before every append is
	// acknowledged: an acknowledged record survives power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker: an acknowledged
	// record survives process death immediately and power loss after at
	// most one interval.
	FsyncInterval
	// FsyncNever leaves syncing to the OS: acknowledged records survive
	// process death (kill -9) but not necessarily power loss.
	FsyncNever
)

// String names the policy as ParseFsyncPolicy accepts it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy resolves a -wal-fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never", "none":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("serve: unknown fsync policy %q (always, interval, never)", s)
}

// WALOptions tunes the write-ahead log.
type WALOptions struct {
	// Fsync is the append durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// PendingRecord is one acknowledged-but-not-yet-folded record
// recovered by OpenWAL.
type PendingRecord struct {
	Seq  uint64
	Data []byte
}

// walSegment is one closed (non-active) segment on disk.
type walSegment struct {
	path  string
	first uint64
	count uint64
}

// WALStats is a point-in-time summary for /healthz and the metrics
// gauges.
type WALStats struct {
	// Segments counts on-disk segment files, including the active one.
	Segments int
	// Pending counts acknowledged records not yet folded into trace
	// files (including any gap records that block the checkpoint).
	Pending uint64
	// NextSeq is the sequence number the next append will take.
	NextSeq uint64
	// Folded is the sequence number below which every record is folded.
	Folded uint64
	// ActiveBytes is the current size of the active segment.
	ActiveBytes int64
}

// WAL is the segmented write-ahead log. All methods are safe for
// concurrent use.
type WAL struct {
	dir  string
	opts WALOptions

	mu            sync.Mutex
	active        *os.File
	activeFirst   uint64
	activeCount   uint64
	activeSize    int64
	nextSeq       uint64
	folded        uint64
	foldedAhead   map[uint64]bool // folded seqs above the contiguous prefix
	segments      []walSegment    // closed segments, ordered by first
	closed        bool
	dirty         bool // unsynced appends under FsyncInterval/FsyncNever
	stopSync      chan struct{}
	syncDone      chan struct{}
	checkpointErr error
}

const walCheckpointFile = "checkpoint"

// OpenWAL opens (creating if needed) the WAL under dir, replays every
// segment — truncating torn tails, deleting segments whose header is
// crash-torn or that hold no whole record — and returns the log plus
// the pending records at or past the fold checkpoint, in sequence
// order. A genuine I/O fault during replay (a failed read or
// truncate, not a torn tail) fails OpenWAL instead: deleting a
// segment over a transient error would destroy acknowledged records.
// A new active segment is created lazily on first append, so
// crash-looping never litters the directory with empty files.
func OpenWAL(dir string, opts WALOptions) (*WAL, []PendingRecord, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	folded := readCheckpoint(dir)

	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	sort.Strings(names)

	w := &WAL{dir: dir, opts: opts, folded: folded, nextSeq: folded, foldedAhead: map[uint64]bool{}}
	var pending []PendingRecord
	for _, path := range names {
		first, records, err := replaySegment(path)
		if err != nil {
			if errors.Is(err, trace.ErrWALTorn) {
				// Torn header: the crash hit mid-creation, before any
				// record could be acknowledged in this segment.
				os.Remove(path)
				continue
			}
			// A real I/O fault (failed read or truncate). The segment
			// may hold acknowledged records, so never delete it here.
			return nil, nil, fmt.Errorf("serve: wal: replay %s: %w", filepath.Base(path), err)
		}
		if len(records) == 0 {
			// Header-only segment (crash before the first whole
			// record): nothing acknowledged survives in it.
			os.Remove(path)
			continue
		}
		end := first + uint64(len(records))
		if end > w.nextSeq {
			w.nextSeq = end
		}
		w.segments = append(w.segments, walSegment{path: path, first: first, count: uint64(len(records))})
		for i, rec := range records {
			if seq := first + uint64(i); seq >= folded {
				pending = append(pending, PendingRecord{Seq: seq, Data: rec})
			}
		}
	}
	w.compactLocked()

	if opts.Fsync == FsyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop(w.stopSync)
	}
	return w, pending, nil
}

// replaySegment reads one segment file, truncating any torn tail in
// place so the file ends on a whole-record boundary. It returns the
// segment's first sequence number and the surviving payloads. A
// crash-torn header reports trace.ErrWALTorn (the caller removes the
// file — nothing in it was ever acknowledged); any other error is a
// genuine I/O fault the caller must treat as fatal, not removable.
func replaySegment(path string) (first uint64, records [][]byte, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	first, good, err := trace.ReadWALHeader(br)
	if err != nil {
		return 0, nil, err
	}
	offset := int64(good)
	for {
		payload, n, err := trace.ReadWALRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, trace.ErrWALTorn) {
				return 0, nil, err
			}
			// Crash-torn tail: drop it so future appends and replays
			// start from a clean boundary.
			if terr := f.Truncate(offset); terr != nil {
				return 0, nil, terr
			}
			break
		}
		offset += int64(n)
		records = append(records, payload)
	}
	return first, records, nil
}

// readCheckpoint returns the persisted fold point, or 0 when the file
// is missing or mangled (folding is idempotent, so 0 is always safe).
func readCheckpoint(dir string) uint64 {
	data, err := os.ReadFile(filepath.Join(dir, walCheckpointFile))
	if err != nil {
		return 0
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// Append durably appends one record and returns its sequence number.
// Under FsyncAlways the record is on stable storage when Append
// returns; the caller acknowledges only after that.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("serve: wal: closed")
	}
	if w.active != nil && w.activeSize >= w.opts.SegmentBytes && w.activeCount > 0 {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if w.active == nil {
		if err := w.createSegmentLocked(); err != nil {
			return 0, err
		}
	}
	n, err := trace.WriteWALRecord(w.active, payload)
	if err != nil {
		// Roll the file back to the last whole record so a failed
		// append never leaves a torn middle.
		_ = w.active.Truncate(w.activeSize)
		_, _ = w.active.Seek(w.activeSize, io.SeekStart)
		return 0, err
	}
	w.activeSize += int64(n)
	w.activeCount++
	seq := w.nextSeq
	w.nextSeq++
	if w.opts.Fsync == FsyncAlways {
		if err := w.active.Sync(); err != nil {
			return 0, fmt.Errorf("serve: wal: fsync: %w", err)
		}
	} else {
		w.dirty = true
	}
	return seq, nil
}

// createSegmentLocked opens a fresh active segment whose first record
// will be nextSeq. Callers hold w.mu.
func (w *WAL) createSegmentLocked() error {
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016x.seg", w.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: wal: create segment: %w", err)
	}
	n, err := trace.WriteWALHeader(f, w.nextSeq)
	if err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if w.opts.Fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("serve: wal: fsync segment header: %w", err)
		}
		syncDir(w.dir)
	}
	w.active = f
	w.activeFirst = w.nextSeq
	w.activeCount = 0
	w.activeSize = int64(n)
	return nil
}

// rotateLocked closes the active segment into the closed list and
// clears it; the next append creates a successor. Callers hold w.mu.
func (w *WAL) rotateLocked() error {
	if w.active == nil {
		return nil
	}
	if w.dirty {
		if err := w.active.Sync(); err != nil {
			return fmt.Errorf("serve: wal: fsync on rotate: %w", err)
		}
		w.dirty = false
	}
	path := w.active.Name()
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("serve: wal: close segment: %w", err)
	}
	w.segments = append(w.segments, walSegment{path: path, first: w.activeFirst, count: w.activeCount})
	w.active = nil
	w.activeCount = 0
	w.activeSize = 0
	return nil
}

// MarkFolded records that the record at seq has been folded into a
// saved trace file. The checkpoint advances only over a contiguous
// prefix of folded sequence numbers — a fold completing out of order
// is remembered but cannot move the checkpoint past an earlier record
// that is still unfolded, so that record always replays after a
// crash. When the prefix advances, the checkpoint is persisted and
// fully-folded closed segments are deleted.
func (w *WAL) MarkFolded(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq < w.folded {
		return
	}
	w.foldedAhead[seq] = true
	advanced := false
	for w.foldedAhead[w.folded] {
		delete(w.foldedAhead, w.folded)
		w.folded++
		advanced = true
	}
	if !advanced {
		return
	}
	w.checkpointErr = w.writeCheckpointLocked()
	w.compactLocked()
}

// writeCheckpointLocked persists the fold point atomically. A failed
// checkpoint is remembered (surfaced via Stats callers' health) but
// not fatal: replay just re-folds.
func (w *WAL) writeCheckpointLocked() error {
	path := filepath.Join(w.dir, walCheckpointFile)
	tmp, err := os.CreateTemp(w.dir, "."+walCheckpointFile+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := fmt.Fprintf(tmp, "%d\n", w.folded); err != nil {
		return err
	}
	if w.opts.Fsync == FsyncAlways {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	tmp = nil
	return nil
}

// compactLocked deletes closed segments whose records are all folded.
// Callers hold w.mu.
func (w *WAL) compactLocked() {
	keep := w.segments[:0]
	for _, seg := range w.segments {
		if seg.first+seg.count <= w.folded {
			os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	w.segments = keep
}

// Sync flushes unsynced appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil || !w.dirty {
		return nil
	}
	w.dirty = false
	return w.active.Sync()
}

// syncLoop is the FsyncInterval background flusher. The stop channel
// is passed in rather than read from the struct: Close may run before
// this goroutine is ever scheduled, and a field read here could then
// observe a post-Close value and select on the wrong channel forever.
func (w *WAL) syncLoop(stop <-chan struct{}) {
	defer close(w.syncDone)
	ticker := time.NewTicker(w.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			_ = w.Sync()
		}
	}
}

// Stats reports the current log shape.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs := len(w.segments)
	if w.active != nil {
		segs++
	}
	return WALStats{
		Segments:    segs,
		Pending:     w.nextSeq - w.folded - uint64(len(w.foldedAhead)),
		NextSeq:     w.nextSeq,
		Folded:      w.folded,
		ActiveBytes: w.activeSize,
	}
}

// Close flushes and closes the active segment. Further appends fail.
// Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	var errs []error
	if w.dirty {
		if err := w.active.Sync(); err != nil {
			errs = append(errs, err)
		}
		w.dirty = false
	}
	if err := w.active.Close(); err != nil {
		errs = append(errs, err)
	}
	w.active = nil
	return errors.Join(errs...)
}

// syncDir best-effort fsyncs a directory so renames and creations are
// durable against power loss; errors are ignored (some filesystems
// reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
