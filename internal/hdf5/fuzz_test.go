package hdf5

import (
	"errors"
	"testing"

	"dayu/internal/vfd"
)

// FuzzOpen feeds arbitrary bytes to Open and the full file walk. Two
// properties must hold on every input: the parser never panics, and
// when Open rejects a file the error is typed ErrCorrupt (never an
// untyped string or an index panic escaping as a crash).
func FuzzOpen(f *testing.F) {
	pristine := buildCorruptionTarget(f)
	f.Add(append([]byte(nil), pristine...))
	// Seed the mutation space the corruption test explores: byte flips,
	// truncations, and degenerate prefixes.
	for _, i := range []int{0, 4, rootAddrSlot, len(pristine) / 2, len(pristine) - 1} {
		data := append([]byte(nil), pristine...)
		data[i] ^= 0xff
		f.Add(data)
	}
	f.Add(append([]byte(nil), pristine[:superSize]...))
	f.Add(append([]byte(nil), pristine[:len(pristine)/3]...))
	f.Add([]byte{})
	f.Add([]byte(superMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Open(vfd.NewMemDriverFrom(data), "fuzz.h5", Config{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open rejected input with untyped error: %v", err)
			}
			return
		}
		_ = file.Close()
		// A file that opens may still be damaged deeper in; the walk must
		// fail cleanly, never panic.
		exerciseFile(data)
	})
}
