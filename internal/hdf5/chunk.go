package hdf5

import (
	"fmt"

	"dayu/internal/sim"
)

// chunkGrid returns the number of chunks along each dimension.
func chunkGrid(dims, chunkDims []int64) []int64 {
	grid := make([]int64, len(dims))
	for i := range dims {
		grid[i] = (dims[i] + chunkDims[i] - 1) / chunkDims[i]
	}
	return grid
}

// forEachChunk visits every chunk coordinate overlapping sel.
func forEachChunk(sel Selection, chunkDims []int64, visit func(coord []int64) error) error {
	n := len(chunkDims)
	lo := make([]int64, n)
	hi := make([]int64, n) // inclusive
	for i := 0; i < n; i++ {
		lo[i] = sel.Offset[i] / chunkDims[i]
		hi[i] = (sel.Offset[i] + sel.Count[i] - 1) / chunkDims[i]
	}
	coord := append([]int64(nil), lo...)
	for {
		if err := visit(coord); err != nil {
			return err
		}
		d := n - 1
		for d >= 0 {
			coord[d]++
			if coord[d] <= hi[d] {
				break
			}
			coord[d] = lo[d]
			d--
		}
		if d < 0 {
			return nil
		}
	}
}

// writeChunked performs a read-modify-write cycle on every chunk the
// selection touches. A single high-level write thus fans out into
// scattered chunk data operations plus chunk-index metadata traffic -
// the obscured translation the paper's Challenge 1 describes.
func (d *Dataset) writeChunked(sel Selection, data []byte) error {
	bt, err := d.chunkIndex()
	if err != nil {
		return err
	}
	cd := d.hdr.layout.chunkDims
	es := d.hdr.dtype.Size
	grid := chunkGrid(d.hdr.dims, cd)
	chunkElems := numElems(cd)
	chunkBytes := chunkElems * es

	return forEachChunk(sel, cd, func(coord []int64) error {
		boxOff := make([]int64, len(cd))
		for i := range cd {
			boxOff[i] = coord[i] * cd[i]
		}
		global, local, ok := sel.intersect(boxOff, cd)
		if !ok {
			return nil
		}
		key := linearIndex(grid, coord)
		addr, _, found, err := bt.get(key)
		if err != nil {
			return err
		}
		buf := make([]byte, chunkBytes)
		fullChunk := global.NumElems() == chunkElems
		if found && !fullChunk {
			if err := d.file.drv.ReadAt(buf, addr, sim.RawData); err != nil {
				return fmt.Errorf("hdf5: read chunk %d of %s: %w", key, d.name, err)
			}
		}
		selLocal := Selection{Offset: make([]int64, len(cd)), Count: global.Count}
		for i := range cd {
			selLocal.Offset[i] = global.Offset[i] - sel.Offset[i]
		}
		copySlab(buf, cd, local, data, sel.Count, selLocal, es)
		if !found {
			addr = d.file.alloc(chunkBytes)
		}
		if err := d.file.drv.WriteAt(buf, addr, sim.RawData); err != nil {
			return fmt.Errorf("hdf5: write chunk %d of %s: %w", key, d.name, err)
		}
		if !found {
			if err := bt.put(key, addr, chunkBytes); err != nil {
				return err
			}
		}
		return nil
	})
}

// readChunked gathers the selection from every overlapping chunk.
// Chunks never written read back as zeros.
func (d *Dataset) readChunked(sel Selection, out []byte) error {
	bt, err := d.chunkIndex()
	if err != nil {
		return err
	}
	cd := d.hdr.layout.chunkDims
	es := d.hdr.dtype.Size
	grid := chunkGrid(d.hdr.dims, cd)
	chunkBytes := numElems(cd) * es

	return forEachChunk(sel, cd, func(coord []int64) error {
		boxOff := make([]int64, len(cd))
		for i := range cd {
			boxOff[i] = coord[i] * cd[i]
		}
		global, local, ok := sel.intersect(boxOff, cd)
		if !ok {
			return nil
		}
		key := linearIndex(grid, coord)
		addr, _, found, err := bt.get(key)
		if err != nil {
			return err
		}
		if !found {
			return nil // unwritten chunk: zeros
		}
		buf := make([]byte, chunkBytes)
		if err := d.file.drv.ReadAt(buf, addr, sim.RawData); err != nil {
			return fmt.Errorf("hdf5: read chunk %d of %s: %w", key, d.name, err)
		}
		selLocal := Selection{Offset: make([]int64, len(cd)), Count: global.Count}
		for i := range cd {
			selLocal.Offset[i] = global.Offset[i] - sel.Offset[i]
		}
		copySlab(out, sel.Count, selLocal, buf, cd, local, es)
		return nil
	})
}

// NumChunks reports how many chunks have been materialized (0 for
// non-chunked layouts).
func (d *Dataset) NumChunks() (int64, error) {
	if d.hdr.layout.kind != layoutChunked {
		return 0, nil
	}
	bt, err := d.chunkIndex()
	if err != nil {
		return 0, err
	}
	return bt.count(), nil
}
