package hdf5

import (
	"fmt"

	"dayu/internal/sim"
	"dayu/internal/vol"
)

// Layout selects a dataset storage layout.
type Layout uint8

// Dataset storage layouts. The trade-offs mirror HDF5 (paper §II,
// Challenge 2): contiguous favors whole-dataset sequential access,
// chunked favors partial/parallel access and variable-length indexing,
// compact inlines tiny data in the object header.
const (
	Contiguous Layout = Layout(layoutContiguous)
	Chunked    Layout = Layout(layoutChunked)
	Compact    Layout = Layout(layoutCompact)
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Contiguous:
		return "contiguous"
	case Chunked:
		return "chunked"
	case Compact:
		return "compact"
	}
	return "unknown"
}

// maxCompactSize bounds compact dataset payloads so headers stay small.
const maxCompactSize = 64 << 10

// DatasetOpts configures dataset creation.
type DatasetOpts struct {
	// Layout defaults to Contiguous.
	Layout Layout
	// ChunkDims must be set (same rank as dims) when Layout is Chunked.
	ChunkDims []int64
}

// Dataset is a handle to a dataset object.
type Dataset struct {
	file *File
	name string // full path
	addr int64
	hdr  *objectHeader
	bt   *btree // chunk index, lazily opened
}

// Name returns the dataset's full path.
func (d *Dataset) Name() string { return d.name }

// Dims returns the dataset dimensions.
func (d *Dataset) Dims() []int64 { return append([]int64(nil), d.hdr.dims...) }

// Datatype returns the element type.
func (d *Dataset) Datatype() Datatype { return d.hdr.dtype }

// Layout returns the storage layout.
func (d *Dataset) Layout() Layout { return Layout(d.hdr.layout.kind) }

// NumElems returns the total element count.
func (d *Dataset) NumElems() int64 { return numElems(d.hdr.dims) }

// info builds the VOL object description (Table I, parameter 5).
func (d *Dataset) info() vol.ObjectInfo {
	return vol.ObjectInfo{
		Name:      d.name,
		Type:      "dataset",
		Datatype:  d.hdr.dtype.String(),
		Shape:     d.Dims(),
		ElemSize:  d.hdr.dtype.Size,
		Layout:    d.Layout().String(),
		ChunkDims: append([]int64(nil), d.hdr.layout.chunkDims...),
	}
}

// CreateDataset creates a dataset in the group. For fixed-size types
// with contiguous layout the data region is allocated eagerly; chunked
// layouts allocate chunks on first write through the chunk index.
func (g *Group) CreateDataset(name string, dt Datatype, dims []int64, opts *DatasetOpts) (*Dataset, error) {
	if !g.file.open {
		return nil, ErrClosed
	}
	if err := validateLinkName(name); err != nil {
		return nil, err
	}
	if !dt.Valid() {
		return nil, fmt.Errorf("hdf5: invalid datatype for dataset %q", name)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("hdf5: dataset %q needs at least one dimension", name)
	}
	for i, dim := range dims {
		if dim <= 0 {
			return nil, fmt.Errorf("hdf5: dataset %q dimension %d is %d", name, i, dim)
		}
	}
	if dt.IsVLen() && len(dims) != 1 {
		return nil, fmt.Errorf("hdf5: variable-length dataset %q must be one-dimensional", name)
	}
	var o DatasetOpts
	if opts != nil {
		o = *opts
	}
	if o.Layout == 0 {
		o.Layout = Contiguous
	}

	full := g.childPath(name)
	exit := g.file.stamp(full)
	defer exit()

	hdr := &objectHeader{typ: objDataset, name: name, dtype: dt, dims: append([]int64(nil), dims...)}
	totalBytes := numElems(dims) * dt.Size

	switch o.Layout {
	case Contiguous:
		hdr.layout = layoutInfo{
			kind:     layoutContiguous,
			dataAddr: g.file.alloc(totalBytes),
			dataSize: totalBytes,
		}
	case Compact:
		if totalBytes > maxCompactSize {
			return nil, fmt.Errorf("hdf5: dataset %q too large for compact layout (%d bytes)", name, totalBytes)
		}
		if dt.IsVLen() {
			return nil, fmt.Errorf("hdf5: compact layout does not support variable-length data")
		}
		hdr.layout = layoutInfo{kind: layoutCompact, compact: make([]byte, totalBytes)}
	case Chunked:
		if len(o.ChunkDims) != len(dims) {
			return nil, fmt.Errorf("hdf5: dataset %q chunk rank %d does not match rank %d",
				name, len(o.ChunkDims), len(dims))
		}
		for i, c := range o.ChunkDims {
			if c <= 0 {
				return nil, fmt.Errorf("hdf5: dataset %q chunk dimension %d is %d", name, i, c)
			}
		}
		bt, err := g.file.createBTree()
		if err != nil {
			return nil, err
		}
		hdr.layout = layoutInfo{
			kind:      layoutChunked,
			chunkDims: append([]int64(nil), o.ChunkDims...),
			indexAddr: bt.descAddr,
		}
	default:
		return nil, fmt.Errorf("hdf5: unknown layout %d", o.Layout)
	}

	addr, err := g.file.writeNewHeader(hdr)
	if err != nil {
		return nil, err
	}
	if err := g.addChild(name, objDataset, addr); err != nil {
		return nil, err
	}
	d := &Dataset{file: g.file, name: full, addr: addr, hdr: hdr}
	g.file.event(vol.DatasetCreate, d.info(), 0)
	return d, nil
}

// OpenDataset opens a dataset by name within the group.
func (g *Group) OpenDataset(name string) (*Dataset, error) {
	if !g.file.open {
		return nil, ErrClosed
	}
	full := g.childPath(name)
	exit := g.file.stamp(full)
	defer exit()
	ghdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return nil, err
	}
	c, ok := ghdr.findChild(name)
	if !ok || c.typ != objDataset {
		return nil, fmt.Errorf("%w: dataset %s", ErrNotFound, full)
	}
	hdr, err := g.file.readHeader(c.addr)
	if err != nil {
		return nil, err
	}
	d := &Dataset{file: g.file, name: full, addr: c.addr, hdr: hdr}
	g.file.event(vol.DatasetOpen, d.info(), 0)
	return d, nil
}

// Close releases the handle, flushing buffered variable-length payloads
// and any deferred chunk-index metadata, and emits the lifetime-ending
// VOL event. Concurrent handles to the same chunked dataset are not
// coherence-protected; close one handle before opening another.
func (d *Dataset) Close() error {
	if d.file.open {
		if err := d.file.heap.flush(); err != nil {
			return err
		}
		if d.bt != nil {
			if err := d.bt.flush(); err != nil {
				return err
			}
		}
	}
	d.file.event(vol.DatasetClose, d.info(), 0)
	return nil
}

// Extend grows a chunked dataset to newDims (each dimension must be at
// least its current extent), like H5Dset_extent. Existing chunks keep
// their data; the new region reads as zeros until written. Only chunked
// layouts are extendible - contiguous and compact storage is allocated
// at creation, exactly the trade-off the paper's Challenge 2 describes.
func (d *Dataset) Extend(newDims []int64) error {
	if !d.file.open {
		return ErrClosed
	}
	if d.hdr.layout.kind != layoutChunked {
		return fmt.Errorf("hdf5: %s: only chunked datasets are extendible", d.name)
	}
	if len(newDims) != len(d.hdr.dims) {
		return fmt.Errorf("hdf5: %s: extend rank %d does not match rank %d",
			d.name, len(newDims), len(d.hdr.dims))
	}
	for i, dim := range newDims {
		if dim < d.hdr.dims[i] {
			return fmt.Errorf("hdf5: %s: dimension %d cannot shrink (%d < %d)",
				d.name, i, dim, d.hdr.dims[i])
		}
	}
	// Growing the grid invalidates linearized chunk keys unless the
	// non-leading dimensions keep their chunk-grid extents.
	oldGrid := chunkGrid(d.hdr.dims, d.hdr.layout.chunkDims)
	newGrid := chunkGrid(newDims, d.hdr.layout.chunkDims)
	for i := 1; i < len(oldGrid); i++ {
		if oldGrid[i] != newGrid[i] {
			return fmt.Errorf("hdf5: %s: extending dimension %d would renumber existing chunks; only the leading dimension may grow the chunk grid", d.name, i)
		}
	}
	exit := d.file.stamp(d.name)
	defer exit()
	d.hdr.dims = append([]int64(nil), newDims...)
	if err := d.file.writeHeaderAt(d.addr, d.hdr); err != nil {
		return err
	}
	d.file.event(vol.DatasetWrite, d.info(), 0)
	return nil
}

// chunkIndex lazily opens the dataset's chunk index.
func (d *Dataset) chunkIndex() (*btree, error) {
	if d.bt == nil {
		bt, err := d.file.openBTree(d.hdr.layout.indexAddr)
		if err != nil {
			return nil, err
		}
		d.bt = bt
	}
	return d.bt, nil
}

// Write stores packed element data (row-major over the selection) for
// fixed-size datatypes.
func (d *Dataset) Write(sel Selection, data []byte) error {
	if !d.file.open {
		return ErrClosed
	}
	if d.hdr.dtype.IsVLen() {
		return fmt.Errorf("hdf5: use WriteVL for variable-length dataset %s", d.name)
	}
	if err := sel.validate(d.hdr.dims); err != nil {
		return err
	}
	want := sel.NumElems() * d.hdr.dtype.Size
	if int64(len(data)) != want {
		return fmt.Errorf("hdf5: write %s: have %d bytes, selection needs %d", d.name, len(data), want)
	}
	exit := d.file.stamp(d.name)
	err := d.writeRaw(sel, data)
	exit()
	if err != nil {
		return err
	}
	d.file.event(vol.DatasetWrite, d.info(), int64(len(data)))
	return nil
}

// WriteAll writes the entire dataset.
func (d *Dataset) WriteAll(data []byte) error { return d.Write(All(d.hdr.dims), data) }

// Read fetches packed element data for fixed-size datatypes.
func (d *Dataset) Read(sel Selection) ([]byte, error) {
	if !d.file.open {
		return nil, ErrClosed
	}
	if d.hdr.dtype.IsVLen() {
		return nil, fmt.Errorf("hdf5: use ReadVL for variable-length dataset %s", d.name)
	}
	if err := sel.validate(d.hdr.dims); err != nil {
		return nil, err
	}
	out := make([]byte, sel.NumElems()*d.hdr.dtype.Size)
	exit := d.file.stamp(d.name)
	err := d.readRaw(sel, out)
	exit()
	if err != nil {
		return nil, err
	}
	d.file.event(vol.DatasetRead, d.info(), int64(len(out)))
	return out, nil
}

// ReadAll reads the entire dataset.
func (d *Dataset) ReadAll() ([]byte, error) { return d.Read(All(d.hdr.dims)) }

// writeRaw dispatches a fixed-element write by layout. data is packed in
// selection order; sel is already validated.
func (d *Dataset) writeRaw(sel Selection, data []byte) error {
	es := d.hdr.dtype.Size
	switch d.hdr.layout.kind {
	case layoutContiguous:
		var srcOff int64
		for _, r := range sel.runs(d.hdr.dims) {
			n := r.count * es
			if err := d.file.drv.WriteAt(data[srcOff:srcOff+n],
				d.hdr.layout.dataAddr+r.start*es, sim.RawData); err != nil {
				return fmt.Errorf("hdf5: write %s: %w", d.name, err)
			}
			srcOff += n
		}
		return nil
	case layoutCompact:
		copySlab(d.hdr.layout.compact, d.hdr.dims, sel,
			data, sel.Count, All(sel.Count), es)
		return d.file.writeHeaderAt(d.addr, d.hdr)
	case layoutChunked:
		return d.writeChunked(sel, data)
	}
	return fmt.Errorf("hdf5: write %s: unknown layout", d.name)
}

// readRaw dispatches a fixed-element read by layout into out (packed in
// selection order).
func (d *Dataset) readRaw(sel Selection, out []byte) error {
	es := d.hdr.dtype.Size
	switch d.hdr.layout.kind {
	case layoutContiguous:
		var dstOff int64
		for _, r := range sel.runs(d.hdr.dims) {
			n := r.count * es
			if err := d.file.drv.ReadAt(out[dstOff:dstOff+n],
				d.hdr.layout.dataAddr+r.start*es, sim.RawData); err != nil {
				return fmt.Errorf("hdf5: read %s: %w", d.name, err)
			}
			dstOff += n
		}
		return nil
	case layoutCompact:
		copySlab(out, sel.Count, All(sel.Count),
			d.hdr.layout.compact, d.hdr.dims, sel, es)
		return nil
	case layoutChunked:
		return d.readChunked(sel, out)
	}
	return fmt.Errorf("hdf5: read %s: unknown layout", d.name)
}
