package hdf5

import (
	"encoding/binary"
	"fmt"

	"dayu/internal/sim"
)

// The global heap stores variable-length element payloads in fixed-size
// "collections", mirroring HDF5's global heap. A dataset of VLen type
// stores 16-byte references (collection address, offset, length); the
// payload bytes live here. This indirection is the fragmentation source
// for variable-length data the paper's Challenge 3 describes.

const (
	heapMagic   = "GHCL"
	heapHdrSize = 16
)

// heapRef is a reference to one variable-length payload.
type heapRef struct {
	coll   int64
	offset uint32
	length uint32
}

func (r heapRef) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst, uint64(r.coll))
	binary.LittleEndian.PutUint32(dst[8:], r.offset)
	binary.LittleEndian.PutUint32(dst[12:], r.length)
}

func decodeHeapRef(src []byte) heapRef {
	return heapRef{
		coll:   int64(binary.LittleEndian.Uint64(src)),
		offset: binary.LittleEndian.Uint32(src[8:]),
		length: binary.LittleEndian.Uint32(src[12:]),
	}
}

// pendingObj is a payload buffered for a coalesced flush.
type pendingObj struct {
	off  uint32
	data []byte
}

// heapManager allocates heap collections and reads/writes payloads.
//
// Two write modes model the paper's §VI-C finding (chunked VL datasets
// issue about half the POSIX writes of contiguous ones): without
// coalescing every payload is written (and the collection header
// updated) immediately, one pair of operations per element; with
// coalescing (enabled for chunked datasets, whose chunk buffering gives
// the library a natural batching point) payloads accumulate and are
// flushed per collection in a single data write plus one header update.
type heapManager struct {
	f *File
	// current append collection
	curAddr int64
	curUsed int64
	curCap  int64
	// buffered payloads for the current collection
	pending      []pendingObj
	pendingBytes int64
	// validated caches collection headers already checked through this
	// file handle (HDF5's heap cache): re-reading elements of a known
	// collection skips the header read.
	validated map[int64]bool
}

func newHeapManager(f *File) *heapManager {
	return &heapManager{f: f, validated: map[int64]bool{}}
}

// write stores data in the heap and returns its reference.
func (h *heapManager) write(data []byte, coalesce bool) (heapRef, error) {
	need := int64(len(data))
	if h.curAddr == 0 || h.curUsed+need > h.curCap {
		if err := h.flush(); err != nil {
			return heapRef{}, err
		}
		if err := h.newCollection(need); err != nil {
			return heapRef{}, err
		}
	}
	ref := heapRef{coll: h.curAddr, offset: uint32(heapHdrSize + h.curUsed), length: uint32(len(data))}
	if coalesce {
		h.pending = append(h.pending, pendingObj{off: ref.offset, data: data})
		h.pendingBytes += need
	} else {
		if err := h.f.drv.WriteAt(data, h.curAddr+int64(ref.offset), sim.RawData); err != nil {
			return heapRef{}, fmt.Errorf("hdf5: write heap object: %w", err)
		}
		if err := h.writeHeader(h.curAddr, h.curUsed+need, h.curCap); err != nil {
			return heapRef{}, err
		}
	}
	h.curUsed += need
	return ref, nil
}

// newCollection allocates a collection large enough for atLeast bytes.
func (h *heapManager) newCollection(atLeast int64) error {
	capacity := int64(h.f.cfg.HeapCollectionSize) - heapHdrSize
	if atLeast > capacity {
		capacity = atLeast
	}
	h.curAddr = h.f.alloc(heapHdrSize + capacity)
	h.curUsed = 0
	h.curCap = capacity
	return h.writeHeader(h.curAddr, 0, capacity)
}

func (h *heapManager) writeHeader(addr, used, capacity int64) error {
	buf := make([]byte, heapHdrSize)
	copy(buf, heapMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(used))
	binary.LittleEndian.PutUint32(buf[8:], uint32(capacity))
	if err := h.f.drv.WriteAt(buf, addr, sim.Metadata); err != nil {
		return fmt.Errorf("hdf5: write heap collection header: %w", err)
	}
	h.validated[addr] = true
	return nil
}

// flush writes buffered payloads of the current collection as one
// coalesced data operation plus a header update.
func (h *heapManager) flush() error {
	if len(h.pending) == 0 {
		return nil
	}
	first := h.pending[0]
	last := h.pending[len(h.pending)-1]
	span := int64(last.off) + int64(len(last.data)) - int64(first.off)
	buf := make([]byte, span)
	for _, p := range h.pending {
		copy(buf[int64(p.off)-int64(first.off):], p.data)
	}
	if err := h.f.drv.WriteAt(buf, h.curAddr+int64(first.off), sim.RawData); err != nil {
		return fmt.Errorf("hdf5: flush heap collection: %w", err)
	}
	h.pending = h.pending[:0]
	h.pendingBytes = 0
	return h.writeHeader(h.curAddr, h.curUsed, h.curCap)
}

// read fetches the payload for ref: one metadata read to validate the
// collection header plus one data read for the payload.
func (h *heapManager) read(ref heapRef) ([]byte, error) {
	// Buffered payloads may not be on disk yet.
	if ref.coll == h.curAddr {
		for _, p := range h.pending {
			if p.off == ref.offset {
				out := make([]byte, len(p.data))
				copy(out, p.data)
				return out, nil
			}
		}
	}
	// A corrupted reference must not drive a huge allocation or a read
	// past the end of file.
	if ref.coll <= 0 || int64(ref.offset)+int64(ref.length) > h.f.drv.EOF()-ref.coll {
		return nil, corruptf("hdf5: implausible heap reference (coll %d, off %d, len %d)",
			ref.coll, ref.offset, ref.length)
	}
	if !h.validated[ref.coll] {
		hdr := make([]byte, heapHdrSize)
		if err := h.f.drv.ReadAt(hdr, ref.coll, sim.Metadata); err != nil {
			return nil, wrapRead(err, "hdf5: read heap collection header")
		}
		if string(hdr[:4]) != heapMagic {
			return nil, corruptf("hdf5: bad heap collection magic at %d", ref.coll)
		}
		h.validated[ref.coll] = true
	}
	data := make([]byte, ref.length)
	if err := h.f.drv.ReadAt(data, ref.coll+int64(ref.offset), sim.RawData); err != nil {
		return nil, wrapRead(err, "hdf5: read heap object")
	}
	return data, nil
}
