// Package hdf5 implements a from-scratch self-describing binary data
// format modeled on HDF5's on-disk architecture: a superblock, object
// headers with continuation blocks, groups with symbol tables, datasets
// with contiguous/chunked/compact storage layouts, a B-tree chunk index,
// attributes, and a global heap for variable-length data.
//
// It is the substrate substitution for the HDF5 C library (see
// DESIGN.md): every high-level operation flows through the VOL event
// layer (internal/vol) and every low-level byte access flows through a
// virtual file driver (internal/vfd) tagged as metadata or raw data, so
// DaYu's two profilers observe exactly the phenomena the paper studies -
// obscured low-level I/O, layout-dependent access patterns, and
// fragmentation from chunk indexes and variable-length heaps.
package hdf5

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dayu/internal/semantics"
	"dayu/internal/sim"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

var (
	// ErrNotFound is returned when a named object does not exist.
	ErrNotFound = errors.New("hdf5: object not found")
	// ErrExists is returned when creating an object that already exists.
	ErrExists = errors.New("hdf5: object already exists")
	// ErrClosed is returned by operations on a closed file or object.
	ErrClosed = errors.New("hdf5: file is closed")
	// ErrCorrupt is returned when on-disk structures fail validation:
	// bad magic, implausible geometry, references outside the file. It
	// wraps vfd.ErrCorrupt so callers can classify corruption uniformly
	// across format layers with errors.Is.
	ErrCorrupt = fmt.Errorf("hdf5: corrupt file: %w", vfd.ErrCorrupt)
)

// corruptf reports a malformed on-disk structure, typed as ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// wrapRead classifies a failed driver read during parsing: an
// out-of-bounds access means the structure that supplied the address or
// length is corrupt, so the error carries both ErrCorrupt and the
// driver's cause; other driver errors (transient faults, closed
// sessions) pass through untyped so retry classification still sees
// them.
func wrapRead(err error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if errors.Is(err, vfd.ErrOutOfBounds) {
		return fmt.Errorf("%s: %w: %w", msg, ErrCorrupt, err)
	}
	return fmt.Errorf("%s: %w", msg, err)
}

const (
	superMagic   = "DYH5"
	superSize    = 48
	formatVer    = 1
	addrAlign    = 8
	headerMagic  = "OHDR"
	invalidAddr  = int64(0)
	rootAddrSlot = 8 // offset of root address within the superblock
)

// Config controls format parameters. The zero value selects defaults.
type Config struct {
	// HeaderSize is the fixed inline object-header block size.
	HeaderSize int
	// BTreeNodeSize is the chunk-index B-tree node size in bytes.
	BTreeNodeSize int
	// HeapCollectionSize is the global-heap collection size for
	// variable-length data.
	HeapCollectionSize int
	// Mailbox receives current-object stamps so a VFD profiler can
	// attribute low-level I/O (may be nil).
	Mailbox *semantics.Mailbox
	// Observer receives VOL events (may be nil).
	Observer vol.Observer
	// Task labels VOL events with the current workflow task.
	Task string
	// Now supplies wall-clock timestamps; defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.HeaderSize == 0 {
		c.HeaderSize = 512
	}
	if c.BTreeNodeSize == 0 {
		c.BTreeNodeSize = 1024
	}
	if c.HeapCollectionSize == 0 {
		c.HeapCollectionSize = 64 << 10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// File is an open format file.
type File struct {
	drv      vfd.Driver
	name     string
	cfg      Config
	eof      int64
	rootAddr int64
	root     *Group
	heap     *heapManager
	open     bool
	dirty    bool
	// btrees tracks chunk indexes opened through this handle so Flush
	// can persist their deferred descriptors.
	btrees []*btree
}

// Create initializes a new file on drv. Any existing contents are
// discarded.
func Create(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	if err := drv.Truncate(0); err != nil {
		return nil, fmt.Errorf("hdf5: create %s: %w", name, err)
	}
	f := &File{drv: drv, name: name, cfg: cfg, eof: superSize, open: true}
	f.heap = newHeapManager(f)
	f.event(vol.FileCreate, vol.ObjectInfo{Name: "/", File: name, Type: "file"}, 0)
	// Root group object header.
	rootAddr, err := f.writeNewHeader(&objectHeader{typ: objGroup, name: "/"})
	if err != nil {
		return nil, err
	}
	f.rootAddr = rootAddr
	if err := f.writeSuperblock(); err != nil {
		return nil, err
	}
	f.root = &Group{file: f, name: "/", addr: rootAddr}
	return f, nil
}

// Open opens an existing file on drv.
func Open(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	f := &File{drv: drv, name: name, cfg: cfg, open: true}
	f.heap = newHeapManager(f)
	f.event(vol.FileOpen, vol.ObjectInfo{Name: "/", File: name, Type: "file"}, 0)
	if err := f.readSuperblock(); err != nil {
		return nil, err
	}
	hdr, err := f.readHeader(f.rootAddr)
	if err != nil {
		return nil, fmt.Errorf("hdf5: open %s root group: %w", name, err)
	}
	if hdr.typ != objGroup {
		return nil, corruptf("hdf5: open %s: root object is not a group", name)
	}
	f.root = &Group{file: f, name: "/", addr: f.rootAddr}
	return f, nil
}

// Name returns the file name used for events and traces.
func (f *File) Name() string { return f.name }

// Root returns the root group.
func (f *File) Root() *Group { return f.root }

// SetTask changes the task label applied to subsequent VOL events and
// mailbox stamps.
func (f *File) SetTask(task string) {
	f.cfg.Task = task
	if f.cfg.Mailbox != nil {
		f.cfg.Mailbox.SetTask(task)
	}
}

// EOF reports the current end-of-file (allocation high-water mark).
func (f *File) EOF() int64 { return f.eof }

// Flush writes pending heap buffers and, when allocations changed it,
// the superblock. Read-only opens therefore close without issuing any
// write, as in HDF5.
func (f *File) Flush() error {
	if !f.open {
		return ErrClosed
	}
	if err := f.heap.flush(); err != nil {
		return err
	}
	for _, bt := range f.btrees {
		if err := bt.flush(); err != nil {
			return err
		}
	}
	if !f.dirty {
		return nil
	}
	return f.writeSuperblock()
}

// Close flushes and closes the file and its driver.
func (f *File) Close() error {
	if !f.open {
		return nil
	}
	if err := f.Flush(); err != nil {
		return err
	}
	f.open = false
	f.event(vol.FileClose, vol.ObjectInfo{Name: "/", File: f.name, Type: "file"}, 0)
	return f.drv.Close()
}

// alloc reserves n bytes and returns their address. Like HDF5 without
// file compaction, space is only ever allocated at the end of file;
// superseded blocks are leaked until repack.
func (f *File) alloc(n int64) int64 {
	addr := (f.eof + addrAlign - 1) &^ (addrAlign - 1)
	f.eof = addr + n
	f.dirty = true
	return addr
}

func (f *File) writeSuperblock() error {
	buf := make([]byte, superSize)
	copy(buf, superMagic)
	binary.LittleEndian.PutUint16(buf[4:], formatVer)
	binary.LittleEndian.PutUint64(buf[rootAddrSlot:], uint64(f.rootAddr))
	binary.LittleEndian.PutUint64(buf[16:], uint64(f.eof))
	if err := f.drv.WriteAt(buf, 0, sim.Metadata); err != nil {
		return fmt.Errorf("hdf5: write superblock: %w", err)
	}
	f.dirty = false
	return nil
}

func (f *File) readSuperblock() error {
	buf := make([]byte, superSize)
	if err := f.drv.ReadAt(buf, 0, sim.Metadata); err != nil {
		return wrapRead(err, "hdf5: read superblock")
	}
	if string(buf[:4]) != superMagic {
		return corruptf("hdf5: bad superblock magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != formatVer {
		return corruptf("hdf5: unsupported format version %d", v)
	}
	f.rootAddr = int64(binary.LittleEndian.Uint64(buf[rootAddrSlot:]))
	f.eof = int64(binary.LittleEndian.Uint64(buf[16:]))
	return nil
}

// event emits a VOL event if an observer is configured.
func (f *File) event(kind vol.EventKind, info vol.ObjectInfo, bytes int64) {
	if f.cfg.Observer == nil {
		return
	}
	info.File = f.name
	f.cfg.Observer.OnEvent(vol.Event{
		Kind:  kind,
		Wall:  f.cfg.Now(),
		Task:  f.cfg.Task,
		Info:  info,
		Bytes: bytes,
	})
}

// stamp marks the mailbox with the current object so the VFD profiler
// can attribute the I/O this call issues. It returns the restore func.
func (f *File) stamp(object string) func() {
	if f.cfg.Mailbox == nil {
		return func() {}
	}
	return f.cfg.Mailbox.Enter(semantics.Context{
		Object: object,
		File:   f.name,
		Task:   f.cfg.Task,
	})
}
