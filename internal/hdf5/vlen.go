package hdf5

import (
	"fmt"

	"dayu/internal/vol"
)

// Variable-length element access. VL payloads live in the global heap;
// the dataset's raw storage holds 16-byte references. Chunked VL
// datasets coalesce heap payload writes per collection (the chunk
// buffer gives the library a batching point), which is why the paper
// observes roughly half the POSIX write operations for chunked VL data
// versus contiguous (§VI-C, Figure 13c).

// WriteVL stores values at [start, start+len(values)) of a
// one-dimensional variable-length dataset.
func (d *Dataset) WriteVL(start int64, values [][]byte) error {
	if !d.file.open {
		return ErrClosed
	}
	if !d.hdr.dtype.IsVLen() {
		return fmt.Errorf("hdf5: WriteVL on fixed-size dataset %s", d.name)
	}
	if len(values) == 0 {
		return nil
	}
	sel := Slab1D(start, int64(len(values)))
	if err := sel.validate(d.hdr.dims); err != nil {
		return err
	}
	exit := d.file.stamp(d.name)
	defer exit()

	coalesce := d.hdr.layout.kind == layoutChunked
	refs := make([]byte, len(values)*vlRefSize)
	var payloadBytes int64
	for i, v := range values {
		ref, err := d.file.heap.write(v, coalesce)
		if err != nil {
			return fmt.Errorf("hdf5: write VL element %d of %s: %w", start+int64(i), d.name, err)
		}
		ref.encode(refs[i*vlRefSize:])
		payloadBytes += int64(len(v))
	}
	if err := d.writeRaw(sel, refs); err != nil {
		return err
	}
	d.file.event(vol.DatasetWrite, d.info(), payloadBytes)
	return nil
}

// ReadVL fetches count variable-length values starting at start.
func (d *Dataset) ReadVL(start, count int64) ([][]byte, error) {
	if !d.file.open {
		return nil, ErrClosed
	}
	if !d.hdr.dtype.IsVLen() {
		return nil, fmt.Errorf("hdf5: ReadVL on fixed-size dataset %s", d.name)
	}
	sel := Slab1D(start, count)
	if err := sel.validate(d.hdr.dims); err != nil {
		return nil, err
	}
	exit := d.file.stamp(d.name)
	defer exit()

	refs := make([]byte, count*vlRefSize)
	if err := d.readRaw(sel, refs); err != nil {
		return nil, err
	}
	values := make([][]byte, count)
	var payloadBytes int64
	for i := int64(0); i < count; i++ {
		ref := decodeHeapRef(refs[i*vlRefSize:])
		if ref.coll == 0 {
			values[i] = nil // never written
			continue
		}
		v, err := d.file.heap.read(ref)
		if err != nil {
			return nil, fmt.Errorf("hdf5: read VL element %d of %s: %w", start+i, d.name, err)
		}
		values[i] = v
		payloadBytes += int64(len(v))
	}
	d.file.event(vol.DatasetRead, d.info(), payloadBytes)
	return values, nil
}
