package hdf5

import "fmt"

// Selection is an n-dimensional hyperslab: Offset and Count per
// dimension. The zero Selection is invalid; use All for whole-dataset
// access.
type Selection struct {
	Offset []int64
	Count  []int64
}

// All selects every element of a dataset with the given dimensions.
func All(dims []int64) Selection {
	off := make([]int64, len(dims))
	cnt := append([]int64(nil), dims...)
	return Selection{Offset: off, Count: cnt}
}

// Slab1D selects [off, off+count) of a one-dimensional dataset.
func Slab1D(off, count int64) Selection {
	return Selection{Offset: []int64{off}, Count: []int64{count}}
}

// NumElems returns the number of selected elements.
func (s Selection) NumElems() int64 {
	if len(s.Count) == 0 {
		return 0
	}
	n := int64(1)
	for _, c := range s.Count {
		n *= c
	}
	return n
}

// validate checks the selection against dataset dimensions.
func (s Selection) validate(dims []int64) error {
	if len(s.Offset) != len(dims) || len(s.Count) != len(dims) {
		return fmt.Errorf("hdf5: selection rank %d/%d does not match dataset rank %d",
			len(s.Offset), len(s.Count), len(dims))
	}
	for i := range dims {
		if s.Offset[i] < 0 || s.Count[i] <= 0 {
			return fmt.Errorf("hdf5: invalid selection dim %d: offset %d count %d",
				i, s.Offset[i], s.Count[i])
		}
		if s.Offset[i]+s.Count[i] > dims[i] {
			return fmt.Errorf("hdf5: selection dim %d [%d,%d) exceeds extent %d",
				i, s.Offset[i], s.Offset[i]+s.Count[i], dims[i])
		}
	}
	return nil
}

// run is a contiguous span of elements in a flattened element space.
type run struct {
	start int64 // linear element index
	count int64
}

// numElems returns the element count of dims.
func numElems(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// linearIndex flattens idx (row-major) within dims.
func linearIndex(dims, idx []int64) int64 {
	var lin int64
	for i := range dims {
		lin = lin*dims[i] + idx[i]
	}
	return lin
}

// runs decomposes the selection over a space with the given dims into
// contiguous element runs in increasing linear order, coalescing
// adjacent runs (so selecting full rows yields a single run per block).
func (s Selection) runs(dims []int64) []run {
	n := len(dims)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []run{{start: s.Offset[0], count: s.Count[0]}}
	}
	idx := make([]int64, n)
	copy(idx, s.Offset)
	var out []run
	for {
		start := linearIndex(dims, idx)
		r := run{start: start, count: s.Count[n-1]}
		if k := len(out) - 1; k >= 0 && out[k].start+out[k].count == r.start {
			out[k].count += r.count
		} else {
			out = append(out, r)
		}
		// Advance the row index (all dims but the last).
		d := n - 2
		for d >= 0 {
			idx[d]++
			if idx[d] < s.Offset[d]+s.Count[d] {
				break
			}
			idx[d] = s.Offset[d]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// intersect returns the overlap of the selection with the box
// [boxOff, boxOff+boxDims) expressed in both global coordinates and
// box-local coordinates; ok is false when they do not overlap.
func (s Selection) intersect(boxOff, boxDims []int64) (global, local Selection, ok bool) {
	n := len(boxOff)
	global = Selection{Offset: make([]int64, n), Count: make([]int64, n)}
	local = Selection{Offset: make([]int64, n), Count: make([]int64, n)}
	for i := 0; i < n; i++ {
		lo := s.Offset[i]
		if b := boxOff[i]; b > lo {
			lo = b
		}
		hi := s.Offset[i] + s.Count[i]
		if b := boxOff[i] + boxDims[i]; b < hi {
			hi = b
		}
		if hi <= lo {
			return Selection{}, Selection{}, false
		}
		global.Offset[i] = lo
		global.Count[i] = hi - lo
		local.Offset[i] = lo - boxOff[i]
		local.Count[i] = hi - lo
	}
	return global, local, true
}

// copySlab copies the elements selected by srcSel within srcDims out of
// src into the positions selected by dstSel within dstDims of dst. The
// two selections must have identical Count vectors. Sizes are in
// elements; elemSize converts to bytes.
func copySlab(dst []byte, dstDims []int64, dstSel Selection,
	src []byte, srcDims []int64, srcSel Selection, elemSize int64) {
	dstRuns := dstSel.runs(dstDims)
	srcRuns := srcSel.runs(srcDims)
	// Walk both run lists in lockstep, splitting the longer run.
	di, si := 0, 0
	var dOff, sOff int64
	for di < len(dstRuns) && si < len(srcRuns) {
		d, s := dstRuns[di], srcRuns[si]
		dRem := d.count - dOff
		sRem := s.count - sOff
		n := dRem
		if sRem < n {
			n = sRem
		}
		db := (d.start + dOff) * elemSize
		sb := (s.start + sOff) * elemSize
		copy(dst[db:db+n*elemSize], src[sb:sb+n*elemSize])
		dOff += n
		sOff += n
		if dOff == d.count {
			di, dOff = di+1, 0
		}
		if sOff == s.count {
			si, sOff = si+1, 0
		}
	}
}
