package hdf5

import (
	"encoding/binary"
	"fmt"

	"dayu/internal/sim"
)

// The chunk index is a B-tree keyed by linearized chunk coordinate,
// mapping to the chunk's file address and stored size. Every node access
// is a metadata operation - this is the index traffic that makes chunked
// layouts metadata-heavy on small datasets (paper §VI-B) and beneficial
// for variable-length data (§VI-C).

const (
	btDescMagic = "BTDS"
	btNodeMagic = "BTND"
	btDescSize  = 24
	btNodeHdr   = 12
	btLeafEnt   = 24 // key(8) + addr(8) + size(8)
	btIntEnt    = 16 // key(8) + child(8)
)

// btDesc is the persistent descriptor of a chunk index.
type btDesc struct {
	rootAddr int64
	depth    int32 // 0 = root is a leaf
	count    int64 // number of chunks indexed
}

// btEntry is a leaf entry.
type btEntry struct {
	key  int64
	addr int64
	size int64
}

// btNode is the in-memory form of one node.
type btNode struct {
	leaf    bool
	entries []btEntry // for internal nodes, addr holds the child pointer and size is unused
}

type btree struct {
	f        *File
	descAddr int64
	desc     btDesc
	// cache holds nodes read or written through this handle, mirroring
	// HDF5's metadata cache: repeated lookups over an open dataset do
	// not re-read index nodes from storage. Writes go through.
	cache map[int64]*btNode
	// dirty defers descriptor persistence to File.Flush, like HDF5's
	// deferred metadata writes.
	dirty bool
}

func (f *File) createBTree() (*btree, error) {
	bt := &btree{f: f, descAddr: f.alloc(btDescSize), cache: map[int64]*btNode{}}
	f.btrees = append(f.btrees, bt)
	// Start with an empty leaf root.
	root, err := bt.writeNewNode(&btNode{leaf: true})
	if err != nil {
		return nil, err
	}
	bt.desc = btDesc{rootAddr: root}
	if err := bt.writeDesc(); err != nil {
		return nil, err
	}
	return bt, nil
}

func (f *File) openBTree(descAddr int64) (*btree, error) {
	bt := &btree{f: f, descAddr: descAddr, cache: map[int64]*btNode{}}
	f.btrees = append(f.btrees, bt)
	buf := make([]byte, btDescSize)
	if err := f.drv.ReadAt(buf, descAddr, sim.Metadata); err != nil {
		return nil, wrapRead(err, "hdf5: read chunk-index descriptor")
	}
	if string(buf[:4]) != btDescMagic {
		return nil, corruptf("hdf5: bad chunk-index descriptor magic at %d", descAddr)
	}
	bt.desc.depth = int32(binary.LittleEndian.Uint32(buf[4:]))
	bt.desc.rootAddr = int64(binary.LittleEndian.Uint64(buf[8:]))
	bt.desc.count = int64(binary.LittleEndian.Uint64(buf[16:]))
	return bt, nil
}

func (b *btree) writeDesc() error {
	buf := make([]byte, btDescSize)
	copy(buf, btDescMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(b.desc.depth))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b.desc.rootAddr))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b.desc.count))
	if err := b.f.drv.WriteAt(buf, b.descAddr, sim.Metadata); err != nil {
		return fmt.Errorf("hdf5: write chunk-index descriptor: %w", err)
	}
	return nil
}

func (b *btree) leafCap() int     { return (b.f.cfg.BTreeNodeSize - btNodeHdr) / btLeafEnt }
func (b *btree) internalCap() int { return (b.f.cfg.BTreeNodeSize - btNodeHdr) / btIntEnt }

func (b *btree) writeNewNode(n *btNode) (int64, error) {
	addr := b.f.alloc(int64(b.f.cfg.BTreeNodeSize))
	return addr, b.writeNode(addr, n)
}

func (b *btree) writeNode(addr int64, n *btNode) error {
	buf := make([]byte, b.f.cfg.BTreeNodeSize)
	copy(buf, btNodeMagic)
	if n.leaf {
		buf[4] = 1
	}
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(n.entries)))
	off := btNodeHdr
	for _, e := range n.entries {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.key))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.addr))
		if n.leaf {
			binary.LittleEndian.PutUint64(buf[off+16:], uint64(e.size))
			off += btLeafEnt
		} else {
			off += btIntEnt
		}
	}
	if err := b.f.drv.WriteAt(buf, addr, sim.Metadata); err != nil {
		return fmt.Errorf("hdf5: write chunk-index node: %w", err)
	}
	b.cache[addr] = n
	return nil
}

func (b *btree) readNode(addr int64) (*btNode, error) {
	if n, ok := b.cache[addr]; ok {
		return n, nil
	}
	buf := make([]byte, b.f.cfg.BTreeNodeSize)
	if err := b.f.drv.ReadAt(buf, addr, sim.Metadata); err != nil {
		return nil, wrapRead(err, "hdf5: read chunk-index node at %d", addr)
	}
	if string(buf[:4]) != btNodeMagic {
		return nil, corruptf("hdf5: bad chunk-index node magic at %d", addr)
	}
	n := &btNode{leaf: buf[4] == 1}
	cnt := int(binary.LittleEndian.Uint32(buf[8:]))
	maxCnt := b.internalCap()
	if n.leaf {
		maxCnt = b.leafCap()
	}
	// Split operations briefly hold one extra entry in memory, never on
	// disk; anything above the capacity is corruption.
	if cnt < 0 || cnt > maxCnt {
		return nil, corruptf("hdf5: implausible chunk-index entry count %d at %d", cnt, addr)
	}
	off := btNodeHdr
	for i := 0; i < cnt; i++ {
		var e btEntry
		e.key = int64(binary.LittleEndian.Uint64(buf[off:]))
		e.addr = int64(binary.LittleEndian.Uint64(buf[off+8:]))
		if n.leaf {
			e.size = int64(binary.LittleEndian.Uint64(buf[off+16:]))
			off += btLeafEnt
		} else {
			off += btIntEnt
		}
		n.entries = append(n.entries, e)
	}
	b.cache[addr] = n
	return n, nil
}

// get looks up a chunk by key, walking root to leaf.
func (b *btree) get(key int64) (addr, size int64, found bool, err error) {
	nodeAddr := b.desc.rootAddr
	for depth := b.desc.depth; ; depth-- {
		n, err := b.readNode(nodeAddr)
		if err != nil {
			return 0, 0, false, err
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.key == key {
					return e.addr, e.size, true, nil
				}
			}
			return 0, 0, false, nil
		}
		// Find the rightmost child whose separator key <= key.
		child := n.entries[0].addr
		for _, e := range n.entries {
			if e.key <= key {
				child = e.addr
			} else {
				break
			}
		}
		nodeAddr = child
		if depth < 0 {
			return 0, 0, false, corruptf("hdf5: chunk-index depth underflow")
		}
	}
}

// put inserts or updates the mapping key -> (addr, size).
func (b *btree) put(key, addr, size int64) error {
	promoKey, promoAddr, split, updated, err := b.insert(b.desc.rootAddr, b.desc.depth, key, addr, size)
	if err != nil {
		return err
	}
	if split {
		newRoot := &btNode{leaf: false, entries: []btEntry{
			{key: minKeySentinel, addr: b.desc.rootAddr},
			{key: promoKey, addr: promoAddr},
		}}
		rootAddr, err := b.writeNewNode(newRoot)
		if err != nil {
			return err
		}
		b.desc.rootAddr = rootAddr
		b.desc.depth++
	}
	if !updated {
		b.desc.count++
	}
	b.dirty = true
	return nil
}

// flush persists a dirty descriptor.
func (b *btree) flush() error {
	if !b.dirty {
		return nil
	}
	if err := b.writeDesc(); err != nil {
		return err
	}
	b.dirty = false
	return nil
}

// minKeySentinel is the separator for the leftmost child of an internal
// node; it compares <= every valid chunk key (keys are non-negative).
const minKeySentinel = int64(-1 << 62)

// insert recursively inserts into the subtree at nodeAddr (depth levels
// above the leaves). It returns a promoted separator when the node split
// and whether an existing entry was updated in place.
func (b *btree) insert(nodeAddr int64, depth int32, key, addr, size int64) (promoKey, promoAddr int64, split, updated bool, err error) {
	n, err := b.readNode(nodeAddr)
	if err != nil {
		return 0, 0, false, false, err
	}
	if n.leaf {
		pos := len(n.entries)
		for i, e := range n.entries {
			if e.key == key {
				n.entries[i].addr = addr
				n.entries[i].size = size
				return 0, 0, false, true, b.writeNode(nodeAddr, n)
			}
			if e.key > key {
				pos = i
				break
			}
		}
		n.entries = append(n.entries, btEntry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = btEntry{key: key, addr: addr, size: size}
		if len(n.entries) <= b.leafCap() {
			return 0, 0, false, false, b.writeNode(nodeAddr, n)
		}
		return b.splitNode(nodeAddr, n)
	}

	// Internal node: descend into the child covering key.
	ci := 0
	for i, e := range n.entries {
		if e.key <= key {
			ci = i
		} else {
			break
		}
	}
	pk, pa, childSplit, upd, err := b.insert(n.entries[ci].addr, depth-1, key, addr, size)
	if err != nil {
		return 0, 0, false, false, err
	}
	if !childSplit {
		return 0, 0, false, upd, nil
	}
	pos := ci + 1
	n.entries = append(n.entries, btEntry{})
	copy(n.entries[pos+1:], n.entries[pos:])
	n.entries[pos] = btEntry{key: pk, addr: pa}
	if len(n.entries) <= b.internalCap() {
		return 0, 0, false, upd, b.writeNode(nodeAddr, n)
	}
	promoKey, promoAddr, split, _, err = b.splitNode(nodeAddr, n)
	return promoKey, promoAddr, split, upd, err
}

// splitNode moves the upper half of n into a new right sibling.
func (b *btree) splitNode(nodeAddr int64, n *btNode) (promoKey, promoAddr int64, split, updated bool, err error) {
	mid := len(n.entries) / 2
	right := &btNode{leaf: n.leaf, entries: append([]btEntry(nil), n.entries[mid:]...)}
	n.entries = n.entries[:mid]
	rightAddr, err := b.writeNewNode(right)
	if err != nil {
		return 0, 0, false, false, err
	}
	if err := b.writeNode(nodeAddr, n); err != nil {
		return 0, 0, false, false, err
	}
	return right.entries[0].key, rightAddr, true, false, nil
}

// count returns the number of indexed chunks.
func (b *btree) count() int64 { return b.desc.count }

// walk visits every leaf entry in key order.
func (b *btree) walk(visit func(btEntry) error) error {
	return b.walkNode(b.desc.rootAddr, visit)
}

func (b *btree) walkNode(addr int64, visit func(btEntry) error) error {
	n, err := b.readNode(addr)
	if err != nil {
		return err
	}
	for _, e := range n.entries {
		if n.leaf {
			if err := visit(e); err != nil {
				return err
			}
		} else if err := b.walkNode(e.addr, visit); err != nil {
			return err
		}
	}
	return nil
}
