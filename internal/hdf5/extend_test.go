package hdf5

import (
	"bytes"
	"errors"
	"testing"
)

func TestUnlink(t *testing.T) {
	f := newTestFile(t, Config{})
	if _, err := f.Root().CreateDataset("d", Uint8, []int64{4}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := f.Root().Unlink("d"); err != nil {
		t.Fatal(err)
	}
	if f.Root().Exists("d") {
		t.Error("unlinked dataset still visible")
	}
	if _, err := f.Root().OpenDataset("d"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open after unlink: %v", err)
	}
	// Other members untouched.
	if !f.Root().Exists("g") {
		t.Error("sibling lost")
	}
	// The name can be reused.
	if _, err := f.Root().CreateDataset("d", Float64, []int64{2}, nil); err != nil {
		t.Errorf("reuse after unlink: %v", err)
	}
	if err := f.Root().Unlink("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unlink missing: %v", err)
	}
}

func TestExtendChunkedDataset(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("grow", Uint8, []int64{8},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{4}})
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.Repeat([]byte{1}, 8)
	if err := ds.WriteAll(first); err != nil {
		t.Fatal(err)
	}
	if err := ds.Extend([]int64{16}); err != nil {
		t.Fatal(err)
	}
	if dims := ds.Dims(); dims[0] != 16 {
		t.Fatalf("dims after extend = %v", dims)
	}
	// Old data intact, new region zero.
	got, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:8], first) {
		t.Error("existing data lost on extend")
	}
	if !bytes.Equal(got[8:], make([]byte, 8)) {
		t.Error("extended region not zero")
	}
	// Write into the new region.
	if err := ds.Write(Slab1D(8, 8), bytes.Repeat([]byte{2}, 8)); err != nil {
		t.Fatal(err)
	}
	got, _ = ds.ReadAll()
	if !bytes.Equal(got[8:], bytes.Repeat([]byte{2}, 8)) {
		t.Error("write to extended region lost")
	}
	// The extension persists via the header.
	ds2, err := f.Root().OpenDataset("grow")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Dims()[0] != 16 {
		t.Error("extend not persisted")
	}
}

func TestExtendValidation(t *testing.T) {
	f := newTestFile(t, Config{})
	contig, _ := f.Root().CreateDataset("c", Uint8, []int64{8}, nil)
	if err := contig.Extend([]int64{16}); err == nil {
		t.Error("contiguous dataset extended")
	}
	ds, _ := f.Root().CreateDataset("k", Uint8, []int64{8, 8},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{4, 4}})
	if err := ds.Extend([]int64{16}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if err := ds.Extend([]int64{4, 8}); err == nil {
		t.Error("shrink accepted")
	}
	// Growing a trailing dimension across a chunk boundary would
	// renumber chunks and must be refused.
	if err := ds.Extend([]int64{8, 16}); err == nil {
		t.Error("trailing-dimension grid growth accepted")
	}
	// Growing the leading dimension is fine for 2-D too.
	if err := ds.Extend([]int64{16, 8}); err != nil {
		t.Errorf("leading-dimension extend failed: %v", err)
	}
}

func TestExtend2DRoundTrip(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("m", Uint8, []int64{4, 8},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{7}, 32)
	if err := ds.WriteAll(block); err != nil {
		t.Fatal(err)
	}
	if err := ds.Extend([]int64{8, 8}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Write(Selection{Offset: []int64{4, 0}, Count: []int64{4, 8}},
		bytes.Repeat([]byte{9}, 32)); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:32], block) || !bytes.Equal(got[32:], bytes.Repeat([]byte{9}, 32)) {
		t.Error("2-D extend round trip failed")
	}
}
