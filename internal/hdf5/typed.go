package hdf5

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Typed element helpers: convenience wrappers that encode/decode Go
// slices through the byte-oriented dataset API, so applications do not
// hand-roll little-endian packing.

// WriteFloat64s writes vals into the selection of a Float64 dataset.
func (d *Dataset) WriteFloat64s(sel Selection, vals []float64) error {
	if d.hdr.dtype != Float64 {
		return fmt.Errorf("hdf5: %s is %s, not float64", d.name, d.hdr.dtype)
	}
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return d.Write(sel, buf)
}

// ReadFloat64s reads the selection of a Float64 dataset.
func (d *Dataset) ReadFloat64s(sel Selection) ([]float64, error) {
	if d.hdr.dtype != Float64 {
		return nil, fmt.Errorf("hdf5: %s is %s, not float64", d.name, d.hdr.dtype)
	}
	buf, err := d.Read(sel)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(buf)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return vals, nil
}

// WriteFloat32s writes vals into the selection of a Float32 dataset.
func (d *Dataset) WriteFloat32s(sel Selection, vals []float32) error {
	if d.hdr.dtype != Float32 {
		return fmt.Errorf("hdf5: %s is %s, not float32", d.name, d.hdr.dtype)
	}
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return d.Write(sel, buf)
}

// ReadFloat32s reads the selection of a Float32 dataset.
func (d *Dataset) ReadFloat32s(sel Selection) ([]float32, error) {
	if d.hdr.dtype != Float32 {
		return nil, fmt.Errorf("hdf5: %s is %s, not float32", d.name, d.hdr.dtype)
	}
	buf, err := d.Read(sel)
	if err != nil {
		return nil, err
	}
	vals := make([]float32, len(buf)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return vals, nil
}

// WriteInt64s writes vals into the selection of an Int64 dataset.
func (d *Dataset) WriteInt64s(sel Selection, vals []int64) error {
	if d.hdr.dtype != Int64 {
		return fmt.Errorf("hdf5: %s is %s, not int64", d.name, d.hdr.dtype)
	}
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return d.Write(sel, buf)
}

// ReadInt64s reads the selection of an Int64 dataset.
func (d *Dataset) ReadInt64s(sel Selection) ([]int64, error) {
	if d.hdr.dtype != Int64 {
		return nil, fmt.Errorf("hdf5: %s is %s, not int64", d.name, d.hdr.dtype)
	}
	buf, err := d.Read(sel)
	if err != nil {
		return nil, err
	}
	vals := make([]int64, len(buf)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return vals, nil
}

// WriteInt32s writes vals into the selection of an Int32 dataset.
func (d *Dataset) WriteInt32s(sel Selection, vals []int32) error {
	if d.hdr.dtype != Int32 {
		return fmt.Errorf("hdf5: %s is %s, not int32", d.name, d.hdr.dtype)
	}
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	return d.Write(sel, buf)
}

// ReadInt32s reads the selection of an Int32 dataset.
func (d *Dataset) ReadInt32s(sel Selection) ([]int32, error) {
	if d.hdr.dtype != Int32 {
		return nil, fmt.Errorf("hdf5: %s is %s, not int32", d.name, d.hdr.dtype)
	}
	buf, err := d.Read(sel)
	if err != nil {
		return nil, err
	}
	vals := make([]int32, len(buf)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return vals, nil
}
