package hdf5

import (
	"fmt"
	"strings"

	"dayu/internal/vol"
)

// Group is a handle to a group object.
type Group struct {
	file *File
	name string // full path: "/" or "/a/b"
	addr int64
}

// Name returns the group's full path.
func (g *Group) Name() string { return g.name }

func (g *Group) childPath(name string) string {
	if g.name == "/" {
		return "/" + name
	}
	return g.name + "/" + name
}

func validateLinkName(name string) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("hdf5: invalid link name %q", name)
	}
	return nil
}

// addChild links a new object into the group's symbol table. The group
// header is re-read and rewritten: symbol-table maintenance is metadata
// traffic, exactly as in HDF5.
func (g *Group) addChild(name string, typ objType, addr int64) error {
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return err
	}
	if _, dup := hdr.findChild(name); dup {
		return fmt.Errorf("%w: %s", ErrExists, g.childPath(name))
	}
	hdr.children = append(hdr.children, childEntry{name: name, typ: typ, addr: addr})
	return g.file.writeHeaderAt(g.addr, hdr)
}

// CreateGroup creates a child group.
func (g *Group) CreateGroup(name string) (*Group, error) {
	if !g.file.open {
		return nil, ErrClosed
	}
	if err := validateLinkName(name); err != nil {
		return nil, err
	}
	full := g.childPath(name)
	defer g.file.stamp(full)()
	addr, err := g.file.writeNewHeader(&objectHeader{typ: objGroup, name: name})
	if err != nil {
		return nil, err
	}
	if err := g.addChild(name, objGroup, addr); err != nil {
		return nil, err
	}
	g.file.event(vol.GroupCreate, vol.ObjectInfo{Name: full, Type: "group"}, 0)
	return &Group{file: g.file, name: full, addr: addr}, nil
}

// OpenGroup opens a child group by name.
func (g *Group) OpenGroup(name string) (*Group, error) {
	if !g.file.open {
		return nil, ErrClosed
	}
	full := g.childPath(name)
	defer g.file.stamp(full)()
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return nil, err
	}
	c, ok := hdr.findChild(name)
	if !ok || c.typ != objGroup {
		return nil, fmt.Errorf("%w: group %s", ErrNotFound, full)
	}
	g.file.event(vol.GroupOpen, vol.ObjectInfo{Name: full, Type: "group"}, 0)
	return &Group{file: g.file, name: full, addr: c.addr}, nil
}

// Children lists the names of the group's members in insertion order.
func (g *Group) Children() ([]string, error) {
	if !g.file.open {
		return nil, ErrClosed
	}
	defer g.file.stamp(g.name)()
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(hdr.children))
	for i, c := range hdr.children {
		names[i] = c.name
	}
	return names, nil
}

// ChildType reports whether a member is a "group" or a "dataset".
func (g *Group) ChildType(name string) (string, error) {
	if !g.file.open {
		return "", ErrClosed
	}
	defer g.file.stamp(g.name)()
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return "", err
	}
	c, ok := hdr.findChild(name)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, g.childPath(name))
	}
	if c.typ == objGroup {
		return "group", nil
	}
	return "dataset", nil
}

// Exists reports whether the group has a member with the given name.
func (g *Group) Exists(name string) bool {
	if !g.file.open {
		return false
	}
	defer g.file.stamp(g.name)()
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return false
	}
	_, ok := hdr.findChild(name)
	return ok
}

// Unlink removes a member from the group's symbol table. Like HDF5's
// H5Ldelete without repacking, the object's storage is leaked until the
// file is rewritten; only the name disappears.
func (g *Group) Unlink(name string) error {
	if !g.file.open {
		return ErrClosed
	}
	defer g.file.stamp(g.name)()
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return err
	}
	for i, c := range hdr.children {
		if c.name == name {
			hdr.children = append(hdr.children[:i], hdr.children[i+1:]...)
			return g.file.writeHeaderAt(g.addr, hdr)
		}
	}
	return fmt.Errorf("%w: %s", ErrNotFound, g.childPath(name))
}

// OpenGroupPath walks an absolute slash-separated path from the root
// and returns the group at its end.
func (f *File) OpenGroupPath(path string) (*Group, error) {
	g := f.root
	for _, part := range splitPath(path) {
		next, err := g.OpenGroup(part)
		if err != nil {
			return nil, err
		}
		g = next
	}
	return g, nil
}

// OpenDatasetPath opens a dataset by absolute path, e.g. "/g/data".
func (f *File) OpenDatasetPath(path string) (*Dataset, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, fmt.Errorf("hdf5: %q does not name a dataset", path)
	}
	g := f.root
	for _, part := range parts[:len(parts)-1] {
		next, err := g.OpenGroup(part)
		if err != nil {
			return nil, err
		}
		g = next
	}
	return g.OpenDataset(parts[len(parts)-1])
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}
