package hdf5

import (
	"math/rand"
	"testing"

	"dayu/internal/vfd"
)

// buildCorruptionTarget produces the bytes of a healthy file with
// groups, all three layouts, attributes and VL data. It takes testing.TB
// so the fuzz target shares the corpus.
func buildCorruptionTarget(t testing.TB) []byte {
	t.Helper()
	drv := vfd.NewMemDriver()
	f, err := Create(drv, "victim.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Root().CreateGroup("g")
	if err != nil {
		t.Fatal(err)
	}
	contig, err := g.CreateDataset("contig", Float64, []int64{64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := contig.WriteAll(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if err := contig.SetAttrString("units", "m"); err != nil {
		t.Fatal(err)
	}
	chunked, err := g.CreateDataset("chunked", Uint8, []int64{256},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{32}})
	if err != nil {
		t.Fatal(err)
	}
	if err := chunked.WriteAll(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	vl, err := g.CreateDataset("vl", VLen, []int64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vl.WriteVL(0, [][]byte{[]byte("one"), []byte("two"), []byte("three"), []byte("four")}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return drv.Bytes()
}

// exerciseFile opens and fully walks a possibly-corrupted file. All
// outcomes are acceptable except panics.
func exerciseFile(data []byte) {
	f, err := Open(vfd.NewMemDriverFrom(data), "victim.h5", Config{})
	if err != nil {
		return
	}
	kids, err := f.Root().Children()
	if err != nil {
		return
	}
	for _, k := range kids {
		g, err := f.Root().OpenGroup(k)
		if err != nil {
			continue
		}
		names, err := g.Children()
		if err != nil {
			continue
		}
		for _, name := range names {
			ds, err := g.OpenDataset(name)
			if err != nil {
				continue
			}
			if ds.Datatype().IsVLen() {
				_, _ = ds.ReadVL(0, ds.Dims()[0])
			} else {
				_, _ = ds.ReadAll()
			}
			_, _ = ds.Attrs()
		}
	}
	_ = f.Close()
}

// TestCorruptionRobustness flips bytes all over a valid file and
// requires every open/walk to fail cleanly (error or partial data)
// rather than panic: a parser that crashes on a damaged file is
// unusable as tooling.
func TestCorruptionRobustness(t *testing.T) {
	pristine := buildCorruptionTarget(t)
	rng := rand.New(rand.NewSource(99))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on corrupted file: %v", r)
		}
	}()
	// Single-byte flips at deterministic positions.
	for i := 0; i < len(pristine); i += 7 {
		data := append([]byte(nil), pristine...)
		data[i] ^= 0xff
		exerciseFile(data)
	}
	// Bursts of random damage.
	for round := 0; round < 200; round++ {
		data := append([]byte(nil), pristine...)
		for j := 0; j < 1+rng.Intn(16); j++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		exerciseFile(data)
	}
	// Truncations at every granularity.
	for cut := 0; cut < len(pristine); cut += 13 {
		exerciseFile(append([]byte(nil), pristine[:cut]...))
	}
}
