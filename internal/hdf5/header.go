package hdf5

import (
	"fmt"

	"dayu/internal/sim"
)

// objType distinguishes object-header kinds.
type objType uint8

const (
	objGroup   objType = 1
	objDataset objType = 2
)

// layoutKind enumerates dataset storage layouts.
type layoutKind uint8

// Storage layouts (exported via Layout in dataset.go).
const (
	layoutContiguous layoutKind = 1
	layoutChunked    layoutKind = 2
	layoutCompact    layoutKind = 3
)

// attrRec is one attribute stored compactly in the object header.
type attrRec struct {
	name  string
	dt    Datatype
	value []byte
}

// childEntry is one symbol-table entry of a group.
type childEntry struct {
	name string
	typ  objType
	addr int64
}

// layoutInfo is the storage-layout message of a dataset header.
type layoutInfo struct {
	kind layoutKind
	// contiguous
	dataAddr int64
	dataSize int64
	// chunked
	chunkDims []int64
	indexAddr int64 // chunk-index descriptor block
	// compact
	compact []byte
}

// objectHeader is the in-memory form of an object header block.
type objectHeader struct {
	typ   objType
	name  string
	attrs []attrRec
	// group fields
	children []childEntry
	// dataset fields
	dtype  Datatype
	dims   []int64
	layout layoutInfo
	// continuation bookkeeping (persisted in the header prefix)
	contAddr int64
	contCap  int64
}

const headerPrefixSize = 28

func (h *objectHeader) findChild(name string) (childEntry, bool) {
	for _, c := range h.children {
		if c.name == name {
			return c, true
		}
	}
	return childEntry{}, false
}

func (h *objectHeader) findAttr(name string) (int, bool) {
	for i, a := range h.attrs {
		if a.name == name {
			return i, true
		}
	}
	return -1, false
}

func (h *objectHeader) serializePayload() []byte {
	w := &bufWriter{}
	w.str16(h.name)
	w.u16(uint16(len(h.attrs)))
	for _, a := range h.attrs {
		w.str16(a.name)
		w.u8(uint8(a.dt.Class))
		w.i64(a.dt.Size)
		w.str16(a.dt.name)
		w.bytes32(a.value)
	}
	switch h.typ {
	case objGroup:
		w.u32(uint32(len(h.children)))
		for _, c := range h.children {
			w.str16(c.name)
			w.u8(uint8(c.typ))
			w.i64(c.addr)
		}
	case objDataset:
		w.u8(uint8(h.dtype.Class))
		w.i64(h.dtype.Size)
		w.str16(h.dtype.name)
		w.u8(uint8(len(h.dims)))
		for _, d := range h.dims {
			w.i64(d)
		}
		w.u8(uint8(h.layout.kind))
		switch h.layout.kind {
		case layoutContiguous:
			w.i64(h.layout.dataAddr)
			w.i64(h.layout.dataSize)
		case layoutChunked:
			for _, d := range h.layout.chunkDims {
				w.i64(d)
			}
			w.i64(h.layout.indexAddr)
		case layoutCompact:
			w.bytes32(h.layout.compact)
		}
	}
	return w.buf
}

func parseHeaderPayload(typ objType, payload []byte) (*objectHeader, error) {
	h := &objectHeader{typ: typ}
	r := &bufReader{buf: payload}
	h.name = r.str16("name")
	nattrs := int(r.u16("attr count"))
	for i := 0; i < nattrs && r.err == nil; i++ {
		var a attrRec
		a.name = r.str16("attr name")
		class := TypeClass(r.u8("attr class"))
		size := r.i64("attr size")
		name := r.str16("attr type name")
		if name == "" {
			name = typeName(class, size)
		}
		a.dt = Datatype{Class: class, Size: size, name: name}
		a.value = r.bytes32("attr value")
		h.attrs = append(h.attrs, a)
	}
	switch typ {
	case objGroup:
		n := int(r.u32("child count"))
		for i := 0; i < n && r.err == nil; i++ {
			var c childEntry
			c.name = r.str16("child name")
			c.typ = objType(r.u8("child type"))
			c.addr = r.i64("child addr")
			h.children = append(h.children, c)
		}
	case objDataset:
		class := TypeClass(r.u8("dtype class"))
		size := r.i64("dtype size")
		tname := r.str16("dtype name")
		if tname == "" {
			tname = typeName(class, size)
		}
		h.dtype = Datatype{Class: class, Size: size, name: tname}
		ndims := int(r.u8("ndims"))
		for i := 0; i < ndims && r.err == nil; i++ {
			h.dims = append(h.dims, r.i64("dim"))
		}
		h.layout.kind = layoutKind(r.u8("layout kind"))
		switch h.layout.kind {
		case layoutContiguous:
			h.layout.dataAddr = r.i64("data addr")
			h.layout.dataSize = r.i64("data size")
		case layoutChunked:
			for i := 0; i < ndims && r.err == nil; i++ {
				h.layout.chunkDims = append(h.layout.chunkDims, r.i64("chunk dim"))
			}
			h.layout.indexAddr = r.i64("index addr")
		case layoutCompact:
			h.layout.compact = r.bytes32("compact data")
		default:
			if r.err == nil {
				return nil, corruptf("hdf5: unknown layout kind %d", h.layout.kind)
			}
		}
	default:
		return nil, corruptf("hdf5: unknown object type %d", typ)
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := h.sanityCheck(); err != nil {
		return nil, err
	}
	return h, nil
}

// Bounds that keep parsed headers from driving huge or overflowing
// allocations when a file is corrupted.
const (
	maxDimExtent  = int64(1) << 32
	maxTotalBytes = int64(1) << 31 // single-dataset byte ceiling
	maxElemSize   = int64(1) << 20
	maxChunkBytes = int64(1) << 28
)

// sanityCheck rejects parsed headers whose geometry cannot be valid,
// before any caller sizes buffers from it.
func (h *objectHeader) sanityCheck() error {
	if h.typ != objDataset {
		return nil
	}
	if !h.dtype.Valid() || h.dtype.Size > maxElemSize {
		return corruptf("hdf5: implausible datatype in header of %q", h.name)
	}
	checkDims := func(dims []int64, what string) (int64, error) {
		total := int64(1)
		for _, d := range dims {
			if d <= 0 || d > maxDimExtent {
				return 0, corruptf("hdf5: implausible %s extent %d in %q", what, d, h.name)
			}
			total *= d
			if total > maxTotalBytes/h.dtype.Size {
				return 0, corruptf("hdf5: implausible %s volume in %q", what, h.name)
			}
		}
		return total, nil
	}
	total, err := checkDims(h.dims, "dataset")
	if err != nil {
		return err
	}
	switch h.layout.kind {
	case layoutChunked:
		chunkElems, err := checkDims(h.layout.chunkDims, "chunk")
		if err != nil {
			return err
		}
		if chunkElems*h.dtype.Size > maxChunkBytes {
			return corruptf("hdf5: implausible chunk size in %q", h.name)
		}
	case layoutCompact:
		if int64(len(h.layout.compact)) != total*h.dtype.Size {
			return corruptf("hdf5: compact payload size mismatch in %q", h.name)
		}
	case layoutContiguous:
		if h.layout.dataSize != total*h.dtype.Size || h.layout.dataAddr < 0 {
			return corruptf("hdf5: contiguous layout mismatch in %q", h.name)
		}
	}
	return nil
}

// writeNewHeader allocates a header block for h and writes it, returning
// the block address.
func (f *File) writeNewHeader(h *objectHeader) (int64, error) {
	addr := f.alloc(int64(f.cfg.HeaderSize))
	if err := f.writeHeaderAt(addr, h); err != nil {
		return 0, err
	}
	return addr, nil
}

// writeHeaderAt serializes h into the header block at addr, spilling to
// a continuation block when the payload outgrows the inline capacity.
// Continuation blocks are reallocated with doubling capacity; superseded
// blocks are leaked, mirroring HDF5's no-compaction allocation.
func (f *File) writeHeaderAt(addr int64, h *objectHeader) error {
	payload := h.serializePayload()
	inlineCap := f.cfg.HeaderSize - headerPrefixSize
	block := make([]byte, f.cfg.HeaderSize)
	copy(block, headerMagic)
	block[4] = byte(h.typ)
	putU32 := func(off int, v uint32) {
		block[off] = byte(v)
		block[off+1] = byte(v >> 8)
		block[off+2] = byte(v >> 16)
		block[off+3] = byte(v >> 24)
	}
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			block[off+i] = byte(v >> (8 * i))
		}
	}
	putU32(8, uint32(len(payload)))

	var overflow []byte
	if len(payload) > inlineCap {
		copy(block[headerPrefixSize:], payload[:inlineCap])
		overflow = payload[inlineCap:]
		if int64(len(overflow)) > h.contCap {
			newCap := int64(len(overflow)) * 2
			if newCap < 256 {
				newCap = 256
			}
			h.contAddr = f.alloc(newCap)
			h.contCap = newCap
		}
	} else {
		copy(block[headerPrefixSize:], payload)
	}
	putU64(12, uint64(h.contAddr))
	putU32(20, uint32(h.contCap))

	if err := f.drv.WriteAt(block, addr, sim.Metadata); err != nil {
		return fmt.Errorf("hdf5: write object header %q: %w", h.name, err)
	}
	if overflow != nil {
		if err := f.drv.WriteAt(overflow, h.contAddr, sim.Metadata); err != nil {
			return fmt.Errorf("hdf5: write header continuation %q: %w", h.name, err)
		}
	}
	return nil
}

// readHeader reads and parses the object header at addr.
func (f *File) readHeader(addr int64) (*objectHeader, error) {
	block := make([]byte, f.cfg.HeaderSize)
	if err := f.drv.ReadAt(block, addr, sim.Metadata); err != nil {
		return nil, wrapRead(err, "hdf5: read object header at %d", addr)
	}
	if string(block[:4]) != headerMagic {
		return nil, corruptf("hdf5: bad object header magic at %d", addr)
	}
	typ := objType(block[4])
	getU32 := func(off int) uint32 {
		return uint32(block[off]) | uint32(block[off+1])<<8 |
			uint32(block[off+2])<<16 | uint32(block[off+3])<<24
	}
	getU64 := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(block[off+i]) << (8 * i)
		}
		return v
	}
	payloadLen := int(getU32(8))
	contAddr := int64(getU64(12))
	contCap := int64(getU32(20))
	if payloadLen < 0 || payloadLen > 16<<20 {
		return nil, corruptf("hdf5: implausible header payload length %d at %d", payloadLen, addr)
	}

	inlineCap := f.cfg.HeaderSize - headerPrefixSize
	payload := make([]byte, payloadLen)
	if payloadLen <= inlineCap {
		copy(payload, block[headerPrefixSize:headerPrefixSize+payloadLen])
	} else {
		copy(payload, block[headerPrefixSize:headerPrefixSize+inlineCap])
		over := payload[inlineCap:]
		if err := f.drv.ReadAt(over, contAddr, sim.Metadata); err != nil {
			return nil, wrapRead(err, "hdf5: read header continuation at %d", contAddr)
		}
	}
	h, err := parseHeaderPayload(typ, payload)
	if err != nil {
		return nil, err
	}
	h.contAddr = contAddr
	h.contCap = contCap
	return h, nil
}
