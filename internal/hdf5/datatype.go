package hdf5

import "fmt"

// TypeClass categorizes element types.
type TypeClass uint8

// Type classes.
const (
	// ClassFixed is a fixed-size numeric type.
	ClassFixed TypeClass = 1
	// ClassString is a fixed-size string type.
	ClassString TypeClass = 2
	// ClassVLen is a variable-length byte-sequence type; elements are
	// stored in the global heap and referenced from the dataset.
	ClassVLen TypeClass = 3
)

// vlRefSize is the on-disk size of a variable-length element reference:
// collection address (8) + offset (4) + length (4).
const vlRefSize = 16

// Datatype describes a dataset or attribute element type.
type Datatype struct {
	Class TypeClass
	// Size is the element size in bytes; for ClassVLen it is the
	// reference size (the payload lives in the global heap).
	Size int64
	// name is the human-readable type name for semantics records.
	name string
}

// Predefined datatypes.
var (
	Float64 = Datatype{Class: ClassFixed, Size: 8, name: "float64"}
	Float32 = Datatype{Class: ClassFixed, Size: 4, name: "float32"}
	Int64   = Datatype{Class: ClassFixed, Size: 8, name: "int64"}
	Int32   = Datatype{Class: ClassFixed, Size: 4, name: "int32"}
	Int16   = Datatype{Class: ClassFixed, Size: 2, name: "int16"}
	Uint8   = Datatype{Class: ClassFixed, Size: 1, name: "uint8"}
	// VLen is the variable-length byte-sequence type used for images,
	// text and sparse records.
	VLen = Datatype{Class: ClassVLen, Size: vlRefSize, name: "vlen"}
)

// FixedString returns a fixed-size string type of n bytes.
func FixedString(n int64) Datatype {
	return Datatype{Class: ClassString, Size: n, name: fmt.Sprintf("string%d", n)}
}

// String returns the type name.
func (t Datatype) String() string {
	if t.name != "" {
		return t.name
	}
	return fmt.Sprintf("class%d/%dB", t.Class, t.Size)
}

// IsVLen reports whether elements are variable-length.
func (t Datatype) IsVLen() bool { return t.Class == ClassVLen }

// Valid reports whether the datatype is well-formed.
func (t Datatype) Valid() bool {
	switch t.Class {
	case ClassFixed, ClassString:
		return t.Size > 0
	case ClassVLen:
		return t.Size == vlRefSize
	}
	return false
}

func typeName(class TypeClass, size int64) string {
	for _, t := range []Datatype{Float64, Float32, Int64, Int32, Int16, Uint8, VLen} {
		if t.Class == class && t.Size == size {
			return t.name
		}
	}
	if class == ClassString {
		return fmt.Sprintf("string%d", size)
	}
	return fmt.Sprintf("class%d/%dB", class, size)
}
