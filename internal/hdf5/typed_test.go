package hdf5

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTypedFloat64RoundTrip(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("d", Float64, []int64{8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64, 1e300, -0.0}
	if err := ds.WriteFloat64s(All(ds.Dims()), vals); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadFloat64s(All(ds.Dims()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("round trip: %v", got)
	}
	part, err := ds.ReadFloat64s(Slab1D(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != -2.25 || part[1] != math.Pi {
		t.Fatalf("slab: %v", part)
	}
	// Type mismatch is rejected.
	i32, _ := f.Root().CreateDataset("i", Int32, []int64{4}, nil)
	if err := i32.WriteFloat64s(All(i32.Dims()), vals[:4]); err == nil {
		t.Error("float64 write to int32 dataset accepted")
	}
	if _, err := i32.ReadFloat64s(All(i32.Dims())); err == nil {
		t.Error("float64 read from int32 dataset accepted")
	}
}

func TestTypedFloat32AndInts(t *testing.T) {
	f := newTestFile(t, Config{})
	f32, _ := f.Root().CreateDataset("f32", Float32, []int64{4}, nil)
	v32 := []float32{1, -2.5, float32(math.Pi), 0}
	if err := f32.WriteFloat32s(All(f32.Dims()), v32); err != nil {
		t.Fatal(err)
	}
	if got, _ := f32.ReadFloat32s(All(f32.Dims())); !reflect.DeepEqual(got, v32) {
		t.Fatalf("float32: %v", got)
	}
	i64, _ := f.Root().CreateDataset("i64", Int64, []int64{3}, nil)
	v64 := []int64{math.MinInt64, 0, math.MaxInt64}
	if err := i64.WriteInt64s(All(i64.Dims()), v64); err != nil {
		t.Fatal(err)
	}
	if got, _ := i64.ReadInt64s(All(i64.Dims())); !reflect.DeepEqual(got, v64) {
		t.Fatalf("int64: %v", got)
	}
	i32, _ := f.Root().CreateDataset("i32", Int32, []int64{3}, nil)
	vi := []int32{math.MinInt32, -7, math.MaxInt32}
	if err := i32.WriteInt32s(All(i32.Dims()), vi); err != nil {
		t.Fatal(err)
	}
	if got, _ := i32.ReadInt32s(All(i32.Dims())); !reflect.DeepEqual(got, vi) {
		t.Fatalf("int32: %v", got)
	}
	// Cross-type guards on the remaining helpers.
	if err := f32.WriteInt64s(All(f32.Dims()), v64[:0]); err == nil {
		t.Error("int64 write to float32 accepted")
	}
	if _, err := f32.ReadInt32s(All(f32.Dims())); err == nil {
		t.Error("int32 read from float32 accepted")
	}
}

func TestTypedFloat64Property(t *testing.T) {
	f := newTestFile(t, Config{})
	check := func(raw []float64) bool {
		vals := raw
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 128 {
			vals = vals[:128]
		}
		ds, err := f.Root().CreateDataset(
			// unique name per invocation
			"p"+string(rune('a'+len(vals)%26))+string(rune('a'+(len(vals)/26)%26)),
			Float64, []int64{int64(len(vals))}, nil)
		if err != nil {
			// Name collisions across quick iterations: skip.
			return true
		}
		if err := ds.WriteFloat64s(All(ds.Dims()), vals); err != nil {
			return false
		}
		got, err := ds.ReadFloat64s(All(ds.Dims()))
		if err != nil {
			return false
		}
		for i := range vals {
			same := got[i] == vals[i] ||
				(math.IsNaN(got[i]) && math.IsNaN(vals[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
