package hdf5

import (
	"encoding/binary"
	"fmt"
)

// bufWriter serializes header payloads.
type bufWriter struct {
	buf []byte
}

func (w *bufWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *bufWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *bufWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *bufWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *bufWriter) i64(v int64)  { w.u64(uint64(v)) }

func (w *bufWriter) str16(s string) {
	if len(s) > 0xffff {
		panic(fmt.Sprintf("hdf5: string too long (%d bytes)", len(s)))
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *bufWriter) bytes32(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// bufReader parses header payloads with sticky error handling.
type bufReader struct {
	buf []byte
	off int
	err error
}

func (r *bufReader) fail(what string) {
	if r.err == nil {
		r.err = corruptf("hdf5: truncated header payload reading %s at offset %d", what, r.off)
	}
}

func (r *bufReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *bufReader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *bufReader) u16(what string) uint16 {
	b := r.take(2, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *bufReader) u32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *bufReader) u64(what string) uint64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *bufReader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *bufReader) str16(what string) string {
	n := int(r.u16(what))
	return string(r.take(n, what))
}

func (r *bufReader) bytes32(what string) []byte {
	n := int(r.u32(what))
	b := r.take(n, what)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
