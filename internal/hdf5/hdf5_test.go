package hdf5

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dayu/internal/vfd"
)

// newTestFile creates a file over a fresh memory driver.
func newTestFile(t *testing.T, cfg Config) *File {
	t.Helper()
	f, err := Create(vfd.NewMemDriver(), "test.h5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCreateOpenRoundTrip(t *testing.T) {
	drv := vfd.NewMemDriver()
	f, err := Create(drv, "rt.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Root().CreateGroup("g")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset("d", Int32, []int64{8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	if err := ds.WriteAll(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	// Re-open over the same bytes.
	drv2 := vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...))
	f2, err := Open(drv2, "rt.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.OpenDatasetPath("/g/d")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round-trip mismatch: %v", got)
	}
	if ds2.Datatype() != Int32 {
		t.Errorf("datatype = %v", ds2.Datatype())
	}
	if dims := ds2.Dims(); len(dims) != 1 || dims[0] != 8 {
		t.Errorf("dims = %v", dims)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	drv := vfd.NewMemDriverFrom(make([]byte, 128))
	if _, err := Open(drv, "bad.h5", Config{}); err == nil {
		t.Fatal("opened garbage file")
	}
	if _, err := Open(vfd.NewMemDriver(), "empty.h5", Config{}); err == nil {
		t.Fatal("opened empty file")
	}
}

func TestGroups(t *testing.T) {
	f := newTestFile(t, Config{})
	a, err := f.Root().CreateGroup("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateGroup("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateGroup("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate group: %v", err)
	}
	if _, err := f.Root().CreateGroup("bad/name"); err == nil {
		t.Fatal("slash in name accepted")
	}
	if _, err := f.Root().CreateGroup(""); err == nil {
		t.Fatal("empty name accepted")
	}
	g, err := f.OpenGroupPath("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "/a/b" {
		t.Errorf("path = %q", g.Name())
	}
	if _, err := f.OpenGroupPath("/a/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing group: %v", err)
	}
	kids, err := f.Root().Children()
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 || kids[0] != "a" {
		t.Errorf("children = %v", kids)
	}
	if !f.Root().Exists("a") || f.Root().Exists("zzz") {
		t.Error("Exists wrong")
	}
}

func TestManyChildrenSpillContinuation(t *testing.T) {
	// Enough children to overflow the 512-byte inline header.
	f := newTestFile(t, Config{})
	g, err := f.Root().CreateGroup("big")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := g.CreateDataset(fmt.Sprintf("dset%03d", i), Float64, []int64{4}, nil); err != nil {
			t.Fatal(err)
		}
	}
	kids, err := g.Children()
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != n {
		t.Fatalf("children = %d, want %d", len(kids), n)
	}
	// Every dataset must still resolve.
	for i := 0; i < n; i += 17 {
		if _, err := g.OpenDataset(fmt.Sprintf("dset%03d", i)); err != nil {
			t.Fatalf("open dset%03d: %v", i, err)
		}
	}
}

func TestContiguousHyperslab2D(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("m", Uint8, []int64{8, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 64)
	for i := range full {
		full[i] = byte(i)
	}
	if err := ds.WriteAll(full); err != nil {
		t.Fatal(err)
	}
	// Read a 3x2 block at (2,3).
	sel := Selection{Offset: []int64{2, 3}, Count: []int64{3, 2}}
	got, err := ds.Read(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{2*8 + 3, 2*8 + 4, 3*8 + 3, 3*8 + 4, 4*8 + 3, 4*8 + 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("slab = %v, want %v", got, want)
	}
	// Overwrite the block and verify surrounding data is untouched.
	if err := ds.Write(sel, []byte{100, 101, 102, 103, 104, 105}); err != nil {
		t.Fatal(err)
	}
	all, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if all[2*8+3] != 100 || all[4*8+4] != 105 {
		t.Error("slab write missed")
	}
	if all[2*8+2] != 2*8+2 || all[2*8+5] != 2*8+5 {
		t.Error("slab write leaked outside selection")
	}
}

func TestSelectionValidation(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("v", Uint8, []int64{4, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Selection{
		{Offset: []int64{0}, Count: []int64{4}},        // rank mismatch
		{Offset: []int64{-1, 0}, Count: []int64{1, 1}}, // negative offset
		{Offset: []int64{0, 0}, Count: []int64{0, 1}},  // zero count
		{Offset: []int64{3, 0}, Count: []int64{2, 1}},  // overflow
	}
	for i, s := range bad {
		if _, err := ds.Read(s); err == nil {
			t.Errorf("bad selection %d accepted", i)
		}
	}
	// Wrong buffer size.
	if err := ds.Write(All(ds.Dims()), make([]byte, 3)); err == nil {
		t.Error("short write buffer accepted")
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("c", Uint8, []int64{10, 10},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Layout() != Chunked {
		t.Fatal("layout not chunked")
	}
	full := make([]byte, 100)
	for i := range full {
		full[i] = byte(i)
	}
	if err := ds.WriteAll(full); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("chunked round-trip mismatch")
	}
	n, err := ds.NumChunks()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 { // ceil(10/4)^2
		t.Errorf("chunks = %d, want 9", n)
	}
	// Partial read spanning chunk boundaries.
	sel := Selection{Offset: []int64{3, 3}, Count: []int64{4, 4}}
	slab, err := ds.Read(sel)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 4; r++ {
		for c := int64(0); c < 4; c++ {
			if want := byte((3+r)*10 + 3 + c); slab[r*4+c] != want {
				t.Fatalf("slab[%d,%d] = %d, want %d", r, c, slab[r*4+c], want)
			}
		}
	}
	// Partial write crossing chunks, then verify.
	patch := []byte{200, 201, 202, 203}
	if err := ds.Write(Selection{Offset: []int64{3, 2}, Count: []int64{2, 2}}, patch); err != nil {
		t.Fatal(err)
	}
	all, _ := ds.ReadAll()
	if all[3*10+2] != 200 || all[3*10+3] != 201 || all[4*10+2] != 202 || all[4*10+3] != 203 {
		t.Error("cross-chunk write wrong")
	}
	if all[3*10+1] != 31 || all[3*10+4] != 34 {
		t.Error("cross-chunk write leaked")
	}
}

func TestChunkedUnwrittenReadsZero(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("z", Int32, []int64{16},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{4}})
	if err != nil {
		t.Fatal(err)
	}
	// Write only the second chunk.
	if err := ds.Write(Slab1D(4, 4), bytes.Repeat([]byte{0xff}, 16)); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:16], make([]byte, 16)) {
		t.Error("unwritten chunk not zero")
	}
	if !bytes.Equal(got[16:32], bytes.Repeat([]byte{0xff}, 16)) {
		t.Error("written chunk lost")
	}
	if n, _ := ds.NumChunks(); n != 1 {
		t.Errorf("chunks = %d, want 1", n)
	}
}

func TestChunkedPersistence(t *testing.T) {
	drv := vfd.NewMemDriver()
	f, err := Create(drv, "p.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("c", Uint8, []int64{64},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{8}})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 64)
	if err := ds.WriteAll(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...)), "p.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.OpenDatasetPath("/c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked data lost across reopen")
	}
}

func TestCompactLayout(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("small", Int16, []int64{10},
		&DatasetOpts{Layout: Compact})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 20)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := ds.WriteAll(data); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Read(Slab1D(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[4:14]) {
		t.Fatalf("compact slab = %v", got)
	}
	// Compact data persists in the header.
	ds2, err := f.Root().OpenDataset("small")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ds2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("compact data lost on reopen")
	}
	// Too-large compact datasets are rejected.
	if _, err := f.Root().CreateDataset("huge", Float64, []int64{1 << 20},
		&DatasetOpts{Layout: Compact}); err == nil {
		t.Fatal("oversized compact dataset accepted")
	}
}

func TestDatasetCreationValidation(t *testing.T) {
	f := newTestFile(t, Config{})
	root := f.Root()
	cases := []struct {
		name string
		dt   Datatype
		dims []int64
		opts *DatasetOpts
	}{
		{"baddims", Float64, nil, nil},
		{"zerodim", Float64, []int64{0}, nil},
		{"negdim", Float64, []int64{-1}, nil},
		{"badtype", Datatype{}, []int64{4}, nil},
		{"vl2d", VLen, []int64{2, 2}, nil},
		{"chunkrank", Float64, []int64{4, 4}, &DatasetOpts{Layout: Chunked, ChunkDims: []int64{2}}},
		{"chunkzero", Float64, []int64{4}, &DatasetOpts{Layout: Chunked, ChunkDims: []int64{0}}},
		{"vlcompact", VLen, []int64{4}, &DatasetOpts{Layout: Compact}},
	}
	for _, c := range cases {
		if _, err := root.CreateDataset(c.name, c.dt, c.dims, c.opts); err == nil {
			t.Errorf("case %q accepted", c.name)
		}
	}
	// Duplicate names rejected.
	if _, err := root.CreateDataset("dup", Float64, []int64{2}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := root.CreateDataset("dup", Float64, []int64{2}, nil); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate dataset: %v", err)
	}
	// Open of a group as dataset fails.
	if _, err := root.CreateGroup("agroup"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.OpenDataset("agroup"); !errors.Is(err, ErrNotFound) {
		t.Errorf("group opened as dataset: %v", err)
	}
}

func TestVLenContiguous(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("vl", VLen, []int64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := [][]byte{
		[]byte("short"),
		bytes.Repeat([]byte{0xab}, 3000),
		[]byte(""),
		[]byte("x"),
		bytes.Repeat([]byte{0x11}, 100),
	}
	if err := ds.WriteVL(0, vals); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadVL(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if !bytes.Equal(got[i], vals[i]) {
			t.Errorf("vl[%d]: got %d bytes, want %d", i, len(got[i]), len(vals[i]))
		}
	}
	// Partial read.
	part, err := ds.ReadVL(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part[0], vals[1]) || !bytes.Equal(part[1], vals[2]) {
		t.Error("partial VL read wrong")
	}
	// Unwritten elements read as nil.
	ds2, err := f.Root().CreateDataset("vl2", VLen, []int64{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.WriteVL(1, [][]byte{[]byte("mid")}); err != nil {
		t.Fatal(err)
	}
	got2, err := ds2.ReadVL(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != nil || string(got2[1]) != "mid" || got2[2] != nil {
		t.Errorf("sparse VL read = %q %q %q", got2[0], got2[1], got2[2])
	}
}

func TestVLenChunkedCoalesced(t *testing.T) {
	f := newTestFile(t, Config{HeapCollectionSize: 4 << 10})
	ds, err := f.Root().CreateDataset("vl", VLen, []int64{20},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	var vals [][]byte
	for i := 0; i < 20; i++ {
		vals = append(vals, bytes.Repeat([]byte{byte(i)}, 700+i*13))
	}
	if err := ds.WriteVL(0, vals); err != nil {
		t.Fatal(err)
	}
	// Buffered payloads must be readable before flush.
	early, err := ds.ReadVL(19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(early[0], vals[19]) {
		t.Error("pre-flush VL read wrong")
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadVL(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if !bytes.Equal(got[i], vals[i]) {
			t.Errorf("vl[%d] mismatch after flush", i)
		}
	}
}

func TestVLenOversizeObject(t *testing.T) {
	// An object bigger than a heap collection gets a dedicated collection.
	f := newTestFile(t, Config{HeapCollectionSize: 1 << 10})
	ds, err := f.Root().CreateDataset("big", VLen, []int64{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0x5a}, 10<<10)
	if err := ds.WriteVL(0, [][]byte{big, []byte("tiny")}); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadVL(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], big) || string(got[1]) != "tiny" {
		t.Error("oversize heap object corrupted")
	}
}

func TestVLenTypeMismatch(t *testing.T) {
	f := newTestFile(t, Config{})
	fixed, _ := f.Root().CreateDataset("f", Float64, []int64{2}, nil)
	if err := fixed.WriteVL(0, [][]byte{{1}}); err == nil {
		t.Error("WriteVL on fixed dataset accepted")
	}
	if _, err := fixed.ReadVL(0, 1); err == nil {
		t.Error("ReadVL on fixed dataset accepted")
	}
	vl, _ := f.Root().CreateDataset("v", VLen, []int64{2}, nil)
	if err := vl.Write(All(vl.Dims()), make([]byte, 32)); err == nil {
		t.Error("Write on VL dataset accepted")
	}
	if _, err := vl.Read(All(vl.Dims())); err == nil {
		t.Error("Read on VL dataset accepted")
	}
	if err := vl.WriteVL(0, nil); err != nil {
		t.Error("empty WriteVL should be a no-op:", err)
	}
	if err := vl.WriteVL(1, [][]byte{{1}, {2}}); err == nil {
		t.Error("out-of-bounds WriteVL accepted")
	}
}

func TestAttributes(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("d", Float64, []int64{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetAttrString("units", "kelvin"); err != nil {
		t.Fatal(err)
	}
	if err := ds.SetAttrFloat64("scale", 2.5); err != nil {
		t.Fatal(err)
	}
	if s, err := ds.AttrString("units"); err != nil || s != "kelvin" {
		t.Errorf("units = %q, %v", s, err)
	}
	if v, err := ds.AttrFloat64("scale"); err != nil || v != 2.5 {
		t.Errorf("scale = %v, %v", v, err)
	}
	// Overwrite.
	if err := ds.SetAttrString("units", "celsius"); err != nil {
		t.Fatal(err)
	}
	if s, _ := ds.AttrString("units"); s != "celsius" {
		t.Errorf("overwritten units = %q", s)
	}
	names, err := ds.Attrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Errorf("attrs = %v", names)
	}
	if _, _, err := ds.Attr("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing attr: %v", err)
	}
	// Group attributes work too.
	if err := f.Root().SetAttr("note", FixedString(2), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	v, _, err := f.Root().Attr("note")
	if err != nil || string(v) != "hi" {
		t.Errorf("group attr = %q, %v", v, err)
	}
	// Attribute survives reopen of the dataset handle.
	ds2, _ := f.Root().OpenDataset("d")
	if s, _ := ds2.AttrString("units"); s != "celsius" {
		t.Error("attr lost on reopen")
	}
	// Oversize attribute rejected.
	if err := ds.SetAttr("big", Uint8, make([]byte, maxAttrValue+1)); err == nil {
		t.Error("oversize attribute accepted")
	}
}

func TestClosedFileOperationsFail(t *testing.T) {
	f := newTestFile(t, Config{})
	ds, err := f.Root().CreateDataset("d", Uint8, []int64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Error("double close:", err)
	}
	if _, err := f.Root().CreateGroup("g"); err != ErrClosed {
		t.Errorf("create after close: %v", err)
	}
	if err := ds.WriteAll(make([]byte, 4)); err != ErrClosed {
		t.Errorf("write after close: %v", err)
	}
	if _, err := ds.Read(All(ds.Dims())); err != ErrClosed {
		t.Errorf("read after close: %v", err)
	}
	if err := f.Flush(); err != ErrClosed {
		t.Errorf("flush after close: %v", err)
	}
}

func TestEOFGrowsMonotonically(t *testing.T) {
	f := newTestFile(t, Config{})
	prev := f.EOF()
	for i := 0; i < 10; i++ {
		if _, err := f.Root().CreateDataset(fmt.Sprintf("d%d", i), Float64, []int64{128}, nil); err != nil {
			t.Fatal(err)
		}
		if f.EOF() < prev {
			t.Fatal("EOF shrank")
		}
		prev = f.EOF()
	}
}
