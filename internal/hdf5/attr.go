package hdf5

import (
	"encoding/binary"
	"fmt"
	"math"

	"dayu/internal/vol"
)

// Attributes are small metadata values stored compactly inside the
// object header (like HDF5's compact attribute storage). Setting an
// attribute rewrites the header; large attribute sets spill into header
// continuation blocks.

// maxAttrValue bounds attribute payloads.
const maxAttrValue = 64 << 10

// setAttr rewrites the header at addr with the attribute added/updated.
func (f *File) setAttr(addr int64, objName string, name string, dt Datatype, value []byte) error {
	if !f.open {
		return ErrClosed
	}
	if err := validateLinkName(name); err != nil {
		return err
	}
	if len(value) > maxAttrValue {
		return fmt.Errorf("hdf5: attribute %q value too large (%d bytes)", name, len(value))
	}
	full := objName + "@" + name
	exit := f.stamp(full)
	defer exit()
	hdr, err := f.readHeader(addr)
	if err != nil {
		return err
	}
	rec := attrRec{name: name, dt: dt, value: append([]byte(nil), value...)}
	if i, ok := hdr.findAttr(name); ok {
		hdr.attrs[i] = rec
	} else {
		hdr.attrs = append(hdr.attrs, rec)
	}
	if err := f.writeHeaderAt(addr, hdr); err != nil {
		return err
	}
	f.event(vol.AttrWrite, vol.ObjectInfo{Name: full, Type: "attribute", Datatype: dt.String()}, int64(len(value)))
	return nil
}

// getAttr reads an attribute value from the header at addr.
func (f *File) getAttr(addr int64, objName, name string) ([]byte, Datatype, error) {
	if !f.open {
		return nil, Datatype{}, ErrClosed
	}
	full := objName + "@" + name
	exit := f.stamp(full)
	defer exit()
	hdr, err := f.readHeader(addr)
	if err != nil {
		return nil, Datatype{}, err
	}
	i, ok := hdr.findAttr(name)
	if !ok {
		return nil, Datatype{}, fmt.Errorf("%w: attribute %s", ErrNotFound, full)
	}
	a := hdr.attrs[i]
	f.event(vol.AttrRead, vol.ObjectInfo{Name: full, Type: "attribute", Datatype: a.dt.String()}, int64(len(a.value)))
	return append([]byte(nil), a.value...), a.dt, nil
}

func listAttrs(hdr *objectHeader) []string {
	names := make([]string, len(hdr.attrs))
	for i, a := range hdr.attrs {
		names[i] = a.name
	}
	return names
}

// SetAttr sets a raw attribute on the dataset.
func (d *Dataset) SetAttr(name string, dt Datatype, value []byte) error {
	if err := d.file.setAttr(d.addr, d.name, name, dt, value); err != nil {
		return err
	}
	// Keep the cached header coherent.
	hdr, err := d.file.readHeader(d.addr)
	if err != nil {
		return err
	}
	d.hdr = hdr
	return nil
}

// Attr reads a raw attribute from the dataset.
func (d *Dataset) Attr(name string) ([]byte, Datatype, error) {
	return d.file.getAttr(d.addr, d.name, name)
}

// Attrs lists the dataset's attribute names.
func (d *Dataset) Attrs() ([]string, error) {
	hdr, err := d.file.readHeader(d.addr)
	if err != nil {
		return nil, err
	}
	return listAttrs(hdr), nil
}

// SetAttr sets a raw attribute on the group.
func (g *Group) SetAttr(name string, dt Datatype, value []byte) error {
	return g.file.setAttr(g.addr, g.name, name, dt, value)
}

// Attr reads a raw attribute from the group.
func (g *Group) Attr(name string) ([]byte, Datatype, error) {
	return g.file.getAttr(g.addr, g.name, name)
}

// Attrs lists the group's attribute names.
func (g *Group) Attrs() ([]string, error) {
	hdr, err := g.file.readHeader(g.addr)
	if err != nil {
		return nil, err
	}
	return listAttrs(hdr), nil
}

// SetAttrString stores a string attribute.
func (d *Dataset) SetAttrString(name, value string) error {
	return d.SetAttr(name, FixedString(int64(len(value))), []byte(value))
}

// AttrString reads a string attribute.
func (d *Dataset) AttrString(name string) (string, error) {
	v, _, err := d.Attr(name)
	return string(v), err
}

// SetAttrFloat64 stores a float64 attribute.
func (d *Dataset) SetAttrFloat64(name string, value float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(value))
	return d.SetAttr(name, Float64, buf[:])
}

// AttrFloat64 reads a float64 attribute.
func (d *Dataset) AttrFloat64(name string) (float64, error) {
	v, _, err := d.Attr(name)
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("hdf5: attribute %q is not a float64", name)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v)), nil
}
