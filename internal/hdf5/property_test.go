package hdf5

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dayu/internal/sim"
	"dayu/internal/vfd"
)

// TestLayoutEquivalenceProperty: for any dataset shape, chunk shape and
// sequence of hyperslab writes, the chunked, contiguous and compact
// layouts must expose identical contents - the storage layout is an
// implementation detail, exactly the property HDF5 guarantees.
func TestLayoutEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		ndims := 1 + rng.Intn(3)
		dims := make([]int64, ndims)
		chunk := make([]int64, ndims)
		for i := range dims {
			dims[i] = int64(1 + rng.Intn(9))
			chunk[i] = int64(1 + rng.Intn(int(dims[i])))
		}
		f := newTestFile(t, Config{})
		contig, err := f.Root().CreateDataset("contig", Uint8, dims, nil)
		if err != nil {
			t.Fatal(err)
		}
		chunked, err := f.Root().CreateDataset("chunked", Uint8, dims,
			&DatasetOpts{Layout: Chunked, ChunkDims: chunk})
		if err != nil {
			t.Fatal(err)
		}
		compact, err := f.Root().CreateDataset("compact", Uint8, dims,
			&DatasetOpts{Layout: Compact})
		if err != nil {
			t.Fatal(err)
		}
		// Mirror of the expected contents.
		mirror := make([]byte, numElems(dims))

		for w := 0; w < 8; w++ {
			sel := Selection{Offset: make([]int64, ndims), Count: make([]int64, ndims)}
			for i := range dims {
				sel.Offset[i] = int64(rng.Intn(int(dims[i])))
				sel.Count[i] = 1 + int64(rng.Intn(int(dims[i]-sel.Offset[i])))
			}
			data := make([]byte, sel.NumElems())
			rng.Read(data)
			for _, ds := range []*Dataset{contig, chunked, compact} {
				if err := ds.Write(sel, data); err != nil {
					t.Fatalf("round %d write %d (%v %v): %v", round, w, dims, chunk, err)
				}
			}
			// Update the mirror through the same run decomposition.
			var off int64
			for _, r := range sel.runs(dims) {
				copy(mirror[r.start:r.start+r.count], data[off:off+r.count])
				off += r.count
			}
			// Random read-back selection must agree across layouts and
			// with the mirror.
			got := map[string][]byte{}
			for _, ds := range []*Dataset{contig, chunked, compact} {
				all, err := ds.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				got[ds.Name()] = all
			}
			if !bytes.Equal(got["/contig"], mirror) {
				t.Fatalf("round %d: contiguous diverged from mirror (dims %v)", round, dims)
			}
			if !bytes.Equal(got["/chunked"], mirror) {
				t.Fatalf("round %d: chunked diverged from mirror (dims %v chunk %v)", round, dims, chunk)
			}
			if !bytes.Equal(got["/compact"], mirror) {
				t.Fatalf("round %d: compact diverged from mirror (dims %v)", round, dims)
			}
		}
	}
}

// TestSelectionRunsProperty: run decomposition covers exactly the
// selected elements, in increasing order, without overlap.
func TestSelectionRunsProperty(t *testing.T) {
	f := func(rawDims []uint8, rawOff []uint8) bool {
		ndims := 1 + len(rawDims)%3
		dims := make([]int64, ndims)
		sel := Selection{Offset: make([]int64, ndims), Count: make([]int64, ndims)}
		for i := 0; i < ndims; i++ {
			d := int64(1)
			if i < len(rawDims) {
				d += int64(rawDims[i] % 7)
			}
			dims[i] = d
			off := int64(0)
			if i < len(rawOff) {
				off = int64(rawOff[i]) % d
			}
			sel.Offset[i] = off
			sel.Count[i] = d - off
		}
		runs := sel.runs(dims)
		var total int64
		last := int64(-1)
		for _, r := range runs {
			if r.count <= 0 || r.start <= last {
				return false
			}
			last = r.start + r.count - 1
			total += r.count
		}
		return total == sel.NumElems()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBTreeStress inserts thousands of chunk keys in random order and
// verifies every lookup and the ordered walk.
func TestBTreeStress(t *testing.T) {
	f := newTestFile(t, Config{BTreeNodeSize: 256}) // small nodes force deep trees
	bt, err := f.createBTree()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	keys := rand.New(rand.NewSource(3)).Perm(n)
	for _, k := range keys {
		if err := bt.put(int64(k), int64(k*10+1), int64(k+1)); err != nil {
			t.Fatal(err)
		}
	}
	if bt.count() != n {
		t.Fatalf("count = %d, want %d", bt.count(), n)
	}
	// Updates in place do not change the count.
	if err := bt.put(42, 999, 999); err != nil {
		t.Fatal(err)
	}
	if bt.count() != n {
		t.Fatal("update changed count")
	}
	for k := 0; k < n; k++ {
		addr, size, found, err := bt.get(int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d missing", k)
		}
		if k == 42 {
			if addr != 999 || size != 999 {
				t.Fatal("update lost")
			}
		} else if addr != int64(k*10+1) || size != int64(k+1) {
			t.Fatalf("key %d: addr=%d size=%d", k, addr, size)
		}
	}
	if _, _, found, _ := bt.get(int64(n + 5)); found {
		t.Error("phantom key found")
	}
	// Walk yields every key exactly once, in order.
	var walked []int64
	if err := bt.walk(func(e btEntry) error {
		walked = append(walked, e.key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(walked) != n {
		t.Fatalf("walked %d keys", len(walked))
	}
	for i := 1; i < len(walked); i++ {
		if walked[i] <= walked[i-1] {
			t.Fatal("walk out of order")
		}
	}
}

// TestBTreePersistenceAfterFlush verifies deferred descriptor writes
// reach storage on flush and survive reopen.
func TestBTreePersistenceAfterFlush(t *testing.T) {
	drv := vfd.NewMemDriver()
	f, err := Create(drv, "bt.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("c", Uint8, []int64{1024},
		&DatasetOpts{Layout: Chunked, ChunkDims: []int64{16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAll(bytes.Repeat([]byte{9}, 1024)); err != nil {
		t.Fatal(err)
	}
	// Close the dataset handle only: its deferred index metadata must
	// be persisted by the handle close.
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...)), "bt.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.OpenDatasetPath("/c")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ds2.NumChunks()
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("chunks after reopen = %d, want 64", n)
	}
	got, err := ds2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{9}, 1024)) {
		t.Fatal("chunk data lost across flush/reopen")
	}
}

// faultDriver injects a write or read failure after a countdown,
// exercising error propagation through every format layer.
type faultDriver struct {
	vfd.Driver
	failAfter int
	failRead  bool
	ops       int
}

func (d *faultDriver) tick() error {
	d.ops++
	if d.ops > d.failAfter {
		return fmt.Errorf("injected fault at op %d", d.ops)
	}
	return nil
}

func (d *faultDriver) ReadAt(p []byte, off int64, class sim.OpClass) error {
	if d.failRead {
		if err := d.tick(); err != nil {
			return err
		}
	}
	return d.Driver.ReadAt(p, off, class)
}

func (d *faultDriver) WriteAt(p []byte, off int64, class sim.OpClass) error {
	if !d.failRead {
		if err := d.tick(); err != nil {
			return err
		}
	}
	return d.Driver.WriteAt(p, off, class)
}

func TestFaultInjectionPropagates(t *testing.T) {
	// Write faults at every possible op index must surface as errors,
	// never as panics or silent corruption.
	for failAfter := 0; failAfter < 25; failAfter++ {
		drv := &faultDriver{Driver: vfd.NewMemDriver(), failAfter: failAfter}
		f, err := Create(drv, "fault.h5", Config{})
		if err != nil {
			continue // fault hit during create: fine
		}
		ds, err := f.Root().CreateDataset("d", Uint8, []int64{256},
			&DatasetOpts{Layout: Chunked, ChunkDims: []int64{32}})
		if err != nil {
			continue
		}
		if err := ds.WriteAll(make([]byte, 256)); err != nil {
			continue
		}
		_ = f.Flush()
	}
	// Read fault during open of a valid file.
	good := vfd.NewMemDriver()
	f, err := Create(good, "ok.h5", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Root().CreateDataset("d", Uint8, []int64{16}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	for failAfter := 0; failAfter < 5; failAfter++ {
		drv := &faultDriver{
			Driver:    vfd.NewMemDriverFrom(append([]byte(nil), good.Bytes()...)),
			failAfter: failAfter, failRead: true,
		}
		f2, err := Open(drv, "ok.h5", Config{})
		if err != nil {
			continue
		}
		if _, err := f2.Root().OpenDataset("d"); err == nil && failAfter < 2 {
			t.Errorf("failAfter=%d: open sequence did not observe fault", failAfter)
		}
	}
}
