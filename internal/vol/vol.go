// Package vol defines the Virtual Object Layer event schema: the
// object-level interposition point DaYu's high-level profiler hooks
// (paper §IV, Table I). The format library (internal/hdf5) emits these
// events; the tracer consumes them and joins them with VFD operations.
package vol

import "time"

// EventKind enumerates object-layer operations.
type EventKind uint8

// Object-layer operation kinds.
const (
	FileCreate EventKind = iota
	FileOpen
	FileClose
	GroupCreate
	GroupOpen
	DatasetCreate
	DatasetOpen
	DatasetClose
	DatasetRead
	DatasetWrite
	AttrWrite
	AttrRead
)

var kindNames = [...]string{
	"file-create", "file-open", "file-close",
	"group-create", "group-open",
	"dataset-create", "dataset-open", "dataset-close",
	"dataset-read", "dataset-write",
	"attr-write", "attr-read",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsAccess reports whether the event moves data (read/write) rather than
// managing object lifetime.
func (k EventKind) IsAccess() bool {
	switch k {
	case DatasetRead, DatasetWrite, AttrRead, AttrWrite:
		return true
	}
	return false
}

// ObjectInfo captures the "Object Description" semantics of Table I:
// shape, type, size and layout of the object being accessed.
type ObjectInfo struct {
	// Name is the full object path within the file, e.g. "/g/contact_map".
	Name string
	// File is the name of the containing file.
	File string
	// Type is "file", "group", "dataset" or "attribute".
	Type string
	// Datatype describes the element type, e.g. "float64", "vlen".
	Datatype string
	// Shape lists the dataset dimensions (nil for non-datasets).
	Shape []int64
	// ElemSize is the fixed element size in bytes (0 for variable-length).
	ElemSize int64
	// Layout is "contiguous", "chunked" or "compact" for datasets.
	Layout string
	// ChunkDims lists chunk dimensions for chunked layouts.
	ChunkDims []int64
}

// Event is one object-layer operation.
type Event struct {
	Kind EventKind
	// Wall is the wall-clock start of the operation.
	Wall time.Time
	// Task is the workflow task performing the operation.
	Task string
	// Info describes the object.
	Info ObjectInfo
	// Bytes is the application-visible data volume for access events.
	Bytes int64
}

// Observer receives object-layer events. Like the VFD observer it runs
// on the access path and must stay cheap.
type Observer interface {
	OnEvent(ev Event)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(ev Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// Multi fans an event out to several observers.
type Multi []Observer

// OnEvent implements Observer.
func (m Multi) OnEvent(ev Event) {
	for _, o := range m {
		o.OnEvent(ev)
	}
}
