package vol

import (
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	cases := map[EventKind]string{
		FileCreate:    "file-create",
		FileOpen:      "file-open",
		FileClose:     "file-close",
		GroupCreate:   "group-create",
		GroupOpen:     "group-open",
		DatasetCreate: "dataset-create",
		DatasetOpen:   "dataset-open",
		DatasetClose:  "dataset-close",
		DatasetRead:   "dataset-read",
		DatasetWrite:  "dataset-write",
		AttrWrite:     "attr-write",
		AttrRead:      "attr-read",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind not unknown")
	}
}

func TestIsAccess(t *testing.T) {
	access := []EventKind{DatasetRead, DatasetWrite, AttrRead, AttrWrite}
	for _, k := range access {
		if !k.IsAccess() {
			t.Errorf("%v should be an access", k)
		}
	}
	nonAccess := []EventKind{FileCreate, FileOpen, FileClose, GroupCreate,
		GroupOpen, DatasetCreate, DatasetOpen, DatasetClose}
	for _, k := range nonAccess {
		if k.IsAccess() {
			t.Errorf("%v should not be an access", k)
		}
	}
}

func TestObserverFuncAndMulti(t *testing.T) {
	var got []Event
	obs := ObserverFunc(func(ev Event) { got = append(got, ev) })
	ev := Event{Kind: DatasetWrite, Wall: time.Unix(1, 0), Task: "t",
		Info: ObjectInfo{Name: "/d", File: "f.h5", Type: "dataset"}, Bytes: 64}
	obs.OnEvent(ev)
	if len(got) != 1 || got[0].Info.Name != "/d" || got[0].Bytes != 64 {
		t.Fatalf("ObserverFunc got %+v", got)
	}

	var a, b int
	multi := Multi{
		ObserverFunc(func(Event) { a++ }),
		ObserverFunc(func(Event) { b++ }),
	}
	multi.OnEvent(ev)
	multi.OnEvent(ev)
	if a != 2 || b != 2 {
		t.Errorf("Multi fan-out: a=%d b=%d", a, b)
	}
	// Empty multi is a no-op.
	Multi{}.OnEvent(ev)
}
