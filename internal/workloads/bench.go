package workloads

import (
	"fmt"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/obs"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// The overhead benchmarks (paper §VII-B) run directly against in-memory
// drivers and measure real wall-clock time, with and without the Data
// Semantic Mapper attached - DaYu's runtime overhead is a property of
// the tracer implementation, not of the simulated devices.

// H5benchConfig configures the h5bench-like parallel I/O kernel: every
// process writes a fixed volume to its own file in fixed-size
// operations, then reads it back.
type H5benchConfig struct {
	// Procs is the simulated process count.
	Procs int
	// BytesPerProc is the I/O volume per process.
	BytesPerProc int64
	// IOSize is the per-operation transfer size.
	IOSize int64
	// Seed makes data deterministic.
	Seed uint64
	// Metrics, when non-nil, wraps each process's driver with the obs
	// instrumentation decorator (per-op latency/size histograms). Nil
	// leaves the kernel's driver stack untouched.
	Metrics *obs.Registry
}

func (c H5benchConfig) withDefaults() H5benchConfig {
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.BytesPerProc == 0 {
		c.BytesPerProc = 1 << 20
	}
	if c.IOSize == 0 {
		c.IOSize = 256 << 10
	}
	if c.IOSize > c.BytesPerProc {
		c.IOSize = c.BytesPerProc
	}
	if c.Seed == 0 {
		c.Seed = 4
	}
	return c
}

// RunH5bench executes the kernel. When tr is non-nil every process's
// I/O is profiled (one task per process) and the resulting task traces
// are returned. The duration is real wall-clock time of the I/O.
func RunH5bench(cfg H5benchConfig, tr *tracer.Tracer) (time.Duration, []*trace.TaskTrace, error) {
	cfg = cfg.withDefaults()
	var traces []*trace.TaskTrace
	start := time.Now()
	for p := 0; p < cfg.Procs; p++ {
		task := fmt.Sprintf("h5bench_p%03d", p)
		fileName := fmt.Sprintf("h5bench_p%03d.h5", p)
		drv := vfd.Instrument(vfd.NewMemDriver(), "mem", cfg.Metrics)
		var hcfg hdf5.Config
		if tr != nil {
			tr.BeginTask(task)
			drv = tr.WrapDriver(drv, fileName)
			hcfg.Mailbox = tr.Mailbox()
			hcfg.Observer = tr.VOLObserver()
			hcfg.Task = task
		}
		f, err := hdf5.Create(drv, fileName, hcfg)
		if err != nil {
			return 0, nil, err
		}
		ds, err := f.Root().CreateDataset("data", hdf5.Uint8, []int64{cfg.BytesPerProc}, nil)
		if err != nil {
			return 0, nil, err
		}
		rng := newPRNG(cfg.Seed + uint64(p))
		buf := rng.bytes(cfg.IOSize)
		for off := int64(0); off < cfg.BytesPerProc; off += cfg.IOSize {
			n := cfg.IOSize
			if off+n > cfg.BytesPerProc {
				n = cfg.BytesPerProc - off
			}
			if err := ds.Write(hdf5.Slab1D(off, n), buf[:n]); err != nil {
				return 0, nil, err
			}
		}
		for off := int64(0); off < cfg.BytesPerProc; off += cfg.IOSize {
			n := cfg.IOSize
			if off+n > cfg.BytesPerProc {
				n = cfg.BytesPerProc - off
			}
			if _, err := ds.Read(hdf5.Slab1D(off, n)); err != nil {
				return 0, nil, err
			}
		}
		if err := ds.Close(); err != nil {
			return 0, nil, err
		}
		if err := f.Close(); err != nil {
			return 0, nil, err
		}
		if tr != nil {
			traces = append(traces, tr.EndTask())
		}
	}
	return time.Since(start), traces, nil
}

// CornerCaseConfig configures the worst-case benchmark from §VII-B: an
// unusually large number of datasets in a small file, with repeated
// dataset open/read/close cycles within one task - the access pattern
// that maximizes the Access Tracker's per-object work.
type CornerCaseConfig struct {
	// Datasets is the dataset count (paper: 200).
	Datasets int
	// DatasetBytes is each dataset's size.
	DatasetBytes int64
	// ReadOps is the number of dataset read operations performed
	// round-robin over the datasets (the x-axis of Figure 9c/9d).
	ReadOps int
	// Seed makes data deterministic.
	Seed uint64
	// Metrics, when non-nil, instruments the driver stack (see
	// H5benchConfig.Metrics).
	Metrics *obs.Registry
}

func (c CornerCaseConfig) withDefaults() CornerCaseConfig {
	if c.Datasets == 0 {
		c.Datasets = 200
	}
	if c.DatasetBytes == 0 {
		c.DatasetBytes = 4 << 10
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
	return c
}

// RunCornerCase executes the benchmark; the returned trace is nil when
// tr is nil. Duration is real wall-clock time.
func RunCornerCase(cfg CornerCaseConfig, tr *tracer.Tracer) (time.Duration, *trace.TaskTrace, error) {
	cfg = cfg.withDefaults()
	const task = "corner_case"
	const fileName = "corner_case.h5"
	drv := vfd.Instrument(vfd.NewMemDriver(), "mem", cfg.Metrics)
	var hcfg hdf5.Config
	if tr != nil {
		tr.BeginTask(task)
		drv = tr.WrapDriver(drv, fileName)
		hcfg.Mailbox = tr.Mailbox()
		hcfg.Observer = tr.VOLObserver()
		hcfg.Task = task
	}
	start := time.Now()
	f, err := hdf5.Create(drv, fileName, hcfg)
	if err != nil {
		return 0, nil, err
	}
	rng := newPRNG(cfg.Seed)
	data := rng.bytes(cfg.DatasetBytes)
	for i := 0; i < cfg.Datasets; i++ {
		ds, err := f.Root().CreateDataset(cornerDataset(i), hdf5.Uint8,
			[]int64{cfg.DatasetBytes}, nil)
		if err != nil {
			return 0, nil, err
		}
		if err := ds.WriteAll(data); err != nil {
			return 0, nil, err
		}
		if err := ds.Close(); err != nil {
			return 0, nil, err
		}
	}
	// Repeated reads with per-access open/close: frequent data-object
	// operations are what drive DaYu's worst-case overhead.
	for op := 0; op < cfg.ReadOps; op++ {
		ds, err := f.Root().OpenDataset(cornerDataset(op % cfg.Datasets))
		if err != nil {
			return 0, nil, err
		}
		if _, err := ds.ReadAll(); err != nil {
			return 0, nil, err
		}
		if err := ds.Close(); err != nil {
			return 0, nil, err
		}
	}
	if err := f.Close(); err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	if tr != nil {
		return elapsed, tr.EndTask(), nil
	}
	return elapsed, nil, nil
}

func cornerDataset(i int) string { return fmt.Sprintf("dset_%03d", i) }
