package workloads

import (
	"encoding/json"
	"testing"

	"dayu/internal/analyzer"
	"dayu/internal/graph"
	"dayu/internal/trace"
)

// renderGraph captures the byte-exact outputs the parallel builders
// promise to keep identical to the serial build.
func renderGraph(t *testing.T, g *graph.Graph) (dot, js string) {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return g.DOT(), string(data)
}

// TestReplicaSerialParallelEquivalence is the golden gate for the
// parallel analyzer over the three paper workflow replicas: building
// the FTG and SDG with Parallelism 1 and Parallelism 8 must emit
// byte-identical DOT and JSON.
func TestReplicaSerialParallelEquivalence(t *testing.T) {
	type replica struct {
		traces   []*trace.TaskTrace
		manifest *trace.Manifest
	}
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) replica
	}{
		{"pyflextrkr", func(t *testing.T) replica {
			spec, setup := PyFlextrkr(PyFlextrkrConfig{ParallelTasks: 2, InputFiles: 2,
				FeatureBytes: 8 << 10, Stage9Datasets: 20, Stage9Accesses: 4})
			res := runWorkload(t, spec, setup)
			return replica{res.Traces, res.Manifest}
		}},
		{"ddmd", func(t *testing.T) replica {
			spec, setup := DDMD(DDMDConfig{SimTasks: 4, ContactMapBytes: 32 << 10,
				SmallBytes: 4 << 10, Epochs: 10})
			res := runWorkload(t, spec, setup)
			return replica{res.Traces, res.Manifest}
		}},
		{"arldm", func(t *testing.T) replica {
			spec, setup := ARLDM(ARLDMConfig{Stories: 24, ImageBytes: 8 << 10})
			res := runWorkload(t, spec, setup)
			return replica{res.Traces, res.Manifest}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.build(t)
			if len(r.traces) == 0 {
				t.Fatal("replica produced no traces")
			}
			serialFTG := analyzer.BuildFTGOpts(r.traces, r.manifest, analyzer.Options{Parallelism: 1})
			parallelFTG := analyzer.BuildFTGOpts(r.traces, r.manifest, analyzer.Options{Parallelism: 8})
			wantDOT, wantJSON := renderGraph(t, serialFTG)
			gotDOT, gotJSON := renderGraph(t, parallelFTG)
			if gotDOT != wantDOT {
				t.Error("ftg: parallel DOT differs from serial")
			}
			if gotJSON != wantJSON {
				t.Error("ftg: parallel JSON differs from serial")
			}

			serialSDG := analyzer.BuildSDG(r.traces, r.manifest, analyzer.Options{
				Parallelism: 1, IncludeRegions: true, IncludeFileMetadata: true})
			parallelSDG := analyzer.BuildSDG(r.traces, r.manifest, analyzer.Options{
				Parallelism: 8, IncludeRegions: true, IncludeFileMetadata: true})
			wantDOT, wantJSON = renderGraph(t, serialSDG)
			gotDOT, gotJSON = renderGraph(t, parallelSDG)
			if gotDOT != wantDOT {
				t.Error("sdg: parallel DOT differs from serial")
			}
			if gotJSON != wantJSON {
				t.Error("sdg: parallel JSON differs from serial")
			}
		})
	}
}
