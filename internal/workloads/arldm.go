package workloads

import (
	"fmt"

	"dayu/internal/hdf5"
	"dayu/internal/workflow"
)

// ARLDMConfig scales the image-synthesis replica (paper §VI-C). The
// data-preparation task arldm_saveh5 writes one HDF5 file holding five
// image datasets (image0..image4) and one text dataset, all 1-D
// variable-length arrays (>90% of the volume is VL data); training
// reads the image datasets; inference reads and generates output.
type ARLDMConfig struct {
	// Stories is the element count of each VL dataset.
	Stories int
	// ImageBytes is the mean VL image element size.
	ImageBytes int64
	// TextBytes is the mean VL text element size.
	TextBytes int64
	// Layout selects the VL dataset layout: the paper's baseline is
	// contiguous; its optimization is chunked.
	Layout hdf5.Layout
	// ChunkElems sizes chunks (in elements) for chunked layout.
	ChunkElems int64
	// Seed makes synthetic data deterministic.
	Seed uint64
}

func (c ARLDMConfig) withDefaults() ARLDMConfig {
	if c.Stories == 0 {
		c.Stories = 64
	}
	if c.ImageBytes == 0 {
		c.ImageBytes = 24 << 10
	}
	if c.TextBytes == 0 {
		c.TextBytes = 512
	}
	if c.Layout == 0 {
		c.Layout = hdf5.Contiguous
	}
	if c.ChunkElems == 0 {
		c.ChunkElems = 8
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
	return c
}

// ARLDM file names.
const (
	ARLDMOutFile       = "flintstones_out.h5"
	ARLDMGeneratedFile = "generated.h5"
)

// ARLDMDatasets lists the six VL datasets of the prepared file.
func ARLDMDatasets() []string {
	names := make([]string, 0, 6)
	for i := 0; i < 5; i++ {
		names = append(names, fmt.Sprintf("image%d", i))
	}
	return append(names, "text")
}

func arldmOpts(cfg ARLDMConfig) *hdf5.DatasetOpts {
	if cfg.Layout == hdf5.Chunked {
		return &hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{cfg.ChunkElems}}
	}
	return &hdf5.DatasetOpts{Layout: cfg.Layout}
}

// ARLDM builds the three-stage image-synthesis workflow replica.
func ARLDM(cfg ARLDMConfig) (workflow.Spec, func(*workflow.Engine) error) {
	cfg = cfg.withDefaults()
	stages := []workflow.Stage{
		// Stage 1: data preparation writes all VL datasets.
		{Name: "stage1_saveh5", Tasks: []workflow.Task{{
			Name: "arldm_saveh5",
			Fn: func(tc *workflow.TaskContext) error {
				// Size heap collections to hold a handful of VL elements,
				// as HDF5's global heap does for large objects; chunked
				// layouts can then coalesce payload writes per collection.
				heapColl := int(cfg.ImageBytes) * 4
				if heapColl < 64<<10 {
					heapColl = 64 << 10
				}
				f, err := tc.CreateWith(ARLDMOutFile, hdf5.Config{HeapCollectionSize: heapColl})
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed)
				for _, name := range ARLDMDatasets() {
					mean := cfg.ImageBytes
					if name == "text" {
						mean = cfg.TextBytes
					}
					ds, err := f.Root().CreateDataset(name, hdf5.VLen,
						[]int64{int64(cfg.Stories)}, arldmOpts(cfg))
					if err != nil {
						return err
					}
					// Stories are appended in batches of 5, the
					// story-length granularity of the application.
					const batch = 5
					for start := 0; start < cfg.Stories; start += batch {
						n := batch
						if start+n > cfg.Stories {
							n = cfg.Stories - start
						}
						values := make([][]byte, n)
						for i := range values {
							values[i] = rng.bytes(rng.varLen(mean))
						}
						if err := ds.WriteVL(int64(start), values); err != nil {
							return err
						}
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
				return f.Close()
			},
		}}},
		// Stage 2: training reads the image datasets.
		{Name: "stage2_training", Tasks: []workflow.Task{{
			Name: "arldm_training",
			Fn: func(tc *workflow.TaskContext) error {
				f, err := tc.Open(ARLDMOutFile)
				if err != nil {
					return err
				}
				for i := 0; i < 5; i++ {
					ds, err := f.Root().OpenDataset(fmt.Sprintf("image%d", i))
					if err != nil {
						return err
					}
					if _, err := ds.ReadVL(0, int64(cfg.Stories)); err != nil {
						return err
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
				return f.Close()
			},
		}}},
		// Stage 3: inference reads text + images and writes generations.
		{Name: "stage3_inference", Tasks: []workflow.Task{{
			Name: "arldm_inference",
			Fn: func(tc *workflow.TaskContext) error {
				f, err := tc.Open(ARLDMOutFile)
				if err != nil {
					return err
				}
				for _, name := range []string{"text", "image0"} {
					ds, err := f.Root().OpenDataset(name)
					if err != nil {
						return err
					}
					if _, err := ds.ReadVL(0, int64(cfg.Stories)); err != nil {
						return err
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
				if err := f.Close(); err != nil {
					return err
				}
				out, err := tc.Create(ARLDMGeneratedFile)
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + 77)
				ds, err := out.Root().CreateDataset("generated", hdf5.VLen,
					[]int64{int64(cfg.Stories)}, arldmOpts(cfg))
				if err != nil {
					return err
				}
				for i := 0; i < cfg.Stories; i++ {
					if err := ds.WriteVL(int64(i), [][]byte{rng.bytes(rng.varLen(cfg.ImageBytes))}); err != nil {
						return err
					}
				}
				return out.Close()
			},
		}}},
	}
	return workflow.Spec{Name: "arldm", Stages: stages}, func(*workflow.Engine) error { return nil }
}
