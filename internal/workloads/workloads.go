// Package workloads provides the workload replicas the paper evaluates
// DaYu on: the PyFLEXTRKR storm-tracking pipeline (§VI-A), the
// DeepDriveMD simulation/ML pipeline (§VI-B), the ARLDM image-synthesis
// pipeline (§VI-C), an h5bench-like parallel I/O kernel, and the
// corner-case many-datasets benchmark used for worst-case overhead
// (§VII-B). Each replica reproduces its application's published
// task/stage structure, file fan-in/out, dataset names and layouts, so
// DaYu's graphs and diagnostics see the same dataflow the paper's
// figures show.
package workloads

import "encoding/binary"

// prng is a small deterministic xorshift generator for reproducible
// synthetic data.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &prng{state: seed}
}

func (p *prng) next() uint64 {
	x := p.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.state = x
	return x
}

// intn returns a value in [0, n).
func (p *prng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(p.next() % uint64(n))
}

// bytes fills a deterministic pseudo-random buffer of length n.
func (p *prng) bytes(n int64) []byte {
	buf := make([]byte, n)
	var i int64
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], p.next())
	}
	if i < n {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], p.next())
		copy(buf[i:], tail[:n-i])
	}
	return buf
}

// varLen returns a variable length around mean with roughly +/-50%
// spread (never below 16 bytes) - the size variability of VL data.
func (p *prng) varLen(mean int64) int64 {
	if mean < 32 {
		mean = 32
	}
	v := mean/2 + p.intn(mean)
	if v < 16 {
		v = 16
	}
	return v
}
