package workloads

import (
	"fmt"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/workflow"
)

// DDMDConfig scales the DeepDriveMD replica (paper §VI-B): iterations
// of a 4-stage pipeline - OpenMM simulation (parallel tasks writing
// contact_map, point_cloud, fnc and rmsd datasets, all chunked),
// aggregation (sequentially reads everything, consolidates into one
// file), training (reads the aggregated data except contact_map, whose
// metadata only is touched; writes and re-reads embedding files) and
// inference (reads all simulated data, writes a virtual file).
type DDMDConfig struct {
	// SimTasks is the OpenMM task count per iteration (paper: 12).
	SimTasks int
	// Iterations is the pipeline iteration count.
	Iterations int
	// ContactMapBytes sizes the largest dataset.
	ContactMapBytes int64
	// SmallBytes sizes point_cloud, fnc and rmsd.
	SmallBytes int64
	// Epochs is the training epoch count (one embedding file each,
	// paper: 10, re-reading epochs 5 and 10).
	Epochs int
	// Layout selects the simulation dataset layout (paper baseline:
	// chunked; the Figure 13b optimization: contiguous).
	Layout hdf5.Layout
	// ChunkBytes sizes chunks for chunked layout.
	ChunkBytes int64
	// SkipUnusedDataset applies the "eliminate unused data access"
	// optimization (§VII-C1): aggregation no longer consolidates
	// contact_map, which training never reads.
	SkipUnusedDataset bool
	// ParallelTrainInfer applies the "pipeline training and inference"
	// optimization: with a pre-trained model from the previous
	// iteration, the two data-independent tasks run in one stage.
	ParallelTrainInfer bool
	// Per-stage compute times. Molecular-dynamics simulation and model
	// training dominate DDMD's runtime; storage optimization touches
	// only the I/O share, which is what bounds the paper's 1.15x-1.2x
	// speedups.
	SimCompute   time.Duration
	AggCompute   time.Duration
	TrainCompute time.Duration
	InferCompute time.Duration
	// Seed makes synthetic data deterministic.
	Seed uint64
}

func (c DDMDConfig) withDefaults() DDMDConfig {
	if c.SimTasks == 0 {
		c.SimTasks = 12
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.ContactMapBytes == 0 {
		c.ContactMapBytes = 256 << 10
	}
	if c.SmallBytes == 0 {
		c.SmallBytes = 16 << 10
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.Layout == 0 {
		c.Layout = hdf5.Chunked
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 8 << 10
	}
	if c.SimCompute == 0 {
		c.SimCompute = 12 * time.Second
	}
	if c.AggCompute == 0 {
		c.AggCompute = 2 * time.Second
	}
	if c.TrainCompute == 0 {
		c.TrainCompute = 3 * time.Second
	}
	if c.InferCompute == 0 {
		c.InferCompute = 1500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	return c
}

// DDMD dataset names (paper §VI-B).
var DDMDDatasets = []string{"contact_map", "point_cloud", "fnc", "rmsd"}

// DDMD file names.
func DDMDSimFile(iter, task int) string {
	return fmt.Sprintf("stage%04d_task%04d.h5", iter*3, task)
}

// DDMDAggFile names the aggregated file of an iteration.
func DDMDAggFile(iter int) string { return fmt.Sprintf("aggregated_%04d.h5", iter) }

// DDMDEmbeddingFile names a training embedding file.
func DDMDEmbeddingFile(iter, epoch int) string {
	return fmt.Sprintf("embeddings-epoch-%d-iter%04d.h5", epoch, iter)
}

// DDMDVirtualFile names the inference output of an iteration.
func DDMDVirtualFile(iter int) string {
	return fmt.Sprintf("virtual_stage%04d_task0000.h5", iter*3+2)
}

// ddmdDatasetOpts returns creation options per the configured layout.
func ddmdDatasetOpts(cfg DDMDConfig, elems int64) *hdf5.DatasetOpts {
	if cfg.Layout != hdf5.Chunked {
		return &hdf5.DatasetOpts{Layout: cfg.Layout}
	}
	chunkElems := cfg.ChunkBytes / 4
	if chunkElems < 1 {
		chunkElems = 1
	}
	if chunkElems > elems {
		chunkElems = elems
	}
	return &hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{chunkElems}}
}

// DDMD builds the DeepDriveMD workflow replica.
func DDMD(cfg DDMDConfig) (workflow.Spec, func(*workflow.Engine) error) {
	cfg = cfg.withDefaults()
	var stages []workflow.Stage

	datasetBytes := func(name string) int64 {
		if name == "contact_map" {
			return cfg.ContactMapBytes
		}
		return cfg.SmallBytes
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		iter := iter

		// Stage: OpenMM simulation - SimTasks parallel writers.
		var sims []workflow.Task
		for task := 0; task < cfg.SimTasks; task++ {
			task := task
			sims = append(sims, workflow.Task{
				Name:    fmt.Sprintf("openmm_%04d_%04d", iter, task),
				Compute: cfg.SimCompute,
				Fn: func(tc *workflow.TaskContext) error {
					f, err := tc.Create(DDMDSimFile(iter, task))
					if err != nil {
						return err
					}
					rng := newPRNG(cfg.Seed + uint64(iter*1000+task))
					for _, name := range DDMDDatasets {
						elems := datasetBytes(name) / 4
						ds, err := f.Root().CreateDataset(name, hdf5.Float32,
							[]int64{elems}, ddmdDatasetOpts(cfg, elems))
						if err != nil {
							return err
						}
						if err := ds.WriteAll(rng.bytes(elems * 4)); err != nil {
							return err
						}
						if err := ds.Close(); err != nil {
							return err
						}
					}
					return f.Close()
				},
			})
		}
		stages = append(stages, workflow.Stage{
			Name: fmt.Sprintf("simulation_%04d", iter), Tasks: sims,
		})

		// Stage: aggregation - sequentially reads every simulated file
		// and consolidates all four datasets (content unmodified).
		stages = append(stages, workflow.Stage{
			Name: fmt.Sprintf("aggregate_%04d", iter),
			Tasks: []workflow.Task{{
				Name:    fmt.Sprintf("aggregate_%04d", iter),
				Compute: cfg.AggCompute,
				Fn: func(tc *workflow.TaskContext) error {
					aggNames := DDMDDatasets
					if cfg.SkipUnusedDataset {
						aggNames = []string{"point_cloud", "fnc", "rmsd"}
					}
					out, err := tc.Create(DDMDAggFile(iter))
					if err != nil {
						return err
					}
					for _, name := range aggNames {
						elems := datasetBytes(name) / 4 * int64(cfg.SimTasks)
						ds, err := out.Root().CreateDataset(name, hdf5.Float32,
							[]int64{elems}, ddmdDatasetOpts(cfg, elems))
						if err != nil {
							return err
						}
						if err := ds.Close(); err != nil {
							return err
						}
					}
					for task := 0; task < cfg.SimTasks; task++ {
						in, err := tc.Open(DDMDSimFile(iter, task))
						if err != nil {
							return err
						}
						for _, name := range aggNames {
							src, err := in.Root().OpenDataset(name)
							if err != nil {
								return err
							}
							data, err := src.ReadAll()
							if err != nil {
								return err
							}
							if err := src.Close(); err != nil {
								return err
							}
							dst, err := out.Root().OpenDataset(name)
							if err != nil {
								return err
							}
							elems := datasetBytes(name) / 4
							sel := hdf5.Slab1D(int64(task)*elems, elems)
							if err := dst.Write(sel, data); err != nil {
								return err
							}
							if err := dst.Close(); err != nil {
								return err
							}
						}
						if err := in.Close(); err != nil {
							return err
						}
					}
					return out.Close()
				},
			}},
		})

		// Stage: training - reads the aggregated file's point_cloud, fnc
		// and rmsd; touches only contact_map's metadata (Figure 7); reads
		// the contact_map content from one simulated file instead; writes
		// one embedding file per epoch and re-reads epochs 5 and 10.
		trainingTask := workflow.Task{
			Name:    fmt.Sprintf("training_%04d", iter),
			Compute: cfg.TrainCompute,
			Fn: func(tc *workflow.TaskContext) error {
				agg, err := tc.Open(DDMDAggFile(iter))
				if err != nil {
					return err
				}
				for _, name := range []string{"point_cloud", "fnc", "rmsd"} {
					ds, err := agg.Root().OpenDataset(name)
					if err != nil {
						return err
					}
					if _, err := ds.ReadAll(); err != nil {
						return err
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
				// Metadata-only touch of contact_map: open and close
				// without reading content. The optimized configuration
				// drops even this (the dataset is no longer aggregated).
				if !cfg.SkipUnusedDataset {
					cm, err := agg.Root().OpenDataset("contact_map")
					if err != nil {
						return err
					}
					if err := cm.Close(); err != nil {
						return err
					}
				}
				if err := agg.Close(); err != nil {
					return err
				}
				// contact_map content comes from one simulated file.
				sim0, err := tc.Open(DDMDSimFile(iter, 0))
				if err != nil {
					return err
				}
				ds, err := sim0.Root().OpenDataset("contact_map")
				if err != nil {
					return err
				}
				if _, err := ds.ReadAll(); err != nil {
					return err
				}
				if err := sim0.Close(); err != nil {
					return err
				}
				// Embedding files, one per epoch.
				rng := newPRNG(cfg.Seed + uint64(9000+iter))
				embElems := cfg.SmallBytes / 4
				for epoch := 1; epoch <= cfg.Epochs; epoch++ {
					ef, err := tc.Create(DDMDEmbeddingFile(iter, epoch))
					if err != nil {
						return err
					}
					eds, err := ef.Root().CreateDataset("embedding", hdf5.Float32,
						[]int64{embElems}, nil)
					if err != nil {
						return err
					}
					if err := eds.WriteAll(rng.bytes(embElems * 4)); err != nil {
						return err
					}
					if err := ef.Close(); err != nil {
						return err
					}
				}
				// Read-after-write on specific embeddings (Figure 6
				// circle 2: epochs 5 and 10).
				for _, epoch := range []int{5, 10} {
					if epoch > cfg.Epochs {
						continue
					}
					ef, err := tc.Open(DDMDEmbeddingFile(iter, epoch))
					if err != nil {
						return err
					}
					if err := readWholeFile(ef); err != nil {
						return err
					}
					if err := ef.Close(); err != nil {
						return err
					}
				}
				return nil
			},
		}

		// Stage: inference - reads all simulated files (not training
		// outputs: no HDF5 data dependency on training) and writes the
		// virtual file.
		inferenceTask := workflow.Task{
			Name:    fmt.Sprintf("inference_%04d", iter),
			Compute: cfg.InferCompute,
			Fn: func(tc *workflow.TaskContext) error {
				for task := 0; task < cfg.SimTasks; task++ {
					in, err := tc.Open(DDMDSimFile(iter, task))
					if err != nil {
						return err
					}
					if err := readWholeFile(in); err != nil {
						return err
					}
					if err := in.Close(); err != nil {
						return err
					}
				}
				out, err := tc.Create(DDMDVirtualFile(iter))
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + uint64(5000+iter))
				elems := cfg.SmallBytes / 4
				ds, err := out.Root().CreateDataset("selection", hdf5.Float32,
					[]int64{elems}, nil)
				if err != nil {
					return err
				}
				if err := ds.WriteAll(rng.bytes(elems * 4)); err != nil {
					return err
				}
				return out.Close()
			},
		}

		if cfg.ParallelTrainInfer {
			stages = append(stages, workflow.Stage{
				Name:  fmt.Sprintf("train_infer_%04d", iter),
				Tasks: []workflow.Task{trainingTask, inferenceTask},
			})
		} else {
			stages = append(stages, workflow.Stage{
				Name: fmt.Sprintf("training_%04d", iter), Tasks: []workflow.Task{trainingTask},
			})
			stages = append(stages, workflow.Stage{
				Name: fmt.Sprintf("inference_%04d", iter), Tasks: []workflow.Task{inferenceTask},
			})
		}
	}
	return workflow.Spec{Name: "ddmd", Stages: stages}, func(*workflow.Engine) error { return nil }
}
