package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/graph"
	"dayu/internal/obs"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/workflow"
)

// The bench suite is the machine-readable performance trajectory of the
// reproduction itself (the BENCH_*.json files at the repo root, one per
// PR): h5bench and corner-case kernel wall times with and without the
// Data Semantic Mapper attached (the paper's §VII-B overhead study),
// end-to-end timings for the three workflow replicas, and the cost of
// this PR's obs instrumentation, so perf regressions in the tracer and
// engine hot paths are visible across the PR sequence.

// BenchSchema identifies the BENCH_*.json format version.
const BenchSchema = "dayu-bench/v1"

// BenchSuiteConfig configures a bench-suite run.
type BenchSuiteConfig struct {
	// Quick shrinks volumes and process counts for CI smoke runs.
	Quick bool
	// Reps is the repetition count per timed kernel; the fastest rep is
	// reported (default 3).
	Reps int
	// Metrics, when non-nil, also collects obs metrics during the
	// instrumented kernel runs (for `dayu metrics`-style inspection).
	Metrics *obs.Registry
}

func (c BenchSuiteConfig) withDefaults() BenchSuiteConfig {
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// KernelBench is one kernel's wall-clock measurement set.
type KernelBench struct {
	Name string `json:"name"`
	// UntracedNS is the plain kernel: no tracer, no instrumentation.
	UntracedNS int64 `json:"untraced_ns"`
	// TracedNS runs with the full Data Semantic Mapper attached.
	TracedNS int64 `json:"traced_ns"`
	// TracerOverheadPct is (traced-untraced)/untraced, clamped at 0.
	TracerOverheadPct float64 `json:"tracer_overhead_pct"`
	// DisabledObsNS re-times the untraced kernel with a nil metrics
	// registry passed through the instrumentation seam - the disabled
	// path the <2%-overhead acceptance bound applies to.
	DisabledObsNS int64 `json:"disabled_obs_ns"`
	// DisabledObsOverheadPct compares DisabledObsNS to UntracedNS.
	DisabledObsOverheadPct float64 `json:"disabled_obs_overhead_pct"`
	// InstrumentedNS runs untraced but with obs instrumentation enabled
	// (per-op histograms live).
	InstrumentedNS int64 `json:"instrumented_ns"`
	// InstrumentationOverheadPct compares InstrumentedNS to UntracedNS.
	InstrumentationOverheadPct float64 `json:"instrumentation_overhead_pct"`
}

// WorkflowBench is one workflow replica's end-to-end measurement.
type WorkflowBench struct {
	Name   string `json:"name"`
	Stages int    `json:"stages"`
	Tasks  int    `json:"tasks"`
	// VirtualNS is the simulated critical-path time (deterministic).
	VirtualNS int64 `json:"virtual_ns"`
	// WallTracedNS / WallUntracedNS are host wall times of the engine
	// run with the profilers on and off.
	WallTracedNS      int64   `json:"wall_traced_ns"`
	WallUntracedNS    int64   `json:"wall_untraced_ns"`
	TracerOverheadPct float64 `json:"tracer_overhead_pct"`
}

// AnalyzerBench is the analyzer kernel's measurement: FTG + SDG
// construction over a large synthetic trace set, serial (Parallelism
// 1) versus parallel (Parallelism = GOMAXPROCS), plus the byte-level
// equality check between the two builds' outputs — the determinism
// contract the parallel analyzer promises.
type AnalyzerBench struct {
	Name string `json:"name"`
	// Tasks is the synthetic trace count the kernel analyzed.
	Tasks int `json:"tasks"`
	// Cores and Parallelism describe the hardware and the worker bound
	// the parallel build ran with (speedup is hardware-dependent; a
	// single-core runner reports ~1x by construction).
	Cores       int `json:"cores"`
	Parallelism int `json:"parallelism"`
	// SerialNS and ParallelNS are the fastest wall times per mode.
	SerialNS   int64 `json:"serial_ns"`
	ParallelNS int64 `json:"parallel_ns"`
	// Speedup is SerialNS/ParallelNS.
	Speedup float64 `json:"speedup"`
	// SpeedupGate is the honest verdict on Speedup: "passed" when the
	// parallel build beats the threshold (1.5x at parallelism >= 4,
	// 1.0x at 2-3), "failed" when it does not, and "skipped" — never
	// "passed" — when the host cannot run in parallel at all (cores or
	// parallelism < 2). BENCH_5 recorded cores: 1 with no gate, which
	// let a 0.91x "parallel" build read as a benchmark rather than a
	// bug.
	SpeedupGate string `json:"speedup_gate"`
	// OutputsIdentical records that serial and parallel builds emitted
	// byte-identical DOT and JSON for both graphs. CI fails the record
	// when false.
	OutputsIdentical bool `json:"outputs_identical"`
}

// Bench gate verdicts.
const (
	GatePassed  = "passed"
	GateFailed  = "failed"
	GateSkipped = "skipped"
)

// speedupGate scores an analyzer speedup against the hardware it ran
// on. Single-core hosts cannot demonstrate parallel speedup, so the
// gate is skipped — not passed — there.
func speedupGate(cores, parallelism int, speedup float64) string {
	if cores < 2 || parallelism < 2 {
		return GateSkipped
	}
	threshold := 1.0
	if parallelism >= 4 {
		threshold = 1.5
	}
	if speedup > threshold {
		return GatePassed
	}
	return GateFailed
}

// CodecBench is the trace-codec kernel's measurement: encoding and
// decoding the synthetic workflow's trace set in JSON (wire v1)
// versus dtb/v2 binary, the on-disk byte volumes (the Figure 9d
// storage-overhead metric), and the equivalence gate — FTG and SDG
// built from binary-round-tripped traces must render byte-identically
// to the JSON build.
type CodecBench struct {
	Name string `json:"name"`
	// Tasks is the synthetic trace count the kernel serialized.
	Tasks int `json:"tasks"`
	// Fastest wall times to encode / decode the whole trace set.
	JSONEncodeNS   int64 `json:"json_encode_ns"`
	JSONDecodeNS   int64 `json:"json_decode_ns"`
	BinaryEncodeNS int64 `json:"binary_encode_ns"`
	BinaryDecodeNS int64 `json:"binary_decode_ns"`
	// Serialized byte volumes across the whole trace set.
	JSONBytes   int64 `json:"json_bytes"`
	BinaryBytes int64 `json:"binary_bytes"`
	// EncodeSpeedup and DecodeSpeedup are JSON time over binary time.
	EncodeSpeedup float64 `json:"encode_speedup"`
	DecodeSpeedup float64 `json:"decode_speedup"`
	// EncodeSpeedupGate is "passed" when binary encode is at least as
	// fast as JSON (EncodeSpeedup >= 1.0), "failed" otherwise: the
	// optimized format being slower to write than the baseline is a
	// performance bug (BENCH_5 shipped at 0.93x), not a tradeoff.
	EncodeSpeedupGate string `json:"encode_speedup_gate"`
	// Allocation volume per trace through each pipeline, measured from
	// runtime.MemStats TotalAlloc deltas. These track codec allocation
	// regressions that wall time alone can hide.
	JSONEncodeAllocBytesPerOp   int64 `json:"json_encode_alloc_bytes_per_op"`
	BinaryEncodeAllocBytesPerOp int64 `json:"binary_encode_alloc_bytes_per_op"`
	BinaryDecodeAllocBytesPerOp int64 `json:"binary_decode_alloc_bytes_per_op"`
	// SizeRatio is BinaryBytes/JSONBytes (< 1 means smaller on disk).
	SizeRatio float64 `json:"size_ratio"`
	// BinaryEquivalent records that FTG and SDG built from the
	// binary-decoded traces are byte-identical (DOT and JSON
	// renderings) to the graphs built from the JSON-decoded traces.
	// CI fails the record when false.
	BinaryEquivalent bool `json:"binary_equivalent"`
}

// StreamBench measures what delta checkpoint framing buys on the wire:
// the synthetic trace set streamed as K mid-task checkpoints plus the
// final record per task, once cumulative (every checkpoint re-sends the
// whole trace-so-far) and once delta-framed (each checkpoint carries
// only the rows changed since the previous acknowledged one, with
// cumulative fallback when no exact delta exists). Both modes push the
// same final records, so the ratio is an honest total-stream-volume
// comparison, not a per-record best case.
type StreamBench struct {
	Name string `json:"name"`
	// Tasks is the synthetic task count; CheckpointsPerTask is K.
	Tasks              int `json:"tasks"`
	CheckpointsPerTask int `json:"checkpoints_per_task"`
	// Total bytes pushed per framing mode (checkpoints + finals).
	CumulativeBytes int64 `json:"cumulative_bytes"`
	DeltaBytes      int64 `json:"delta_bytes"`
	// DeltaExact / DeltaFallbacks count checkpoint pairs that admitted
	// an exact delta vs fell back to cumulative framing.
	DeltaExact     int64 `json:"delta_exact"`
	DeltaFallbacks int64 `json:"delta_fallbacks"`
	// Reduction is CumulativeBytes / DeltaBytes.
	Reduction float64 `json:"reduction"`
	// DeltaGate is "passed" when delta framing at least halves the
	// total pushed volume (Reduction >= 2.0), "failed" otherwise.
	DeltaGate string `json:"delta_gate"`
}

// BenchResult is the root of a BENCH_*.json document.
type BenchResult struct {
	Schema    string          `json:"schema"`
	Quick     bool            `json:"quick"`
	Reps      int             `json:"reps"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Kernels   []KernelBench   `json:"kernels"`
	Workflows []WorkflowBench `json:"workflows"`
	// Analyzer is the parallel-analyzer kernel record (absent in
	// records produced before the kernel existed).
	Analyzer *AnalyzerBench `json:"analyzer,omitempty"`
	// Codec is the trace-codec kernel record (absent in records
	// produced before dtb/v2 existed).
	Codec *CodecBench `json:"codec,omitempty"`
	// Stream is the checkpoint-stream framing record (absent in
	// records produced before delta framing existed).
	Stream *StreamBench `json:"stream,omitempty"`
}

// overheadPct mirrors the experiments package's clamped overhead.
func overheadPct(base, other int64) float64 {
	if base <= 0 || other <= base {
		return 0
	}
	return 100 * float64(other-base) / float64(base)
}

// fastest runs fn reps times and returns the minimum duration.
func fastest(reps int, fn func() (time.Duration, error)) (int64, error) {
	var best time.Duration
	for i := 0; i < reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds(), nil
}

// allocBytesPerOp runs fn once and returns the heap bytes it
// allocated divided by ops, from runtime.MemStats TotalAlloc deltas.
// A GC run beforehand keeps concurrent background sweep noise out of
// the delta; TotalAlloc itself is monotonic, so the measurement is a
// true upper bound on the work fn did.
func allocBytesPerOp(ops int, fn func() error) (int64, error) {
	if ops <= 0 {
		return 0, nil
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc-before.TotalAlloc) / int64(ops), nil
}

// RunBenchSuite executes the full suite.
func RunBenchSuite(cfg BenchSuiteConfig) (*BenchResult, error) {
	cfg = cfg.withDefaults()
	out := &BenchResult{
		Schema: BenchSchema, Quick: cfg.Quick, Reps: cfg.Reps,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
	}

	h5cfg := H5benchConfig{Procs: 4, BytesPerProc: 8 << 20, IOSize: 256 << 10}
	ccfg := CornerCaseConfig{ReadOps: 4000}
	if cfg.Quick {
		h5cfg = H5benchConfig{Procs: 2, BytesPerProc: 1 << 20, IOSize: 128 << 10}
		ccfg = CornerCaseConfig{Datasets: 50, ReadOps: 500}
	}

	// Warm up allocator and code paths once, untimed, so the first timed
	// configuration is not penalized by cold-start effects.
	if _, _, err := RunH5bench(H5benchConfig{Procs: 1, BytesPerProc: 1 << 18}, tracer.New(tracer.Config{})); err != nil {
		return nil, err
	}

	h5, err := benchKernel("h5bench", cfg, func(tr *tracer.Tracer, reg *obs.Registry) (time.Duration, error) {
		c := h5cfg
		c.Metrics = reg
		d, _, err := RunH5bench(c, tr)
		return d, err
	})
	if err != nil {
		return nil, err
	}
	out.Kernels = append(out.Kernels, h5)

	cc, err := benchKernel("corner_case", cfg, func(tr *tracer.Tracer, reg *obs.Registry) (time.Duration, error) {
		c := ccfg
		c.Metrics = reg
		d, _, err := RunCornerCase(c, tr)
		return d, err
	})
	if err != nil {
		return nil, err
	}
	out.Kernels = append(out.Kernels, cc)

	ab, err := benchAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	out.Analyzer = ab

	cb, err := benchCodec(cfg)
	if err != nil {
		return nil, err
	}
	out.Codec = cb

	sb, err := benchStream(cfg)
	if err != nil {
		return nil, err
	}
	out.Stream = sb

	for _, wf := range []struct {
		name string
		mk   func() (workflow.Spec, func(*workflow.Engine) error)
	}{
		{"pyflextrkr", func() (workflow.Spec, func(*workflow.Engine) error) {
			c := PyFlextrkrConfig{}
			if cfg.Quick {
				c = PyFlextrkrConfig{ParallelTasks: 2, InputFiles: 2,
					FeatureBytes: 8 << 10, Stage9Datasets: 20, Stage9Accesses: 4}
			}
			return PyFlextrkr(c)
		}},
		{"ddmd", func() (workflow.Spec, func(*workflow.Engine) error) {
			c := DDMDConfig{}
			if cfg.Quick {
				c = DDMDConfig{SimTasks: 4, ContactMapBytes: 32 << 10,
					SmallBytes: 4 << 10, Epochs: 10}
			}
			return DDMD(c)
		}},
		{"arldm", func() (workflow.Spec, func(*workflow.Engine) error) {
			c := ARLDMConfig{}
			if cfg.Quick {
				c = ARLDMConfig{Stories: 24, ImageBytes: 8 << 10}
			}
			return ARLDM(c)
		}},
	} {
		wb, err := benchWorkflow(wf.name, cfg, wf.mk)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", wf.name, err)
		}
		out.Workflows = append(out.Workflows, wb)
	}
	return out, nil
}

// benchKernel times one kernel in four configurations: plain, with the
// tracer, through the disabled (nil-registry) instrumentation seam, and
// with instrumentation live.
func benchKernel(name string, cfg BenchSuiteConfig, run func(*tracer.Tracer, *obs.Registry) (time.Duration, error)) (KernelBench, error) {
	kb := KernelBench{Name: name}
	var err error
	if kb.UntracedNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		return run(nil, nil)
	}); err != nil {
		return kb, err
	}
	if kb.TracedNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		return run(tracer.New(tracer.Config{}), nil)
	}); err != nil {
		return kb, err
	}
	// The disabled path and the plain path are the same code (Instrument
	// returns inner on a nil registry); timing both keeps the claim
	// honest in the JSON record instead of asserting it.
	if kb.DisabledObsNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		return run(nil, nil)
	}); err != nil {
		return kb, err
	}
	if kb.InstrumentedNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		reg := cfg.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		return run(nil, reg)
	}); err != nil {
		return kb, err
	}
	kb.TracerOverheadPct = overheadPct(kb.UntracedNS, kb.TracedNS)
	kb.DisabledObsOverheadPct = overheadPct(kb.UntracedNS, kb.DisabledObsNS)
	kb.InstrumentationOverheadPct = overheadPct(kb.UntracedNS, kb.InstrumentedNS)
	return kb, nil
}

// benchAnalyzer times the Workflow Analyzer's graph builders over the
// synthetic trace set, serial versus parallel, and byte-compares the
// two builds' DOT and JSON output.
func benchAnalyzer(cfg BenchSuiteConfig) (*AnalyzerBench, error) {
	scfg := SyntheticTraceConfig{}
	if cfg.Quick {
		scfg = SyntheticTraceConfig{Tasks: 400, Stages: 5, FilesPerStage: 8, DatasetsPerTask: 3}
	}
	traces, m := GenerateSyntheticTraces(scfg)
	par := runtime.GOMAXPROCS(0)
	ab := &AnalyzerBench{
		Name: "analyzer", Tasks: len(traces),
		Cores: runtime.NumCPU(), Parallelism: par,
	}
	build := func(p int) (*graph.Graph, *graph.Graph) {
		ftg := analyzer.BuildFTGOpts(traces, m, analyzer.Options{Parallelism: p})
		sdg := analyzer.BuildSDG(traces, m, analyzer.Options{
			Parallelism: p, IncludeRegions: true, IncludeFileMetadata: true,
		})
		return ftg, sdg
	}
	var err error
	if ab.SerialNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		t0 := time.Now()
		build(1)
		return time.Since(t0), nil
	}); err != nil {
		return nil, err
	}
	if ab.ParallelNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		t0 := time.Now()
		build(par)
		return time.Since(t0), nil
	}); err != nil {
		return nil, err
	}
	if ab.ParallelNS > 0 {
		ab.Speedup = float64(ab.SerialNS) / float64(ab.ParallelNS)
	}
	ab.SpeedupGate = speedupGate(ab.Cores, ab.Parallelism, ab.Speedup)
	sftg, ssdg := build(1)
	pftg, psdg := build(par)
	identical, err := graphsRenderIdentically(sftg, pftg)
	if err != nil {
		return nil, err
	}
	if identical {
		if identical, err = graphsRenderIdentically(ssdg, psdg); err != nil {
			return nil, err
		}
	}
	ab.OutputsIdentical = identical
	return ab, nil
}

// benchCodec times JSON-versus-dtb/v2 serialization of the synthetic
// workflow's trace set, records the byte volumes, and proves the
// formats interchangeable: graphs built from binary-round-tripped
// traces must render byte-identically to graphs built from the
// JSON-round-tripped ones.
func benchCodec(cfg BenchSuiteConfig) (*CodecBench, error) {
	scfg := SyntheticTraceConfig{}
	if cfg.Quick {
		scfg = SyntheticTraceConfig{Tasks: 400, Stages: 5, FilesPerStage: 8, DatasetsPerTask: 3}
	}
	traces, m := GenerateSyntheticTraces(scfg)
	cb := &CodecBench{Name: "codec", Tasks: len(traces)}

	encodeAll := func(f trace.Format) ([][]byte, int64, error) {
		blobs := make([][]byte, len(traces))
		var total int64
		for i, tt := range traces {
			var buf bytes.Buffer
			if err := tt.EncodeFormat(&buf, f); err != nil {
				return nil, 0, err
			}
			blobs[i] = buf.Bytes()
			total += int64(buf.Len())
		}
		return blobs, total, nil
	}
	decodeAll := func(blobs [][]byte) ([]*trace.TaskTrace, error) {
		out := make([]*trace.TaskTrace, len(blobs))
		for i, b := range blobs {
			tt, err := trace.DecodeBytes(b)
			if err != nil {
				return nil, err
			}
			out[i] = tt
		}
		return out, nil
	}

	jsonBlobs, jsonBytes, err := encodeAll(trace.FormatJSON)
	if err != nil {
		return nil, err
	}
	binBlobs, binBytes, err := encodeAll(trace.FormatBinary)
	if err != nil {
		return nil, err
	}
	cb.JSONBytes, cb.BinaryBytes = jsonBytes, binBytes

	timeEncode := func(f trace.Format) (int64, error) {
		return fastest(cfg.Reps, func() (time.Duration, error) {
			t0 := time.Now()
			_, _, err := encodeAll(f)
			return time.Since(t0), err
		})
	}
	timeDecode := func(blobs [][]byte) (int64, error) {
		return fastest(cfg.Reps, func() (time.Duration, error) {
			t0 := time.Now()
			_, err := decodeAll(blobs)
			return time.Since(t0), err
		})
	}
	if cb.JSONEncodeNS, err = timeEncode(trace.FormatJSON); err != nil {
		return nil, err
	}
	if cb.BinaryEncodeNS, err = timeEncode(trace.FormatBinary); err != nil {
		return nil, err
	}
	if cb.JSONDecodeNS, err = timeDecode(jsonBlobs); err != nil {
		return nil, err
	}
	if cb.BinaryDecodeNS, err = timeDecode(binBlobs); err != nil {
		return nil, err
	}
	if cb.BinaryEncodeNS > 0 {
		cb.EncodeSpeedup = float64(cb.JSONEncodeNS) / float64(cb.BinaryEncodeNS)
	}
	if cb.BinaryDecodeNS > 0 {
		cb.DecodeSpeedup = float64(cb.JSONDecodeNS) / float64(cb.BinaryDecodeNS)
	}
	if cb.JSONBytes > 0 {
		cb.SizeRatio = float64(cb.BinaryBytes) / float64(cb.JSONBytes)
	}
	if cb.EncodeSpeedup >= 1.0 {
		cb.EncodeSpeedupGate = GatePassed
	} else {
		cb.EncodeSpeedupGate = GateFailed
	}

	// Allocation volume per trace through each pipeline. Wall time can
	// hide an allocation regression behind a fast allocator; TotalAlloc
	// cannot.
	if cb.JSONEncodeAllocBytesPerOp, err = allocBytesPerOp(len(traces), func() error {
		_, _, err := encodeAll(trace.FormatJSON)
		return err
	}); err != nil {
		return nil, err
	}
	if cb.BinaryEncodeAllocBytesPerOp, err = allocBytesPerOp(len(traces), func() error {
		_, _, err := encodeAll(trace.FormatBinary)
		return err
	}); err != nil {
		return nil, err
	}
	if cb.BinaryDecodeAllocBytesPerOp, err = allocBytesPerOp(len(traces), func() error {
		_, err := decodeAll(binBlobs)
		return err
	}); err != nil {
		return nil, err
	}

	// Equivalence gate: the analyses, not just the structs, must be
	// unaffected by the wire format.
	fromJSON, err := decodeAll(jsonBlobs)
	if err != nil {
		return nil, err
	}
	fromBinary, err := decodeAll(binBlobs)
	if err != nil {
		return nil, err
	}
	build := func(ts []*trace.TaskTrace) (*graph.Graph, *graph.Graph) {
		ftg := analyzer.BuildFTG(ts, m)
		sdg := analyzer.BuildSDG(ts, m, analyzer.Options{
			IncludeRegions: true, IncludeFileMetadata: true,
		})
		return ftg, sdg
	}
	jftg, jsdg := build(fromJSON)
	bftg, bsdg := build(fromBinary)
	identical, err := graphsRenderIdentically(jftg, bftg)
	if err != nil {
		return nil, err
	}
	if identical {
		if identical, err = graphsRenderIdentically(jsdg, bsdg); err != nil {
			return nil, err
		}
	}
	cb.BinaryEquivalent = identical
	return cb, nil
}

// graphsRenderIdentically byte-compares the DOT and JSON renderings of
// two graphs.
func graphsRenderIdentically(a, b *graph.Graph) (bool, error) {
	if a.DOT() != b.DOT() {
		return false, nil
	}
	aj, err := json.Marshal(a)
	if err != nil {
		return false, err
	}
	bj, err := json.Marshal(b)
	if err != nil {
		return false, err
	}
	return string(aj) == string(bj), nil
}

// benchWorkflow runs one workflow replica end to end, tracers on and
// off, on the standard CPU cluster.
// canonicalTrace returns a copy of tt with its tables in the tracer's
// canonical sort orders (what ApplyDelta reproduces), so prefix
// checkpoints of it admit exact deltas.
func canonicalTrace(tt *trace.TaskTrace) *trace.TaskTrace {
	cp := *tt
	cp.Files = append([]trace.FileRecord(nil), tt.Files...)
	sort.SliceStable(cp.Files, func(i, j int) bool { return cp.Files[i].File < cp.Files[j].File })
	cp.Objects = append([]trace.ObjectRecord(nil), tt.Objects...)
	sort.SliceStable(cp.Objects, func(i, j int) bool {
		if cp.Objects[i].File != cp.Objects[j].File {
			return cp.Objects[i].File < cp.Objects[j].File
		}
		return cp.Objects[i].Object < cp.Objects[j].Object
	})
	cp.Mapped = append([]trace.MappedStat(nil), tt.Mapped...)
	sort.SliceStable(cp.Mapped, func(i, j int) bool {
		if cp.Mapped[i].File != cp.Mapped[j].File {
			return cp.Mapped[i].File < cp.Mapped[j].File
		}
		return cp.Mapped[i].Object < cp.Mapped[j].Object
	})
	return &cp
}

// streamPrefix synthesizes the trace-so-far a checkpoint at the given
// fraction of the task would carry: the first frac of the file rows,
// the object/mapped rows belonging to those files, and the matching
// I/O-trace prefix. Later fractions strictly grow the tables, which is
// the tracer's monotone-growth invariant.
func streamPrefix(tt *trace.TaskTrace, frac float64) *trace.TaskTrace {
	cp := *tt
	nf := int(math.Ceil(float64(len(tt.Files)) * frac))
	cp.Files = tt.Files[:nf:nf]
	keep := make(map[string]bool, nf)
	for i := range cp.Files {
		keep[cp.Files[i].File] = true
	}
	cp.Objects = make([]trace.ObjectRecord, 0, len(tt.Objects))
	for _, o := range tt.Objects {
		if keep[o.File] {
			cp.Objects = append(cp.Objects, o)
		}
	}
	cp.Mapped = make([]trace.MappedStat, 0, len(tt.Mapped))
	for _, m := range tt.Mapped {
		if keep[m.File] {
			cp.Mapped = append(cp.Mapped, m)
		}
	}
	if tt.IOTrace != nil {
		ni := int(math.Ceil(float64(len(tt.IOTrace)) * frac))
		cp.IOTrace = tt.IOTrace[:ni:ni]
	}
	return &cp
}

// benchStream replays the synthetic trace set through both checkpoint
// framings and totals the pushed bytes. K checkpoints per task at
// even fractions model a long task streaming its trace-so-far every
// -checkpoint-ops operations; the final record ships in both modes.
func benchStream(cfg BenchSuiteConfig) (*StreamBench, error) {
	scfg := SyntheticTraceConfig{}
	if cfg.Quick {
		scfg = SyntheticTraceConfig{Tasks: 400, Stages: 5, FilesPerStage: 8, DatasetsPerTask: 3}
	}
	traces, _ := GenerateSyntheticTraces(scfg)
	const k = 8
	sb := &StreamBench{Name: "stream", Tasks: len(traces), CheckpointsPerTask: k}

	encLen := func(tt *trace.TaskTrace, opts trace.BinaryOptions) (int64, error) {
		var buf bytes.Buffer
		if err := tt.EncodeBinaryOpts(&buf, opts); err != nil {
			return 0, err
		}
		return int64(buf.Len()), nil
	}
	for _, raw := range traces {
		canon := canonicalTrace(raw)
		var prev *trace.TaskTrace
		for i := 1; i <= k; i++ {
			cp := streamPrefix(canon, float64(i)/k)
			seq := uint64(i)
			n, err := encLen(cp, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq})
			if err != nil {
				return nil, err
			}
			sb.CumulativeBytes += n
			if prev == nil {
				sb.DeltaBytes += n
			} else if d, ok := trace.Diff(prev, cp); ok {
				dn, err := encLen(d, trace.BinaryOptions{
					Incremental: true, CheckpointSeq: seq,
					Delta: true, DeltaBaseSeq: seq - 1,
				})
				if err != nil {
					return nil, err
				}
				sb.DeltaBytes += dn
				sb.DeltaExact++
			} else {
				sb.DeltaBytes += n
				sb.DeltaFallbacks++
			}
			prev = cp
		}
		fn, err := encLen(canon, trace.BinaryOptions{})
		if err != nil {
			return nil, err
		}
		sb.CumulativeBytes += fn
		sb.DeltaBytes += fn
	}
	if sb.DeltaBytes > 0 {
		sb.Reduction = float64(sb.CumulativeBytes) / float64(sb.DeltaBytes)
	}
	if sb.Reduction >= 2.0 {
		sb.DeltaGate = GatePassed
	} else {
		sb.DeltaGate = GateFailed
	}
	return sb, nil
}

func benchWorkflow(name string, cfg BenchSuiteConfig, mk func() (workflow.Spec, func(*workflow.Engine) error)) (WorkflowBench, error) {
	wb := WorkflowBench{Name: name}
	run := func(tcfg tracer.Config) (*workflow.Result, int64, error) {
		spec, setup := mk()
		eng, err := workflow.NewEngine(workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}, nil, tcfg)
		if err != nil {
			return nil, 0, err
		}
		if err := setup(eng); err != nil {
			return nil, 0, err
		}
		t0 := time.Now()
		res, err := eng.Run(spec)
		return res, time.Since(t0).Nanoseconds(), err
	}
	var res *workflow.Result
	var err error
	if wb.WallTracedNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		var wall int64
		res, wall, err = run(tracer.Config{})
		return time.Duration(wall), err
	}); err != nil {
		return wb, err
	}
	wb.Stages = len(res.Stages)
	wb.Tasks = len(res.Traces)
	wb.VirtualNS = res.Total().Nanoseconds()
	if wb.WallUntracedNS, err = fastest(cfg.Reps, func() (time.Duration, error) {
		_, wall, err := run(tracer.Config{DisableVOL: true, DisableVFD: true})
		return time.Duration(wall), err
	}); err != nil {
		return wb, err
	}
	wb.TracerOverheadPct = overheadPct(wb.WallUntracedNS, wb.WallTracedNS)
	return wb, nil
}

// Validate checks a BenchResult for structural sanity - the CI
// bench-smoke job runs this against the JSON it just produced.
func (r *BenchResult) Validate() error {
	if r == nil {
		return fmt.Errorf("bench: nil result")
	}
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("bench: missing toolchain identification")
	}
	if len(r.Kernels) < 2 {
		return fmt.Errorf("bench: %d kernels, want >= 2", len(r.Kernels))
	}
	if len(r.Workflows) < 3 {
		return fmt.Errorf("bench: %d workflows, want >= 3", len(r.Workflows))
	}
	for _, k := range r.Kernels {
		if k.Name == "" {
			return fmt.Errorf("bench: kernel with empty name")
		}
		for label, v := range map[string]int64{
			"untraced_ns": k.UntracedNS, "traced_ns": k.TracedNS,
			"disabled_obs_ns": k.DisabledObsNS, "instrumented_ns": k.InstrumentedNS,
		} {
			if v <= 0 {
				return fmt.Errorf("bench: kernel %s: %s = %d, want > 0", k.Name, label, v)
			}
		}
		for label, v := range map[string]float64{
			"tracer_overhead_pct":          k.TracerOverheadPct,
			"disabled_obs_overhead_pct":    k.DisabledObsOverheadPct,
			"instrumentation_overhead_pct": k.InstrumentationOverheadPct,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bench: kernel %s: %s = %v invalid", k.Name, label, v)
			}
		}
	}
	for _, w := range r.Workflows {
		if w.Name == "" {
			return fmt.Errorf("bench: workflow with empty name")
		}
		if w.Stages <= 0 || w.Tasks <= 0 {
			return fmt.Errorf("bench: workflow %s: stages=%d tasks=%d, want > 0", w.Name, w.Stages, w.Tasks)
		}
		if w.VirtualNS <= 0 || w.WallTracedNS <= 0 || w.WallUntracedNS <= 0 {
			return fmt.Errorf("bench: workflow %s has non-positive timings", w.Name)
		}
	}
	// The analyzer record is optional (absent in pre-kernel records), but
	// when present it must be internally sound — in particular the
	// serial/parallel byte-equality gate, which CI's bench-smoke -validate
	// step enforces.
	if a := r.Analyzer; a != nil {
		if a.Name != "analyzer" {
			return fmt.Errorf("bench: analyzer record named %q, want \"analyzer\"", a.Name)
		}
		if a.Tasks <= 0 {
			return fmt.Errorf("bench: analyzer: tasks = %d, want > 0", a.Tasks)
		}
		if a.Cores <= 0 || a.Parallelism <= 0 {
			return fmt.Errorf("bench: analyzer: cores=%d parallelism=%d, want > 0", a.Cores, a.Parallelism)
		}
		if a.SerialNS <= 0 || a.ParallelNS <= 0 {
			return fmt.Errorf("bench: analyzer has non-positive timings")
		}
		if a.Speedup <= 0 || math.IsNaN(a.Speedup) || math.IsInf(a.Speedup, 0) {
			return fmt.Errorf("bench: analyzer: speedup = %v invalid", a.Speedup)
		}
		if !a.OutputsIdentical {
			return fmt.Errorf("bench: analyzer: parallel build output differs from serial build")
		}
		switch a.SpeedupGate {
		case GatePassed, GateFailed:
			if a.Cores < 2 || a.Parallelism < 2 {
				return fmt.Errorf("bench: analyzer: speedup gate %q on cores=%d parallelism=%d, want \"skipped\"",
					a.SpeedupGate, a.Cores, a.Parallelism)
			}
		case GateSkipped:
			if a.Cores >= 2 && a.Parallelism >= 2 {
				return fmt.Errorf("bench: analyzer: speedup gate skipped on cores=%d parallelism=%d, want a verdict",
					a.Cores, a.Parallelism)
			}
		default:
			return fmt.Errorf("bench: analyzer: speedup_gate = %q, want passed/failed/skipped", a.SpeedupGate)
		}
	}
	// The codec record is likewise optional, but a present record must
	// be sound and must prove the binary format interchangeable — the
	// CI bench-smoke grep gate keys on binary_equivalent.
	if c := r.Codec; c != nil {
		if c.Name != "codec" {
			return fmt.Errorf("bench: codec record named %q, want \"codec\"", c.Name)
		}
		if c.Tasks <= 0 {
			return fmt.Errorf("bench: codec: tasks = %d, want > 0", c.Tasks)
		}
		for label, v := range map[string]int64{
			"json_encode_ns": c.JSONEncodeNS, "json_decode_ns": c.JSONDecodeNS,
			"binary_encode_ns": c.BinaryEncodeNS, "binary_decode_ns": c.BinaryDecodeNS,
			"json_bytes": c.JSONBytes, "binary_bytes": c.BinaryBytes,
		} {
			if v <= 0 {
				return fmt.Errorf("bench: codec: %s = %d, want > 0", label, v)
			}
		}
		for label, v := range map[string]float64{
			"encode_speedup": c.EncodeSpeedup, "decode_speedup": c.DecodeSpeedup,
			"size_ratio": c.SizeRatio,
		} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bench: codec: %s = %v invalid", label, v)
			}
		}
		if !c.BinaryEquivalent {
			return fmt.Errorf("bench: codec: graphs from binary traces differ from the JSON build")
		}
		switch c.EncodeSpeedupGate {
		case GatePassed:
			if c.EncodeSpeedup < 1.0 {
				return fmt.Errorf("bench: codec: encode gate passed but encode_speedup = %v < 1.0", c.EncodeSpeedup)
			}
		case GateFailed:
			if c.EncodeSpeedup >= 1.0 {
				return fmt.Errorf("bench: codec: encode gate failed but encode_speedup = %v >= 1.0", c.EncodeSpeedup)
			}
		default:
			return fmt.Errorf("bench: codec: encode_speedup_gate = %q, want passed/failed", c.EncodeSpeedupGate)
		}
		for label, v := range map[string]int64{
			"json_encode_alloc_bytes_per_op":   c.JSONEncodeAllocBytesPerOp,
			"binary_encode_alloc_bytes_per_op": c.BinaryEncodeAllocBytesPerOp,
			"binary_decode_alloc_bytes_per_op": c.BinaryDecodeAllocBytesPerOp,
		} {
			if v <= 0 {
				return fmt.Errorf("bench: codec: %s = %d, want > 0", label, v)
			}
		}
	}
	if s := r.Stream; s != nil {
		if s.Tasks <= 0 || s.CheckpointsPerTask <= 0 {
			return fmt.Errorf("bench: stream: %d tasks x %d checkpoints invalid", s.Tasks, s.CheckpointsPerTask)
		}
		if s.CumulativeBytes <= 0 || s.DeltaBytes <= 0 {
			return fmt.Errorf("bench: stream: byte totals (%d cumulative, %d delta) must be > 0",
				s.CumulativeBytes, s.DeltaBytes)
		}
		if s.Reduction <= 0 || math.IsNaN(s.Reduction) || math.IsInf(s.Reduction, 0) {
			return fmt.Errorf("bench: stream: reduction = %v invalid", s.Reduction)
		}
		// The gate verdict must be honest about the measured ratio.
		switch s.DeltaGate {
		case GatePassed:
			if s.Reduction < 2.0 {
				return fmt.Errorf("bench: stream: delta gate passed but reduction = %.2fx < 2.0x", s.Reduction)
			}
		case GateFailed:
			if s.Reduction >= 2.0 {
				return fmt.Errorf("bench: stream: delta gate failed but reduction = %.2fx >= 2.0x", s.Reduction)
			}
		default:
			return fmt.Errorf("bench: stream: delta_gate = %q, want passed/failed", s.DeltaGate)
		}
	}
	return nil
}

// WriteJSON writes the result to path as indented JSON.
func (r *BenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchJSON reads and validates a BENCH_*.json file.
func LoadBenchJSON(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}
