package workloads

import (
	"fmt"

	"dayu/internal/hdf5"
	"dayu/internal/workflow"
)

// PyFlextrkrConfig scales the storm-tracking replica. Zero values take
// defaults matching the paper's observations: 9 sequential stages,
// parallel feature tasks, heavy reuse of stage-1 outputs, inputs first
// needed at stage 6, and a stage-9 statistics file holding many small
// (<500 B) datasets.
type PyFlextrkrConfig struct {
	// InputFiles is the number of preloaded sensor input files.
	InputFiles int
	// ParallelTasks is the task count of the parallel stages (1, 2, 3, 8).
	ParallelTasks int
	// FeatureBytes is the per-file feature data volume.
	FeatureBytes int64
	// LateInputFiles are inputs first required by stage 6.
	LateInputFiles int
	// Stage9Datasets is the number of small datasets in the stage-9
	// statistics file (paper: 32).
	Stage9Datasets int
	// Stage9DatasetBytes is each small dataset's size (paper: <500 B).
	Stage9DatasetBytes int64
	// Stage9Accesses is how many times each stage-9 dataset is accessed
	// (paper: 23).
	Stage9Accesses int
	// ComputeNsPerByte is the feature-analysis compute cost per byte of
	// raw data moved (default 40 ns/B ~= 25 MB/s of Python analytics);
	// it bounds the achievable I/O speedup as in the real application.
	ComputeNsPerByte float64
	// Seed makes synthetic data deterministic.
	Seed uint64
}

func (c PyFlextrkrConfig) withDefaults() PyFlextrkrConfig {
	if c.InputFiles == 0 {
		c.InputFiles = 4
	}
	if c.ParallelTasks == 0 {
		c.ParallelTasks = 4
	}
	if c.FeatureBytes == 0 {
		c.FeatureBytes = 64 << 10
	}
	if c.LateInputFiles == 0 {
		c.LateInputFiles = 2
	}
	if c.Stage9Datasets == 0 {
		c.Stage9Datasets = 32
	}
	if c.Stage9DatasetBytes == 0 {
		c.Stage9DatasetBytes = 400
	}
	if c.Stage9Accesses == 0 {
		c.Stage9Accesses = 23
	}
	if c.ComputeNsPerByte == 0 {
		c.ComputeNsPerByte = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// PyFlextrkr file names.
func pftInput(i int) string     { return fmt.Sprintf("input_%02d.h5", i) }
func pftLateInput(i int) string { return fmt.Sprintf("late_input_%02d.h5", i) }
func pftCloudid(i int) string   { return fmt.Sprintf("cloudid_%02d.h5", i) }
func pftTrack(i int) string     { return fmt.Sprintf("track_%02d.h5", i) }
func pftMap(i int) string       { return fmt.Sprintf("map_%02d.h5", i) }

// Fixed PyFLEXTRKR file names.
const (
	PftTrackNumbers = "tracknumbers.h5"
	PftTrackStats   = "trackstats.h5"
	PftMCS          = "mcs.h5"
	PftPFStats      = "pfstats.h5"
	PftRobust       = "robust.h5"
	PftSpeedStats   = "speed_stats.h5"
)

// PyFlextrkrStage9Dataset names the i-th small statistics dataset.
func PyFlextrkrStage9Dataset(i int) string { return fmt.Sprintf("stat_%03d", i) }

// writeFeatureFile creates a file with a single float32 feature dataset.
func writeFeatureFile(f *hdf5.File, dataset string, bytes int64, rng *prng) error {
	elems := bytes / 4
	if elems < 1 {
		elems = 1
	}
	ds, err := f.Root().CreateDataset(dataset, hdf5.Float32, []int64{elems}, nil)
	if err != nil {
		return err
	}
	return ds.WriteAll(rng.bytes(elems * 4))
}

// readWholeFile reads every dataset of the file's root group.
func readWholeFile(f *hdf5.File) error {
	kids, err := f.Root().Children()
	if err != nil {
		return err
	}
	for _, k := range kids {
		ds, err := f.Root().OpenDataset(k)
		if err != nil {
			return err
		}
		if ds.Datatype().IsVLen() {
			if _, err := ds.ReadVL(0, ds.Dims()[0]); err != nil {
				return err
			}
		} else if _, err := ds.ReadAll(); err != nil {
			return err
		}
		if err := ds.Close(); err != nil {
			return err
		}
	}
	return nil
}

// PyFlextrkr builds the nine-stage storm-tracking workflow replica.
func PyFlextrkr(cfg PyFlextrkrConfig) (workflow.Spec, func(*workflow.Engine) error) {
	cfg = cfg.withDefaults()

	setup := func(eng *workflow.Engine) error {
		rng := newPRNG(cfg.Seed)
		for i := 0; i < cfg.InputFiles; i++ {
			if err := eng.Preload(pftInput(i), hdf5.Config{}, func(f *hdf5.File) error {
				return writeFeatureFile(f, "cloud", cfg.FeatureBytes, rng)
			}); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.LateInputFiles; i++ {
			if err := eng.Preload(pftLateInput(i), hdf5.Config{}, func(f *hdf5.File) error {
				return writeFeatureFile(f, "pf_data", cfg.FeatureBytes/2, rng)
			}); err != nil {
				return err
			}
		}
		return nil
	}

	var stages []workflow.Stage

	// Stage 1: run_idfeature - parallel feature identification; each task
	// reads an input file and writes a cloudid file.
	var s1 []workflow.Task
	for i := 0; i < cfg.ParallelTasks; i++ {
		i := i
		s1 = append(s1, workflow.Task{
			Name: fmt.Sprintf("run_idfeature_%02d", i),
			Fn: func(tc *workflow.TaskContext) error {
				in, err := tc.Open(pftInput(i % cfg.InputFiles))
				if err != nil {
					return err
				}
				if err := readWholeFile(in); err != nil {
					return err
				}
				out, err := tc.Create(pftCloudid(i))
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + uint64(i) + 100)
				return writeFeatureFile(out, "features", cfg.FeatureBytes, rng)
			},
		})
	}
	stages = append(stages, workflow.Stage{Name: "stage1_idfeature", Tasks: s1})

	// Stage 2: run_tracksingle - per-file tracking.
	var s2 []workflow.Task
	for i := 0; i < cfg.ParallelTasks; i++ {
		i := i
		s2 = append(s2, workflow.Task{
			Name: fmt.Sprintf("run_tracksingle_%02d", i),
			Fn: func(tc *workflow.TaskContext) error {
				in, err := tc.Open(pftCloudid(i))
				if err != nil {
					return err
				}
				if err := readWholeFile(in); err != nil {
					return err
				}
				out, err := tc.Create(pftTrack(i))
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + uint64(i) + 200)
				return writeFeatureFile(out, "track", cfg.FeatureBytes/2, rng)
			},
		})
	}
	stages = append(stages, workflow.Stage{Name: "stage2_tracksingle", Tasks: s2})

	// Stage 3: run_gettracks - all-to-all: every task reads every track
	// and cloudid file; task 0 writes the track-numbers file and updates
	// cloudid_00 (the write-after-read of Figure 4 circle 1).
	var s3 []workflow.Task
	for i := 0; i < cfg.ParallelTasks; i++ {
		i := i
		s3 = append(s3, workflow.Task{
			Name: fmt.Sprintf("run_gettracks_%02d", i),
			Fn: func(tc *workflow.TaskContext) error {
				for j := 0; j < cfg.ParallelTasks; j++ {
					for _, name := range []string{pftTrack(j), pftCloudid(j)} {
						in, err := tc.Open(name)
						if err != nil {
							return err
						}
						if err := readWholeFile(in); err != nil {
							return err
						}
						if err := in.Close(); err != nil {
							return err
						}
					}
				}
				if i != 0 {
					return nil
				}
				// Write-after-read: renumber the features of the cloudid
				// file just read and write them back (Figure 4 circle 1).
				cid, err := tc.Open(pftCloudid(0))
				if err != nil {
					return err
				}
				ds, err := cid.Root().OpenDataset("features")
				if err != nil {
					return err
				}
				feat, err := ds.ReadAll()
				if err != nil {
					return err
				}
				for b := range feat {
					feat[b] ^= 0x5a
				}
				if err := ds.WriteAll(feat); err != nil {
					return err
				}
				if err := ds.SetAttrString("tracknumbers", "assigned"); err != nil {
					return err
				}
				if err := cid.Close(); err != nil {
					return err
				}
				out, err := tc.Create(PftTrackNumbers)
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + 300)
				return writeFeatureFile(out, "tracknumbers", cfg.FeatureBytes/4, rng)
			},
		})
	}
	stages = append(stages, workflow.Stage{Name: "stage3_gettracks", Tasks: s3})

	// Stage 4: run_trackstats - fan-in: one task reads all track files
	// plus the stage-3 output.
	stages = append(stages, workflow.Stage{Name: "stage4_trackstats", Tasks: []workflow.Task{{
		Name: "run_trackstats",
		Fn: func(tc *workflow.TaskContext) error {
			for j := 0; j < cfg.ParallelTasks; j++ {
				in, err := tc.Open(pftTrack(j))
				if err != nil {
					return err
				}
				if err := readWholeFile(in); err != nil {
					return err
				}
				if err := in.Close(); err != nil {
					return err
				}
			}
			tn, err := tc.Open(PftTrackNumbers)
			if err != nil {
				return err
			}
			if err := readWholeFile(tn); err != nil {
				return err
			}
			out, err := tc.Create(PftTrackStats)
			if err != nil {
				return err
			}
			rng := newPRNG(cfg.Seed + 400)
			return writeFeatureFile(out, "trackstats", cfg.FeatureBytes/2, rng)
		},
	}}})

	// Stage 5: run_identifymcs - one-to-one on the stage-4 output.
	stages = append(stages, workflow.Stage{Name: "stage5_identifymcs", Tasks: []workflow.Task{{
		Name: "run_identifymcs",
		Fn: func(tc *workflow.TaskContext) error {
			in, err := tc.Open(PftTrackStats)
			if err != nil {
				return err
			}
			if err := readWholeFile(in); err != nil {
				return err
			}
			out, err := tc.Create(PftMCS)
			if err != nil {
				return err
			}
			rng := newPRNG(cfg.Seed + 500)
			return writeFeatureFile(out, "mcs", cfg.FeatureBytes/4, rng)
		},
	}}})

	// Stage 6: run_matchpf - consumes the time-dependent late inputs
	// (Figure 4 circle 2) plus stage-5 output and a stage-1 output.
	stages = append(stages, workflow.Stage{Name: "stage6_matchpf", Tasks: []workflow.Task{{
		Name: "run_matchpf",
		Fn: func(tc *workflow.TaskContext) error {
			for _, name := range append([]string{PftMCS, pftCloudid(0)}, lateInputs(cfg)...) {
				in, err := tc.Open(name)
				if err != nil {
					return err
				}
				if err := readWholeFile(in); err != nil {
					return err
				}
				if err := in.Close(); err != nil {
					return err
				}
			}
			out, err := tc.Create(PftPFStats)
			if err != nil {
				return err
			}
			rng := newPRNG(cfg.Seed + 600)
			return writeFeatureFile(out, "pfstats", cfg.FeatureBytes/4, rng)
		},
	}}})

	// Stage 7: run_robustmcs.
	stages = append(stages, workflow.Stage{Name: "stage7_robustmcs", Tasks: []workflow.Task{{
		Name: "run_robustmcs",
		Fn: func(tc *workflow.TaskContext) error {
			in, err := tc.Open(PftPFStats)
			if err != nil {
				return err
			}
			if err := readWholeFile(in); err != nil {
				return err
			}
			out, err := tc.Create(PftRobust)
			if err != nil {
				return err
			}
			rng := newPRNG(cfg.Seed + 700)
			return writeFeatureFile(out, "robust", cfg.FeatureBytes/4, rng)
		},
	}}})

	// Stage 8: run_mapfeature - parallel, re-reading stage-1 outputs.
	var s8 []workflow.Task
	for i := 0; i < cfg.ParallelTasks; i++ {
		i := i
		s8 = append(s8, workflow.Task{
			Name: fmt.Sprintf("run_mapfeature_%02d", i),
			Fn: func(tc *workflow.TaskContext) error {
				for _, name := range []string{pftCloudid(i), PftRobust} {
					in, err := tc.Open(name)
					if err != nil {
						return err
					}
					if err := readWholeFile(in); err != nil {
						return err
					}
					if err := in.Close(); err != nil {
						return err
					}
				}
				out, err := tc.Create(pftMap(i))
				if err != nil {
					return err
				}
				rng := newPRNG(cfg.Seed + 800 + uint64(i))
				return writeFeatureFile(out, "map", cfg.FeatureBytes/2, rng)
			},
		})
	}
	stages = append(stages, workflow.Stage{Name: "stage8_mapfeature", Tasks: s8})

	// Stage 9: run_speed - writes the statistics file with many small
	// datasets and accesses each repeatedly (Figure 5's scattering).
	stages = append(stages, workflow.Stage{Name: "stage9_speed", Tasks: []workflow.Task{{
		Name: "run_speed",
		Fn: func(tc *workflow.TaskContext) error {
			for j := 0; j < cfg.ParallelTasks; j++ {
				in, err := tc.Open(pftMap(j))
				if err != nil {
					return err
				}
				if err := readWholeFile(in); err != nil {
					return err
				}
				if err := in.Close(); err != nil {
					return err
				}
			}
			out, err := tc.Create(PftSpeedStats)
			if err != nil {
				return err
			}
			rng := newPRNG(cfg.Seed + 900)
			elems := cfg.Stage9DatasetBytes / 4
			if elems < 1 {
				elems = 1
			}
			for d := 0; d < cfg.Stage9Datasets; d++ {
				ds, err := out.Root().CreateDataset(PyFlextrkrStage9Dataset(d), hdf5.Float32, []int64{elems}, nil)
				if err != nil {
					return err
				}
				if err := ds.WriteAll(rng.bytes(elems * 4)); err != nil {
					return err
				}
				if err := ds.Close(); err != nil {
					return err
				}
			}
			// Repeated accesses: each dataset re-opened and re-read so it
			// reaches Stage9Accesses total accesses (1 write + N-1 reads).
			for a := 1; a < cfg.Stage9Accesses; a++ {
				for k := 0; k < cfg.Stage9Datasets; k++ {
					ds, err := out.Root().OpenDataset(PyFlextrkrStage9Dataset(k))
					if err != nil {
						return err
					}
					if _, err := ds.ReadAll(); err != nil {
						return err
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}}})

	// Every task pays data-proportional analysis compute.
	for si := range stages {
		for ti := range stages[si].Tasks {
			stages[si].Tasks[ti].ComputePerByte = cfg.ComputeNsPerByte
		}
	}
	return workflow.Spec{Name: "pyflextrkr", Stages: stages}, setup
}

// PyFlextrkrStages3to5 builds the stage 3-5 sub-workflow evaluated in
// the paper's Figure 11 (gettracks -> trackstats -> identifymcs), with
// the outputs of stages 1-2 preloaded as inputs on shared storage.
func PyFlextrkrStages3to5(cfg PyFlextrkrConfig) (workflow.Spec, func(*workflow.Engine) error) {
	cfg = cfg.withDefaults()
	full, _ := PyFlextrkr(cfg)
	spec := workflow.Spec{Name: "pyflextrkr-s3to5", Stages: full.Stages[2:5]}
	setup := func(eng *workflow.Engine) error {
		rng := newPRNG(cfg.Seed + 42)
		for i := 0; i < cfg.ParallelTasks; i++ {
			if err := eng.Preload(pftCloudid(i), hdf5.Config{}, func(f *hdf5.File) error {
				return writeFeatureFile(f, "features", cfg.FeatureBytes, rng)
			}); err != nil {
				return err
			}
			if err := eng.Preload(pftTrack(i), hdf5.Config{}, func(f *hdf5.File) error {
				return writeFeatureFile(f, "track", cfg.FeatureBytes/2, rng)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	return spec, setup
}

func lateInputs(cfg PyFlextrkrConfig) []string {
	var names []string
	for i := 0; i < cfg.LateInputFiles; i++ {
		names = append(names, pftLateInput(i))
	}
	return names
}
