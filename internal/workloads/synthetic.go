package workloads

import (
	"fmt"

	"dayu/internal/trace"
)

// SyntheticTraceConfig sizes the synthetic trace set the analyzer bench
// kernel runs over: a deterministic workflow with thousands of tasks,
// stage-shared input files (data reuse), per-task outputs with multiple
// datasets and address regions, and unattributed metadata traffic — the
// shape that makes the Workflow Analyzer's graph builders sweat.
type SyntheticTraceConfig struct {
	// Tasks is the total task count (default 3000).
	Tasks int
	// Stages divides the tasks into pipeline stages; tasks of stage s
	// read the shared files stage s-1 wrote (default 10).
	Stages int
	// FilesPerStage is the shared file count per stage (default 16).
	FilesPerStage int
	// DatasetsPerTask is how many datasets each task writes to its own
	// output file (default 4).
	DatasetsPerTask int
}

func (c SyntheticTraceConfig) withDefaults() SyntheticTraceConfig {
	if c.Tasks == 0 {
		c.Tasks = 3000
	}
	if c.Stages == 0 {
		c.Stages = 10
	}
	if c.FilesPerStage == 0 {
		c.FilesPerStage = 16
	}
	if c.DatasetsPerTask == 0 {
		c.DatasetsPerTask = 4
	}
	return c
}

// GenerateSyntheticTraces builds the deterministic trace set and its
// manifest. The same config always produces byte-identical traces, so
// serial and parallel analyzer runs over it are directly comparable.
func GenerateSyntheticTraces(cfg SyntheticTraceConfig) ([]*trace.TaskTrace, *trace.Manifest) {
	cfg = cfg.withDefaults()
	m := &trace.Manifest{Workflow: "synthetic-analyzer", Stages: map[string][]string{}}
	traces := make([]*trace.TaskTrace, 0, cfg.Tasks)
	perStage := (cfg.Tasks + cfg.Stages - 1) / cfg.Stages
	for i := 0; i < cfg.Tasks; i++ {
		stage := i / perStage
		name := fmt.Sprintf("s%02d/task_%05d", stage, i)
		stageName := fmt.Sprintf("stage_%02d", stage)
		m.TaskOrder = append(m.TaskOrder, name)
		if len(m.Stages[stageName]) == 0 {
			m.StageOrder = append(m.StageOrder, stageName)
		}
		m.Stages[stageName] = append(m.Stages[stageName], name)

		base := int64(i) * 10_000
		in := fmt.Sprintf("stage_%02d/shared_%03d.h5", maxInt(stage-1, 0), i%cfg.FilesPerStage)
		out := fmt.Sprintf("stage_%02d/out_%05d.h5", stage, i)
		tt := &trace.TaskTrace{
			Task: name, StartNS: base, EndNS: base + 9000,
			Files: []trace.FileRecord{
				{Task: name, File: in, OpenNS: base + 100, CloseNS: base + 4000,
					Ops: 40, Reads: 40, BytesRead: 4 << 20,
					MetaOps: 8, DataOps: 32, MetaBytes: 2048, DataBytes: 4<<20 - 2048,
					Regions: []trace.Extent{{Start: 0, End: 4 << 20}}},
				{Task: name, File: out, OpenNS: base + 4000, CloseNS: base + 8800,
					Ops: 24, Writes: 24, BytesWritten: 2 << 20,
					MetaOps: 4, DataOps: 20, MetaBytes: 1024, DataBytes: 2<<20 - 1024,
					Regions: []trace.Extent{{Start: 0, End: 2 << 20}}},
			},
		}
		tt.Objects = append(tt.Objects, trace.ObjectRecord{
			Task: name, File: in, Object: "/input", Type: "dataset",
			Datatype: "float64", Layout: "contiguous", Shape: []int64{512, 1024},
			ElemSize: 8, AcquiredNS: base + 110, ReleasedNS: base + 3900,
			Reads: 40, BytesRead: 4 << 20,
		})
		tt.Mapped = append(tt.Mapped, trace.MappedStat{
			Task: name, File: in, Object: "/input",
			MetaOps: 8, DataOps: 32, MetaBytes: 2048, DataBytes: 4<<20 - 2048,
			Reads: 40, Regions: []trace.Extent{{Start: 4096, End: 4096 + 4<<20}},
			FirstNS: base + 120, LastNS: base + 3800,
		})
		for d := 0; d < cfg.DatasetsPerTask; d++ {
			obj := fmt.Sprintf("/out/var_%02d", d)
			off := int64(d) * (1 << 19)
			tt.Objects = append(tt.Objects, trace.ObjectRecord{
				Task: name, File: out, Object: obj, Type: "dataset",
				Datatype: "float32", Layout: "chunked", Shape: []int64{256, 512},
				ElemSize: 4, ChunkDims: []int64{64, 64},
				AcquiredNS: base + 4100 + int64(d), ReleasedNS: base + 8700,
				Writes: 5, BytesWritten: 1 << 19,
			})
			tt.Mapped = append(tt.Mapped, trace.MappedStat{
				Task: name, File: out, Object: obj,
				MetaOps: 1, DataOps: 5, MetaBytes: 256, DataBytes: 1<<19 - 256,
				Writes: 6, Regions: []trace.Extent{
					{Start: off, End: off + 1<<18},
					{Start: off + 1<<18, End: off + 1<<19},
				},
				FirstNS: base + 4200 + int64(d)*100, LastNS: base + 8600,
			})
		}
		// Unattributed superblock traffic (File-Metadata pseudo-dataset).
		tt.Mapped = append(tt.Mapped, trace.MappedStat{
			Task: name, File: out, Object: "",
			MetaOps: 4, MetaBytes: 1024, Writes: 4,
			Regions: []trace.Extent{{Start: 0, End: 2048}},
			FirstNS: base + 4010, LastNS: base + 8790,
		})
		traces = append(traces, tt)
	}
	return traces, m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
