package workloads

import (
	"testing"

	"dayu/internal/diagnose"
	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/workflow"
)

func runWorkload(t *testing.T, spec workflow.Spec, setup func(*workflow.Engine) error) *workflow.Result {
	t.Helper()
	eng, err := workflow.NewEngine(workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup(eng); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(42), newPRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("prng not deterministic")
		}
	}
	if newPRNG(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
	p := newPRNG(7)
	if got := p.bytes(13); len(got) != 13 {
		t.Errorf("bytes(13) = %d bytes", len(got))
	}
	for i := 0; i < 100; i++ {
		v := p.varLen(1000)
		if v < 16 || v > 1500 {
			t.Fatalf("varLen out of range: %d", v)
		}
		if p.intn(0) != 0 || p.intn(-3) != 0 {
			t.Fatal("intn on non-positive bound")
		}
	}
}

func TestPyFlextrkrRunsAndMatchesPaperObservations(t *testing.T) {
	cfg := PyFlextrkrConfig{ParallelTasks: 3, InputFiles: 3, FeatureBytes: 8 << 10,
		Stage9Datasets: 20, Stage9Accesses: 5}
	spec, setup := PyFlextrkr(cfg)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Stages) != 9 {
		t.Fatalf("stages = %d, want 9", len(spec.Stages))
	}
	res := runWorkload(t, spec, setup)
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{
		ScatterMinDatasets: 10,
	})

	// Observation 1 (Figure 4): data reuse - cloudid files read by
	// multiple downstream tasks.
	var reuseCloudid bool
	for _, f := range diagnose.ByKind(findings, diagnose.DataReuse) {
		if f.File == "cloudid_00.h5" {
			reuseCloudid = true
		}
	}
	if !reuseCloudid {
		t.Error("cloudid reuse not detected")
	}
	// Circle 1: write-after-read by the stage-3 task.
	war := diagnose.ByKind(findings, diagnose.WriteAfterRead)
	var gettracksWAR bool
	for _, f := range war {
		if f.Task == "run_gettracks_00" && f.File == "cloudid_00.h5" {
			gettracksWAR = true
		}
	}
	if !gettracksWAR {
		t.Errorf("stage-3 write-after-read not detected: %+v", war)
	}
	// Observation 2: time-dependent inputs (late_input files).
	tdi := diagnose.ByKind(findings, diagnose.TimeDependentInput)
	var late bool
	for _, f := range tdi {
		if f.File == "late_input_00.h5" && f.Task == "run_matchpf" {
			late = true
		}
	}
	if !late {
		t.Errorf("time-dependent input not detected: %+v", tdi)
	}
	// Observation 3: disposable data - initial inputs.
	disp := diagnose.ByKind(findings, diagnose.DisposableData)
	if len(disp) == 0 {
		t.Error("no disposable data found")
	}
	// Observation 4 (Figure 5): data scattering in the stage-9 file.
	sc := diagnose.ByKind(findings, diagnose.DataScattering)
	var stage9 bool
	for _, f := range sc {
		if f.File == PftSpeedStats {
			stage9 = true
		}
	}
	if !stage9 {
		t.Errorf("stage-9 scattering not detected: %+v", sc)
	}
	// Stage-3 all-to-all and stage-4 fan-in patterns.
	if len(diagnose.ByKind(findings, diagnose.AllToAllPattern)) == 0 {
		t.Error("all-to-all pattern not detected")
	}
	var fanIn bool
	for _, f := range diagnose.ByKind(findings, diagnose.FanInPattern) {
		if f.Task == "run_trackstats" {
			fanIn = true
		}
	}
	if !fanIn {
		t.Error("stage-4 fan-in not detected")
	}
}

func TestDDMDRunsAndMatchesPaperObservations(t *testing.T) {
	cfg := DDMDConfig{SimTasks: 4, ContactMapBytes: 64 << 10, SmallBytes: 4 << 10, Epochs: 10}
	spec, setup := DDMD(cfg)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Stages) != 4 {
		t.Fatalf("stages = %d, want 4 per iteration", len(spec.Stages))
	}
	res := runWorkload(t, spec, setup)
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{})

	// Figure 7: training touches only contact_map's metadata in the
	// aggregated file.
	var cmMetaOnly bool
	for _, f := range diagnose.ByKind(findings, diagnose.MetadataOnlyAccess) {
		if f.Task == "training_0000" && f.Object == "/contact_map" && f.File == DDMDAggFile(0) {
			cmMetaOnly = true
		}
	}
	if !cmMetaOnly {
		t.Error("contact_map metadata-only access not detected")
	}
	// Observation: read-after-write on embedding files 5 and 10.
	raw := diagnose.ByKind(findings, diagnose.ReadAfterWrite)
	found := map[string]bool{}
	for _, f := range raw {
		found[f.File] = true
	}
	if !found[DDMDEmbeddingFile(0, 5)] || !found[DDMDEmbeddingFile(0, 10)] {
		t.Errorf("embedding read-after-write not detected: %+v", raw)
	}
	// Observation: training and inference have no data dependency.
	var indep bool
	for _, f := range diagnose.ByKind(findings, diagnose.NoDataDependency) {
		if f.Task == "inference_0000" {
			indep = true
		}
	}
	if !indep {
		t.Error("training/inference independence not detected")
	}
	// Observation: aggregate streams the simulated files sequentially.
	var aggSeq bool
	for _, f := range diagnose.ByKind(findings, diagnose.ReadOnlySequential) {
		if f.Task == "aggregate_0000" {
			aggSeq = true
		}
	}
	if !aggSeq {
		t.Error("aggregate sequential read not detected")
	}
	// Observation: chunked layout on small datasets flagged.
	if len(diagnose.ByKind(findings, diagnose.ChunkedSmallData)) == 0 {
		t.Error("chunked-small-data not detected for DDMD datasets")
	}
	// The simulated files hold the four canonical datasets.
	for _, tr := range res.Traces {
		if tr.Task != "openmm_0000_0000" {
			continue
		}
		names := map[string]bool{}
		for _, o := range tr.Objects {
			names[o.Object] = true
		}
		for _, want := range DDMDDatasets {
			if !names["/"+want] {
				t.Errorf("dataset %s missing from openmm trace", want)
			}
		}
	}
}

func TestDDMDIterations(t *testing.T) {
	spec, setup := DDMD(DDMDConfig{SimTasks: 2, Iterations: 2,
		ContactMapBytes: 8 << 10, SmallBytes: 2 << 10, Epochs: 2})
	if len(spec.Stages) != 8 {
		t.Fatalf("stages = %d, want 8 for two iterations", len(spec.Stages))
	}
	res := runWorkload(t, spec, setup)
	if res.Total() <= 0 {
		t.Error("no simulated time")
	}
}

func TestARLDMRunsContiguousVsChunked(t *testing.T) {
	run := func(layout hdf5.Layout) *workflow.Result {
		spec, setup := ARLDM(ARLDMConfig{Stories: 20, ImageBytes: 8 << 10, Layout: layout})
		return runWorkload(t, spec, setup)
	}
	contig := run(hdf5.Contiguous)
	chunked := run(hdf5.Chunked)

	writesOf := func(res *workflow.Result) int64 {
		var writes int64
		for _, tr := range res.Traces {
			if tr.Task != "arldm_saveh5" {
				continue
			}
			for _, fr := range tr.Files {
				writes += fr.Writes
			}
		}
		return writes
	}
	cw, kw := writesOf(contig), writesOf(chunked)
	if kw >= cw {
		t.Errorf("chunked VL writes (%d) not fewer than contiguous (%d)", kw, cw)
	}
	// Paper §VI-C: roughly half the write operations with chunking.
	ratio := float64(cw) / float64(kw)
	if ratio < 1.3 || ratio > 4 {
		t.Errorf("contiguous/chunked write ratio = %.2f, want roughly 2x", ratio)
	}
	// VL-contiguous layout mismatch finding fires on the baseline.
	findings := diagnose.Analyze(contig.Traces, contig.Manifest,
		diagnose.Thresholds{VLenLargeBytes: 64 << 10})
	var vlen bool
	for _, f := range diagnose.ByKind(findings, diagnose.VLenContiguous) {
		if f.File == ARLDMOutFile {
			vlen = true
		}
	}
	if !vlen {
		t.Error("vlen-contiguous mismatch not detected")
	}
}

func TestH5bench(t *testing.T) {
	cfg := H5benchConfig{Procs: 2, BytesPerProc: 256 << 10, IOSize: 64 << 10}
	// Untraced run.
	d0, traces, err := RunH5bench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d0 <= 0 || traces != nil {
		t.Errorf("untraced run: %v, %d traces", d0, len(traces))
	}
	// Traced run produces one trace per process.
	tr := tracer.New(tracer.Config{})
	d1, traces, err := RunH5bench(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 || len(traces) != 2 {
		t.Fatalf("traced run: %v, %d traces", d1, len(traces))
	}
	for _, tt := range traces {
		if err := tt.Validate(); err != nil {
			t.Error(err)
		}
		if len(tt.Files) != 1 {
			t.Errorf("trace files = %d", len(tt.Files))
		}
		if tt.Files[0].DataBytes < 2*cfg.BytesPerProc {
			t.Errorf("traced volume = %d", tt.Files[0].DataBytes)
		}
	}
}

func TestCornerCase(t *testing.T) {
	cfg := CornerCaseConfig{Datasets: 50, DatasetBytes: 1 << 10, ReadOps: 200}
	d0, tt, err := RunCornerCase(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d0 <= 0 || tt != nil {
		t.Error("untraced corner case wrong")
	}
	tr := tracer.New(tracer.Config{IOTrace: true})
	d1, tt, err := RunCornerCase(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 || tt == nil {
		t.Fatal("traced corner case wrong")
	}
	// All datasets appear as objects; read counts match.
	if len(tt.Objects) < cfg.Datasets {
		t.Errorf("objects = %d", len(tt.Objects))
	}
	var reads int64
	for _, o := range tt.Objects {
		reads += o.Reads
	}
	if reads != int64(cfg.ReadOps) {
		t.Errorf("object reads = %d, want %d", reads, cfg.ReadOps)
	}
	// I/O trace was recorded and dominates storage (Figure 9d).
	if len(tt.IOTrace) == 0 {
		t.Error("I/O trace empty")
	}
	sz, err := tt.EncodedSize()
	if err != nil || sz <= 0 {
		t.Errorf("encoded size = %d, %v", sz, err)
	}
}

func TestWorkloadTracesSaveLoad(t *testing.T) {
	spec, setup := ARLDM(ARLDMConfig{Stories: 10, ImageBytes: 4 << 10})
	res := runWorkload(t, spec, setup)
	dir := t.TempDir()
	for _, tt := range res.Traces {
		if _, err := tt.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := trace.SaveManifest(dir, res.Manifest); err != nil {
		t.Fatal(err)
	}
	back, err := trace.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Traces) {
		t.Errorf("loaded %d traces, want %d", len(back), len(res.Traces))
	}
	m, err := trace.LoadManifest(dir)
	if err != nil || m == nil || m.Workflow != "arldm" {
		t.Errorf("manifest round trip failed: %+v, %v", m, err)
	}
}
