package workloads

import (
	"path/filepath"
	"strings"
	"testing"

	"dayu/internal/obs"
)

func TestRunBenchSuiteQuick(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunBenchSuite(BenchSuiteConfig{Quick: true, Reps: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 2 || res.Kernels[0].Name != "h5bench" || res.Kernels[1].Name != "corner_case" {
		t.Errorf("kernels = %+v", res.Kernels)
	}
	if res.Analyzer == nil {
		t.Fatal("quick suite missing analyzer record")
	}
	if !res.Analyzer.OutputsIdentical {
		t.Error("analyzer kernel: parallel output differs from serial")
	}
	if res.Analyzer.Tasks != 400 {
		t.Errorf("analyzer quick tasks = %d, want 400", res.Analyzer.Tasks)
	}
	if c := res.Codec; c == nil {
		t.Fatal("quick suite missing codec record")
	} else {
		if !c.BinaryEquivalent {
			t.Error("codec kernel: graphs from binary traces differ from JSON build")
		}
		if c.Tasks != 400 {
			t.Errorf("codec quick tasks = %d, want 400", c.Tasks)
		}
		if c.BinaryBytes >= c.JSONBytes {
			t.Errorf("codec: binary %d bytes not smaller than JSON %d", c.BinaryBytes, c.JSONBytes)
		}
	}
	if s := res.Stream; s == nil {
		t.Fatal("quick suite missing stream record")
	} else {
		if s.Tasks != 400 {
			t.Errorf("stream quick tasks = %d, want 400", s.Tasks)
		}
		if s.DeltaExact == 0 || s.DeltaFallbacks != 0 {
			t.Errorf("stream: %d exact deltas, %d fallbacks; synthetic prefixes must all diff exactly",
				s.DeltaExact, s.DeltaFallbacks)
		}
		if s.DeltaGate != GatePassed {
			t.Errorf("stream: delta gate %q at %.2fx reduction; delta framing must at least halve pushed bytes",
				s.DeltaGate, s.Reduction)
		}
	}
	names := make([]string, len(res.Workflows))
	for i, w := range res.Workflows {
		names[i] = w.Name
	}
	if strings.Join(names, ",") != "pyflextrkr,ddmd,arldm" {
		t.Errorf("workflows = %v", names)
	}
	// The instrumented kernel runs fed the supplied registry.
	if reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", "mem", "op", "write")).Value() == 0 {
		t.Error("instrumented kernel runs recorded no metrics")
	}

	// JSON round trip through the validating loader.
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || len(got.Workflows) != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestBenchValidateRejectsBadRecords(t *testing.T) {
	good := &BenchResult{
		Schema: BenchSchema, GoVersion: "go", GOOS: "linux", GOARCH: "amd64",
		Kernels: []KernelBench{
			{Name: "a", UntracedNS: 1, TracedNS: 1, DisabledObsNS: 1, InstrumentedNS: 1},
			{Name: "b", UntracedNS: 1, TracedNS: 1, DisabledObsNS: 1, InstrumentedNS: 1},
		},
		Workflows: []WorkflowBench{
			{Name: "x", Stages: 1, Tasks: 1, VirtualNS: 1, WallTracedNS: 1, WallUntracedNS: 1},
			{Name: "y", Stages: 1, Tasks: 1, VirtualNS: 1, WallTracedNS: 1, WallUntracedNS: 1},
			{Name: "z", Stages: 1, Tasks: 1, VirtualNS: 1, WallTracedNS: 1, WallUntracedNS: 1},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
	bad := *good
	bad.Schema = "wrong"
	if bad.Validate() == nil {
		t.Error("wrong schema accepted")
	}
	bad = *good
	bad.Workflows = bad.Workflows[:1]
	if bad.Validate() == nil {
		t.Error("missing workflows accepted")
	}
	bad = *good
	kernels := append([]KernelBench(nil), good.Kernels...)
	kernels[0].UntracedNS = 0
	bad.Kernels = kernels
	if bad.Validate() == nil {
		t.Error("zero timing accepted")
	}

	// Analyzer record: optional, but when present it must be sound.
	goodAnalyzer := &AnalyzerBench{
		Name: "analyzer", Tasks: 10, Cores: 1, Parallelism: 1,
		SerialNS: 1, ParallelNS: 1, Speedup: 1, SpeedupGate: GateSkipped,
		OutputsIdentical: true,
	}
	bad = *good
	bad.Analyzer = goodAnalyzer
	if err := bad.Validate(); err != nil {
		t.Errorf("good analyzer record rejected: %v", err)
	}
	mutations := map[string]func(*AnalyzerBench){
		"outputs differ":   func(a *AnalyzerBench) { a.OutputsIdentical = false },
		"zero serial time": func(a *AnalyzerBench) { a.SerialNS = 0 },
		"zero parallelism": func(a *AnalyzerBench) { a.Parallelism = 0 },
		"zero tasks":       func(a *AnalyzerBench) { a.Tasks = 0 },
		"negative speedup": func(a *AnalyzerBench) { a.Speedup = -1 },
		"empty gate":       func(a *AnalyzerBench) { a.SpeedupGate = "" },
		"dishonest pass on one core": func(a *AnalyzerBench) {
			a.SpeedupGate = GatePassed // cores: 1 cannot pass, only skip
		},
		"skipped despite real cores": func(a *AnalyzerBench) {
			a.Cores, a.Parallelism = 8, 8 // must carry a verdict
		},
	}
	for label, mutate := range mutations {
		a := *goodAnalyzer
		mutate(&a)
		bad = *good
		bad.Analyzer = &a
		if bad.Validate() == nil {
			t.Errorf("analyzer record with %s accepted", label)
		}
	}

	// Codec record: optional, but when present it must be sound.
	goodCodec := &CodecBench{
		Name: "codec", Tasks: 10,
		JSONEncodeNS: 1, JSONDecodeNS: 1, BinaryEncodeNS: 1, BinaryDecodeNS: 1,
		JSONBytes: 2, BinaryBytes: 1,
		EncodeSpeedup: 1, DecodeSpeedup: 1, SizeRatio: 0.5,
		EncodeSpeedupGate:           GatePassed,
		JSONEncodeAllocBytesPerOp:   3,
		BinaryEncodeAllocBytesPerOp: 1,
		BinaryDecodeAllocBytesPerOp: 2,
		BinaryEquivalent:            true,
	}
	bad = *good
	bad.Codec = goodCodec
	if err := bad.Validate(); err != nil {
		t.Errorf("good codec record rejected: %v", err)
	}
	codecMutations := map[string]func(*CodecBench){
		"graphs differ":     func(c *CodecBench) { c.BinaryEquivalent = false },
		"zero decode time":  func(c *CodecBench) { c.BinaryDecodeNS = 0 },
		"zero binary bytes": func(c *CodecBench) { c.BinaryBytes = 0 },
		"zero tasks":        func(c *CodecBench) { c.Tasks = 0 },
		"negative speedup":  func(c *CodecBench) { c.DecodeSpeedup = -1 },
		"zero size ratio":   func(c *CodecBench) { c.SizeRatio = 0 },
		"wrong name":        func(c *CodecBench) { c.Name = "kodek" },
		"empty encode gate": func(c *CodecBench) { c.EncodeSpeedupGate = "" },
		"dishonest encode pass": func(c *CodecBench) {
			c.EncodeSpeedup = 0.9 // gate says passed, number says regression
		},
		"inverted encode fail": func(c *CodecBench) {
			c.EncodeSpeedupGate = GateFailed // speedup 1.0 is a pass
		},
		"zero encode allocs": func(c *CodecBench) { c.BinaryEncodeAllocBytesPerOp = 0 },
	}
	for label, mutate := range codecMutations {
		c := *goodCodec
		mutate(&c)
		bad = *good
		bad.Codec = &c
		if bad.Validate() == nil {
			t.Errorf("codec record with %s accepted", label)
		}
	}
}
