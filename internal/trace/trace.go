// Package trace defines DaYu's persistent trace records: the
// object-level semantics of Table I, the file-level I/O semantics of
// Table II, and the joined object-to-I/O statistics the Characteristic
// Mapper produces. Traces are written per task and consumed by the
// Workflow Analyzer.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Extent is a half-open file address range [Start, End).
type Extent struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// Len returns the extent length.
func (e Extent) Len() int64 { return e.End - e.Start }

// Overlaps reports whether two half-open extents share at least one
// byte. Adjacent extents like [0,10) and [10,20) touch but do not
// overlap (MergeExtents still coalesces them), and empty extents
// overlap nothing.
func (e Extent) Overlaps(o Extent) bool {
	if e.Len() <= 0 || o.Len() <= 0 {
		return false
	}
	return e.Start < o.End && o.Start < e.End
}

// MergeExtents coalesces overlapping/touching extents, returning them
// sorted by start address.
func MergeExtents(in []Extent) []Extent {
	if len(in) == 0 {
		return nil
	}
	es := append([]Extent(nil), in...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Start != es[j].Start {
			return es[i].Start < es[j].Start
		}
		return es[i].End < es[j].End
	})
	out := es[:1]
	for _, e := range es[1:] {
		last := &out[len(out)-1]
		if e.Start <= last.End {
			if e.End > last.End {
				last.End = e.End
			}
		} else {
			out = append(out, e)
		}
	}
	return out
}

// ObjectRecord is one Table I entry: object-level semantics for a
// (task, file, object) triple over the object's open-close lifetime.
type ObjectRecord struct {
	Task   string `json:"task"`
	File   string `json:"file"`
	Object string `json:"object"`
	// Type is "dataset", "group", "attribute" or "file".
	Type string `json:"type"`
	// Datatype, Shape, ElemSize and Layout are the object description
	// (Table I parameter 5).
	Datatype  string  `json:"datatype,omitempty"`
	Shape     []int64 `json:"shape,omitempty"`
	ElemSize  int64   `json:"elem_size,omitempty"`
	Layout    string  `json:"layout,omitempty"`
	ChunkDims []int64 `json:"chunk_dims,omitempty"`
	// AcquiredNS and ReleasedNS bound the object lifetime
	// (Table I parameter 4): T_release - T_acquire.
	AcquiredNS int64 `json:"acquired_ns"`
	ReleasedNS int64 `json:"released_ns"`
	// Access counts (Table I parameter 6).
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
}

// Lifetime returns the object's open-close duration.
func (r ObjectRecord) Lifetime() time.Duration {
	return time.Duration(r.ReleasedNS - r.AcquiredNS)
}

// FileRecord is one Table II entry: file-level I/O statistics for a
// (task, file) pair.
type FileRecord struct {
	Task string `json:"task"`
	File string `json:"file"`
	// OpenNS and CloseNS bound the file lifetime (Table II parameter 3).
	OpenNS  int64 `json:"open_ns"`
	CloseNS int64 `json:"close_ns"`
	// Traditional metrics (Table II parameter 4).
	Ops          int64 `json:"ops"`
	Reads        int64 `json:"reads"`
	Writes       int64 `json:"writes"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// DataReads and DataWrites count raw-data (non-metadata) operations
	// per direction; format-internal metadata traffic is excluded.
	DataReads  int64 `json:"data_reads"`
	DataWrites int64 `json:"data_writes"`
	// SequentialOps counts raw-data operations at monotonically
	// non-decreasing file addresses (streaming access detection).
	SequentialOps int64 `json:"sequential_ops"`
	// Metadata/raw split (Table II parameter 6).
	MetaOps   int64 `json:"meta_ops"`
	DataOps   int64 `json:"data_ops"`
	MetaBytes int64 `json:"meta_bytes"`
	DataBytes int64 `json:"data_bytes"`
	// Regions are the merged file address extents accessed
	// (Table II parameter 5).
	Regions []Extent `json:"regions,omitempty"`
}

// Lifetime returns the file's open-close duration.
func (r FileRecord) Lifetime() time.Duration {
	return time.Duration(r.CloseNS - r.OpenNS)
}

// MappedStat is the Characteristic Mapper output: low-level I/O
// statistics attributed to one data object within one task and file.
// Object may be empty for unattributed traffic (e.g. superblock I/O).
type MappedStat struct {
	Task   string `json:"task"`
	File   string `json:"file"`
	Object string `json:"object"`
	// Operation counts and volumes split by access class.
	MetaOps   int64 `json:"meta_ops"`
	DataOps   int64 `json:"data_ops"`
	MetaBytes int64 `json:"meta_bytes"`
	DataBytes int64 `json:"data_bytes"`
	Reads     int64 `json:"reads"`
	Writes    int64 `json:"writes"`
	// Regions are the merged file extents this object's I/O touched:
	// the dataset-to-file-address mapping the SDG visualizes.
	Regions []Extent `json:"regions,omitempty"`
	// FirstNS and LastNS are wall-clock bounds of the object's I/O.
	FirstNS int64 `json:"first_ns"`
	LastNS  int64 `json:"last_ns"`
}

// Ops returns the total operation count.
func (m MappedStat) Ops() int64 { return m.MetaOps + m.DataOps }

// Bytes returns the total byte volume.
func (m MappedStat) Bytes() int64 { return m.MetaBytes + m.DataBytes }

// IORecord is one raw VFD operation, retained when time-sensitive I/O
// tracing is enabled (it dominates trace storage; Figure 9d).
type IORecord struct {
	Seq    int64  `json:"seq"`
	WallNS int64  `json:"wall_ns"`
	File   string `json:"file"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	Write  bool   `json:"write"`
	Meta   bool   `json:"meta"`
	Object string `json:"object,omitempty"`
}

// TaskTrace is everything DaYu records for one task execution.
type TaskTrace struct {
	Task    string `json:"task"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	// Objects are Table I records.
	Objects []ObjectRecord `json:"objects"`
	// Files are Table II records.
	Files []FileRecord `json:"files"`
	// Mapped are the joined object-to-I/O statistics.
	Mapped []MappedStat `json:"mapped"`
	// IOTrace holds raw operations when I/O tracing is on.
	IOTrace []IORecord `json:"io_trace,omitempty"`
	// Attempts is how many times the engine executed the task (2+ after
	// retries under fault injection); 0 on traces not produced by the
	// workflow engine.
	Attempts int `json:"attempts,omitempty"`
	// Failed marks the trace of a task whose final attempt errored; its
	// observations cover the I/O the task performed before failing.
	Failed bool `json:"failed,omitempty"`
}

// Validate performs basic consistency checks on the trace.
func (t *TaskTrace) Validate() error {
	if t.Task == "" {
		return fmt.Errorf("trace: task name missing")
	}
	if t.EndNS < t.StartNS {
		return fmt.Errorf("trace: task %q ends before it starts", t.Task)
	}
	for _, o := range t.Objects {
		if o.Task != t.Task {
			return fmt.Errorf("trace: object record %q belongs to task %q, not %q", o.Object, o.Task, t.Task)
		}
		if o.ReleasedNS < o.AcquiredNS {
			return fmt.Errorf("trace: object %q released before acquired", o.Object)
		}
	}
	files := make(map[string]bool, len(t.Files))
	for _, f := range t.Files {
		if f.CloseNS < f.OpenNS {
			return fmt.Errorf("trace: file %q closed before opened", f.File)
		}
		if f.Ops != f.MetaOps+f.DataOps {
			return fmt.Errorf("trace: file %q op counts inconsistent", f.File)
		}
		files[f.File] = true
	}
	// Mapped stats join per-object accounting onto the file-level
	// table: the tracer creates both rows from the same operation, so a
	// mapped row whose file has no file record cannot come from a real
	// run — and downstream graph builds emit dataset->file edges that
	// assume the file node exists. Rejecting the record here turns what
	// would be a panic deep inside analysis into a decode error the
	// ingest path can refuse or quarantine.
	for _, ms := range t.Mapped {
		if !files[ms.File] {
			return fmt.Errorf("trace: mapped stats for object %q reference file %q with no file record", ms.Object, ms.File)
		}
	}
	return nil
}

// FileNames returns the distinct file names the task touched, in
// first-access order.
func (t *TaskTrace) FileNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, f := range t.Files {
		if !seen[f.File] {
			seen[f.File] = true
			names = append(names, f.File)
		}
	}
	return names
}
