package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// faultReader serves its data and then fails with a non-EOF error —
// the shape of a disk fault mid-read, as opposed to bytes ending early.
type faultReader struct {
	data []byte
	err  error
}

func (f *faultReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// TestWALReadIOErrorNotTorn pins the torn-vs-fault distinction: a read
// that fails with a genuine I/O error must never be reported as
// ErrWALTorn, because callers respond to torn by truncating or
// deleting — which over a transient fault would destroy acknowledged
// records. The original error must stay reachable via errors.Is.
func TestWALReadIOErrorNotTorn(t *testing.T) {
	fault := errors.New("simulated disk fault")

	var rec bytes.Buffer
	if _, err := WriteWALRecord(&rec, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	frame := rec.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := ReadWALRecord(bufio.NewReader(&faultReader{data: frame[:cut], err: fault}))
		if err == nil {
			t.Fatalf("record cut %d: no error", cut)
		}
		if errors.Is(err, ErrWALTorn) {
			t.Fatalf("record cut %d: I/O fault classified as torn: %v", cut, err)
		}
		if !errors.Is(err, fault) {
			t.Fatalf("record cut %d: fault not surfaced: %v", cut, err)
		}
	}

	var hdr bytes.Buffer
	if _, err := WriteWALHeader(&hdr, 42); err != nil {
		t.Fatal(err)
	}
	header := hdr.Bytes()
	for cut := 0; cut < len(header); cut++ {
		_, _, err := ReadWALHeader(bufio.NewReader(&faultReader{data: header[:cut], err: fault}))
		if err == nil {
			t.Fatalf("header cut %d: no error", cut)
		}
		if errors.Is(err, ErrWALTorn) {
			t.Fatalf("header cut %d: I/O fault classified as torn: %v", cut, err)
		}
	}
}

func TestWALHeaderRoundTrip(t *testing.T) {
	for _, firstSeq := range []uint64{0, 1, 127, 128, 1 << 40} {
		var buf bytes.Buffer
		wrote, err := WriteWALHeader(&buf, firstSeq)
		if err != nil {
			t.Fatal(err)
		}
		if wrote != buf.Len() {
			t.Fatalf("WriteWALHeader reported %d bytes, wrote %d", wrote, buf.Len())
		}
		got, n, err := ReadWALHeader(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("firstSeq %d: %v", firstSeq, err)
		}
		if got != firstSeq || n != wrote {
			t.Fatalf("ReadWALHeader = (%d, %d), want (%d, %d)", got, n, firstSeq, wrote)
		}
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte(`{"task":"t1"}`),
		bytes.Repeat([]byte{0xAB}, 1000),
		{},
	}
	var buf bytes.Buffer
	var wrote []int
	for _, p := range payloads {
		n, err := WriteWALRecord(&buf, p)
		if err != nil {
			t.Fatal(err)
		}
		wrote = append(wrote, n)
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		got, n, err := ReadWALRecord(br)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("record %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
		if n != wrote[i] {
			t.Fatalf("record %d: read %d bytes, wrote %d", i, n, wrote[i])
		}
	}
	if _, _, err := ReadWALRecord(br); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestWALRecordTornAtEveryByte asserts that a record truncated at any
// interior byte boundary reports ErrWALTorn — never a panic, never a
// silent wrong payload — while the complete frame still reads cleanly.
func TestWALRecordTornAtEveryByte(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"task":"torn-probe","files":[1,2,3]}`)
	if _, err := WriteWALRecord(&buf, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := ReadWALRecord(bufio.NewReader(bytes.NewReader(frame[:cut])))
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: %v, want io.EOF (clean end)", err)
			}
			continue
		}
		if !errors.Is(err, ErrWALTorn) {
			t.Fatalf("cut %d/%d: %v, want ErrWALTorn", cut, len(frame), err)
		}
	}
	got, _, err := ReadWALRecord(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("complete frame: %v (payload match %v)", err, bytes.Equal(got, payload))
	}
}

func TestWALRecordCorruptPayloadDetected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteWALRecord(&buf, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[len(frame)-1] ^= 0x01 // flip one payload bit
	_, _, err := ReadWALRecord(bufio.NewReader(bytes.NewReader(frame)))
	if !errors.Is(err, ErrWALTorn) {
		t.Fatalf("corrupt payload: %v, want ErrWALTorn", err)
	}
}

func TestWALRecordRejectsOversize(t *testing.T) {
	huge := uint64(maxBinaryLen) + 1
	// Hand-build a frame claiming an absurd length; the reader must
	// refuse before allocating.
	var buf bytes.Buffer
	var head [16]byte
	n := putUvarintHelper(head[:], huge)
	buf.Write(head[:n])
	buf.Write([]byte{0, 0, 0, 0})
	_, _, err := ReadWALRecord(bufio.NewReader(&buf))
	if !errors.Is(err, ErrWALTorn) {
		t.Fatalf("oversize length: %v, want ErrWALTorn", err)
	}
}

func putUvarintHelper(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

// FuzzWALRecord drives the framing both ways: any payload must
// round-trip exactly, and any byte soup fed to the reader must either
// parse or fail with io.EOF/ErrWALTorn — never panic, never return a
// payload that does not re-frame to a prefix-consistent read.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte(`{"task":"seed"}`))
	f.Add([]byte{})
	f.Add([]byte{0x05, 0xDE, 0xAD, 0xBE, 0xEF})
	var valid bytes.Buffer
	_, _ = WriteWALRecord(&valid, []byte("seed-frame"))
	f.Add(valid.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round trip: data as payload.
		var buf bytes.Buffer
		if _, err := WriteWALRecord(&buf, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, _, err := ReadWALRecord(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
		// Robustness: data as wire bytes.
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			payload, _, err := ReadWALRecord(br)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrWALTorn) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			// A parsed payload must re-frame and re-read identically.
			var rt bytes.Buffer
			if _, err := WriteWALRecord(&rt, payload); err != nil {
				t.Fatalf("re-frame: %v", err)
			}
			back, _, err := ReadWALRecord(bufio.NewReader(&rt))
			if err != nil || !bytes.Equal(back, payload) {
				t.Fatalf("re-framed payload does not round trip: %v", err)
			}
		}
	})
}
