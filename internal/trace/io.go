package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// traceSuffix names on-disk task traces.
const traceSuffix = ".trace.json"

// Encode writes the trace as JSON to w.
func (t *TaskTrace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// EncodedSize returns the serialized byte size of the trace: the
// storage-overhead metric of Figure 9d.
func (t *TaskTrace) EncodedSize() (int64, error) {
	var cw countingWriter
	if err := t.Encode(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Decode reads one trace from r.
func Decode(r io.Reader) (*TaskTrace, error) {
	var t TaskTrace
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save writes the trace to dir as <task>.trace.json. Slashes in task
// names are flattened.
func (t *TaskTrace) Save(dir string) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	name := strings.ReplaceAll(t.Task, "/", "_") + traceSuffix
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := t.Encode(bw); err != nil {
		return "", fmt.Errorf("trace: save %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return "", fmt.Errorf("trace: save %s: %w", path, err)
	}
	return path, nil
}

// Load reads one trace file. Every error path — open, decode, and
// validation failures alike — carries the file path (via %w wrapping
// where the underlying error does not already embed it), so callers
// looping over a directory can report which task trace is corrupt.
func Load(path string) (*TaskTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return t, nil
}

// LoadDir reads every task trace in dir, sorted by task name. Files
// are decoded concurrently on a bounded worker pool; the result is
// deterministic regardless of scheduling: traces come back in the same
// order a serial load would produce them, and when several files fail
// to decode, the error reported is the one from the first file in
// directory order (first-error wins).
func LoadDir(dir string) ([]*TaskTrace, error) {
	return loadDirParallel(dir, runtime.GOMAXPROCS(0))
}

// loadDirParallel is LoadDir with an explicit worker bound (tests pin
// it to 1 to cross-check determinism against the concurrent path).
func loadDirParallel(dir string, workers int) ([]*TaskTrace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: load dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), traceSuffix) {
			continue
		}
		names = append(names, e.Name())
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}

	traces := make([]*TaskTrace, len(names))
	errs := make([]error, len(names))
	if workers <= 1 {
		for i, name := range names {
			traces[i], errs[i] = Load(filepath.Join(dir, name))
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					traces[i], errs[i] = Load(filepath.Join(dir, names[i]))
				}
			}()
		}
		for i := range names {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(traces) == 0 {
		return nil, nil
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })
	return traces, nil
}

// Manifest records workflow-level context the analyzer needs but a
// single task cannot know: the task execution order (the paper notes
// current FTG construction takes task ordering as input).
type Manifest struct {
	Workflow string `json:"workflow"`
	// TaskOrder lists task names in execution order; tasks in the same
	// Stages entry may run in parallel.
	TaskOrder []string `json:"task_order"`
	// Stages optionally groups tasks into pipeline stages by name.
	Stages map[string][]string `json:"stages,omitempty"`
	// StageOrder lists stage names in execution order.
	StageOrder []string `json:"stage_order,omitempty"`
}

// SaveManifest writes the manifest to dir/manifest.json.
func SaveManifest(dir string, m *Manifest) error {
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("trace: save manifest: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadManifest reads dir/manifest.json; a missing manifest returns nil
// without error (ordering falls back to trace timestamps).
func LoadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	return &m, nil
}
