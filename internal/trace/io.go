package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// traceSuffix names on-disk JSON task traces; binarySuffix names
// dtb/v2 traces.
const (
	traceSuffix  = ".trace.json"
	binarySuffix = ".trace.dtb"
)

// IsTraceFile reports whether name looks like an on-disk task trace in
// either format. Directory scanners (LoadDir, the serve ingest loop)
// share this predicate so both formats are picked up uniformly.
func IsTraceFile(name string) bool {
	return strings.HasSuffix(name, traceSuffix) || strings.HasSuffix(name, binarySuffix)
}

// Encode writes the trace as JSON to w.
func (t *TaskTrace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// EncodedSize returns the serialized byte size of the trace: the
// storage-overhead metric of Figure 9d.
func (t *TaskTrace) EncodedSize() (int64, error) {
	var cw countingWriter
	if err := t.Encode(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Decode reads one trace from r, sniffing the serialization from the
// leading bytes: dtb/v2 traces are routed to the binary decoder,
// anything else is decoded as JSON. A JSON stream must hold exactly
// one trace document — trailing non-whitespace data (a torn write, a
// concatenation of two traces) is an error rather than being silently
// ignored.
func Decode(r io.Reader) (*TaskTrace, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if SniffFormat(prefix) == FormatBinary {
		return DecodeBinary(br)
	}
	var t TaskTrace
	dec := json.NewDecoder(br)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := rejectTrailing(io.MultiReader(dec.Buffered(), br)); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// rejectTrailing errors if r holds anything but whitespace.
func rejectTrailing(r io.Reader) error {
	br := bufio.NewReader(r)
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: decode: %w", err)
		}
		switch b {
		case ' ', '\t', '\r', '\n':
		default:
			return fmt.Errorf("trace: decode: trailing data after trace (byte %#x)", b)
		}
	}
}

// escapeTaskFilename maps a task name to a collision-free file stem:
// '%', path separators and control bytes are percent-encoded, so
// distinct task names always produce distinct file names (unlike the
// old flatten-'/'-to-'_' scheme, under which tasks "a/b" and "a_b"
// overwrote each other's trace file).
func escapeTaskFilename(task string) string {
	var b strings.Builder
	for i := 0; i < len(task); i++ {
		c := task[i]
		if c == '%' || c == '/' || c == '\\' || c < 0x20 {
			fmt.Fprintf(&b, "%%%02X", c)
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Save writes the trace to dir as <task>.trace.json. Path-hostile
// bytes in the task name are percent-encoded.
func (t *TaskTrace) Save(dir string) (string, error) {
	return t.SaveFormat(dir, FormatJSON)
}

// TraceFileName returns the file name Save/SaveFormat would use for a
// task trace in the given format: the percent-escaped task name plus
// the format suffix. Push-ingest folding uses it to land acknowledged
// records under exactly the names the directory scanners expect.
func TraceFileName(task string, f Format) string {
	return escapeTaskFilename(task) + f.Suffix()
}

// SaveFormat writes the trace to dir in the given format, naming the
// file <escaped-task><suffix>. The write is atomic: bytes land in a
// temp file in the same directory which is renamed over the final
// path, so a concurrent reader (the serve poller) and a crashed writer
// alike never observe a partial trace at the destination.
func (t *TaskTrace) SaveFormat(dir string, format Format) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, TraceFileName(t.Task, format))
	if err := atomicWrite(path, func(w io.Writer) error {
		return t.EncodeFormat(w, format)
	}); err != nil {
		return "", fmt.Errorf("trace: save %s: %w", path, err)
	}
	return path, nil
}

// atomicWrite streams write's output to a temp file next to path and
// renames it into place, removing the temp file on any failure.
func atomicWrite(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	tmp = nil
	return nil
}

// Load reads one trace file. Every error path — open, decode, and
// validation failures alike — carries the file path (via %w wrapping
// where the underlying error does not already embed it), so callers
// looping over a directory can report which task trace is corrupt.
func Load(path string) (*TaskTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	t, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return t, nil
}

// LoadDir reads every task trace in dir — JSON and dtb/v2 files
// alike, each sniffed per file — sorted by task name. Files
// are decoded concurrently on a bounded worker pool; the result is
// deterministic regardless of scheduling: traces come back in the same
// order a serial load would produce them, and when several files fail
// to decode, the error reported is the one from the first file in
// directory order (first-error wins).
func LoadDir(dir string) ([]*TaskTrace, error) {
	return loadDirParallel(dir, runtime.GOMAXPROCS(0))
}

// loadDirParallel is LoadDir with an explicit worker bound (tests pin
// it to 1 to cross-check determinism against the concurrent path).
func loadDirParallel(dir string, workers int) ([]*TaskTrace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: load dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !IsTraceFile(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}

	traces := make([]*TaskTrace, len(names))
	errs := make([]error, len(names))
	if workers <= 1 {
		for i, name := range names {
			traces[i], errs[i] = Load(filepath.Join(dir, name))
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					traces[i], errs[i] = Load(filepath.Join(dir, names[i]))
				}
			}()
		}
		for i := range names {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(traces) == 0 {
		return nil, nil
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })
	return traces, nil
}

// Manifest records workflow-level context the analyzer needs but a
// single task cannot know: the task execution order (the paper notes
// current FTG construction takes task ordering as input).
type Manifest struct {
	Workflow string `json:"workflow"`
	// TaskOrder lists task names in execution order; tasks in the same
	// Stages entry may run in parallel.
	TaskOrder []string `json:"task_order"`
	// Stages optionally groups tasks into pipeline stages by name.
	Stages map[string][]string `json:"stages,omitempty"`
	// StageOrder lists stage names in execution order.
	StageOrder []string `json:"stage_order,omitempty"`
}

// SaveManifest writes the manifest to dir/manifest.json, atomically
// like SaveFormat (the serve poller reads the manifest too).
func SaveManifest(dir string, m *Manifest) error {
	err := atomicWrite(filepath.Join(dir, "manifest.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
	if err != nil {
		return fmt.Errorf("trace: save manifest: %w", err)
	}
	return nil
}

// LoadManifest reads dir/manifest.json; a missing manifest returns nil
// without error (ordering falls back to trace timestamps).
func LoadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	return &m, nil
}
