package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// traceSuffix names on-disk task traces.
const traceSuffix = ".trace.json"

// Encode writes the trace as JSON to w.
func (t *TaskTrace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// EncodedSize returns the serialized byte size of the trace: the
// storage-overhead metric of Figure 9d.
func (t *TaskTrace) EncodedSize() (int64, error) {
	var cw countingWriter
	if err := t.Encode(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Decode reads one trace from r.
func Decode(r io.Reader) (*TaskTrace, error) {
	var t TaskTrace
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save writes the trace to dir as <task>.trace.json. Slashes in task
// names are flattened.
func (t *TaskTrace) Save(dir string) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	name := strings.ReplaceAll(t.Task, "/", "_") + traceSuffix
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := t.Encode(bw); err != nil {
		return "", fmt.Errorf("trace: save %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return "", fmt.Errorf("trace: save %s: %w", path, err)
	}
	return path, nil
}

// Load reads one trace file.
func Load(path string) (*TaskTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// LoadDir reads every task trace in dir, sorted by task name.
func LoadDir(dir string) ([]*TaskTrace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: load dir: %w", err)
	}
	var traces []*TaskTrace
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), traceSuffix) {
			continue
		}
		t, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		traces = append(traces, t)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Task < traces[j].Task })
	return traces, nil
}

// Manifest records workflow-level context the analyzer needs but a
// single task cannot know: the task execution order (the paper notes
// current FTG construction takes task ordering as input).
type Manifest struct {
	Workflow string `json:"workflow"`
	// TaskOrder lists task names in execution order; tasks in the same
	// Stages entry may run in parallel.
	TaskOrder []string `json:"task_order"`
	// Stages optionally groups tasks into pipeline stages by name.
	Stages map[string][]string `json:"stages,omitempty"`
	// StageOrder lists stage names in execution order.
	StageOrder []string `json:"stage_order,omitempty"`
}

// SaveManifest writes the manifest to dir/manifest.json.
func SaveManifest(dir string, m *Manifest) error {
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("trace: save manifest: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadManifest reads dir/manifest.json; a missing manifest returns nil
// without error (ordering falls back to trace timestamps).
func LoadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, "manifest.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("trace: load manifest: %w", err)
	}
	return &m, nil
}
