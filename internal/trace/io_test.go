package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTraceDir writes n minimal valid traces with file names in the
// opposite lexicographic order of their task names, so LoadDir's final
// sort by task genuinely reorders the directory listing.
func writeTraceDir(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		tr := &TaskTrace{
			Task:    fmt.Sprintf("task_%02d", n-1-i),
			StartNS: int64(i), EndNS: int64(i) + 100,
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("f_%02d%s", i, traceSuffix)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirDeterministicAcrossWorkerCounts(t *testing.T) {
	dir := writeTraceDir(t, 20)
	serial, err := loadDirParallel(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 20 {
		t.Fatalf("serial load = %d traces", len(serial))
	}
	for i := 1; i < len(serial); i++ {
		if serial[i-1].Task > serial[i].Task {
			t.Fatalf("serial result not sorted by task: %q after %q", serial[i].Task, serial[i-1].Task)
		}
	}
	for _, workers := range []int{2, 4, 8, 64} {
		for rep := 0; rep < 5; rep++ {
			got, err := loadDirParallel(dir, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("workers=%d rep=%d: parallel load differs from serial", workers, rep)
			}
		}
	}
	// The exported entry point agrees too.
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("LoadDir differs from serial load")
	}
}

func TestLoadDirFirstErrorWins(t *testing.T) {
	dir := writeTraceDir(t, 12)
	// Corrupt two files; the error surfaced must be the one from the
	// file that comes first in directory order, on every run and at
	// every worker count.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), traceSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) < 10 {
		t.Fatalf("only %d trace files", len(names))
	}
	first, later := names[2], names[9]
	if err := os.WriteFile(filepath.Join(dir, first), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, later), []byte("also broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := func() string {
		_, err := loadDirParallel(dir, 1)
		if err == nil {
			t.Fatal("serial load of corrupt dir succeeded")
		}
		return err.Error()
	}()
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			_, err := loadDirParallel(dir, workers)
			if err == nil {
				t.Fatalf("workers=%d: load of corrupt dir succeeded", workers)
			}
			if err.Error() != want {
				t.Fatalf("workers=%d: error %q, want first-in-dir-order error %q", workers, err.Error(), want)
			}
		}
	}
}

func TestSaveSlashTaskNamesDoNotCollide(t *testing.T) {
	// Regression: Save used to flatten '/' to '_', so tasks "a/b" and
	// "a_b" overwrote each other's trace file.
	dir := t.TempDir()
	a := &TaskTrace{Task: "a/b", StartNS: 1, EndNS: 2}
	b := &TaskTrace{Task: "a_b", StartNS: 3, EndNS: 4}
	pa, err := a.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pa == pb {
		t.Fatalf("tasks %q and %q saved to the same path %s", a.Task, b.Task, pa)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("LoadDir found %d traces, want 2 (one overwrote the other)", len(got))
	}
	if got[0].Task != "a/b" || got[1].Task != "a_b" {
		t.Fatalf("loaded tasks %q, %q", got[0].Task, got[1].Task)
	}
}

func TestSaveEscapingCollisionFree(t *testing.T) {
	// Percent-encoding must be injective: names built from the escape
	// characters themselves cannot collide either.
	dir := t.TempDir()
	names := []string{"a/b", "a_b", "a%2Fb", "a%b", "a\\b", "a%5Cb", "%", "%25"}
	paths := map[string]string{}
	for _, name := range names {
		tr := &TaskTrace{Task: name, StartNS: 1, EndNS: 2}
		p, err := tr.Save(dir)
		if err != nil {
			t.Fatalf("save %q: %v", name, err)
		}
		if prev, ok := paths[p]; ok {
			t.Fatalf("tasks %q and %q collide at %s", prev, name, p)
		}
		paths[p] = name
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("LoadDir found %d traces, want %d", len(got), len(names))
	}
}

func TestSaveAtomicNeverObservedPartial(t *testing.T) {
	// Regression: Save used to os.Create the final path and stream JSON
	// into it, so a reader racing the write (the serve poller) observed
	// a torn half-JSON trace. With write-to-temp + rename, every open
	// of the destination sees a complete previous or complete new file.
	dir := t.TempDir()
	tr := &TaskTrace{Task: "atomic", StartNS: 1, EndNS: 2}
	for i := 0; i < 5000; i++ {
		tr.IOTrace = append(tr.IOTrace, IORecord{
			Seq: int64(i), WallNS: int64(i), File: "f.h5", Offset: int64(i) * 4096, Length: 4096,
		})
	}
	path, err := tr.Save(dir)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	fail := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue // mid-rename on some platforms; never partial
			}
			if _, derr := Decode(bytes.NewReader(data)); derr != nil {
				select {
				case fail <- fmt.Errorf("observed partial trace (%d bytes): %v", len(data), derr):
				default:
				}
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		tr.StartNS = int64(i)
		tr.EndNS = int64(i) + 100
		if _, err := tr.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// No temp droppings left behind, and the directory holds exactly
	// the one destination file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !IsTraceFile(e.Name()) {
			t.Errorf("leftover non-trace file %q after saves", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("%d directory entries after repeated saves, want 1", len(entries))
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	// Regression: Decode used json.Decoder.Decode once and ignored
	// trailing bytes, so a concatenation of two traces (or a trace with
	// garbage appended) silently decoded as its first object.
	one := &TaskTrace{Task: "one", StartNS: 1, EndNS: 2}
	var buf bytes.Buffer
	if err := one.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)

	// Trailing whitespace/newlines stay legal (Encode itself emits a
	// trailing newline).
	ok := append(append([]byte(nil), clean...), ' ', '\n', '\t', '\r')
	if _, err := Decode(bytes.NewReader(ok)); err != nil {
		t.Fatalf("decode with trailing whitespace failed: %v", err)
	}

	two := &TaskTrace{Task: "two", StartNS: 3, EndNS: 4}
	var buf2 bytes.Buffer
	if err := two.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	concat := append(append([]byte(nil), clean...), buf2.Bytes()...)
	if _, err := Decode(bytes.NewReader(concat)); err == nil {
		t.Fatal("decode of two concatenated traces silently returned the first")
	}
	garbage := append(append([]byte(nil), clean...), []byte("oops")...)
	if _, err := Decode(bytes.NewReader(garbage)); err == nil {
		t.Fatal("decode with trailing garbage succeeded")
	}
}
