package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTraceDir writes n minimal valid traces with file names in the
// opposite lexicographic order of their task names, so LoadDir's final
// sort by task genuinely reorders the directory listing.
func writeTraceDir(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		tr := &TaskTrace{
			Task:    fmt.Sprintf("task_%02d", n-1-i),
			StartNS: int64(i), EndNS: int64(i) + 100,
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("f_%02d%s", i, traceSuffix)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirDeterministicAcrossWorkerCounts(t *testing.T) {
	dir := writeTraceDir(t, 20)
	serial, err := loadDirParallel(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 20 {
		t.Fatalf("serial load = %d traces", len(serial))
	}
	for i := 1; i < len(serial); i++ {
		if serial[i-1].Task > serial[i].Task {
			t.Fatalf("serial result not sorted by task: %q after %q", serial[i].Task, serial[i-1].Task)
		}
	}
	for _, workers := range []int{2, 4, 8, 64} {
		for rep := 0; rep < 5; rep++ {
			got, err := loadDirParallel(dir, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("workers=%d rep=%d: parallel load differs from serial", workers, rep)
			}
		}
	}
	// The exported entry point agrees too.
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("LoadDir differs from serial load")
	}
}

func TestLoadDirFirstErrorWins(t *testing.T) {
	dir := writeTraceDir(t, 12)
	// Corrupt two files; the error surfaced must be the one from the
	// file that comes first in directory order, on every run and at
	// every worker count.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), traceSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) < 10 {
		t.Fatalf("only %d trace files", len(names))
	}
	first, later := names[2], names[9]
	if err := os.WriteFile(filepath.Join(dir, first), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, later), []byte("also broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := func() string {
		_, err := loadDirParallel(dir, 1)
		if err == nil {
			t.Fatal("serial load of corrupt dir succeeded")
		}
		return err.Error()
	}()
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			_, err := loadDirParallel(dir, workers)
			if err == nil {
				t.Fatalf("workers=%d: load of corrupt dir succeeded", workers)
			}
			if err.Error() != want {
				t.Fatalf("workers=%d: error %q, want first-in-dir-order error %q", workers, err.Error(), want)
			}
		}
	}
}
