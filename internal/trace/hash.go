package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
)

// HashBytes returns the hex SHA-256 digest of b: the content address
// used by the incremental analysis service to key cached per-task
// results. Two trace files with identical bytes always map to the same
// cache entry regardless of path or timestamps.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// LoadHashed reads one trace file — either format, sniffed like Load —
// and returns the decoded trace together with the content hash of its
// raw bytes. The file is read exactly once; decode and validation
// errors carry the file path. Hashing raw bytes keeps cache keys
// stable per format: a JSON file and its dtb conversion are distinct
// content, but re-reading either always yields the same key.
func LoadHashed(path string) (*TaskTrace, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("trace: load: %w", err)
	}
	t, err := DecodeBytes(data)
	if err != nil {
		return nil, "", fmt.Errorf("trace: load %s: %w", path, err)
	}
	return t, HashBytes(data), nil
}

// HashFile returns the content hash of the file at path without
// decoding it.
func HashFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("trace: hash: %w", err)
	}
	return HashBytes(data), nil
}
