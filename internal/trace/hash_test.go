package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, dir, task string) string {
	t.Helper()
	tr := &TaskTrace{Task: task, StartNS: 1, EndNS: 2}
	path, err := tr.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadHashedStableAndContentAddressed(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "alpha")

	tr1, h1, err := LoadHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Task != "alpha" {
		t.Fatalf("task = %q", tr1.Task)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a hex sha256", h1)
	}
	_, h2, err := LoadHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same bytes hashed differently: %s vs %s", h1, h2)
	}
	hf, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hf != h1 {
		t.Fatalf("HashFile = %s, LoadHashed = %s", hf, h1)
	}

	// A different trace in another directory with identical bytes maps
	// to the same content address.
	other := t.TempDir()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copyPath := filepath.Join(other, "copy.trace.json")
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, h3, err := LoadHashed(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatalf("identical bytes at different paths hashed differently")
	}

	// Changing the bytes changes the address.
	tr1.EndNS = 99
	if _, err := tr1.Save(dir); err != nil {
		t.Fatal(err)
	}
	_, h4, err := LoadHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h1 {
		t.Fatalf("mutated trace kept the same content hash")
	}
}

// Regression: single-file load errors must name the offending file so
// serve's ingest loop (and LoadDir callers) can report which task trace
// is corrupt. Before the fix, decode and validation failures surfaced
// as bare "trace: decode: ..." errors with no path.
func TestLoadErrorsCarryFilePath(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt"+traceSuffix)
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	invalid := filepath.Join(dir, "invalid"+traceSuffix)
	// Valid JSON, fails Validate (end before start).
	if err := os.WriteFile(invalid, []byte(`{"task":"x","start_ns":10,"end_ns":5}`), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{corrupt, invalid} {
		if _, err := Load(path); err == nil {
			t.Fatalf("Load(%s) succeeded on bad input", path)
		} else if !strings.Contains(err.Error(), path) {
			t.Errorf("Load(%s) error %q does not carry the file path", path, err)
		}
		if _, _, err := LoadHashed(path); err == nil {
			t.Fatalf("LoadHashed(%s) succeeded on bad input", path)
		} else if !strings.Contains(err.Error(), path) {
			t.Errorf("LoadHashed(%s) error %q does not carry the file path", path, err)
		}
	}

	// LoadDir propagates the first bad file's path (directory order).
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir succeeded on a directory with corrupt traces")
	} else if !strings.Contains(err.Error(), corrupt) {
		t.Errorf("LoadDir error %q does not name the corrupt file", err)
	}
}

func TestHashBytesDiffers(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Fatal("distinct bytes share a hash")
	}
	if !bytes.Equal([]byte(HashBytes(nil)), []byte(HashBytes([]byte{}))) {
		t.Fatal("nil and empty slices should hash identically")
	}
}
