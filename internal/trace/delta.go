package trace

// Delta checkpoint framing: the record-level diff/reassembly pair
// behind the dtb/v2 flagDelta bit.
//
// A cumulative checkpoint re-sends every file/object/mapped row the
// task has ever touched; for a long-running task that volume grows
// linearly with lifetime while the per-interval change stays roughly
// constant, so cumulative re-sends dominate stream volume (the
// Low-level I/O Monitoring observation). A delta checkpoint instead
// carries only the rows that changed since a base checkpoint, plus the
// I/O-trace suffix appended since then.
//
// The framing is replacement, not arithmetic: each included row is the
// full current row, and reassembly (ApplyDelta) overlays it onto the
// base by key. That keeps the wire format trivially fuzzable (any
// valid trace is a valid delta body) and makes reassembly exact — no
// counter subtraction that could drift. Diff verifies exactness before
// returning: it reassembles its own output against the base and
// deep-compares with the target, so a caller that gets ok=true can
// rely on the server reconstructing the cumulative record
// byte-identically (the encoder is a deterministic function of the
// value). Any trace shape that would not survive (unsorted rows,
// shrunk tables, rewritten history) reports ok=false and the caller
// falls back to cumulative framing.

import (
	"reflect"
	"sort"
)

// Diff computes a delta record that reassembles to cur when applied on
// top of base with ApplyDelta. It reports ok=false when no exact delta
// exists — the tables shrank, rows changed order, or the I/O trace was
// rewritten rather than appended to — in which case the caller must
// ship cur as a cumulative checkpoint instead.
func Diff(base, cur *TaskTrace) (delta *TaskTrace, ok bool) {
	if base == nil || cur == nil || base.Task != cur.Task {
		return nil, false
	}
	d := &TaskTrace{
		Task:     cur.Task,
		StartNS:  cur.StartNS,
		EndNS:    cur.EndNS,
		Attempts: cur.Attempts,
		Failed:   cur.Failed,
	}

	// Monotone-growth fast checks: a cumulative checkpoint never drops
	// rows or truncates the I/O trace.
	if len(cur.Objects) < len(base.Objects) ||
		len(cur.Files) < len(base.Files) ||
		len(cur.Mapped) < len(base.Mapped) ||
		len(cur.IOTrace) < len(base.IOTrace) {
		return nil, false
	}

	baseObjects := make(map[objectKey]*ObjectRecord, len(base.Objects))
	for i := range base.Objects {
		o := &base.Objects[i]
		baseObjects[objectKey{o.File, o.Object}] = o
	}
	if cur.Objects != nil {
		d.Objects = make([]ObjectRecord, 0, 4)
		for i := range cur.Objects {
			o := &cur.Objects[i]
			if prev, ok := baseObjects[objectKey{o.File, o.Object}]; !ok || !reflect.DeepEqual(prev, o) {
				d.Objects = append(d.Objects, *o)
			}
		}
	}

	baseFiles := make(map[string]*FileRecord, len(base.Files))
	for i := range base.Files {
		f := &base.Files[i]
		baseFiles[f.File] = f
	}
	changedFiles := map[string]bool{}
	if cur.Files != nil {
		d.Files = make([]FileRecord, 0, 4)
		for i := range cur.Files {
			f := &cur.Files[i]
			if prev, ok := baseFiles[f.File]; !ok || !reflect.DeepEqual(prev, f) {
				d.Files = append(d.Files, *f)
				changedFiles[f.File] = true
			}
		}
	}

	baseMapped := make(map[objectKey]*MappedStat, len(base.Mapped))
	for i := range base.Mapped {
		m := &base.Mapped[i]
		baseMapped[objectKey{m.File, m.Object}] = m
	}
	if cur.Mapped != nil {
		d.Mapped = make([]MappedStat, 0, 4)
		for i := range cur.Mapped {
			m := &cur.Mapped[i]
			if prev, ok := baseMapped[objectKey{m.File, m.Object}]; !ok || !reflect.DeepEqual(prev, m) {
				d.Mapped = append(d.Mapped, *m)
				// Validate requires every mapped row's file to have a file
				// row in the same record. The tracer updates both tables
				// from the same operation so the file row has changed too,
				// but a hand-built trace may not honor that — carry the
				// (unchanged) file row explicitly to keep the delta valid.
				if !changedFiles[m.File] {
					if cf := currentFile(cur, m.File); cf != nil {
						d.Files = append(d.Files, *cf)
						changedFiles[m.File] = true
					} else {
						return nil, false // cur itself violates Mapped ⊆ Files
					}
				}
			}
		}
		if len(d.Files) > 0 {
			sort.SliceStable(d.Files, func(i, j int) bool { return d.Files[i].File < d.Files[j].File })
		}
	}

	// The I/O trace of a cumulative checkpoint is append-only; the
	// delta ships the suffix. The verification pass below catches a
	// rewritten prefix.
	if cur.IOTrace != nil {
		d.IOTrace = cur.IOTrace[len(base.IOTrace):]
	}

	// Exactness gate: the server will run exactly ApplyDelta; if that
	// does not reproduce cur deeply (slice nil-ness included — it
	// decides encoded bytes), no delta framing is possible.
	if !reflect.DeepEqual(ApplyDelta(base, d), cur) {
		return nil, false
	}
	return d, true
}

// currentFile finds cur's file row by name (rows are sorted by file
// name, but a linear scan keeps no ordering assumption).
func currentFile(cur *TaskTrace, file string) *FileRecord {
	for i := range cur.Files {
		if cur.Files[i].File == file {
			return &cur.Files[i]
		}
	}
	return nil
}

type objectKey struct{ file, object string }

// ApplyDelta reassembles the cumulative checkpoint a delta record
// stands for: base's rows overlaid with delta's by key (file for file
// rows, file+object for object and mapped rows), the I/O trace
// concatenated, and the task header taken from the delta. Tables come
// out in the tracer's canonical sort orders. Row-level slices (Regions,
// Shape, the I/O records) alias base/delta — traces are read-only
// after decode, so the aliasing is safe and keeps reassembly cheap.
func ApplyDelta(base, delta *TaskTrace) *TaskTrace {
	out := &TaskTrace{
		Task:     delta.Task,
		StartNS:  delta.StartNS,
		EndNS:    delta.EndNS,
		Attempts: delta.Attempts,
		Failed:   delta.Failed,
	}

	if base.Objects != nil || delta.Objects != nil {
		repl := make(map[objectKey]*ObjectRecord, len(delta.Objects))
		for i := range delta.Objects {
			o := &delta.Objects[i]
			repl[objectKey{o.File, o.Object}] = o
		}
		out.Objects = make([]ObjectRecord, 0, len(base.Objects)+len(delta.Objects))
		seen := make(map[objectKey]bool, len(base.Objects))
		for i := range base.Objects {
			o := &base.Objects[i]
			key := objectKey{o.File, o.Object}
			seen[key] = true
			if r, ok := repl[key]; ok {
				out.Objects = append(out.Objects, *r)
			} else {
				out.Objects = append(out.Objects, *o)
			}
		}
		for i := range delta.Objects {
			o := &delta.Objects[i]
			if !seen[objectKey{o.File, o.Object}] {
				out.Objects = append(out.Objects, *o)
			}
		}
		sort.SliceStable(out.Objects, func(i, j int) bool {
			if out.Objects[i].File != out.Objects[j].File {
				return out.Objects[i].File < out.Objects[j].File
			}
			return out.Objects[i].Object < out.Objects[j].Object
		})
	}

	if base.Files != nil || delta.Files != nil {
		repl := make(map[string]*FileRecord, len(delta.Files))
		for i := range delta.Files {
			repl[delta.Files[i].File] = &delta.Files[i]
		}
		out.Files = make([]FileRecord, 0, len(base.Files)+len(delta.Files))
		seen := make(map[string]bool, len(base.Files))
		for i := range base.Files {
			f := &base.Files[i]
			seen[f.File] = true
			if r, ok := repl[f.File]; ok {
				out.Files = append(out.Files, *r)
			} else {
				out.Files = append(out.Files, *f)
			}
		}
		for i := range delta.Files {
			f := &delta.Files[i]
			if !seen[f.File] {
				out.Files = append(out.Files, *f)
			}
		}
		sort.SliceStable(out.Files, func(i, j int) bool { return out.Files[i].File < out.Files[j].File })
	}

	if base.Mapped != nil || delta.Mapped != nil {
		repl := make(map[objectKey]*MappedStat, len(delta.Mapped))
		for i := range delta.Mapped {
			m := &delta.Mapped[i]
			repl[objectKey{m.File, m.Object}] = m
		}
		out.Mapped = make([]MappedStat, 0, len(base.Mapped)+len(delta.Mapped))
		seen := make(map[objectKey]bool, len(base.Mapped))
		for i := range base.Mapped {
			m := &base.Mapped[i]
			key := objectKey{m.File, m.Object}
			seen[key] = true
			if r, ok := repl[key]; ok {
				out.Mapped = append(out.Mapped, *r)
			} else {
				out.Mapped = append(out.Mapped, *m)
			}
		}
		for i := range delta.Mapped {
			m := &delta.Mapped[i]
			if !seen[objectKey{m.File, m.Object}] {
				out.Mapped = append(out.Mapped, *m)
			}
		}
		sort.SliceStable(out.Mapped, func(i, j int) bool {
			if out.Mapped[i].File != out.Mapped[j].File {
				return out.Mapped[i].File < out.Mapped[j].File
			}
			return out.Mapped[i].Object < out.Mapped[j].Object
		})
	}

	if base.IOTrace != nil || delta.IOTrace != nil {
		out.IOTrace = make([]IORecord, 0, len(base.IOTrace)+len(delta.IOTrace))
		out.IOTrace = append(out.IOTrace, base.IOTrace...)
		out.IOTrace = append(out.IOTrace, delta.IOTrace...)
	}
	return out
}
