package trace

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"
)

// richTrace builds a deterministic pseudo-random trace exercising
// every field of every record type, including nil-versus-empty slice
// distinctions the codec must preserve.
func richTrace(seed int64) *TaskTrace {
	rng := rand.New(rand.NewSource(seed))
	str := func(prefix string) string {
		return prefix + "_" + string(rune('a'+rng.Intn(26)))
	}
	maybeInts := func() []int64 {
		switch rng.Intn(3) {
		case 0:
			return nil
		case 1:
			return []int64{}
		}
		s := make([]int64, rng.Intn(4)+1)
		for i := range s {
			s[i] = rng.Int63n(1 << 40)
		}
		return s
	}
	maybeExtents := func() []Extent {
		switch rng.Intn(3) {
		case 0:
			return nil
		case 1:
			return []Extent{}
		}
		s := make([]Extent, rng.Intn(4)+1)
		for i := range s {
			start := rng.Int63n(1 << 30)
			s[i] = Extent{Start: start, End: start + rng.Int63n(1<<20) + 1}
		}
		return s
	}
	t := &TaskTrace{
		Task:     "stage/task_" + str("t"),
		StartNS:  rng.Int63n(1 << 50),
		Attempts: rng.Intn(5),
		Failed:   rng.Intn(2) == 1,
	}
	t.EndNS = t.StartNS + rng.Int63n(1<<40)
	for i := 0; i < rng.Intn(6); i++ {
		acq := t.StartNS + rng.Int63n(1000)
		t.Objects = append(t.Objects, ObjectRecord{
			Task: t.Task, File: str("file"), Object: str("obj"), Type: "dataset",
			Datatype: str("dt"), Shape: maybeInts(), ElemSize: rng.Int63n(16),
			Layout: str("layout"), ChunkDims: maybeInts(),
			AcquiredNS: acq, ReleasedNS: acq + rng.Int63n(1000),
			Reads: rng.Int63n(100), Writes: rng.Int63n(100),
			BytesRead: rng.Int63n(1 << 30), BytesWritten: rng.Int63n(1 << 30),
		})
	}
	// At least one file record: mapped stats may only reference files
	// present in the file table (Validate enforces the join).
	for i := 0; i < rng.Intn(4)+1; i++ {
		open := t.StartNS + rng.Int63n(1000)
		meta, data := rng.Int63n(50), rng.Int63n(50)
		t.Files = append(t.Files, FileRecord{
			Task: t.Task, File: str("file"), OpenNS: open, CloseNS: open + rng.Int63n(5000),
			Ops: meta + data, Reads: rng.Int63n(40), Writes: rng.Int63n(40),
			BytesRead: rng.Int63n(1 << 28), BytesWritten: rng.Int63n(1 << 28),
			DataReads: rng.Int63n(30), DataWrites: rng.Int63n(30),
			SequentialOps: rng.Int63n(20), MetaOps: meta, DataOps: data,
			MetaBytes: rng.Int63n(1 << 20), DataBytes: rng.Int63n(1 << 28),
			Regions: maybeExtents(),
		})
	}
	for i := 0; i < rng.Intn(5); i++ {
		t.Mapped = append(t.Mapped, MappedStat{
			Task: t.Task, File: t.Files[rng.Intn(len(t.Files))].File, Object: str("obj"),
			MetaOps: rng.Int63n(50), DataOps: rng.Int63n(50),
			MetaBytes: rng.Int63n(1 << 20), DataBytes: rng.Int63n(1 << 28),
			Reads: rng.Int63n(40), Writes: rng.Int63n(40),
			Regions: maybeExtents(),
			FirstNS: rng.Int63n(1 << 50), LastNS: rng.Int63n(1 << 50),
		})
	}
	for i := 0; i < rng.Intn(20); i++ {
		t.IOTrace = append(t.IOTrace, IORecord{
			Seq: int64(i), WallNS: rng.Int63n(1 << 50), File: str("file"),
			Offset: rng.Int63n(1 << 30), Length: rng.Int63n(1 << 20),
			Write: rng.Intn(2) == 1, Meta: rng.Intn(2) == 1, Object: str("obj"),
		})
	}
	return t
}

// renameTrace renames the task consistently across all records so the
// result still validates.
func renameTrace(t *TaskTrace, name string) *TaskTrace {
	t.Task = name
	for i := range t.Objects {
		t.Objects[i].Task = name
	}
	for i := range t.Files {
		t.Files[i].Task = name
	}
	for i := range t.Mapped {
		t.Mapped[i].Task = name
	}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := richTrace(seed)
		var buf bytes.Buffer
		if err := tr.EncodeBinary(&buf); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("seed %d: binary round trip diverged:\n got %+v\nwant %+v", seed, got, tr)
		}
	}
}

func TestBinaryUnframedRoundTrip(t *testing.T) {
	tr := richTrace(7)
	var framed, unframed bytes.Buffer
	if err := tr.EncodeBinary(&framed); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinaryOpts(&unframed, BinaryOptions{Unframed: true}); err != nil {
		t.Fatal(err)
	}
	if unframed.Len() >= framed.Len() {
		t.Errorf("unframed (%d bytes) not smaller than framed (%d bytes)", unframed.Len(), framed.Len())
	}
	got, err := DecodeBinary(bytes.NewReader(unframed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("unframed round trip diverged")
	}
}

func TestDecodeSniffsBinary(t *testing.T) {
	tr := richTrace(3)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode did not sniff dtb: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("sniffed decode diverged from DecodeBinary")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	tr := richTrace(11)
	jn, err := tr.EncodedSizeIn(FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := tr.EncodedSizeIn(FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if bn >= jn {
		t.Errorf("binary %d bytes >= JSON %d bytes", bn, jn)
	}
}

func TestBinaryEncodingDeterministic(t *testing.T) {
	tr := richTrace(5)
	var a, b bytes.Buffer
	if err := tr.EncodeBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same trace differ")
	}
}

func TestDecodeBinaryCorruption(t *testing.T) {
	tr := richTrace(9)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 'X'
		if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
			t.Fatal("decode of bad magic succeeded")
		}
		// The sniffer routes it to JSON, which also fails — never a
		// silent success.
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatal("sniffed decode of bad magic succeeded")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(binaryMagic)] = 99
		if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(valid) / 4, len(valid) / 2, len(valid) - 1} {
			if _, err := DecodeBinary(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("decode of %d/%d bytes succeeded", cut, len(valid))
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), valid...), 0x00)
		if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Fatalf("want trailing-data error, got %v", err)
		}
	})
	t.Run("flipped body bytes detected", func(t *testing.T) {
		// Flipping any single post-header byte must never be silently
		// absorbed into an identical trace.
		for i := len(binaryMagic) + 2; i < len(valid); i += 7 {
			bad := append([]byte(nil), valid...)
			bad[i] ^= 0xFF
			got, err := DecodeBinary(bytes.NewReader(bad))
			if err == nil && reflect.DeepEqual(got, tr) {
				t.Fatalf("flip at byte %d decoded to an identical trace", i)
			}
		}
	})
}

func TestSaveFormatBinaryAndMixedLoadDir(t *testing.T) {
	dir := t.TempDir()
	a := renameTrace(richTrace(1), "alpha")
	b := renameTrace(richTrace(2), "beta")
	pa, err := a.SaveFormat(dir, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(pa, binarySuffix) {
		t.Errorf("binary save path %q lacks %q", pa, binarySuffix)
	}
	if _, err := b.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Load sniffs the binary file.
	got, err := Load(pa)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatal("binary Load round trip diverged")
	}

	// LoadDir picks up both formats and sorts by task.
	all, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Task != "alpha" || all[1].Task != "beta" {
		t.Fatalf("mixed LoadDir = %d traces", len(all))
	}
	if !reflect.DeepEqual(all[0], a) {
		t.Fatal("mixed LoadDir binary trace diverged from original")
	}
	// The JSON copy is compared against its own JSON round trip:
	// omitempty legitimately collapses empty-but-non-nil slices.
	var jbuf bytes.Buffer
	if err := b.Encode(&jbuf); err != nil {
		t.Fatal(err)
	}
	want, err := Decode(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all[1], want) {
		t.Fatal("mixed LoadDir JSON trace diverged from its JSON round trip")
	}
}

func TestLoadHashedBinary(t *testing.T) {
	dir := t.TempDir()
	tr := richTrace(4)
	path, err := tr.SaveFormat(dir, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	got, hash, err := LoadHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("LoadHashed binary trace diverged")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hash != HashBytes(data) {
		t.Fatal("LoadHashed hash is not the raw-byte content hash")
	}
	// Re-saving identical content keeps the key stable.
	if _, err := tr.SaveFormat(dir, FormatBinary); err != nil {
		t.Fatal(err)
	}
	if h2, err := HashFile(path); err != nil || h2 != hash {
		t.Fatalf("rewrite changed content hash: %v %v", h2, err)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"json": FormatJSON, "dtb": FormatBinary, "binary": FormatBinary, "dtb/v2": FormatBinary,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
	if FormatJSON.Suffix() != traceSuffix || FormatBinary.Suffix() != binarySuffix {
		t.Error("format suffixes wrong")
	}
	if FormatJSON.String() != "json" || FormatBinary.String() != "dtb" {
		t.Error("format names wrong")
	}
}
