package trace

// Write-ahead-log record framing, shared with internal/serve's
// segmented WAL. A WAL segment reuses the dtb framing idiom — a
// PNG-style magic, uvarint header fields, and length-prefixed records
// — with a CRC-32C per record so replay can distinguish a torn tail
// (crash mid-append: truncate and continue) from a clean end of
// segment:
//
//	header  magic "\x89DWL\r\n" + uvarint version (1) + uvarint
//	        first-sequence-number of the segment's records
//	record  uvarint payload length + 4-byte little-endian CRC-32C of
//	        the payload + payload bytes
//
// The payload is opaque to this layer; in practice it is one complete
// trace byte stream in either serialization (the dtb magic sniffs the
// format back out on replay). Any framing violation — a partial
// varint, a short payload, a CRC mismatch, an oversized length —
// reports ErrWALTorn so the segment owner can truncate to the last
// whole record instead of failing recovery. A genuine I/O failure
// (a disk fault, not bytes ending early) passes through unwrapped:
// mistaking it for a torn tail would let recovery truncate or delete
// acknowledged records over a transient error.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// walMagic opens every WAL segment file.
const walMagic = "\x89DWL\r\n"

// walVersion is the current segment wire-format version.
const walVersion = 1

// ErrWALTorn marks a record (or segment header) whose bytes end early
// or fail the checksum: the crash-truncated tail of a segment. It is
// recoverable by construction — everything before it replays.
var ErrWALTorn = errors.New("trace: wal: torn record")

// walCRC is the Castagnoli table shared by every record checksum.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// classifyWALErr wraps a read failure for the given context: bytes
// ending early (EOF after a partial frame) or a garbage varint are the
// shape of a crash-torn tail and report ErrWALTorn; anything else is a
// genuine I/O fault and passes through un-torn so the caller fails
// recovery instead of truncating acknowledged data. (ReadUvarint's
// overflow error is unexported, hence the string match.)
func classifyWALErr(err error, context string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || strings.Contains(err.Error(), "overflow") {
		return fmt.Errorf("%w: %s: %v", ErrWALTorn, context, err)
	}
	return fmt.Errorf("trace: wal: %s: %w", context, err)
}

// WriteWALHeader writes a segment header and returns the bytes
// written. firstSeq is the global sequence number of the segment's
// first record.
func WriteWALHeader(w io.Writer, firstSeq uint64) (int, error) {
	var buf [len(walMagic) + 2*binary.MaxVarintLen64]byte
	n := copy(buf[:], walMagic)
	n += binary.PutUvarint(buf[n:], walVersion)
	n += binary.PutUvarint(buf[n:], firstSeq)
	written, err := w.Write(buf[:n])
	if err != nil {
		return written, fmt.Errorf("trace: wal: write header: %w", err)
	}
	return written, nil
}

// ReadWALHeader reads a segment header, returning the segment's first
// record sequence number and the bytes consumed. A short, mangled or
// wrong-version header reports ErrWALTorn: the segment holds nothing
// recoverable.
func ReadWALHeader(r *bufio.Reader) (firstSeq uint64, n int, err error) {
	cr := &countingByteReader{r: r}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return 0, cr.n, classifyWALErr(err, "magic")
	}
	if string(magic) != walMagic {
		return 0, cr.n, fmt.Errorf("%w: bad magic %q", ErrWALTorn, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, cr.n, classifyWALErr(err, "version")
	}
	if version != walVersion {
		return 0, cr.n, fmt.Errorf("%w: unsupported version %d (want %d)", ErrWALTorn, version, walVersion)
	}
	firstSeq, err = binary.ReadUvarint(cr)
	if err != nil {
		return 0, cr.n, classifyWALErr(err, "first sequence")
	}
	return firstSeq, cr.n, nil
}

// WriteWALRecord frames one payload — uvarint length, CRC-32C,
// payload — and returns the bytes written. The write is issued as a
// single Write call so an interrupted append leaves at most one torn
// tail, never an interleaving.
func WriteWALRecord(w io.Writer, payload []byte) (int, error) {
	if len(payload) > maxBinaryLen {
		return 0, fmt.Errorf("trace: wal: record of %d bytes exceeds limit %d", len(payload), maxBinaryLen)
	}
	buf := make([]byte, 0, binary.MaxVarintLen64+4+len(payload))
	var head [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(head[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(head[n:], crc32.Checksum(payload, walCRC))
	buf = append(buf, head[:n+4]...)
	buf = append(buf, payload...)
	written, err := w.Write(buf)
	if err != nil {
		return written, fmt.Errorf("trace: wal: write record: %w", err)
	}
	return written, nil
}

// ReadWALRecord reads the next framed record, returning the payload
// and the bytes consumed. A clean end of segment (zero bytes before
// EOF) returns io.EOF; anything short, oversized or checksum-mangled
// returns ErrWALTorn wrapped with detail.
func ReadWALRecord(r *bufio.Reader) (payload []byte, n int, err error) {
	cr := &countingByteReader{r: r}
	length, err := binary.ReadUvarint(cr)
	if err != nil {
		if err == io.EOF && cr.n == 0 {
			return nil, 0, io.EOF
		}
		return nil, cr.n, classifyWALErr(err, "length")
	}
	if length > maxBinaryLen {
		return nil, cr.n, fmt.Errorf("%w: record of %d bytes exceeds limit %d", ErrWALTorn, length, maxBinaryLen)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(cr, crcBytes[:]); err != nil {
		return nil, cr.n, classifyWALErr(err, "checksum")
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(cr, payload); err != nil {
		return nil, cr.n, classifyWALErr(err, "payload")
	}
	if got, want := crc32.Checksum(payload, walCRC), binary.LittleEndian.Uint32(crcBytes[:]); got != want {
		return nil, cr.n, fmt.Errorf("%w: checksum %08x != %08x", ErrWALTorn, got, want)
	}
	return payload, cr.n, nil
}

// countingByteReader counts consumed bytes so torn-tail truncation can
// land exactly on the last whole record.
type countingByteReader struct {
	r *bufio.Reader
	n int
}

func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func (c *countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}
