//go:build race

package trace

// raceEnabled reports whether the race detector is active; allocation
// budget tests skip under it (instrumentation and sync.Pool's race-
// mode randomization skew counts).
const raceEnabled = true
