package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"unsafe"
)

// TestEncodeBinaryAllocBudget holds the pooled encoder to its
// contract: once the pool is warm, encoding a representative trace
// performs no heap allocations beyond (rarely) pool bookkeeping. A
// regression here — a per-record buffer, a closure per frame, a
// rebuilt intern table — fails in CI instead of only moving a BENCH
// number.
func TestEncodeBinaryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	tr := richTrace(7)
	// Warm the pool so buffer growth is amortized out.
	for i := 0; i < 4; i++ {
		if err := tr.EncodeBinary(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := tr.EncodeBinary(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("dtb encode allocates %.1f times per run with a warm pool, budget 1", allocs)
	}
	// The unframed path shares the machinery; keep it on budget too.
	allocs = testing.AllocsPerRun(200, func() {
		if err := tr.EncodeBinaryOpts(io.Discard, BinaryOptions{Unframed: true}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("unframed dtb encode allocates %.1f times per run with a warm pool, budget 1", allocs)
	}
}

// TestDecodeBinaryBytesZeroCopy checks the opt-in zero-copy decode:
// the result is deeply equal to the copying decode, and its string
// fields genuinely alias the input buffer instead of copying it.
func TestDecodeBinaryBytesZeroCopy(t *testing.T) {
	tr := richTrace(3)
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	copied, err := DecodeBinaryBytes(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := DecodeBinaryBytes(data, DecodeOptions{ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(copied, zero) {
		t.Fatal("zero-copy decode differs from copying decode")
	}
	if !reflect.DeepEqual(zero, tr) {
		t.Fatal("zero-copy decode differs from original trace")
	}

	aliases := func(s string) bool {
		if len(s) == 0 || len(data) == 0 {
			return false
		}
		p := uintptr(unsafe.Pointer(unsafe.StringData(s)))
		lo := uintptr(unsafe.Pointer(&data[0]))
		return p >= lo && p < lo+uintptr(len(data))
	}
	if !aliases(zero.Task) {
		t.Error("zero-copy task name does not alias the input buffer")
	}
	if copied.Task != "" && aliases(copied.Task) {
		t.Error("copying decode aliases the input buffer")
	}
}

// TestDecodeBytesSniffs pins the byte-slice entry point used by Load,
// LoadHashed and serve push: both serializations decode through it.
func TestDecodeBytesSniffs(t *testing.T) {
	tr := richTrace(11)
	var bin, js bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(&js); err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBytes(bin.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeBytes(js.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin, tr) || !reflect.DeepEqual(fromJSON, tr) {
		t.Fatal("DecodeBytes round trip diverges")
	}
	if _, err := DecodeBytes(append(bin.Bytes(), 0x00)); err == nil {
		t.Fatal("DecodeBytes accepted trailing binary garbage")
	}
}
