package trace

// The dtb/v2 binary trace wire format.
//
// JSON traces repeat every field name and every task/file/object name
// per record; on the 3000-task synthetic workflow that decode cost
// dominates analysis wall time. dtb/v2 collapses it with a per-file
// string-intern table and varint integers:
//
//	header   magic "\x89DTB\r\n" + uvarint version (2) + uvarint flags
//	strings  uvarint count, then per string: uvarint len + raw bytes
//	task     uvarint task-ref, varint start/end, uvarint attempts,
//	         1-byte failed
//	sections objects, files, mapped, io-trace, in that order; each is
//	         a nil-preserving uvarint count (0 = nil slice, n+1 = n
//	         records) followed by the records
//	trailer  exactly EOF; trailing bytes are rejected
//
// All integers are varints (signed fields zigzag-encoded), strings are
// uvarint indexes into the intern table, and slices use the same
// nil-preserving count scheme as sections so a JSON→dtb→JSON round
// trip is deeply equal, not just semantically equal. When flag bit 0
// is set (the default) every record is additionally framed with a
// uvarint byte length, so a streaming decoder can verify record
// boundaries and skip damaged or unknown records without buffering the
// whole file.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic opens every dtb file. The PNG-style first byte keeps the
// file from sniffing as text; the embedded CRLF catches newline
// mangling in transfer.
const binaryMagic = "\x89DTB\r\n"

// binaryVersion is the current wire-format version ("v2": v1 was the
// JSON encoding).
const binaryVersion = 2

// flagFramed marks files whose records carry a uvarint length prefix.
const flagFramed = 1

// maxBinaryLen bounds any single length read from the wire (string
// bytes, slice counts, record frames) so a corrupt count cannot drive
// a multi-gigabyte allocation before the read fails.
const maxBinaryLen = 1 << 26

// Format selects a trace serialization.
type Format int

const (
	// FormatJSON is the v1 encoding: one JSON document per trace.
	FormatJSON Format = iota
	// FormatBinary is the dtb/v2 encoding.
	FormatBinary
)

// String names the format as ParseFormat accepts it.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "dtb"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Suffix returns the on-disk trace file suffix for the format.
func (f Format) Suffix() string {
	if f == FormatBinary {
		return binarySuffix
	}
	return traceSuffix
}

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "dtb", "binary", "dtb/v2":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (json, dtb)", s)
}

// BinaryOptions tunes EncodeBinaryOpts.
type BinaryOptions struct {
	// Unframed drops the per-record length prefixes, trading the
	// decoder's boundary verification for a slightly smaller file.
	Unframed bool
}

// EncodeBinary writes the trace in dtb/v2 with per-record framing.
func (t *TaskTrace) EncodeBinary(w io.Writer) error {
	return t.EncodeBinaryOpts(w, BinaryOptions{})
}

// EncodeFormat writes the trace to w in the given format.
func (t *TaskTrace) EncodeFormat(w io.Writer, f Format) error {
	if f == FormatBinary {
		return t.EncodeBinary(w)
	}
	return t.Encode(w)
}

// EncodedSizeIn returns the serialized byte size of the trace in the
// given format: the Figure 9d storage-overhead metric, comparable
// across formats.
func (t *TaskTrace) EncodedSizeIn(f Format) (int64, error) {
	var cw countingWriter
	if err := t.EncodeFormat(&cw, f); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// stringTable interns strings in first-use order, so encoding is
// deterministic: the same trace always produces the same bytes.
type stringTable struct {
	index map[string]uint64
	list  []string
}

func (st *stringTable) intern(s string) {
	if _, ok := st.index[s]; ok {
		return
	}
	st.index[s] = uint64(len(st.list))
	st.list = append(st.list, s)
}

// buildStringTable walks the trace in wire order and interns every
// string field.
func buildStringTable(t *TaskTrace) *stringTable {
	st := &stringTable{index: make(map[string]uint64, 16)}
	st.intern(t.Task)
	for _, o := range t.Objects {
		st.intern(o.Task)
		st.intern(o.File)
		st.intern(o.Object)
		st.intern(o.Type)
		st.intern(o.Datatype)
		st.intern(o.Layout)
	}
	for _, f := range t.Files {
		st.intern(f.Task)
		st.intern(f.File)
	}
	for _, m := range t.Mapped {
		st.intern(m.Task)
		st.intern(m.File)
		st.intern(m.Object)
	}
	for _, r := range t.IOTrace {
		st.intern(r.File)
		st.intern(r.Object)
	}
	return st
}

// binWriter is a sticky-error varint writer.
type binWriter struct {
	w   io.Writer
	st  *stringTable
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *binWriter) raw(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *binWriter) uv(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *binWriter) v(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

func (e *binWriter) str(s string) {
	idx, ok := e.st.index[s]
	if !ok && e.err == nil {
		e.err = fmt.Errorf("trace: dtb encode: string %q missing from intern table", s)
		return
	}
	e.uv(idx)
}

func (e *binWriter) boolByte(b bool) {
	var p [1]byte
	if b {
		p[0] = 1
	}
	e.raw(p[:])
}

// sliceLen writes the nil-preserving count: 0 for a nil slice, n+1
// for a slice of n elements (so empty-but-non-nil survives the round
// trip, matching what a JSON re-encode would preserve in memory).
func (e *binWriter) sliceLen(n int, isNil bool) {
	if isNil {
		e.uv(0)
		return
	}
	e.uv(uint64(n) + 1)
}

func (e *binWriter) ints(s []int64) {
	e.sliceLen(len(s), s == nil)
	for _, v := range s {
		e.v(v)
	}
}

func (e *binWriter) extents(s []Extent) {
	e.sliceLen(len(s), s == nil)
	for _, x := range s {
		e.v(x.Start)
		e.v(x.End)
	}
}

// EncodeBinaryOpts writes the trace in dtb/v2 with explicit options.
func (t *TaskTrace) EncodeBinaryOpts(w io.Writer, opts BinaryOptions) error {
	bw := bufio.NewWriter(w)
	st := buildStringTable(t)
	e := &binWriter{w: bw, st: st}

	e.raw([]byte(binaryMagic))
	e.uv(binaryVersion)
	var flags uint64
	if !opts.Unframed {
		flags |= flagFramed
	}
	e.uv(flags)

	e.uv(uint64(len(st.list)))
	for _, s := range st.list {
		e.uv(uint64(len(s)))
		e.raw([]byte(s))
	}

	e.str(t.Task)
	e.v(t.StartNS)
	e.v(t.EndNS)
	e.v(int64(t.Attempts))
	e.boolByte(t.Failed)

	// frame buffers one record when framing is on; records stream
	// straight to bw otherwise.
	var rec recordBuffer
	frame := func(encode func(*binWriter)) {
		if opts.Unframed {
			encode(e)
			return
		}
		rec.reset()
		fe := &binWriter{w: &rec, st: st}
		encode(fe)
		if fe.err != nil && e.err == nil {
			e.err = fe.err
		}
		e.uv(uint64(len(rec.b)))
		e.raw(rec.b)
	}

	e.sliceLen(len(t.Objects), t.Objects == nil)
	for i := range t.Objects {
		o := &t.Objects[i]
		frame(func(e *binWriter) {
			e.str(o.Task)
			e.str(o.File)
			e.str(o.Object)
			e.str(o.Type)
			e.str(o.Datatype)
			e.ints(o.Shape)
			e.v(o.ElemSize)
			e.str(o.Layout)
			e.ints(o.ChunkDims)
			e.v(o.AcquiredNS)
			e.v(o.ReleasedNS)
			e.v(o.Reads)
			e.v(o.Writes)
			e.v(o.BytesRead)
			e.v(o.BytesWritten)
		})
	}

	e.sliceLen(len(t.Files), t.Files == nil)
	for i := range t.Files {
		f := &t.Files[i]
		frame(func(e *binWriter) {
			e.str(f.Task)
			e.str(f.File)
			e.v(f.OpenNS)
			e.v(f.CloseNS)
			e.v(f.Ops)
			e.v(f.Reads)
			e.v(f.Writes)
			e.v(f.BytesRead)
			e.v(f.BytesWritten)
			e.v(f.DataReads)
			e.v(f.DataWrites)
			e.v(f.SequentialOps)
			e.v(f.MetaOps)
			e.v(f.DataOps)
			e.v(f.MetaBytes)
			e.v(f.DataBytes)
			e.extents(f.Regions)
		})
	}

	e.sliceLen(len(t.Mapped), t.Mapped == nil)
	for i := range t.Mapped {
		m := &t.Mapped[i]
		frame(func(e *binWriter) {
			e.str(m.Task)
			e.str(m.File)
			e.str(m.Object)
			e.v(m.MetaOps)
			e.v(m.DataOps)
			e.v(m.MetaBytes)
			e.v(m.DataBytes)
			e.v(m.Reads)
			e.v(m.Writes)
			e.extents(m.Regions)
			e.v(m.FirstNS)
			e.v(m.LastNS)
		})
	}

	e.sliceLen(len(t.IOTrace), t.IOTrace == nil)
	for i := range t.IOTrace {
		r := &t.IOTrace[i]
		frame(func(e *binWriter) {
			e.v(r.Seq)
			e.v(r.WallNS)
			e.str(r.File)
			e.v(r.Offset)
			e.v(r.Length)
			e.boolByte(r.Write)
			e.boolByte(r.Meta)
			e.str(r.Object)
		})
	}

	if e.err != nil {
		return fmt.Errorf("trace: dtb encode: %w", e.err)
	}
	return bw.Flush()
}

// recordBuffer is a reusable byte sink for framed record encoding.
type recordBuffer struct{ b []byte }

func (r *recordBuffer) reset() { r.b = r.b[:0] }

func (r *recordBuffer) Write(p []byte) (int, error) {
	r.b = append(r.b, p...)
	return len(p), nil
}

// binReader is a sticky-error varint reader. It counts consumed bytes
// so the framed decode path can verify each record ends exactly on its
// frame boundary.
type binReader struct {
	r     *bufio.Reader
	table []string
	n     int64
	err   error
}

func (d *binReader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (d *binReader) ReadByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err == nil {
		d.n++
	}
	return b, err
}

func (d *binReader) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d)
	if err != nil {
		d.fail(fmt.Errorf("read uvarint: %w", err))
	}
	return v
}

func (d *binReader) v() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d)
	if err != nil {
		d.fail(fmt.Errorf("read varint: %w", err))
	}
	return v
}

func (d *binReader) boolByte() bool {
	if d.err != nil {
		return false
	}
	b, err := d.ReadByte()
	if err != nil {
		d.fail(fmt.Errorf("read bool: %w", err))
		return false
	}
	switch b {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail(fmt.Errorf("bool byte = %#x", b))
	return false
}

func (d *binReader) bytesN(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > maxBinaryLen {
		d.fail(fmt.Errorf("length %d exceeds limit %d", n, maxBinaryLen))
		return nil
	}
	p := make([]byte, n)
	read, err := io.ReadFull(d.r, p)
	d.n += int64(read)
	if err != nil {
		d.fail(fmt.Errorf("read %d bytes: %w", n, err))
		return nil
	}
	return p
}

func (d *binReader) str() string {
	idx := d.uv()
	if d.err != nil {
		return ""
	}
	if idx >= uint64(len(d.table)) {
		d.fail(fmt.Errorf("string ref %d outside table of %d", idx, len(d.table)))
		return ""
	}
	return d.table[idx]
}

// sliceLen reverses binWriter.sliceLen: ok is false for a nil slice.
func (d *binReader) sliceLen() (n int, ok bool) {
	v := d.uv()
	if d.err != nil || v == 0 {
		return 0, false
	}
	if v-1 > maxBinaryLen {
		d.fail(fmt.Errorf("slice length %d exceeds limit %d", v-1, maxBinaryLen))
		return 0, false
	}
	return int(v - 1), true
}

func (d *binReader) ints() []int64 {
	n, ok := d.sliceLen()
	if !ok {
		return nil
	}
	s := make([]int64, 0, capHint(n))
	for i := 0; i < n && d.err == nil; i++ {
		s = append(s, d.v())
	}
	return s
}

func (d *binReader) extents() []Extent {
	n, ok := d.sliceLen()
	if !ok {
		return nil
	}
	s := make([]Extent, 0, capHint(n))
	for i := 0; i < n && d.err == nil; i++ {
		s = append(s, Extent{Start: d.v(), End: d.v()})
	}
	return s
}

// capHint bounds pre-allocation from wire-supplied counts: the reader
// hits EOF long before a lying count forces a huge allocation.
func capHint(n int) int {
	const maxPrealloc = 1 << 12
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// DecodeBinary reads one dtb/v2 trace from r and validates it.
func DecodeBinary(r io.Reader) (*TaskTrace, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	t, err := decodeBinary(br)
	if err != nil {
		return nil, fmt.Errorf("trace: dtb decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeBinary(br *bufio.Reader) (*TaskTrace, error) {
	d := &binReader{r: br}
	magic := d.bytesN(uint64(len(binaryMagic)))
	if d.err != nil {
		return nil, fmt.Errorf("header: %w", d.err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	if v := d.uv(); d.err == nil && v != binaryVersion {
		return nil, fmt.Errorf("unsupported version %d (want %d)", v, binaryVersion)
	}
	flags := d.uv()
	framed := flags&flagFramed != 0

	nstr := d.uv()
	if d.err == nil && nstr > maxBinaryLen {
		return nil, fmt.Errorf("string table count %d exceeds limit", nstr)
	}
	d.table = make([]string, 0, capHint(int(nstr)))
	for i := uint64(0); i < nstr && d.err == nil; i++ {
		d.table = append(d.table, string(d.bytesN(d.uv())))
	}

	t := &TaskTrace{
		Task:    d.str(),
		StartNS: d.v(),
		EndNS:   d.v(),
	}
	t.Attempts = int(d.v())
	t.Failed = d.boolByte()

	// record runs decode inside the frame accounting: when framing is
	// on, each record's declared length must match the bytes consumed.
	record := func(decode func()) {
		if d.err != nil {
			return
		}
		if !framed {
			decode()
			return
		}
		want := d.uv()
		if d.err != nil {
			return
		}
		if want > maxBinaryLen {
			d.fail(fmt.Errorf("record frame %d exceeds limit %d", want, maxBinaryLen))
			return
		}
		start := d.n
		decode()
		if d.err == nil && d.n-start != int64(want) {
			d.fail(fmt.Errorf("record frame declared %d bytes, consumed %d", want, d.n-start))
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.Objects = make([]ObjectRecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			var o ObjectRecord
			record(func() {
				o.Task = d.str()
				o.File = d.str()
				o.Object = d.str()
				o.Type = d.str()
				o.Datatype = d.str()
				o.Shape = d.ints()
				o.ElemSize = d.v()
				o.Layout = d.str()
				o.ChunkDims = d.ints()
				o.AcquiredNS = d.v()
				o.ReleasedNS = d.v()
				o.Reads = d.v()
				o.Writes = d.v()
				o.BytesRead = d.v()
				o.BytesWritten = d.v()
			})
			t.Objects = append(t.Objects, o)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.Files = make([]FileRecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			var f FileRecord
			record(func() {
				f.Task = d.str()
				f.File = d.str()
				f.OpenNS = d.v()
				f.CloseNS = d.v()
				f.Ops = d.v()
				f.Reads = d.v()
				f.Writes = d.v()
				f.BytesRead = d.v()
				f.BytesWritten = d.v()
				f.DataReads = d.v()
				f.DataWrites = d.v()
				f.SequentialOps = d.v()
				f.MetaOps = d.v()
				f.DataOps = d.v()
				f.MetaBytes = d.v()
				f.DataBytes = d.v()
				f.Regions = d.extents()
			})
			t.Files = append(t.Files, f)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.Mapped = make([]MappedStat, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			var m MappedStat
			record(func() {
				m.Task = d.str()
				m.File = d.str()
				m.Object = d.str()
				m.MetaOps = d.v()
				m.DataOps = d.v()
				m.MetaBytes = d.v()
				m.DataBytes = d.v()
				m.Reads = d.v()
				m.Writes = d.v()
				m.Regions = d.extents()
				m.FirstNS = d.v()
				m.LastNS = d.v()
			})
			t.Mapped = append(t.Mapped, m)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.IOTrace = make([]IORecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			var r IORecord
			record(func() {
				r.Seq = d.v()
				r.WallNS = d.v()
				r.File = d.str()
				r.Offset = d.v()
				r.Length = d.v()
				r.Write = d.boolByte()
				r.Meta = d.boolByte()
				r.Object = d.str()
			})
			t.IOTrace = append(t.IOTrace, r)
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trailing data after trace")
	}
	return t, nil
}

// SniffFormat reports the serialization a trace byte stream uses,
// from its first bytes: binary traces open with the dtb magic,
// anything else is treated as JSON.
func SniffFormat(prefix []byte) Format {
	if len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic {
		return FormatBinary
	}
	return FormatJSON
}
