package trace

// The dtb/v2 binary trace wire format.
//
// JSON traces repeat every field name and every task/file/object name
// per record; on the 3000-task synthetic workflow that decode cost
// dominates analysis wall time. dtb/v2 collapses it with a per-file
// string-intern table and varint integers:
//
//	header   magic "\x89DTB\r\n" + uvarint version (2) + uvarint flags
//	strings  uvarint count, then per string: uvarint len + raw bytes
//	task     uvarint task-ref, varint start/end, uvarint attempts,
//	         1-byte failed
//	sections objects, files, mapped, io-trace, in that order; each is
//	         a nil-preserving uvarint count (0 = nil slice, n+1 = n
//	         records) followed by the records
//	trailer  exactly EOF; trailing bytes are rejected
//
// All integers are varints (signed fields zigzag-encoded), strings are
// uvarint indexes into the intern table, and slices use the same
// nil-preserving count scheme as sections so a JSON→dtb→JSON round
// trip is deeply equal, not just semantically equal. When flag bit 0
// is set (the default) every record is additionally framed with a
// uvarint byte length, so a decoder can verify record boundaries and a
// zero-copy decode can alias the input buffer safely.
//
// The encoder is single-pass and amortized zero-allocation: pooled
// encoder state (intern table, body/record/header scratch buffers) is
// reused across calls, strings are interned on demand while the body
// is encoded — first use during encoding visits strings in exactly the
// order the old pre-walk did, so the bytes are unchanged — and the
// header plus string table is built afterwards, giving exactly two
// Write calls per trace. BENCH_5 measured the old two-pass,
// alloc-per-record encoder at 0.93× JSON encode speed; this one exists
// to win that back.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"unsafe"
)

// binaryMagic opens every dtb file. The PNG-style first byte keeps the
// file from sniffing as text; the embedded CRLF catches newline
// mangling in transfer.
const binaryMagic = "\x89DTB\r\n"

// binaryVersion is the current wire-format version ("v2": v1 was the
// JSON encoding).
const binaryVersion = 2

// flagFramed marks files whose records carry a uvarint length prefix.
const flagFramed = 1

// flagIncremental marks a streamed checkpoint record: a cumulative
// snapshot of a still-running task's trace. When set, a uvarint
// checkpoint sequence number follows the flags field in the header.
// Incremental records are a transport framing for the live analysis
// path, not trace files: the plain decoders (and hence Load/LoadDir)
// reject them so a stray checkpoint can never skew a batch analysis.
const flagIncremental = 2

// flagDelta marks an incremental checkpoint that carries only the
// records changed since a base checkpoint, instead of the full
// cumulative trace-so-far. When set, a uvarint base sequence number
// (the checkpoint the delta applies on top of) follows the checkpoint
// sequence in the header. A delta is meaningless without the
// incremental flag; decoders reject that combination. Reassembly is
// record-level replacement: see Diff/ApplyDelta in delta.go.
const flagDelta = 4

// maxBinaryLen bounds any single length read from the wire (string
// bytes, slice counts, record frames) so a corrupt count cannot drive
// a multi-gigabyte allocation before the read fails.
const maxBinaryLen = 1 << 26

// Format selects a trace serialization.
type Format int

const (
	// FormatJSON is the v1 encoding: one JSON document per trace.
	FormatJSON Format = iota
	// FormatBinary is the dtb/v2 encoding.
	FormatBinary
)

// String names the format as ParseFormat accepts it.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "dtb"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Suffix returns the on-disk trace file suffix for the format.
func (f Format) Suffix() string {
	if f == FormatBinary {
		return binarySuffix
	}
	return traceSuffix
}

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "dtb", "binary", "dtb/v2":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (json, dtb)", s)
}

// BinaryOptions tunes EncodeBinaryOpts.
type BinaryOptions struct {
	// Unframed drops the per-record length prefixes, trading the
	// decoder's boundary verification for a slightly smaller file.
	Unframed bool
	// Incremental marks the record as a streamed mid-task checkpoint
	// (cumulative trace-so-far). CheckpointSeq orders checkpoints of
	// the same task: a consumer keeps the highest one it has seen.
	Incremental bool
	// CheckpointSeq is written only when Incremental is set.
	CheckpointSeq uint64
	// Delta marks the checkpoint as a delta against an earlier
	// checkpoint of the same task: the record carries only the rows
	// that changed since DeltaBaseSeq (see Diff/ApplyDelta). Requires
	// Incremental; EncodeBinaryOpts rejects a delta-without-incremental
	// combination rather than writing an undecodable header.
	Delta bool
	// DeltaBaseSeq is the checkpoint sequence the delta applies on top
	// of; written only when Delta is set.
	DeltaBaseSeq uint64
}

// RecordMeta describes the stream framing of a decoded record.
type RecordMeta struct {
	// Incremental is true for streamed checkpoint records (cumulative
	// mid-task snapshots); false for complete trace files.
	Incremental bool
	// CheckpointSeq orders checkpoints of one task; zero unless
	// Incremental.
	CheckpointSeq uint64
	// Delta is true for delta-framed checkpoints: the decoded trace
	// holds only the rows changed since the base checkpoint and must be
	// reassembled with ApplyDelta before use.
	Delta bool
	// DeltaBaseSeq is the checkpoint the delta applies on top of; zero
	// unless Delta.
	DeltaBaseSeq uint64
}

// EncodeBinary writes the trace in dtb/v2 with per-record framing.
func (t *TaskTrace) EncodeBinary(w io.Writer) error {
	return t.EncodeBinaryOpts(w, BinaryOptions{})
}

// EncodeFormat writes the trace to w in the given format.
func (t *TaskTrace) EncodeFormat(w io.Writer, f Format) error {
	if f == FormatBinary {
		return t.EncodeBinary(w)
	}
	return t.Encode(w)
}

// EncodedSizeIn returns the serialized byte size of the trace in the
// given format: the Figure 9d storage-overhead metric, comparable
// across formats.
func (t *TaskTrace) EncodedSizeIn(f Format) (int64, error) {
	var cw countingWriter
	if err := t.EncodeFormat(&cw, f); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// binaryEncoder holds all encode state: the string-intern table
// (first-use order, so encoding stays deterministic), the body buffer,
// the framed-record scratch buffer and the header buffer. Encoders are
// pooled and reused; between uses the intern table is cleared and the
// buffers are truncated in place, so a steady stream of traces of
// similar shape encodes without allocating.
type binaryEncoder struct {
	index       map[string]uint64
	list        []string
	body        []byte
	rec         []byte
	hdr         []byte
	framed      bool
	incremental bool
	delta       bool
	ckptSeq     uint64
	baseSeq     uint64
	inRec       bool
}

var encoderPool = sync.Pool{
	New: func() any { return &binaryEncoder{index: make(map[string]uint64, 16)} },
}

// maxPooledEncoderBytes bounds the buffer capacity an encoder may keep
// when pooled, so one outlier trace does not pin its footprint.
const maxPooledEncoderBytes = 1 << 20

func getEncoder() *binaryEncoder { return encoderPool.Get().(*binaryEncoder) }

func putEncoder(e *binaryEncoder) {
	if cap(e.body)+cap(e.rec)+cap(e.hdr) > maxPooledEncoderBytes || len(e.list) > 1<<12 {
		return
	}
	clear(e.index)
	e.list = e.list[:0]
	e.body = e.body[:0]
	e.rec = e.rec[:0]
	e.hdr = e.hdr[:0]
	encoderPool.Put(e)
}

// buf returns the buffer currently being encoded into: the framed
// record scratch inside beginRecord/endRecord, the body otherwise.
func (e *binaryEncoder) buf() *[]byte {
	if e.inRec {
		return &e.rec
	}
	return &e.body
}

func (e *binaryEncoder) uv(v uint64) {
	b := e.buf()
	*b = binary.AppendUvarint(*b, v)
}

func (e *binaryEncoder) v(v int64) {
	b := e.buf()
	*b = binary.AppendVarint(*b, v)
}

func (e *binaryEncoder) boolByte(v bool) {
	b := e.buf()
	if v {
		*b = append(*b, 1)
	} else {
		*b = append(*b, 0)
	}
}

// str writes the string's intern-table reference, assigning the next
// index on first use. Because the body is encoded in wire order, the
// table comes out in exactly the first-use order the format requires.
func (e *binaryEncoder) str(s string) {
	idx, ok := e.index[s]
	if !ok {
		idx = uint64(len(e.list))
		e.index[s] = idx
		e.list = append(e.list, s)
	}
	e.uv(idx)
}

// sliceLen writes the nil-preserving count: 0 for a nil slice, n+1
// for a slice of n elements (so empty-but-non-nil survives the round
// trip, matching what a JSON re-encode would preserve in memory).
func (e *binaryEncoder) sliceLen(n int, isNil bool) {
	if isNil {
		e.uv(0)
		return
	}
	e.uv(uint64(n) + 1)
}

func (e *binaryEncoder) ints(s []int64) {
	e.sliceLen(len(s), s == nil)
	for _, v := range s {
		e.v(v)
	}
}

func (e *binaryEncoder) extents(s []Extent) {
	e.sliceLen(len(s), s == nil)
	for _, x := range s {
		e.v(x.Start)
		e.v(x.End)
	}
}

// beginRecord redirects encoding into the record scratch buffer when
// framing is on; endRecord prefixes the scratch with its length and
// appends it to the body. Unframed encoding goes straight to the body.
func (e *binaryEncoder) beginRecord() {
	if !e.framed {
		return
	}
	e.rec = e.rec[:0]
	e.inRec = true
}

func (e *binaryEncoder) endRecord() {
	if !e.framed {
		return
	}
	e.inRec = false
	e.body = binary.AppendUvarint(e.body, uint64(len(e.rec)))
	e.body = append(e.body, e.rec...)
}

func (e *binaryEncoder) encodeBody(t *TaskTrace) {
	e.str(t.Task)
	e.v(t.StartNS)
	e.v(t.EndNS)
	e.v(int64(t.Attempts))
	e.boolByte(t.Failed)

	e.sliceLen(len(t.Objects), t.Objects == nil)
	for i := range t.Objects {
		o := &t.Objects[i]
		e.beginRecord()
		e.str(o.Task)
		e.str(o.File)
		e.str(o.Object)
		e.str(o.Type)
		e.str(o.Datatype)
		e.ints(o.Shape)
		e.v(o.ElemSize)
		e.str(o.Layout)
		e.ints(o.ChunkDims)
		e.v(o.AcquiredNS)
		e.v(o.ReleasedNS)
		e.v(o.Reads)
		e.v(o.Writes)
		e.v(o.BytesRead)
		e.v(o.BytesWritten)
		e.endRecord()
	}

	e.sliceLen(len(t.Files), t.Files == nil)
	for i := range t.Files {
		f := &t.Files[i]
		e.beginRecord()
		e.str(f.Task)
		e.str(f.File)
		e.v(f.OpenNS)
		e.v(f.CloseNS)
		e.v(f.Ops)
		e.v(f.Reads)
		e.v(f.Writes)
		e.v(f.BytesRead)
		e.v(f.BytesWritten)
		e.v(f.DataReads)
		e.v(f.DataWrites)
		e.v(f.SequentialOps)
		e.v(f.MetaOps)
		e.v(f.DataOps)
		e.v(f.MetaBytes)
		e.v(f.DataBytes)
		e.extents(f.Regions)
		e.endRecord()
	}

	e.sliceLen(len(t.Mapped), t.Mapped == nil)
	for i := range t.Mapped {
		m := &t.Mapped[i]
		e.beginRecord()
		e.str(m.Task)
		e.str(m.File)
		e.str(m.Object)
		e.v(m.MetaOps)
		e.v(m.DataOps)
		e.v(m.MetaBytes)
		e.v(m.DataBytes)
		e.v(m.Reads)
		e.v(m.Writes)
		e.extents(m.Regions)
		e.v(m.FirstNS)
		e.v(m.LastNS)
		e.endRecord()
	}

	e.sliceLen(len(t.IOTrace), t.IOTrace == nil)
	for i := range t.IOTrace {
		r := &t.IOTrace[i]
		e.beginRecord()
		e.v(r.Seq)
		e.v(r.WallNS)
		e.str(r.File)
		e.v(r.Offset)
		e.v(r.Length)
		e.boolByte(r.Write)
		e.boolByte(r.Meta)
		e.str(r.Object)
		e.endRecord()
	}
}

func (e *binaryEncoder) encodeHeader() {
	e.hdr = append(e.hdr[:0], binaryMagic...)
	e.hdr = binary.AppendUvarint(e.hdr, binaryVersion)
	var flags uint64
	if e.framed {
		flags |= flagFramed
	}
	if e.incremental {
		flags |= flagIncremental
	}
	if e.delta {
		flags |= flagDelta
	}
	e.hdr = binary.AppendUvarint(e.hdr, flags)
	if e.incremental {
		e.hdr = binary.AppendUvarint(e.hdr, e.ckptSeq)
	}
	if e.delta {
		e.hdr = binary.AppendUvarint(e.hdr, e.baseSeq)
	}
	e.hdr = binary.AppendUvarint(e.hdr, uint64(len(e.list)))
	for _, s := range e.list {
		e.hdr = binary.AppendUvarint(e.hdr, uint64(len(s)))
		e.hdr = append(e.hdr, s...)
	}
}

// EncodeBinaryOpts writes the trace in dtb/v2 with explicit options.
func (t *TaskTrace) EncodeBinaryOpts(w io.Writer, opts BinaryOptions) error {
	if opts.Delta && !opts.Incremental {
		return fmt.Errorf("trace: dtb encode: delta framing requires an incremental checkpoint")
	}
	e := getEncoder()
	defer putEncoder(e)
	e.framed = !opts.Unframed
	e.incremental = opts.Incremental
	e.delta = opts.Delta
	e.ckptSeq, e.baseSeq = 0, 0
	if opts.Incremental {
		e.ckptSeq = opts.CheckpointSeq
	}
	if opts.Delta {
		e.baseSeq = opts.DeltaBaseSeq
	}
	e.encodeBody(t)
	e.encodeHeader()
	if _, err := w.Write(e.hdr); err != nil {
		return fmt.Errorf("trace: dtb encode: %w", err)
	}
	if _, err := w.Write(e.body); err != nil {
		return fmt.Errorf("trace: dtb encode: %w", err)
	}
	return nil
}

// DecodeOptions tunes byte-slice decoding.
type DecodeOptions struct {
	// ZeroCopy makes decoded string fields alias the input buffer
	// instead of copying each intern-table entry. The caller must keep
	// the buffer alive and unmodified for the lifetime of the decoded
	// trace. Framing (the default encode mode) is verified as usual, so
	// a torn or corrupt buffer is rejected rather than aliased.
	ZeroCopy bool
}

// byteDecoder is a sticky-error cursor over a complete dtb buffer. It
// replaces the old bufio-based one-byte-at-a-time reader: all varints
// decode straight out of the slice, and the string table optionally
// aliases it (ZeroCopy).
type byteDecoder struct {
	data   []byte
	off    int
	table  []string
	framed bool
	zero   bool
	err    error
}

func (d *byteDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *byteDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(fmt.Errorf("read uvarint: %w", io.ErrUnexpectedEOF))
		} else {
			d.fail(fmt.Errorf("read uvarint: overflow"))
		}
		return 0
	}
	d.off += n
	return v
}

func (d *byteDecoder) v() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(fmt.Errorf("read varint: %w", io.ErrUnexpectedEOF))
		} else {
			d.fail(fmt.Errorf("read varint: overflow"))
		}
		return 0
	}
	d.off += n
	return v
}

func (d *byteDecoder) boolByte() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail(fmt.Errorf("read bool: %w", io.ErrUnexpectedEOF))
		return false
	}
	b := d.data[d.off]
	d.off++
	switch b {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail(fmt.Errorf("bool byte = %#x", b))
	return false
}

// bytesN returns the next n raw bytes as a sub-slice of the buffer
// (no copy; callers copy if they retain).
func (d *byteDecoder) bytesN(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > maxBinaryLen {
		d.fail(fmt.Errorf("length %d exceeds limit %d", n, maxBinaryLen))
		return nil
	}
	if uint64(len(d.data)-d.off) < n {
		d.fail(fmt.Errorf("read %d bytes: %w", n, io.ErrUnexpectedEOF))
		return nil
	}
	p := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return p
}

func (d *byteDecoder) str() string {
	idx := d.uv()
	if d.err != nil {
		return ""
	}
	if idx >= uint64(len(d.table)) {
		d.fail(fmt.Errorf("string ref %d outside table of %d", idx, len(d.table)))
		return ""
	}
	return d.table[idx]
}

// sliceLen reverses binaryEncoder.sliceLen: ok is false for a nil
// slice.
func (d *byteDecoder) sliceLen() (n int, ok bool) {
	v := d.uv()
	if d.err != nil || v == 0 {
		return 0, false
	}
	if v-1 > maxBinaryLen {
		d.fail(fmt.Errorf("slice length %d exceeds limit %d", v-1, maxBinaryLen))
		return 0, false
	}
	return int(v - 1), true
}

func (d *byteDecoder) ints() []int64 {
	n, ok := d.sliceLen()
	if !ok {
		return nil
	}
	s := make([]int64, 0, capHint(n))
	for i := 0; i < n && d.err == nil; i++ {
		s = append(s, d.v())
	}
	return s
}

func (d *byteDecoder) extents() []Extent {
	n, ok := d.sliceLen()
	if !ok {
		return nil
	}
	s := make([]Extent, 0, capHint(n))
	for i := 0; i < n && d.err == nil; i++ {
		s = append(s, Extent{Start: d.v(), End: d.v()})
	}
	return s
}

// beginRecord reads a framed record's declared length and returns the
// offset the record must end at (-1 when unframed or already failed);
// endRecord verifies the decode consumed exactly the declared bytes.
func (d *byteDecoder) beginRecord() int {
	if !d.framed || d.err != nil {
		return -1
	}
	want := d.uv()
	if d.err != nil {
		return -1
	}
	if want > maxBinaryLen {
		d.fail(fmt.Errorf("record frame %d exceeds limit %d", want, maxBinaryLen))
		return -1
	}
	return d.off + int(want)
}

func (d *byteDecoder) endRecord(end int) {
	if end < 0 || d.err != nil {
		return
	}
	if d.off != end {
		d.fail(fmt.Errorf("record frame declared end at offset %d, consumed to %d", end, d.off))
	}
}

// capHint bounds pre-allocation from wire-supplied counts: the reader
// hits EOF long before a lying count forces a huge allocation.
func capHint(n int) int {
	const maxPrealloc = 1 << 12
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// DecodeBinary reads one dtb/v2 trace from r and validates it.
func DecodeBinary(r io.Reader) (*TaskTrace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: dtb decode: %w", err)
	}
	return DecodeBinaryBytes(data, DecodeOptions{})
}

// ErrIncrementalRecord is returned by the plain decoders when handed a
// streamed checkpoint record: only meta-aware consumers (the live
// ingest path) may accept those.
var ErrIncrementalRecord = errors.New("trace: incremental checkpoint record (not a complete trace)")

// DecodeBinaryBytes decodes one dtb/v2 trace held completely in data
// and validates it. With opts.ZeroCopy the decoded trace's strings
// alias data; otherwise it is self-contained. Incremental checkpoint
// records are rejected with ErrIncrementalRecord.
func DecodeBinaryBytes(data []byte, opts DecodeOptions) (*TaskTrace, error) {
	t, meta, err := decodeBinaryBytes(data, opts.ZeroCopy)
	if err != nil {
		return nil, fmt.Errorf("trace: dtb decode: %w", err)
	}
	if meta.Incremental {
		return nil, ErrIncrementalRecord
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeBytes decodes one trace held completely in data, sniffing the
// serialization from the leading bytes like Decode.
func DecodeBytes(data []byte) (*TaskTrace, error) {
	return DecodeBytesOpts(data, DecodeOptions{})
}

// DecodeBytesOpts is DecodeBytes with explicit options (ZeroCopy
// applies only to the binary format; JSON always copies).
func DecodeBytesOpts(data []byte, opts DecodeOptions) (*TaskTrace, error) {
	if SniffFormat(data) == FormatBinary {
		return DecodeBinaryBytes(data, opts)
	}
	return Decode(bytes.NewReader(data))
}

// DecodeBytesMeta decodes one trace record of either serialization and
// reports its stream framing. Unlike DecodeBytesOpts it accepts
// incremental checkpoint records; JSON records are never incremental.
func DecodeBytesMeta(data []byte, opts DecodeOptions) (*TaskTrace, RecordMeta, error) {
	if SniffFormat(data) != FormatBinary {
		t, err := Decode(bytes.NewReader(data))
		return t, RecordMeta{}, err
	}
	t, meta, err := decodeBinaryBytes(data, opts.ZeroCopy)
	if err != nil {
		return nil, RecordMeta{}, fmt.Errorf("trace: dtb decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, RecordMeta{}, err
	}
	return t, meta, nil
}

// tableString materializes one intern-table entry: a copy by default,
// an alias of the input buffer under ZeroCopy.
func (d *byteDecoder) tableString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if d.zero {
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}

func decodeBinaryBytes(data []byte, zeroCopy bool) (*TaskTrace, RecordMeta, error) {
	var meta RecordMeta
	d := &byteDecoder{data: data, zero: zeroCopy}
	magic := d.bytesN(uint64(len(binaryMagic)))
	if d.err != nil {
		return nil, meta, fmt.Errorf("header: %w", d.err)
	}
	if string(magic) != binaryMagic {
		return nil, meta, fmt.Errorf("bad magic %q", magic)
	}
	if v := d.uv(); d.err == nil && v != binaryVersion {
		return nil, meta, fmt.Errorf("unsupported version %d (want %d)", v, binaryVersion)
	}
	flags := d.uv()
	d.framed = flags&flagFramed != 0
	if flags&flagIncremental != 0 {
		meta.Incremental = true
		meta.CheckpointSeq = d.uv()
	}
	if flags&flagDelta != 0 {
		if !meta.Incremental {
			return nil, meta, fmt.Errorf("delta flag without incremental flag")
		}
		meta.Delta = true
		meta.DeltaBaseSeq = d.uv()
	}

	nstr := d.uv()
	if d.err == nil && nstr > maxBinaryLen {
		return nil, meta, fmt.Errorf("string table count %d exceeds limit", nstr)
	}
	d.table = make([]string, 0, capHint(int(nstr)))
	for i := uint64(0); i < nstr && d.err == nil; i++ {
		d.table = append(d.table, d.tableString(d.bytesN(d.uv())))
	}

	t := &TaskTrace{
		Task:    d.str(),
		StartNS: d.v(),
		EndNS:   d.v(),
	}
	t.Attempts = int(d.v())
	t.Failed = d.boolByte()

	if n, ok := d.sliceLen(); ok {
		t.Objects = make([]ObjectRecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			end := d.beginRecord()
			var o ObjectRecord
			o.Task = d.str()
			o.File = d.str()
			o.Object = d.str()
			o.Type = d.str()
			o.Datatype = d.str()
			o.Shape = d.ints()
			o.ElemSize = d.v()
			o.Layout = d.str()
			o.ChunkDims = d.ints()
			o.AcquiredNS = d.v()
			o.ReleasedNS = d.v()
			o.Reads = d.v()
			o.Writes = d.v()
			o.BytesRead = d.v()
			o.BytesWritten = d.v()
			d.endRecord(end)
			t.Objects = append(t.Objects, o)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.Files = make([]FileRecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			end := d.beginRecord()
			var f FileRecord
			f.Task = d.str()
			f.File = d.str()
			f.OpenNS = d.v()
			f.CloseNS = d.v()
			f.Ops = d.v()
			f.Reads = d.v()
			f.Writes = d.v()
			f.BytesRead = d.v()
			f.BytesWritten = d.v()
			f.DataReads = d.v()
			f.DataWrites = d.v()
			f.SequentialOps = d.v()
			f.MetaOps = d.v()
			f.DataOps = d.v()
			f.MetaBytes = d.v()
			f.DataBytes = d.v()
			f.Regions = d.extents()
			d.endRecord(end)
			t.Files = append(t.Files, f)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.Mapped = make([]MappedStat, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			end := d.beginRecord()
			var m MappedStat
			m.Task = d.str()
			m.File = d.str()
			m.Object = d.str()
			m.MetaOps = d.v()
			m.DataOps = d.v()
			m.MetaBytes = d.v()
			m.DataBytes = d.v()
			m.Reads = d.v()
			m.Writes = d.v()
			m.Regions = d.extents()
			m.FirstNS = d.v()
			m.LastNS = d.v()
			d.endRecord(end)
			t.Mapped = append(t.Mapped, m)
		}
	}

	if n, ok := d.sliceLen(); ok {
		t.IOTrace = make([]IORecord, 0, capHint(n))
		for i := 0; i < n && d.err == nil; i++ {
			end := d.beginRecord()
			var r IORecord
			r.Seq = d.v()
			r.WallNS = d.v()
			r.File = d.str()
			r.Offset = d.v()
			r.Length = d.v()
			r.Write = d.boolByte()
			r.Meta = d.boolByte()
			r.Object = d.str()
			d.endRecord(end)
			t.IOTrace = append(t.IOTrace, r)
		}
	}

	if d.err != nil {
		return nil, meta, d.err
	}
	if d.off != len(d.data) {
		return nil, meta, fmt.Errorf("trailing data after trace")
	}
	return t, meta, nil
}

// SniffFormat reports the serialization a trace byte stream uses,
// from its first bytes: binary traces open with the dtb magic,
// anything else is treated as JSON.
func SniffFormat(prefix []byte) Format {
	if len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic {
		return FormatBinary
	}
	return FormatJSON
}
