package trace

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMergeExtents(t *testing.T) {
	cases := []struct {
		in, want []Extent
	}{
		{nil, nil},
		{[]Extent{{0, 10}}, []Extent{{0, 10}}},
		{[]Extent{{0, 10}, {5, 15}}, []Extent{{0, 15}}},
		{[]Extent{{10, 20}, {0, 5}}, []Extent{{0, 5}, {10, 20}}},
		{[]Extent{{0, 5}, {5, 10}}, []Extent{{0, 10}}}, // touching merge
		{[]Extent{{0, 100}, {10, 20}}, []Extent{{0, 100}}},
		{[]Extent{{3, 4}, {1, 2}, {2, 3}}, []Extent{{1, 4}}},
	}
	for i, c := range cases {
		if got := MergeExtents(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: MergeExtents = %v, want %v", i, got, c.want)
		}
	}
}

func TestMergeExtentsProperties(t *testing.T) {
	f := func(pairs []uint16) bool {
		var in []Extent
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := int64(pairs[i]), int64(pairs[i+1])
			if a > b {
				a, b = b, a
			}
			in = append(in, Extent{a, b + 1})
		}
		out := MergeExtents(in)
		// Sorted and disjoint.
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Start < out[j].Start }) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Start <= out[i-1].End {
				return false
			}
		}
		// Total coverage preserved: every input point is inside some output.
		for _, e := range in {
			covered := false
			for _, o := range out {
				if e.Start >= o.Start && e.End <= o.End {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtentBasics(t *testing.T) {
	e := Extent{10, 30}
	if e.Len() != 20 {
		t.Error("Len wrong")
	}
	if !e.Overlaps(Extent{25, 40}) {
		t.Error("Overlaps wrong")
	}
	if e.Overlaps(Extent{40, 50}) {
		t.Error("disjoint extents overlap")
	}
	// Half-open semantics: [10,30) and [30,40) are adjacent, sharing no
	// byte — they merge (see MergeExtents) but must not overlap. The old
	// inclusive-End comparison falsely reported overlap here.
	if e.Overlaps(Extent{30, 40}) || (Extent{0, 10}).Overlaps(e) {
		t.Error("adjacent extents reported as overlapping")
	}
	if !e.Overlaps(Extent{29, 31}) || !e.Overlaps(Extent{0, 11}) {
		t.Error("one-byte overlap missed")
	}
	if e.Overlaps(Extent{15, 15}) {
		t.Error("empty extent overlaps")
	}
}

// TestOverlapsAgainstMergeExtents pins Overlaps to MergeExtents'
// half-open coalescing: two non-empty extents merge into one extent
// exactly when they overlap or touch, and "touch" is precisely the
// adjacent, non-overlapping case.
func TestOverlapsAgainstMergeExtents(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		mk := func(x, y uint16) Extent {
			s, e := int64(x), int64(y)
			if s > e {
				s, e = e, s
			}
			return Extent{s, e + 1} // non-empty half-open extent
		}
		a, b := mk(a1, a2), mk(b1, b2)
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		merged := MergeExtents([]Extent{a, b})
		touching := a.End == b.Start || b.End == a.Start
		switch {
		case a.Overlaps(b):
			// Overlapping extents share a byte, so they cannot be merely
			// adjacent, and they must coalesce.
			return !touching && len(merged) == 1
		case touching:
			// Adjacent extents merge but do not overlap.
			return len(merged) == 1
		default:
			return len(merged) == 2
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sampleTrace() *TaskTrace {
	return &TaskTrace{
		Task:    "stage1/task0",
		StartNS: 100,
		EndNS:   500,
		Objects: []ObjectRecord{{
			Task: "stage1/task0", File: "a.h5", Object: "/g/d",
			Type: "dataset", Datatype: "float64", Shape: []int64{8},
			ElemSize: 8, Layout: "contiguous",
			AcquiredNS: 110, ReleasedNS: 300,
			Reads: 1, Writes: 2, BytesRead: 64, BytesWritten: 128,
		}},
		Files: []FileRecord{{
			Task: "stage1/task0", File: "a.h5",
			OpenNS: 100, CloseNS: 450,
			Ops: 7, Reads: 3, Writes: 4,
			BytesRead: 100, BytesWritten: 200,
			MetaOps: 5, DataOps: 2, MetaBytes: 60, DataBytes: 240,
			Regions: []Extent{{0, 48}, {512, 1024}},
		}},
		Mapped: []MappedStat{{
			Task: "stage1/task0", File: "a.h5", Object: "/g/d",
			MetaOps: 2, DataOps: 2, MetaBytes: 20, DataBytes: 240,
			Reads: 1, Writes: 3,
			Regions: []Extent{{512, 1024}}, FirstNS: 110, LastNS: 290,
		}},
		IOTrace: []IORecord{{Seq: 0, WallNS: 120, File: "a.h5", Offset: 0, Length: 48, Write: true, Meta: true}},
	}
}

func TestTraceValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTrace()
	bad.Task = ""
	if bad.Validate() == nil {
		t.Error("empty task accepted")
	}
	bad = sampleTrace()
	bad.EndNS = 0
	if bad.Validate() == nil {
		t.Error("negative duration accepted")
	}
	bad = sampleTrace()
	bad.Objects[0].Task = "other"
	if bad.Validate() == nil {
		t.Error("foreign object record accepted")
	}
	bad = sampleTrace()
	bad.Files[0].Ops = 99
	if bad.Validate() == nil {
		t.Error("inconsistent op counts accepted")
	}
	bad = sampleTrace()
	bad.Objects[0].ReleasedNS = 0
	if bad.Validate() == nil {
		t.Error("negative object lifetime accepted")
	}
}

func TestLifetimes(t *testing.T) {
	tr := sampleTrace()
	if tr.Objects[0].Lifetime() != 190*time.Nanosecond {
		t.Error("object lifetime wrong")
	}
	if tr.Files[0].Lifetime() != 350*time.Nanosecond {
		t.Error("file lifetime wrong")
	}
	if tr.Mapped[0].Ops() != 4 || tr.Mapped[0].Bytes() != 260 {
		t.Error("mapped totals wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
	sz, err := tr.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if sz != int64(buf.Cap()) && sz <= 0 {
		t.Error("EncodedSize non-positive")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := Decode(bytes.NewReader([]byte(`{"task":""}`))); err == nil {
		t.Error("invalid trace decoded")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace()
	path, err := tr.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != tr.Task {
		t.Error("loaded wrong task")
	}
	tr2 := sampleTrace()
	tr2.Task = "stage2/task0"
	tr2.Objects = nil
	tr2.Files = nil
	tr2.Mapped = nil
	if _, err := tr2.Save(dir); err != nil {
		t.Fatal(err)
	}
	all, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Task != "stage1/task0" || all[1].Task != "stage2/task0" {
		t.Fatalf("LoadDir = %d traces", len(all))
	}
}

func TestManifest(t *testing.T) {
	dir := t.TempDir()
	// Missing manifest: nil, no error.
	m, err := LoadManifest(dir)
	if err != nil || m != nil {
		t.Fatalf("missing manifest: %v, %v", m, err)
	}
	want := &Manifest{
		Workflow:   "pyflextrkr",
		TaskOrder:  []string{"t1", "t2"},
		Stages:     map[string][]string{"s1": {"t1"}, "s2": {"t2"}},
		StageOrder: []string{"s1", "s2"},
	}
	if err := SaveManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest round trip: %+v", got)
	}
}

func TestFileNames(t *testing.T) {
	tr := sampleTrace()
	tr.Files = append(tr.Files, FileRecord{Task: tr.Task, File: "b.h5", OpenNS: 1, CloseNS: 2},
		FileRecord{Task: tr.Task, File: "a.h5", OpenNS: 3, CloseNS: 4})
	names := tr.FileNames()
	if !reflect.DeepEqual(names, []string{"a.h5", "b.h5"}) {
		t.Fatalf("FileNames = %v", names)
	}
}
