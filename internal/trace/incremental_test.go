package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// encodeIncremental is the test shorthand for an incremental record.
func encodeIncremental(t *testing.T, tr *TaskTrace, seq uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeBinaryOpts(&buf, BinaryOptions{Incremental: true, CheckpointSeq: seq}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIncrementalRoundTripMeta(t *testing.T) {
	tr := richTrace(3)
	for _, seq := range []uint64{0, 1, 7, 1 << 40} {
		data := encodeIncremental(t, tr, seq)
		got, meta, err := DecodeBytesMeta(data, DecodeOptions{})
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if !meta.Incremental || meta.CheckpointSeq != seq {
			t.Fatalf("seq %d: meta = %+v", seq, meta)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("seq %d: incremental round trip diverged", seq)
		}
	}
}

func TestDecodeBytesMetaPlainRecords(t *testing.T) {
	tr := richTrace(5)

	var dtb bytes.Buffer
	if err := tr.EncodeBinary(&dtb); err != nil {
		t.Fatal(err)
	}
	got, meta, err := DecodeBytesMeta(dtb.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta != (RecordMeta{}) {
		t.Fatalf("plain dtb record decoded with meta %+v", meta)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("plain dtb round trip diverged")
	}

	jt := sampleTrace()
	var js bytes.Buffer
	if err := jt.Encode(&js); err != nil {
		t.Fatal(err)
	}
	got, meta, err = DecodeBytesMeta(js.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta != (RecordMeta{}) {
		t.Fatalf("JSON record decoded with meta %+v", meta)
	}
	if !reflect.DeepEqual(got, jt) {
		t.Fatal("JSON round trip diverged")
	}
}

// Plain decoders must refuse checkpoint records: a stray checkpoint in
// a trace directory could otherwise silently skew a batch analysis
// with a task's partial counters.
func TestPlainDecodersRejectIncremental(t *testing.T) {
	tr := richTrace(9)
	data := encodeIncremental(t, tr, 4)

	if _, err := DecodeBinaryBytes(data, DecodeOptions{}); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("DecodeBinaryBytes err = %v, want ErrIncrementalRecord", err)
	}
	if _, err := DecodeBytes(data); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("DecodeBytes err = %v, want ErrIncrementalRecord", err)
	}
	if _, err := DecodeBinary(bytes.NewReader(data)); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("DecodeBinary err = %v, want ErrIncrementalRecord", err)
	}
	if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("Decode err = %v, want ErrIncrementalRecord", err)
	}

	// And through the file loaders: LoadDir must fail loudly, not skip.
	dir := t.TempDir()
	path := filepath.Join(dir, TraceFileName(tr.Task, FormatBinary))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("Load err = %v, want ErrIncrementalRecord", err)
	}
	if _, err := LoadDir(dir); !errors.Is(err, ErrIncrementalRecord) {
		t.Fatalf("LoadDir err = %v, want ErrIncrementalRecord", err)
	}
}

// The checkpoint seq lives in the header, so two checkpoints of
// identical cumulative state still have distinct bytes (and distinct
// content hashes, which the ingest dedup relies on).
func TestIncrementalSeqChangesBytes(t *testing.T) {
	tr := richTrace(1)
	a := encodeIncremental(t, tr, 1)
	b := encodeIncremental(t, tr, 2)
	if bytes.Equal(a, b) {
		t.Fatal("checkpoint seq not reflected in encoded bytes")
	}
	if HashBytes(a) == HashBytes(b) {
		t.Fatal("checkpoint seq not reflected in content hash")
	}
}

// A truncated incremental header (flag set, seq missing) must fail
// cleanly rather than decode as something else.
func TestIncrementalTruncatedHeader(t *testing.T) {
	data := encodeIncremental(t, richTrace(2), 300) // multi-byte uvarint seq
	// Locate the header: magic + version uvarint + flags uvarint, then
	// chop inside the checkpoint-seq uvarint.
	cut := len(binaryMagic) + 1 + 1 + 1
	if _, _, err := DecodeBytesMeta(data[:cut], DecodeOptions{}); err == nil {
		t.Fatal("truncated checkpoint header decoded")
	}
}
