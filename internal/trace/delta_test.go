package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// canonical sorts a trace's tables into the tracer's finalize orders
// (delta reassembly reproduces exactly these, so round-trip tests
// start from them like real checkpoints do).
func canonical(t *TaskTrace) *TaskTrace {
	sort.SliceStable(t.Objects, func(i, j int) bool {
		if t.Objects[i].File != t.Objects[j].File {
			return t.Objects[i].File < t.Objects[j].File
		}
		return t.Objects[i].Object < t.Objects[j].Object
	})
	sort.SliceStable(t.Files, func(i, j int) bool { return t.Files[i].File < t.Files[j].File })
	sort.SliceStable(t.Mapped, func(i, j int) bool {
		if t.Mapped[i].File != t.Mapped[j].File {
			return t.Mapped[i].File < t.Mapped[j].File
		}
		return t.Mapped[i].Object < t.Mapped[j].Object
	})
	return t
}

// dedupeKeys drops duplicate-keyed rows (keeping the first) from a
// canonically sorted trace. The tracer's profilers are map-keyed so
// real checkpoints never carry duplicates, and Diff deliberately
// refuses them — but richTrace can emit colliding names.
func dedupeKeys(t *TaskTrace) *TaskTrace {
	if len(t.Objects) > 0 {
		out := t.Objects[:1]
		for _, o := range t.Objects[1:] {
			last := out[len(out)-1]
			if o.File != last.File || o.Object != last.Object {
				out = append(out, o)
			}
		}
		t.Objects = out
	}
	if len(t.Files) > 0 {
		out := t.Files[:1]
		for _, f := range t.Files[1:] {
			if f.File != out[len(out)-1].File {
				out = append(out, f)
			}
		}
		t.Files = out
	}
	if len(t.Mapped) > 0 {
		out := t.Mapped[:1]
		for _, m := range t.Mapped[1:] {
			last := out[len(out)-1]
			if m.File != last.File || m.Object != last.Object {
				out = append(out, m)
			}
		}
		t.Mapped = out
	}
	return t
}

// cloneTrace deep-copies via the binary codec (whose round trip is
// pinned lossless by TestBinaryRoundTrip).
func cloneTrace(t *testing.T, tr *TaskTrace) *TaskTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeBytesMeta(buf.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// grow mutates cur the way a running task's next checkpoint would:
// counters on existing rows advance, new rows appear, the I/O trace
// extends, the end timestamp moves forward. Tables stay canonically
// sorted afterwards.
func grow(t *testing.T, rng *rand.Rand, cur *TaskTrace) *TaskTrace {
	t.Helper()
	next := cloneTrace(t, cur)
	next.EndNS += rng.Int63n(1000) + 1
	for i := range next.Files {
		if rng.Intn(2) == 0 {
			continue
		}
		f := &next.Files[i]
		f.DataOps += 2
		f.Ops += 2
		f.DataWrites += 2
		f.Writes += 2
		f.BytesWritten += 4096
		f.DataBytes += 4096
		f.CloseNS += 10
	}
	// New rows get names keyed by current table sizes so repeated grow
	// calls never collide on a row key (duplicate keys admit no exact
	// delta by design).
	if rng.Intn(2) == 0 {
		open := next.StartNS + rng.Int63n(5000)
		next.Files = append(next.Files, FileRecord{
			Task: next.Task, File: fmt.Sprintf("grown_file_%d", len(next.Files)),
			OpenNS: open, CloseNS: open + 100,
			Ops: 3, MetaOps: 1, DataOps: 2, Writes: 2, BytesWritten: 512,
			DataWrites: 2, DataBytes: 512,
		})
	}
	if len(next.Files) > 0 && rng.Intn(2) == 0 {
		f := next.Files[rng.Intn(len(next.Files))].File
		next.Mapped = append(next.Mapped, MappedStat{
			Task: next.Task, File: f, Object: fmt.Sprintf("grown_obj_%d", len(next.Mapped)),
			DataOps: 1, DataBytes: 256, Writes: 1,
			FirstNS: next.StartNS, LastNS: next.EndNS,
		})
	}
	if rng.Intn(2) == 0 {
		next.Objects = append(next.Objects, ObjectRecord{
			Task: next.Task, File: "grown_file", Object: fmt.Sprintf("grown_obj_%d", len(next.Objects)), Type: "dataset",
			AcquiredNS: next.StartNS, ReleasedNS: next.EndNS, Writes: 1, BytesWritten: 128,
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		next.IOTrace = append(next.IOTrace, IORecord{
			Seq: int64(len(next.IOTrace)), WallNS: next.EndNS,
			File: "grown_file", Length: 64, Write: true,
		})
	}
	return canonical(next)
}

// TestDiffApplyRoundTrip is the delta exactness property over a chain
// of grown checkpoints: every Diff succeeds, ApplyDelta reproduces the
// target deeply, and (the encoder being deterministic) the reassembled
// cumulative encodes to the exact bytes the cumulative checkpoint
// would have shipped.
func TestDiffApplyRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := dedupeKeys(canonical(richTrace(seed)))
		for step := 0; step < 4; step++ {
			cur := grow(t, rng, base)
			delta, ok := Diff(base, cur)
			if !ok {
				t.Fatalf("seed %d step %d: Diff reported no exact delta for monotone growth", seed, step)
			}
			got := ApplyDelta(base, delta)
			if !reflect.DeepEqual(got, cur) {
				t.Fatalf("seed %d step %d: ApplyDelta diverged:\n got %+v\nwant %+v", seed, step, got, cur)
			}
			var wantBytes, gotBytes bytes.Buffer
			if err := cur.EncodeBinaryOpts(&wantBytes, BinaryOptions{Incremental: true, CheckpointSeq: 7}); err != nil {
				t.Fatal(err)
			}
			if err := got.EncodeBinaryOpts(&gotBytes, BinaryOptions{Incremental: true, CheckpointSeq: 7}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBytes.Bytes(), gotBytes.Bytes()) {
				t.Fatalf("seed %d step %d: reassembled cumulative encodes differently", seed, step)
			}
			base = cur
		}
	}
}

// TestDiffShipsOnlyChangedRows pins the point of delta framing: a
// small change to a large trace yields a delta with only the touched
// rows, encoding far smaller than the cumulative record.
func TestDiffShipsOnlyChangedRows(t *testing.T) {
	base := dedupeKeys(canonical(richTrace(3)))
	for len(base.Files) < 40 {
		f := base.Files[0]
		f.File = f.File + "_" + string(rune('a'+len(base.Files)%26)) + string(rune('a'+len(base.Files)/26))
		base.Files = append(base.Files, f)
	}
	canonical(base)
	cur := cloneTrace(t, base)
	cur.EndNS += 50
	cur.Files[0].Ops++
	cur.Files[0].MetaOps++
	delta, ok := Diff(base, cur)
	if !ok {
		t.Fatal("no delta for a one-row change")
	}
	if len(delta.Files) != 1 || delta.Files[0].File != cur.Files[0].File {
		t.Fatalf("delta carries %d file rows, want exactly the changed one", len(delta.Files))
	}
	if len(delta.IOTrace) != 0 {
		t.Fatalf("delta carries %d io records, want 0", len(delta.IOTrace))
	}
	curSize, err := cur.EncodedSizeIn(FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	var db bytes.Buffer
	if err := delta.EncodeBinaryOpts(&db, BinaryOptions{Incremental: true, CheckpointSeq: 2, Delta: true, DeltaBaseSeq: 1}); err != nil {
		t.Fatal(err)
	}
	if int64(db.Len())*4 > curSize {
		t.Fatalf("delta %d bytes not ≪ cumulative %d bytes", db.Len(), curSize)
	}
}

// TestDiffRefusesNonMonotoneGrowth pins the cumulative-fallback cases:
// shrunk tables, a rewritten I/O prefix, or a renamed task admit no
// exact delta.
func TestDiffRefusesNonMonotoneGrowth(t *testing.T) {
	base := canonical(richTrace(5))
	if len(base.Files) == 0 || len(base.IOTrace) < 2 {
		base.Files = append(base.Files, FileRecord{Task: base.Task, File: "f"})
		base.IOTrace = append(base.IOTrace, IORecord{Seq: 0, File: "f"}, IORecord{Seq: 1, File: "f"})
		canonical(base)
	}

	shrunk := cloneTrace(t, base)
	shrunk.Files = shrunk.Files[:len(shrunk.Files)-1]
	if _, ok := Diff(base, shrunk); ok {
		t.Error("Diff accepted a shrunk file table")
	}

	rewritten := cloneTrace(t, base)
	rewritten.IOTrace[0].Length += 999
	if _, ok := Diff(base, rewritten); ok {
		t.Error("Diff accepted a rewritten I/O prefix")
	}

	renamed := cloneTrace(t, base)
	renamed.Task = base.Task + "_other"
	if _, ok := Diff(base, renamed); ok {
		t.Error("Diff accepted a cross-task delta")
	}
	if _, ok := Diff(nil, base); ok {
		t.Error("Diff accepted a nil base")
	}
}

// TestDeltaWireFraming pins the dtb/v2 delta header: both sequence
// numbers survive the round trip, plain decoders keep rejecting the
// record, and the invalid flag combinations fail loudly.
func TestDeltaWireFraming(t *testing.T) {
	base := dedupeKeys(canonical(richTrace(1)))
	cur := grow(t, rand.New(rand.NewSource(1)), base)
	delta, ok := Diff(base, cur)
	if !ok {
		t.Fatal("no delta")
	}
	var buf bytes.Buffer
	if err := delta.EncodeBinaryOpts(&buf, BinaryOptions{Incremental: true, CheckpointSeq: 9, Delta: true, DeltaBaseSeq: 4}); err != nil {
		t.Fatal(err)
	}
	got, meta, err := DecodeBytesMeta(buf.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := RecordMeta{Incremental: true, CheckpointSeq: 9, Delta: true, DeltaBaseSeq: 4}
	if meta != want {
		t.Fatalf("meta = %+v, want %+v", meta, want)
	}
	if !reflect.DeepEqual(got, delta) {
		t.Fatal("delta body did not round-trip")
	}
	// Plain decoders must reject the framing like any incremental record.
	if _, err := DecodeBinaryBytes(buf.Bytes(), DecodeOptions{}); err == nil {
		t.Fatal("plain decoder accepted a delta record")
	}

	// Delta without incremental: refused at encode...
	if err := delta.EncodeBinaryOpts(&bytes.Buffer{}, BinaryOptions{Delta: true, DeltaBaseSeq: 4}); err == nil {
		t.Fatal("encoder accepted delta without incremental")
	}
	// ...and at decode, for a hand-crafted header.
	hdr := []byte(binaryMagic)
	hdr = append(hdr, binaryVersion)        // version uvarint
	hdr = append(hdr, flagFramed|flagDelta) // flags uvarint: delta, not incremental
	if _, _, err := DecodeBytesMeta(hdr, DecodeOptions{}); err == nil {
		t.Fatal("decoder accepted delta flag without incremental flag")
	}
}
