package trace

import (
	"reflect"
	"testing"
)

func rankTrace(rank int, start int64) *TaskTrace {
	task := "sim/rank" + string(rune('0'+rank))
	return &TaskTrace{
		Task: task, StartNS: start, EndNS: start + 100,
		Objects: []ObjectRecord{{
			Task: task, File: "shared.h5", Object: "/d", Type: "dataset",
			Datatype: "float64", AcquiredNS: start + 1, ReleasedNS: start + 90,
			Reads: 1, Writes: 2, BytesRead: 10, BytesWritten: 20,
		}},
		Files: []FileRecord{{
			Task: task, File: "shared.h5", OpenNS: start, CloseNS: start + 95,
			Ops: 5, Reads: 2, Writes: 3, BytesRead: 10, BytesWritten: 20,
			DataReads: 1, DataWrites: 2, MetaOps: 2, DataOps: 3,
			MetaBytes: 4, DataBytes: 26, SequentialOps: 1,
			Regions: []Extent{{Start: int64(rank) * 100, End: int64(rank)*100 + 50}},
		}},
		Mapped: []MappedStat{{
			Task: task, File: "shared.h5", Object: "/d",
			MetaOps: 1, DataOps: 3, MetaBytes: 4, DataBytes: 26,
			Reads: 2, Writes: 3, FirstNS: start + 1, LastNS: start + 80,
			Regions: []Extent{{Start: int64(rank) * 100, End: int64(rank)*100 + 50}},
		}},
		IOTrace: []IORecord{{Seq: int64(rank), WallNS: start + 5, File: "shared.h5",
			Offset: int64(rank) * 100, Length: 50}},
	}
}

func TestMergeRanks(t *testing.T) {
	parts := []*TaskTrace{rankTrace(1, 1000), rankTrace(0, 500), rankTrace(2, 1500)}
	merged := Merge("sim", parts)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.Task != "sim" {
		t.Errorf("task = %q", merged.Task)
	}
	if merged.StartNS != 500 || merged.EndNS != 1600 {
		t.Errorf("envelope = [%d,%d]", merged.StartNS, merged.EndNS)
	}
	// One object record with summed access counts.
	if len(merged.Objects) != 1 {
		t.Fatalf("objects = %d", len(merged.Objects))
	}
	o := merged.Objects[0]
	if o.Reads != 3 || o.Writes != 6 || o.BytesWritten != 60 {
		t.Errorf("object sums: %+v", o)
	}
	if o.AcquiredNS != 501 || o.ReleasedNS != 1590 {
		t.Errorf("object lifetime: [%d,%d]", o.AcquiredNS, o.ReleasedNS)
	}
	// One file record with summed stats and merged disjoint regions.
	if len(merged.Files) != 1 {
		t.Fatalf("files = %d", len(merged.Files))
	}
	fr := merged.Files[0]
	if fr.Ops != 15 || fr.DataReads != 3 || fr.DataWrites != 6 {
		t.Errorf("file sums: %+v", fr)
	}
	wantRegions := []Extent{{0, 50}, {100, 150}, {200, 250}}
	if !reflect.DeepEqual(fr.Regions, wantRegions) {
		t.Errorf("regions = %v", fr.Regions)
	}
	// Mapped stats aggregated the same way.
	if len(merged.Mapped) != 1 || merged.Mapped[0].DataOps != 9 {
		t.Errorf("mapped = %+v", merged.Mapped)
	}
	// Raw records in wall order.
	if len(merged.IOTrace) != 3 {
		t.Fatalf("iotrace = %d", len(merged.IOTrace))
	}
	for i := 1; i < 3; i++ {
		if merged.IOTrace[i].WallNS < merged.IOTrace[i-1].WallNS {
			t.Error("iotrace out of order")
		}
	}
}

func TestMergeUnsetTimestamps(t *testing.T) {
	// A rank that never timed an event records 0. Zeros must not clobber
	// another rank's recorded minimum, in either merge order: the unset
	// rank arriving second used to reset the min to 0, and arriving first
	// it used to pin it there (0 compares below every real timestamp).
	timed := rankTrace(0, 500)
	unset := rankTrace(1, 0)
	unset.StartNS = 0
	unset.Objects[0].AcquiredNS = 0
	unset.Files[0].OpenNS = 0
	unset.Mapped[0].FirstNS = 0

	for name, parts := range map[string][]*TaskTrace{
		"unset-second": {timed, unset},
		"unset-first":  {unset, timed},
	} {
		merged := Merge("sim", parts)
		if merged.StartNS != 500 {
			t.Errorf("%s: StartNS = %d, want 500", name, merged.StartNS)
		}
		if got := merged.Objects[0].AcquiredNS; got != 501 {
			t.Errorf("%s: AcquiredNS = %d, want 501", name, got)
		}
		if got := merged.Files[0].OpenNS; got != 500 {
			t.Errorf("%s: OpenNS = %d, want 500", name, got)
		}
		if got := merged.Mapped[0].FirstNS; got != 501 {
			t.Errorf("%s: FirstNS = %d, want 501", name, got)
		}
	}

	// All ranks unset: the merged value stays 0 rather than inventing one.
	u2 := rankTrace(2, 0)
	u2.StartNS = 0
	u2.Objects[0].AcquiredNS = 0
	u2.Files[0].OpenNS = 0
	u2.Mapped[0].FirstNS = 0
	merged := Merge("sim", []*TaskTrace{unset, u2})
	if merged.Objects[0].AcquiredNS != 0 || merged.Files[0].OpenNS != 0 {
		t.Errorf("all-unset merge invented timestamps: %+v", merged.Files[0])
	}
}

func TestMergeDisjointFiles(t *testing.T) {
	a := rankTrace(0, 0)
	b := rankTrace(1, 10)
	b.Files[0].File = "other.h5"
	b.Mapped[0].File = "other.h5"
	b.Objects[0].File = "other.h5"
	merged := Merge("t", []*TaskTrace{a, b})
	if len(merged.Files) != 2 || len(merged.Objects) != 2 || len(merged.Mapped) != 2 {
		t.Fatalf("merge lost records: %d/%d/%d",
			len(merged.Files), len(merged.Objects), len(merged.Mapped))
	}
	if merged.Files[0].File != "other.h5" || merged.Files[1].File != "shared.h5" {
		t.Error("files not sorted")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge("x", nil)
	if m.Task != "x" || len(m.Files) != 0 {
		t.Error("empty merge wrong")
	}
}
