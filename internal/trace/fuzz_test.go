package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes through the JSON decoder
// and, for every input that parses as a valid trace, asserts the
// JSON→dtb→JSON pipeline is lossless: the binary round trip is deeply
// equal to the JSON-decoded trace and re-encodes to identical JSON.
func FuzzCodecRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		var buf bytes.Buffer
		if err := richTrace(seed).Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"task":"t","start_ns":0,"end_ns":1}`))
	f.Add([]byte(`{"task":"t","start_ns":0,"end_ns":1,"objects":[],"io_trace":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		orig, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // invalid input; nothing to round-trip
		}
		var bin bytes.Buffer
		if err := orig.EncodeBinary(&bin); err != nil {
			t.Fatalf("binary encode of valid trace failed: %v", err)
		}
		back, err := DecodeBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("binary decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(back, orig) {
			t.Fatalf("dtb round trip diverged:\n got %+v\nwant %+v", back, orig)
		}
		var j1, j2 bytes.Buffer
		if err := orig.Encode(&j1); err != nil {
			t.Fatal(err)
		}
		if err := back.Encode(&j2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
			t.Fatalf("JSON re-encode after dtb round trip differs:\n got %s\nwant %s", j2.Bytes(), j1.Bytes())
		}
		// The unframed variant must be equally lossless.
		var unframed bytes.Buffer
		if err := orig.EncodeBinaryOpts(&unframed, BinaryOptions{Unframed: true}); err != nil {
			t.Fatal(err)
		}
		back2, err := DecodeBinary(bytes.NewReader(unframed.Bytes()))
		if err != nil {
			t.Fatalf("unframed decode failed: %v", err)
		}
		if !reflect.DeepEqual(back2, orig) {
			t.Fatal("unframed dtb round trip diverged")
		}
	})
}

// FuzzDecodeBinary hammers the binary decoder with arbitrary bytes: it
// must error or return a valid trace, never panic, and any accepted
// input must re-encode losslessly.
func FuzzDecodeBinary(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		var buf bytes.Buffer
		if err := richTrace(seed).EncodeBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(binaryMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder returned invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.EncodeBinary(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encode failed: %v", err)
		}
		if !reflect.DeepEqual(again, tr) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}

// FuzzDecodeDelta hammers the metadata-aware decoder with arbitrary
// bytes, biased toward delta-framed records: it must error or return a
// valid trace with coherent metadata, never panic, and any accepted
// frame must re-encode with its own metadata losslessly.
func FuzzDecodeDelta(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		base := canonical(richTrace(seed))
		cur := canonical(richTrace(seed))
		cur.EndNS += 100
		if len(cur.IOTrace) > 0 {
			cur.IOTrace = append(cur.IOTrace, IORecord{Seq: int64(len(cur.IOTrace)), File: "fz", Length: 1})
		}
		var buf bytes.Buffer
		if delta, ok := Diff(base, cur); ok {
			if err := delta.EncodeBinaryOpts(&buf, BinaryOptions{Incremental: true, CheckpointSeq: uint64(seed) + 2, Delta: true, DeltaBaseSeq: uint64(seed) + 1}); err != nil {
				f.Fatal(err)
			}
		} else {
			if err := cur.EncodeBinaryOpts(&buf, BinaryOptions{Incremental: true, CheckpointSeq: uint64(seed) + 2}); err != nil {
				f.Fatal(err)
			}
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(binaryMagic))
	f.Add(append([]byte(binaryMagic), binaryVersion, flagFramed|flagIncremental|flagDelta, 2, 1))
	f.Add(append([]byte(binaryMagic), binaryVersion, flagFramed|flagDelta, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, meta, err := DecodeBytesMeta(data, DecodeOptions{})
		if err != nil {
			return
		}
		if meta.Delta && !meta.Incremental {
			t.Fatal("decoder accepted delta without incremental")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder returned invalid trace: %v", err)
		}
		var buf bytes.Buffer
		opts := BinaryOptions{
			Incremental:   meta.Incremental,
			CheckpointSeq: meta.CheckpointSeq,
			Delta:         meta.Delta,
			DeltaBaseSeq:  meta.DeltaBaseSeq,
		}
		if err := tr.EncodeBinaryOpts(&buf, opts); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again, meta2, err := DecodeBytesMeta(buf.Bytes(), DecodeOptions{})
		if err != nil {
			t.Fatalf("decode of re-encode failed: %v", err)
		}
		if meta2 != meta {
			t.Fatalf("metadata did not survive re-encode: %+v != %+v", meta2, meta)
		}
		if !reflect.DeepEqual(again, tr) {
			t.Fatal("delta frame re-encode round trip diverged")
		}
	})
}

// TestEncodedSizeMatchesBytesWritten is the property test: for both
// formats, EncodedSizeIn must equal the actual byte count an encode
// produces, across a spread of trace shapes including the empty-ish
// minimum.
func TestEncodedSizeMatchesBytesWritten(t *testing.T) {
	traces := []*TaskTrace{
		{Task: "minimal", StartNS: 0, EndNS: 1},
	}
	for seed := int64(0); seed < 40; seed++ {
		traces = append(traces, richTrace(seed))
	}
	for i, tr := range traces {
		for _, format := range []Format{FormatJSON, FormatBinary} {
			want, err := tr.EncodedSizeIn(format)
			if err != nil {
				t.Fatalf("trace %d %s: EncodedSizeIn: %v", i, format, err)
			}
			var buf bytes.Buffer
			if err := tr.EncodeFormat(&buf, format); err != nil {
				t.Fatalf("trace %d %s: encode: %v", i, format, err)
			}
			if int64(buf.Len()) != want {
				t.Errorf("trace %d %s: EncodedSize %d != %d bytes written", i, format, want, buf.Len())
			}
		}
		// Legacy EncodedSize stays the JSON size.
		legacy, err := tr.EncodedSize()
		if err != nil {
			t.Fatal(err)
		}
		jsonSize, _ := tr.EncodedSizeIn(FormatJSON)
		if legacy != jsonSize {
			t.Errorf("trace %d: EncodedSize %d != EncodedSizeIn(JSON) %d", i, legacy, jsonSize)
		}
	}
}
