package trace

import "sort"

// Merge combines the traces of one logical task's parallel processes
// (DaYu's profilers are per-process; the paper's future-work MPI support
// needs per-rank traces folded into one task view). Statistics sum,
// lifetimes take the envelope, address regions merge, and the raw I/O
// traces concatenate in wall-clock order. The merged trace carries the
// given task name.
func Merge(task string, parts []*TaskTrace) *TaskTrace {
	out := &TaskTrace{Task: task}
	if len(parts) == 0 {
		return out
	}

	type objKey struct{ file, object string }
	objects := map[objKey]*ObjectRecord{}
	files := map[string]*FileRecord{}
	mapped := map[objKey]*MappedStat{}

	for _, p := range parts {
		if out.StartNS == 0 || (p.StartNS != 0 && p.StartNS < out.StartNS) {
			out.StartNS = p.StartNS
		}
		if p.EndNS > out.EndNS {
			out.EndNS = p.EndNS
		}
		for _, o := range p.Objects {
			k := objKey{o.File, o.Object}
			agg := objects[k]
			if agg == nil {
				cp := o
				cp.Task = task
				objects[k] = &cp
				continue
			}
			// Unset (zero) timestamps must not clobber a recorded minimum:
			// a rank that never timed the acquire would otherwise reset the
			// merged min to 0 (same guard as out.StartNS above).
			if agg.AcquiredNS == 0 || (o.AcquiredNS != 0 && o.AcquiredNS < agg.AcquiredNS) {
				agg.AcquiredNS = o.AcquiredNS
			}
			if o.ReleasedNS > agg.ReleasedNS {
				agg.ReleasedNS = o.ReleasedNS
			}
			agg.Reads += o.Reads
			agg.Writes += o.Writes
			agg.BytesRead += o.BytesRead
			agg.BytesWritten += o.BytesWritten
		}
		for _, fr := range p.Files {
			agg := files[fr.File]
			if agg == nil {
				cp := fr
				cp.Task = task
				cp.Regions = append([]Extent(nil), fr.Regions...)
				files[fr.File] = &cp
				continue
			}
			if agg.OpenNS == 0 || (fr.OpenNS != 0 && fr.OpenNS < agg.OpenNS) {
				agg.OpenNS = fr.OpenNS
			}
			if fr.CloseNS > agg.CloseNS {
				agg.CloseNS = fr.CloseNS
			}
			agg.Ops += fr.Ops
			agg.Reads += fr.Reads
			agg.Writes += fr.Writes
			agg.BytesRead += fr.BytesRead
			agg.BytesWritten += fr.BytesWritten
			agg.DataReads += fr.DataReads
			agg.DataWrites += fr.DataWrites
			agg.SequentialOps += fr.SequentialOps
			agg.MetaOps += fr.MetaOps
			agg.DataOps += fr.DataOps
			agg.MetaBytes += fr.MetaBytes
			agg.DataBytes += fr.DataBytes
			agg.Regions = MergeExtents(append(agg.Regions, fr.Regions...))
		}
		for _, ms := range p.Mapped {
			k := objKey{ms.File, ms.Object}
			agg := mapped[k]
			if agg == nil {
				cp := ms
				cp.Task = task
				cp.Regions = append([]Extent(nil), ms.Regions...)
				mapped[k] = &cp
				continue
			}
			agg.MetaOps += ms.MetaOps
			agg.DataOps += ms.DataOps
			agg.MetaBytes += ms.MetaBytes
			agg.DataBytes += ms.DataBytes
			agg.Reads += ms.Reads
			agg.Writes += ms.Writes
			if agg.FirstNS == 0 || (ms.FirstNS != 0 && ms.FirstNS < agg.FirstNS) {
				agg.FirstNS = ms.FirstNS
			}
			if ms.LastNS > agg.LastNS {
				agg.LastNS = ms.LastNS
			}
			agg.Regions = MergeExtents(append(agg.Regions, ms.Regions...))
		}
		for _, io := range p.IOTrace {
			out.IOTrace = append(out.IOTrace, io)
		}
	}

	for _, o := range objects {
		out.Objects = append(out.Objects, *o)
	}
	sort.Slice(out.Objects, func(i, j int) bool {
		if out.Objects[i].File != out.Objects[j].File {
			return out.Objects[i].File < out.Objects[j].File
		}
		return out.Objects[i].Object < out.Objects[j].Object
	})
	for _, fr := range files {
		out.Files = append(out.Files, *fr)
	}
	sort.Slice(out.Files, func(i, j int) bool { return out.Files[i].File < out.Files[j].File })
	for _, ms := range mapped {
		out.Mapped = append(out.Mapped, *ms)
	}
	sort.Slice(out.Mapped, func(i, j int) bool {
		if out.Mapped[i].File != out.Mapped[j].File {
			return out.Mapped[i].File < out.Mapped[j].File
		}
		return out.Mapped[i].Object < out.Mapped[j].Object
	})
	sort.SliceStable(out.IOTrace, func(i, j int) bool {
		return out.IOTrace[i].WallNS < out.IOTrace[j].WallNS
	})
	return out
}
