package report

import (
	"strings"
	"testing"

	"dayu/internal/optimizer"
	"dayu/internal/sim"
	"dayu/internal/tracer"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

func ddmdTraces(t *testing.T) (*workflow.Result, Options) {
	t.Helper()
	spec, setup := workloads.DDMD(workloads.DDMDConfig{
		SimTasks: 4, ContactMapBytes: 32 << 10, SmallBytes: 4 << 10, Epochs: 4,
	})
	eng, err := workflow.NewEngine(workflow.Cluster{Machine: sim.MachineGPU, Nodes: 2}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup(eng); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, Options{Plan: &optimizer.LocalityOptions{
		FastTier: "nvme", Nodes: 2, StageOutDisposable: true, CacheReused: true,
	}}
}

func TestGenerateReport(t *testing.T) {
	res, opts := ddmdTraces(t)
	md := Generate(res.Traces, res.Manifest, opts)

	for _, want := range []string{
		"# DaYu optimization report: ddmd",
		"## Summary",
		"## Per-task I/O",
		"## Files by traffic",
		"## Findings and recommendations",
		"partial-file-access",      // contact_map metadata-only finding
		"data-format-optimization", // chunked small datasets
		"## Derived data-locality plan",
		"**Placements**",
		"**Co-scheduling:**",
		"nvme",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Tables are well-formed markdown.
	if !strings.Contains(md, "| task | files | ops |") {
		t.Error("task table header missing")
	}
	// Guideline help text rendered.
	if !strings.Contains(md, "*Guideline:*") {
		t.Error("guideline explanations missing")
	}
}

func TestGenerateEmptyTraces(t *testing.T) {
	md := Generate(nil, nil, Options{})
	if !strings.Contains(md, "No I/O anti-patterns detected") {
		t.Error("empty report missing no-findings note")
	}
	if !strings.Contains(md, "# DaYu optimization report: workflow") {
		t.Error("default workflow name missing")
	}
}

func TestRowLimits(t *testing.T) {
	res, _ := ddmdTraces(t)
	md := Generate(res.Traces, res.Manifest, Options{MaxRows: 2})
	if !strings.Contains(md, "more tasks") {
		t.Error("task table not truncated")
	}
	if !strings.Contains(md, "more files") {
		t.Error("file table not truncated")
	}
}
