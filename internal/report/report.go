// Package report renders DaYu's analysis as a human-readable Markdown
// optimization report: workflow summary, per-task I/O characteristics,
// findings grouped by optimization guideline, and the derived
// data-locality plan. It plays the role the paper assigns to a Drishti
// integration (§IX future work): turning traces and findings into
// actionable recommendations for performance analysts.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/optimizer"
	"dayu/internal/trace"
	"dayu/internal/units"
	"dayu/internal/workflow"
)

// Options configures report generation.
type Options struct {
	// Thresholds tunes the diagnostic rules.
	Thresholds diagnose.Thresholds
	// Plan optionally includes a locality plan section derived with
	// these options; nil skips the section.
	Plan *optimizer.LocalityOptions
	// MaxRows bounds per-table row counts (0 = 20).
	MaxRows int
}

// guidelineHelp explains each §III-A guideline in one sentence.
var guidelineHelp = map[diagnose.Guideline]string{
	diagnose.GuidelineCaching:     "keep frequently reused data in the fastest tier (memory buffer or node-local SSD) to avoid repeated shared-storage reads",
	diagnose.GuidelinePartial:     "move only the file segments tasks actually consume; skip staging content that is never read",
	diagnose.GuidelinePrefetch:    "stage data toward its consumers ahead of use - delayed for mid-workflow inputs, rolling for sequential readers",
	diagnose.GuidelineLayout:      "match the storage layout to the access pattern: contiguous for whole-dataset access, chunked for partial/VL access, consolidation for many small datasets",
	diagnose.GuidelineStageOut:    "offload data with no further consumers to slower storage, freeing the fast tier",
	diagnose.GuidelineParallelize: "run data-independent tasks concurrently",
	diagnose.GuidelineCoSchedule:  "place consumers on the nodes that hold their inputs",
}

// Generate renders the full Markdown report.
func Generate(traces []*trace.TaskTrace, m *trace.Manifest, opts Options) string {
	if opts.MaxRows == 0 {
		opts.MaxRows = 20
	}
	var b strings.Builder
	name := "workflow"
	if m != nil && m.Workflow != "" {
		name = m.Workflow
	}
	fmt.Fprintf(&b, "# DaYu optimization report: %s\n\n", name)

	writeSummary(&b, traces, m)
	writeTaskTable(&b, traces, opts.MaxRows)
	writeFileTable(&b, traces, opts.MaxRows)
	writeChains(&b, traces, m, opts.MaxRows)
	findings := diagnose.Analyze(traces, m, opts.Thresholds)
	writeFindings(&b, findings)
	if opts.Plan != nil {
		writePlan(&b, optimizer.PlanDataLocality(traces, m, *opts.Plan))
	}
	return b.String()
}

func writeSummary(b *strings.Builder, traces []*trace.TaskTrace, m *trace.Manifest) {
	var files = map[string]bool{}
	var objects = map[string]bool{}
	var ops, metaOps, bytesMoved int64
	var span time.Duration
	for _, t := range traces {
		span += time.Duration(t.EndNS - t.StartNS)
		for _, fr := range t.Files {
			files[fr.File] = true
			ops += fr.Ops
			metaOps += fr.MetaOps
			bytesMoved += fr.BytesRead + fr.BytesWritten
		}
		for _, o := range t.Objects {
			objects[o.File+"::"+o.Object] = true
		}
	}
	fmt.Fprintf(b, "## Summary\n\n")
	fmt.Fprintf(b, "- tasks: %d", len(traces))
	if m != nil && len(m.StageOrder) > 0 {
		fmt.Fprintf(b, " across %d stages", len(m.StageOrder))
	}
	fmt.Fprintf(b, "\n- files: %d, data objects: %d\n", len(files), len(objects))
	fmt.Fprintf(b, "- I/O: %d operations (%s metadata), %s moved\n",
		ops, units.Percent(float64(metaOps), float64(ops)), units.Bytes(bytesMoved))
	g := analyzer.BuildSDG(traces, m, analyzer.Options{})
	s := analyzer.Summarize(g)
	fmt.Fprintf(b, "- semantic dataflow graph: %d nodes, %d edges\n\n",
		s.Tasks+s.Files+s.Datasets, s.Edges)
}

func writeTaskTable(b *strings.Builder, traces []*trace.TaskTrace, maxRows int) {
	fmt.Fprintf(b, "## Per-task I/O\n\n")
	fmt.Fprintf(b, "| task | files | ops | meta/data | read | written |\n")
	fmt.Fprintf(b, "|---|---|---|---|---|---|\n")
	shown := 0
	for _, t := range traces {
		if shown >= maxRows {
			fmt.Fprintf(b, "| … %d more tasks | | | | | |\n", len(traces)-shown)
			break
		}
		var ops, meta, data, br, bw int64
		for _, fr := range t.Files {
			ops += fr.Ops
			meta += fr.MetaOps
			data += fr.DataOps
			br += fr.BytesRead
			bw += fr.BytesWritten
		}
		fmt.Fprintf(b, "| %s | %d | %d | %d/%d | %s | %s |\n",
			t.Task, len(t.Files), ops, meta, data, units.Bytes(br), units.Bytes(bw))
		shown++
	}
	b.WriteString("\n")
}

func writeFileTable(b *strings.Builder, traces []*trace.TaskTrace, maxRows int) {
	type fstat struct {
		readers, writers map[string]bool
		bytes            int64
	}
	stats := map[string]*fstat{}
	for _, t := range traces {
		for _, fr := range t.Files {
			s := stats[fr.File]
			if s == nil {
				s = &fstat{readers: map[string]bool{}, writers: map[string]bool{}}
				stats[fr.File] = s
			}
			if fr.DataReads > 0 {
				s.readers[t.Task] = true
			}
			if fr.DataWrites > 0 {
				s.writers[t.Task] = true
			}
			s.bytes += fr.BytesRead + fr.BytesWritten
		}
	}
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return stats[names[i]].bytes > stats[names[j]].bytes })

	fmt.Fprintf(b, "## Files by traffic\n\n")
	fmt.Fprintf(b, "| file | producers | consumers | total traffic |\n|---|---|---|---|\n")
	for i, n := range names {
		if i >= maxRows {
			fmt.Fprintf(b, "| … %d more files | | | |\n", len(names)-i)
			break
		}
		s := stats[n]
		fmt.Fprintf(b, "| %s | %d | %d | %s |\n", n, len(s.writers), len(s.readers), units.Bytes(s.bytes))
	}
	b.WriteString("\n")
}

func writeChains(b *strings.Builder, traces []*trace.TaskTrace, m *trace.Manifest, maxRows int) {
	chains := analyzer.DependencyChains(traces, m)
	if len(chains) == 0 {
		return
	}
	fmt.Fprintf(b, "## Data dependence chains\n\n")
	sort.Slice(chains, func(i, j int) bool { return chains[i].Len() > chains[j].Len() })
	for i, c := range chains {
		if i >= maxRows {
			fmt.Fprintf(b, "- … %d more chains\n", len(chains)-i)
			break
		}
		fmt.Fprintf(b, "- `%s`\n", c.String())
	}
	longest := analyzer.LongestChain(chains)
	fmt.Fprintf(b, "\nThe longest dependence chain spans %d hops; its files are the "+
		"workflow's critical data path and the first candidates for fast-tier placement.\n\n",
		longest.Len())
}

func writeFindings(b *strings.Builder, findings []diagnose.Finding) {
	fmt.Fprintf(b, "## Findings and recommendations\n\n")
	if len(findings) == 0 {
		b.WriteString("No I/O anti-patterns detected.\n\n")
		return
	}
	byGuideline := map[diagnose.Guideline][]diagnose.Finding{}
	var order []diagnose.Guideline
	for _, f := range findings {
		if _, ok := byGuideline[f.Guideline]; !ok {
			order = append(order, f.Guideline)
		}
		byGuideline[f.Guideline] = append(byGuideline[f.Guideline], f)
	}
	for _, g := range order {
		fs := byGuideline[g]
		fmt.Fprintf(b, "### %s (%d findings)\n\n", g, len(fs))
		if help, ok := guidelineHelp[g]; ok {
			fmt.Fprintf(b, "*Guideline:* %s.\n\n", help)
		}
		max := 10
		for i, f := range fs {
			if i >= max {
				fmt.Fprintf(b, "- … %d more\n", len(fs)-i)
				break
			}
			loc := f.File
			if f.Object != "" {
				loc += "::" + f.Object
			}
			if f.Task != "" {
				loc = f.Task + " → " + loc
			}
			fmt.Fprintf(b, "- **[%s] %s** %s: %s\n", f.Severity, f.Kind, loc, f.Detail)
		}
		b.WriteString("\n")
	}
}

func writePlan(b *strings.Builder, plan *workflow.Plan) {
	fmt.Fprintf(b, "## Derived data-locality plan\n\n")
	if len(plan.Placements) > 0 {
		fmt.Fprintf(b, "**Placements** (%d files):\n\n", len(plan.Placements))
		names := make([]string, 0, len(plan.Placements))
		for n := range plan.Placements {
			names = append(names, n)
		}
		sort.Strings(names)
		max := 15
		for i, n := range names {
			if i >= max {
				fmt.Fprintf(b, "- … %d more\n", len(names)-i)
				break
			}
			pl := plan.Placements[n]
			fmt.Fprintf(b, "- `%s` → %s on node %d\n", n, pl.Device, pl.Node)
		}
		b.WriteString("\n")
	}
	if len(plan.NodeOf) > 0 {
		fmt.Fprintf(b, "**Co-scheduling:** %d tasks pinned to input-holding nodes.\n\n", len(plan.NodeOf))
	}
	for title, m := range map[string]map[string][]string{
		"Stage-in (prefetch)": plan.StageIn, "Stage-out": plan.StageOut,
	} {
		if len(m) == 0 {
			continue
		}
		stages := make([]string, 0, len(m))
		for s := range m {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		fmt.Fprintf(b, "**%s:**\n\n", title)
		for _, s := range stages {
			fmt.Fprintf(b, "- before/after `%s`: %s\n", s, strings.Join(m[s], ", "))
		}
		b.WriteString("\n")
	}
	if len(plan.CacheFiles) > 0 {
		fmt.Fprintf(b, "**Memory-buffer caching:** %s\n\n", strings.Join(plan.CacheFiles, ", "))
	}
}
