// Package graph provides the typed multigraph underlying DaYu's
// File-Task Graphs and Semantic Dataflow Graphs, with DOT, SVG, HTML
// and JSON emission. Nodes carry event timing and volume so renderers
// can arrange them by start/end time and scale widths by data volume,
// as the paper's Figure 3 describes.
package graph

import (
	"fmt"
	"sort"
)

// Kind classifies nodes.
type Kind string

// Node kinds used by the analyzer.
const (
	KindFile    Kind = "file"
	KindTask    Kind = "task"
	KindDataset Kind = "dataset"
	KindRegion  Kind = "region" // file address region
	KindMeta    Kind = "meta"   // file-metadata pseudo-dataset
	KindStage   Kind = "stage"  // aggregated stage node
)

// Node is one graph vertex.
type Node struct {
	ID    string
	Kind  Kind
	Label string
	// StartNS and EndNS bound the node's activity; renderers arrange
	// nodes vertically by start and horizontally by end (Figure 3).
	StartNS int64
	EndNS   int64
	// Volume is the node's total data volume in bytes (drives size).
	Volume int64
	// Attrs carries free-form annotations shown in interactive output.
	Attrs map[string]string
}

// EdgeOp is the operation an edge represents.
type EdgeOp string

// Edge operations.
const (
	OpRead  EdgeOp = "read"
	OpWrite EdgeOp = "write"
	OpMap   EdgeOp = "map" // structural relation (dataset->region, etc.)
)

// Edge is one directed edge, decorated with the access statistics the
// paper attaches to FTG/SDG edges (volume, counts, bandwidth, metadata
// vs data split).
type Edge struct {
	From string
	To   string
	Op   EdgeOp
	// Volume is bytes moved; Bandwidth is bytes/second (drives color).
	Volume    int64
	Bandwidth float64
	// Operation counts split by class.
	Ops     int64
	MetaOps int64
	DataOps int64
	// AvgSize is the mean access size in bytes.
	AvgSize int64
	// Reused marks data-reuse edges (highlighted in the figures).
	Reused bool
	Attrs  map[string]string
}

// Graph is a directed multigraph with stable insertion order. Forward
// and reverse adjacency indexes are maintained on every AddEdge, so
// per-node edge queries cost O(deg) instead of scanning all edges;
// Edges() still reports global insertion order, and the per-node index
// slices preserve that order among a node's own edges.
type Graph struct {
	Name  string
	nodes map[string]*Node
	order []string
	edges []*Edge
	out   map[string][]*Edge
	in    map[string][]*Edge
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{
		Name:  name,
		nodes: make(map[string]*Node),
		out:   make(map[string][]*Edge),
		in:    make(map[string][]*Edge),
	}
}

// AddNode inserts or updates a node. Updating merges volume and widens
// the time window.
func (g *Graph) AddNode(n Node) *Node {
	if existing, ok := g.nodes[n.ID]; ok {
		existing.Volume += n.Volume
		if n.StartNS != 0 && (existing.StartNS == 0 || n.StartNS < existing.StartNS) {
			existing.StartNS = n.StartNS
		}
		if n.EndNS > existing.EndNS {
			existing.EndNS = n.EndNS
		}
		for k, v := range n.Attrs {
			if existing.Attrs == nil {
				existing.Attrs = map[string]string{}
			}
			existing.Attrs[k] = v
		}
		return existing
	}
	cp := n
	// Clone the attribute map so the graph never aliases caller-owned
	// state: contributions cached across incremental rebuilds must not
	// be mutated when a later AddNode merges attrs into this node.
	if n.Attrs != nil {
		cp.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			cp.Attrs[k] = v
		}
	}
	g.nodes[n.ID] = &cp
	g.order = append(g.order, n.ID)
	return &cp
}

// Node returns a node by ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, id := range g.order {
		out[i] = g.nodes[id]
	}
	return out
}

// NodesOfKind returns nodes of one kind in insertion order.
func (g *Graph) NodesOfKind(k Kind) []*Node {
	var out []*Node
	for _, id := range g.order {
		if n := g.nodes[id]; n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// AddEdge appends an edge; endpoints must exist.
func (g *Graph) AddEdge(e Edge) (*Edge, error) {
	if g.nodes[e.From] == nil {
		return nil, fmt.Errorf("graph: edge from unknown node %q", e.From)
	}
	if g.nodes[e.To] == nil {
		return nil, fmt.Errorf("graph: edge to unknown node %q", e.To)
	}
	cp := e
	if e.Attrs != nil {
		cp.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			cp.Attrs[k] = v
		}
	}
	g.edges = append(g.edges, &cp)
	g.out[cp.From] = append(g.out[cp.From], &cp)
	g.in[cp.To] = append(g.in[cp.To], &cp)
	return &cp, nil
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []*Edge { return g.edges }

// InstallBulk replaces the graph's contents with a fully-assembled
// state in O(nodes): nodes in insertion order (already deduplicated and
// folded), edges in insertion order, and the forward/reverse adjacency
// indexes keyed by node ID. It is the bulk-insert hook for builders —
// the analyzer's shard-then-stitch merge — that assemble graph state in
// parallel and hand it over in one call instead of paying a map lookup
// per AddNode and three appends per AddEdge.
//
// The caller transfers ownership of every argument and guarantees the
// invariants AddNode/AddEdge would have enforced: node IDs are unique,
// every edge endpoint is present in nodes, out[id] and in[id] hold
// exactly the edges leaving/entering id in global insertion order, and
// the *Edge pointers are shared between edges and the two indexes (so
// decoration passes mutate one object). Nothing is cloned here; attrs
// maps must already be private to the graph.
func (g *Graph) InstallBulk(nodes []*Node, edges []*Edge, out, in map[string][]*Edge) {
	g.nodes = make(map[string]*Node, len(nodes))
	g.order = make([]string, len(nodes))
	for i, n := range nodes {
		g.nodes[n.ID] = n
		g.order[i] = n.ID
	}
	g.edges = edges
	if out == nil {
		out = make(map[string][]*Edge)
	}
	if in == nil {
		in = make(map[string][]*Edge)
	}
	g.out = out
	g.in = in
}

// OutEdges returns edges leaving the node in insertion order. The
// returned slice is the graph's index; callers must not append to or
// reorder it.
func (g *Graph) OutEdges(id string) []*Edge { return g.out[id] }

// InEdges returns edges entering the node in insertion order. The
// returned slice is the graph's index; callers must not append to or
// reorder it.
func (g *Graph) InEdges(id string) []*Edge { return g.in[id] }

// OutDegree counts distinct successors of the node.
func (g *Graph) OutDegree(id string) int {
	seen := map[string]bool{}
	for _, e := range g.out[id] {
		seen[e.To] = true
	}
	return len(seen)
}

// NumNodes and NumEdges report graph size.
func (g *Graph) NumNodes() int { return len(g.order) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Ranks computes a longest-path topological rank for each node (cycles
// are broken by insertion order), used for layered rendering.
func (g *Graph) Ranks() map[string]int {
	ranks := make(map[string]int, len(g.order))
	// Kahn-style longest path; fall back gracefully on cycles.
	indeg := map[string]int{}
	for _, e := range g.edges {
		if e.From == e.To {
			continue
		}
		indeg[e.To]++
	}
	var queue []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		for _, e := range g.out[id] {
			if e.From == e.To {
				continue
			}
			next := e.To
			if r := ranks[id] + 1; r > ranks[next] {
				ranks[next] = r
			}
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if processed < len(g.order) {
		// Cycle: give remaining nodes their current best rank.
		for _, id := range g.order {
			if _, ok := ranks[id]; !ok {
				ranks[id] = 0
			}
		}
	}
	return ranks
}

// TotalVolume sums edge volumes.
func (g *Graph) TotalVolume() int64 {
	var v int64
	for _, e := range g.edges {
		v += e.Volume
	}
	return v
}

// Filter returns the subgraph induced by the nodes keep accepts: kept
// nodes plus every edge whose two endpoints were kept.
func (g *Graph) Filter(name string, keep func(*Node) bool) *Graph {
	out := New(name)
	for _, n := range g.Nodes() {
		if keep(n) {
			out.AddNode(*n)
		}
	}
	for _, e := range g.edges {
		if out.Node(e.From) != nil && out.Node(e.To) != nil {
			if _, err := out.AddEdge(*e); err != nil {
				panic(err) // endpoints verified above
			}
		}
	}
	return out
}

// Neighborhood returns the subgraph of the given node plus everything
// within the given number of hops (edges treated as undirected).
func (g *Graph) Neighborhood(name, center string, hops int) *Graph {
	dist := map[string]int{center: 0}
	frontier := []string{center}
	for d := 0; d < hops; d++ {
		var next []string
		visit := func(other string) {
			if _, seen := dist[other]; !seen {
				dist[other] = d + 1
				next = append(next, other)
			}
		}
		for _, id := range frontier {
			for _, e := range g.out[id] {
				visit(e.To)
			}
			for _, e := range g.in[id] {
				visit(e.From)
			}
		}
		frontier = next
	}
	return g.Filter(name, func(n *Node) bool {
		_, ok := dist[n.ID]
		return ok
	})
}

// SortedNodeIDs returns node IDs sorted lexically (for deterministic
// reports).
func (g *Graph) SortedNodeIDs() []string {
	ids := append([]string(nil), g.order...)
	sort.Strings(ids)
	return ids
}
