package graph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func sampleGraph() *Graph {
	g := New("sample")
	g.AddNode(Node{ID: "t1", Kind: KindTask, Label: "task one", StartNS: 10, EndNS: 20})
	g.AddNode(Node{ID: "f1", Kind: KindFile, StartNS: 12, EndNS: 30, Volume: 1 << 20})
	g.AddNode(Node{ID: "d1", Kind: KindDataset, StartNS: 12, EndNS: 18})
	g.AddNode(Node{ID: "t2", Kind: KindTask, StartNS: 25, EndNS: 40})
	mustEdge(g, Edge{From: "t1", To: "d1", Op: OpWrite, Volume: 1 << 20, Bandwidth: 1e6, Ops: 4, DataOps: 3, MetaOps: 1})
	mustEdge(g, Edge{From: "d1", To: "f1", Op: OpMap})
	mustEdge(g, Edge{From: "f1", To: "t2", Op: OpRead, Volume: 1 << 19, Bandwidth: 5e5, Ops: 2, DataOps: 2, Reused: true})
	return g
}

func mustEdge(g *Graph, e Edge) {
	if _, err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

func TestAddNodeMerges(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: "a", Kind: KindFile, StartNS: 100, EndNS: 200, Volume: 10})
	g.AddNode(Node{ID: "a", Kind: KindFile, StartNS: 50, EndNS: 300, Volume: 5,
		Attrs: map[string]string{"k": "v"}})
	n := g.Node("a")
	if n.Volume != 15 {
		t.Errorf("volume = %d", n.Volume)
	}
	if n.StartNS != 50 || n.EndNS != 300 {
		t.Errorf("window = [%d,%d]", n.StartNS, n.EndNS)
	}
	if n.Attrs["k"] != "v" {
		t.Error("attrs not merged")
	}
	if g.NumNodes() != 1 {
		t.Error("duplicate node inserted")
	}
}

func TestEdgesRequireEndpoints(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: "a"})
	if _, err := g.AddEdge(Edge{From: "a", To: "missing"}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if _, err := g.AddEdge(Edge{From: "missing", To: "a"}); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestDegreesAndQueries(t *testing.T) {
	g := sampleGraph()
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree("t1") != 1 {
		t.Errorf("OutDegree(t1) = %d", g.OutDegree("t1"))
	}
	if len(g.OutEdges("d1")) != 1 || len(g.InEdges("d1")) != 1 {
		t.Error("edge queries wrong")
	}
	if len(g.NodesOfKind(KindTask)) != 2 {
		t.Error("NodesOfKind wrong")
	}
	if g.TotalVolume() != 1<<20+1<<19 {
		t.Error("TotalVolume wrong")
	}
	ids := g.SortedNodeIDs()
	if ids[0] != "d1" {
		t.Errorf("sorted ids = %v", ids)
	}
}

func TestRanks(t *testing.T) {
	g := sampleGraph()
	ranks := g.Ranks()
	if ranks["t1"] != 0 || ranks["d1"] != 1 || ranks["f1"] != 2 || ranks["t2"] != 3 {
		t.Errorf("ranks = %v", ranks)
	}
	// Cycles must not hang or panic.
	c := New("cycle")
	c.AddNode(Node{ID: "a"})
	c.AddNode(Node{ID: "b"})
	mustEdge(c, Edge{From: "a", To: "b"})
	mustEdge(c, Edge{From: "b", To: "a"})
	cr := c.Ranks()
	if len(cr) == 0 {
		t.Error("cycle ranks missing")
	}
	// Self loops are ignored.
	s := New("self")
	s.AddNode(Node{ID: "x"})
	mustEdge(s, Edge{From: "x", To: "x"})
	if s.Ranks()["x"] != 0 {
		t.Error("self loop affected rank")
	}
}

func TestDOT(t *testing.T) {
	dot := sampleGraph().DOT()
	for _, want := range []string{
		"digraph", `"t1" -> "d1"`, `"f1" -> "t2"`,
		"#1f77b4", // file blue
		"#d62728", // task red
		"#ffdd57", // dataset yellow
		"#ff7f0e", // reuse orange
		"1.0 MiB",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestSVG(t *testing.T) {
	svg := sampleGraph().SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"task one", "<line", "<rect", "Access Volume"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Long labels are truncated.
	g := New("g")
	g.AddNode(Node{ID: strings.Repeat("x", 64), Kind: KindFile})
	if !strings.Contains(g.SVG(), "...") {
		t.Error("long label not truncated")
	}
}

func TestHTML(t *testing.T) {
	h := sampleGraph().HTML()
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "Edge statistics",
		"HDF5 Metadata Access Count", // Figure 7 pop-up fields in tooltips
		"<td>t1</td>",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// HTML escapes hostile labels.
	g := New("<script>")
	g.AddNode(Node{ID: "a", Label: "<script>alert(1)</script>"})
	if strings.Contains(g.HTML(), "<script>alert") {
		t.Error("HTML injection not escaped")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %s %d/%d", back.Name, back.NumNodes(), back.NumEdges())
	}
	if back.Node("f1").Volume != 1<<20 {
		t.Error("node data lost")
	}
	if !back.Edges()[2].Reused {
		t.Error("edge data lost")
	}
}

func TestEdgeColorAndWidth(t *testing.T) {
	if edgeColor(0, 0, true) != "#ff7f0e" {
		t.Error("reuse color wrong")
	}
	low := edgeColor(0.1, 1, false)
	high := edgeColor(1, 1, false)
	if low == high {
		t.Error("bandwidth shading not applied")
	}
	if edgeColor(5, 1, false) != edgeColor(1, 1, false) {
		t.Error("bandwidth fraction not clamped")
	}
	if penWidth(0) != 1 {
		t.Error("zero volume width wrong")
	}
	if penWidth(1<<30) <= penWidth(1<<10) {
		t.Error("width not monotone")
	}
}

func TestFilter(t *testing.T) {
	g := sampleGraph()
	sub := g.Filter("tasks-only", func(n *Node) bool { return n.Kind == KindTask })
	if sub.NumNodes() != 2 {
		t.Fatalf("filtered nodes = %d", sub.NumNodes())
	}
	// No edge survives: every sample edge touches a non-task node.
	if sub.NumEdges() != 0 {
		t.Errorf("filtered edges = %d", sub.NumEdges())
	}
	// Keeping everything preserves the graph.
	all := g.Filter("all", func(*Node) bool { return true })
	if all.NumNodes() != g.NumNodes() || all.NumEdges() != g.NumEdges() {
		t.Error("identity filter lost elements")
	}
}

func TestNeighborhood(t *testing.T) {
	g := sampleGraph() // t1 -> d1 -> f1 -> t2
	n0 := g.Neighborhood("n0", "d1", 0)
	if n0.NumNodes() != 1 || n0.NumEdges() != 0 {
		t.Fatalf("0-hop: %d/%d", n0.NumNodes(), n0.NumEdges())
	}
	n1 := g.Neighborhood("n1", "d1", 1)
	if n1.NumNodes() != 3 { // d1, t1, f1
		t.Fatalf("1-hop nodes = %d", n1.NumNodes())
	}
	if n1.Node("t2") != nil {
		t.Error("t2 inside 1-hop neighborhood")
	}
	n2 := g.Neighborhood("n2", "d1", 2)
	if n2.NumNodes() != 4 || n2.NumEdges() != 3 {
		t.Fatalf("2-hop: %d/%d", n2.NumNodes(), n2.NumEdges())
	}
}

// scanOut and scanIn are the pre-index O(E) reference implementations
// the adjacency indexes must agree with, edge for edge and in order.
func scanOut(g *Graph, id string) []*Edge {
	var out []*Edge
	for _, e := range g.Edges() {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

func scanIn(g *Graph, id string) []*Edge {
	var out []*Edge
	for _, e := range g.Edges() {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

func TestAdjacencyIndexMatchesScan(t *testing.T) {
	g := New("indexed")
	const n = 40
	for i := 0; i < n; i++ {
		g.AddNode(Node{ID: fmt.Sprintf("n%02d", i)})
	}
	// Deterministic pseudo-random multigraph with self loops and
	// parallel edges.
	seed := uint64(42)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	for i := 0; i < 400; i++ {
		from := fmt.Sprintf("n%02d", next(n))
		to := fmt.Sprintf("n%02d", next(n))
		mustEdge(g, Edge{From: from, To: to, Op: OpRead, Volume: int64(i)})
	}
	check := func(g *Graph) {
		t.Helper()
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("n%02d", i)
			if got, want := g.OutEdges(id), scanOut(g, id); !reflect.DeepEqual(got, want) {
				t.Fatalf("OutEdges(%s): index disagrees with scan (%d vs %d edges)", id, len(got), len(want))
			}
			if got, want := g.InEdges(id), scanIn(g, id); !reflect.DeepEqual(got, want) {
				t.Fatalf("InEdges(%s): index disagrees with scan (%d vs %d edges)", id, len(got), len(want))
			}
			seen := map[string]bool{}
			for _, e := range scanOut(g, id) {
				seen[e.To] = true
			}
			if g.OutDegree(id) != len(seen) {
				t.Fatalf("OutDegree(%s) = %d, want %d", id, g.OutDegree(id), len(seen))
			}
		}
	}
	check(g)

	// The index must survive a JSON round trip (UnmarshalJSON rebuilds).
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	check(&back)

	// And a Filter pass (subgraphs are built through AddEdge too).
	sub := g.Filter("half", func(n *Node) bool { return n.ID < "n20" })
	check(sub)
}

// TestInstallBulkMatchesIncrementalBuild asserts a bulk-installed graph
// is indistinguishable — queries and every rendering — from the same
// graph assembled through AddNode/AddEdge.
func TestInstallBulkMatchesIncrementalBuild(t *testing.T) {
	want := sampleGraph()

	nodes := make([]*Node, 0, want.NumNodes())
	for _, n := range want.Nodes() {
		cp := *n
		nodes = append(nodes, &cp)
	}
	edges := make([]*Edge, 0, want.NumEdges())
	out := map[string][]*Edge{}
	in := map[string][]*Edge{}
	for _, e := range want.Edges() {
		cp := *e
		edges = append(edges, &cp)
		out[cp.From] = append(out[cp.From], &cp)
		in[cp.To] = append(in[cp.To], &cp)
	}
	got := New(want.Name)
	got.InstallBulk(nodes, edges, out, in)

	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("bulk graph %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.DOT() != want.DOT() || got.HTML() != want.HTML() || got.SVG() != want.SVG() {
		t.Fatal("bulk-installed graph renders differently")
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatal("bulk-installed graph JSON differs")
	}
	for _, n := range want.Nodes() {
		if len(got.OutEdges(n.ID)) != len(want.OutEdges(n.ID)) ||
			len(got.InEdges(n.ID)) != len(want.InEdges(n.ID)) {
			t.Fatalf("adjacency for %s differs after InstallBulk", n.ID)
		}
	}
	// Shared pointers: decorating through the index must show up in the
	// edge list, exactly as with AddEdge-built graphs.
	got.OutEdges("f1")[0].Reused = false
	if got.Edges()[2].Reused {
		t.Fatal("InstallBulk index does not share edge pointers with Edges()")
	}
	// The graph must remain usable for incremental mutation afterwards.
	got.AddNode(Node{ID: "x", Kind: KindTask})
	if _, err := got.AddEdge(Edge{From: "x", To: "f1", Op: OpMap}); err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != want.NumNodes()+1 || got.NumEdges() != want.NumEdges()+1 {
		t.Fatal("InstallBulk graph rejects later AddNode/AddEdge")
	}
	// Nil indexes are materialized so AddEdge on an empty bulk graph works.
	empty := New("empty")
	empty.InstallBulk(nil, nil, nil, nil)
	empty.AddNode(Node{ID: "a"})
	empty.AddNode(Node{ID: "b"})
	if _, err := empty.AddEdge(Edge{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
}
