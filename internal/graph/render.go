package graph

import (
	"encoding/json"
	"fmt"
	"html"
	"math"
	"sort"
	"strings"

	"dayu/internal/units"
)

// nodeStyle maps kinds to the paper's figure palette: blue files, red
// tasks, yellow datasets, lighter blue address regions.
func nodeStyle(k Kind) (shape, fill string) {
	switch k {
	case KindFile:
		return "box", "#1f77b4"
	case KindTask:
		return "box", "#d62728"
	case KindDataset:
		return "ellipse", "#ffdd57"
	case KindRegion:
		return "box", "#9ecae1"
	case KindMeta:
		return "ellipse", "#c7c7c7"
	case KindStage:
		return "box3d", "#aa66cc"
	}
	return "ellipse", "#ffffff"
}

// edgeColor shades by bandwidth: darker means higher bandwidth, as in
// the paper's figures. A zero bandwidth means "unknown" (degenerate
// measurement window), not "slow", and renders in the neutral gray.
func edgeColor(bw, maxBW float64, reused bool) string {
	if reused {
		return "#ff7f0e" // orange: data-reuse edges
	}
	if maxBW <= 0 || bw <= 0 {
		return "#888888"
	}
	frac := bw / maxBW
	if frac > 1 {
		frac = 1
	}
	// Interpolate light gray -> near black.
	level := 200 - int(170*frac)
	return fmt.Sprintf("#%02x%02x%02x", level, level, level)
}

// penWidth scales edge width by volume (log scale).
func penWidth(volume int64) float64 {
	if volume <= 0 {
		return 1
	}
	return 1 + math.Log10(float64(volume))/2
}

// DOT renders the graph in Graphviz format with the paper's visual
// conventions.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [style=filled fontname=\"Helvetica\"];\n", g.Name)
	maxBW := g.maxBandwidth()
	for _, n := range g.Nodes() {
		shape, fill := nodeStyle(n.Kind)
		label := n.Label
		if label == "" {
			label = n.ID
		}
		fmt.Fprintf(&b, "  %q [label=%q shape=%s fillcolor=%q];\n", n.ID, label, shape, fill)
	}
	for _, e := range g.Edges() {
		color := edgeColor(e.Bandwidth, maxBW, e.Reused)
		label := ""
		if e.Volume > 0 {
			label = units.Bytes(e.Volume)
		}
		fmt.Fprintf(&b, "  %q -> %q [color=%q penwidth=%.2f label=%q];\n",
			e.From, e.To, color, penWidth(e.Volume), label)
	}
	b.WriteString("}\n")
	return b.String()
}

func (g *Graph) maxBandwidth() float64 {
	var max float64
	for _, e := range g.edges {
		if e.Bandwidth > max {
			max = e.Bandwidth
		}
	}
	return max
}

// SVG renders a layered layout: nodes in columns by topological rank,
// ordered vertically by start time within a column - a static
// approximation of the interactive figure layout.
func (g *Graph) SVG() string {
	const (
		colW   = 260
		rowH   = 44
		nodeW  = 200
		nodeH  = 30
		margin = 40
	)
	ranks := g.Ranks()
	cols := map[int][]*Node{}
	maxRank := 0
	for _, n := range g.Nodes() {
		r := ranks[n.ID]
		cols[r] = append(cols[r], n)
		if r > maxRank {
			maxRank = r
		}
	}
	maxRows := 0
	for r := 0; r <= maxRank; r++ {
		sort.Slice(cols[r], func(i, j int) bool {
			if cols[r][i].StartNS != cols[r][j].StartNS {
				return cols[r][i].StartNS < cols[r][j].StartNS
			}
			return cols[r][i].ID < cols[r][j].ID
		})
		if len(cols[r]) > maxRows {
			maxRows = len(cols[r])
		}
	}
	width := margin*2 + (maxRank+1)*colW
	height := margin*2 + maxRows*rowH

	pos := map[string][2]int{}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="Helvetica" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", margin, html.EscapeString(g.Name))

	maxBW := g.maxBandwidth()
	// Edges first so nodes draw on top.
	for r := 0; r <= maxRank; r++ {
		for i, n := range cols[r] {
			pos[n.ID] = [2]int{margin + r*colW, margin + i*rowH}
		}
	}
	for _, e := range g.Edges() {
		p1, ok1 := pos[e.From]
		p2, ok2 := pos[e.To]
		if !ok1 || !ok2 {
			continue
		}
		color := edgeColor(e.Bandwidth, maxBW, e.Reused)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%.1f"><title>%s</title></line>`+"\n",
			p1[0]+nodeW, p1[1]+nodeH/2, p2[0], p2[1]+nodeH/2, color, penWidth(e.Volume),
			html.EscapeString(edgeTooltip(e)))
	}
	for _, n := range g.Nodes() {
		p := pos[n.ID]
		_, fill := nodeStyle(n.Kind)
		label := n.Label
		if label == "" {
			label = n.ID
		}
		if len(label) > 30 {
			label = label[:27] + "..."
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="4" fill="%s" stroke="#333"><title>%s</title></rect>`+"\n",
			p[0], p[1], nodeW, nodeH, fill, html.EscapeString(nodeTooltip(n)))
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", p[0]+6, p[1]+nodeH/2+4, html.EscapeString(label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func nodeTooltip(n *Node) string {
	parts := []string{fmt.Sprintf("%s (%s)", n.ID, n.Kind)}
	if n.Volume > 0 {
		parts = append(parts, "volume "+units.Bytes(n.Volume))
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+": "+n.Attrs[k])
	}
	return strings.Join(parts, "\n")
}

// edgeTooltip formats the detailed access statistics pop-up the paper
// shows (Figure 7): volume, counts, average sizes, class split,
// operation and bandwidth.
func edgeTooltip(e *Edge) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("%s -> %s", e.From, e.To))
	parts = append(parts, "Access Volume: "+units.Bytes(e.Volume))
	parts = append(parts, fmt.Sprintf("Access Count: %d", e.Ops))
	if e.Ops > 0 {
		parts = append(parts, "Average Access Size: "+units.Bytes(e.Volume/e.Ops))
	}
	parts = append(parts, fmt.Sprintf("HDF5 Data Access Count: %d", e.DataOps))
	parts = append(parts, fmt.Sprintf("HDF5 Metadata Access Count: %d", e.MetaOps))
	parts = append(parts, "Operation: "+string(e.Op))
	parts = append(parts, "Bandwidth: "+bandwidthLabel(e.Bandwidth))
	return strings.Join(parts, "\n")
}

// bandwidthLabel formats a bandwidth for display; 0 means the window
// was too short to measure, so report "unknown" rather than 0.00 KB/s.
func bandwidthLabel(bw float64) string {
	if bw <= 0 {
		return "unknown"
	}
	return fmt.Sprintf("%.2f KB/s", bw/1e3)
}

// HTML renders a standalone interactive page: the SVG plus an edge
// statistics table (the "interactable HTML format" of the paper).
func (g *Graph) HTML() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(html.EscapeString(g.Name))
	b.WriteString(`</title><style>
body { font-family: Helvetica, sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #ccc; padding: 4px 8px; font-size: 12px; }
th { background: #eee; }
tr:hover { background: #fff3d6; }
</style></head><body>` + "\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(g.Name))
	b.WriteString(g.SVG())
	b.WriteString("<h2>Edge statistics</h2>\n<table><tr><th>From</th><th>To</th><th>Op</th><th>Volume</th><th>Ops</th><th>Data ops</th><th>Meta ops</th><th>Bandwidth</th><th>Reused</th></tr>\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%v</td></tr>\n",
			html.EscapeString(e.From), html.EscapeString(e.To), e.Op,
			units.Bytes(e.Volume), e.Ops, e.DataOps, e.MetaOps, bandwidthLabel(e.Bandwidth), e.Reused)
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

// jsonGraph is the serialized graph form.
type jsonGraph struct {
	Name  string  `json:"name"`
	Nodes []*Node `json:"nodes"`
	Edges []*Edge `json:"edges"`
}

// MarshalJSON serializes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{Name: g.Name, Nodes: g.Nodes(), Edges: g.edges})
}

// UnmarshalJSON deserializes a graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	g.Name = jg.Name
	g.nodes = make(map[string]*Node)
	g.order = nil
	g.edges = nil
	g.out = make(map[string][]*Edge)
	g.in = make(map[string][]*Edge)
	for _, n := range jg.Nodes {
		g.AddNode(*n)
	}
	for _, e := range jg.Edges {
		if _, err := g.AddEdge(*e); err != nil {
			return err
		}
	}
	return nil
}
