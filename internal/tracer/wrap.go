package tracer

import "dayu/internal/vfd"

// WrapDriver decorates a raw driver with the VFD profiler (and any
// extra observers, e.g. an op log for replay). When the VFD profiler is
// disabled and no extras are given, the driver is returned unchanged.
func (t *Tracer) WrapDriver(inner vfd.Driver, fileName string, extra ...vfd.Observer) vfd.Driver {
	var obs []vfd.Observer
	if o := t.VFDObserver(); o != nil {
		obs = append(obs, o)
	}
	for _, o := range extra {
		if o != nil {
			obs = append(obs, o)
		}
	}
	if len(obs) == 0 {
		return inner
	}
	var observer vfd.Observer
	if len(obs) == 1 {
		observer = obs[0]
	} else {
		observer = multiObserver(obs)
	}
	return vfd.NewProfiledDriver(inner, fileName, t.mailbox, observer)
}

type multiObserver []vfd.Observer

func (m multiObserver) Observe(op vfd.Op) {
	for _, o := range m {
		o.Observe(op)
	}
}
