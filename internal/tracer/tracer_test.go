package tracer

import (
	"os"
	"path/filepath"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/trace"
	"dayu/internal/vfd"
)

// runTracedTask executes fn against a freshly created traced file and
// returns the task trace.
func runTracedTask(t *testing.T, cfg Config, task string, fn func(f *hdf5.File)) *traceResult {
	t.Helper()
	tr := New(cfg)
	tr.BeginTask(task)
	drv := tr.WrapDriver(vfd.NewMemDriver(), "data.h5")
	f, err := hdf5.Create(drv, "data.h5", hdf5.Config{
		Mailbox:  tr.Mailbox(),
		Observer: tr.VOLObserver(),
		Task:     task,
	})
	if err != nil {
		t.Fatal(err)
	}
	fn(f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return &traceResult{tracer: tr, trace: tr.EndTask()}
}

type traceResult struct {
	tracer *Tracer
	trace  *trace.TaskTrace
}

func TestTracedWriteProducesAllRecordLayers(t *testing.T) {
	res := runTracedTask(t, Config{}, "stage1/t0", func(f *hdf5.File) {
		ds, err := f.Root().CreateDataset("temperature", hdf5.Float64, []int64{128}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteAll(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ReadAll(); err != nil {
			t.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
	})
	tt := res.trace
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	if tt.Task != "stage1/t0" {
		t.Errorf("task = %q", tt.Task)
	}

	// Table I: the dataset object record exists with full description.
	var found bool
	for _, o := range tt.Objects {
		if o.Object == "/temperature" {
			found = true
			if o.Datatype != "float64" || o.Layout != "contiguous" {
				t.Errorf("object description = %+v", o)
			}
			if o.Writes != 1 || o.Reads != 1 {
				t.Errorf("object access counts = r%d w%d", o.Reads, o.Writes)
			}
			if o.BytesWritten != 1024 || o.BytesRead != 1024 {
				t.Errorf("object bytes = r%d w%d", o.BytesRead, o.BytesWritten)
			}
			if o.Lifetime() < 0 {
				t.Error("negative lifetime")
			}
		}
	}
	if !found {
		t.Fatalf("no object record for /temperature: %+v", tt.Objects)
	}

	// Table II: one file record with metadata and data traffic.
	if len(tt.Files) != 1 {
		t.Fatalf("files = %d", len(tt.Files))
	}
	fr := tt.Files[0]
	if fr.File != "data.h5" {
		t.Errorf("file = %q", fr.File)
	}
	if fr.MetaOps == 0 || fr.DataOps == 0 {
		t.Errorf("expected both op classes: meta=%d data=%d", fr.MetaOps, fr.DataOps)
	}
	if fr.DataBytes < 2048 { // 1 KiB written + 1 KiB read
		t.Errorf("data bytes = %d", fr.DataBytes)
	}
	if len(fr.Regions) == 0 {
		t.Error("no address regions recorded")
	}
	if fr.Lifetime() < 0 {
		t.Error("negative file lifetime")
	}

	// Characteristic Mapper: the dataset's raw data ops are attributed
	// to it, and unattributed (superblock) traffic appears under "".
	var dsStat, anonStat bool
	for _, m := range tt.Mapped {
		if m.Object == "/temperature" {
			dsStat = true
			if m.DataOps < 2 {
				t.Errorf("mapped data ops = %d", m.DataOps)
			}
			if m.DataBytes != 2048 {
				t.Errorf("mapped data bytes = %d", m.DataBytes)
			}
			if len(m.Regions) == 0 {
				t.Error("mapped stat has no regions")
			}
		}
		if m.Object == "" && m.MetaOps > 0 {
			anonStat = true
		}
	}
	if !dsStat {
		t.Error("no mapped stat for dataset")
	}
	if !anonStat {
		t.Error("no unattributed metadata stat (superblock)")
	}

	// Component times were accounted.
	times := res.tracer.Timing()
	if times.AccessTracker == 0 || times.CharacteristicMapper == 0 {
		t.Errorf("component times = %+v", times)
	}
	p, tr2, m := times.Fractions()
	if sum := p + tr2 + m; sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum = %v", sum)
	}
}

func TestIOTraceToggleAndSkip(t *testing.T) {
	work := func(f *hdf5.File) {
		ds, _ := f.Root().CreateDataset("d", hdf5.Uint8, []int64{64}, nil)
		for i := 0; i < 4; i++ {
			_ = ds.WriteAll(make([]byte, 64))
		}
	}
	off := runTracedTask(t, Config{}, "t", work).trace
	if len(off.IOTrace) != 0 {
		t.Errorf("I/O trace recorded while disabled: %d", len(off.IOTrace))
	}
	on := runTracedTask(t, Config{IOTrace: true}, "t", work).trace
	if len(on.IOTrace) == 0 {
		t.Fatal("I/O trace empty while enabled")
	}
	skipped := runTracedTask(t, Config{IOTrace: true, SkipOps: 5}, "t", work).trace
	if got, want := len(skipped.IOTrace), len(on.IOTrace)-5; got != want {
		t.Errorf("skip: got %d records, want %d", got, want)
	}
}

func TestDisableVOL(t *testing.T) {
	res := runTracedTask(t, Config{DisableVOL: true}, "t", func(f *hdf5.File) {
		ds, _ := f.Root().CreateDataset("d", hdf5.Uint8, []int64{8}, nil)
		_ = ds.WriteAll(make([]byte, 8))
	})
	if len(res.trace.Objects) != 0 {
		t.Error("object records present with VOL disabled")
	}
	if len(res.trace.Files) == 0 {
		t.Error("VFD records missing")
	}
}

func TestDisableVFD(t *testing.T) {
	res := runTracedTask(t, Config{DisableVFD: true}, "t", func(f *hdf5.File) {
		ds, _ := f.Root().CreateDataset("d", hdf5.Uint8, []int64{8}, nil)
		_ = ds.WriteAll(make([]byte, 8))
	})
	if len(res.trace.Files) != 0 || len(res.trace.Mapped) != 0 {
		t.Error("VFD records present with VFD disabled")
	}
	if len(res.trace.Objects) == 0 {
		t.Error("VOL records missing")
	}
}

func TestMultiTaskReset(t *testing.T) {
	tr := New(Config{})
	for i, task := range []string{"t1", "t2"} {
		tr.BeginTask(task)
		drv := tr.WrapDriver(vfd.NewMemDriver(), "f.h5")
		f, err := hdf5.Create(drv, "f.h5", hdf5.Config{
			Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: task,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds, _ := f.Root().CreateDataset("d", hdf5.Uint8, []int64{8}, nil)
		_ = ds.WriteAll(make([]byte, 8))
		_ = f.Close()
		tt := tr.EndTask()
		if tt.Task != task {
			t.Errorf("iteration %d: task = %q", i, tt.Task)
		}
		// Each task sees exactly one file's stats: state was reset.
		if len(tt.Files) != 1 {
			t.Errorf("iteration %d: files = %d", i, len(tt.Files))
		}
	}
}

func TestSequentialDetection(t *testing.T) {
	res := runTracedTask(t, Config{}, "t", func(f *hdf5.File) {
		ds, _ := f.Root().CreateDataset("d", hdf5.Uint8, []int64{1024}, nil)
		// Sequential element-wise writes.
		for off := int64(0); off < 1024; off += 256 {
			_ = ds.Write(hdf5.Slab1D(off, 256), make([]byte, 256))
		}
	})
	if res.trace.Files[0].SequentialOps == 0 {
		t.Error("no sequential ops detected for streaming writes")
	}
}

func TestLoadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dayu.json")
	if err := os.WriteFile(path, []byte(`{"page_size":65536,"io_trace":true,"skip_ops":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := NewFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tr.Config()
	if cfg.PageSize != 65536 || !cfg.IOTrace || cfg.SkipOps != 10 {
		t.Errorf("config = %+v", cfg)
	}
	if tr.Timing().InputParser == 0 {
		t.Error("input parser time not accounted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing config loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadConfig(bad); err == nil {
		t.Error("bad config loaded")
	}
	neg := filepath.Join(dir, "neg.json")
	_ = os.WriteFile(neg, []byte(`{"page_size":-1}`), 0o644)
	if _, err := LoadConfig(neg); err == nil {
		t.Error("negative config loaded")
	}
}

func TestChunkedVsContiguousOpCounts(t *testing.T) {
	// A chunked dataset must generate more metadata operations than a
	// contiguous one for the same data - the phenomenon behind the
	// paper's Figure 13b.
	countMeta := func(layout hdf5.Layout) int64 {
		var opts *hdf5.DatasetOpts
		if layout == hdf5.Chunked {
			opts = &hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{64}}
		}
		res := runTracedTask(t, Config{}, "t", func(f *hdf5.File) {
			ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{1024}, opts)
			if err != nil {
				t.Fatal(err)
			}
			_ = ds.WriteAll(make([]byte, 1024))
			_, _ = ds.ReadAll()
		})
		return res.trace.Files[0].MetaOps
	}
	contig := countMeta(hdf5.Contiguous)
	chunked := countMeta(hdf5.Chunked)
	if chunked <= contig {
		t.Errorf("chunked meta ops (%d) not greater than contiguous (%d)", chunked, contig)
	}
}
