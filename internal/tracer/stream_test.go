package tracer

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/trace"
)

// recordingSink snapshots each emitted record by encoding it, since the
// tracer keeps profiling into the same aggregation tables after
// EmitCheckpoint returns.
type recordingSink struct {
	mu          sync.Mutex
	err         error
	checkpoints []recordedCheckpoint
	finals      []*trace.TaskTrace
}

type recordedCheckpoint struct {
	seq  uint64
	data []byte
}

func (s *recordingSink) EmitCheckpoint(t *trace.TaskTrace, seq uint64) {
	var buf bytes.Buffer
	err := t.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: seq})
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil && s.err == nil {
		s.err = err
		return
	}
	s.checkpoints = append(s.checkpoints, recordedCheckpoint{seq: seq, data: buf.Bytes()})
}

func (s *recordingSink) EmitFinal(t *trace.TaskTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finals = append(s.finals, t)
}

// streamWorkload is a deterministic body with enough file operations to
// cross several checkpoint periods.
func streamWorkload(t *testing.T) func(f *hdf5.File) {
	return func(f *hdf5.File) {
		ds, err := f.Root().CreateDataset("field", hdf5.Float64, []int64{256}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := ds.WriteAll(make([]byte, 2048)); err != nil {
				t.Fatal(err)
			}
			if _, err := ds.ReadAll(); err != nil {
				t.Fatal(err)
			}
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func fixedClock() func() time.Time {
	at := time.Unix(0, 1_000_000)
	return func() time.Time { return at }
}

// normalizeNS zeroes the wall-clock fields that the VFD/VOL layers
// stamp with real time (Config.Now only governs task start/end), so
// two runs of the same workload compare structurally.
func normalizeNS(tt *trace.TaskTrace) *trace.TaskTrace {
	cp := *tt
	cp.StartNS, cp.EndNS = 0, 0
	cp.Objects = append([]trace.ObjectRecord(nil), tt.Objects...)
	for i := range cp.Objects {
		cp.Objects[i].AcquiredNS, cp.Objects[i].ReleasedNS = 0, 0
	}
	cp.Files = append([]trace.FileRecord(nil), tt.Files...)
	for i := range cp.Files {
		cp.Files[i].OpenNS, cp.Files[i].CloseNS = 0, 0
	}
	cp.Mapped = append([]trace.MappedStat(nil), tt.Mapped...)
	for i := range cp.Mapped {
		cp.Mapped[i].FirstNS, cp.Mapped[i].LastNS = 0, 0
	}
	return &cp
}

func totalFileOps(tt *trace.TaskTrace) int64 {
	var n int64
	for _, f := range tt.Files {
		n += f.Ops
	}
	return n
}

// TestStreamCheckpoints drives a traced task with a sink attached and
// checks the streamed records: strictly increasing sequence numbers,
// each checkpoint a valid cumulative prefix of the final trace, and —
// the invariant live analysis depends on — the final trace identical
// to one produced by a sink-less run of the same workload.
func TestStreamCheckpoints(t *testing.T) {
	sink := &recordingSink{}
	withSink := runTracedTask(t, Config{Sink: sink, CheckpointOps: 4, Now: fixedClock()},
		"stage0/stream", streamWorkload(t))
	plain := runTracedTask(t, Config{Now: fixedClock()},
		"stage0/stream", streamWorkload(t))

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.err != nil {
		t.Fatal(sink.err)
	}
	if len(sink.checkpoints) < 2 {
		t.Fatalf("checkpoints = %d, want at least 2", len(sink.checkpoints))
	}
	// EmitFinal is the workflow engine's job (attempt accounting is
	// stamped after EndTask), so a bare tracer run emits none.
	if len(sink.finals) != 0 {
		t.Fatalf("tracer emitted %d finals; that is the engine's job", len(sink.finals))
	}

	final := withSink.trace
	prevSeq := uint64(0)
	prevOps := int64(-1)
	for i, ck := range sink.checkpoints {
		if ck.seq <= prevSeq {
			t.Fatalf("checkpoint %d: seq %d not increasing (prev %d)", i, ck.seq, prevSeq)
		}
		prevSeq = ck.seq
		tt, meta, err := trace.DecodeBytesMeta(ck.data, trace.DecodeOptions{})
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if !meta.Incremental || meta.CheckpointSeq != ck.seq {
			t.Fatalf("checkpoint %d: meta = %+v", i, meta)
		}
		if tt.Task != final.Task {
			t.Fatalf("checkpoint %d: task %q", i, tt.Task)
		}
		if err := tt.Validate(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		ops := totalFileOps(tt)
		if ops <= prevOps {
			t.Fatalf("checkpoint %d: file ops %d not cumulative (prev %d)", i, ops, prevOps)
		}
		prevOps = ops
	}
	if finalOps := totalFileOps(final); prevOps > finalOps {
		t.Fatalf("last checkpoint has %d file ops, final only %d", prevOps, finalOps)
	}

	// Non-destructiveness: checkpointing must not perturb the final
	// trace in any way.
	if got, want := normalizeNS(final), normalizeNS(plain.trace); !reflect.DeepEqual(got, want) {
		t.Fatalf("final trace with checkpoints diverged from plain run:\n%+v\nvs\n%+v", got, want)
	}
}

// deltaSink retains each checkpoint exactly like a delta-framing
// client would, verifying the two contracts delta streaming rests on:
// a retained snapshot is never mutated by later profiling (Checkpoint
// allocates fresh slices), and consecutive checkpoints of one task
// admit an exact record-level delta (monotone growth).
type deltaSink struct {
	mu       sync.Mutex
	prev     *trace.TaskTrace
	prevSnap []byte // prev's encoding at emit time
	diffs    int
	inexact  int
	err      error
}

func snapshotBytes(t *trace.TaskTrace) ([]byte, error) {
	var buf bytes.Buffer
	err := t.EncodeBinaryOpts(&buf, trace.BinaryOptions{Incremental: true, CheckpointSeq: 1})
	return buf.Bytes(), err
}

func (s *deltaSink) EmitCheckpoint(t *trace.TaskTrace, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if s.prev != nil {
		reenc, err := snapshotBytes(s.prev)
		if err != nil {
			s.err = err
			return
		}
		if !bytes.Equal(reenc, s.prevSnap) {
			s.err = fmt.Errorf("retained checkpoint mutated by later profiling")
			return
		}
		if d, ok := trace.Diff(s.prev, t); ok {
			s.diffs++
			if !reflect.DeepEqual(trace.ApplyDelta(s.prev, d), t) {
				s.err = fmt.Errorf("delta does not reassemble to the checkpoint")
				return
			}
		} else {
			s.inexact++
		}
	}
	snap, err := snapshotBytes(t)
	if err != nil {
		s.err = err
		return
	}
	s.prev, s.prevSnap = t, snap
}

func (s *deltaSink) EmitFinal(*trace.TaskTrace) {}

// TestStreamCheckpointsAdmitDeltas pins the Sink retention contract on
// a real traced run: every consecutive checkpoint pair diffs exactly,
// and the retained base survives later profiling unchanged — the
// invariants delta framing (client) and delta folding (server) assume.
func TestStreamCheckpointsAdmitDeltas(t *testing.T) {
	sink := &deltaSink{}
	runTracedTask(t, Config{Sink: sink, CheckpointOps: 4, Now: fixedClock()},
		"stage0/delta", streamWorkload(t))

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.err != nil {
		t.Fatal(sink.err)
	}
	if sink.diffs < 1 {
		t.Fatalf("observed %d consecutive checkpoint pairs, want at least 1", sink.diffs)
	}
	if sink.inexact != 0 {
		t.Fatalf("%d of %d checkpoint pairs admitted no exact delta; tracer growth must be monotone",
			sink.inexact, sink.inexact+sink.diffs)
	}
}

// TestStreamSeqMonotoneAcrossTasks pins the process-global ordering:
// records from successive tracers (retry attempts reuse nothing) still
// carry increasing sequence numbers, so "keep the highest seq" on the
// consumer side is delivery-order independent.
func TestStreamSeqMonotoneAcrossTasks(t *testing.T) {
	sink := &recordingSink{}
	cfg := Config{Sink: sink, CheckpointOps: 4, Now: fixedClock()}
	runTracedTask(t, cfg, "stage0/a", streamWorkload(t))
	runTracedTask(t, cfg, "stage0/b", streamWorkload(t))

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.err != nil {
		t.Fatal(sink.err)
	}
	if len(sink.checkpoints) < 4 {
		t.Fatalf("checkpoints = %d, want at least 4", len(sink.checkpoints))
	}
	for i := 1; i < len(sink.checkpoints); i++ {
		if sink.checkpoints[i].seq <= sink.checkpoints[i-1].seq {
			t.Fatalf("seq %d -> %d across tasks", sink.checkpoints[i-1].seq, sink.checkpoints[i].seq)
		}
	}
}
