package tracer

import (
	"sort"
	"sync/atomic"
	"time"

	"dayu/internal/semantics"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

// Sink receives streamed task records (the live-analysis event feed).
// EmitCheckpoint ships a cumulative snapshot of a still-running task's
// trace-so-far; seq is process-monotone, so of two checkpoints for the
// same task the one with the larger seq is always the fresher — even
// across retry attempts, which each run on a fresh Tracer. EmitFinal
// ships the completed trace exactly as it will be persisted.
//
// A Sink may retain the emitted trace beyond the call — delta-framing
// sinks keep it as the diff base for the next checkpoint. That is safe
// because Checkpoint allocates fresh row slices on every call; later
// profiling never mutates an already-emitted snapshot. Successive
// checkpoints of one task also grow monotonically (rows accumulate,
// the I/O trace only appends), which is what makes record-level deltas
// between consecutive checkpoints exact (trace.Diff).
type Sink interface {
	EmitCheckpoint(t *trace.TaskTrace, seq uint64)
	EmitFinal(t *trace.TaskTrace)
}

// streamSeq numbers checkpoints across every tracer in the process.
var streamSeq atomic.Uint64

// Tracer is one Data Semantic Mapper instance. It profiles one task at a
// time (BeginTask/EndTask) and emits a trace.TaskTrace per task. It is
// not safe for concurrent use; simulated processes each own a Tracer,
// mirroring DaYu's per-process profiler state.
type Tracer struct {
	cfg     Config
	mailbox *semantics.Mailbox
	task    string
	startNS int64

	volProf *volProfiler
	vfdProf *vfdProfiler

	times ComponentTimes
}

// New builds a tracer from an already-parsed configuration.
func New(cfg Config) *Tracer {
	t0 := time.Now()
	cfg = cfg.withDefaults()
	tr := &Tracer{cfg: cfg, mailbox: semantics.NewMailbox()}
	tr.volProf = newVOLProfiler(tr)
	tr.vfdProf = newVFDProfiler(tr)
	tr.times.InputParser += time.Since(t0)
	return tr
}

// NewFromFile builds a tracer by parsing the JSON config at path; the
// parse time is charged to the Input Parser component.
func NewFromFile(path string) (*Tracer, error) {
	t0 := time.Now()
	cfg, err := LoadConfig(path)
	if err != nil {
		return nil, err
	}
	tr := New(cfg)
	tr.times.InputParser += time.Since(t0)
	return tr, nil
}

// Config returns the active configuration.
func (t *Tracer) Config() Config { return t.cfg }

// Mailbox returns the VOL-to-VFD join channel; pass it to both the
// format library and the profiled driver.
func (t *Tracer) Mailbox() *semantics.Mailbox { return t.mailbox }

// VOLObserver returns the object-level profiler hook, or nil when the
// VOL profiler is disabled.
func (t *Tracer) VOLObserver() vol.Observer {
	if t.cfg.DisableVOL {
		return nil
	}
	return t.volProf
}

// VFDObserver returns the file-level profiler hook, or nil when the VFD
// profiler is disabled.
func (t *Tracer) VFDObserver() vfd.Observer {
	if t.cfg.DisableVFD {
		return nil
	}
	return t.vfdProf
}

// Timing returns the cumulative per-component execution times.
func (t *Tracer) Timing() ComponentTimes { return t.times }

// BeginTask starts profiling a task: the workflow launcher must inform
// DaYu of the current task (paper §IV).
func (t *Tracer) BeginTask(name string) {
	t.task = name
	t.startNS = t.cfg.Now().UnixNano()
	t.mailbox.SetTask(name)
	t.volProf.reset()
	t.vfdProf.reset()
}

// EndTask finalizes the current task's statistics into a TaskTrace.
// Profiler state is not reset here (BeginTask resets), which is what
// lets Checkpoint share the implementation.
func (t *Tracer) EndTask() *trace.TaskTrace {
	return t.Checkpoint()
}

// Checkpoint assembles a cumulative snapshot of the current task's
// trace-so-far without disturbing profiler state: the finalize paths
// only read the aggregation tables (state resets in BeginTask), so a
// checkpoint followed by more I/O and EndTask yields exactly the trace
// EndTask would have produced without the checkpoint. This is the
// streamed-record builder for live analysis — each emitted record
// replaces the previous one wholesale on the consumer side.
func (t *Tracer) Checkpoint() *trace.TaskTrace {
	t0 := time.Now()
	out := &trace.TaskTrace{
		Task:    t.task,
		StartNS: t.startNS,
		EndNS:   t.cfg.Now().UnixNano(),
	}
	out.Objects = t.volProf.finalize(t.task)
	files, mapped, ioTrace := t.vfdProf.finalize(t.task)
	out.Files = files
	out.Mapped = mapped
	out.IOTrace = ioTrace
	// File lifetimes come from the VOL layer (open/close events); fold
	// them into the Table II records.
	t.volProf.applyFileLifetimes(out.Files)
	t.times.CharacteristicMapper += time.Since(t0)
	return out
}

// ---------- VOL profiler (Table I) ----------

type objKey struct {
	file   string
	object string
}

type objAgg struct {
	info       vol.ObjectInfo
	acquiredNS int64
	releasedNS int64
	reads      int64
	writes     int64
	bytesRead  int64
	bytesWrite int64
}

type fileLife struct {
	openNS  int64
	closeNS int64
}

type volProfiler struct {
	tr      *Tracer
	objects map[objKey]*objAgg
	files   map[string]*fileLife
}

func newVOLProfiler(tr *Tracer) *volProfiler {
	p := &volProfiler{tr: tr}
	p.reset()
	return p
}

func (p *volProfiler) reset() {
	p.objects = make(map[objKey]*objAgg)
	p.files = make(map[string]*fileLife)
}

// OnEvent implements vol.Observer. All statistics live in hash tables
// for the duration of the task (paper §IV); logging is deferred to
// EndTask, so repeated open/close of the same object only updates
// counters.
func (p *volProfiler) OnEvent(ev vol.Event) {
	t0 := time.Now()
	ns := ev.Wall.UnixNano()
	switch ev.Kind {
	case vol.FileCreate, vol.FileOpen:
		fl := p.files[ev.Info.File]
		if fl == nil {
			p.files[ev.Info.File] = &fileLife{openNS: ns, closeNS: ns}
		}
	case vol.FileClose:
		if fl := p.files[ev.Info.File]; fl != nil {
			fl.closeNS = ns
		}
	default:
		key := objKey{file: ev.Info.File, object: ev.Info.Name}
		agg := p.objects[key]
		if agg == nil {
			agg = &objAgg{info: ev.Info, acquiredNS: ns, releasedNS: ns}
			p.objects[key] = agg
		}
		if ev.Info.Datatype != "" {
			agg.info = ev.Info // keep the richest description seen
		}
		agg.releasedNS = ns
		switch ev.Kind {
		case vol.DatasetRead, vol.AttrRead:
			agg.reads++
			agg.bytesRead += ev.Bytes
		case vol.DatasetWrite, vol.AttrWrite:
			agg.writes++
			agg.bytesWrite += ev.Bytes
		}
	}
	p.tr.times.AccessTracker += time.Since(t0)
}

func (p *volProfiler) finalize(task string) []trace.ObjectRecord {
	out := make([]trace.ObjectRecord, 0, len(p.objects))
	for key, agg := range p.objects {
		out = append(out, trace.ObjectRecord{
			Task:         task,
			File:         key.file,
			Object:       key.object,
			Type:         agg.info.Type,
			Datatype:     agg.info.Datatype,
			Shape:        agg.info.Shape,
			ElemSize:     agg.info.ElemSize,
			Layout:       agg.info.Layout,
			ChunkDims:    agg.info.ChunkDims,
			AcquiredNS:   agg.acquiredNS,
			ReleasedNS:   agg.releasedNS,
			Reads:        agg.reads,
			Writes:       agg.writes,
			BytesRead:    agg.bytesRead,
			BytesWritten: agg.bytesWrite,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// applyFileLifetimes copies VOL-observed open/close times into Table II
// records, which otherwise only know op timestamps.
func (p *volProfiler) applyFileLifetimes(files []trace.FileRecord) {
	for i := range files {
		if fl := p.files[files[i].File]; fl != nil {
			files[i].OpenNS = fl.openNS
			if fl.closeNS > files[i].CloseNS {
				files[i].CloseNS = fl.closeNS
			}
		}
	}
}

// ---------- VFD profiler (Table II) + Characteristic Mapper ----------

type fileAgg struct {
	firstNS     int64
	lastNS      int64
	ops         int64
	reads       int64
	writes      int64
	bytesR      int64
	bytesW      int64
	dataReads   int64
	dataWrites  int64
	seqOps      int64
	metaOps     int64
	dataOps     int64
	metaBytes   int64
	dataBytes   int64
	lastDataEnd int64
	extents     []trace.Extent
}

type mapAgg struct {
	metaOps   int64
	dataOps   int64
	metaBytes int64
	dataBytes int64
	reads     int64
	writes    int64
	firstNS   int64
	lastNS    int64
	extents   []trace.Extent
}

// extentMergeThreshold bounds the raw extent list before an incremental
// merge, keeping tracker memory proportional to distinct regions.
const extentMergeThreshold = 1024

type vfdProfiler struct {
	tr      *Tracer
	files   map[string]*fileAgg
	mapped  map[objKey]*mapAgg
	ioTrace []trace.IORecord
	opSeen  int64
}

func newVFDProfiler(tr *Tracer) *vfdProfiler {
	p := &vfdProfiler{tr: tr}
	p.reset()
	return p
}

func (p *vfdProfiler) reset() {
	p.files = make(map[string]*fileAgg)
	p.mapped = make(map[objKey]*mapAgg)
	p.ioTrace = nil
	p.opSeen = 0
}

// timingSampleRate controls how often the per-op component timers take
// wall-clock samples: timing every operation would itself dominate the
// tracer's cost, so one in every N ops is measured and scaled by N.
const timingSampleRate = 16

// Observe implements vfd.Observer. The file-level accounting is Access
// Tracker work; the per-object join is Characteristic Mapper work, and
// the two are timed separately (sampled) for the Figure 10 breakdown.
func (p *vfdProfiler) Observe(op vfd.Op) {
	timed := p.opSeen%timingSampleRate == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	ns := op.Wall.UnixNano()

	agg := p.files[op.File]
	if agg == nil {
		agg = &fileAgg{firstNS: ns}
		p.files[op.File] = agg
	}
	agg.lastNS = ns
	agg.ops++
	if op.Write {
		agg.writes++
		agg.bytesW += op.Length
	} else {
		agg.reads++
		agg.bytesR += op.Length
	}
	if op.Class == sim.Metadata {
		agg.metaOps++
		agg.metaBytes += op.Length
	} else {
		// Streaming detection considers raw-data traffic only: metadata
		// lookups (headers, chunk indexes) jump around by design.
		if op.Offset >= agg.lastDataEnd && agg.dataOps > 0 {
			agg.seqOps++
		}
		agg.lastDataEnd = op.End()
		agg.dataOps++
		agg.dataBytes += op.Length
		if op.Write {
			agg.dataWrites++
		} else {
			agg.dataReads++
		}
	}
	agg.extents = append(agg.extents, trace.Extent{Start: op.Offset, End: op.End()})
	if len(agg.extents) >= extentMergeThreshold {
		agg.extents = trace.MergeExtents(agg.extents)
	}

	p.opSeen++
	if p.tr.cfg.IOTrace && p.opSeen > p.tr.cfg.SkipOps {
		p.ioTrace = append(p.ioTrace, trace.IORecord{
			Seq:    op.Seq,
			WallNS: ns,
			File:   op.File,
			Offset: op.Offset,
			Length: op.Length,
			Write:  op.Write,
			Meta:   op.Class == sim.Metadata,
			Object: op.Object,
		})
	}
	var t1 time.Time
	if timed {
		t1 = time.Now()
		p.tr.times.AccessTracker += t1.Sub(t0) * timingSampleRate
	}

	// Characteristic Mapper: attribute the op to the current data object
	// announced through the mailbox.
	key := objKey{file: op.File, object: op.Object}
	m := p.mapped[key]
	if m == nil {
		m = &mapAgg{firstNS: ns}
		p.mapped[key] = m
	}
	m.lastNS = ns
	if op.Class == sim.Metadata {
		m.metaOps++
		m.metaBytes += op.Length
	} else {
		m.dataOps++
		m.dataBytes += op.Length
	}
	if op.Write {
		m.writes++
	} else {
		m.reads++
	}
	m.extents = append(m.extents, trace.Extent{Start: op.Offset, End: op.End()})
	if len(m.extents) >= extentMergeThreshold {
		m.extents = trace.MergeExtents(m.extents)
	}
	if timed {
		p.tr.times.CharacteristicMapper += time.Since(t1) * timingSampleRate
	}

	// Streamed checkpoints: every CheckpointOps fully-accounted
	// operations, ship the cumulative trace-so-far. Emission sits after
	// both the file-level and object-level updates so a checkpoint
	// never splits one operation's accounting.
	if cfg := &p.tr.cfg; cfg.Sink != nil && cfg.CheckpointOps > 0 && p.opSeen%cfg.CheckpointOps == 0 {
		cfg.Sink.EmitCheckpoint(p.tr.Checkpoint(), streamSeq.Add(1))
	}
}

func (p *vfdProfiler) finalize(task string) ([]trace.FileRecord, []trace.MappedStat, []trace.IORecord) {
	files := make([]trace.FileRecord, 0, len(p.files))
	for name, agg := range p.files {
		files = append(files, trace.FileRecord{
			Task:          task,
			File:          name,
			OpenNS:        agg.firstNS,
			CloseNS:       agg.lastNS,
			Ops:           agg.ops,
			Reads:         agg.reads,
			Writes:        agg.writes,
			BytesRead:     agg.bytesR,
			BytesWritten:  agg.bytesW,
			DataReads:     agg.dataReads,
			DataWrites:    agg.dataWrites,
			SequentialOps: agg.seqOps,
			MetaOps:       agg.metaOps,
			DataOps:       agg.dataOps,
			MetaBytes:     agg.metaBytes,
			DataBytes:     agg.dataBytes,
			Regions:       trace.MergeExtents(agg.extents),
		})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].File < files[j].File })

	mapped := make([]trace.MappedStat, 0, len(p.mapped))
	for key, m := range p.mapped {
		mapped = append(mapped, trace.MappedStat{
			Task:      task,
			File:      key.file,
			Object:    key.object,
			MetaOps:   m.metaOps,
			DataOps:   m.dataOps,
			MetaBytes: m.metaBytes,
			DataBytes: m.dataBytes,
			Reads:     m.reads,
			Writes:    m.writes,
			Regions:   trace.MergeExtents(m.extents),
			FirstNS:   m.firstNS,
			LastNS:    m.lastNS,
		})
	}
	sort.Slice(mapped, func(i, j int) bool {
		if mapped[i].File != mapped[j].File {
			return mapped[i].File < mapped[j].File
		}
		return mapped[i].Object < mapped[j].Object
	})
	return files, mapped, p.ioTrace
}
