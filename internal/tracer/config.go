// Package tracer implements DaYu's Data Semantic Mapper (paper §IV):
// an Input Parser for user configuration, an Access Tracker with a
// VOL-level profiler (Table I semantics) and a VFD-level profiler
// (Table II semantics), and a Characteristic Mapper that joins
// object-level accesses to low-level I/O operations through the
// semantics mailbox. Per-component execution time is accounted so the
// overhead breakdown of Figure 10 can be reproduced.
package tracer

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Config is the user-provided tracer configuration the Input Parser
// reads (paper: statistics location, page size, ops to skip, I/O
// tracing on/off).
type Config struct {
	// OutDir is where task traces are written (empty: caller handles
	// persistence).
	OutDir string `json:"out_dir,omitempty"`
	// PageSize is the address-region page size the Workflow Analyzer
	// will use; it is carried through for the CLI. Default 4096.
	PageSize int64 `json:"page_size,omitempty"`
	// SkipOps drops the first N raw I/O records from the time-sensitive
	// I/O trace, reducing storage for steady-state analysis.
	SkipOps int64 `json:"skip_ops,omitempty"`
	// IOTrace enables time-sensitive raw I/O tracing. It is the
	// storage-overhead knob of Figure 9d: without it trace storage is
	// constant in the number of operations.
	IOTrace bool `json:"io_trace,omitempty"`
	// DisableVOL turns off the object-level profiler.
	DisableVOL bool `json:"disable_vol,omitempty"`
	// DisableVFD turns off the file-level profiler.
	DisableVFD bool `json:"disable_vfd,omitempty"`
	// Now supplies wall-clock timestamps; defaults to time.Now.
	Now func() time.Time `json:"-"`
	// Sink, when non-nil, receives streamed task records: cumulative
	// mid-task checkpoints every CheckpointOps observed file
	// operations, and — emitted by the workflow engine once attempt
	// and failure accounting is final — the completed trace.
	// Implementations must be safe for concurrent use: parallel stages
	// share one Sink across their per-task tracers, and must consume
	// (or copy) each record synchronously — the tracer keeps profiling
	// into the same buffers after EmitCheckpoint returns.
	Sink Sink `json:"-"`
	// CheckpointOps is the file-operation period between streamed
	// checkpoints; 0 disables mid-task checkpoints (finals still
	// stream when Sink is set).
	CheckpointOps int64 `json:"checkpoint_ops,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// LoadConfig reads a JSON configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("tracer: read config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("tracer: parse config %s: %w", path, err)
	}
	if c.PageSize < 0 || c.SkipOps < 0 {
		return Config{}, fmt.Errorf("tracer: config %s has negative values", path)
	}
	return c, nil
}

// ComponentTimes is the per-component execution-time breakdown of the
// Data Semantic Mapper (Figure 10): Input Parser, Access Tracker and
// Characteristic Mapper.
type ComponentTimes struct {
	InputParser          time.Duration
	AccessTracker        time.Duration
	CharacteristicMapper time.Duration
}

// Total returns the summed tracer time.
func (c ComponentTimes) Total() time.Duration {
	return c.InputParser + c.AccessTracker + c.CharacteristicMapper
}

// Fractions returns each component's share of the total.
func (c ComponentTimes) Fractions() (parser, tracker, mapper float64) {
	total := float64(c.Total())
	if total == 0 {
		return 0, 0, 0
	}
	return float64(c.InputParser) / total,
		float64(c.AccessTracker) / total,
		float64(c.CharacteristicMapper) / total
}
