package tracer

import (
	"math/rand"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/trace"
	"dayu/internal/vfd"
)

// TestMapperConservation: the Characteristic Mapper must conserve the
// operation stream - for every file, the per-object mapped statistics
// (including the unattributed bucket) must sum exactly to the Table II
// file totals, for arbitrary access patterns. A mapper that loses or
// double-counts operations would silently corrupt every downstream
// graph and finding.
func TestMapperConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 25; round++ {
		tr := New(Config{})
		tr.BeginTask("t")
		drv := tr.WrapDriver(vfd.NewMemDriver(), "f.h5")
		f, err := hdf5.Create(drv, "f.h5", hdf5.Config{
			Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "t",
		})
		if err != nil {
			t.Fatal(err)
		}
		// Random mix of datasets, layouts, attrs and accesses.
		nds := 1 + rng.Intn(5)
		var names []string
		for i := 0; i < nds; i++ {
			name := string(rune('a' + i))
			size := int64(64 + rng.Intn(4096))
			var opts *hdf5.DatasetOpts
			switch rng.Intn(3) {
			case 1:
				opts = &hdf5.DatasetOpts{Layout: hdf5.Chunked,
					ChunkDims: []int64{int64(16 + rng.Intn(int(size)))}}
			case 2:
				opts = &hdf5.DatasetOpts{Layout: hdf5.Compact}
			}
			ds, err := f.Root().CreateDataset(name, hdf5.Uint8, []int64{size}, opts)
			if err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
			if err := ds.WriteAll(make([]byte, size)); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := ds.SetAttrString("u", "x"); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 10; i++ {
			ds, err := f.Root().OpenDataset(names[rng.Intn(len(names))])
			if err != nil {
				t.Fatal(err)
			}
			dim := ds.Dims()[0]
			off := rng.Int63n(dim)
			cnt := 1 + rng.Int63n(dim-off)
			if rng.Intn(2) == 0 {
				if _, err := ds.Read(hdf5.Slab1D(off, cnt)); err != nil {
					t.Fatal(err)
				}
			} else if err := ds.Write(hdf5.Slab1D(off, cnt), make([]byte, cnt)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		tt := tr.EndTask()
		checkConservation(t, tt, round)
	}
}

func checkConservation(t *testing.T, tt *trace.TaskTrace, round int) {
	t.Helper()
	type sums struct {
		metaOps, dataOps, metaBytes, dataBytes, reads, writes int64
	}
	perFile := map[string]sums{}
	for _, ms := range tt.Mapped {
		s := perFile[ms.File]
		s.metaOps += ms.MetaOps
		s.dataOps += ms.DataOps
		s.metaBytes += ms.MetaBytes
		s.dataBytes += ms.DataBytes
		s.reads += ms.Reads
		s.writes += ms.Writes
		perFile[ms.File] = s
	}
	for _, fr := range tt.Files {
		s := perFile[fr.File]
		if s.metaOps != fr.MetaOps || s.dataOps != fr.DataOps {
			t.Errorf("round %d: op conservation violated for %s: mapped %d/%d vs file %d/%d",
				round, fr.File, s.metaOps, s.dataOps, fr.MetaOps, fr.DataOps)
		}
		if s.metaBytes != fr.MetaBytes || s.dataBytes != fr.DataBytes {
			t.Errorf("round %d: byte conservation violated for %s", round, fr.File)
		}
		if s.reads != fr.Reads || s.writes != fr.Writes {
			t.Errorf("round %d: direction conservation violated for %s", round, fr.File)
		}
	}
}

// TestVOLVFDByteAgreement: application-visible bytes reported by the
// VOL layer must equal the raw-data bytes the VFD layer attributes to
// the same dataset for simple contiguous access (no amplification).
func TestVOLVFDByteAgreement(t *testing.T) {
	tr := New(Config{})
	tr.BeginTask("t")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "f.h5")
	f, err := hdf5.Create(drv, "f.h5", hdf5.Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{1 << 14}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAll(make([]byte, 1<<14)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Read(hdf5.Slab1D(100, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tt := tr.EndTask()

	var obj *trace.ObjectRecord
	for i := range tt.Objects {
		if tt.Objects[i].Object == "/d" {
			obj = &tt.Objects[i]
		}
	}
	if obj == nil {
		t.Fatal("object record missing")
	}
	var mapped *trace.MappedStat
	for i := range tt.Mapped {
		if tt.Mapped[i].Object == "/d" {
			mapped = &tt.Mapped[i]
		}
	}
	if mapped == nil {
		t.Fatal("mapped stat missing")
	}
	if obj.BytesWritten != 1<<14 || obj.BytesRead != 1000 {
		t.Fatalf("VOL bytes: r%d w%d", obj.BytesRead, obj.BytesWritten)
	}
	if mapped.DataBytes != obj.BytesWritten+obj.BytesRead {
		t.Errorf("contiguous amplification: VFD data bytes %d vs VOL %d",
			mapped.DataBytes, obj.BytesWritten+obj.BytesRead)
	}
}
