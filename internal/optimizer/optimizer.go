// Package optimizer turns DaYu's diagnostic findings into concrete
// optimization decisions, following the paper's guidelines (§III-A):
// data-locality plans (placement, co-scheduling, prefetch/stage-in,
// stage-out) for the workflow engine, and storage-layout advice
// (contiguous vs chunked vs consolidation) for the format layer.
package optimizer

import (
	"sort"

	"dayu/internal/diagnose"
	"dayu/internal/hdf5"
	"dayu/internal/trace"
	"dayu/internal/workflow"
)

// LocalityOptions tunes plan construction.
type LocalityOptions struct {
	// FastTier is the node-local device files are placed on (e.g.
	// "nvme" or "sata-ssd").
	FastTier string
	// Nodes is the cluster node count for co-scheduling.
	Nodes int
	// AsyncStageOut overlaps stage-out with later work.
	AsyncStageOut bool
	// StageOutDisposable schedules disposable files for stage-out after
	// their last consumer.
	StageOutDisposable bool
	// CacheReused applies the customized-caching guideline: files with
	// two or more distinct consumers are held in the memory buffer
	// after first access.
	CacheReused bool
}

// PlanDataLocality derives a placement/co-scheduling plan from traces:
// every task is scheduled on the node holding most of its input bytes,
// its outputs are placed on that node's fast tier, pure inputs are
// staged in just before their first consumer stage, and (optionally)
// single-consumer files are staged out afterwards. This is the
// guideline-driven optimization evaluated in Figures 11 and 12.
func PlanDataLocality(traces []*trace.TaskTrace, m *trace.Manifest, opts LocalityOptions) *workflow.Plan {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.FastTier == "" {
		opts.FastTier = "nvme"
	}
	ordered := orderedTraces(traces, m)
	stageOf := stageIndex(m)

	plan := &workflow.Plan{
		Placements:    map[string]workflow.Placement{},
		NodeOf:        map[string]int{},
		StageIn:       map[string][]string{},
		StageOut:      map[string][]string{},
		AsyncStageOut: opts.AsyncStageOut,
	}

	writers := map[string]string{} // file -> first producing task
	readersOf := map[string][]string{}
	for _, t := range ordered {
		for _, fr := range t.Files {
			if fr.DataWrites > 0 {
				if _, ok := writers[fr.File]; !ok {
					writers[fr.File] = t.Task
				}
			}
			if fr.DataReads > 0 {
				readersOf[fr.File] = append(readersOf[fr.File], t.Task)
			}
		}
	}

	// Schedule tasks by input affinity, in execution order.
	rr := 0
	for _, t := range ordered {
		votes := make([]int64, opts.Nodes)
		var hasVote bool
		for _, fr := range t.Files {
			if fr.DataReads == 0 {
				continue
			}
			if pl, ok := plan.Placements[fr.File]; ok {
				votes[pl.Node] += fr.BytesRead
				hasVote = true
			}
		}
		node := rr % opts.Nodes
		if hasVote {
			best := 0
			for n := 1; n < opts.Nodes; n++ {
				if votes[n] > votes[best] {
					best = n
				}
			}
			node = best
		} else {
			rr++
		}
		plan.NodeOf[t.Task] = node
		// Outputs land on the task's node-local fast tier.
		for _, fr := range t.Files {
			if fr.DataWrites > 0 {
				if _, ok := plan.Placements[fr.File]; !ok {
					plan.Placements[fr.File] = workflow.Placement{Device: opts.FastTier, Node: node}
				}
			}
		}
	}

	// Pure inputs: place on the first reader's node and stage them in
	// right before that reader's stage (delayed prefetch for
	// time-dependent inputs).
	for file, readers := range readersOf {
		if _, produced := writers[file]; produced || len(readers) == 0 {
			continue
		}
		first := readers[0]
		node := plan.NodeOf[first]
		plan.Placements[file] = workflow.Placement{Device: opts.FastTier, Node: node}
		if st, ok := stageOf[first]; ok {
			plan.StageIn[st] = append(plan.StageIn[st], file)
		}
	}

	// Disposable outputs: stage out after the last consumer.
	if opts.StageOutDisposable {
		for file, readers := range readersOf {
			if _, produced := writers[file]; !produced || len(uniqueStrings(readers)) != 1 {
				continue
			}
			last := readers[len(readers)-1]
			if st, ok := stageOf[last]; ok {
				plan.StageOut[st] = append(plan.StageOut[st], file)
			}
		}
	}
	// Heavily reused files are candidates for the memory buffer.
	if opts.CacheReused {
		for file, readers := range readersOf {
			if len(uniqueStrings(readers)) >= 2 {
				plan.CacheFiles = append(plan.CacheFiles, file)
			}
		}
		sort.Strings(plan.CacheFiles)
	}
	for _, lists := range []map[string][]string{plan.StageIn, plan.StageOut} {
		for k := range lists {
			sort.Strings(lists[k])
		}
	}
	return plan
}

func orderedTraces(traces []*trace.TaskTrace, m *trace.Manifest) []*trace.TaskTrace {
	out := append([]*trace.TaskTrace(nil), traces...)
	rank := map[string]int{}
	if m != nil {
		for i, t := range m.TaskOrder {
			rank[t] = i
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, oki := rank[out[i].Task]
		rj, okj := rank[out[j].Task]
		if oki && okj {
			return ri < rj
		}
		return out[i].StartNS < out[j].StartNS
	})
	return out
}

func stageIndex(m *trace.Manifest) map[string]string {
	idx := map[string]string{}
	if m == nil {
		return idx
	}
	for stage, tasks := range m.Stages {
		for _, t := range tasks {
			idx[t] = stage
		}
	}
	return idx
}

func uniqueStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// LayoutAdvice recommends a storage layout per (file, object) from the
// layout-mismatch findings, applying the §III-A data-format guidelines:
// small fixed-length data becomes contiguous (or consolidated), large
// VL data becomes chunked.
type LayoutAdvice struct {
	// Convert maps "file::object" to the recommended layout.
	Convert map[string]hdf5.Layout
	// Consolidate lists files whose many small datasets should merge
	// into one large dataset.
	Consolidate []string
	// SkipDatasets lists "file::object" accesses that move data no task
	// uses (partial-file-access candidates).
	SkipDatasets []string
}

// AdviseLayout derives layout recommendations from findings.
func AdviseLayout(findings []diagnose.Finding) LayoutAdvice {
	adv := LayoutAdvice{Convert: map[string]hdf5.Layout{}}
	seenCons := map[string]bool{}
	seenSkip := map[string]bool{}
	for _, f := range findings {
		key := f.File + "::" + f.Object
		switch f.Kind {
		case diagnose.ChunkedSmallData:
			adv.Convert[key] = hdf5.Contiguous
		case diagnose.VLenContiguous:
			adv.Convert[key] = hdf5.Chunked
		case diagnose.DataScattering:
			if !seenCons[f.File] {
				seenCons[f.File] = true
				adv.Consolidate = append(adv.Consolidate, f.File)
			}
		case diagnose.MetadataOnlyAccess:
			if !seenSkip[key] {
				seenSkip[key] = true
				adv.SkipDatasets = append(adv.SkipDatasets, key)
			}
		}
	}
	sort.Strings(adv.Consolidate)
	sort.Strings(adv.SkipDatasets)
	return adv
}
