package optimizer

import (
	"testing"

	"dayu/internal/diagnose"
	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

func mkFileRecord(file string, reads, writes int64) trace.FileRecord {
	fr := trace.FileRecord{File: file, Reads: reads, Writes: writes,
		BytesRead: reads * 1000, BytesWritten: writes * 1000,
		DataReads: reads, DataWrites: writes, DataOps: reads + writes}
	fr.Ops = fr.MetaOps + fr.DataOps
	return fr
}

func mkTrace(task string, start int64, files ...trace.FileRecord) *trace.TaskTrace {
	for i := range files {
		files[i].Task = task
	}
	return &trace.TaskTrace{Task: task, StartNS: start, EndNS: start + 10, Files: files}
}

func chainTraces() ([]*trace.TaskTrace, *trace.Manifest) {
	traces := []*trace.TaskTrace{
		mkTrace("gen", 0,
			mkFileRecord("input.h5", 3, 0),
			mkFileRecord("mid.h5", 0, 3)),
		mkTrace("consume", 10,
			mkFileRecord("mid.h5", 3, 0),
			mkFileRecord("out.h5", 0, 2)),
		mkTrace("report", 20,
			mkFileRecord("out.h5", 1, 0)),
	}
	m := &trace.Manifest{
		Workflow:  "chain",
		TaskOrder: []string{"gen", "consume", "report"},
		Stages: map[string][]string{
			"s1": {"gen"}, "s2": {"consume"}, "s3": {"report"},
		},
		StageOrder: []string{"s1", "s2", "s3"},
	}
	return traces, m
}

func TestPlanDataLocality(t *testing.T) {
	traces, m := chainTraces()
	plan := PlanDataLocality(traces, m, LocalityOptions{
		FastTier: "nvme", Nodes: 2, StageOutDisposable: true, AsyncStageOut: true,
	})
	// Producer outputs placed on the producer's node-local fast tier.
	pl, ok := plan.Placements["mid.h5"]
	if !ok || pl.Device != "nvme" {
		t.Fatalf("mid.h5 placement = %+v", pl)
	}
	if pl.Node != plan.NodeOf["gen"] {
		t.Error("output not on producer's node")
	}
	// Consumer co-scheduled onto the node holding its input.
	if plan.NodeOf["consume"] != pl.Node {
		t.Errorf("consume on node %d, input on node %d", plan.NodeOf["consume"], pl.Node)
	}
	// report follows out.h5's node.
	if plan.NodeOf["report"] != plan.NodeOf["consume"] {
		t.Error("report not co-scheduled with its input")
	}
	// Pure input staged in before its first consumer's stage.
	if got := plan.StageIn["s1"]; len(got) != 1 || got[0] != "input.h5" {
		t.Errorf("stage-in = %v", plan.StageIn)
	}
	// Single-consumer outputs staged out after their consumer.
	if got := plan.StageOut["s2"]; len(got) != 1 || got[0] != "mid.h5" {
		t.Errorf("stage-out s2 = %v", plan.StageOut)
	}
	if got := plan.StageOut["s3"]; len(got) != 1 || got[0] != "out.h5" {
		t.Errorf("stage-out s3 = %v", plan.StageOut)
	}
	if !plan.AsyncStageOut {
		t.Error("async flag lost")
	}
	// The plan validates against the machine it targets.
	if err := plan.Validate(sim.MachineCPU, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDefaultsAndDegenerateInputs(t *testing.T) {
	plan := PlanDataLocality(nil, nil, LocalityOptions{})
	if plan == nil || len(plan.Placements) != 0 {
		t.Fatal("empty traces should give empty plan")
	}
	// Without a manifest, timestamps order tasks; plan still forms.
	traces, _ := chainTraces()
	plan = PlanDataLocality(traces, nil, LocalityOptions{Nodes: 2})
	if len(plan.Placements) == 0 {
		t.Error("no placements derived")
	}
}

func TestPlanImprovesWorkflowTime(t *testing.T) {
	// End-to-end: the locality plan must beat the shared-storage
	// baseline on the PyFLEXTRKR replica (the Figure 11 effect).
	cfg := workloads.PyFlextrkrConfig{ParallelTasks: 3, InputFiles: 3, FeatureBytes: 32 << 10,
		Stage9Datasets: 8, Stage9Accesses: 3}
	cluster := workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}

	spec, setup := workloads.PyFlextrkr(cfg)
	base, err := workflow.NewEngine(cluster, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup(base); err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	plan := PlanDataLocality(baseRes.Traces, baseRes.Manifest, LocalityOptions{
		FastTier: "nvme", Nodes: cluster.Nodes,
	})
	spec2, setup2 := workloads.PyFlextrkr(cfg)
	opt, err := workflow.NewEngine(cluster, plan, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup2(opt); err != nil {
		t.Fatal(err)
	}
	optRes, err := opt.Run(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if optRes.Total() >= baseRes.Total() {
		t.Errorf("optimized (%v) not faster than baseline (%v)", optRes.Total(), baseRes.Total())
	}
}

func TestAdviseLayout(t *testing.T) {
	findings := []diagnose.Finding{
		{Kind: diagnose.ChunkedSmallData, File: "a.h5", Object: "/rmsd"},
		{Kind: diagnose.VLenContiguous, File: "b.h5", Object: "/image0"},
		{Kind: diagnose.DataScattering, File: "s.h5"},
		{Kind: diagnose.DataScattering, File: "s.h5"}, // duplicate collapses
		{Kind: diagnose.MetadataOnlyAccess, File: "agg.h5", Object: "/contact_map"},
		{Kind: diagnose.DataReuse, File: "x.h5"}, // irrelevant to layout
	}
	adv := AdviseLayout(findings)
	if adv.Convert["a.h5::/rmsd"] != hdf5.Contiguous {
		t.Error("chunked-small not converted to contiguous")
	}
	if adv.Convert["b.h5::/image0"] != hdf5.Chunked {
		t.Error("vlen-contiguous not converted to chunked")
	}
	if len(adv.Consolidate) != 1 || adv.Consolidate[0] != "s.h5" {
		t.Errorf("consolidate = %v", adv.Consolidate)
	}
	if len(adv.SkipDatasets) != 1 || adv.SkipDatasets[0] != "agg.h5::/contact_map" {
		t.Errorf("skip = %v", adv.SkipDatasets)
	}
	if len(adv.Convert) != 2 {
		t.Errorf("convert map = %v", adv.Convert)
	}
}
