package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1023, "1023 B"},
		{1024, "1.0 KiB"},
		{1536, "1.5 KiB"},
		{2 * MiB, "2.0 MiB"},
		{3 * GiB, "3.0 GiB"},
		{2 * TiB, "2.00 TiB"},
		{-512, "-512 B"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.50µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1500 * time.Millisecond, "1.50s"},
		{90 * time.Second, "1.5m"},
		{-500 * time.Nanosecond, "-500ns"},
	}
	for _, c := range cases {
		if got := Duration(c.in); got != c.want {
			t.Errorf("Duration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(1, 4); got != "25.00%" {
		t.Errorf("Percent(1,4) = %q", got)
	}
	if got := Percent(1, 0); got != "0.00%" {
		t.Errorf("Percent(1,0) = %q", got)
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio(1,4) = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %v", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {-3, 4, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with zero divisor did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b <= 0 {
			b = -b + 1
		}
		a &= math.MaxInt32 // avoid overflow in a+b-1
		got := CeilDiv(a, b)
		return got*b >= a && (got-1)*b < a || (a <= 0 && got == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampMinMax(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if MinInt(2, 3) != 2 || MinInt(3, 2) != 2 {
		t.Error("MinInt misbehaves")
	}
	if MaxInt(2, 3) != 3 || MaxInt(3, 2) != 3 {
		t.Error("MaxInt misbehaves")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated percentile = %v, want 5", got)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return Percentile(xs, p) == 0
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(xs, p)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
}
