// Package units provides byte-size and duration formatting helpers plus
// small numeric utilities shared across the DaYu codebase.
package units

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Common byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Bytes renders a byte count with a binary-unit suffix, e.g. "512 B",
// "4.0 KiB", "1.5 GiB".
func Bytes(n int64) string {
	switch {
	case n < 0:
		return "-" + Bytes(-n)
	case n < KiB:
		return fmt.Sprintf("%d B", n)
	case n < MiB:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(KiB))
	case n < GiB:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(MiB))
	case n < TiB:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(GiB))
	default:
		return fmt.Sprintf("%.2f TiB", float64(n)/float64(TiB))
	}
}

// Duration renders a duration compactly with three significant figures,
// e.g. "1.23ms", "45.6s".
func Duration(d time.Duration) string {
	switch {
	case d < 0:
		return "-" + Duration(-d)
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
}

// Percent renders part/whole as a percentage string, guarding against a
// zero denominator.
func Percent(part, whole float64) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*part/whole)
}

// Ratio returns part/whole, or 0 when whole is zero.
func Ratio(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It copies and sorts its input; an empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
