package workflow

import (
	"bytes"
	"strings"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/tracer"
)

func writeHeavySpec(payload []byte) Spec {
	return Spec{Name: "wh", Stages: []Stage{
		{Name: "write", Tasks: []Task{{Name: "w", Fn: func(tc *TaskContext) error {
			f, err := tc.Create("out.h5")
			if err != nil {
				return err
			}
			ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{int64(len(payload))}, nil)
			if err != nil {
				return err
			}
			return ds.WriteAll(payload)
		}}}},
	}}
}

func TestAsyncWritesOverlapDeviceTime(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 512<<10)
	run := func(plan *Plan) *Result {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(writeHeavySpec(payload))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	async := run(&Plan{AsyncWrites: true})

	// The critical path shrinks: the 512 KiB data write admits to the
	// memory buffer instead of waiting on NFS.
	if async.Total() >= base.Total() {
		t.Errorf("async writes (%v) not faster than sync (%v)", async.Total(), base.Total())
	}
	// The device time did not disappear - it shows up as an async drain
	// pseudo-stage excluded from the critical path.
	var drainFound bool
	for _, s := range async.Stages {
		if strings.HasPrefix(s.Name, "async-drain:") {
			drainFound = true
			if !s.Async {
				t.Error("drain stage on the critical path")
			}
			if s.Time <= 0 {
				t.Error("drain stage has no time")
			}
		}
	}
	if !drainFound {
		t.Fatal("async drain stage missing")
	}
	// Conservation: critical + drain >= the synchronous stage time
	// (the device work is deferred, not deleted).
	drain := async.StageTime("async-drain:write")
	if async.StageTime("write")+drain < base.StageTime("write") {
		t.Errorf("async write work vanished: %v + %v < %v",
			async.StageTime("write"), drain, base.StageTime("write"))
	}
	// No drain stage when nothing was written asynchronously.
	if len(base.Stages) != 1 {
		t.Errorf("baseline has %d stages", len(base.Stages))
	}
}

func TestAsyncWritesPreserveData(t *testing.T) {
	payload := bytes.Repeat([]byte{0x77}, 64<<10)
	spec := writeHeavySpec(payload)
	spec.Stages = append(spec.Stages, Stage{Name: "verify", Tasks: []Task{{
		Name: "r", Fn: func(tc *TaskContext) error {
			f, err := tc.Open("out.h5")
			if err != nil {
				return err
			}
			ds, err := f.OpenDatasetPath("/d")
			if err != nil {
				return err
			}
			got, err := ds.ReadAll()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				t.Error("async-written data corrupted")
			}
			return nil
		},
	}}})
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1},
		&Plan{AsyncWrites: true}, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(spec); err != nil {
		t.Fatal(err)
	}
}
