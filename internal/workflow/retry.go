package workflow

// This file holds the self-healing execution surface: fault injection
// hooks and the retry / rescheduling policy the engine applies per task
// attempt. Real distributed workflow deployments see transient storage
// errors, slow or dead nodes and torn writes; instead of dying on the
// first error (and discarding every completed task's trace), the engine
// can retry failed tasks from a clean snapshot, move them to another
// node, and aggregate whatever still fails into a joined partial-failure
// error that preserves all traces and results.

import (
	"math"
	"time"

	"dayu/internal/vfd"
)

// RetryPolicy controls per-task retry behavior. The zero value (or a
// nil policy) means fail-fast: one attempt, no backoff.
type RetryPolicy struct {
	// MaxAttempts bounds total executions of a task (first try included).
	// Values below 1 mean 1.
	MaxAttempts int
	// Backoff is the virtual-time wait before the second attempt; attempt
	// n waits Backoff * Multiplier^(n-2). Backoff is billed into the
	// task's simulated time, not slept on the host.
	Backoff time.Duration
	// Multiplier is the exponential backoff base (default 2).
	Multiplier float64
	// Reschedule moves retried tasks to a different node, excluding nodes
	// the task already failed on, modeling fail-over away from a sick
	// host. With every node excluded the task returns to its first node.
	Reschedule bool
	// Retryable classifies errors worth retrying; nil uses vfd.IsRetryable
	// (transient faults and fail-stop devices retry; corruption and
	// logic errors fail immediately).
	Retryable func(error) bool
}

// attempts returns the effective attempt budget.
func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// retryable applies the policy's classifier.
func (p *RetryPolicy) retryable(err error) bool {
	if p == nil {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return vfd.IsRetryable(err)
}

// backoffFor returns the virtual wait charged before retrying after the
// given failed attempt (1-based).
func (p *RetryPolicy) backoffFor(attempt int) time.Duration {
	if p == nil || p.Backoff <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	return time.Duration(float64(p.Backoff) * math.Pow(mult, float64(attempt-1)))
}

// rescheduleNode picks the retry node: the nearest node after base not
// yet excluded, or base when every node has failed the task.
func rescheduleNode(base int, excluded map[int]bool, nodes int) int {
	for d := 1; d <= nodes; d++ {
		n := (base + d) % nodes
		if !excluded[n] {
			return n
		}
	}
	return base
}

// SetRetry installs the per-task retry policy for subsequent Runs. A nil
// policy restores fail-fast execution.
func (e *Engine) SetRetry(p *RetryPolicy) { e.retry = p }

// SetFaults installs a deterministic fault-injection plan: every file
// session a task opens is wrapped in a vfd.FaultDriver seeded from the
// plan's base seed and the session identity (task, file, attempt,
// session index), so runs are reproducible even with parallel stages. A
// nil plan (or one with no fault knobs set) disables injection.
func (e *Engine) SetFaults(p *vfd.FaultPlan) {
	if p != nil && !p.Enabled() {
		p = nil
	}
	e.faults = p
}

// resilient reports whether attempts need snapshot/rollback protection:
// any engine that may retry or fault must be able to rewind file state.
func (e *Engine) resilient() bool { return e.retry != nil || e.faults != nil }
