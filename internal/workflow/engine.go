package workflow

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/obs"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// Cluster binds a Table III machine to a node count.
type Cluster struct {
	Machine sim.Machine
	Nodes   int
	// Parallel executes the tasks of a stage on goroutines, each with
	// its own Data Semantic Mapper instance (the paper's per-process
	// profilers). Virtual timing is identical to sequential execution;
	// only host wall time changes.
	Parallel bool
}

// TaskResult is one task's simulated outcome.
type TaskResult struct {
	Name    string
	Stage   string
	Node    int
	IO      time.Duration
	Compute time.Duration
	// Backoff is virtual wait accumulated between retry attempts.
	Backoff time.Duration
	// Attempts is how many times the task executed (1 without faults).
	Attempts int
	// Failed marks a task whose final attempt errored; IO and Ops cover
	// the work it performed (and was billed for) before giving up.
	Failed bool
	Ops    sim.Summary
}

// Time is the task's total virtual time.
func (t TaskResult) Time() time.Duration { return t.IO + t.Compute + t.Backoff }

// StageResult aggregates one stage (or staging pseudo-stage).
type StageResult struct {
	Name string
	// Time is the stage's virtual wall time (slowest task times waves).
	Time time.Duration
	// Async marks costs excluded from the critical path.
	Async bool
	Tasks []TaskResult
}

// Result is a completed workflow execution.
type Result struct {
	Workflow string
	Stages   []StageResult
	Traces   []*trace.TaskTrace
	Manifest *trace.Manifest
	// TracerTimes is the Data Semantic Mapper component breakdown.
	TracerTimes tracer.ComponentTimes
	// OpsByTask maps task -> file -> recorded sim ops (for layout
	// experiments and ablations).
	OpsByTask map[string]map[string][]sim.Op
}

// Total returns the critical-path virtual time (async stages excluded).
func (r *Result) Total() time.Duration {
	var total time.Duration
	for _, s := range r.Stages {
		if !s.Async {
			total += s.Time
		}
	}
	return total
}

// SaveTraces persists every task trace plus the manifest to dir in
// the given serialization format, creating dir if needed. This is the
// engine's store-emission path: `dayu run -format` and the bench
// harnesses share it so trace directories always carry a manifest and
// a uniform format.
func (r *Result) SaveTraces(dir string, format trace.Format) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("workflow: save traces: %w", err)
	}
	for _, tt := range r.Traces {
		if _, err := tt.SaveFormat(dir, format); err != nil {
			return err
		}
	}
	if r.Manifest == nil {
		return nil
	}
	return trace.SaveManifest(dir, r.Manifest)
}

// StageTime returns the virtual time of the named stage (0 if absent).
func (r *Result) StageTime(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Time
		}
	}
	return 0
}

// Engine executes workflow specs on a simulated cluster.
type Engine struct {
	cluster Cluster
	plan    *Plan
	tcfg    tracer.Config
	mu      sync.Mutex // guards files under parallel execution
	files   map[string]*fileStore
	// warm tracks plan-cached files already pulled into the memory
	// buffer by an earlier stage's access.
	warm map[string]bool
	// timing accumulates Data Semantic Mapper component times across
	// all task tracers of a run.
	timing tracer.ComponentTimes
	// faults, when non-nil, wraps every task file session in a seeded
	// vfd.FaultDriver (SetFaults).
	faults *vfd.FaultPlan
	// retry, when non-nil, re-executes failed tasks from a rolled-back
	// snapshot (SetRetry).
	retry *RetryPolicy
	// metrics, when non-nil, receives engine counters, histograms and
	// virtual-time spans plus per-session VFD op metrics (SetMetrics).
	metrics *obs.Registry
}

// SetMetrics attaches an observability registry. The engine emits
// stage/task spans billed on the virtual-time axis, retry/rollback/
// failure counters, and instruments every task file session's driver
// stack. A nil registry (the default) disables all of it: no decorator
// is installed and the run path does zero metrics work.
func (e *Engine) SetMetrics(r *obs.Registry) { e.metrics = r }

// NewEngine builds an engine. plan may be nil (baseline execution:
// everything on the machine's default shared storage, round-robin
// scheduling).
func NewEngine(cluster Cluster, plan *Plan, tcfg tracer.Config) (*Engine, error) {
	if cluster.Nodes <= 0 {
		return nil, fmt.Errorf("workflow: cluster needs at least one node")
	}
	if err := plan.Validate(cluster.Machine, cluster.Nodes); err != nil {
		return nil, err
	}
	return &Engine{
		cluster: cluster,
		plan:    plan,
		tcfg:    tcfg,
		files:   map[string]*fileStore{},
		warm:    map[string]bool{},
	}, nil
}

// Run executes the spec and returns the simulated result.
func (e *Engine) Run(spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e.timing = tracer.ComponentTimes{}
	res := &Result{
		Workflow:  spec.Name,
		Manifest:  buildManifest(spec),
		OpsByTask: map[string]map[string][]sim.Op{},
	}
	for _, stage := range spec.Stages {
		if files := stageFiles(e.plan, stage.Name, true); len(files) > 0 {
			res.Stages = append(res.Stages, e.transferStage("stage-in:"+stage.Name, files, false))
		}
		sr, drain, err := e.runStage(stage, res)
		res.Stages = append(res.Stages, sr)
		if drain > 0 {
			res.Stages = append(res.Stages, StageResult{
				Name: "async-drain:" + stage.Name, Time: drain, Async: true,
			})
		}
		if err != nil {
			// Partial failure: downstream stages cannot trust this stage's
			// outputs, so execution stops here - but the result still
			// carries every trace, op log and task timing recorded so far,
			// including the failed tasks' own observations.
			res.TracerTimes = e.timing
			e.emitMetrics(res)
			return res, fmt.Errorf("workflow: stage %q: %w", stage.Name, err)
		}
		if files := stageFiles(e.plan, stage.Name, false); len(files) > 0 {
			async := e.plan != nil && e.plan.AsyncStageOut
			res.Stages = append(res.Stages, e.transferStage("stage-out:"+stage.Name, files, async))
		}
	}
	res.TracerTimes = e.timing
	e.emitMetrics(res)
	return res, nil
}

// emitMetrics bills the completed (or partially completed) run into the
// metrics registry. Spans are stamped with virtual-time nanoseconds
// derived from the deterministic stage/task durations - the same run
// always yields the same span timeline - and every task attempt beyond
// the first counts as one retry plus one snapshot rollback (a failed
// final attempt rolls back too, without a retry).
func (e *Engine) emitMetrics(res *Result) {
	if e.metrics == nil {
		return
	}
	reg := e.metrics
	stages := reg.Counter("dayu_engine_stages_total")
	tasks := reg.Counter("dayu_engine_tasks_total")
	retries := reg.Counter("dayu_engine_task_retries_total")
	rollbacks := reg.Counter("dayu_engine_rollbacks_total")
	failures := reg.Counter("dayu_engine_task_failures_total")
	stageNS := reg.Histogram("dayu_engine_stage_virtual_ns", obs.LatencyBuckets())
	ioNS := reg.Histogram(obs.Name("dayu_engine_task_virtual_ns", "phase", "io"), obs.LatencyBuckets())
	computeNS := reg.Histogram(obs.Name("dayu_engine_task_virtual_ns", "phase", "compute"), obs.LatencyBuckets())
	backoffNS := reg.Histogram(obs.Name("dayu_engine_task_virtual_ns", "phase", "backoff"), obs.LatencyBuckets())

	var cursor time.Duration
	for _, s := range res.Stages {
		start := cursor.Nanoseconds()
		attrs := map[string]string{"stage": s.Name, "workflow": res.Workflow}
		if s.Async {
			attrs["async"] = "true"
		}
		reg.AddSpan("stage", start, start+s.Time.Nanoseconds(), attrs)
		stages.Inc()
		stageNS.Observe(s.Time.Nanoseconds())
		for _, t := range s.Tasks {
			tattrs := map[string]string{
				"task": t.Name, "stage": s.Name,
				"node": strconv.Itoa(t.Node), "attempts": strconv.Itoa(t.Attempts),
			}
			if t.Failed {
				tattrs["failed"] = "true"
			}
			reg.AddSpan("task", start, start+t.Time().Nanoseconds(), tattrs)
			tasks.Inc()
			ioNS.Observe(t.IO.Nanoseconds())
			computeNS.Observe(t.Compute.Nanoseconds())
			if t.Backoff > 0 {
				backoffNS.Observe(t.Backoff.Nanoseconds())
			}
			if t.Attempts > 1 {
				retries.Add(int64(t.Attempts - 1))
				rollbacks.Add(int64(t.Attempts - 1))
			}
			if t.Failed {
				failures.Inc()
				rollbacks.Inc()
			}
		}
		if !s.Async {
			cursor += s.Time
		}
	}
	reg.Gauge("dayu_engine_virtual_total_ns").Set(res.Total().Nanoseconds())
}

func stageFiles(p *Plan, stage string, in bool) []string {
	if p == nil {
		return nil
	}
	if in {
		return p.StageIn[stage]
	}
	return p.StageOut[stage]
}

// transferStage models copying files over the interconnect, parallel
// across destination nodes.
func (e *Engine) transferStage(name string, files []string, async bool) StageResult {
	net := e.cluster.Machine.Network
	perNode := map[int]time.Duration{}
	for _, f := range files {
		pl := e.plan.placementOf(f)
		e.mu.Lock()
		st, ok := e.files[f]
		e.mu.Unlock()
		var size int64
		if ok {
			size = st.Size()
		}
		perNode[pl.Node] += net.TransferCost(size)
	}
	var max time.Duration
	for _, t := range perNode {
		if t > max {
			max = t
		}
	}
	return StageResult{Name: name, Time: max, Async: async}
}

// runStage executes each task of the stage (sequentially or on
// goroutines), records traces and op logs, then computes the stage's
// virtual time with device contention. Every task gets its own tracer,
// mirroring DaYu's per-process profiler state.
func (e *Engine) runStage(stage Stage, res *Result) (StageResult, time.Duration, error) {
	type taskRun struct {
		task    Task
		node    int
		ops     map[string][]sim.Op
		compute time.Duration
		trace   *trace.TaskTrace
		timing  tracer.ComponentTimes
		err     error
		// Resilience bookkeeping.
		attempts     int
		backoff      time.Duration
		faultLatency time.Duration
	}
	runs := make([]taskRun, len(stage.Tasks))

	// exec runs one task to success or final failure. Each attempt gets a
	// fresh tracer and TaskContext; a failed attempt closes its files
	// (traced failure-path I/O), rolls the store back to the pre-attempt
	// snapshot, and - if the error is retryable and attempts remain -
	// re-executes after a virtual backoff, optionally on a different node.
	// All I/O the task actually issued, including failed attempts', is
	// kept for billing: retries are not free.
	exec := func(i int) {
		task := stage.Tasks[i]
		base := i % e.cluster.Nodes
		if e.plan != nil {
			if n, ok := e.plan.NodeOf[task.Name]; ok {
				base = n
			}
		}
		maxAttempts := e.retry.attempts()
		excluded := map[int]bool{}
		node := base
		allOps := map[string][]sim.Op{}
		var backoff, faultLat time.Duration
		for attempt := 1; ; attempt++ {
			tr := tracer.New(e.tcfg)
			tr.BeginTask(task.Name)
			tc := &TaskContext{engine: e, tracer: tr, task: task.Name,
				node: node, attempt: attempt, opLog: &vfd.OpLog{}}
			err := task.Fn(tc)
			if err == nil {
				err = tc.closeAll()
			}
			if err != nil {
				tc.abort()
			}
			byFile := map[string][]sim.Op{}
			for _, op := range tc.opLog.Ops {
				byFile[op.File] = append(byFile[op.File], op.SimOp())
			}
			for f, ops := range byFile {
				allOps[f] = append(allOps[f], ops...)
			}
			faultLat += tc.faultLatency()
			if err != nil {
				tc.rollback()
				excluded[node] = true
				if attempt < maxAttempts && e.retry.retryable(err) {
					backoff += e.retry.backoffFor(attempt)
					if e.retry.Reschedule {
						node = rescheduleNode(base, excluded, e.cluster.Nodes)
					}
					continue
				}
				runs[i] = taskRun{task: task, node: node, ops: allOps,
					compute: tc.computeTime, trace: tr.EndTask(), timing: tr.Timing(),
					attempts: attempt, backoff: backoff, faultLatency: faultLat,
					err: fmt.Errorf("workflow: task %q: %w", task.Name, err)}
				return
			}
			tc.commit()
			compute := task.Compute + tc.computeTime
			if task.ComputePerByte > 0 {
				var dataBytes int64
				for _, ops := range byFile {
					for _, op := range ops {
						if op.Class == sim.RawData {
							dataBytes += op.Bytes
						}
					}
				}
				compute += time.Duration(task.ComputePerByte * float64(dataBytes))
			}
			runs[i] = taskRun{task: task, node: node, ops: allOps, compute: compute,
				trace: tr.EndTask(), timing: tr.Timing(),
				attempts: attempt, backoff: backoff, faultLatency: faultLat}
			return
		}
	}
	if e.cluster.Parallel {
		var wg sync.WaitGroup
		for i := range stage.Tasks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				exec(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range stage.Tasks {
			exec(i)
		}
	}
	// Partial-failure aggregation: every task that ran - failed or not -
	// contributes its trace, op log and component timing; task errors are
	// joined into one stage error instead of discarding the stage.
	var errs []error
	for i := range runs {
		r := &runs[i]
		if r.trace != nil {
			r.trace.Attempts = r.attempts
			r.trace.Failed = r.err != nil
			// Stream the completed trace only now: Attempts/Failed are
			// part of the record, so emitting from EndTask would ship
			// bytes that differ from what SaveTraces persists.
			if sink := e.tcfg.Sink; sink != nil {
				sink.EmitFinal(r.trace)
			}
			res.Traces = append(res.Traces, r.trace)
		}
		res.OpsByTask[r.task.Name] = r.ops
		e.timing.InputParser += r.timing.InputParser
		e.timing.AccessTracker += r.timing.AccessTracker
		e.timing.CharacteristicMapper += r.timing.CharacteristicMapper
		if r.err != nil {
			errs = append(errs, r.err)
		}
	}

	// Device contention: count stage tasks touching each device instance.
	accessors := map[string]int{}
	for _, r := range runs {
		seen := map[string]bool{}
		for file := range r.ops {
			k := e.instanceKey(file, r.node)
			if !seen[k] {
				seen[k] = true
				accessors[k]++
			}
		}
	}

	sr := StageResult{Name: stage.Name}
	var maxTime, maxDrain time.Duration
	for _, r := range runs {
		var io, taskDrain time.Duration
		var all []sim.Op
		// Deterministic order over files.
		files := make([]string, 0, len(r.ops))
		for f := range r.ops {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, file := range files {
			ops := r.ops[file]
			all = append(all, ops...)
			cost, drain, err := e.ioCost(file, r.node, ops, accessors)
			if err != nil {
				return sr, 0, err
			}
			io += cost
			taskDrain += drain
		}
		if taskDrain > maxDrain {
			maxDrain = taskDrain
		}
		tres := TaskResult{
			Name: r.task.Name, Stage: stage.Name, Node: r.node,
			IO: io + r.faultLatency, Compute: r.compute, Backoff: r.backoff,
			Attempts: r.attempts, Failed: r.err != nil, Ops: sim.Summarize(all),
		}
		sr.Tasks = append(sr.Tasks, tres)
		if tres.Time() > maxTime {
			maxTime = tres.Time()
		}
	}
	// Tasks beyond the cluster's core capacity execute in waves.
	capacity := e.cluster.Nodes * e.cluster.Machine.CoresPerNode
	waves := (len(runs) + capacity - 1) / capacity
	if waves < 1 {
		waves = 1
	}
	sr.Time = maxTime * time.Duration(waves)
	// Accesses this stage warm the memory buffer for cached files (under
	// e.mu: warm is engine state shared with ioCost).
	e.mu.Lock()
	for _, r := range runs {
		for file := range r.ops {
			if e.plan.cached(file) {
				e.warm[file] = true
			}
		}
	}
	e.mu.Unlock()
	return sr, maxDrain, errors.Join(errs...)
}

// instanceKey identifies the contended device instance a file access
// lands on from a given node.
func (e *Engine) instanceKey(file string, node int) string {
	pl := e.plan.placementOf(file)
	if pl.Device == "" || pl.Device == e.cluster.Machine.Default.Name {
		return "shared:" + e.cluster.Machine.Default.Name
	}
	return fmt.Sprintf("node%d:%s", pl.Node, pl.Device)
}

// ioCost replays a file's op stream against its placed device,
// returning the critical-path cost and any background drain time.
// Access to another node's local tier pays per-op network transfer on
// top of the device cost. Reads of plan-cached files warmed by an
// earlier stage replay against the memory tier (customized caching);
// with AsyncWrites, raw-data writes admit to the memory buffer on the
// critical path and drain to the device in the background.
func (e *Engine) ioCost(file string, taskNode int, ops []sim.Op, accessors map[string]int) (cost, drain time.Duration, err error) {
	pl := e.plan.placementOf(file)
	dev, err := deviceFor(e.cluster.Machine, pl)
	if err != nil {
		return 0, 0, err
	}
	key := e.instanceKey(file, taskNode)

	critical := ops
	if e.plan != nil && e.plan.AsyncWrites {
		critical = critical[:0:0]
		var async []sim.Op
		for _, op := range ops {
			if op.Write && op.Class == sim.RawData {
				async = append(async, op)
			} else {
				critical = append(critical, op)
			}
		}
		cost += sim.Replay(async, sim.Memory, accessors[key])
		drain = sim.Replay(async, dev, accessors[key])
	}

	e.mu.Lock()
	warm := e.warm[file]
	e.mu.Unlock()
	devOps := critical
	if e.plan.cached(file) && warm {
		devOps = devOps[:0:0]
		var cachedReads []sim.Op
		for _, op := range critical {
			if op.Write {
				devOps = append(devOps, op) // write-through
			} else {
				cachedReads = append(cachedReads, op)
			}
		}
		cost += sim.Replay(cachedReads, sim.Memory, accessors[key])
	}
	cost += sim.Replay(devOps, dev, accessors[key])
	if !dev.Shared && pl.Node != taskNode {
		net := e.cluster.Machine.Network
		for _, op := range devOps {
			cost += net.TransferCost(op.Bytes)
		}
	}
	return cost, drain, nil
}

// buildManifest derives the analyzer manifest from the spec.
func buildManifest(spec Spec) *trace.Manifest {
	m := &trace.Manifest{Workflow: spec.Name, Stages: map[string][]string{}}
	for _, st := range spec.Stages {
		m.StageOrder = append(m.StageOrder, st.Name)
		for _, t := range st.Tasks {
			m.TaskOrder = append(m.TaskOrder, t.Name)
			m.Stages[st.Name] = append(m.Stages[st.Name], t.Name)
		}
	}
	return m
}

// Preload creates a file in the workflow store before execution, e.g.
// the initial input files a workflow consumes. Preloading is not traced
// and not billed to any task: the data simply exists when the first
// stage starts, like experiment inputs on shared storage.
func (e *Engine) Preload(name string, cfg hdf5.Config, build func(*hdf5.File) error) error {
	store := &fileStore{name: name}
	f, err := hdf5.Create(&storeDriver{store: store}, name, cfg)
	if err != nil {
		return fmt.Errorf("workflow: preload %s: %w", name, err)
	}
	if err := build(f); err != nil {
		return fmt.Errorf("workflow: preload %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("workflow: preload %s: %w", name, err)
	}
	e.mu.Lock()
	e.files[name] = store
	e.mu.Unlock()
	return nil
}

// FileSize reports the stored size of a file (0 if absent).
func (e *Engine) FileSize(name string) int64 {
	e.mu.Lock()
	st, ok := e.files[name]
	e.mu.Unlock()
	if ok {
		return st.Size()
	}
	return 0
}

// FileNames lists all stored files sorted by name.
func (e *Engine) FileNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.files))
	for n := range e.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
