package workflow

import (
	"bytes"
	"testing"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/tracer"
)

// reuseSpec: one producer, then two sequential consumer stages reading
// the same file - the customized-caching scenario.
func reuseSpec(payload []byte) Spec {
	reader := func(name string) Task {
		return Task{Name: name, Fn: func(tc *TaskContext) error {
			f, err := tc.Open("shared.h5")
			if err != nil {
				return err
			}
			ds, err := f.OpenDatasetPath("/payload")
			if err != nil {
				return err
			}
			_, err = ds.ReadAll()
			return err
		}}
	}
	return Spec{
		Name: "reuse",
		Stages: []Stage{
			{Name: "produce", Tasks: []Task{{Name: "producer", Fn: func(tc *TaskContext) error {
				f, err := tc.Create("shared.h5")
				if err != nil {
					return err
				}
				ds, err := f.Root().CreateDataset("payload", hdf5.Uint8, []int64{int64(len(payload))}, nil)
				if err != nil {
					return err
				}
				return ds.WriteAll(payload)
			}}}},
			{Name: "consume1", Tasks: []Task{reader("c1")}},
			{Name: "consume2", Tasks: []Task{reader("c2")}},
		},
	}
}

func runReuse(t *testing.T, plan *Plan) *Result {
	t.Helper()
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(reuseSpec(bytes.Repeat([]byte{5}, 128<<10)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheFilesAccelerateReuse(t *testing.T) {
	base := runReuse(t, nil)
	cached := runReuse(t, &Plan{CacheFiles: []string{"shared.h5"}})

	// The producer's write-through populates the buffer, so both
	// consumers read from memory (Hermes-style write-back residency);
	// the producing stage itself pays the full device cost.
	if got, want := cached.StageTime("produce"), base.StageTime("produce"); got != want {
		t.Errorf("producer stage changed: %v vs %v", got, want)
	}
	for _, stage := range []string{"consume1", "consume2"} {
		b, c := base.StageTime(stage), cached.StageTime(stage)
		if c >= b {
			t.Errorf("cached %s (%v) not faster than baseline (%v)", stage, c, b)
		}
		// Memory reads are orders of magnitude faster than NFS.
		if c > b/10 {
			t.Errorf("cache effect too weak on %s: %v vs %v", stage, c, b)
		}
	}
	if cached.Total() >= base.Total() {
		t.Error("caching did not improve total time")
	}
}

func TestCacheWriteThrough(t *testing.T) {
	// A cached file that is re-written pays device cost for the writes.
	spec := Spec{
		Name: "wt",
		Stages: []Stage{
			{Name: "s1", Tasks: []Task{{Name: "w1", Fn: func(tc *TaskContext) error {
				f, err := tc.Create("f.h5")
				if err != nil {
					return err
				}
				ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{64 << 10}, nil)
				if err != nil {
					return err
				}
				return ds.WriteAll(make([]byte, 64<<10))
			}}}},
			{Name: "s2", Tasks: []Task{{Name: "w2", Fn: func(tc *TaskContext) error {
				f, err := tc.Open("f.h5")
				if err != nil {
					return err
				}
				ds, err := f.OpenDatasetPath("/d")
				if err != nil {
					return err
				}
				return ds.WriteAll(make([]byte, 64<<10))
			}}}},
		},
	}
	run := func(plan *Plan) time.Duration {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.StageTime("s2")
	}
	base := run(nil)
	cached := run(&Plan{CacheFiles: []string{"f.h5"}})
	// Writes go through to the device: the cached run saves the
	// metadata reads but the 64 KiB data write still pays NFS cost, so
	// it remains a substantial fraction of the baseline - far more than
	// a memory-only run would cost.
	if cached > base {
		t.Errorf("cached writes slower: %v vs %v", cached, base)
	}
	if cached < base/10 {
		t.Errorf("write-through violated: cached %v, baseline %v", cached, base)
	}
	// For contrast: the write volume alone on NFS costs more than the
	// entire stage would in memory.
	memOnly := sim.Replay([]sim.Op{{Bytes: 64 << 10, Write: true}}, sim.Memory, 1)
	if cached <= memOnly*10 {
		t.Errorf("writes appear cached: %v vs memory write %v", cached, memOnly)
	}
}
